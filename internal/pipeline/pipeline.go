// Package pipeline models the §3 real-time computing application: a task T
// with deadline k, maximally divided into a chain of subtasks t_1..t_n with
// data dependencies dp_i between consecutive subtasks, to be partitioned so
// that (1) every processor's share completes within the deadline, (2) the
// total network cost of cut dependencies is minimized, and (3) the highest
// single cut dependency (the bottleneck demand) is also reported.
package pipeline

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
)

// Sentinel errors.
var (
	// ErrBadSpec is returned for invalid deadlines or task chains.
	ErrBadSpec = errors.New("pipeline: bad specification")
	// ErrDeadline is returned when no partition can meet the deadline.
	ErrDeadline = errors.New("pipeline: deadline unachievable")
)

// Spec is the real-time task of §3.
type Spec struct {
	// Tasks is the subtask chain: node weights are processing requirements
	// (work units), edge weights are the dependency costs w(dp_i)
	// (traffic/reliability weights).
	Tasks *graph.Path
	// Deadline is k, the completion bound in time units.
	Deadline float64
}

// Validate checks the specification.
func (s *Spec) Validate() error {
	if s.Tasks == nil {
		return fmt.Errorf("nil task chain: %w", ErrBadSpec)
	}
	if err := s.Tasks.Validate(); err != nil {
		return err
	}
	if !(s.Deadline > 0) || math.IsNaN(s.Deadline) || math.IsInf(s.Deadline, 0) {
		return fmt.Errorf("deadline %v: %w", s.Deadline, ErrBadSpec)
	}
	return nil
}

// Plan is a deadline-feasible partition mapped onto a machine.
type Plan struct {
	// Partition is the bandwidth-minimal cut satisfying the deadline.
	Partition *core.PathPartition
	// Mapping assigns components to processors (identity on shared memory).
	Mapping *arch.Mapping
	// Metrics are the static quality measures of the partition.
	Metrics *arch.Metrics
	// StageTime is the slowest component's execution time; it is ≤ the
	// deadline by construction.
	StageTime float64
	// Throughput is the steady-state pipeline rate (problem instances per
	// unit time), limited by the slower of computation and bus transfer.
	Throughput float64
}

// Build computes the §3 partition: bandwidth minimization under
// K = deadline × speed, then the trivial shared-memory mapping. It returns
// ErrDeadline when even maximal division cannot meet the deadline, and
// arch.ErrTooFewProcessors when the machine is too small for the resulting
// number of components.
func Build(spec *Spec, m *arch.Machine) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	k := spec.Deadline * m.Speed
	part, err := core.Bandwidth(spec.Tasks, k)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return nil, fmt.Errorf("%v: %w", err, ErrDeadline)
		}
		return nil, err
	}
	mapping, err := arch.MapComponents(m, part.NumComponents())
	if err != nil {
		return nil, err
	}
	metrics, err := arch.EvaluatePath(m, spec.Tasks, part.Cut)
	if err != nil {
		return nil, err
	}
	rate := metrics.ComputeMakespan
	if metrics.BusTime > rate {
		rate = metrics.BusTime
	}
	plan := &Plan{
		Partition: part,
		Mapping:   mapping,
		Metrics:   metrics,
		StageTime: metrics.ComputeMakespan,
	}
	if rate > 0 {
		plan.Throughput = 1 / rate
	}
	return plan, nil
}

// MeetsDeadline reports whether every component completes within the
// deadline on the machine.
func (p *Plan) MeetsDeadline(spec *Spec) bool {
	return p.StageTime <= spec.Deadline+1e-12
}

// MinimalProcessors returns the smallest processor count that can meet the
// deadline (first-fit on the chain), independent of communication cost; the
// gap between this and Build's component count is the §2.2 fragmentation
// trade-off.
func MinimalProcessors(spec *Spec, m *arch.Machine) (int, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if err := m.Validate(); err != nil {
		return 0, err
	}
	k := spec.Deadline * m.Speed
	pp, err := core.MinProcessorsPath(spec.Tasks, k)
	if err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			return 0, fmt.Errorf("%v: %w", err, ErrDeadline)
		}
		return 0, err
	}
	return pp.NumComponents(), nil
}
