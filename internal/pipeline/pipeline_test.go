package pipeline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func machine() *arch.Machine {
	return &arch.Machine{Processors: 16, Speed: 10, BusBandwidth: 100}
}

func spec(t *testing.T, nodeW, edgeW []float64, deadline float64) *Spec {
	t.Helper()
	p, err := graph.NewPath(nodeW, edgeW)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	return &Spec{Tasks: p, Deadline: deadline}
}

func TestSpecValidate(t *testing.T) {
	if err := (&Spec{}).Validate(); !errors.Is(err, ErrBadSpec) {
		t.Errorf("nil tasks: %v", err)
	}
	s := spec(t, []float64{1, 2}, []float64{3}, 0)
	if err := s.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Errorf("deadline 0: %v", err)
	}
}

func TestBuildMeetsDeadline(t *testing.T) {
	// 8 stages of work 50 each at speed 10 → 5 time units per stage.
	// Deadline 12 → K = 120 work units → at most 2 stages per processor.
	s := spec(t,
		[]float64{50, 50, 50, 50, 50, 50, 50, 50},
		[]float64{10, 1, 10, 1, 10, 1, 10},
		12)
	plan, err := Build(s, machine())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !plan.MeetsDeadline(s) {
		t.Errorf("plan misses deadline: stage time %v > %v", plan.StageTime, s.Deadline)
	}
	if plan.Partition.NumComponents() != 4 {
		t.Errorf("components = %d, want 4 (pairs)", plan.Partition.NumComponents())
	}
	// The cheap edges (weight 1) are the optimal cuts.
	if plan.Partition.CutWeight != 3 {
		t.Errorf("cut weight = %v (cut %v), want 3", plan.Partition.CutWeight, plan.Partition.Cut)
	}
	if plan.Throughput <= 0 {
		t.Errorf("throughput = %v, want > 0", plan.Throughput)
	}
	if len(plan.Mapping.Processor) != plan.Partition.NumComponents() {
		t.Errorf("mapping covers %d components, want %d",
			len(plan.Mapping.Processor), plan.Partition.NumComponents())
	}
}

func TestBuildDeadlineUnachievable(t *testing.T) {
	// One stage needs 100/10 = 10 time units; deadline 5 is impossible.
	s := spec(t, []float64{100, 10}, []float64{1}, 5)
	if _, err := Build(s, machine()); !errors.Is(err, ErrDeadline) {
		t.Errorf("error = %v, want ErrDeadline", err)
	}
}

func TestBuildTooFewProcessors(t *testing.T) {
	s := spec(t, []float64{50, 50, 50, 50}, []float64{1, 1, 1}, 5)
	m := &arch.Machine{Processors: 2, Speed: 10, BusBandwidth: 100}
	// Deadline 5 → K=50 → 4 components needed, only 2 processors.
	if _, err := Build(s, m); !errors.Is(err, arch.ErrTooFewProcessors) {
		t.Errorf("error = %v, want ErrTooFewProcessors", err)
	}
}

func TestMinimalProcessors(t *testing.T) {
	s := spec(t, []float64{50, 50, 50, 50, 50, 50}, []float64{9, 9, 9, 9, 9}, 12)
	n, err := MinimalProcessors(s, machine())
	if err != nil {
		t.Fatalf("MinimalProcessors: %v", err)
	}
	if n != 3 {
		t.Errorf("MinimalProcessors = %d, want 3 (120 units per processor)", n)
	}
	bad := spec(t, []float64{200}, nil, 1)
	if _, err := MinimalProcessors(bad, machine()); !errors.Is(err, ErrDeadline) {
		t.Errorf("error = %v, want ErrDeadline", err)
	}
}

func TestBuildUsesNoMoreTrafficThanMinimalSplit(t *testing.T) {
	// Build's bandwidth-minimal plan never carries more cut weight than the
	// pure first-fit split at the same K.
	r := workload.NewRNG(77)
	for trial := 0; trial < 50; trial++ {
		p := workload.RandomPath(r, 40, workload.UniformWeights(10, 50), workload.UniformWeights(1, 100))
		s := &Spec{Tasks: p, Deadline: 15}
		m := &arch.Machine{Processors: 40, Speed: 10, BusBandwidth: 100}
		plan, err := Build(s, m)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		ff, err := core.MinProcessorsPath(p, s.Deadline*m.Speed)
		if err != nil {
			t.Fatalf("MinProcessorsPath: %v", err)
		}
		ffWeight, _ := p.CutWeight(ff.Cut)
		if plan.Partition.CutWeight > ffWeight+1e-9 {
			t.Fatalf("bandwidth plan weight %v exceeds first-fit weight %v",
				plan.Partition.CutWeight, ffWeight)
		}
	}
}

func TestSpecValidateBadTasks(t *testing.T) {
	bad := &Spec{Tasks: &graph.Path{NodeW: []float64{1, 2}, EdgeW: []float64{1, 2}}, Deadline: 1}
	if err := bad.Validate(); !errors.Is(err, graph.ErrBadShape) {
		t.Errorf("bad tasks: %v", err)
	}
	inf := spec(t, []float64{1}, nil, math.Inf(1))
	if err := inf.Validate(); !errors.Is(err, ErrBadSpec) {
		t.Errorf("inf deadline: %v", err)
	}
}

func TestBuildBadMachine(t *testing.T) {
	s := spec(t, []float64{1, 2}, []float64{1}, 5)
	m := &arch.Machine{Processors: 0, Speed: 1, BusBandwidth: 1}
	if _, err := Build(s, m); !errors.Is(err, arch.ErrBadMachine) {
		t.Errorf("bad machine: %v", err)
	}
	if _, err := MinimalProcessors(s, m); !errors.Is(err, arch.ErrBadMachine) {
		t.Errorf("minimal bad machine: %v", err)
	}
	if _, err := MinimalProcessors(&Spec{}, machine()); !errors.Is(err, ErrBadSpec) {
		t.Errorf("minimal bad spec: %v", err)
	}
	if _, err := Build(&Spec{}, machine()); !errors.Is(err, ErrBadSpec) {
		t.Errorf("build bad spec: %v", err)
	}
}
