package verify

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/verify/oracle"
	"repro/internal/workload"
)

// FuzzDifferential drives the registry-wide differential round from a fuzzed
// seed: every solver against the exhaustive oracles, same-objective solvers
// against each other, and every answer through its certificate. The seed
// corpus keeps a deterministic slice of the space in plain `go test` runs.
func FuzzDifferential(f *testing.F) {
	for seed := uint64(100); seed < 110; seed++ {
		f.Add(seed)
	}
	// Seeds added with the part-count objectives (maxmin, summax): the round
	// now draws a part target per graph and runs the new solvers against
	// MaxMinBrute/SumOfMaxBrute too, so widen the deterministic slice.
	for seed := uint64(1711); seed < 1716; seed++ {
		f.Add(seed)
	}
	for seed := uint64(2503); seed < 2508; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		differentialRound(t, seed, 10)
	})
}

// FuzzCertificates feeds arbitrary (often corrupt) cuts to the certificate
// checkers and enforces soundness: a certificate may reject a good answer
// only for documented reasons, but it must NEVER certify a wrong one — if
// Certified is true, the cut is feasible and its objective value matches the
// exhaustive oracle optimum.
func FuzzCertificates(f *testing.F) {
	f.Add(uint64(1), []byte{0})
	f.Add(uint64(2), []byte{1, 3})
	f.Add(uint64(3), []byte{2, 2, 250})
	f.Add(uint64(4), []byte(nil))
	f.Fuzz(func(t *testing.T, seed uint64, rawCut []byte) {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(9)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		k := p.MaxNodeWeight() * (1 + 2*r.Float64())
		// Derive a cut from the raw bytes: in-range but arbitrary, with
		// duplicates allowed (NormalizeCut must absorb them).
		cut := make([]int, 0, len(rawCut))
		for _, b := range rawCut {
			cut = append(cut, int(b)%p.NumEdges())
		}
		pd, err := oracle.PathDP(p, k)
		if err != nil {
			t.Fatalf("seed %d: PathDP: %v", seed, err)
		}
		if !pd.Feasible {
			t.Fatalf("seed %d: K above max task weight must be feasible", seed)
		}
		tr := p.AsTree()
		tb, err := oracle.TreeBrute(tr, k)
		if err != nil {
			t.Fatalf("seed %d: TreeBrute: %v", seed, err)
		}

		if cert, err := CertifyBandwidth(p, k, cut); err != nil {
			t.Fatalf("seed %d cut %v: CertifyBandwidth: %v", seed, cut, err)
		} else if cert.Certified {
			if err := core.CheckPathFeasible(p, graph.NormalizeCut(cut), k); err != nil {
				t.Errorf("seed %d cut %v: certified infeasible cut: %v", seed, cut, err)
			}
			if math.Abs(cert.Objective-pd.MinCutWeight) > 1e-9*math.Max(1, pd.MinCutWeight) {
				t.Errorf("seed %d cut %v: certified weight %v, optimum %v", seed, cut, cert.Objective, pd.MinCutWeight)
			}
		}
		if cert, err := CertifyBottleneck(tr, k, cut); err != nil {
			t.Fatalf("seed %d cut %v: CertifyBottleneck: %v", seed, cut, err)
		} else if cert.Certified {
			if math.Abs(cert.Objective-tb.Bottleneck) > 1e-9*math.Max(1, tb.Bottleneck) {
				t.Errorf("seed %d cut %v: certified bottleneck %v, optimum %v", seed, cut, cert.Objective, tb.Bottleneck)
			}
		}
		if cert, err := CertifyProcMin(tr, k, cut); err != nil {
			t.Fatalf("seed %d cut %v: CertifyProcMin: %v", seed, cut, err)
		} else if cert.Certified {
			if int(cert.Objective) != tb.Components {
				t.Errorf("seed %d cut %v: certified %v components, optimum %d", seed, cut, cert.Objective, tb.Components)
			}
		}

		// Part-count certificates: the arbitrary cut rarely has the right
		// component count, but when it does and Certified comes back true,
		// the objective value must equal the exhaustive oracle optimum.
		parts := 1 + r.Intn(n)
		mm, err := oracle.MaxMinBrute(tr, parts)
		if err != nil {
			t.Fatalf("seed %d: MaxMinBrute: %v", seed, err)
		}
		sm, err := oracle.SumOfMaxBrute(tr, parts)
		if err != nil {
			t.Fatalf("seed %d: SumOfMaxBrute: %v", seed, err)
		}
		if cert, err := CertifyMaxMin(tr, parts, cut); err != nil {
			t.Fatalf("seed %d cut %v: CertifyMaxMin: %v", seed, cut, err)
		} else if cert.Certified {
			if len(graph.NormalizeCut(cut))+1 != parts {
				t.Errorf("seed %d cut %v: certified wrong component count for parts=%d", seed, cut, parts)
			}
			if math.Abs(cert.Objective-mm.Value) > 1e-9*math.Max(1, mm.Value) {
				t.Errorf("seed %d cut %v: certified maxmin %v, optimum %v", seed, cut, cert.Objective, mm.Value)
			}
		}
		if cert, err := CertifySumOfMax(tr, parts, cut); err != nil {
			t.Fatalf("seed %d cut %v: CertifySumOfMax: %v", seed, cut, err)
		} else if cert.Certified {
			if len(graph.NormalizeCut(cut))+1 != parts {
				t.Errorf("seed %d cut %v: certified wrong component count for parts=%d", seed, cut, parts)
			}
			if math.Abs(cert.Objective-sm.Value) > 1e-9*math.Max(1, sm.Value) {
				t.Errorf("seed %d cut %v: certified summax %v, optimum %v", seed, cut, cert.Objective, sm.Value)
			}
		}
	})
}
