package verify

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/workload"
)

// partsFixtureTree is a 4-chain with tasks 1,5,2,4. With parts=2 the optimal
// max–min cut is edge 1 ({1,5}|{2,4}, minimum 6) and the optimal sum-of-max
// cut is edge 0 ({1}|{5,2,4}, paying 1+5=6).
func partsFixtureTree(t *testing.T) *graph.Tree {
	return mustTree(t, []float64{1, 5, 2, 4}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
}

func TestCertifyMaxMin(t *testing.T) {
	tr := partsFixtureTree(t)
	cert, err := CertifyMaxMin(tr, 2, []int{1})
	if err != nil {
		t.Fatalf("CertifyMaxMin: %v", err)
	}
	if !cert.Certified || cert.Objective != 6 {
		t.Errorf("optimal cut not certified: %+v", cert)
	}
	if cert.Criterion != "maxmin" {
		t.Errorf("Criterion = %q, want maxmin", cert.Criterion)
	}
	// Mutation: cutting edge 2 instead leaves minimum 4 < 6; the greedy
	// packing finds a better partition and the certificate must reject.
	cert, err = CertifyMaxMin(tr, 2, []int{2})
	if err != nil {
		t.Fatalf("CertifyMaxMin(corrupt): %v", err)
	}
	if cert.Certified {
		t.Errorf("suboptimal minimum 4 must not certify: %+v", cert)
	}
	if cert.Objective != 4 || !strings.Contains(cert.Detail, "exists") {
		t.Errorf("unexpected evidence: %+v", cert)
	}
	// Mutation: wrong component count for the claimed part target.
	cert, err = CertifyMaxMin(tr, 2, []int{0, 1})
	if err != nil {
		t.Fatalf("CertifyMaxMin(wrong parts): %v", err)
	}
	if cert.Certified || !strings.Contains(cert.Detail, "exactly") {
		t.Errorf("3 components against parts=2 must not certify: %+v", cert)
	}
	// Malformed cut index: error, not a false certificate.
	if _, err := CertifyMaxMin(tr, 2, []int{99}); !errors.Is(err, graph.ErrBadCut) {
		t.Errorf("out-of-range cut = %v, want ErrBadCut", err)
	}
}

func TestCertifySumOfMax(t *testing.T) {
	tr := partsFixtureTree(t)
	cert, err := CertifySumOfMax(tr, 2, []int{0})
	if err != nil {
		t.Fatalf("CertifySumOfMax: %v", err)
	}
	if !cert.Certified || cert.Objective != 6 || cert.Bound != 6 {
		t.Errorf("optimal cut not certified: %+v", cert)
	}
	if cert.Criterion != "summax" {
		t.Errorf("Criterion = %q, want summax", cert.Criterion)
	}
	// Mutation: cutting edge 1 pays 5+4=9 > 6; the oracle DP must reject.
	cert, err = CertifySumOfMax(tr, 2, []int{1})
	if err != nil {
		t.Fatalf("CertifySumOfMax(corrupt): %v", err)
	}
	if cert.Certified {
		t.Errorf("suboptimal sum 9 must not certify: %+v", cert)
	}
	if cert.Objective != 9 || !strings.Contains(cert.Detail, "optimum") {
		t.Errorf("unexpected evidence: %+v", cert)
	}
	// Mutation: wrong component count.
	cert, err = CertifySumOfMax(tr, 3, []int{0})
	if err != nil {
		t.Fatalf("CertifySumOfMax(wrong parts): %v", err)
	}
	if cert.Certified || !strings.Contains(cert.Detail, "exactly") {
		t.Errorf("2 components against parts=3 must not certify: %+v", cert)
	}
	// Malformed cut index: error, not a false certificate.
	if _, err := CertifySumOfMax(tr, 2, []int{99}); !errors.Is(err, graph.ErrBadCut) {
		t.Errorf("out-of-range cut = %v, want ErrBadCut", err)
	}
}

// The engine-facing dispatch: part-count solvers route to their certificates
// through CertifyResult on both tree and path-lifted inputs.
func TestCertifyResultPartCountDispatch(t *testing.T) {
	p := mustPath(t, []float64{1, 5, 2, 4}, []float64{1, 1, 1})
	tr := partsFixtureTree(t)
	for _, tt := range []struct {
		solver string
		req    engine.Request
		want   string
	}{
		{"maxmin-path", engine.Request{Solver: "maxmin-path", Path: p, K: 2}, "maxmin"},
		{"maxmin-tree", engine.Request{Solver: "maxmin-tree", Tree: tr, K: 2}, "maxmin"},
		{"maxmin-tree/path", engine.Request{Solver: "maxmin-tree", Path: p, K: 2}, "maxmin"},
		{"summax-tree", engine.Request{Solver: "summax-tree", Tree: tr, K: 2}, "summax"},
		{"summax-tree/path", engine.Request{Solver: "summax-tree", Path: p, K: 2}, "summax"},
	} {
		res, err := engine.Solve(context.Background(), tt.req)
		if err != nil {
			t.Fatalf("%s: Solve: %v", tt.solver, err)
		}
		cert, err := CertifyResult(tt.req, &res)
		if err != nil {
			t.Fatalf("%s: CertifyResult: %v", tt.solver, err)
		}
		if !cert.Certified {
			t.Errorf("%s: result not certified: %+v (cut %v)", tt.solver, cert, res.Cut)
		}
		if cert.Criterion != tt.want {
			t.Errorf("%s: criterion %q, want %q", tt.solver, cert.Criterion, tt.want)
		}
	}
	// Fractional part counts cannot be certified (nor solved).
	req := engine.Request{Solver: "maxmin-tree", Tree: tr, K: 2.5}
	if _, err := CertifyResult(req, &engine.Result{}); !errors.Is(err, ErrNotCertifiable) {
		t.Errorf("fractional K: error = %v, want ErrNotCertifiable", err)
	}
}

// Metamorphic property: scaling every node weight by a power of two (exact
// in float64) with the part count fixed scales both part-count objectives by
// the same factor.
func TestMetamorphicPartCountScaling(t *testing.T) {
	const factor = 4
	r := workload.NewRNG(44)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(11)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		parts := 1 + r.Intn(n)
		scaled := tr.Clone()
		for i := range scaled.NodeW {
			scaled.NodeW[i] *= factor
		}
		for _, name := range []string{"maxmin-tree", "summax-tree"} {
			s, err := engine.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			obj := engine.ObjectiveOf(s)
			base, err := engine.Solve(context.Background(), engine.Request{Solver: name, Tree: tr, K: float64(parts)})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s: %v", r.Seed(), trial, name, err)
			}
			big, err := engine.Solve(context.Background(), engine.Request{Solver: name, Tree: scaled, K: float64(parts)})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s scaled: %v", r.Seed(), trial, name, err)
			}
			var got, want float64
			if obj == engine.ObjectiveSumOfMax {
				got, want = sumOfMaxValue(t, scaled, big.Cut), sumOfMaxValue(t, tr, base.Cut)
			} else {
				got, want = objectiveValue(obj, &big), objectiveValue(obj, &base)
			}
			if !feq(got, factor*want) {
				t.Errorf("seed %d trial %d: %s: scaled objective %v, want %v",
					r.Seed(), trial, name, got, factor*want)
			}
		}
	}
}

// Metamorphic property: relabeling tree vertices leaves both part-count
// objective values unchanged.
func TestMetamorphicPartCountRelabeling(t *testing.T) {
	r := workload.NewRNG(55)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(11)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		parts := 1 + r.Intn(n)
		perm := r.Perm(n)
		nodeW := make([]float64, n)
		for v, w := range tr.NodeW {
			nodeW[perm[v]] = w
		}
		edges := make([]graph.Edge, len(tr.Edges))
		for i, e := range tr.Edges {
			edges[i] = graph.Edge{U: perm[e.U], V: perm[e.V], W: e.W}
		}
		relabeled, err := graph.NewTree(nodeW, edges)
		if err != nil {
			t.Fatalf("seed %d trial %d: NewTree: %v", r.Seed(), trial, err)
		}
		for _, name := range []string{"maxmin-tree", "summax-tree"} {
			s, err := engine.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			obj := engine.ObjectiveOf(s)
			base, err := engine.Solve(context.Background(), engine.Request{Solver: name, Tree: tr, K: float64(parts)})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s: %v", r.Seed(), trial, name, err)
			}
			rel, err := engine.Solve(context.Background(), engine.Request{Solver: name, Tree: relabeled, K: float64(parts)})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s relabeled: %v", r.Seed(), trial, name, err)
			}
			var got, want float64
			if obj == engine.ObjectiveSumOfMax {
				got, want = sumOfMaxValue(t, relabeled, rel.Cut), sumOfMaxValue(t, tr, base.Cut)
			} else {
				got, want = objectiveValue(obj, &rel), objectiveValue(obj, &base)
			}
			if !feq(got, want) {
				t.Errorf("seed %d trial %d: %s: relabeled objective %v, want %v",
					r.Seed(), trial, name, got, want)
			}
		}
	}
}

// Metamorphic property: reversing a path leaves the max–min objective value
// unchanged.
func TestMetamorphicPartCountReversal(t *testing.T) {
	r := workload.NewRNG(66)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(11)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		parts := 1 + r.Intn(n)
		rev := p.Clone()
		for i, j := 0, len(rev.NodeW)-1; i < j; i, j = i+1, j-1 {
			rev.NodeW[i], rev.NodeW[j] = rev.NodeW[j], rev.NodeW[i]
		}
		for i, j := 0, len(rev.EdgeW)-1; i < j; i, j = i+1, j-1 {
			rev.EdgeW[i], rev.EdgeW[j] = rev.EdgeW[j], rev.EdgeW[i]
		}
		base, err := engine.Solve(context.Background(), engine.Request{Solver: "maxmin-path", Path: p, K: float64(parts)})
		if err != nil {
			t.Fatalf("seed %d trial %d: maxmin-path: %v", r.Seed(), trial, err)
		}
		back, err := engine.Solve(context.Background(), engine.Request{Solver: "maxmin-path", Path: rev, K: float64(parts)})
		if err != nil {
			t.Fatalf("seed %d trial %d: maxmin-path reversed: %v", r.Seed(), trial, err)
		}
		got := objectiveValue(engine.ObjectiveMaxMin, &back)
		want := objectiveValue(engine.ObjectiveMaxMin, &base)
		if !feq(got, want) {
			t.Errorf("seed %d trial %d: maxmin-path: reversed objective %v, want %v",
				r.Seed(), trial, got, want)
		}
	}
}
