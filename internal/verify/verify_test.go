package verify

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
)

func mustPath(t *testing.T, nodeW, edgeW []float64) *graph.Path {
	t.Helper()
	p, err := graph.NewPath(nodeW, edgeW)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	return p
}

func mustTree(t *testing.T, nodeW []float64, edges []graph.Edge) *graph.Tree {
	t.Helper()
	tr, err := graph.NewTree(nodeW, edges)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tr
}

// fixtureTree is a 4-path (as a tree) with tasks 2,2,2,2 and edge weights
// 5,1,9. With K=4 the optimal bottleneck and bandwidth both cut only edge 1
// (weight 1), yielding components {0,1} and {2,3}; 2 components is minimal.
func fixtureTree(t *testing.T) *graph.Tree {
	return mustTree(t, []float64{2, 2, 2, 2}, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 9},
	})
}

func TestCertifyBottleneck(t *testing.T) {
	tr := fixtureTree(t)
	cert, err := CertifyBottleneck(tr, 4, []int{1})
	if err != nil {
		t.Fatalf("CertifyBottleneck: %v", err)
	}
	if !cert.Certified || cert.Objective != 1 {
		t.Errorf("optimal cut not certified: %+v", cert)
	}
	// Mutation: a feasible cut through the weight-5 edge claims bottleneck 5;
	// the certificate must catch that a lighter feasible cut exists.
	cert, err = CertifyBottleneck(tr, 4, []int{0, 1})
	if err != nil {
		t.Fatalf("CertifyBottleneck(corrupt): %v", err)
	}
	if cert.Certified {
		t.Errorf("suboptimal bottleneck 5 must not certify: %+v", cert)
	}
	if cert.Objective != 5 || !strings.Contains(cert.Detail, "lighter") {
		t.Errorf("unexpected evidence: %+v", cert)
	}
	// Infeasible cut: leaves component {0,1,2} of weight 6 > 4.
	cert, err = CertifyBottleneck(tr, 4, []int{2})
	if err != nil {
		t.Fatalf("CertifyBottleneck(infeasible): %v", err)
	}
	if cert.Certified {
		t.Errorf("infeasible cut must not certify: %+v", cert)
	}
	// Empty cut under a generous bound: bottleneck 0 is unbeatable.
	cert, err = CertifyBottleneck(tr, 100, nil)
	if err != nil {
		t.Fatalf("CertifyBottleneck(empty): %v", err)
	}
	if !cert.Certified || cert.Objective != 0 {
		t.Errorf("empty cut under large K: %+v", cert)
	}
	// Malformed cut index: error, not a false certificate.
	if _, err := CertifyBottleneck(tr, 4, []int{99}); !errors.Is(err, graph.ErrBadCut) {
		t.Errorf("out-of-range cut = %v, want ErrBadCut", err)
	}
}

func TestCertifyProcMin(t *testing.T) {
	tr := fixtureTree(t)
	cert, err := CertifyProcMin(tr, 4, []int{1})
	if err != nil {
		t.Fatalf("CertifyProcMin: %v", err)
	}
	if !cert.Certified || cert.Objective != 2 || cert.Bound != 2 {
		t.Errorf("optimal 2-component cut not certified: %+v", cert)
	}
	// Mutation: an extra unnecessary cut edge inflates the component count.
	cert, err = CertifyProcMin(tr, 4, []int{0, 1})
	if err != nil {
		t.Fatalf("CertifyProcMin(corrupt): %v", err)
	}
	if cert.Certified {
		t.Errorf("3 components when 2 suffice must not certify: %+v", cert)
	}
	if !strings.Contains(cert.Detail, "minimum is 2") {
		t.Errorf("unexpected evidence: %+v", cert)
	}
	// Infeasible cut.
	cert, err = CertifyProcMin(tr, 4, nil)
	if err != nil {
		t.Fatalf("CertifyProcMin(infeasible): %v", err)
	}
	if cert.Certified {
		t.Errorf("infeasible empty cut must not certify: %+v", cert)
	}
}

func TestCertifyBandwidth(t *testing.T) {
	p := mustPath(t, []float64{2, 2, 2, 2}, []float64{5, 1, 9})
	cert, err := CertifyBandwidth(p, 4, []int{1})
	if err != nil {
		t.Fatalf("CertifyBandwidth: %v", err)
	}
	if !cert.Certified || cert.Objective != 1 || cert.Bound != 1 {
		t.Errorf("optimal cut not certified: %+v", cert)
	}
	// Mutation: a feasible but heavier cut (edges 0 and 2, weight 14).
	cert, err = CertifyBandwidth(p, 4, []int{0, 2})
	if err != nil {
		t.Fatalf("CertifyBandwidth(corrupt): %v", err)
	}
	if cert.Certified {
		t.Errorf("cut weight 14 over bound 1 must not certify: %+v", cert)
	}
	if !strings.Contains(cert.Detail, "lower bound") {
		t.Errorf("unexpected evidence: %+v", cert)
	}
	// Infeasible cut.
	cert, err = CertifyBandwidth(p, 4, nil)
	if err != nil {
		t.Fatalf("CertifyBandwidth(infeasible): %v", err)
	}
	if cert.Certified {
		t.Errorf("infeasible empty cut must not certify: %+v", cert)
	}
	// No prime subpaths: the empty cut is optimal.
	cert, err = CertifyBandwidth(p, 100, nil)
	if err != nil {
		t.Fatalf("CertifyBandwidth(empty): %v", err)
	}
	if !cert.Certified || cert.Objective != 0 {
		t.Errorf("empty cut under large K: %+v", cert)
	}
}

func TestCertifyResultDispatch(t *testing.T) {
	p := mustPath(t, []float64{2, 2, 2, 2}, []float64{5, 1, 9})
	for _, solver := range []string{"bandwidth", "minproc-path", "bottleneck", "partition-tree"} {
		req := engine.Request{Solver: solver, Path: p, K: 4}
		res, err := engine.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: Solve: %v", solver, err)
		}
		cert, err := CertifyResult(req, &res)
		if err != nil {
			t.Fatalf("%s: CertifyResult: %v", solver, err)
		}
		if !cert.Certified {
			t.Errorf("%s: result not certified: %+v", solver, cert)
		}
	}
}

func TestCertifyResultErrors(t *testing.T) {
	p := mustPath(t, []float64{1, 1}, []float64{1})
	req := engine.Request{Solver: "no-such-solver", Path: p, K: 2}
	if _, err := CertifyResult(req, &engine.Result{}); !errors.Is(err, engine.ErrUnknownSolver) {
		t.Errorf("unknown solver = %v, want ErrUnknownSolver", err)
	}
	req = engine.Request{Solver: "bandwidth", K: 2}
	if _, err := CertifyResult(req, &engine.Result{}); !errors.Is(err, ErrNotCertifiable) {
		t.Errorf("missing graph = %v, want ErrNotCertifiable", err)
	}
	if _, err := CertifyResult(engine.Request{Solver: "bandwidth", Path: p, K: 2}, nil); !errors.Is(err, ErrNotCertifiable) {
		t.Errorf("nil result = %v, want ErrNotCertifiable", err)
	}
}

// A solver registered without an Objective declaration must be reported as
// not certifiable rather than mis-certified.
type anonSolver struct{}

func (anonSolver) Name() string      { return "verify-test-anon" }
func (anonSolver) Kind() engine.Kind { return engine.KindPath }
func (anonSolver) Solve(ctx context.Context, req engine.Request) (engine.Result, error) {
	return engine.Result{}, nil
}

func TestCertifyResultUnknownObjective(t *testing.T) {
	engine.Register(anonSolver{})
	p := mustPath(t, []float64{1, 1}, []float64{1})
	req := engine.Request{Solver: "verify-test-anon", Path: p, K: 2}
	if _, err := CertifyResult(req, &engine.Result{}); !errors.Is(err, ErrNotCertifiable) {
		t.Errorf("undeclared objective = %v, want ErrNotCertifiable", err)
	}
}

func TestCertifyBandwidthCapDetail(t *testing.T) {
	// With a binding component cap the solver may legitimately return a cut
	// heavier than the unconstrained bound; the certificate must decline to
	// certify but say why.
	// Unconstrained optimum cuts edges 0 and 2 (weight 2, 3 components);
	// capped at 2 components the only feasible cut is edge 1 (weight 10).
	p := mustPath(t, []float64{2, 2, 2, 2}, []float64{1, 10, 1})
	req := engine.Request{Solver: "bandwidth-limited", Path: p, K: 4,
		Options: engine.Options{MaxComponents: 2}}
	res, err := engine.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	cert, err := CertifyResult(req, &res)
	if err != nil {
		t.Fatalf("CertifyResult: %v", err)
	}
	if cert.Certified {
		// The cap did not bind for this instance; the test premise failed.
		t.Fatalf("expected the 2-component cap to bind: %+v (cut %v)", cert, res.Cut)
	}
	if !strings.Contains(cert.Detail, "component cap") {
		t.Errorf("Detail should mention the component cap: %+v", cert)
	}
}

// Non-infeasibility errors from the feasibility layer (bad bound, malformed
// graph) must pass through as errors, never as uncertified certificates.
func TestCertifyErrorPassThrough(t *testing.T) {
	tr := fixtureTree(t)
	p := mustPath(t, []float64{2, 2, 2, 2}, []float64{5, 1, 9})
	if _, err := CertifyBottleneck(tr, 0, []int{1}); !errors.Is(err, core.ErrBadBound) {
		t.Errorf("CertifyBottleneck(K=0) error = %v, want ErrBadBound", err)
	}
	if _, err := CertifyProcMin(tr, 0, []int{1}); !errors.Is(err, core.ErrBadBound) {
		t.Errorf("CertifyProcMin(K=0) error = %v, want ErrBadBound", err)
	}
	if _, err := CertifyBandwidth(p, 0, []int{1}); !errors.Is(err, core.ErrBadBound) {
		t.Errorf("CertifyBandwidth(K=0) error = %v, want ErrBadBound", err)
	}
	if _, err := CertifyProcMin(tr, 4, []int{99}); !errors.Is(err, graph.ErrBadCut) {
		t.Errorf("CertifyProcMin(bad cut) error = %v, want ErrBadCut", err)
	}
}

// An infeasible cut handed to CertifyProcMin reports uncertified with the
// infeasibility in Detail (mirrors the bottleneck/bandwidth behavior).
func TestCertifyProcMinInfeasibleCut(t *testing.T) {
	tr := fixtureTree(t)
	cert, err := CertifyProcMin(tr, 4, nil) // uncut: total 8 > 4
	if err != nil {
		t.Fatalf("CertifyProcMin: %v", err)
	}
	if cert.Certified || cert.Detail == "" {
		t.Errorf("infeasible cut certified: %+v", cert)
	}
}

// Tree-criterion certificates through CertifyResult need a graph; a request
// with neither path nor tree is not certifiable.
func TestCertifyResultNoGraphTreeCriterion(t *testing.T) {
	for _, solver := range []string{"bottleneck", "minproc"} {
		req := engine.Request{Solver: solver, K: 4}
		if _, err := CertifyResult(req, &engine.Result{}); !errors.Is(err, ErrNotCertifiable) {
			t.Errorf("%s without graph: error = %v, want ErrNotCertifiable", solver, err)
		}
	}
}
