package oracle

import (
	"errors"
	"math"
	"math/bits"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestMaxMinBruteHandCases(t *testing.T) {
	chain := mustTree(t, []float64{1, 5, 2, 4}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	for _, tt := range []struct {
		parts int
		value float64
		cut   []int
	}{
		{1, 12, []int{}},
		{2, 6, []int{1}},
		{4, 1, []int{0, 1, 2}},
	} {
		res, err := MaxMinBrute(chain, tt.parts)
		if err != nil {
			t.Fatalf("MaxMinBrute(parts=%d): %v", tt.parts, err)
		}
		if res.Value != tt.value {
			t.Errorf("parts=%d: Value = %v, want %v", tt.parts, res.Value, tt.value)
		}
		if len(res.Cut) != tt.parts-1 {
			t.Errorf("parts=%d: Cut = %v, want %d edges", tt.parts, res.Cut, tt.parts-1)
		}
		if tt.parts == 2 && !reflect.DeepEqual(res.Cut, tt.cut) {
			t.Errorf("parts=2: Cut = %v, want %v", res.Cut, tt.cut)
		}
	}
}

func TestSumOfMaxBruteHandCases(t *testing.T) {
	chain := mustTree(t, []float64{1, 5, 2, 4}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	for _, tt := range []struct {
		parts int
		value float64
	}{
		{1, 5},
		{2, 6},  // {1} | {5,2,4}
		{4, 12}, // every node alone
	} {
		res, err := SumOfMaxBrute(chain, tt.parts)
		if err != nil {
			t.Fatalf("SumOfMaxBrute(parts=%d): %v", tt.parts, err)
		}
		if res.Value != tt.value {
			t.Errorf("parts=%d: Value = %v, want %v", tt.parts, res.Value, tt.value)
		}
		if len(res.Cut) != tt.parts-1 {
			t.Errorf("parts=%d: Cut = %v, want %d edges", tt.parts, res.Cut, tt.parts-1)
		}
	}
}

func TestPartsBruteErrors(t *testing.T) {
	chain := mustTree(t, []float64{1, 2, 3}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	})
	for _, parts := range []int{0, -1, 4} {
		if _, err := MaxMinBrute(chain, parts); !errors.Is(err, ErrInfeasible) {
			t.Errorf("MaxMinBrute(parts=%d) = %v, want ErrInfeasible", parts, err)
		}
		if _, err := SumOfMaxBrute(chain, parts); !errors.Is(err, ErrInfeasible) {
			t.Errorf("SumOfMaxBrute(parts=%d) = %v, want ErrInfeasible", parts, err)
		}
		if _, err := SumOfMaxDP(chain, parts); !errors.Is(err, ErrInfeasible) {
			t.Errorf("SumOfMaxDP(parts=%d) = %v, want ErrInfeasible", parts, err)
		}
	}
	r := workload.NewRNG(7)
	big := workload.RandomTree(r, MaxBruteEdges+2, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
	if _, err := MaxMinBrute(big, 2); !errors.Is(err, ErrTooLarge) {
		t.Errorf("MaxMinBrute(big) = %v, want ErrTooLarge", err)
	}
	if _, err := SumOfMaxBrute(big, 2); !errors.Is(err, ErrTooLarge) {
		t.Errorf("SumOfMaxBrute(big) = %v, want ErrTooLarge", err)
	}
}

func TestMaxPartsOverHandCases(t *testing.T) {
	chain := mustTree(t, []float64{1, 5, 2, 4}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	for _, tt := range []struct {
		b    float64
		want int
	}{
		{0, 4},  // every subtree severs immediately
		{4, 2},  // {1,5} | {2,4}; no 3-way split keeps every piece >= 4
		{6, 2},  // {1,5} | {2,4}
		{12, 1}, // whole tree
		{13, 0}, // unreachable
	} {
		got, err := MaxPartsOver(chain, tt.b)
		if err != nil {
			t.Fatalf("MaxPartsOver(b=%v): %v", tt.b, err)
		}
		if got != tt.want {
			t.Errorf("MaxPartsOver(b=%v) = %d, want %d", tt.b, got, tt.want)
		}
	}
	single := mustTree(t, []float64{3}, nil)
	if got, _ := MaxPartsOver(single, 3); got != 1 {
		t.Errorf("single node b=3: got %d, want 1", got)
	}
	if got, _ := MaxPartsOver(single, 4); got != 0 {
		t.Errorf("single node b=4: got %d, want 0", got)
	}
}

// maxPartsBrute is the mask-enumeration reference for MaxPartsOver: the most
// components any cut can induce with every component weighing at least b.
func maxPartsBrute(t *graph.Tree, b float64) int {
	m := t.NumEdges()
	parent := make([]int, t.Len())
	compW := make([]float64, t.Len())
	compM := make([]float64, t.Len())
	best := 0
	for mask := 0; mask < 1<<m; mask++ {
		minW, _ := componentStats(t, mask, parent, compW, compM)
		if cnt := bits.OnesCount(uint(mask)) + 1; minW >= b && cnt > best {
			best = cnt
		}
	}
	return best
}

func TestMaxPartsOverMatchesBrute(t *testing.T) {
	r := workload.NewRNG(17110)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(9)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 8), workload.UniformWeights(1, 8))
		// Probe thresholds around actual node weights and sums so the greedy
		// faces ties and near-misses, not just easy separations.
		b := tr.NodeW[r.Intn(n)] * (0.5 + 1.5*r.Float64())
		got, err := MaxPartsOver(tr, b)
		if err != nil {
			t.Fatalf("seed %d trial %d: MaxPartsOver: %v", r.Seed(), trial, err)
		}
		if want := maxPartsBrute(tr, b); got != want {
			t.Errorf("seed %d trial %d: MaxPartsOver(b=%v) = %d, brute = %d (n=%d)",
				r.Seed(), trial, b, got, want, n)
		}
	}
}

func TestSumOfMaxDPMatchesBrute(t *testing.T) {
	r := workload.NewRNG(25030)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(9)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		for parts := 1; parts <= n; parts++ {
			got, err := SumOfMaxDP(tr, parts)
			if err != nil {
				t.Fatalf("seed %d trial %d: SumOfMaxDP(parts=%d): %v", r.Seed(), trial, parts, err)
			}
			want, err := SumOfMaxBrute(tr, parts)
			if err != nil {
				t.Fatalf("seed %d trial %d: SumOfMaxBrute(parts=%d): %v", r.Seed(), trial, parts, err)
			}
			if math.Abs(got-want.Value) > 1e-9*math.Max(1, want.Value) {
				t.Errorf("seed %d trial %d: SumOfMaxDP(parts=%d) = %v, brute = %v",
					r.Seed(), trial, parts, got, want.Value)
			}
		}
	}
}

// The brute cuts must induce exactly the requested number of components and
// attain the value they report — a self-check of the enumeration plumbing.
func TestPartsBruteCutsAreConsistent(t *testing.T) {
	r := workload.NewRNG(31415)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(8)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		parts := 1 + r.Intn(n)
		for _, oracle := range []func(*graph.Tree, int) (*PartsResult, error){MaxMinBrute, SumOfMaxBrute} {
			res, err := oracle(tr, parts)
			if err != nil {
				t.Fatalf("seed %d trial %d: %v", r.Seed(), trial, err)
			}
			ws, err := tr.ComponentWeights(res.Cut)
			if err != nil {
				t.Fatalf("seed %d trial %d: ComponentWeights(%v): %v", r.Seed(), trial, res.Cut, err)
			}
			if len(ws) != parts {
				t.Errorf("seed %d trial %d: cut %v induces %d components, want %d",
					r.Seed(), trial, res.Cut, len(ws), parts)
			}
		}
	}
}
