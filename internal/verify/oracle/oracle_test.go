package oracle

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func mustPath(t *testing.T, nodeW, edgeW []float64) *graph.Path {
	t.Helper()
	p, err := graph.NewPath(nodeW, edgeW)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	return p
}

func mustTree(t *testing.T, nodeW []float64, edges []graph.Edge) *graph.Tree {
	t.Helper()
	tr, err := graph.NewTree(nodeW, edges)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tr
}

func TestTreeBruteHandCases(t *testing.T) {
	// Star: centre 0 (weight 3) with leaves 1,2,3 (weight 2 each); edge
	// weights 5, 1, 1.
	star := mustTree(t, []float64{3, 2, 2, 2}, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1},
	})
	res, err := TreeBrute(star, 5)
	if err != nil {
		t.Fatalf("TreeBrute: %v", err)
	}
	if !res.Feasible {
		t.Fatal("star with K=5 should be feasible")
	}
	// Total weight 9 > 5, so at least one leaf must go; one cut suffices
	// (centre + two leaves = 7 > 5, so actually two leaves must go).
	if res.Components != 3 {
		t.Errorf("Components = %d, want 3", res.Components)
	}
	// Cheapest pair of cut edges avoids the weight-5 edge: total 2.
	if res.Bandwidth != 2 {
		t.Errorf("Bandwidth = %v, want 2", res.Bandwidth)
	}
	if res.Bottleneck != 1 {
		t.Errorf("Bottleneck = %v, want 1", res.Bottleneck)
	}
	if !reflect.DeepEqual(res.BandwidthCut, []int{1, 2}) {
		t.Errorf("BandwidthCut = %v, want [1 2]", res.BandwidthCut)
	}
}

func TestTreeBruteNoCutNeeded(t *testing.T) {
	tr := mustTree(t, []float64{1, 1}, []graph.Edge{{U: 0, V: 1, W: 7}})
	res, err := TreeBrute(tr, 2)
	if err != nil {
		t.Fatalf("TreeBrute: %v", err)
	}
	if !res.Feasible || res.Components != 1 || res.Bandwidth != 0 || res.Bottleneck != 0 {
		t.Errorf("got %+v, want feasible single component with zero cut", res)
	}
}

func TestTreeBruteInfeasible(t *testing.T) {
	tr := mustTree(t, []float64{10, 1}, []graph.Edge{{U: 0, V: 1, W: 1}})
	res, err := TreeBrute(tr, 5)
	if err != nil {
		t.Fatalf("TreeBrute: %v", err)
	}
	if res.Feasible {
		t.Fatalf("vertex heavier than K must be infeasible, got %+v", res)
	}
}

func TestTreeBruteTooLarge(t *testing.T) {
	r := workload.NewRNG(1)
	tr := workload.RandomTree(r, MaxBruteEdges+2, workload.UniformWeights(1, 2), workload.UniformWeights(1, 2))
	if _, err := TreeBrute(tr, 100); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("TreeBrute(%d edges) = %v, want ErrTooLarge", tr.NumEdges(), err)
	}
}

func TestPathDPHandCases(t *testing.T) {
	// Tasks 2,2,2 with edges 5,1; K=4 forces at least one cut.
	p := mustPath(t, []float64{2, 2, 2}, []float64{5, 1})
	res, err := PathDP(p, 4)
	if err != nil {
		t.Fatalf("PathDP: %v", err)
	}
	if !res.Feasible {
		t.Fatal("want feasible")
	}
	if res.MinCutWeight != 1 {
		t.Errorf("MinCutWeight = %v, want 1 (cut the light edge)", res.MinCutWeight)
	}
	if res.MinComponents != 2 {
		t.Errorf("MinComponents = %d, want 2", res.MinComponents)
	}
	if res.MinBottleneck != 1 {
		t.Errorf("MinBottleneck = %v, want 1", res.MinBottleneck)
	}

	single := mustPath(t, []float64{3}, nil)
	res, err = PathDP(single, 3)
	if err != nil {
		t.Fatalf("PathDP(single): %v", err)
	}
	if !res.Feasible || res.MinComponents != 1 || res.MinCutWeight != 0 {
		t.Errorf("single vertex at bound: got %+v", res)
	}

	res, err = PathDP(single, 2.5)
	if err != nil {
		t.Fatalf("PathDP(single, infeasible): %v", err)
	}
	if res.Feasible {
		t.Errorf("single vertex above bound must be infeasible, got %+v", res)
	}
}

// The path oracles must agree with the tree oracle on the path-as-tree view;
// they share no code, so agreement is strong evidence both are right.
func TestPathDPMatchesTreeBrute(t *testing.T) {
	r := workload.NewRNG(4242)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(10)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		k := p.MaxNodeWeight() * (1 + 2*r.Float64())
		pd, err := PathDP(p, k)
		if err != nil {
			t.Fatalf("seed %d trial %d: PathDP: %v", r.Seed(), trial, err)
		}
		tb, err := TreeBrute(p.AsTree(), k)
		if err != nil {
			t.Fatalf("seed %d trial %d: TreeBrute: %v", r.Seed(), trial, err)
		}
		if pd.Feasible != tb.Feasible {
			t.Fatalf("seed %d trial %d: feasibility disagrees: DP=%v brute=%v", r.Seed(), trial, pd.Feasible, tb.Feasible)
		}
		if !pd.Feasible {
			continue
		}
		if math.Abs(pd.MinCutWeight-tb.Bandwidth) > 1e-9 {
			t.Errorf("seed %d trial %d: MinCutWeight=%v brute=%v", r.Seed(), trial, pd.MinCutWeight, tb.Bandwidth)
		}
		if math.Abs(pd.MinBottleneck-tb.Bottleneck) > 1e-9 {
			t.Errorf("seed %d trial %d: MinBottleneck=%v brute=%v", r.Seed(), trial, pd.MinBottleneck, tb.Bottleneck)
		}
		if pd.MinComponents != tb.Components {
			t.Errorf("seed %d trial %d: MinComponents=%d brute=%d", r.Seed(), trial, pd.MinComponents, tb.Components)
		}
	}
}

func TestMinComponentsTreeMatchesBrute(t *testing.T) {
	r := workload.NewRNG(777)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(10)
		var tr *graph.Tree
		switch trial % 3 {
		case 0:
			tr = workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		case 1:
			tr = workload.Star(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		default:
			tr = workload.Caterpillar(r, 1+n/2, 1, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		}
		k := tr.MaxNodeWeight() * (1 + 2*r.Float64())
		comps, cut, err := MinComponentsTree(tr, k)
		if err != nil {
			t.Fatalf("seed %d trial %d: MinComponentsTree: %v", r.Seed(), trial, err)
		}
		tb, err := TreeBrute(tr, k)
		if err != nil {
			t.Fatalf("seed %d trial %d: TreeBrute: %v", r.Seed(), trial, err)
		}
		if !tb.Feasible {
			t.Fatalf("seed %d trial %d: K chosen above max vertex weight must be feasible", r.Seed(), trial)
		}
		if comps != tb.Components {
			t.Errorf("seed %d trial %d: greedy=%d brute=%d", r.Seed(), trial, comps, tb.Components)
		}
		// The returned cut must actually realize the count feasibly.
		if len(cut)+1 != comps {
			t.Errorf("seed %d trial %d: cut %v does not match count %d", r.Seed(), trial, cut, comps)
		}
		if m, err := tr.MaxComponentWeight(cut); err != nil || m > k {
			t.Errorf("seed %d trial %d: greedy cut infeasible: max=%v err=%v", r.Seed(), trial, m, err)
		}
	}
}

func TestMinComponentsTreeInfeasible(t *testing.T) {
	tr := mustTree(t, []float64{10, 1}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, _, err := MinComponentsTree(tr, 5); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("MinComponentsTree = %v, want ErrInfeasible", err)
	}
}
