package oracle

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
)

// Reference solvers for the part-count objectives: partitions that remove
// exactly parts−1 tree edges, either maximizing the minimum component weight
// (max–min, Frederickson–Zhou arXiv 1711.00599) or minimizing the sum over
// components of the maximum node weight (sum-of-max, arXiv 2503.11526).
// Like the rest of this package they depend on internal/graph only.

// PartsResult holds an exhaustive optimum over every cut of exactly parts−1
// edges.
type PartsResult struct {
	// Value is the optimal objective value; Cut attains it.
	Value float64
	Cut   []int
}

// checkPartsArg validates a part count against the graph size.
func checkPartsArg(t *graph.Tree, parts int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if parts < 1 || parts > t.Len() {
		return fmt.Errorf("parts = %d of %d tasks: %w", parts, t.Len(), ErrInfeasible)
	}
	return nil
}

// componentStats labels the components induced by cutting exactly the edges
// in mask and returns (min component node-weight sum, sum of per-component
// max node weights). Union-find shared with no production code.
func componentStats(t *graph.Tree, mask int, parent []int, compW, compM []float64) (float64, float64) {
	n := t.Len()
	for v := 0; v < n; v++ {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for i, e := range t.Edges {
		if mask&(1<<i) == 0 {
			ru, rv := find(e.U), find(e.V)
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	for v := 0; v < n; v++ {
		compW[v] = 0
		compM[v] = math.Inf(-1)
	}
	for v := 0; v < n; v++ {
		r := find(v)
		compW[r] += t.NodeW[v]
		if t.NodeW[v] > compM[r] {
			compM[r] = t.NodeW[v]
		}
	}
	minW, sumM := math.Inf(1), 0.0
	for v := 0; v < n; v++ {
		if find(v) == v {
			if compW[v] < minW {
				minW = compW[v]
			}
			sumM += compM[v]
		}
	}
	return minW, sumM
}

// MaxMinBrute enumerates every cut of exactly parts−1 edges (≤ MaxBruteEdges
// edges total) and returns the one maximizing the minimum component weight.
func MaxMinBrute(t *graph.Tree, parts int) (*PartsResult, error) {
	if err := checkPartsArg(t, parts); err != nil {
		return nil, err
	}
	m := t.NumEdges()
	if m > MaxBruteEdges {
		return nil, fmt.Errorf("%d edges: %w", m, ErrTooLarge)
	}
	res := &PartsResult{Value: math.Inf(-1)}
	parent := make([]int, t.Len())
	compW := make([]float64, t.Len())
	compM := make([]float64, t.Len())
	for mask := 0; mask < 1<<m; mask++ {
		if bits.OnesCount(uint(mask)) != parts-1 {
			continue
		}
		minW, _ := componentStats(t, mask, parent, compW, compM)
		if minW > res.Value {
			res.Value, res.Cut = minW, cutOf(mask, m)
		}
	}
	return res, nil
}

// SumOfMaxBrute enumerates every cut of exactly parts−1 edges (≤
// MaxBruteEdges edges total) and returns the one minimizing the sum of
// per-component maximum node weights.
func SumOfMaxBrute(t *graph.Tree, parts int) (*PartsResult, error) {
	if err := checkPartsArg(t, parts); err != nil {
		return nil, err
	}
	m := t.NumEdges()
	if m > MaxBruteEdges {
		return nil, fmt.Errorf("%d edges: %w", m, ErrTooLarge)
	}
	res := &PartsResult{Value: math.Inf(1)}
	parent := make([]int, t.Len())
	compW := make([]float64, t.Len())
	compM := make([]float64, t.Len())
	for mask := 0; mask < 1<<m; mask++ {
		if bits.OnesCount(uint(mask)) != parts-1 {
			continue
		}
		_, sumM := componentStats(t, mask, parent, compW, compM)
		if sumM < res.Value {
			res.Value, res.Cut = sumM, cutOf(mask, m)
		}
	}
	return res, nil
}

// MaxPartsOver returns the maximum number of components a partition of the
// tree can produce with every component weighing ≥ b. It implements the
// Perl–Schach greedy independently of internal/core: in post-order, sever a
// subtree as soon as its residual weight reaches b. The greedy is
// exchange-optimal, so the count is exact; certificates use it as evidence
// that no max–min partition beats a claimed value. Runs in O(n).
func MaxPartsOver(t *graph.Tree, b float64) (int, error) {
	if err := t.Validate(); err != nil {
		return 0, err
	}
	adj := t.Adjacency()
	n := t.Len()
	type frame struct {
		v, parent int
		next      int
	}
	residual := make([]float64, n)
	cnt := 0
	stack := []frame{{v: 0, parent: -1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(adj[f.v]) {
			a := adj[f.v][f.next]
			f.next++
			if a.To != f.parent {
				stack = append(stack, frame{v: a.To, parent: f.v})
			}
			continue
		}
		v, p := f.v, f.parent
		stack = stack[:len(stack)-1]
		total := t.NodeW[v] + residual[v]
		if total >= b && p >= 0 {
			cnt++
			continue
		}
		if p >= 0 {
			residual[p] += total
		} else if total >= b {
			cnt++
		}
	}
	return cnt, nil
}

// SumOfMaxDP computes the optimal sum-of-max value for an exactly-parts
// partition with a map-backed tree DP, independent of the Pareto-pruned
// production solver: state (j closed components, m = max weight of the open
// component) → minimum closed cost. The open component's maximum always
// equals some node weight, so there are O(n·parts) states per vertex.
func SumOfMaxDP(t *graph.Tree, parts int) (float64, error) {
	if err := checkPartsArg(t, parts); err != nil {
		return 0, err
	}
	adj := t.Adjacency()
	n := t.Len()
	tab := make([]map[smKey]float64, n)
	type frame struct {
		v, parent int
		next      int
	}
	stack := []frame{{v: 0, parent: -1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(adj[f.v]) {
			a := adj[f.v][f.next]
			f.next++
			if a.To != f.parent {
				stack = append(stack, frame{v: a.To, parent: f.v})
			}
			continue
		}
		v, p := f.v, f.parent
		stack = stack[:len(stack)-1]
		cur := map[smKey]float64{{j: 0, m: t.NodeW[v]}: 0}
		for _, a := range adj[v] {
			if a.To == p {
				continue
			}
			child := tab[a.To]
			next := make(map[smKey]float64, len(cur))
			for pk, pc := range cur {
				for ck, cc := range child {
					if j := pk.j + ck.j; j <= parts-1 {
						k := smKey{j: j, m: math.Max(pk.m, ck.m)}
						if c := pc + cc; better(next, k, c) {
							next[k] = c
						}
					}
					if j := pk.j + ck.j + 1; j <= parts-1 {
						k := smKey{j: j, m: pk.m}
						if c := pc + cc + ck.m; better(next, k, c) {
							next[k] = c
						}
					}
				}
			}
			cur = next
			tab[a.To] = nil
		}
		tab[v] = cur
	}
	best := math.Inf(1)
	for k, c := range tab[0] {
		if k.j == parts-1 && c+k.m < best {
			best = c + k.m
		}
	}
	if math.IsInf(best, 1) {
		return 0, fmt.Errorf("sum-of-max DP: no %d-part state: %w", parts, ErrInfeasible)
	}
	return best, nil
}

// smKey is a SumOfMaxDP state: j closed components, open-component max m.
type smKey struct {
	j int
	m float64
}

// better reports whether cost c improves the table entry for k.
func better(m map[smKey]float64, k smKey, c float64) bool {
	old, ok := m[k]
	return !ok || c < old
}
