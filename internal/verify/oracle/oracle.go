// Package oracle provides small reference solvers — exhaustive subset
// enumeration for trees, quadratic dynamic programming for paths, and a
// greedy leaf-pruning component minimizer — used as ground truth by the
// differential test harness (internal/verify) and by per-package tests.
//
// The oracles are deliberately written against internal/graph only, with no
// dependency on internal/core: they share nothing with the production
// algorithms they check, so a bug must be present in two independent
// implementations before it can slip through a differential test.
package oracle

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/graph"
)

// MaxBruteEdges is the largest edge count TreeBrute accepts: 2^18 subsets is
// the edge of comfortable test latency.
const MaxBruteEdges = 18

// Sentinel errors.
var (
	// ErrTooLarge is returned by TreeBrute for graphs beyond exhaustive reach.
	ErrTooLarge = errors.New("oracle: graph too large for exhaustive search")
	// ErrInfeasible is returned when no cut satisfies the bound K — some
	// single task already exceeds it.
	ErrInfeasible = errors.New("oracle: no feasible partition for bound K")
)

// TreeResult holds the exhaustive optima over every feasible cut of a tree.
// The three optima are independent: each criterion's best cut is tracked
// separately, so BottleneckCut need not equal BandwidthCut.
type TreeResult struct {
	// Feasible reports whether any feasible cut exists. When false the
	// remaining fields are zero.
	Feasible bool
	// Bottleneck is the minimum over feasible cuts of the heaviest cut-edge
	// weight; BottleneckCut attains it.
	Bottleneck    float64
	BottleneckCut []int
	// Bandwidth is the minimum over feasible cuts of the total cut weight;
	// BandwidthCut attains it.
	Bandwidth    float64
	BandwidthCut []int
	// Components is the minimum over feasible cuts of the component count;
	// ComponentsCut attains it.
	Components    int
	ComponentsCut []int
}

// TreeBrute enumerates every edge subset of the tree (≤ MaxBruteEdges edges)
// and returns the per-criterion optima over the feasible cuts. O(2^m · n).
func TreeBrute(t *graph.Tree, k float64) (*TreeResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	m := t.NumEdges()
	if m > MaxBruteEdges {
		return nil, fmt.Errorf("%d edges: %w", m, ErrTooLarge)
	}
	n := t.Len()
	res := &TreeResult{
		Bottleneck: math.Inf(1),
		Bandwidth:  math.Inf(1),
		Components: n + 1,
	}
	parent := make([]int, n)
	compW := make([]float64, n)
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for mask := 0; mask < 1<<m; mask++ {
		for v := 0; v < n; v++ {
			parent[v] = v
		}
		for i, e := range t.Edges {
			if mask&(1<<i) == 0 {
				ru, rv := find(e.U), find(e.V)
				if ru != rv {
					parent[ru] = rv
				}
			}
		}
		for v := 0; v < n; v++ {
			compW[v] = 0
		}
		feasible := true
		for v := 0; v < n; v++ {
			r := find(v)
			compW[r] += t.NodeW[v]
			if compW[r] > k {
				feasible = false
				break
			}
		}
		if !feasible {
			continue
		}
		res.Feasible = true
		var weight, bottleneck float64
		for i, e := range t.Edges {
			if mask&(1<<i) != 0 {
				weight += e.W
				if e.W > bottleneck {
					bottleneck = e.W
				}
			}
		}
		comps := bits.OnesCount(uint(mask)) + 1
		if bottleneck < res.Bottleneck {
			res.Bottleneck, res.BottleneckCut = bottleneck, cutOf(mask, m)
		}
		if weight < res.Bandwidth {
			res.Bandwidth, res.BandwidthCut = weight, cutOf(mask, m)
		}
		if comps < res.Components {
			res.Components, res.ComponentsCut = comps, cutOf(mask, m)
		}
	}
	if !res.Feasible {
		return &TreeResult{}, nil
	}
	return res, nil
}

func cutOf(mask, m int) []int {
	cut := make([]int, 0, bits.OnesCount(uint(mask)))
	for i := 0; i < m; i++ {
		if mask&(1<<i) != 0 {
			cut = append(cut, i)
		}
	}
	return cut
}

// PathResult holds the per-criterion optima over every feasible cut of a
// path, each computed by an independent DP recurrence.
type PathResult struct {
	// Feasible reports whether any feasible cut exists. When false the
	// remaining fields are zero.
	Feasible bool
	// MinCutWeight is the minimum total cut weight (the bandwidth criterion).
	MinCutWeight float64
	// MinComponents is the minimum component count.
	MinComponents int
	// MinBottleneck is the minimum over feasible cuts of the heaviest
	// cut-edge weight.
	MinBottleneck float64
}

// PathDP computes the three optima with O(n²) dynamic programs over segment
// endpoints: state i is "tasks 0..i−1 feasibly partitioned", and each
// transition closes the segment j..i−1 (weight ≤ K) paying edge j−1 when
// j > 0. Independent of the production algorithms in internal/core.
func PathDP(p *graph.Path, k float64) (*PathResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.Len()
	prefix := p.PrefixNodeWeights()
	inf := math.Inf(1)
	unreached := n + 2
	fw := make([]float64, n+1) // min total cut weight
	fb := make([]float64, n+1) // min bottleneck
	fc := make([]int, n+1)     // min components
	for i := 1; i <= n; i++ {
		fw[i], fb[i], fc[i] = inf, inf, unreached
	}
	fb[0] = 0
	for i := 1; i <= n; i++ {
		for j := i - 1; j >= 0; j-- {
			// Node weights are non-negative, so segments only grow as j
			// retreats: the first overweight segment ends the scan.
			if prefix[i]-prefix[j] > k {
				break
			}
			var cutW float64
			if j > 0 {
				cutW = p.EdgeW[j-1]
			}
			if fw[j]+cutW < fw[i] {
				fw[i] = fw[j] + cutW
			}
			if b := math.Max(fb[j], cutW); b < fb[i] && fc[j] != unreached {
				fb[i] = b
			}
			if fc[j] != unreached && fc[j]+1 < fc[i] {
				fc[i] = fc[j] + 1
			}
		}
	}
	if fc[n] == unreached {
		return &PathResult{}, nil
	}
	return &PathResult{
		Feasible:      true,
		MinCutWeight:  fw[n],
		MinComponents: fc[n],
		MinBottleneck: fb[n],
	}, nil
}

// MinComponentsTree returns the minimum number of components of any feasible
// partition of the tree, with a cut attaining it. It implements the
// Kundu–Misra greedy independently of internal/core: process vertices in
// post-order, and whenever a vertex's residual subtree weight exceeds K,
// detach its heaviest child subtrees until it fits. Cutting the heaviest
// residual first is exchange-optimal, so the count is exactly minimal.
// Returns ErrInfeasible when a single task outweighs K.
func MinComponentsTree(t *graph.Tree, k float64) (int, []int, error) {
	if err := t.Validate(); err != nil {
		return 0, nil, err
	}
	adj := t.Adjacency()
	n := t.Len()
	// Iterative post-order from vertex 0 (explicit stack: tree depth is
	// unbounded, e.g. a path viewed as a tree).
	type frame struct {
		v, parent int
		next      int // next adjacency index to visit
	}
	residual := make([]float64, n)
	childArcs := make([][]graph.Arc, n)
	var cut []int
	stack := []frame{{v: 0, parent: -1}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(adj[f.v]) {
			a := adj[f.v][f.next]
			f.next++
			if a.To != f.parent {
				childArcs[f.v] = append(childArcs[f.v], a)
				stack = append(stack, frame{v: a.To, parent: f.v})
			}
			continue
		}
		v := f.v
		stack = stack[:len(stack)-1]
		if t.NodeW[v] > k {
			return 0, nil, fmt.Errorf("task %d weight %v > K=%v: %w", v, t.NodeW[v], k, ErrInfeasible)
		}
		total := t.NodeW[v]
		kids := childArcs[v]
		for _, a := range kids {
			total += residual[a.To]
		}
		if total > k {
			sort.Slice(kids, func(i, j int) bool {
				return residual[kids[i].To] > residual[kids[j].To]
			})
			for _, a := range kids {
				if total <= k {
					break
				}
				total -= residual[a.To]
				cut = append(cut, a.Edge)
			}
		}
		residual[v] = total
	}
	sort.Ints(cut)
	return len(cut) + 1, cut, nil
}
