// Package verify certifies solver answers independently of the algorithms
// that produced them. Each of the paper's three criteria has a checkable
// optimality characterization:
//
//   - bottleneck (§2.1): feasibility is monotone in the sorted edge prefix,
//     so a bottleneck B is optimal iff cutting every edge strictly lighter
//     than B is infeasible;
//   - processor minimization (§2.2): the Kundu–Misra leaf-pruning greedy is
//     exchange-optimal, giving an independent reference count (plus the
//     ⌈total/K⌉ counting bound);
//   - bandwidth (§2.3): every feasible cut hits all prime critical subpaths,
//     and the greedy dual packing over the ordered-interval instance equals
//     the optimal hitting weight (the interval constraint matrix is totally
//     unimodular), giving a tight lower bound on the cut weight.
//
// The part-count successors of the paper's criteria certify the same way:
//
//   - max–min (arXiv 1711.00599): a partition into exactly p components with
//     minimum weight V is optimal iff no partition fits p components each
//     weighing > V, which the independent Perl–Schach greedy
//     (oracle.MaxPartsOver) decides exactly at threshold V + ε;
//   - sum-of-max (arXiv 2503.11526): the independent map-backed oracle DP
//     (oracle.SumOfMaxDP) recomputes the optimum, sanity-checked from below
//     by the packing-style dual hitting.SumOfMaxPackingBound
//     (arXiv 1410.0462).
//
// A Certificate therefore proves a result right without re-running the
// solver under test: the evidence comes from different code paths
// (internal/prime + internal/hitting for bandwidth, internal/verify/oracle
// for processors, the feasibility checker itself for bottleneck).
package verify

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/prime"
	"repro/internal/verify/oracle"
)

// ErrNotCertifiable is returned by CertifyResult for solvers that declare no
// objective (engine.ObjectiveUnknown) or for graph/objective combinations
// with no certificate checker.
var ErrNotCertifiable = errors.New("verify: result not certifiable")

// Certificate records the outcome of checking one solver answer.
type Certificate struct {
	// Criterion is the certified objective ("bottleneck", "minprocs",
	// "bandwidth", "maxmin", "summax").
	Criterion string
	// Certified reports whether the cut is feasible AND its objective value
	// matches the independent evidence. False means the certificate could
	// not establish optimality — the answer may still be correct (see
	// Detail), but it is not proven.
	Certified bool
	// Objective is the cut's objective value under Criterion.
	Objective float64
	// Bound is the independent evidence compared against Objective: the
	// packing lower bound for bandwidth, the greedy reference count for
	// minprocs, and the strictly-lighter bottleneck threshold probed for
	// bottleneck.
	Bound float64
	// Detail explains a false Certified (infeasible cut, bound gap, binding
	// component cap, …). Empty when certified.
	Detail string
}

// eps returns the comparison tolerance for an objective value v: floating
// accumulation differs between solver and evidence, so exact equality is too
// strict for large weights.
func eps(v float64) float64 {
	return 1e-9 * math.Max(1, math.Abs(v))
}

// CertifyBottleneck checks that cut is feasible for (t, K) and that its
// bottleneck — the heaviest cut-edge weight — is minimal. Optimality
// evidence: cut every edge strictly lighter than the claimed bottleneck;
// adding edges to a tree cut only shrinks components, so that maximal cut is
// feasible iff some cut with a strictly smaller bottleneck is. O(n α(n)).
func CertifyBottleneck(t *graph.Tree, k float64, cut []int) (*Certificate, error) {
	cut = graph.NormalizeCut(cut)
	cert := &Certificate{Criterion: "bottleneck"}
	b, err := t.MaxCutEdgeWeight(cut)
	if err != nil {
		return nil, err
	}
	cert.Objective = b
	if err := core.CheckTreeFeasible(t, cut, k); err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			cert.Detail = err.Error()
			return cert, nil
		}
		return nil, err
	}
	if b == 0 {
		// Edge weights are non-negative: a zero bottleneck cannot be beaten.
		cert.Certified = true
		return cert, nil
	}
	lighter := make([]int, 0, t.NumEdges())
	for i, e := range t.Edges {
		if e.W < b {
			lighter = append(lighter, i)
		}
	}
	cert.Bound = b
	if err := core.CheckTreeFeasible(t, lighter, k); err == nil {
		cert.Detail = fmt.Sprintf("a feasible cut exists using only edges lighter than %v", b)
		return cert, nil
	} else if !errors.Is(err, core.ErrInfeasible) {
		return nil, err
	}
	cert.Certified = true
	return cert, nil
}

// CertifyProcMin checks that cut is feasible for (t, K) and uses the minimum
// possible number of components. Evidence: an independent Kundu–Misra greedy
// (oracle.MinComponentsTree) plus the ⌈total weight / K⌉ counting bound.
func CertifyProcMin(t *graph.Tree, k float64, cut []int) (*Certificate, error) {
	cut = graph.NormalizeCut(cut)
	// Removing an edge from a tree always splits one component in two.
	comps := len(cut) + 1
	cert := &Certificate{Criterion: "minprocs", Objective: float64(comps)}
	if err := core.CheckTreeFeasible(t, cut, k); err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			cert.Detail = err.Error()
			return cert, nil
		}
		return nil, err
	}
	ref, _, err := oracle.MinComponentsTree(t, k)
	if err != nil {
		// The cut above was feasible, so the instance cannot be infeasible.
		return nil, err
	}
	cert.Bound = float64(ref)
	if counting := int(math.Ceil(t.TotalNodeWeight() / k)); ref < counting {
		return nil, fmt.Errorf("verify: internal error: greedy count %d below counting bound %d", ref, counting)
	}
	if comps != ref {
		cert.Detail = fmt.Sprintf("cut uses %d components, minimum is %d", comps, ref)
		return cert, nil
	}
	cert.Certified = true
	return cert, nil
}

// CertifyBandwidth checks that cut is feasible for (p, K) and that its total
// weight is minimal. Evidence: any feasible cut hits every prime critical
// subpath, so its weight is at least the optimal hitting weight of the
// compressed instance, which the greedy dual packing (hitting.PackingBound)
// computes exactly. A feasible cut whose weight meets that bound is optimal.
func CertifyBandwidth(p *graph.Path, k float64, cut []int) (*Certificate, error) {
	cut = graph.NormalizeCut(cut)
	cert := &Certificate{Criterion: "bandwidth"}
	w, err := p.CutWeight(cut)
	if err != nil {
		return nil, err
	}
	cert.Objective = w
	if err := core.CheckPathFeasible(p, cut, k); err != nil {
		if errors.Is(err, core.ErrInfeasible) {
			cert.Detail = err.Error()
			return cert, nil
		}
		return nil, err
	}
	inst, _, err := prime.Analyze(p.NodeW, p.EdgeW, k)
	if err != nil {
		// ErrVertexTooHeavy cannot happen here: the cut was feasible.
		return nil, err
	}
	lb, err := hitting.PackingBound(&hitting.Instance{Beta: inst.Beta, A: inst.A, B: inst.B})
	if err != nil {
		return nil, err
	}
	cert.Bound = lb
	if w > lb+eps(w) {
		cert.Detail = fmt.Sprintf("cut weight %v exceeds the hitting lower bound %v", w, lb)
		return cert, nil
	}
	cert.Certified = true
	return cert, nil
}

// CertifyMaxMin checks that cut splits t into exactly parts components and
// that its minimum component weight V is maximal over all exactly-parts
// partitions. Evidence: the independent Perl–Schach greedy counts the
// maximum number of components a partition can produce with every component
// weighing ≥ V + ε; if even that maximal packing falls short of parts, no
// exactly-parts partition beats V. O(n).
func CertifyMaxMin(t *graph.Tree, parts int, cut []int) (*Certificate, error) {
	cut = graph.NormalizeCut(cut)
	cert := &Certificate{Criterion: "maxmin"}
	ws, err := t.ComponentWeights(cut)
	if err != nil {
		return nil, err
	}
	v := math.Inf(1)
	for _, w := range ws {
		if w < v {
			v = w
		}
	}
	cert.Objective = v
	cert.Bound = v
	if len(ws) != parts {
		cert.Detail = fmt.Sprintf("cut uses %d components, want exactly %d", len(ws), parts)
		return cert, nil
	}
	over, err := oracle.MaxPartsOver(t, v+eps(v))
	if err != nil {
		return nil, err
	}
	if over >= parts {
		cert.Detail = fmt.Sprintf("a %d-component partition with every component > %v exists", parts, v)
		return cert, nil
	}
	cert.Certified = true
	return cert, nil
}

// CertifySumOfMax checks that cut splits t into exactly parts components and
// that the sum of per-component maximum node weights is minimal. Evidence:
// the independent map-backed oracle DP recomputes the optimum, itself
// sanity-checked against the packing-style lower bound (max weight plus the
// parts−1 smallest weights).
func CertifySumOfMax(t *graph.Tree, parts int, cut []int) (*Certificate, error) {
	cut = graph.NormalizeCut(cut)
	cert := &Certificate{Criterion: "summax"}
	ms, err := t.ComponentMaxNodeWeights(cut)
	if err != nil {
		return nil, err
	}
	var s float64
	for _, m := range ms {
		s += m
	}
	cert.Objective = s
	if len(ms) != parts {
		cert.Detail = fmt.Sprintf("cut uses %d components, want exactly %d", len(ms), parts)
		return cert, nil
	}
	opt, err := oracle.SumOfMaxDP(t, parts)
	if err != nil {
		return nil, err
	}
	cert.Bound = opt
	packing, err := hitting.SumOfMaxPackingBound(t.NodeW, parts)
	if err != nil {
		return nil, err
	}
	if opt < packing-eps(packing) {
		return nil, fmt.Errorf("verify: internal error: DP optimum %v below packing bound %v", opt, packing)
	}
	if s > opt+eps(s) {
		cert.Detail = fmt.Sprintf("sum of maxes %v exceeds the DP optimum %v", s, opt)
		return cert, nil
	}
	cert.Certified = true
	return cert, nil
}

// partsOfRequest reads the target component count of a part-count objective
// out of the request's K slot.
func partsOfRequest(req engine.Request) (int, error) {
	if req.K != math.Trunc(req.K) || req.K > math.MaxInt32 || req.K < math.MinInt32 {
		return 0, fmt.Errorf("verify: part count K = %v is not integral: %w", req.K, ErrNotCertifiable)
	}
	return int(req.K), nil
}

// CertifyResult certifies an engine result against its request: the solver's
// declared objective (engine.ObjectiveOf) picks the certificate checker, and
// path inputs are lifted to trees for the tree-criterion checkers exactly as
// treeSolver does. Solvers without a declared objective return
// ErrNotCertifiable.
func CertifyResult(req engine.Request, res *engine.Result) (*Certificate, error) {
	if res == nil {
		return nil, fmt.Errorf("verify: nil result: %w", ErrNotCertifiable)
	}
	s, err := engine.Get(req.Solver)
	if err != nil {
		return nil, err
	}
	asTree := func() (*graph.Tree, error) {
		if req.Tree != nil {
			return req.Tree, nil
		}
		if req.Path != nil {
			return req.Path.AsTree(), nil
		}
		return nil, fmt.Errorf("verify: request has no graph: %w", ErrNotCertifiable)
	}
	switch obj := engine.ObjectiveOf(s); obj {
	case engine.ObjectiveBandwidth:
		if req.Path == nil {
			return nil, fmt.Errorf("verify: bandwidth certificate needs a path graph: %w", ErrNotCertifiable)
		}
		cert, err := CertifyBandwidth(req.Path, req.K, res.Cut)
		if err != nil {
			return nil, err
		}
		if !cert.Certified && req.Options.MaxComponents > 0 {
			cert.Detail += " (component cap set: the capped optimum may legitimately exceed the unconstrained bound)"
		}
		return cert, nil
	case engine.ObjectiveBottleneck:
		t, err := asTree()
		if err != nil {
			return nil, err
		}
		return CertifyBottleneck(t, req.K, res.Cut)
	case engine.ObjectiveMinProcs:
		t, err := asTree()
		if err != nil {
			return nil, err
		}
		return CertifyProcMin(t, req.K, res.Cut)
	case engine.ObjectiveMaxMin:
		t, err := asTree()
		if err != nil {
			return nil, err
		}
		parts, err := partsOfRequest(req)
		if err != nil {
			return nil, err
		}
		return CertifyMaxMin(t, parts, res.Cut)
	case engine.ObjectiveSumOfMax:
		t, err := asTree()
		if err != nil {
			return nil, err
		}
		parts, err := partsOfRequest(req)
		if err != nil {
			return nil, err
		}
		return CertifySumOfMax(t, parts, res.Cut)
	default:
		return nil, fmt.Errorf("verify: solver %q declares objective %v: %w", req.Solver, obj, ErrNotCertifiable)
	}
}
