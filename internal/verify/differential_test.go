package verify

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/verify/oracle"
	"repro/internal/workload"
)

// registrySolvers are the thirteen certifiable production solvers the
// harness must cover; the registry may hold extra test-local registrations
// (skipped because they declare no objective) and the NP-hard treecut tier
// (skipped by its declared ObjectiveNone policy).
var registrySolvers = []string{
	"bandwidth", "bandwidth-deque", "bandwidth-heap", "bandwidth-limited",
	"bandwidth-naive", "bottleneck", "bottleneck-greedy", "maxmin-path",
	"maxmin-tree", "minproc", "minproc-path", "partition-tree",
	"summax-tree",
}

func TestRegistryCoverage(t *testing.T) {
	names := map[string]bool{}
	for _, n := range engine.Names() {
		names[n] = true
	}
	for _, want := range registrySolvers {
		if !names[want] {
			t.Errorf("solver %q missing from registry", want)
			continue
		}
		s, err := engine.Get(want)
		if err != nil {
			t.Fatalf("Get(%q): %v", want, err)
		}
		switch engine.ObjectiveOf(s) {
		case engine.ObjectiveUnknown:
			t.Errorf("solver %q declares no objective; the harness cannot check it", want)
		case engine.ObjectiveNone:
			t.Errorf("solver %q opted out with ObjectiveNone but is listed as certifiable", want)
		}
	}
	// Regression for the ObjectiveNone policy: the treecut tier must be
	// skipped deliberately, not because it forgot to declare.
	for _, name := range []string{"treecut-exact", "treecut-bb", "treecut-greedy"} {
		s, err := engine.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if engine.ObjectiveOf(s) != engine.ObjectiveNone {
			t.Errorf("solver %q must declare ObjectiveNone to opt out of the harness", name)
		}
	}
}

func feq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// objectiveValue extracts the result's value under the solver's objective.
// The sum-of-max value needs the input graph (component maxima are not part
// of the result shape); use sumOfMaxValue for it.
func objectiveValue(obj engine.Objective, res *engine.Result) float64 {
	switch obj {
	case engine.ObjectiveBandwidth:
		return res.CutWeight
	case engine.ObjectiveBottleneck:
		return res.Bottleneck
	case engine.ObjectiveMinProcs:
		return float64(len(res.ComponentWeights))
	case engine.ObjectiveMaxMin:
		v := math.Inf(1)
		for _, w := range res.ComponentWeights {
			if w < v {
				v = w
			}
		}
		return v
	default:
		return math.NaN()
	}
}

// sumOfMaxValue computes the sum-of-max objective of a cut on a tree.
func sumOfMaxValue(t *testing.T, tr *graph.Tree, cut []int) float64 {
	t.Helper()
	ms, err := tr.ComponentMaxNodeWeights(graph.NormalizeCut(cut))
	if err != nil {
		t.Fatalf("ComponentMaxNodeWeights: %v", err)
	}
	var s float64
	for _, m := range ms {
		s += m
	}
	return s
}

// differentialRound runs every registry solver on one random path and one
// random tree derived from seed, checking each answer against the exhaustive
// oracles, against every same-objective solver, and against its certificate.
func differentialRound(t *testing.T, seed uint64, maxN int) {
	t.Helper()
	if maxN < 2 {
		maxN = 2
	}
	if maxN > oracle.MaxBruteEdges {
		maxN = oracle.MaxBruteEdges
	}
	r := workload.NewRNG(seed)
	nP := 2 + r.Intn(maxN-1)
	nT := 2 + r.Intn(maxN-1)
	p := workload.RandomPath(r, nP, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
	tr := workload.RandomTree(r, nT, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
	kP := p.MaxNodeWeight() * (1 + 2*r.Float64())
	kT := tr.MaxNodeWeight() * (1 + 2*r.Float64())

	pd, err := oracle.PathDP(p, kP)
	if err != nil {
		t.Fatalf("seed %d: PathDP: %v", seed, err)
	}
	tb, err := oracle.TreeBrute(tr, kT)
	if err != nil {
		t.Fatalf("seed %d: TreeBrute: %v", seed, err)
	}
	ptb, err := oracle.TreeBrute(p.AsTree(), kP)
	if err != nil {
		t.Fatalf("seed %d: TreeBrute(path): %v", seed, err)
	}
	if !pd.Feasible || !tb.Feasible || !ptb.Feasible {
		t.Fatalf("seed %d: K above max task weight must be feasible", seed)
	}

	// Part counts for the exactly-K-component objectives, and their
	// exhaustive optima on both inputs.
	pP := 1 + r.Intn(nP)
	pT := 1 + r.Intn(nT)
	mmPath, err := oracle.MaxMinBrute(p.AsTree(), pP)
	if err != nil {
		t.Fatalf("seed %d: MaxMinBrute(path): %v", seed, err)
	}
	mmTree, err := oracle.MaxMinBrute(tr, pT)
	if err != nil {
		t.Fatalf("seed %d: MaxMinBrute(tree): %v", seed, err)
	}
	smPath, err := oracle.SumOfMaxBrute(p.AsTree(), pP)
	if err != nil {
		t.Fatalf("seed %d: SumOfMaxBrute(path): %v", seed, err)
	}
	smTree, err := oracle.SumOfMaxBrute(tr, pT)
	if err != nil {
		t.Fatalf("seed %d: SumOfMaxBrute(tree): %v", seed, err)
	}

	// oracleValue returns ground truth for (objective, input).
	oracleValue := func(obj engine.Objective, input string) float64 {
		switch input {
		case "path":
			switch obj {
			case engine.ObjectiveBandwidth:
				return pd.MinCutWeight
			case engine.ObjectiveBottleneck:
				return pd.MinBottleneck
			case engine.ObjectiveMaxMin:
				return mmPath.Value
			case engine.ObjectiveSumOfMax:
				return smPath.Value
			default:
				return float64(pd.MinComponents)
			}
		default:
			switch obj {
			case engine.ObjectiveBandwidth:
				return tb.Bandwidth
			case engine.ObjectiveBottleneck:
				return tb.Bottleneck
			case engine.ObjectiveMaxMin:
				return mmTree.Value
			case engine.ObjectiveSumOfMax:
				return smTree.Value
			default:
				return float64(tb.Components)
			}
		}
	}

	type agreeKey struct {
		obj   engine.Objective
		input string
	}
	first := map[agreeKey]string{}
	firstVal := map[agreeKey]float64{}

	for _, name := range engine.Names() {
		s, err := engine.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		obj := engine.ObjectiveOf(s)
		switch obj {
		case engine.ObjectiveUnknown:
			continue // test-local registration from another test file
		case engine.ObjectiveNone:
			continue // NP-hard treecut tier: opted out by declared policy
		}
		partCount := obj == engine.ObjectiveMaxMin || obj == engine.ObjectiveSumOfMax
		inputs := []string{"path"}
		if s.Kind() == engine.KindTree {
			inputs = []string{"tree", "path"}
		}
		for _, input := range inputs {
			req := engine.Request{Solver: name, K: kP}
			var checkFeasible func(cut []int) error
			if input == "tree" {
				req.Tree, req.K = tr, kT
				checkFeasible = func(cut []int) error { return core.CheckTreeFeasible(tr, cut, kT) }
			} else {
				req.Path = p
				checkFeasible = func(cut []int) error { return core.CheckPathFeasible(p, cut, kP) }
			}
			if partCount {
				// Part-count objectives read K as the target component count;
				// feasibility means exactly parts components, not a weight
				// bound.
				parts := pP
				if input == "tree" {
					parts = pT
				}
				req.K = float64(parts)
				checkFeasible = func(cut []int) error {
					if got := len(graph.NormalizeCut(cut)) + 1; got != parts {
						return fmt.Errorf("%d components, want exactly %d", got, parts)
					}
					return nil
				}
			}
			if name == "bandwidth-limited" {
				// A cap equal to the vertex count never binds, keeping the
				// capped solver comparable to the unconstrained oracle.
				req.Options.MaxComponents = p.Len()
			}
			res, err := engine.Solve(context.Background(), req)
			if err != nil {
				t.Errorf("seed %d: %s/%s: Solve: %v", seed, name, input, err)
				continue
			}
			if err := checkFeasible(res.Cut); err != nil {
				t.Errorf("seed %d: %s/%s: infeasible cut %v: %v", seed, name, input, res.Cut, err)
				continue
			}
			got := objectiveValue(obj, &res)
			if obj == engine.ObjectiveSumOfMax {
				in := tr
				if input == "path" {
					in = p.AsTree()
				}
				got = sumOfMaxValue(t, in, res.Cut)
			}
			if want := oracleValue(obj, input); !feq(got, want) {
				t.Errorf("seed %d: %s/%s: %v objective = %v, oracle = %v (cut %v)",
					seed, name, input, obj, got, want, res.Cut)
			}
			key := agreeKey{obj, input}
			if prev, ok := first[key]; !ok {
				first[key], firstVal[key] = name, got
			} else if !feq(firstVal[key], got) {
				t.Errorf("seed %d: %s and %s disagree on %v/%s: %v vs %v",
					seed, prev, name, obj, input, firstVal[key], got)
			}
			cert, err := CertifyResult(req, &res)
			if err != nil {
				t.Errorf("seed %d: %s/%s: CertifyResult: %v", seed, name, input, err)
				continue
			}
			if !cert.Certified {
				t.Errorf("seed %d: %s/%s: not certified: %+v (cut %v)", seed, name, input, cert, res.Cut)
			}
		}
	}
}

func TestDifferentialRegistry(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		differentialRound(t, seed, 12)
	}
}

// Metamorphic property: scaling every weight and K by a power of two (exact
// in float64) scales bandwidth and bottleneck by the same factor and leaves
// component counts unchanged.
func TestMetamorphicScaling(t *testing.T) {
	const factor = 4
	r := workload.NewRNG(11)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(11)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		k := p.MaxNodeWeight() * (1 + 2*r.Float64())
		scaled := p.Clone()
		for i := range scaled.NodeW {
			scaled.NodeW[i] *= factor
		}
		for i := range scaled.EdgeW {
			scaled.EdgeW[i] *= factor
		}
		for _, name := range []string{"bandwidth", "minproc-path", "bottleneck"} {
			base, err := engine.Solve(context.Background(), engine.Request{Solver: name, Path: p, K: k})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s: %v", r.Seed(), trial, name, err)
			}
			big, err := engine.Solve(context.Background(), engine.Request{Solver: name, Path: scaled, K: k * factor})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s scaled: %v", r.Seed(), trial, name, err)
			}
			if !feq(big.CutWeight, factor*base.CutWeight) {
				t.Errorf("seed %d trial %d: %s: scaled cut weight %v, want %v",
					r.Seed(), trial, name, big.CutWeight, factor*base.CutWeight)
			}
			if !feq(big.Bottleneck, factor*base.Bottleneck) {
				t.Errorf("seed %d trial %d: %s: scaled bottleneck %v, want %v",
					r.Seed(), trial, name, big.Bottleneck, factor*base.Bottleneck)
			}
			if len(big.ComponentWeights) != len(base.ComponentWeights) {
				t.Errorf("seed %d trial %d: %s: scaled components %d, want %d",
					r.Seed(), trial, name, len(big.ComponentWeights), len(base.ComponentWeights))
			}
		}
	}
}

// Metamorphic property: relabeling tree vertices (keeping edge order and
// weights) leaves every objective value unchanged — the objectives only see
// weights, never vertex identities.
func TestMetamorphicRelabeling(t *testing.T) {
	r := workload.NewRNG(22)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(11)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		k := tr.MaxNodeWeight() * (1 + 2*r.Float64())
		perm := r.Perm(n)
		nodeW := make([]float64, n)
		for v, w := range tr.NodeW {
			nodeW[perm[v]] = w
		}
		edges := make([]graph.Edge, len(tr.Edges))
		for i, e := range tr.Edges {
			edges[i] = graph.Edge{U: perm[e.U], V: perm[e.V], W: e.W}
		}
		relabeled, err := graph.NewTree(nodeW, edges)
		if err != nil {
			t.Fatalf("seed %d trial %d: NewTree: %v", r.Seed(), trial, err)
		}
		// As in the reversal test, only the declared objective value is
		// invariant — the concrete cut (and with it the secondary metrics)
		// may differ between labelings when optima tie.
		for _, name := range []string{"bottleneck", "minproc", "partition-tree"} {
			s, err := engine.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			base, err := engine.Solve(context.Background(), engine.Request{Solver: name, Tree: tr, K: k})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s: %v", r.Seed(), trial, name, err)
			}
			rel, err := engine.Solve(context.Background(), engine.Request{Solver: name, Tree: relabeled, K: k})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s relabeled: %v", r.Seed(), trial, name, err)
			}
			obj := engine.ObjectiveOf(s)
			if got, want := objectiveValue(obj, &rel), objectiveValue(obj, &base); !feq(got, want) {
				t.Errorf("seed %d trial %d: %s: relabeled %v objective %v, want %v",
					r.Seed(), trial, name, obj, got, want)
			}
		}
	}
}

// Metamorphic property: reversing a path leaves all three objective values
// unchanged (the graph is the same up to orientation).
func TestMetamorphicReversal(t *testing.T) {
	r := workload.NewRNG(33)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(11)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		k := p.MaxNodeWeight() * (1 + 2*r.Float64())
		rev := p.Clone()
		for i, j := 0, len(rev.NodeW)-1; i < j; i, j = i+1, j-1 {
			rev.NodeW[i], rev.NodeW[j] = rev.NodeW[j], rev.NodeW[i]
		}
		for i, j := 0, len(rev.EdgeW)-1; i < j; i, j = i+1, j-1 {
			rev.EdgeW[i], rev.EdgeW[j] = rev.EdgeW[j], rev.EdgeW[i]
		}
		// Only each solver's *objective value* is invariant: the chosen cut
		// itself may legitimately differ between orientations (ties, and
		// first-fit scanning direction), dragging secondary metrics with it.
		for _, name := range []string{"bandwidth", "minproc-path"} {
			s, err := engine.Get(name)
			if err != nil {
				t.Fatalf("Get(%q): %v", name, err)
			}
			base, err := engine.Solve(context.Background(), engine.Request{Solver: name, Path: p, K: k})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s: %v", r.Seed(), trial, name, err)
			}
			back, err := engine.Solve(context.Background(), engine.Request{Solver: name, Path: rev, K: k})
			if err != nil {
				t.Fatalf("seed %d trial %d: %s reversed: %v", r.Seed(), trial, name, err)
			}
			obj := engine.ObjectiveOf(s)
			if got, want := objectiveValue(obj, &back), objectiveValue(obj, &base); !feq(got, want) {
				t.Errorf("seed %d trial %d: %s: reversed %v objective %v, want %v",
					r.Seed(), trial, name, obj, got, want)
			}
		}
	}
}
