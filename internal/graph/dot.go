package graph

import (
	"fmt"
	"io"
	"strings"
)

// DOT export for visual inspection of partitions. Cut edges are drawn dashed
// and red; components are not clustered (Graphviz lays trees out well enough
// without clusters).

// PathDOT renders the path with the given cut highlighted.
func PathDOT(w io.Writer, p *Path, cut []int) error {
	t := p.AsTree()
	return TreeDOT(w, t, cut)
}

// TreeDOT renders the tree with the given cut highlighted. The cut may be
// nil. Invalid cut indices are ignored rather than rejected, since DOT output
// is diagnostic.
func TreeDOT(w io.Writer, t *Tree, cut []int) error {
	inCut := make(map[int]bool, len(cut))
	for _, e := range cut {
		inCut[e] = true
	}
	var b strings.Builder
	b.WriteString("graph task {\n  node [shape=circle];\n")
	for v, wt := range t.NodeW {
		fmt.Fprintf(&b, "  n%d [label=\"%d\\n%s\"];\n", v, v, formatWeight(wt))
	}
	for i, e := range t.Edges {
		attr := ""
		if inCut[i] {
			attr = ", style=dashed, color=red"
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%s\"%s];\n", e.U, e.V, formatWeight(e.W), attr)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// GraphDOT renders a general graph.
func GraphDOT(w io.Writer, g *Graph) error {
	var b strings.Builder
	b.WriteString("graph task {\n  node [shape=circle];\n")
	for v, wt := range g.NodeW {
		fmt.Fprintf(&b, "  n%d [label=\"%d\\n%s\"];\n", v, v, formatWeight(wt))
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%s\"];\n", e.U, e.V, formatWeight(e.W))
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
