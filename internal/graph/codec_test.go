package graph

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestPathCodecRoundTrip(t *testing.T) {
	p := mustPath(t, []float64{1.5, 2, 3.25}, []float64{0.5, 7})
	var buf bytes.Buffer
	if err := WritePath(&buf, p); err != nil {
		t.Fatalf("WritePath: %v", err)
	}
	got, err := ReadPath(&buf)
	if err != nil {
		t.Fatalf("ReadPath: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
}

func TestTreeCodecRoundTrip(t *testing.T) {
	tr := mustTree(t, []float64{1, 2, 3, 4}, []Edge{{0, 1, 0.5}, {1, 2, 1.5}, {1, 3, 2.5}})
	var buf bytes.Buffer
	if err := WriteTree(&buf, tr); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	got, err := ReadTree(&buf)
	if err != nil {
		t.Fatalf("ReadTree: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip = %+v, want %+v", got, tr)
	}
}

func TestGraphCodecRoundTrip(t *testing.T) {
	g, err := NewGraph([]float64{1, 2, 3}, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatalf("WriteGraph: %v", err)
	}
	any, err := ReadAny(&buf)
	if err != nil {
		t.Fatalf("ReadAny: %v", err)
	}
	got, ok := any.(*Graph)
	if !ok {
		t.Fatalf("ReadAny returned %T, want *Graph", any)
	}
	if !reflect.DeepEqual(got, g) {
		t.Errorf("round trip = %+v, want %+v", got, g)
	}
}

func TestReadPathCommentsAndWhitespace(t *testing.T) {
	in := `# a pipeline
path 3
  1 2   # node weights continue
  3
  10 20 # edges
`
	p, err := ReadPath(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadPath: %v", err)
	}
	if !reflect.DeepEqual(p.NodeW, []float64{1, 2, 3}) {
		t.Errorf("NodeW = %v", p.NodeW)
	}
	if !reflect.DeepEqual(p.EdgeW, []float64{10, 20}) {
		t.Errorf("EdgeW = %v", p.EdgeW)
	}
}

func TestReadErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want error
	}{
		{"empty input", "", io.EOF},
		{"unknown kind", "blob 3\n", ErrBadFormat},
		{"wrong kind for ReadPath", "tree 1\n1\n", ErrBadFormat},
		{"bad count", "path x\n", ErrBadFormat},
		{"negative count", "path -1\n", ErrBadFormat},
		{"truncated weights", "path 3\n1 2\n", io.EOF},
		{"bad float", "path 2\n1 zebra\n3\n", ErrBadFormat},
		{"invalid weight", "path 2\n1 -5\n3\n", ErrBadWeight},
		{"tree cycle", "tree 3\n1 1 1\n0 1 1\n1 0 1\n", ErrNotTree},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var err error
			if strings.HasPrefix(tt.in, "tree") || tt.name == "wrong kind for ReadPath" {
				_, err = ReadPath(strings.NewReader(tt.in))
				if tt.name == "tree cycle" {
					_, err = ReadTree(strings.NewReader(tt.in))
				}
			} else {
				_, err = ReadAny(strings.NewReader(tt.in))
			}
			if !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDOTOutput(t *testing.T) {
	tr := mustTree(t, []float64{1, 2}, []Edge{{0, 1, 5}})
	var buf bytes.Buffer
	if err := TreeDOT(&buf, tr, []int{0}); err != nil {
		t.Fatalf("TreeDOT: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"graph task {", "n0 -- n1", "style=dashed", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	p := mustPath(t, []float64{1, 2, 3}, []float64{1, 2})
	if err := PathDOT(&buf, p, nil); err != nil {
		t.Fatalf("PathDOT: %v", err)
	}
	if !strings.Contains(buf.String(), "n1 -- n2") {
		t.Errorf("PathDOT output missing edge:\n%s", buf.String())
	}
	buf.Reset()
	g, _ := NewGraph([]float64{1, 2}, []Edge{{0, 1, 3}})
	if err := GraphDOT(&buf, g); err != nil {
		t.Fatalf("GraphDOT: %v", err)
	}
	if !strings.Contains(buf.String(), "n0 -- n1") {
		t.Errorf("GraphDOT output missing edge:\n%s", buf.String())
	}
}

func TestGraphMergeParallel(t *testing.T) {
	g, err := NewGraph([]float64{1, 1, 1}, []Edge{{0, 1, 1}, {1, 0, 2}, {1, 2, 3}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	m := g.MergeParallel()
	want := []Edge{{0, 1, 3}, {1, 2, 3}}
	if !reflect.DeepEqual(m.Edges, want) {
		t.Errorf("MergeParallel edges = %v, want %v", m.Edges, want)
	}
}

func TestGraphIsConnected(t *testing.T) {
	conn, _ := NewGraph([]float64{1, 1, 1}, []Edge{{0, 1, 1}, {1, 2, 1}})
	if !conn.IsConnected() {
		t.Error("connected graph reported disconnected")
	}
	disc, _ := NewGraph([]float64{1, 1, 1}, []Edge{{0, 1, 1}})
	if disc.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
}

func TestGraphIsPathOrder(t *testing.T) {
	g, _ := NewGraph([]float64{1, 2, 3}, []Edge{{1, 0, 5}, {1, 2, 7}})
	p, ok := g.IsPathOrder()
	if !ok {
		t.Fatal("IsPathOrder = false, want true")
	}
	if !reflect.DeepEqual(p.EdgeW, []float64{5, 7}) {
		t.Errorf("EdgeW = %v, want [5 7]", p.EdgeW)
	}
	notPath, _ := NewGraph([]float64{1, 2, 3}, []Edge{{0, 2, 1}, {1, 2, 1}})
	if _, ok := notPath.IsPathOrder(); ok {
		t.Error("IsPathOrder = true for non-index-order path")
	}
}

func TestPathMaxNodeWeight(t *testing.T) {
	p := mustPath(t, []float64{3, 9, 1}, []float64{1, 1})
	if p.MaxNodeWeight() != 9 {
		t.Errorf("MaxNodeWeight = %v, want 9", p.MaxNodeWeight())
	}
}

func TestGeneralGraphAccessors(t *testing.T) {
	g, err := NewGraph([]float64{1, 2, 3}, []Edge{{0, 1, 4}, {1, 2, 6}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	if g.TotalNodeWeight() != 6 {
		t.Errorf("TotalNodeWeight = %v, want 6", g.TotalNodeWeight())
	}
	if g.TotalEdgeWeight() != 10 {
		t.Errorf("TotalEdgeWeight = %v, want 10", g.TotalEdgeWeight())
	}
	adj := g.Adjacency()
	if len(adj[1]) != 2 || adj[1][0].To != 0 {
		t.Errorf("Adjacency = %v", adj)
	}
}

func TestGeneralGraphValidateErrors(t *testing.T) {
	cases := []struct {
		nodeW []float64
		edges []Edge
		want  error
	}{
		{nil, nil, ErrEmptyGraph},
		{[]float64{-1}, nil, ErrBadWeight},
		{[]float64{1, 2}, []Edge{{0, 5, 1}}, ErrBadShape},
		{[]float64{1, 2}, []Edge{{0, 0, 1}}, ErrBadShape},
		{[]float64{1, 2}, []Edge{{0, 1, -1}}, ErrBadWeight},
	}
	for i, c := range cases {
		if _, err := NewGraph(c.nodeW, c.edges); !errors.Is(err, c.want) {
			t.Errorf("case %d: error = %v, want %v", i, err, c.want)
		}
	}
}

func TestReadTreeAndGraphBadCounts(t *testing.T) {
	if _, err := ReadTree(strings.NewReader("tree 0\n")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("tree size 0: %v", err)
	}
	if _, err := ReadAny(strings.NewReader("graph 2 -1\n1 1\n")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("graph negative edges: %v", err)
	}
	if _, err := ReadAny(strings.NewReader("graph 2 1\n1 1\n0 1 x\n")); !errors.Is(err, ErrBadFormat) {
		t.Errorf("graph bad edge weight: %v", err)
	}
}
