package graph

import (
	"fmt"
	"sort"
)

// Graph is a general undirected task graph used by the application substrates
// (process graphs of logic simulations, §3) before they are approximated by a
// linear or tree super-graph.
type Graph struct {
	// NodeW[i] is the processing requirement of task i.
	NodeW []float64
	// Edges are the data dependencies. Parallel edges are permitted until
	// MergeParallel is called; self-loops are never permitted.
	Edges []Edge
}

// NewGraph constructs and validates a general task graph. Slices are copied.
func NewGraph(nodeW []float64, edges []Edge) (*Graph, error) {
	return NewGraphOwned(
		append([]float64(nil), nodeW...),
		append([]Edge(nil), edges...),
	)
}

// NewGraphOwned constructs and validates a general task graph that takes
// ownership of the argument slices without copying — the zero-copy
// constructor the binary codec decodes into. The caller must not reuse the
// slices afterwards.
func NewGraphOwned(nodeW []float64, edges []Edge) (*Graph, error) {
	g := &Graph{NodeW: nodeW, Edges: edges}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.NodeW) }

// Validate checks endpoints and weights.
func (g *Graph) Validate() error {
	n := len(g.NodeW)
	if n == 0 {
		return ErrEmptyGraph
	}
	if err := checkWeights("NodeW", g.NodeW); err != nil {
		return err
	}
	for i, e := range g.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("edge %d endpoints (%d,%d) out of range [0,%d): %w",
				i, e.U, e.V, n, ErrBadShape)
		}
		if e.U == e.V {
			return fmt.Errorf("edge %d is a self-loop at %d: %w", i, e.U, ErrBadShape)
		}
		if !validWeight(e.W) {
			return fmt.Errorf("edge %d weight %v: %w", i, e.W, ErrBadWeight)
		}
	}
	return nil
}

// TotalNodeWeight returns the sum of all task weights.
func (g *Graph) TotalNodeWeight() float64 { return SumWeights(g.NodeW) }

// TotalEdgeWeight returns the sum of all communication weights.
func (g *Graph) TotalEdgeWeight() float64 {
	var s float64
	for _, e := range g.Edges {
		s += e.W
	}
	return s
}

// MergeParallel returns a copy of the graph in which parallel edges between
// the same vertex pair are merged into one edge carrying their summed weight.
// Edges in the result are sorted by (min endpoint, max endpoint).
func (g *Graph) MergeParallel() *Graph {
	type key struct{ a, b int }
	agg := make(map[key]float64, len(g.Edges))
	for _, e := range g.Edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		agg[key{a, b}] += e.W
	}
	keys := make([]key, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	edges := make([]Edge, len(keys))
	for i, k := range keys {
		edges[i] = Edge{U: k.a, V: k.b, W: agg[k]}
	}
	return &Graph{
		NodeW: append([]float64(nil), g.NodeW...),
		Edges: edges,
	}
}

// Adjacency returns adjacency lists; adj[v] holds one Arc per incident edge.
func (g *Graph) Adjacency() [][]Arc {
	adj := make([][]Arc, len(g.NodeW))
	for i, e := range g.Edges {
		adj[e.U] = append(adj[e.U], Arc{To: e.V, Edge: i})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, Edge: i})
	}
	return adj
}

// IsConnected reports whether the graph is connected.
func (g *Graph) IsConnected() bool {
	if len(g.NodeW) == 0 {
		return false
	}
	uf := newUnionFind(len(g.NodeW))
	comps := len(g.NodeW)
	for _, e := range g.Edges {
		if uf.union(e.U, e.V) {
			comps--
		}
	}
	return comps == 1
}

// IsPathOrder reports whether the graph is exactly a path visiting vertices
// in index order 0,1,…,n−1, and if so returns the equivalent Path.
func (g *Graph) IsPathOrder() (*Path, bool) {
	n := len(g.NodeW)
	if n == 0 || len(g.Edges) != n-1 {
		return nil, false
	}
	edgeW := make([]float64, n-1)
	seen := make([]bool, n-1)
	for _, e := range g.Edges {
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if b != a+1 || seen[a] {
			return nil, false
		}
		seen[a] = true
		edgeW[a] = e.W
	}
	return &Path{
		NodeW: append([]float64(nil), g.NodeW...),
		EdgeW: edgeW,
	}, true
}
