package graph

import (
	"math"
	"testing"
)

func fpPath(t *testing.T, nodeW, edgeW []float64) uint64 {
	t.Helper()
	p, err := NewPath(nodeW, edgeW)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	return FingerprintPath(p)
}

// TestFingerprintDeterministic: the same graph always hashes to the same
// value, including through Clone (which must be byte-for-byte equivalent).
func TestFingerprintDeterministic(t *testing.T) {
	p, err := NewPath([]float64{1, 2, 3, 4}, []float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintPath(p) != FingerprintPath(p) {
		t.Error("fingerprint not deterministic across calls")
	}
	if FingerprintPath(p) != FingerprintPath(p.Clone()) {
		t.Error("fingerprint differs between a path and its clone")
	}
	tr, err := NewTree([]float64{1, 2, 3}, []Edge{{U: 0, V: 1, W: 5}, {U: 0, V: 2, W: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintTree(tr) != FingerprintTree(tr.Clone()) {
		t.Error("fingerprint differs between a tree and its clone")
	}
}

// TestFingerprintSensitivity: every component of the canonical encoding must
// influence the hash — weights, topology, lengths, and the kind tag.
func TestFingerprintSensitivity(t *testing.T) {
	base := fpPath(t, []float64{1, 2, 3, 4}, []float64{10, 20, 30})
	variants := map[string]uint64{
		"node weight changed":  fpPath(t, []float64{1, 2, 3, 5}, []float64{10, 20, 30}),
		"edge weight changed":  fpPath(t, []float64{1, 2, 3, 4}, []float64{10, 20, 31}),
		"node order swapped":   fpPath(t, []float64{2, 1, 3, 4}, []float64{10, 20, 30}),
		"edge order swapped":   fpPath(t, []float64{1, 2, 3, 4}, []float64{20, 10, 30}),
		"shorter path":         fpPath(t, []float64{1, 2, 3}, []float64{10, 20}),
		"weight moved to edge": fpPath(t, []float64{1, 2, 3, 10}, []float64{4, 20, 30}),
	}
	for name, fp := range variants {
		if fp == base {
			t.Errorf("%s: fingerprint collided with base %016x", name, base)
		}
	}
}

// TestFingerprintKindSeparation: a path and its single-chain tree rendering
// are distinct inputs (different solvers accept them) and must not collide.
func TestFingerprintKindSeparation(t *testing.T) {
	p, err := NewPath([]float64{1, 2, 3}, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintPath(p) == FingerprintTree(p.AsTree()) {
		t.Error("path fingerprint collides with its tree view")
	}
	g, err := NewGraph(p.AsTree().NodeW, p.AsTree().Edges)
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintTree(p.AsTree()) == FingerprintGraph(g) {
		t.Error("tree fingerprint collides with the identical general graph")
	}
}

// TestFingerprintTreeTopology: same multiset of weights, different shape.
func TestFingerprintTreeTopology(t *testing.T) {
	nodeW := []float64{1, 1, 1, 1}
	chain, err := NewTree(nodeW, []Edge{{0, 1, 5}, {1, 2, 5}, {2, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	star, err := NewTree(nodeW, []Edge{{0, 1, 5}, {0, 2, 5}, {0, 3, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if FingerprintTree(chain) == FingerprintTree(star) {
		t.Error("chain and star with identical weights collide")
	}
}

// TestFingerprintNegativeZero: -0.0 and +0.0 are the same weight and must be
// the same cache key.
func TestFingerprintNegativeZero(t *testing.T) {
	a := fpPath(t, []float64{1, 0, 3}, []float64{10, 20})
	b := fpPath(t, []float64{1, math.Copysign(0, -1), 3}, []float64{10, 20})
	if a != b {
		t.Errorf("+0.0 (%016x) and -0.0 (%016x) fingerprints differ", a, b)
	}
}

// TestFingerprintDispatch covers the any-typed entry point.
func TestFingerprintDispatch(t *testing.T) {
	p, err := NewPath([]float64{1, 2}, []float64{3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fingerprint(p)
	if err != nil {
		t.Fatalf("Fingerprint(*Path): %v", err)
	}
	if got != FingerprintPath(p) {
		t.Error("dispatch disagrees with FingerprintPath")
	}
	if _, err := Fingerprint(42); err == nil {
		t.Error("Fingerprint(42) should fail")
	}
}

// TestFingerprintCollisionSanity: pairwise-distinct fingerprints across a
// family of near-identical random-ish graphs — a weak but useful guard
// against encoding bugs (e.g. dropped length prefixes).
func TestFingerprintCollisionSanity(t *testing.T) {
	seen := make(map[uint64]string)
	record := func(name string, fp uint64) {
		if prev, dup := seen[fp]; dup {
			t.Fatalf("fingerprint collision: %s vs %s (%016x)", name, prev, fp)
		}
		seen[fp] = name
	}
	// Paths of every length 1..64 with position-dependent weights, plus a
	// one-weight perturbation of each.
	for n := 1; n <= 64; n++ {
		nodeW := make([]float64, n)
		edgeW := make([]float64, n-1)
		for i := range nodeW {
			nodeW[i] = float64(i%7) + 0.5
		}
		for i := range edgeW {
			edgeW[i] = float64(i%5) + 1.25
		}
		p, err := NewPath(nodeW, edgeW)
		if err != nil {
			t.Fatal(err)
		}
		record("path", FingerprintPath(p))
		nodeW[n/2] += 0.001
		q, err := NewPath(nodeW, edgeW)
		if err != nil {
			t.Fatal(err)
		}
		record("perturbed path", FingerprintPath(q))
	}
	if len(seen) != 2*64 {
		t.Fatalf("recorded %d fingerprints, want %d", len(seen), 2*64)
	}
}

// Fingerprints are representation-sensitive by design: they hash the
// declaration order of weights and edges, not the isomorphism class. A
// reversed path or a relabeled tree is the *same* abstract graph but a
// *different* input (cuts index into the declared edge order), so it must
// hash differently — a cached result for one representation would return
// cut indices that are wrong for the other. These tests pin that behavior
// down so a future "canonicalizing" change has to confront it explicitly.
func TestFingerprintRepresentationSensitivity(t *testing.T) {
	// A permuted-but-isomorphic path: reversing vertex order preserves the
	// graph up to isomorphism but changes the weight sequences.
	p, err := NewPath([]float64{1, 2, 3}, []float64{10, 20})
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	rev, err := NewPath([]float64{3, 2, 1}, []float64{20, 10})
	if err != nil {
		t.Fatalf("NewPath(rev): %v", err)
	}
	if FingerprintPath(p) == FingerprintPath(rev) {
		t.Error("reversed path hashes equal; fingerprints must be representation-sensitive")
	}
	// A palindromic path is bit-identical under reversal and must collide
	// with itself (the sensitivity is to representation, not orientation).
	pal, err := NewPath([]float64{1, 2, 1}, []float64{5, 5})
	if err != nil {
		t.Fatalf("NewPath(pal): %v", err)
	}
	palRev, err := NewPath([]float64{1, 2, 1}, []float64{5, 5})
	if err != nil {
		t.Fatalf("NewPath(palRev): %v", err)
	}
	if FingerprintPath(pal) != FingerprintPath(palRev) {
		t.Error("identical representations must hash equal")
	}

	// The same tree with edges declared in a different order: isomorphic —
	// identical, even — as a graph, but cut index i now names a different
	// edge, so the fingerprint must differ.
	tr, err := NewTree([]float64{1, 2, 3}, []Edge{{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 20}})
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	reordered, err := NewTree([]float64{1, 2, 3}, []Edge{{U: 1, V: 2, W: 20}, {U: 0, V: 1, W: 10}})
	if err != nil {
		t.Fatalf("NewTree(reordered): %v", err)
	}
	if FingerprintTree(tr) == FingerprintTree(reordered) {
		t.Error("edge-reordered tree hashes equal; cut indices would alias across cache entries")
	}

	// A vertex-relabeled tree (star centered at 0 vs. centered at 2):
	// isomorphic, different labels, different fingerprint.
	star0, err := NewTree([]float64{5, 1, 1}, []Edge{{U: 0, V: 1, W: 2}, {U: 0, V: 2, W: 3}})
	if err != nil {
		t.Fatalf("NewTree(star0): %v", err)
	}
	star2, err := NewTree([]float64{1, 1, 5}, []Edge{{U: 2, V: 1, W: 2}, {U: 2, V: 0, W: 3}})
	if err != nil {
		t.Fatalf("NewTree(star2): %v", err)
	}
	if FingerprintTree(star0) == FingerprintTree(star2) {
		t.Error("relabeled star hashes equal; fingerprints must see vertex identities")
	}

	// Endpoint order within one edge is also representation: (U,V) vs (V,U)
	// is the same undirected edge but a different declaration.
	swapped, err := NewTree([]float64{1, 2, 3}, []Edge{{U: 1, V: 0, W: 10}, {U: 1, V: 2, W: 20}})
	if err != nil {
		t.Fatalf("NewTree(swapped): %v", err)
	}
	if FingerprintTree(tr) == FingerprintTree(swapped) {
		t.Error("endpoint-swapped edge hashes equal; declaration order is part of the key")
	}
}
