package graph

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func mustPath(t *testing.T, nodeW, edgeW []float64) *Path {
	t.Helper()
	p, err := NewPath(nodeW, edgeW)
	if err != nil {
		t.Fatalf("NewPath: %v", err)
	}
	return p
}

func TestNewPathValidation(t *testing.T) {
	tests := []struct {
		name    string
		nodeW   []float64
		edgeW   []float64
		wantErr error
	}{
		{"single node", []float64{1}, nil, nil},
		{"two nodes", []float64{1, 2}, []float64{3}, nil},
		{"zero weights ok", []float64{0, 0}, []float64{0}, nil},
		{"empty", nil, nil, ErrEmptyGraph},
		{"edge count mismatch", []float64{1, 2}, []float64{1, 2}, ErrBadShape},
		{"missing edges", []float64{1, 2, 3}, []float64{1}, ErrBadShape},
		{"negative node weight", []float64{1, -2}, []float64{1}, ErrBadWeight},
		{"negative edge weight", []float64{1, 2}, []float64{-1}, ErrBadWeight},
		{"nan node weight", []float64{math.NaN(), 2}, []float64{1}, ErrBadWeight},
		{"inf edge weight", []float64{1, 2}, []float64{math.Inf(1)}, ErrBadWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewPath(tt.nodeW, tt.edgeW)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("NewPath() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewPathCopiesInputs(t *testing.T) {
	nodeW := []float64{1, 2, 3}
	edgeW := []float64{4, 5}
	p := mustPath(t, nodeW, edgeW)
	nodeW[0] = 99
	edgeW[0] = 99
	if p.NodeW[0] != 1 || p.EdgeW[0] != 4 {
		t.Errorf("NewPath did not copy inputs: %v %v", p.NodeW, p.EdgeW)
	}
}

func TestPathLenAndNumEdges(t *testing.T) {
	p := mustPath(t, []float64{1, 2, 3, 4}, []float64{1, 2, 3})
	if p.Len() != 4 {
		t.Errorf("Len() = %d, want 4", p.Len())
	}
	if p.NumEdges() != 3 {
		t.Errorf("NumEdges() = %d, want 3", p.NumEdges())
	}
	empty := &Path{}
	if empty.NumEdges() != 0 {
		t.Errorf("empty NumEdges() = %d, want 0", empty.NumEdges())
	}
}

func TestPathPrefixNodeWeights(t *testing.T) {
	p := mustPath(t, []float64{1, 2, 3}, []float64{10, 20})
	got := p.PrefixNodeWeights()
	want := []float64{0, 1, 3, 6}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PrefixNodeWeights() = %v, want %v", got, want)
	}
}

func TestPathComponents(t *testing.T) {
	p := mustPath(t, []float64{1, 2, 3, 4, 5}, []float64{10, 20, 30, 40})
	tests := []struct {
		name      string
		cut       []int
		wantComps [][2]int
		wantW     []float64
	}{
		{"no cut", nil, [][2]int{{0, 4}}, []float64{15}},
		{"single cut", []int{1}, [][2]int{{0, 1}, {2, 4}}, []float64{3, 12}},
		{"all cut", []int{0, 1, 2, 3}, [][2]int{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}}, []float64{1, 2, 3, 4, 5}},
		{"ends", []int{0, 3}, [][2]int{{0, 0}, {1, 3}, {4, 4}}, []float64{1, 9, 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			comps, err := p.Components(tt.cut)
			if err != nil {
				t.Fatalf("Components: %v", err)
			}
			if !reflect.DeepEqual(comps, tt.wantComps) {
				t.Errorf("Components = %v, want %v", comps, tt.wantComps)
			}
			ws, err := p.ComponentWeights(tt.cut)
			if err != nil {
				t.Fatalf("ComponentWeights: %v", err)
			}
			if !reflect.DeepEqual(ws, tt.wantW) {
				t.Errorf("ComponentWeights = %v, want %v", ws, tt.wantW)
			}
		})
	}
}

func TestPathComponentsBadCut(t *testing.T) {
	p := mustPath(t, []float64{1, 2, 3}, []float64{1, 2})
	for _, cut := range [][]int{{-1}, {2}, {0, 0}, {1, 0}} {
		if _, err := p.Components(cut); !errors.Is(err, ErrBadCut) {
			t.Errorf("Components(%v) error = %v, want ErrBadCut", cut, err)
		}
	}
}

func TestPathCutWeight(t *testing.T) {
	p := mustPath(t, []float64{1, 1, 1, 1}, []float64{5, 7, 9})
	w, err := p.CutWeight([]int{0, 2})
	if err != nil {
		t.Fatalf("CutWeight: %v", err)
	}
	if w != 14 {
		t.Errorf("CutWeight = %v, want 14", w)
	}
	m, err := p.MaxCutEdgeWeight([]int{0, 2})
	if err != nil {
		t.Fatalf("MaxCutEdgeWeight: %v", err)
	}
	if m != 9 {
		t.Errorf("MaxCutEdgeWeight = %v, want 9", m)
	}
	if m, _ := p.MaxCutEdgeWeight(nil); m != 0 {
		t.Errorf("MaxCutEdgeWeight(nil) = %v, want 0", m)
	}
}

func TestPathMaxComponentWeight(t *testing.T) {
	p := mustPath(t, []float64{4, 1, 1, 6}, []float64{1, 1, 1})
	got, err := p.MaxComponentWeight([]int{0})
	if err != nil {
		t.Fatalf("MaxComponentWeight: %v", err)
	}
	if got != 8 {
		t.Errorf("MaxComponentWeight = %v, want 8", got)
	}
}

func TestPathAsTree(t *testing.T) {
	p := mustPath(t, []float64{1, 2, 3}, []float64{10, 20})
	tr := p.AsTree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("AsTree().Validate(): %v", err)
	}
	if !reflect.DeepEqual(tr.NodeW, p.NodeW) {
		t.Errorf("AsTree NodeW = %v, want %v", tr.NodeW, p.NodeW)
	}
	want := []Edge{{0, 1, 10}, {1, 2, 20}}
	if !reflect.DeepEqual(tr.Edges, want) {
		t.Errorf("AsTree Edges = %v, want %v", tr.Edges, want)
	}
}

func TestPathClone(t *testing.T) {
	p := mustPath(t, []float64{1, 2}, []float64{3})
	c := p.Clone()
	c.NodeW[0] = 42
	c.EdgeW[0] = 42
	if p.NodeW[0] != 1 || p.EdgeW[0] != 3 {
		t.Error("Clone shares storage with original")
	}
}

func TestNormalizeCut(t *testing.T) {
	tests := []struct {
		in   []int
		want []int
	}{
		{nil, nil},
		{[]int{3, 1, 2}, []int{1, 2, 3}},
		{[]int{1, 1, 1}, []int{1}},
		{[]int{5, 3, 5, 3}, []int{3, 5}},
	}
	for _, tt := range tests {
		if got := NormalizeCut(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("NormalizeCut(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Property: component weights always sum to the total node weight, for any
// valid cut.
func TestPathComponentWeightsSumProperty(t *testing.T) {
	f := func(raw []uint8, cutBits uint16) bool {
		n := len(raw)%20 + 2
		nodeW := make([]float64, n)
		for i := range nodeW {
			if i < len(raw) {
				nodeW[i] = float64(raw[i])
			} else {
				nodeW[i] = 1
			}
		}
		edgeW := make([]float64, n-1)
		for i := range edgeW {
			edgeW[i] = 1
		}
		p, err := NewPath(nodeW, edgeW)
		if err != nil {
			return false
		}
		var cut []int
		for i := 0; i < n-1 && i < 16; i++ {
			if cutBits&(1<<i) != 0 {
				cut = append(cut, i)
			}
		}
		ws, err := p.ComponentWeights(cut)
		if err != nil {
			return false
		}
		return math.Abs(SumWeights(ws)-p.TotalNodeWeight()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
