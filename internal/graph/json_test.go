package graph

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestJSONPathRoundTrip(t *testing.T) {
	p := mustPath(t, []float64{1.5, 2, 3}, []float64{0.25, 7})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), `"kind":"path"`) {
		t.Errorf("missing kind: %s", buf.String())
	}
	got, err := ReadJSONPath(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONPath: %v", err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("round trip = %+v, want %+v", got, p)
	}
}

func TestJSONTreeRoundTrip(t *testing.T) {
	tr := mustTree(t, []float64{1, 2, 3}, []Edge{{0, 1, 4}, {1, 2, 5}})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSONTree(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONTree: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Errorf("round trip = %+v, want %+v", got, tr)
	}
}

func TestJSONGraphRoundTrip(t *testing.T) {
	g, err := NewGraph([]float64{1, 1, 1}, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}})
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	any, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	got, ok := any.(*Graph)
	if !ok || !reflect.DeepEqual(got, g) {
		t.Errorf("round trip = %+v (%T), want %+v", any, any, g)
	}
}

func TestJSONErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, 42); !errors.Is(err, ErrBadFormat) {
		t.Errorf("encode int: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{"kind":"blob"}`)); !errors.Is(err, ErrBadFormat) {
		t.Errorf("unknown kind: %v", err)
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Validation still applies.
	if _, err := ReadJSON(strings.NewReader(`{"kind":"path","nodeWeights":[1,-2],"edgeWeights":[1]}`)); !errors.Is(err, ErrBadWeight) {
		t.Errorf("invalid weight: %v", err)
	}
	// Kind mismatch helpers.
	var tb bytes.Buffer
	tr := mustTree(t, []float64{1, 2}, []Edge{{0, 1, 1}})
	if err := WriteJSON(&tb, tr); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if _, err := ReadJSONPath(bytes.NewReader(tb.Bytes())); !errors.Is(err, ErrBadFormat) {
		t.Errorf("tree as path: %v", err)
	}
	var pb bytes.Buffer
	p := mustPath(t, []float64{1, 2}, []float64{1})
	if err := WriteJSON(&pb, p); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if _, err := ReadJSONTree(bytes.NewReader(pb.Bytes())); !errors.Is(err, ErrBadFormat) {
		t.Errorf("path as tree: %v", err)
	}
}
