package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON codec for task graphs, used for interchange with external tooling.
// The envelope carries an explicit kind so files are self-describing:
//
//	{"kind":"path","nodeWeights":[1,2,3],"edgeWeights":[10,20]}
//	{"kind":"tree","nodeWeights":[1,2],"edges":[{"u":0,"v":1,"w":5}]}
//	{"kind":"graph","nodeWeights":[...],"edges":[...]}

type jsonEdge struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

type jsonGraph struct {
	Kind        string     `json:"kind"`
	NodeWeights []float64  `json:"nodeWeights"`
	EdgeWeights []float64  `json:"edgeWeights,omitempty"`
	Edges       []jsonEdge `json:"edges,omitempty"`
}

func toJSONEdges(es []Edge) []jsonEdge {
	out := make([]jsonEdge, len(es))
	for i, e := range es {
		out[i] = jsonEdge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

func fromJSONEdges(es []jsonEdge) []Edge {
	out := make([]Edge, len(es))
	for i, e := range es {
		out[i] = Edge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// WriteJSON encodes a *Path, *Tree, or *Graph.
func WriteJSON(w io.Writer, g any) error {
	var env jsonGraph
	switch v := g.(type) {
	case *Path:
		env = jsonGraph{Kind: "path", NodeWeights: v.NodeW, EdgeWeights: v.EdgeW}
	case *Tree:
		env = jsonGraph{Kind: "tree", NodeWeights: v.NodeW, Edges: toJSONEdges(v.Edges)}
	case *Graph:
		env = jsonGraph{Kind: "graph", NodeWeights: v.NodeW, Edges: toJSONEdges(v.Edges)}
	default:
		return fmt.Errorf("cannot encode %T: %w", g, ErrBadFormat)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&env)
}

// ReadJSON decodes a graph envelope, returning exactly one of *Path, *Tree,
// or *Graph, validated.
func ReadJSON(r io.Reader) (any, error) {
	var env jsonGraph
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("decoding graph JSON: %w", err)
	}
	switch env.Kind {
	case "path":
		return NewPath(env.NodeWeights, env.EdgeWeights)
	case "tree":
		return NewTree(env.NodeWeights, fromJSONEdges(env.Edges))
	case "graph":
		return NewGraph(env.NodeWeights, fromJSONEdges(env.Edges))
	default:
		return nil, fmt.Errorf("unknown graph kind %q: %w", env.Kind, ErrBadFormat)
	}
}

// ReadJSONPath decodes a path envelope, rejecting other kinds.
func ReadJSONPath(r io.Reader) (*Path, error) {
	g, err := ReadJSON(r)
	if err != nil {
		return nil, err
	}
	p, ok := g.(*Path)
	if !ok {
		return nil, fmt.Errorf("expected path, got %T: %w", g, ErrBadFormat)
	}
	return p, nil
}

// ReadJSONTree decodes a tree envelope, rejecting other kinds.
func ReadJSONTree(r io.Reader) (*Tree, error) {
	g, err := ReadJSON(r)
	if err != nil {
		return nil, err
	}
	t, ok := g.(*Tree)
	if !ok {
		return nil, fmt.Errorf("expected tree, got %T: %w", g, ErrBadFormat)
	}
	return t, nil
}
