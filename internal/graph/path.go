package graph

import (
	"fmt"
	"math"
)

// Path is a linear task graph: vertices v_0..v_{n-1} in pipeline order, with
// edge e_i joining v_i and v_{i+1}. This models the chain-like workloads of
// §1 (pipelines, PDE strips, iterative computations).
type Path struct {
	// NodeW[i] is the processing requirement of task i.
	NodeW []float64
	// EdgeW[i] is the communication volume between tasks i and i+1.
	// len(EdgeW) == len(NodeW)-1.
	EdgeW []float64
}

// NewPath constructs and validates a linear task graph. The slices are
// copied, so the caller retains ownership of its arguments. Both columns are
// carved out of a single backing allocation; the capacities are clipped so a
// later append to either column cannot bleed into the other.
func NewPath(nodeW, edgeW []float64) (*Path, error) {
	n := len(nodeW)
	slab := make([]float64, n+len(edgeW))
	copy(slab, nodeW)
	copy(slab[n:], edgeW)
	return NewPathOwned(slab[:n:n], slab[n:])
}

// NewPathOwned constructs and validates a linear task graph that takes
// ownership of the argument slices without copying — the zero-copy
// constructor the binary codec decodes into. The caller must not reuse the
// slices afterwards.
func NewPathOwned(nodeW, edgeW []float64) (*Path, error) {
	p := &Path{NodeW: nodeW, EdgeW: edgeW}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Len returns the number of tasks (vertices).
func (p *Path) Len() int { return len(p.NodeW) }

// NumEdges returns the number of data dependencies (edges).
func (p *Path) NumEdges() int {
	if len(p.NodeW) == 0 {
		return 0
	}
	return len(p.NodeW) - 1
}

// Validate checks shape and weight invariants.
func (p *Path) Validate() error {
	if len(p.NodeW) == 0 {
		return ErrEmptyGraph
	}
	if len(p.EdgeW) != len(p.NodeW)-1 {
		return fmt.Errorf("path with %d nodes has %d edges, want %d: %w",
			len(p.NodeW), len(p.EdgeW), len(p.NodeW)-1, ErrBadShape)
	}
	if err := checkWeights("NodeW", p.NodeW); err != nil {
		return err
	}
	return checkWeights("EdgeW", p.EdgeW)
}

// Clone returns a deep copy of the path, backed by one fresh allocation.
func (p *Path) Clone() *Path {
	n := len(p.NodeW)
	slab := make([]float64, n+len(p.EdgeW))
	copy(slab, p.NodeW)
	copy(slab[n:], p.EdgeW)
	return &Path{NodeW: slab[:n:n], EdgeW: slab[n:]}
}

// TotalNodeWeight returns the sum of all task weights.
func (p *Path) TotalNodeWeight() float64 { return SumWeights(p.NodeW) }

// MaxNodeWeight returns the largest task weight.
func (p *Path) MaxNodeWeight() float64 { return MaxWeight(p.NodeW) }

// PrefixNodeWeights returns the exclusive prefix sums of NodeW: the result
// has length Len()+1 and result[j]-result[i] is the weight of tasks i..j-1.
func (p *Path) PrefixNodeWeights() []float64 {
	return p.PrefixNodeWeightsInto(nil)
}

// PrefixNodeWeightsInto is PrefixNodeWeights writing into buf when it has
// sufficient capacity, allocating only otherwise — the scratch-pooled form
// used by the solvers' hot paths.
func (p *Path) PrefixNodeWeightsInto(buf []float64) []float64 {
	n := len(p.NodeW) + 1
	var prefix []float64
	if cap(buf) >= n {
		prefix = buf[:n]
		prefix[0] = 0
	} else {
		prefix = make([]float64, n)
	}
	for i, w := range p.NodeW {
		prefix[i+1] = prefix[i] + w
	}
	return prefix
}

// Components returns the vertex ranges induced by removing the cut edges.
// Each element is the half-open pair {first vertex, last vertex} (inclusive).
// The cut must be sorted, duplicate-free, and in range.
func (p *Path) Components(cut []int) ([][2]int, error) {
	if err := checkCut(cut, p.NumEdges()); err != nil {
		return nil, err
	}
	comps := make([][2]int, 0, len(cut)+1)
	start := 0
	for _, e := range cut {
		comps = append(comps, [2]int{start, e})
		start = e + 1
	}
	comps = append(comps, [2]int{start, p.Len() - 1})
	return comps, nil
}

// ComponentWeights returns the total task weight of each component of
// P − cut, in left-to-right order.
func (p *Path) ComponentWeights(cut []int) ([]float64, error) {
	comps, err := p.Components(cut)
	if err != nil {
		return nil, err
	}
	// One running prefix sum instead of a materialized prefix array. The
	// components tile [0, n) left to right, so `run` after node c[1] equals
	// prefix[c[1]+1] bit-for-bit (same accumulation order), keeping every
	// weight identical to the array-based computation.
	ws := make([]float64, len(comps))
	var run float64
	for i, c := range comps {
		start := run
		for v := c[0]; v <= c[1]; v++ {
			run += p.NodeW[v]
		}
		ws[i] = run - start
	}
	return ws, nil
}

// ComponentMaxNodeWeights returns, per component of P − cut left to right,
// the heaviest single node weight. It is the per-processor cost vector of
// the sum-of-max criterion.
func (p *Path) ComponentMaxNodeWeights(cut []int) ([]float64, error) {
	comps, err := p.Components(cut)
	if err != nil {
		return nil, err
	}
	ms := make([]float64, len(comps))
	for i, c := range comps {
		m := math.Inf(-1)
		for v := c[0]; v <= c[1]; v++ {
			if p.NodeW[v] > m {
				m = p.NodeW[v]
			}
		}
		ms[i] = m
	}
	return ms, nil
}

// MaxComponentWeight returns the heaviest component weight of P − cut.
func (p *Path) MaxComponentWeight(cut []int) (float64, error) {
	ws, err := p.ComponentWeights(cut)
	if err != nil {
		return 0, err
	}
	return MaxWeight(ws), nil
}

// CutWeight returns β(cut), the total communication weight of the cut edges.
func (p *Path) CutWeight(cut []int) (float64, error) {
	if err := checkCut(cut, p.NumEdges()); err != nil {
		return 0, err
	}
	var s float64
	for _, e := range cut {
		s += p.EdgeW[e]
	}
	return s, nil
}

// MaxCutEdgeWeight returns the bottleneck, max over cut edges of β, or 0 for
// an empty cut.
func (p *Path) MaxCutEdgeWeight(cut []int) (float64, error) {
	if err := checkCut(cut, p.NumEdges()); err != nil {
		return 0, err
	}
	var m float64
	for _, e := range cut {
		if p.EdgeW[e] > m {
			m = p.EdgeW[e]
		}
	}
	return m, nil
}

// AsTree converts the path into the equivalent tree task graph, with edge i
// of the path becoming Edges[i] of the tree.
func (p *Path) AsTree() *Tree {
	edges := make([]Edge, p.NumEdges())
	for i := range edges {
		edges[i] = Edge{U: i, V: i + 1, W: p.EdgeW[i]}
	}
	return &Tree{
		NodeW: append([]float64(nil), p.NodeW...),
		Edges: edges,
	}
}
