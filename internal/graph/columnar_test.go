package graph

import (
	"sort"
	"testing"
)

// csrToAdj reconstructs [][]Arc from a CSR view for comparison.
func csrToAdj(c CSR, n int) [][]Arc {
	adj := make([][]Arc, n)
	for v := 0; v < n; v++ {
		lo, hi := c.Arcs(v)
		for a := lo; a < hi; a++ {
			adj[v] = append(adj[v], Arc{To: int(c.To[a]), Edge: int(c.EIdx[a])})
		}
	}
	return adj
}

func sortArcs(as []Arc) {
	sort.Slice(as, func(i, j int) bool {
		if as[i].To != as[j].To {
			return as[i].To < as[j].To
		}
		return as[i].Edge < as[j].Edge
	})
}

func TestBuildCSRMatchesAdjacency(t *testing.T) {
	trees := []*Tree{
		{NodeW: []float64{1}, Edges: nil},
		{NodeW: []float64{1, 2}, Edges: []Edge{{U: 0, V: 1, W: 5}}},
		{NodeW: []float64{1, 2, 3, 4, 5}, Edges: []Edge{
			{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 1, V: 3, W: 3}, {U: 3, V: 4, W: 4},
		}},
		// Star: high-degree centre exercises the counting sort.
		{NodeW: []float64{1, 1, 1, 1, 1, 1}, Edges: []Edge{
			{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 2}, {U: 0, V: 3, W: 3}, {U: 0, V: 4, W: 4}, {U: 0, V: 5, W: 5},
		}},
	}
	for _, tr := range trees {
		if err := tr.Validate(); err != nil {
			t.Fatalf("fixture invalid: %v", err)
		}
		csr, _ := tr.BuildCSR(nil)
		if got, want := len(csr.Off), tr.Len()+1; got != want {
			t.Fatalf("Off length %d, want %d", got, want)
		}
		if got, want := int(csr.Off[tr.Len()]), 2*tr.NumEdges(); got != want {
			t.Fatalf("Off[n] = %d, want %d", got, want)
		}
		want := tr.Adjacency()
		got := csrToAdj(csr, tr.Len())
		for v := range want {
			sortArcs(want[v])
			sortArcs(got[v])
			if len(want[v]) != len(got[v]) {
				t.Fatalf("vertex %d: %d arcs, want %d", v, len(got[v]), len(want[v]))
			}
			for i := range want[v] {
				if want[v][i] != got[v][i] {
					t.Fatalf("vertex %d arc %d: got %+v, want %+v", v, i, got[v][i], want[v][i])
				}
			}
		}
	}
}

func TestBuildCSRReusesBuffer(t *testing.T) {
	tr := &Tree{NodeW: []float64{1, 2, 3}, Edges: []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}}}
	_, buf := tr.BuildCSR(nil)
	csr2, buf2 := tr.BuildCSR(buf)
	if &buf[0] != &buf2[0] {
		t.Fatal("second build did not reuse the buffer")
	}
	if int(csr2.Off[3]) != 4 {
		t.Fatalf("Off[n] = %d, want 4", csr2.Off[3])
	}
	// A too-small buffer grows rather than panicking.
	big := &Tree{NodeW: []float64{1, 2, 3, 4, 5, 6, 7, 8}, Edges: []Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}, {U: 3, V: 4, W: 1},
		{U: 4, V: 5, W: 1}, {U: 5, V: 6, W: 1}, {U: 6, V: 7, W: 1},
	}}
	csr3, _ := big.BuildCSR(buf2[:2])
	if int(csr3.Off[8]) != 14 {
		t.Fatalf("grown build Off[n] = %d, want 14", csr3.Off[8])
	}
}

func TestHasherMatchesBatchFingerprints(t *testing.T) {
	p := &Path{NodeW: []float64{1, 2.5, 0}, EdgeW: []float64{3, 0}}
	h := NewPathHasher()
	h.Word(uint64(len(p.NodeW)))
	for _, w := range p.NodeW {
		h.Weight(w)
	}
	h.Word(uint64(len(p.EdgeW)))
	for _, w := range p.EdgeW {
		h.Weight(w)
	}
	if got, want := h.Sum(), FingerprintPath(p); got != want {
		t.Fatalf("path hasher %016x != FingerprintPath %016x", got, want)
	}

	tr := &Tree{NodeW: []float64{1, 2, 3}, Edges: []Edge{{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 5}}}
	th := NewTreeHasher()
	th.Word(uint64(len(tr.NodeW)))
	for _, w := range tr.NodeW {
		th.Weight(w)
	}
	th.Word(uint64(len(tr.Edges)))
	for _, e := range tr.Edges {
		th.Word(uint64(e.U))
		th.Word(uint64(e.V))
		th.Weight(e.W)
	}
	if got, want := th.Sum(), FingerprintTree(tr); got != want {
		t.Fatalf("tree hasher %016x != FingerprintTree %016x", got, want)
	}

	g := &Graph{NodeW: tr.NodeW, Edges: tr.Edges}
	gh := NewGraphHasher()
	gh.Word(uint64(len(g.NodeW)))
	for _, w := range g.NodeW {
		gh.Weight(w)
	}
	gh.Word(uint64(len(g.Edges)))
	for _, e := range g.Edges {
		gh.Word(uint64(e.U))
		gh.Word(uint64(e.V))
		gh.Weight(e.W)
	}
	if got, want := gh.Sum(), FingerprintGraph(g); got != want {
		t.Fatalf("graph hasher %016x != FingerprintGraph %016x", got, want)
	}
	if FingerprintTree(tr) == FingerprintGraph(g) {
		t.Fatal("tree and graph with identical columns must fingerprint differently")
	}
}

func TestOwnedConstructorsValidateWithoutCopy(t *testing.T) {
	nodeW := []float64{1, 2}
	edgeW := []float64{3}
	p, err := NewPathOwned(nodeW, edgeW)
	if err != nil {
		t.Fatal(err)
	}
	if &p.NodeW[0] != &nodeW[0] || &p.EdgeW[0] != &edgeW[0] {
		t.Fatal("NewPathOwned copied its arguments")
	}
	if _, err := NewPathOwned([]float64{1, -2}, []float64{3}); err == nil {
		t.Fatal("NewPathOwned accepted a negative weight")
	}
	edges := []Edge{{U: 0, V: 1, W: 3}}
	tr, err := NewTreeOwned(nodeW, edges)
	if err != nil {
		t.Fatal(err)
	}
	if &tr.Edges[0] != &edges[0] {
		t.Fatal("NewTreeOwned copied its edges")
	}
	if _, err := NewTreeOwned(nodeW, []Edge{{U: 0, V: 0, W: 1}}); err == nil {
		t.Fatal("NewTreeOwned accepted a self-loop")
	}
	g, err := NewGraphOwned(nodeW, edges)
	if err != nil {
		t.Fatal(err)
	}
	if &g.NodeW[0] != &nodeW[0] {
		t.Fatal("NewGraphOwned copied its node weights")
	}
}

func TestPrefixNodeWeightsInto(t *testing.T) {
	p := &Path{NodeW: []float64{1, 2, 3}, EdgeW: []float64{1, 1}}
	buf := make([]float64, 0, 8)
	got := p.PrefixNodeWeightsInto(buf)
	want := p.PrefixNodeWeights()
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("PrefixNodeWeightsInto did not reuse the buffer")
	}
}
