// Package graph provides the weighted task-graph types used throughout the
// reproduction: linear task graphs (Path), tree task graphs (Tree), and
// general task graphs (Graph) for the application substrates.
//
// Conventions, following the paper (Ray & Jiang, ICDCS 1994, §1):
//
//   - A vertex weight w(t_i) is the processing requirement of task t_i.
//   - An edge weight w(m_i) is the communication volume between two tasks.
//   - All weights are non-negative float64 values.
//   - A cut is a sorted slice of edge indices; removing the cut edges splits
//     the graph into connected components, one per processor.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sentinel errors returned by constructors and validators.
var (
	// ErrEmptyGraph is returned when a graph has no vertices.
	ErrEmptyGraph = errors.New("graph: empty graph")
	// ErrBadWeight is returned when a weight is negative, NaN, or infinite.
	ErrBadWeight = errors.New("graph: weight must be finite and non-negative")
	// ErrBadShape is returned when slice lengths or edge endpoints are
	// inconsistent with the declared graph shape.
	ErrBadShape = errors.New("graph: inconsistent shape")
	// ErrNotTree is returned when an edge list does not form a tree.
	ErrNotTree = errors.New("graph: edge list is not a spanning tree")
	// ErrBadCut is returned when a cut references edges out of range or
	// contains duplicates.
	ErrBadCut = errors.New("graph: invalid cut")
)

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V int
	W    float64
}

// validWeight reports whether w is usable as a task or message weight.
func validWeight(w float64) bool {
	return w >= 0 && !math.IsNaN(w) && !math.IsInf(w, 0)
}

// checkWeights validates every weight in ws, naming the slice in errors.
func checkWeights(name string, ws []float64) error {
	for i, w := range ws {
		if !validWeight(w) {
			return fmt.Errorf("%s[%d] = %v: %w", name, i, w, ErrBadWeight)
		}
	}
	return nil
}

// checkCut validates that cut is a strictly increasing slice of edge indices
// in [0, numEdges).
func checkCut(cut []int, numEdges int) error {
	for i, e := range cut {
		if e < 0 || e >= numEdges {
			return fmt.Errorf("cut[%d] = %d out of range [0,%d): %w", i, e, numEdges, ErrBadCut)
		}
		if i > 0 && cut[i-1] >= e {
			return fmt.Errorf("cut not strictly increasing at index %d: %w", i, ErrBadCut)
		}
	}
	return nil
}

// NormalizeCut returns a sorted, de-duplicated copy of cut. It does not
// validate ranges; pair it with the owning graph's validation when needed.
func NormalizeCut(cut []int) []int {
	if len(cut) == 0 {
		return nil
	}
	out := make([]int, len(cut))
	copy(out, cut)
	sort.Ints(out)
	j := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[j] {
			j++
			out[j] = out[i]
		}
	}
	return out[:j+1]
}

// SumWeights returns the sum of ws.
func SumWeights(ws []float64) float64 {
	var s float64
	for _, w := range ws {
		s += w
	}
	return s
}

// MaxWeight returns the maximum of ws, or 0 for an empty slice.
func MaxWeight(ws []float64) float64 {
	var m float64
	for _, w := range ws {
		if w > m {
			m = w
		}
	}
	return m
}

// unionFind is a standard disjoint-set structure used by tree validation and
// component extraction.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of x and y and reports whether they were distinct.
func (uf *unionFind) union(x, y int) bool {
	rx, ry := uf.find(x), uf.find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	return true
}
