package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a small line-oriented text codec for task graphs, used
// by the command-line tools. The format is:
//
//	# comments and blank lines are ignored
//	path <n>
//	<n node weights, whitespace separated, may span lines>
//	<n-1 edge weights>
//
//	tree <n>
//	<n node weights>
//	<u> <v> <w>        (n-1 lines, one per edge)
//
//	graph <n> <m>
//	<n node weights>
//	<u> <v> <w>        (m lines)

// ErrBadFormat is returned when the text codec encounters malformed input.
var ErrBadFormat = errors.New("graph: bad text format")

type tokenReader struct {
	sc   *bufio.Scanner
	toks []string
	pos  int
	line int
}

func newTokenReader(r io.Reader) *tokenReader {
	sc := bufio.NewScanner(r)
	// The writers put a whole weight row on one line, so the token buffer
	// must hold it: ~18 bytes per float means 256 MiB covers paths of
	// ~14M nodes. (Graphs past that belong in the binary codec anyway.)
	sc.Buffer(make([]byte, 0, 64*1024), 256*1024*1024)
	return &tokenReader{sc: sc}
}

// next returns the next whitespace-separated token, skipping comments.
func (tr *tokenReader) next() (string, error) {
	for tr.pos >= len(tr.toks) {
		if !tr.sc.Scan() {
			if err := tr.sc.Err(); err != nil {
				return "", err
			}
			return "", io.EOF
		}
		tr.line++
		line := tr.sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		tr.toks = strings.Fields(line)
		tr.pos = 0
	}
	tok := tr.toks[tr.pos]
	tr.pos++
	return tok, nil
}

func (tr *tokenReader) nextInt() (int, error) {
	tok, err := tr.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("line %d: %q is not an integer: %w", tr.line, tok, ErrBadFormat)
	}
	return v, nil
}

func (tr *tokenReader) nextFloat() (float64, error) {
	tok, err := tr.next()
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, fmt.Errorf("line %d: %q is not a number: %w", tr.line, tok, ErrBadFormat)
	}
	return v, nil
}

func (tr *tokenReader) floats(n int) ([]float64, error) {
	out := make([]float64, n)
	for i := range out {
		v, err := tr.nextFloat()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ReadAny parses the next graph from r, returning exactly one of a *Path,
// *Tree, or *Graph according to the header keyword.
func ReadAny(r io.Reader) (any, error) {
	tr := newTokenReader(r)
	kind, err := tr.next()
	if err != nil {
		return nil, fmt.Errorf("reading header: %w", err)
	}
	switch kind {
	case "path":
		return readPath(tr)
	case "tree":
		return readTree(tr)
	case "graph":
		return readGraph(tr)
	default:
		return nil, fmt.Errorf("unknown graph kind %q: %w", kind, ErrBadFormat)
	}
}

// ReadPath parses a path in the text format.
func ReadPath(r io.Reader) (*Path, error) {
	tr := newTokenReader(r)
	kind, err := tr.next()
	if err != nil {
		return nil, err
	}
	if kind != "path" {
		return nil, fmt.Errorf("expected %q header, got %q: %w", "path", kind, ErrBadFormat)
	}
	return readPath(tr)
}

// ReadTree parses a tree in the text format.
func ReadTree(r io.Reader) (*Tree, error) {
	tr := newTokenReader(r)
	kind, err := tr.next()
	if err != nil {
		return nil, err
	}
	if kind != "tree" {
		return nil, fmt.Errorf("expected %q header, got %q: %w", "tree", kind, ErrBadFormat)
	}
	return readTree(tr)
}

func readPath(tr *tokenReader) (*Path, error) {
	n, err := tr.nextInt()
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("path size %d: %w", n, ErrBadFormat)
	}
	nodeW, err := tr.floats(n)
	if err != nil {
		return nil, err
	}
	edgeW, err := tr.floats(n - 1)
	if err != nil {
		return nil, err
	}
	return NewPath(nodeW, edgeW)
}

func readTree(tr *tokenReader) (*Tree, error) {
	n, err := tr.nextInt()
	if err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("tree size %d: %w", n, ErrBadFormat)
	}
	nodeW, err := tr.floats(n)
	if err != nil {
		return nil, err
	}
	edges, err := readEdges(tr, n-1)
	if err != nil {
		return nil, err
	}
	return NewTree(nodeW, edges)
}

func readGraph(tr *tokenReader) (*Graph, error) {
	n, err := tr.nextInt()
	if err != nil {
		return nil, err
	}
	m, err := tr.nextInt()
	if err != nil {
		return nil, err
	}
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("graph size %d,%d: %w", n, m, ErrBadFormat)
	}
	nodeW, err := tr.floats(n)
	if err != nil {
		return nil, err
	}
	edges, err := readEdges(tr, m)
	if err != nil {
		return nil, err
	}
	return NewGraph(nodeW, edges)
}

func readEdges(tr *tokenReader, m int) ([]Edge, error) {
	edges := make([]Edge, m)
	for i := range edges {
		u, err := tr.nextInt()
		if err != nil {
			return nil, err
		}
		v, err := tr.nextInt()
		if err != nil {
			return nil, err
		}
		w, err := tr.nextFloat()
		if err != nil {
			return nil, err
		}
		edges[i] = Edge{U: u, V: v, W: w}
	}
	return edges, nil
}

// WritePath writes p in the text format.
func WritePath(w io.Writer, p *Path) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "path %d\n", p.Len())
	writeFloats(bw, p.NodeW)
	writeFloats(bw, p.EdgeW)
	return bw.Flush()
}

// WriteTree writes t in the text format.
func WriteTree(w io.Writer, t *Tree) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "tree %d\n", t.Len())
	writeFloats(bw, t.NodeW)
	for _, e := range t.Edges {
		fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V, formatWeight(e.W))
	}
	return bw.Flush()
}

// WriteGraph writes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %d %d\n", g.Len(), len(g.Edges))
	writeFloats(bw, g.NodeW)
	for _, e := range g.Edges {
		fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V, formatWeight(e.W))
	}
	return bw.Flush()
}

func writeFloats(w io.Writer, ws []float64) {
	for i, v := range ws {
		if i > 0 {
			io.WriteString(w, " ")
		}
		io.WriteString(w, formatWeight(v))
	}
	io.WriteString(w, "\n")
}

func formatWeight(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
