package graph

import (
	"errors"
	"reflect"
	"testing"
)

func mustTree(t *testing.T, nodeW []float64, edges []Edge) *Tree {
	t.Helper()
	tr, err := NewTree(nodeW, edges)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tr
}

// star5 is a star with centre 0 and four leaves.
func star5(t *testing.T) *Tree {
	return mustTree(t, []float64{1, 2, 3, 4, 5}, []Edge{
		{0, 1, 10}, {0, 2, 20}, {0, 3, 30}, {0, 4, 40},
	})
}

func TestNewTreeValidation(t *testing.T) {
	tests := []struct {
		name    string
		nodeW   []float64
		edges   []Edge
		wantErr error
	}{
		{"single node", []float64{1}, nil, nil},
		{"two nodes", []float64{1, 2}, []Edge{{0, 1, 1}}, nil},
		{"empty", nil, nil, ErrEmptyGraph},
		{"too few edges", []float64{1, 2, 3}, []Edge{{0, 1, 1}}, ErrBadShape},
		{"too many edges", []float64{1, 2}, []Edge{{0, 1, 1}, {1, 0, 1}}, ErrBadShape},
		{"cycle", []float64{1, 2, 3}, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}}, ErrBadShape},
		{"self loop", []float64{1, 2}, []Edge{{0, 0, 1}}, ErrNotTree},
		{"disconnected duplicate edge", []float64{1, 2, 3}, []Edge{{0, 1, 1}, {1, 0, 2}}, ErrNotTree},
		{"endpoint out of range", []float64{1, 2}, []Edge{{0, 2, 1}}, ErrBadShape},
		{"negative edge", []float64{1, 2}, []Edge{{0, 1, -1}}, ErrBadWeight},
		{"negative node", []float64{-1, 2}, []Edge{{0, 1, 1}}, ErrBadWeight},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewTree(tt.nodeW, tt.edges)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("NewTree() error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestTreeAdjacency(t *testing.T) {
	tr := mustTree(t, []float64{1, 1, 1, 1}, []Edge{{0, 1, 1}, {1, 2, 2}, {1, 3, 3}})
	adj := tr.Adjacency()
	if len(adj[1]) != 3 {
		t.Fatalf("deg(1) = %d, want 3", len(adj[1]))
	}
	want0 := []Arc{{To: 1, Edge: 0}}
	if !reflect.DeepEqual(adj[0], want0) {
		t.Errorf("adj[0] = %v, want %v", adj[0], want0)
	}
}

func TestTreeComponents(t *testing.T) {
	// A small caterpillar: 0-1-2 spine, leaves 3 (on 0) and 4 (on 2).
	tr := mustTree(t, []float64{1, 2, 4, 8, 16}, []Edge{
		{0, 1, 1}, {1, 2, 2}, {0, 3, 3}, {2, 4, 4},
	})
	tests := []struct {
		name  string
		cut   []int
		comps [][]int
		ws    []float64
	}{
		{"no cut", nil, [][]int{{0, 1, 2, 3, 4}}, []float64{31}},
		{"cut spine", []int{1}, [][]int{{0, 1, 3}, {2, 4}}, []float64{11, 20}},
		{"cut leaves", []int{2, 3}, [][]int{{0, 1, 2}, {3}, {4}}, []float64{7, 8, 16}},
		{"cut all", []int{0, 1, 2, 3}, [][]int{{0}, {1}, {2}, {3}, {4}}, []float64{1, 2, 4, 8, 16}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			comps, err := tr.Components(tt.cut)
			if err != nil {
				t.Fatalf("Components: %v", err)
			}
			if !reflect.DeepEqual(comps, tt.comps) {
				t.Errorf("Components = %v, want %v", comps, tt.comps)
			}
			// ComponentWeights orders by discovery, so compare as multisets
			// via sums per component from Components.
			ws, err := tr.ComponentWeights(tt.cut)
			if err != nil {
				t.Fatalf("ComponentWeights: %v", err)
			}
			if SumWeights(ws) != tr.TotalNodeWeight() {
				t.Errorf("ComponentWeights sum = %v, want %v", SumWeights(ws), tr.TotalNodeWeight())
			}
			if len(ws) != len(tt.ws) {
				t.Errorf("len(ComponentWeights) = %d, want %d", len(ws), len(tt.ws))
			}
		})
	}
}

func TestTreeCutWeightAndBottleneck(t *testing.T) {
	tr := star5(t)
	w, err := tr.CutWeight([]int{0, 3})
	if err != nil {
		t.Fatalf("CutWeight: %v", err)
	}
	if w != 50 {
		t.Errorf("CutWeight = %v, want 50", w)
	}
	m, err := tr.MaxCutEdgeWeight([]int{0, 3})
	if err != nil {
		t.Fatalf("MaxCutEdgeWeight: %v", err)
	}
	if m != 40 {
		t.Errorf("MaxCutEdgeWeight = %v, want 40", m)
	}
	if _, err := tr.CutWeight([]int{7}); !errors.Is(err, ErrBadCut) {
		t.Errorf("CutWeight(out of range) error = %v, want ErrBadCut", err)
	}
}

func TestTreeContract(t *testing.T) {
	// Path 0-1-2-3 as tree; cut the middle edge.
	tr := mustTree(t, []float64{1, 2, 4, 8}, []Edge{{0, 1, 10}, {1, 2, 20}, {2, 3, 30}})
	c, err := tr.Contract([]int{1})
	if err != nil {
		t.Fatalf("Contract: %v", err)
	}
	if c.Tree.Len() != 2 {
		t.Fatalf("contracted Len = %d, want 2", c.Tree.Len())
	}
	gotW := append([]float64(nil), c.Tree.NodeW...)
	if SumWeights(gotW) != 15 {
		t.Errorf("contracted weights %v sum to %v, want 15", gotW, SumWeights(gotW))
	}
	if len(c.Tree.Edges) != 1 || c.Tree.Edges[0].W != 20 {
		t.Errorf("contracted edges = %v, want single edge of weight 20", c.Tree.Edges)
	}
	if !reflect.DeepEqual(c.CutEdges, []int{1}) {
		t.Errorf("CutEdges = %v, want [1]", c.CutEdges)
	}
	if len(c.Members) != 2 {
		t.Fatalf("Members = %v, want 2 components", c.Members)
	}
}

func TestTreeContractEmptyCut(t *testing.T) {
	tr := star5(t)
	c, err := tr.Contract(nil)
	if err != nil {
		t.Fatalf("Contract(nil): %v", err)
	}
	if c.Tree.Len() != 1 {
		t.Errorf("contract with empty cut should give single super-node, got %d", c.Tree.Len())
	}
	if c.Tree.NodeW[0] != tr.TotalNodeWeight() {
		t.Errorf("super-node weight = %v, want %v", c.Tree.NodeW[0], tr.TotalNodeWeight())
	}
}

func TestTreeIsStar(t *testing.T) {
	tests := []struct {
		name string
		tr   *Tree
		want bool
	}{
		{"star5", star5(t), true},
		{"single", mustTree(t, []float64{1}, nil), true},
		{"pair", mustTree(t, []float64{1, 2}, []Edge{{0, 1, 1}}), true},
		{"path4", mustTree(t, []float64{1, 1, 1, 1}, []Edge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}), false},
		{"path3 is star", mustTree(t, []float64{1, 1, 1}, []Edge{{0, 1, 1}, {1, 2, 1}}), true},
	}
	for _, tt := range tests {
		if got := tt.tr.IsStar(); got != tt.want {
			t.Errorf("%s: IsStar() = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestTreeDegrees(t *testing.T) {
	tr := star5(t)
	want := []int{4, 1, 1, 1, 1}
	if got := tr.Degrees(); !reflect.DeepEqual(got, want) {
		t.Errorf("Degrees() = %v, want %v", got, want)
	}
}

func TestPathTreeComponentAgreement(t *testing.T) {
	// Components computed via the Path API and via the Tree API must agree
	// in weight for the same cut.
	p := mustPath(t, []float64{3, 1, 4, 1, 5, 9, 2, 6}, []float64{1, 2, 3, 4, 5, 6, 7})
	tr := p.AsTree()
	for _, cut := range [][]int{nil, {0}, {3}, {6}, {0, 3, 6}, {1, 2, 3, 4}} {
		pw, err := p.ComponentWeights(cut)
		if err != nil {
			t.Fatalf("path ComponentWeights(%v): %v", cut, err)
		}
		tw, err := tr.ComponentWeights(cut)
		if err != nil {
			t.Fatalf("tree ComponentWeights(%v): %v", cut, err)
		}
		if !reflect.DeepEqual(pw, tw) {
			t.Errorf("cut %v: path weights %v != tree weights %v", cut, pw, tw)
		}
	}
}

func TestTreeSmallAccessors(t *testing.T) {
	tr := star5(t)
	if tr.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", tr.NumEdges())
	}
	if tr.MaxNodeWeight() != 5 {
		t.Errorf("MaxNodeWeight = %v, want 5", tr.MaxNodeWeight())
	}
	c := tr.Clone()
	c.NodeW[0] = 99
	c.Edges[0].W = 99
	if tr.NodeW[0] == 99 || tr.Edges[0].W == 99 {
		t.Error("Clone shares storage")
	}
	m, err := tr.MaxComponentWeight([]int{0})
	if err != nil {
		t.Fatalf("MaxComponentWeight: %v", err)
	}
	if m != 13 { // {0,2,3,4} = 1+3+4+5
		t.Errorf("MaxComponentWeight = %v, want 13", m)
	}
}
