package graph

// Columnar adjacency for tree task graphs. The pointer-free CSR (compressed
// sparse row) layout replaces the [][]Arc adjacency of Adjacency() on the
// solver hot paths: three flat int32 columns carved out of a single backing
// allocation, so building it costs O(1) allocations (zero when a pooled
// buffer is recycled) instead of one slice per vertex, and traversals walk
// contiguous memory.

// CSR is the columnar adjacency view of a tree: the arcs incident to vertex
// v are the index range Off[v]..Off[v+1] of the To/EIdx columns.
type CSR struct {
	// Off[v] is the first arc of vertex v; Off has length n+1.
	Off []int32
	// To[a] is the neighbouring vertex of arc a.
	To []int32
	// EIdx[a] is the index into Tree.Edges of the edge behind arc a.
	EIdx []int32
}

// Degree returns the number of arcs incident to v.
func (c *CSR) Degree(v int) int { return int(c.Off[v+1] - c.Off[v]) }

// Arcs returns the arc index range [lo, hi) of vertex v.
func (c *CSR) Arcs(v int) (lo, hi int32) { return c.Off[v], c.Off[v+1] }

// BuildCSR builds the columnar adjacency of t, reusing buf as backing
// storage when it is large enough. It returns the view and the (possibly
// grown) backing buffer, which the caller can pool for the next build. The
// tree must be structurally valid (endpoints in range); BuildCSR performs no
// validation of its own.
func (t *Tree) BuildCSR(buf []int32) (CSR, []int32) {
	n := len(t.NodeW)
	m := len(t.Edges)
	need := (n + 1) + 2*m + 2*m
	if cap(buf) < need {
		buf = make([]int32, need)
	}
	buf = buf[:need]
	off := buf[: n+1 : n+1]
	to := buf[n+1 : n+1+2*m : n+1+2*m]
	eidx := buf[n+1+2*m:]
	for i := range off {
		off[i] = 0
	}
	// Counting sort over edge endpoints: degree histogram, exclusive prefix
	// sums, then scatter both arc directions.
	for _, e := range t.Edges {
		off[e.U+1]++
		off[e.V+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	// next[v] tracks the write cursor per vertex; reuse the off column by
	// shifting as we scatter (off[v] is restored to the range start because
	// each vertex receives exactly its degree).
	for i, e := range t.Edges {
		to[off[e.U]] = int32(e.V)
		eidx[off[e.U]] = int32(i)
		off[e.U]++
		to[off[e.V]] = int32(e.U)
		eidx[off[e.V]] = int32(i)
		off[e.V]++
	}
	// Undo the cursor shift: off[v] now holds the end of v's range, which is
	// the start of v+1's. Walk backwards to restore starts.
	for v := n; v > 0; v-- {
		off[v] = off[v-1]
	}
	off[0] = 0
	return CSR{Off: off, To: to, EIdx: eidx}, buf
}
