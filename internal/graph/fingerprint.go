package graph

import (
	"fmt"
	"math"
)

// Stable 64-bit fingerprints over task graphs, used as cache keys by the
// serving layer (internal/server) and printed by cmd/partition -stats for
// debugging. The fingerprint is FNV-1a over a canonical byte encoding:
//
//	kind tag | vertex count | vertex weights | edge count | edges
//
// with float64 weights hashed by their IEEE-754 bit patterns (negative zero
// normalized to zero) and edge endpoints in declaration order. Edge order is
// significant — cuts index into the edge slice, so two trees with the same
// shape but re-ordered edge lists are different inputs and hash differently.
// The encoding is independent of platform word size and map iteration order,
// so fingerprints are stable across processes and releases.

// FNV-1a 64-bit parameters (FNV is in the stdlib only over bytes via
// hash/fnv; hashing uint64 words directly avoids per-solve buffer churn).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Kind tags keep a path from colliding with its single-chain tree rendering.
const (
	fpTagPath  uint64 = 0x70617468 // "path"
	fpTagTree  uint64 = 0x74726565 // "tree"
	fpTagGraph uint64 = 0x67726170 // "grap"
)

// fnvMix folds one 64-bit word into the hash, byte by byte (little-endian),
// matching the canonical FNV-1a byte stream.
func fnvMix(h, word uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= word & 0xff
		h *= fnvPrime64
		word >>= 8
	}
	return h
}

// fnvMixWeight canonicalizes w before mixing: -0.0 hashes as +0.0 so the two
// representations of zero weight (both valid) are one cache key.
func fnvMixWeight(h uint64, w float64) uint64 {
	if w == 0 {
		w = 0
	}
	return fnvMix(h, math.Float64bits(w))
}

// Hasher computes a fingerprint incrementally over the same canonical stream
// as FingerprintPath/Tree/Graph, so a decoder can fold weights and counts in
// as it reads them — one pass over the wire bytes instead of a separate walk
// over the built graph. Feeding a Hasher the exact sequence the batch
// functions hash yields the identical value; the codec package's tests pin
// that equivalence.
type Hasher struct{ h uint64 }

// NewPathHasher starts a path fingerprint. Mix: Word(node count), node
// weights via Weight, Word(edge count), edge weights via Weight.
func NewPathHasher() Hasher { return Hasher{h: fnvMix(fnvOffset64, fpTagPath)} }

// NewTreeHasher starts a tree fingerprint. Mix: Word(node count), node
// weights via Weight, Word(edge count), then Word(u), Word(v), Weight(w) per
// edge in declaration order.
func NewTreeHasher() Hasher { return Hasher{h: fnvMix(fnvOffset64, fpTagTree)} }

// NewGraphHasher starts a general-graph fingerprint; the stream shape is the
// tree's.
func NewGraphHasher() Hasher { return Hasher{h: fnvMix(fnvOffset64, fpTagGraph)} }

// Word folds one 64-bit word (a count or an edge endpoint) into the hash.
func (fh *Hasher) Word(w uint64) { fh.h = fnvMix(fh.h, w) }

// Weight folds one weight into the hash with the canonical -0.0 rule.
func (fh *Hasher) Weight(w float64) { fh.h = fnvMixWeight(fh.h, w) }

// Sum returns the fingerprint accumulated so far.
func (fh *Hasher) Sum() uint64 { return fh.h }

// FingerprintPath returns the stable fingerprint of a linear task graph.
func FingerprintPath(p *Path) uint64 {
	h := fnvMix(fnvOffset64, fpTagPath)
	h = fnvMix(h, uint64(len(p.NodeW)))
	for _, w := range p.NodeW {
		h = fnvMixWeight(h, w)
	}
	h = fnvMix(h, uint64(len(p.EdgeW)))
	for _, w := range p.EdgeW {
		h = fnvMixWeight(h, w)
	}
	return h
}

// fingerprintEdges hashes an edge list: count, then (u, v, w) per edge in
// declaration order.
func fingerprintEdges(h uint64, edges []Edge) uint64 {
	h = fnvMix(h, uint64(len(edges)))
	for _, e := range edges {
		h = fnvMix(h, uint64(e.U))
		h = fnvMix(h, uint64(e.V))
		h = fnvMixWeight(h, e.W)
	}
	return h
}

// FingerprintTree returns the stable fingerprint of a tree task graph.
func FingerprintTree(t *Tree) uint64 {
	h := fnvMix(fnvOffset64, fpTagTree)
	h = fnvMix(h, uint64(len(t.NodeW)))
	for _, w := range t.NodeW {
		h = fnvMixWeight(h, w)
	}
	return fingerprintEdges(h, t.Edges)
}

// FingerprintGraph returns the stable fingerprint of a general task graph.
func FingerprintGraph(g *Graph) uint64 {
	h := fnvMix(fnvOffset64, fpTagGraph)
	h = fnvMix(h, uint64(len(g.NodeW)))
	for _, w := range g.NodeW {
		h = fnvMixWeight(h, w)
	}
	return fingerprintEdges(h, g.Edges)
}

// Fingerprint dispatches over the graph types accepted by the codecs:
// *Path, *Tree, or *Graph.
func Fingerprint(g any) (uint64, error) {
	switch v := g.(type) {
	case *Path:
		return FingerprintPath(v), nil
	case *Tree:
		return FingerprintTree(v), nil
	case *Graph:
		return FingerprintGraph(v), nil
	default:
		return 0, fmt.Errorf("cannot fingerprint %T: %w", g, ErrBadShape)
	}
}
