package graph

import (
	"fmt"
	"math"
	"sort"
)

// Tree is a tree task graph: n vertices and exactly n−1 undirected weighted
// edges forming a spanning tree. This models the divide-and-conquer workloads
// of §1.
type Tree struct {
	// NodeW[i] is the processing requirement of task i.
	NodeW []float64
	// Edges are the n−1 data dependencies. Edge order is significant: cuts
	// index into this slice.
	Edges []Edge
}

// Arc is one direction of an undirected edge in an adjacency list.
type Arc struct {
	// To is the neighbouring vertex.
	To int
	// Edge is the index into Tree.Edges of the traversed edge.
	Edge int
}

// NewTree constructs and validates a tree task graph. Slices are copied.
func NewTree(nodeW []float64, edges []Edge) (*Tree, error) {
	return NewTreeOwned(
		append([]float64(nil), nodeW...),
		append([]Edge(nil), edges...),
	)
}

// NewTreeOwned constructs and validates a tree task graph that takes
// ownership of the argument slices without copying — the zero-copy
// constructor the binary codec decodes into. The caller must not reuse the
// slices afterwards.
func NewTreeOwned(nodeW []float64, edges []Edge) (*Tree, error) {
	t := &Tree{NodeW: nodeW, Edges: edges}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of tasks (vertices).
func (t *Tree) Len() int { return len(t.NodeW) }

// NumEdges returns the number of edges.
func (t *Tree) NumEdges() int { return len(t.Edges) }

// Validate checks that the edge list forms a spanning tree over the vertices
// and that all weights are valid.
func (t *Tree) Validate() error {
	n := len(t.NodeW)
	if n == 0 {
		return ErrEmptyGraph
	}
	if len(t.Edges) != n-1 {
		return fmt.Errorf("tree with %d nodes has %d edges, want %d: %w",
			n, len(t.Edges), n-1, ErrBadShape)
	}
	if err := checkWeights("NodeW", t.NodeW); err != nil {
		return err
	}
	uf := newUnionFind(n)
	for i, e := range t.Edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return fmt.Errorf("edge %d endpoints (%d,%d) out of range [0,%d): %w",
				i, e.U, e.V, n, ErrBadShape)
		}
		if e.U == e.V {
			return fmt.Errorf("edge %d is a self-loop at %d: %w", i, e.U, ErrNotTree)
		}
		if !validWeight(e.W) {
			return fmt.Errorf("edge %d weight %v: %w", i, e.W, ErrBadWeight)
		}
		if !uf.union(e.U, e.V) {
			return fmt.Errorf("edge %d (%d,%d) closes a cycle: %w", i, e.U, e.V, ErrNotTree)
		}
	}
	return nil
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	return &Tree{
		NodeW: append([]float64(nil), t.NodeW...),
		Edges: append([]Edge(nil), t.Edges...),
	}
}

// TotalNodeWeight returns the sum of all task weights.
func (t *Tree) TotalNodeWeight() float64 { return SumWeights(t.NodeW) }

// MaxNodeWeight returns the largest task weight.
func (t *Tree) MaxNodeWeight() float64 { return MaxWeight(t.NodeW) }

// Adjacency returns the adjacency lists of the tree. adj[v] holds one Arc per
// incident edge of v.
func (t *Tree) Adjacency() [][]Arc {
	adj := make([][]Arc, len(t.NodeW))
	deg := make([]int, len(t.NodeW))
	for _, e := range t.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v := range adj {
		adj[v] = make([]Arc, 0, deg[v])
	}
	for i, e := range t.Edges {
		adj[e.U] = append(adj[e.U], Arc{To: e.V, Edge: i})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, Edge: i})
	}
	return adj
}

// componentLabels returns, for each vertex, the index of its component in
// T − cut, along with the number of components. The cut must be valid.
func (t *Tree) componentLabels(cut []int) ([]int, int, error) {
	if err := checkCut(cut, len(t.Edges)); err != nil {
		return nil, 0, err
	}
	inCut := make([]bool, len(t.Edges))
	for _, e := range cut {
		inCut[e] = true
	}
	uf := newUnionFind(len(t.NodeW))
	for i, e := range t.Edges {
		if !inCut[i] {
			uf.union(e.U, e.V)
		}
	}
	label := make([]int, len(t.NodeW))
	next := 0
	rootLabel := make(map[int]int, len(cut)+1)
	for v := range label {
		r := uf.find(v)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			next++
			rootLabel[r] = l
		}
		label[v] = l
	}
	return label, next, nil
}

// Components returns the vertex sets of the connected components of T − cut.
// Vertices within each component and the components themselves are ordered by
// smallest contained vertex.
func (t *Tree) Components(cut []int) ([][]int, error) {
	label, k, err := t.componentLabels(cut)
	if err != nil {
		return nil, err
	}
	comps := make([][]int, k)
	for v, l := range label {
		comps[l] = append(comps[l], v)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps, nil
}

// ComponentWeights returns the total task weight of each component of
// T − cut.
func (t *Tree) ComponentWeights(cut []int) ([]float64, error) {
	label, k, err := t.componentLabels(cut)
	if err != nil {
		return nil, err
	}
	ws := make([]float64, k)
	for v, l := range label {
		ws[l] += t.NodeW[v]
	}
	return ws, nil
}

// ComponentMaxNodeWeights returns, per component of T − cut, the heaviest
// single node weight, ordered like ComponentWeights. It is the per-processor
// cost vector of the sum-of-max criterion.
func (t *Tree) ComponentMaxNodeWeights(cut []int) ([]float64, error) {
	label, k, err := t.componentLabels(cut)
	if err != nil {
		return nil, err
	}
	ms := make([]float64, k)
	for i := range ms {
		ms[i] = math.Inf(-1)
	}
	for v, l := range label {
		if t.NodeW[v] > ms[l] {
			ms[l] = t.NodeW[v]
		}
	}
	return ms, nil
}

// MaxComponentWeight returns the heaviest component weight of T − cut.
func (t *Tree) MaxComponentWeight(cut []int) (float64, error) {
	ws, err := t.ComponentWeights(cut)
	if err != nil {
		return 0, err
	}
	return MaxWeight(ws), nil
}

// CutWeight returns δ(cut), the total weight of the cut edges.
func (t *Tree) CutWeight(cut []int) (float64, error) {
	if err := checkCut(cut, len(t.Edges)); err != nil {
		return 0, err
	}
	var s float64
	for _, e := range cut {
		s += t.Edges[e].W
	}
	return s, nil
}

// MaxCutEdgeWeight returns the bottleneck of the cut: the largest weight of
// any cut edge, or 0 for an empty cut.
func (t *Tree) MaxCutEdgeWeight(cut []int) (float64, error) {
	if err := checkCut(cut, len(t.Edges)); err != nil {
		return 0, err
	}
	var m float64
	for _, e := range cut {
		if t.Edges[e].W > m {
			m = t.Edges[e].W
		}
	}
	return m, nil
}

// Contraction is the result of contracting the components of T − cut into
// super-nodes (§2.2): a new tree whose vertices are the components and whose
// edges are exactly the original cut edges.
type Contraction struct {
	// Tree is the contracted super-node tree. Tree.Edges[i] corresponds to
	// the original edge CutEdges[i].
	Tree *Tree
	// Members[s] lists the original vertices merged into super-node s.
	Members [][]int
	// CutEdges[i] is the original edge index behind contracted edge i.
	CutEdges []int
}

// Contract lumps each component of T − cut into a super-node whose weight is
// the component's total weight, producing the super-node tree used by the
// processor-minimization stage of the paper's pipeline (§2.2: "the resulting
// graph is still a tree").
func (t *Tree) Contract(cut []int) (*Contraction, error) {
	label, k, err := t.componentLabels(cut)
	if err != nil {
		return nil, err
	}
	nodeW := make([]float64, k)
	members := make([][]int, k)
	for v, l := range label {
		nodeW[l] += t.NodeW[v]
		members[l] = append(members[l], v)
	}
	edges := make([]Edge, 0, len(cut))
	cutEdges := make([]int, 0, len(cut))
	for _, e := range cut {
		orig := t.Edges[e]
		edges = append(edges, Edge{U: label[orig.U], V: label[orig.V], W: orig.W})
		cutEdges = append(cutEdges, e)
	}
	ct := &Tree{NodeW: nodeW, Edges: edges}
	if err := ct.Validate(); err != nil {
		return nil, fmt.Errorf("contract: %w", err)
	}
	return &Contraction{Tree: ct, Members: members, CutEdges: cutEdges}, nil
}

// IsStar reports whether the tree is a star: one centre vertex adjacent to
// all others. Trees with at most 2 vertices count as stars.
func (t *Tree) IsStar() bool {
	n := len(t.NodeW)
	if n <= 2 {
		return true
	}
	deg := make([]int, n)
	for _, e := range t.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	centres := 0
	for _, d := range deg {
		switch {
		case d == n-1:
			centres++
		case d != 1:
			return false
		}
	}
	return centres == 1
}

// Degrees returns the degree of every vertex.
func (t *Tree) Degrees() []int {
	deg := make([]int, len(t.NodeW))
	for _, e := range t.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	return deg
}
