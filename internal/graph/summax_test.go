package graph

import (
	"reflect"
	"testing"
)

func TestTreeComponentMaxNodeWeights(t *testing.T) {
	// Star: centre 0 (w=2) with leaves 1..3 (w=5,1,4).
	tr, err := NewTree(
		[]float64{2, 5, 1, 4},
		[]Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		cut  []int
		want []float64
	}{
		{name: "no cut", cut: nil, want: []float64{5}},
		{name: "sever heavy leaf", cut: []int{0}, want: []float64{4, 5}},
		{name: "sever all leaves", cut: []int{0, 1, 2}, want: []float64{2, 5, 1, 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tr.ComponentMaxNodeWeights(tt.cut)
			if err != nil {
				t.Fatalf("ComponentMaxNodeWeights: %v", err)
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("maxes = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := tr.ComponentMaxNodeWeights([]int{9}); err == nil {
		t.Error("out-of-range cut accepted")
	}
}

func TestPathComponentMaxNodeWeights(t *testing.T) {
	p := &Path{NodeW: []float64{3, 1, 4, 1, 5}, EdgeW: []float64{1, 1, 1, 1}}
	got, err := p.ComponentMaxNodeWeights([]int{1, 3})
	if err != nil {
		t.Fatalf("ComponentMaxNodeWeights: %v", err)
	}
	want := []float64{3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("maxes = %v, want %v", got, want)
	}
	// Must agree with the tree view on every split point.
	tr := p.AsTree()
	for c := 0; c < p.NumEdges(); c++ {
		pm, err := p.ComponentMaxNodeWeights([]int{c})
		if err != nil {
			t.Fatal(err)
		}
		tm, err := tr.ComponentMaxNodeWeights([]int{c})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pm, tm) {
			t.Errorf("cut %d: path %v != tree %v", c, pm, tm)
		}
	}
}
