// Package version carries the build identity stamped into the binaries.
// Version defaults to "dev" and is overridden at link time:
//
//	go build -ldflags "-X repro/internal/version.Version=v1.2.3" ./cmd/...
//
// Both binaries expose it via their -version flag, and partitiond publishes
// it as the partitiond_build_info metric.
package version

import "runtime"

// Version is the stamped release identifier, "dev" for unstamped builds.
var Version = "dev"

// GoVersion reports the toolchain the binary was built with.
func GoVersion() string { return runtime.Version() }
