package codec

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// equalGraphs compares two graphs by kind and element values, treating nil
// and empty slices as equal (the decoder materialises empty arrays where a
// constructor may have kept nil).
func equalGraphs(a, b any) bool {
	floats := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	edges := func(x, y []graph.Edge) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	switch av := a.(type) {
	case *graph.Path:
		bv, ok := b.(*graph.Path)
		return ok && floats(av.NodeW, bv.NodeW) && floats(av.EdgeW, bv.EdgeW)
	case *graph.Tree:
		bv, ok := b.(*graph.Tree)
		return ok && floats(av.NodeW, bv.NodeW) && edges(av.Edges, bv.Edges)
	case *graph.Graph:
		bv, ok := b.(*graph.Graph)
		return ok && floats(av.NodeW, bv.NodeW) && edges(av.Edges, bv.Edges)
	}
	return false
}

// fixtures returns one valid graph per kind plus edge-case shapes.
func fixtures(t *testing.T) map[string]any {
	t.Helper()
	p1, err := graph.NewPath([]float64{5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := graph.NewPath([]float64{1, 2.5, 0, 1e9}, []float64{3, 0, 0.125})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.NewTree([]float64{1, 2, 3, 4}, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 0}, {U: 1, V: 3, W: 2.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.NewGraph([]float64{1, 2, 3}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3}, {U: 0, V: 1, W: 4}, // parallel edge allowed
	})
	if err != nil {
		t.Fatal(err)
	}
	g0, err := graph.NewGraph([]float64{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]any{
		"path-single":    p1,
		"path":           p2,
		"tree":           tr,
		"graph":          g,
		"graph-no-edges": g0,
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for name, g := range fixtures(t) {
		t.Run(name, func(t *testing.T) {
			enc, err := Append(nil, g)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := len(enc), EncodedSize(g); got != want {
				t.Fatalf("encoded %d bytes, EncodedSize says %d", got, want)
			}
			if !Sniff(enc) {
				t.Fatal("Sniff rejects our own encoding")
			}
			dec, fp, rest, err := Decode(enc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d bytes left over", len(rest))
			}
			if !equalGraphs(dec, g) {
				t.Fatalf("decode(encode(g)) = %+v, want %+v", dec, g)
			}
			wantFP, err := graph.Fingerprint(g)
			if err != nil {
				t.Fatal(err)
			}
			if fp != wantFP {
				t.Fatalf("decode fingerprint %016x, graph.Fingerprint %016x", fp, wantFP)
			}
			// Re-encoding the decoded graph is byte-identical.
			enc2, err := Append(nil, dec)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("re-encoding is not byte-identical")
			}
		})
	}
}

func TestEncodeViaWriter(t *testing.T) {
	g := fixtures(t)["tree"]
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	dec, _, _, err := Decode(buf.Bytes(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec, g) {
		t.Fatal("writer round trip mismatch")
	}
}

func TestDecodeLeavesRest(t *testing.T) {
	fx := fixtures(t)
	enc, err := Append(nil, fx["path"])
	if err != nil {
		t.Fatal(err)
	}
	enc, err = Append(enc, fx["tree"])
	if err != nil {
		t.Fatal(err)
	}
	first, _, rest, err := Decode(enc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := first.(*graph.Path); !ok {
		t.Fatalf("first graph is %T, want *graph.Path", first)
	}
	second, _, rest, err := Decode(rest, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := second.(*graph.Tree); !ok {
		t.Fatalf("second graph is %T, want *graph.Tree", second)
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left after both graphs", len(rest))
	}
}

func TestDecodeMalformed(t *testing.T) {
	valid, err := Append(nil, mustPath(t, 16))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad-magic", []byte("XXXX\x01\x01rest"), ErrBadMagic},
		{"magic-only", []byte("PGB1"), ErrTruncated},
		{"bad-version", []byte("PGB1\x07\x01\x02\x01"), ErrBadVersion},
		{"bad-kind", []byte("PGB1\x01\x09\x02\x01"), ErrBadKind},
		{"no-counts", []byte("PGB1\x01\x01"), ErrTruncated},
		{"truncated-payload", valid[:len(valid)-3], ErrTruncated},
		{"header-only", valid[:8], ErrTruncated},
		{"path-bad-edge-count", []byte("PGB1\x01\x01\x04\x04"), ErrCorrupt}, // path n=4 must have m=3
		{"tree-zero-nodes", []byte("PGB1\x01\x02\x00\x00"), ErrCorrupt},
		{"graph-zero-nodes", []byte("PGB1\x01\x03\x00\x05"), ErrCorrupt},
		{"huge-count", append([]byte("PGB1\x01\x01"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01, 0x00), ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, _, err := Decode(tc.data, Options{})
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
		})
	}
}

func TestDecodeRejectsInvalidWeights(t *testing.T) {
	// Hand-build a 2-node path with a NaN edge weight: structural decode
	// succeeds, graph validation must reject it without panicking.
	data := []byte("PGB1\x01\x01\x02\x01")
	var le = func(f float64) []byte {
		b := make([]byte, 8)
		bits := math.Float64bits(f)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		return b
	}
	data = append(data, le(1)...)
	data = append(data, le(2)...)
	data = append(data, le(math.NaN())...)
	if _, _, _, err := Decode(data, Options{}); !errors.Is(err, graph.ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
	// Negative weight.
	data = data[:len(data)-8]
	data = append(data, le(-1)...)
	if _, _, _, err := Decode(data, Options{}); !errors.Is(err, graph.ErrBadWeight) {
		t.Fatalf("got %v, want ErrBadWeight", err)
	}
}

func TestDecodeRejectsNonTree(t *testing.T) {
	// A "tree" whose edge list closes a cycle must fail tree validation.
	g, err := graph.NewGraph([]float64{1, 2, 3}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := Append(nil, g)
	if err != nil {
		t.Fatal(err)
	}
	enc[5] = KindTree // rewrite kind: now it declares a valid 3-node tree shape
	if _, _, _, err := Decode(enc, Options{}); err != nil {
		t.Fatalf("valid tree shape should decode, got %v", err)
	}
	// Self-loop variant: build the struct directly (NewGraph would reject
	// it) so the bad structure reaches the tree validator via the wire.
	loopy := &graph.Graph{NodeW: []float64{1, 2, 3}, Edges: []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 2, W: 1}}}
	bad, err := Append(nil, loopy)
	if err != nil {
		t.Fatal(err)
	}
	bad[5] = KindTree
	if _, _, _, err := Decode(bad, Options{}); !errors.Is(err, graph.ErrNotTree) {
		t.Fatalf("got %v, want ErrNotTree", err)
	}
}

func TestMaxNodesCheckedBeforeAllocation(t *testing.T) {
	enc, err := Append(nil, mustPath(t, 1024))
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = Decode(enc, Options{MaxNodes: 512})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
	if _, _, _, err := Decode(enc, Options{MaxNodes: 1024}); err != nil {
		t.Fatalf("limit == size should pass, got %v", err)
	}
	// A declared count far beyond the actual payload is rejected as
	// truncated before any allocation, even with no MaxNodes set.
	huge := appendHeader(nil, KindPath, 1<<30, 1<<30-1)
	if _, _, _, err := Decode(huge, Options{}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

func mustPath(t testing.TB, n int) *graph.Path {
	t.Helper()
	nodeW := make([]float64, n)
	edgeW := make([]float64, n-1)
	for i := range nodeW {
		nodeW[i] = float64(i%97 + 1)
	}
	for i := range edgeW {
		edgeW[i] = float64(i%31 + 1)
	}
	p, err := graph.NewPath(nodeW, edgeW)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolRoundTrip(t *testing.T) {
	pool := &Pool{}
	enc, err := Append(nil, mustPath(t, 100))
	if err != nil {
		t.Fatal(err)
	}
	g1, fp1, _, err := Decode(enc, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), g1.(*graph.Path).NodeW...)
	pool.Release(g1)
	g2, fp2, _, err := Decode(enc, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Fatalf("fingerprints differ across pooled decodes: %016x vs %016x", fp1, fp2)
	}
	for i, w := range g2.(*graph.Path).NodeW {
		if w != want[i] {
			t.Fatalf("pooled decode corrupted NodeW[%d]: %v != %v", i, w, want[i])
		}
	}
	pool.Release(g2)
	// A nil pool is the no-op pool.
	var nilPool *Pool
	g3, _, _, err := Decode(enc, Options{Pool: nilPool})
	if err != nil {
		t.Fatal(err)
	}
	nilPool.Release(g3)
}

// TestBinaryDecodeAllocBudget pins the allocation budget of the pooled
// binary decode path: after warm-up, decoding a 4096-node path must stay
// within a handful of allocations total — the "near-zero per-element
// allocation" claim, enforced. CI runs this as the wire-format smoke.
func TestBinaryDecodeAllocBudget(t *testing.T) {
	pool := &Pool{}
	enc, err := Append(nil, mustPath(t, 4096))
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool's size classes.
	g, _, _, err := Decode(enc, Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(g)
	const budget = 8
	avg := testing.AllocsPerRun(100, func() {
		g, _, _, err := Decode(enc, Options{Pool: pool})
		if err != nil {
			t.Fatal(err)
		}
		pool.Release(g)
	})
	if avg > budget {
		t.Fatalf("pooled binary decode of a 4096-node path allocates %.1f/op, budget %d", avg, budget)
	}
}

func TestEncodeRejectsOverflowingEndpoints(t *testing.T) {
	g := &graph.Graph{NodeW: []float64{1, 2}, Edges: []graph.Edge{{U: 0, V: int(math.MaxUint32) + 1, W: 1}}}
	if _, err := Append(nil, g); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if _, err := Append(nil, struct{}{}); err == nil {
		t.Fatal("Append accepted an unsupported type")
	}
}
