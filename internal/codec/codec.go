// Package codec implements the compact binary wire format for task graphs —
// the zero-copy alternative to the JSON envelope that partitiond negotiates
// via Content-Type (see internal/server). The JSON decode of a large path
// dominates the whole uncached solve; this format decodes with a handful of
// allocations (zero per element) and computes the graph's stable fingerprint
// in the same pass over the wire bytes.
//
// Layout (all integers little-endian):
//
//	offset 0   magic "PGB1" (4 bytes)
//	offset 4   version     (1 byte, currently 1)
//	offset 5   kind        (1 byte: 1 = path, 2 = tree, 3 = graph)
//	then       n           (uvarint node count)
//	then       m           (uvarint edge count)
//	then       n × float64 node weights
//	path:      m × float64 edge weights                     (m = n−1)
//	tree/graph: m × (uint32 u, uint32 v, float64 w)          (tree: m = n−1)
//
// The counts are the length prefixes: together with the fixed-width element
// sizes they declare the exact payload length, so a decoder rejects
// truncated or oversized input before allocating any arrays. Weights travel
// as IEEE-754 bits; encode(decode(b)) is byte-identical and
// decode(encode(g)) compares equal for every valid graph.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// ContentType is the media type the serving layer negotiates this format
// under.
const ContentType = "application/x-partition-bin"

// Version is the current format version; decoders accept only this value.
const Version = 1

// Kind bytes of the graph kinds.
const (
	KindPath  byte = 1
	KindTree  byte = 2
	KindGraph byte = 3
)

// magic identifies the format: "Partition Graph Binary v1".
var magic = [4]byte{'P', 'G', 'B', '1'}

// headerLen is magic + version + kind.
const headerLen = 6

// Sentinel errors. All decoding failures wrap one of these; malformed input
// of any shape returns an error and never panics (FuzzCodec enforces this).
var (
	// ErrBadMagic is returned when the input does not start with the format
	// magic.
	ErrBadMagic = errors.New("codec: bad magic")
	// ErrBadVersion is returned for unsupported format versions.
	ErrBadVersion = errors.New("codec: unsupported version")
	// ErrBadKind is returned for unknown graph kind bytes.
	ErrBadKind = errors.New("codec: unknown graph kind")
	// ErrTruncated is returned when the input ends before the declared
	// payload.
	ErrTruncated = errors.New("codec: truncated input")
	// ErrTooLarge is returned when a declared count exceeds the decoder's
	// limit — checked before any array is allocated.
	ErrTooLarge = errors.New("codec: graph exceeds size limit")
	// ErrCorrupt is returned for structurally inconsistent declarations
	// (edge count vs kind, endpoint overflow).
	ErrCorrupt = errors.New("codec: corrupt input")
)

// Sniff reports whether b begins with the binary-format magic — the
// auto-detection hook for CLIs that accept both text and binary input.
func Sniff(b []byte) bool {
	return len(b) >= 4 && b[0] == magic[0] && b[1] == magic[1] && b[2] == magic[2] && b[3] == magic[3]
}

// EncodedSize returns the exact number of bytes Append will produce for g,
// or 0 for unsupported types.
func EncodedSize(g any) int {
	switch v := g.(type) {
	case *graph.Path:
		return headerLen + uvarintLen(uint64(len(v.NodeW))) + uvarintLen(uint64(len(v.EdgeW))) +
			8*len(v.NodeW) + 8*len(v.EdgeW)
	case *graph.Tree:
		return headerLen + uvarintLen(uint64(len(v.NodeW))) + uvarintLen(uint64(len(v.Edges))) +
			8*len(v.NodeW) + 16*len(v.Edges)
	case *graph.Graph:
		return headerLen + uvarintLen(uint64(len(v.NodeW))) + uvarintLen(uint64(len(v.Edges))) +
			8*len(v.NodeW) + 16*len(v.Edges)
	default:
		return 0
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// Append encodes g — a *graph.Path, *graph.Tree, or *graph.Graph — appending
// the bytes to dst and returning the extended slice.
func Append(dst []byte, g any) ([]byte, error) {
	switch v := g.(type) {
	case *graph.Path:
		dst = appendHeader(dst, KindPath, len(v.NodeW), len(v.EdgeW))
		dst = appendFloats(dst, v.NodeW)
		dst = appendFloats(dst, v.EdgeW)
		return dst, nil
	case *graph.Tree:
		return appendEdgeGraph(dst, KindTree, v.NodeW, v.Edges)
	case *graph.Graph:
		return appendEdgeGraph(dst, KindGraph, v.NodeW, v.Edges)
	default:
		return nil, fmt.Errorf("codec: cannot encode %T", g)
	}
}

func appendHeader(dst []byte, kind byte, n, m int) []byte {
	dst = append(dst, magic[:]...)
	dst = append(dst, Version, kind)
	dst = binary.AppendUvarint(dst, uint64(n))
	dst = binary.AppendUvarint(dst, uint64(m))
	return dst
}

func appendFloats(dst []byte, ws []float64) []byte {
	for _, w := range ws {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(w))
	}
	return dst
}

func appendEdgeGraph(dst []byte, kind byte, nodeW []float64, edges []graph.Edge) ([]byte, error) {
	for i, e := range edges {
		if e.U < 0 || e.V < 0 || uint64(e.U) > math.MaxUint32 || uint64(e.V) > math.MaxUint32 {
			return nil, fmt.Errorf("codec: edge %d endpoints (%d,%d) overflow uint32: %w", i, e.U, e.V, ErrCorrupt)
		}
	}
	dst = appendHeader(dst, kind, len(nodeW), len(edges))
	dst = appendFloats(dst, nodeW)
	for _, e := range edges {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.U))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.V))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.W))
	}
	return dst, nil
}

// Encode writes g's binary encoding to w.
func Encode(w io.Writer, g any) error {
	buf, err := Append(make([]byte, 0, EncodedSize(g)), g)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// Options tune a decode.
type Options struct {
	// MaxNodes rejects graphs declaring more vertices (ErrTooLarge) before
	// any allocation happens; 0 means unlimited.
	MaxNodes int
	// Pool, when non-nil, supplies the weight and edge arrays the graph is
	// decoded into. Pass the finished graph to Pool.Release to recycle them.
	Pool *Pool
}

// Decode decodes one graph from the front of data, returning the graph, its
// stable fingerprint (identical to graph.Fingerprint, computed during the
// same pass), and the bytes remaining after the graph. The returned graph is
// validated.
func Decode(data []byte, opt Options) (g any, fp uint64, rest []byte, err error) {
	if len(data) < headerLen {
		if !Sniff(data) && len(data) >= 4 {
			return nil, 0, data, ErrBadMagic
		}
		return nil, 0, data, ErrTruncated
	}
	if !Sniff(data) {
		return nil, 0, data, ErrBadMagic
	}
	if data[4] != Version {
		return nil, 0, data, fmt.Errorf("version %d: %w", data[4], ErrBadVersion)
	}
	kind := data[5]
	b := data[headerLen:]
	n64, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, data, ErrTruncated
	}
	b = b[sz:]
	m64, sz := binary.Uvarint(b)
	if sz <= 0 {
		return nil, 0, data, ErrTruncated
	}
	b = b[sz:]
	// Bounds before allocation: the declared counts must be plausible for
	// the input length and under the caller's node limit. maxInt32 caps the
	// counts so the byte-size arithmetic below cannot overflow.
	const maxInt32 = math.MaxInt32
	if n64 > maxInt32 || m64 > maxInt32 {
		return nil, 0, data, ErrTooLarge
	}
	n, m := int(n64), int(m64)
	if opt.MaxNodes > 0 && n > opt.MaxNodes {
		return nil, 0, data, fmt.Errorf("%d nodes > limit %d: %w", n, opt.MaxNodes, ErrTooLarge)
	}
	elemSize := 8 // path edges: one float64
	switch kind {
	case KindPath, KindTree:
		if n == 0 || m != n-1 {
			return nil, 0, data, fmt.Errorf("kind %d with %d nodes, %d edges: %w", kind, n, m, ErrCorrupt)
		}
	case KindGraph:
		if n == 0 {
			return nil, 0, data, fmt.Errorf("graph with 0 nodes: %w", ErrCorrupt)
		}
	default:
		return nil, 0, data, fmt.Errorf("kind %d: %w", kind, ErrBadKind)
	}
	if kind != KindPath {
		elemSize = 16 // (u, v, w)
	}
	need := 8*n + elemSize*m
	if len(b) < need {
		return nil, 0, data, fmt.Errorf("declared %d payload bytes, have %d: %w", need, len(b), ErrTruncated)
	}
	rest = b[need:]
	switch kind {
	case KindPath:
		h := graph.NewPathHasher()
		nodeW := decodeFloats(opt.Pool.getFloats(n), b, &h)
		edgeW := decodeFloats(opt.Pool.getFloats(m), b[8*n:], &h)
		p, err := graph.NewPathOwned(nodeW, edgeW)
		if err != nil {
			opt.Pool.putFloats(nodeW)
			opt.Pool.putFloats(edgeW)
			return nil, 0, data, err
		}
		return p, h.Sum(), rest, nil
	case KindTree:
		h := graph.NewTreeHasher()
		nodeW := decodeFloats(opt.Pool.getFloats(n), b, &h)
		edges := decodeEdges(opt.Pool.getEdges(m), b[8*n:], &h)
		t, err := graph.NewTreeOwned(nodeW, edges)
		if err != nil {
			opt.Pool.putFloats(nodeW)
			opt.Pool.putEdges(edges)
			return nil, 0, data, err
		}
		return t, h.Sum(), rest, nil
	default: // KindGraph
		h := graph.NewGraphHasher()
		nodeW := decodeFloats(opt.Pool.getFloats(n), b, &h)
		edges := decodeEdges(opt.Pool.getEdges(m), b[8*n:], &h)
		g, err := graph.NewGraphOwned(nodeW, edges)
		if err != nil {
			opt.Pool.putFloats(nodeW)
			opt.Pool.putEdges(edges)
			return nil, 0, data, err
		}
		return g, h.Sum(), rest, nil
	}
}

// decodeFloats fills out (len already set) from the front of b, folding the
// preceding count and each weight into the hasher.
func decodeFloats(out []float64, b []byte, h *graph.Hasher) []float64 {
	h.Word(uint64(len(out)))
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		h.Weight(out[i])
	}
	return out
}

// decodeEdges fills out from the front of b, folding the count and each
// (u, v, w) triple into the hasher.
func decodeEdges(out []graph.Edge, b []byte, h *graph.Hasher) []graph.Edge {
	h.Word(uint64(len(out)))
	for i := range out {
		u := binary.LittleEndian.Uint32(b[16*i:])
		v := binary.LittleEndian.Uint32(b[16*i+4:])
		w := math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
		out[i] = graph.Edge{U: int(u), V: int(v), W: w}
		h.Word(uint64(u))
		h.Word(uint64(v))
		h.Weight(w)
	}
	return out
}
