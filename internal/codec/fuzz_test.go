package codec

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// FuzzCodec drives Decode with arbitrary bytes: malformed input must return
// an error without panicking, and any input that decodes must survive an
// encode→decode round trip bit-for-bit (same graph, same fingerprint).
func FuzzCodec(f *testing.F) {
	seed := func(g any) {
		enc, err := Append(nil, g)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	p, _ := graph.NewPath([]float64{1, 2.5, 0, 7}, []float64{3, 0, 0.125})
	seed(p)
	tr, _ := graph.NewTree([]float64{1, 2, 3}, []graph.Edge{{U: 0, V: 1, W: 4}, {U: 1, V: 2, W: 5}})
	seed(tr)
	g, _ := graph.NewGraph([]float64{1, 2}, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2}})
	seed(g)
	f.Add([]byte("PGB1"))
	f.Add([]byte("PGB1\x01\x01\x00\x00"))
	f.Add([]byte("PGB1\x01\x02\xff\xff\xff\xff\x0f\x00"))
	f.Add([]byte("not the format at all"))

	pool := &Pool{}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, fp, rest, err := Decode(data, Options{MaxNodes: 1 << 16, Pool: pool})
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(data))
		}
		consumed := data[:len(data)-len(rest)]
		enc, err := Append(nil, g)
		if err != nil {
			t.Fatalf("re-encode of decoded graph failed: %v", err)
		}
		// Uvarint counts have a unique minimal encoding and the encoder
		// produces it, so re-encoding reproduces the consumed bytes exactly
		// unless the input used a padded varint. Compare semantically instead:
		// decode the re-encoding and require the same graph and fingerprint.
		g2, fp2, rest2, err := Decode(enc, Options{MaxNodes: 1 << 16})
		if err != nil {
			t.Fatalf("decode(encode(decode(x))) failed: %v", err)
		}
		if len(rest2) != 0 {
			t.Fatalf("re-decode left %d bytes", len(rest2))
		}
		if fp2 != fp {
			t.Fatalf("fingerprint changed across round trip: %016x != %016x", fp2, fp)
		}
		if !reflect.DeepEqual(g, g2) {
			t.Fatalf("graph changed across round trip:\n  first  %+v\n  second %+v", g, g2)
		}
		wantFP, err := graph.Fingerprint(g)
		if err != nil {
			t.Fatalf("decoded graph not fingerprintable: %v", err)
		}
		if fp != wantFP {
			t.Fatalf("streamed fingerprint %016x != graph.Fingerprint %016x", fp, wantFP)
		}
		if bytes.Equal(consumed, enc) {
			// Canonical input: fine, common case.
			_ = consumed
		}
		pool.Release(g)
	})
}
