package codec

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Pool recycles the weight and edge arrays binary decoding produces, in
// power-of-two size classes. A serving layer decodes one graph per request
// and drops it after the solve; recycling the arrays makes the steady-state
// decode allocate only the graph header struct. All methods are safe for
// concurrent use and safe on a nil *Pool (plain allocation, no recycling).
type Pool struct {
	floats [maxSizeClass]sync.Pool // class c holds *[]float64 with cap 1<<c
	edges  [maxSizeClass]sync.Pool // class c holds *[]graph.Edge with cap 1<<c

	// hits counts gets served from a recycled array, news counts gets that
	// had to allocate — the pool-effectiveness signal on /metrics.
	hits atomic.Uint64
	news atomic.Uint64

	// fhdr and ehdr hold spare slice-header boxes. Put needs a pointer to
	// hand sync.Pool; taking &s of a local header would heap-allocate one
	// per call, so instead headers cycle between these freelists and the
	// size-class pools and are only ever allocated when a freelist is dry.
	fhdr sync.Pool // spare *[]float64
	ehdr sync.Pool // spare *[]graph.Edge
}

// maxSizeClass bounds the pooled capacity at 2^(maxSizeClass-1) elements
// (128M) — beyond that, arrays are allocated and dropped normally.
const maxSizeClass = 28

// sizeClass returns the smallest class whose capacity holds n, or -1 when n
// is beyond pooling.
func sizeClass(n int) int {
	if n == 0 {
		return 0
	}
	c := bits.Len(uint(n - 1))
	if c >= maxSizeClass {
		return -1
	}
	return c
}

// getFloats returns a []float64 of length n, recycled when possible.
func (p *Pool) getFloats(n int) []float64 {
	c := sizeClass(n)
	if p == nil || c < 0 {
		return make([]float64, n)
	}
	if v, ok := p.floats[c].Get().(*[]float64); ok {
		s := (*v)[:n]
		*v = nil
		p.fhdr.Put(v)
		p.hits.Add(1)
		return s
	}
	p.news.Add(1)
	return make([]float64, n, 1<<c)
}

// putFloats recycles s for a future getFloats of its size class.
func (p *Pool) putFloats(s []float64) {
	if p == nil || s == nil {
		return
	}
	// Only exact power-of-two capacities re-enter the pool, so a class-c
	// entry always satisfies any request of that class.
	c := sizeClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		return
	}
	w, _ := p.fhdr.Get().(*[]float64)
	if w == nil {
		w = new([]float64)
	}
	*w = s[:0]
	p.floats[c].Put(w)
}

// getEdges returns a []graph.Edge of length n, recycled when possible.
func (p *Pool) getEdges(n int) []graph.Edge {
	c := sizeClass(n)
	if p == nil || c < 0 {
		return make([]graph.Edge, n)
	}
	if v, ok := p.edges[c].Get().(*[]graph.Edge); ok {
		s := (*v)[:n]
		*v = nil
		p.ehdr.Put(v)
		p.hits.Add(1)
		return s
	}
	p.news.Add(1)
	return make([]graph.Edge, n, 1<<c)
}

// putEdges recycles s for a future getEdges of its size class.
func (p *Pool) putEdges(s []graph.Edge) {
	if p == nil || s == nil {
		return
	}
	c := sizeClass(cap(s))
	if c < 0 || cap(s) != 1<<c {
		return
	}
	w, _ := p.ehdr.Get().(*[]graph.Edge)
	if w == nil {
		w = new([]graph.Edge)
	}
	*w = s[:0]
	p.edges[c].Put(w)
}

// PoolStats reports how often the pool served a get from a recycled array
// (Hits) versus a fresh allocation (News).
type PoolStats struct {
	Hits uint64
	News uint64
}

// Stats snapshots the pool's hit/allocation counters. Nil-safe.
func (p *Pool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Hits: p.hits.Load(), News: p.news.Load()}
}

// Release returns the arrays of a graph produced by Decode with this pool to
// the pool. The graph must not be used afterwards — the next decode will
// overwrite its arrays. Graphs not decoded from this pool are also accepted:
// their arrays simply join the pool if their capacities are poolable.
func (p *Pool) Release(g any) {
	if p == nil || g == nil {
		return
	}
	switch v := g.(type) {
	case *graph.Path:
		p.putFloats(v.NodeW)
		p.putFloats(v.EdgeW)
		v.NodeW, v.EdgeW = nil, nil
	case *graph.Tree:
		p.putFloats(v.NodeW)
		p.putEdges(v.Edges)
		v.NodeW, v.Edges = nil, nil
	case *graph.Graph:
		p.putFloats(v.NodeW)
		p.putEdges(v.Edges)
		v.NodeW, v.Edges = nil, nil
	}
}
