package linearize

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/workload"
)

// randomConnectedGraph builds a random tree plus extra random edges.
func randomConnectedGraph(r *workload.RNG, n, extra int) *graph.Graph {
	tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
	edges := append([]graph.Edge(nil), tr.Edges...)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: r.Uniform(1, 10)})
	}
	g, err := graph.NewGraph(tr.NodeW, edges)
	if err != nil {
		return nil
	}
	return g.MergeParallel()
}

// Property: BFS banding is exact — node weight preserved, no skipped edge
// weight, every vertex assigned — for arbitrary connected graphs and seeds.
func TestBFSBandsExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(80)
		g := randomConnectedGraph(r, n, r.Intn(2*n))
		if g == nil {
			return false
		}
		seed2 := r.Intn(n)
		b, err := BFSBands(g, seed2)
		if err != nil {
			return false
		}
		if math.Abs(b.Path.TotalNodeWeight()-g.TotalNodeWeight()) > 1e-9 {
			return false
		}
		q := b.Quality(g)
		if q.SkippedWeight != 0 {
			return false
		}
		total := q.InternalWeight + q.AdjacentWeight
		if math.Abs(total-g.TotalEdgeWeight()) > 1e-9 {
			return false
		}
		for _, band := range b.Band {
			if band < 0 || band >= b.Path.Len() {
				return false
			}
		}
		return b.Path.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: ProjectCut yields an original-graph cut whose crossing weight
// equals the super-graph cut weight (BFS bandings only).
func TestProjectCutWeightProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 4 + r.Intn(60)
		g := randomConnectedGraph(r, n, r.Intn(n))
		if g == nil {
			return false
		}
		b, err := BFSBands(g, 0)
		if err != nil {
			return false
		}
		if b.Path.NumEdges() == 0 {
			return true
		}
		cut := []int{r.Intn(b.Path.NumEdges())}
		projected, err := b.ProjectCut(g, cut)
		if err != nil {
			return false
		}
		want, err := b.Path.CutWeight(cut)
		if err != nil {
			return false
		}
		var got float64
		for _, e := range projected {
			got += g.Edges[e].W
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
