package linearize

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// ringGraph builds an n-cycle with the given node and edge weights.
func ringGraph(t *testing.T, nodeW, edgeW []float64) *graph.Graph {
	t.Helper()
	n := len(nodeW)
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{U: i, V: (i + 1) % n, W: edgeW[i]}
	}
	g, err := graph.NewGraph(nodeW, edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	return g
}

func TestBFSBandsOnRing(t *testing.T) {
	g := ringGraph(t, []float64{1, 2, 3, 4, 5, 6}, []float64{1, 1, 1, 1, 1, 1})
	b, err := BFSBands(g, 0)
	if err != nil {
		t.Fatalf("BFSBands: %v", err)
	}
	// BFS levels on a 6-ring from 0: {0}, {1,5}, {2,4}, {3} → 4 bands.
	if b.Path.Len() != 4 {
		t.Fatalf("bands = %d, want 4 (path %+v)", b.Path.Len(), b.Path)
	}
	if got := b.Path.TotalNodeWeight(); got != g.TotalNodeWeight() {
		t.Errorf("band weights sum %v, want %v", got, g.TotalNodeWeight())
	}
	q := b.Quality(g)
	if q.SkippedWeight != 0 {
		t.Errorf("BFS banding skipped weight %v, want 0", q.SkippedWeight)
	}
	if math.Abs(q.AdjacentWeight+q.InternalWeight-g.TotalEdgeWeight()) > 1e-9 {
		t.Errorf("quality weights %v+%v don't sum to %v", q.AdjacentWeight, q.InternalWeight, g.TotalEdgeWeight())
	}
}

func TestBFSBandsErrors(t *testing.T) {
	g := ringGraph(t, []float64{1, 1, 1}, []float64{1, 1, 1})
	if _, err := BFSBands(g, 7); !errors.Is(err, ErrBadSeed) {
		t.Errorf("bad seed: %v", err)
	}
	disc, _ := graph.NewGraph([]float64{1, 1, 1}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := BFSBands(disc, 0); !errors.Is(err, ErrDisconnected) {
		t.Errorf("disconnected: %v", err)
	}
	if _, err := DFSChunks(disc, 2); !errors.Is(err, ErrDisconnected) {
		t.Errorf("dfs disconnected: %v", err)
	}
}

func TestDFSChunksPreservesWeight(t *testing.T) {
	r := workload.NewRNG(11)
	tr := workload.RandomTree(r, 60, workload.UniformWeights(1, 10), workload.UniformWeights(1, 5))
	g, err := graph.NewGraph(tr.NodeW, tr.Edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	b, err := DFSChunks(g, 8)
	if err != nil {
		t.Fatalf("DFSChunks: %v", err)
	}
	if b.Path.Len() != 8 {
		t.Errorf("chunks = %d, want 8", b.Path.Len())
	}
	if math.Abs(b.Path.TotalNodeWeight()-g.TotalNodeWeight()) > 1e-9 {
		t.Errorf("node weight not preserved")
	}
	q := b.Quality(g)
	total := q.AdjacentWeight + q.InternalWeight + q.SkippedWeight
	if math.Abs(total-g.TotalEdgeWeight()) > 1e-9 {
		t.Errorf("quality total %v != %v", total, g.TotalEdgeWeight())
	}
}

func TestDFSChunksClamping(t *testing.T) {
	g := ringGraph(t, []float64{1, 1, 1}, []float64{1, 1, 1})
	b, err := DFSChunks(g, 100)
	if err != nil {
		t.Fatalf("DFSChunks: %v", err)
	}
	if b.Path.Len() != 3 {
		t.Errorf("chunks = %d, want clamp to 3", b.Path.Len())
	}
	b, err = DFSChunks(g, 0)
	if err != nil {
		t.Fatalf("DFSChunks(0): %v", err)
	}
	if b.Path.Len() != 1 {
		t.Errorf("chunks = %d, want 1", b.Path.Len())
	}
}

func TestProjectCutWeightMatches(t *testing.T) {
	r := workload.NewRNG(23)
	tr := workload.RandomTree(r, 40, workload.UniformWeights(1, 10), workload.UniformWeights(1, 20))
	g, err := graph.NewGraph(tr.NodeW, tr.Edges)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	b, err := BFSBands(g, 0)
	if err != nil {
		t.Fatalf("BFSBands: %v", err)
	}
	if b.Path.NumEdges() == 0 {
		t.Skip("degenerate banding")
	}
	pathCut := []int{b.Path.NumEdges() / 2}
	projected, err := b.ProjectCut(g, pathCut)
	if err != nil {
		t.Fatalf("ProjectCut: %v", err)
	}
	// For BFS bandings the projected cut weight equals the path cut weight.
	want, _ := b.Path.CutWeight(pathCut)
	var got float64
	for _, e := range projected {
		got += g.Edges[e].W
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("projected cut weight %v != path cut weight %v", got, want)
	}
}

func TestRingToPath(t *testing.T) {
	g := ringGraph(t, []float64{10, 20, 30, 40}, []float64{5, 6, 1, 8})
	p, order, ok := RingToPath(g)
	if !ok {
		t.Fatal("RingToPath failed on a ring")
	}
	if p.Len() != 4 {
		t.Fatalf("path len = %d, want 4", p.Len())
	}
	// The lightest edge (weight 1, between vertices 2 and 3) is cut, so the
	// path should start at 3 and end at 2.
	if order[0] != 3 || order[len(order)-1] != 2 {
		t.Errorf("order = %v, want walk from 3 to 2", order)
	}
	if p.TotalNodeWeight() != 100 {
		t.Errorf("node weight %v, want 100", p.TotalNodeWeight())
	}
	var sum float64
	for _, w := range p.EdgeW {
		sum += w
	}
	if sum != 19 { // 5+6+8, the uncut edges
		t.Errorf("edge weights sum %v, want 19", sum)
	}
}

func TestRingToPathRejectsNonRings(t *testing.T) {
	tree, _ := graph.NewGraph([]float64{1, 1, 1}, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}})
	if _, _, ok := RingToPath(tree); ok {
		t.Error("accepted a tree")
	}
	star, _ := graph.NewGraph([]float64{1, 1, 1, 1},
		[]graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}, {U: 1, V: 2, W: 1}})
	if _, _, ok := RingToPath(star); ok {
		t.Error("accepted a non-ring with n edges")
	}
	small := ringGraph(t, []float64{1, 1}, []float64{1, 1})
	_ = small // a 2-ring has parallel edges; NewGraph allows them but RingToPath must reject
	if _, _, ok := RingToPath(small); ok {
		t.Error("accepted a 2-ring")
	}
}
