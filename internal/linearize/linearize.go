// Package linearize approximates a general task graph by a linear
// super-graph, the §3 escape hatch for applying the paper's path algorithms
// to systems that are not exactly chains: "we may first approximate the
// original system by generating a super-graph, which is linear, from the
// process graph, then apply the algorithm to the super-graph."
//
// BFSBands groups vertices by breadth-first level. In an undirected graph
// every edge joins vertices whose levels differ by at most one, so the
// banded graph is *exactly* a path: intra-band edges become internal
// computation and adjacent-band edge weights sum into the path's edge
// weights. No communication weight is ever lost or misplaced.
//
// A cut of the super-graph path expands to a cut of the original graph
// (ProjectCut) whose crossing weight equals the path cut weight, so any
// feasibility or bandwidth guarantee obtained on the super-graph transfers
// to the original system — at the price of restricting candidate cuts to
// band boundaries (the approximation the paper accepts).
package linearize

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Sentinel errors.
var (
	// ErrDisconnected is returned when the input graph is not connected.
	ErrDisconnected = errors.New("linearize: graph is not connected")
	// ErrBadSeed is returned for an out-of-range BFS seed vertex.
	ErrBadSeed = errors.New("linearize: bad seed vertex")
)

// Banding is a linear super-graph together with its provenance.
type Banding struct {
	// Path is the super-graph: vertex i is band i.
	Path *graph.Path
	// Bands lists the original vertices of each band, in increasing order.
	Bands [][]int
	// Band[v] is the band of original vertex v.
	Band []int
	// InternalWeight is the total edge weight kept inside bands (serviced by
	// shared memory within one processor, costing nothing on the bus).
	InternalWeight float64
}

// BFSBands builds the banding by breadth-first levels from seed.
func BFSBands(g *graph.Graph, seed int) (*Banding, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.Len()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("seed %d out of [0,%d): %w", seed, n, ErrBadSeed)
	}
	adj := g.Adjacency()
	band := make([]int, n)
	for v := range band {
		band[v] = -1
	}
	queue := []int{seed}
	band[seed] = 0
	levels := 1
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, a := range adj[v] {
			if band[a.To] == -1 {
				band[a.To] = band[v] + 1
				if band[a.To]+1 > levels {
					levels = band[a.To] + 1
				}
				queue = append(queue, a.To)
			}
		}
	}
	for v, b := range band {
		if b == -1 {
			return nil, fmt.Errorf("vertex %d unreachable from seed %d: %w", v, seed, ErrDisconnected)
		}
	}
	return buildBanding(g, band, levels)
}

// DFSChunks builds a banding by cutting the depth-first visit order into
// the given number of equal-size chunks. Unlike BFS banding, DFS chunking
// can place an edge between non-adjacent chunks; such edge weight is folded
// into the nearer-of-the-two path edges and reported in SkippedWeight by
// Quality. BFSBands is the principled construction; DFSChunks exists as the
// ablation contrast.
func DFSChunks(g *graph.Graph, chunks int) (*Banding, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if chunks < 1 {
		chunks = 1
	}
	n := g.Len()
	if chunks > n {
		chunks = n
	}
	adj := g.Adjacency()
	visited := make([]bool, n)
	order := make([]int, 0, n)
	stack := []int{0}
	visited[0] = true
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, v)
		for i := len(adj[v]) - 1; i >= 0; i-- {
			to := adj[v][i].To
			if !visited[to] {
				visited[to] = true
				stack = append(stack, to)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("visited %d of %d vertices: %w", len(order), n, ErrDisconnected)
	}
	band := make([]int, n)
	for pos, v := range order {
		b := pos * chunks / n
		band[v] = b
	}
	return buildBanding(g, band, chunks)
}

func buildBanding(g *graph.Graph, band []int, levels int) (*Banding, error) {
	nodeW := make([]float64, levels)
	bands := make([][]int, levels)
	for v, b := range band {
		nodeW[b] += g.NodeW[v]
		bands[b] = append(bands[b], v)
	}
	edgeW := make([]float64, levels-1)
	var internal float64
	for _, e := range g.Edges {
		bu, bv := band[e.U], band[e.V]
		if bu == bv {
			internal += e.W
			continue
		}
		if bu > bv {
			bu, bv = bv, bu
		}
		// Edges between non-adjacent bands (possible only for DFSChunks)
		// are charged to the edge after their lower band; Quality reports
		// the distortion.
		edgeW[bu] += e.W
	}
	p, err := graph.NewPath(nodeW, edgeW)
	if err != nil {
		return nil, err
	}
	return &Banding{Path: p, Bands: bands, Band: band, InternalWeight: internal}, nil
}

// Quality reports how faithfully the banding represents the original graph.
type Quality struct {
	// AdjacentWeight is edge weight between adjacent bands (represented
	// exactly).
	AdjacentWeight float64
	// InternalWeight is edge weight inside bands (costless, also exact).
	InternalWeight float64
	// SkippedWeight is edge weight between non-adjacent bands (misplaced by
	// the path approximation; 0 for BFS bandings).
	SkippedWeight float64
}

// Quality computes the banding quality against the original graph.
func (b *Banding) Quality(g *graph.Graph) Quality {
	var q Quality
	for _, e := range g.Edges {
		d := b.Band[e.U] - b.Band[e.V]
		if d < 0 {
			d = -d
		}
		switch d {
		case 0:
			q.InternalWeight += e.W
		case 1:
			q.AdjacentWeight += e.W
		default:
			q.SkippedWeight += e.W
		}
	}
	return q
}

// ProjectCut expands a cut of the super-graph path (band boundary indices)
// to the corresponding edge cut of the original graph: all original edges
// whose endpoints end up in different components of the banded path.
func (b *Banding) ProjectCut(g *graph.Graph, pathCut []int) ([]int, error) {
	comps, err := b.Path.Components(pathCut)
	if err != nil {
		return nil, err
	}
	compOf := make([]int, b.Path.Len())
	for ci, rng := range comps {
		for band := rng[0]; band <= rng[1]; band++ {
			compOf[band] = ci
		}
	}
	var cut []int
	for i, e := range g.Edges {
		if compOf[b.Band[e.U]] != compOf[b.Band[e.V]] {
			cut = append(cut, i)
		}
	}
	return cut, nil
}

// RingToPath is a convenience for §3's "circular or linear" systems: if the
// graph is a simple cycle, cut its lightest edge and return the resulting
// path along with the original vertex order. ok is false when the graph is
// not a simple cycle.
func RingToPath(g *graph.Graph) (*graph.Path, []int, bool) {
	n := g.Len()
	if n < 3 || len(g.Edges) != n {
		return nil, nil, false
	}
	adj := g.Adjacency()
	for _, a := range adj {
		if len(a) != 2 {
			return nil, nil, false
		}
	}
	// Find the lightest edge; walk the cycle starting just after it.
	minE := 0
	for i, e := range g.Edges {
		if e.W < g.Edges[minE].W {
			minE = i
		}
	}
	start := g.Edges[minE].V
	prev := g.Edges[minE].U
	orderV := make([]int, 0, n)
	edgeW := make([]float64, 0, n-1)
	v := start
	for len(orderV) < n {
		orderV = append(orderV, v)
		var next int
		var w float64
		found := false
		for _, a := range adj[v] {
			if a.To != prev && a.Edge != minE {
				next, w, found = a.To, g.Edges[a.Edge].W, true
				break
			}
		}
		if !found {
			break
		}
		if len(orderV) < n {
			edgeW = append(edgeW, w)
		}
		prev, v = v, next
	}
	if len(orderV) != n {
		return nil, nil, false
	}
	nodeW := make([]float64, n)
	for i, ov := range orderV {
		nodeW[i] = g.NodeW[ov]
	}
	p, err := graph.NewPath(nodeW, edgeW)
	if err != nil {
		return nil, nil, false
	}
	return p, orderV, true
}
