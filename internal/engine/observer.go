package engine

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Event describes one completed solve. Observers receive it after the solve
// finishes, whether it succeeded, failed, or was cancelled.
type Event struct {
	// Solver is the registry name.
	Solver string
	// Stats is the solve's work accounting (Duration is always set; Allocs
	// only under Options.TrackAllocs).
	Stats Stats
	// Err is the solve's error, nil on success.
	Err error
	// RequestID is the correlation ID the context carried
	// (obs.WithRequestID), "" when none. Solves run by Batch get the batch
	// context's ID suffixed with "#<index>" so their events are
	// distinguishable.
	RequestID string
	// JobID is the async job the solve runs under (engine.WithJobID), ""
	// for a direct solve. The jobs subsystem stamps it so observers can
	// attribute metrics and log lines to the owning job.
	JobID string
	// BatchIndex is the request's index within its Batch.Run call, or -1
	// for a standalone solve.
	BatchIndex int
	// Trace is the trace the solve ran under (its root may still be open —
	// the caller owns the root span), nil when the context carried none.
	Trace *obs.Trace
	// Phases aggregates the phase spans recorded inside this solve's own
	// span by name; nil when the solve was untraced.
	Phases map[string]obs.PhaseStat
}

// Observer receives solve events. Implementations must be safe for
// concurrent use; Batch invokes them from its worker goroutines.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe calls f.
func (f ObserverFunc) Observe(e Event) { f(e) }

// multiObserver fans one event out to several observers in order.
type multiObserver []Observer

// Observe delivers e to every member.
func (m multiObserver) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Observers combines observers into one that fans events out in argument
// order, skipping nil entries. It returns nil when nothing remains and the
// sole observer unwrapped when only one does, so the result can be assigned
// to Options.Observer (or Batch.Observer) without adding dispatch layers.
// This is how a serving layer chains its metrics collector with a
// per-request observer supplied by the caller.
func Observers(obs ...Observer) Observer {
	var flat multiObserver
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return flat
	}
}

var (
	obsMu          sync.RWMutex
	globalObserver Observer
)

// SetObserver installs an engine-wide observer notified of every solve in
// the process, in addition to any per-request Options.Observer. Passing nil
// removes it. It returns the previous observer.
func SetObserver(o Observer) Observer {
	obsMu.Lock()
	prev := globalObserver
	globalObserver = o
	obsMu.Unlock()
	return prev
}

// notify delivers ev to the per-request observer (if any) and the global
// observer (if any).
func notify(reqObs Observer, ev Event) {
	if reqObs != nil {
		reqObs.Observe(ev)
	}
	obsMu.RLock()
	g := globalObserver
	obsMu.RUnlock()
	if g != nil {
		g.Observe(ev)
	}
}

// Aggregate summarizes the solves one Collector saw for one solver name.
type Aggregate struct {
	// Solves counts completed solves, including failed ones.
	Solves int64
	// Errors counts solves that returned an error.
	Errors int64
	// TotalDuration sums wall time across solves.
	TotalDuration time.Duration
	// MaxDuration is the slowest single solve.
	MaxDuration time.Duration
	// TotalIterations sums main-loop iterations across solves.
	TotalIterations int64
}

// Collector is a thread-safe Observer that aggregates per-solver statistics
// — the minimal metrics backend for tools and tests.
type Collector struct {
	mu  sync.Mutex
	per map[string]*Aggregate
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{per: make(map[string]*Aggregate)} }

// Observe records one event.
func (c *Collector) Observe(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	agg := c.per[ev.Solver]
	if agg == nil {
		agg = &Aggregate{}
		c.per[ev.Solver] = agg
	}
	agg.Solves++
	if ev.Err != nil {
		agg.Errors++
	}
	agg.TotalDuration += ev.Stats.Duration
	if ev.Stats.Duration > agg.MaxDuration {
		agg.MaxDuration = ev.Stats.Duration
	}
	agg.TotalIterations += ev.Stats.Iterations
}

// Snapshot returns a copy of the per-solver aggregates.
func (c *Collector) Snapshot() map[string]Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]Aggregate, len(c.per))
	for name, agg := range c.per {
		out[name] = *agg
	}
	return out
}
