package engine

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/treecut"
)

// This file registers the NP-hard tier: internal/treecut's exact and
// heuristic minimum-weight tree cutters. Theorem 1 puts the general problem
// on the knapsack tier, so these solvers declare ObjectiveNone — there is no
// polynomial certificate or oracle for the verification harness to check
// them against at scale (the brute-force oracle covers them in treecut's own
// tests), and the explicit sentinel makes /v1/solvers and the differential
// harness skip them by policy rather than by zero-value accident. They exist
// in the registry primarily for the async jobs API, where a solve may
// legitimately run past any request/response deadline.
//
//	treecut-exact  — pseudo-polynomial DP, integral weights and integral K
//	treecut-bb     — branch and bound, real weights, ≤ 24 edges
//	treecut-greedy — accumulate-and-cut heuristic, no optimality guarantee

// treecutErr translates treecut sentinels into the engine/core error
// vocabulary the serving layer maps to HTTP statuses.
func treecutErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, treecut.ErrInfeasible):
		return fmt.Errorf("%v: %w", err, core.ErrInfeasible)
	case errors.Is(err, treecut.ErrBadInput), errors.Is(err, treecut.ErrTooLarge):
		return fmt.Errorf("%v: %w", err, ErrBadRequest)
	default:
		return err
	}
}

// treecutPartition lifts a CutResult into the engine's TreePartition shape,
// deriving the component loads and bottleneck from the tree.
func treecutPartition(t *graph.Tree, cr *treecut.CutResult, k float64) (*core.TreePartition, error) {
	ws, err := t.ComponentWeights(cr.Cut)
	if err != nil {
		return nil, err
	}
	bn, err := t.MaxCutEdgeWeight(cr.Cut)
	if err != nil {
		return nil, err
	}
	cut := cr.Cut
	if cut == nil {
		cut = []int{}
	}
	return &core.TreePartition{
		Cut:              cut,
		CutWeight:        cr.Weight,
		Bottleneck:       bn,
		ComponentWeights: ws,
		K:                k,
	}, nil
}

// liftTreecut adapts a treecut Ctx solver to the treeSolver solve signature.
func liftTreecut(f func(context.Context, *graph.Tree, float64) (*treecut.CutResult, int64, error)) func(context.Context, *graph.Tree, float64) (*core.TreePartition, int64, error) {
	return func(ctx context.Context, t *graph.Tree, k float64) (*core.TreePartition, int64, error) {
		cr, iters, err := f(ctx, t, k)
		if err != nil {
			return nil, iters, treecutErr(err)
		}
		tp, err := treecutPartition(t, cr, k)
		return tp, iters, err
	}
}

func init() {
	Register(&treeSolver{name: "treecut-exact", objective: ObjectiveNone, solve: liftTreecut(
		func(ctx context.Context, t *graph.Tree, k float64) (*treecut.CutResult, int64, error) {
			if k != math.Trunc(k) || k > math.MaxInt32 {
				return nil, 0, fmt.Errorf("treecut-exact needs an integral K (got %v): %w", k, ErrBadRequest)
			}
			return treecut.TreeBandwidthExactCtx(ctx, t, int(k))
		})})
	Register(&treeSolver{name: "treecut-bb", objective: ObjectiveNone, solve: liftTreecut(treecut.TreeBandwidthBBCtx)})
	Register(&treeSolver{name: "treecut-greedy", objective: ObjectiveNone, solve: liftTreecut(treecut.TreeBandwidthGreedyCtx)})
}
