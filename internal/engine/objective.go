package engine

// Objective classifies what a solver's result minimizes, subject to the
// execution-time bound K. It is the hook the verification subsystem
// (internal/verify) keys its certificate checkers and differential oracles
// on: two solvers sharing an objective must agree on the objective value for
// the same input, and each objective has an independent optimality
// certificate.
type Objective int

const (
	// ObjectiveNone marks solvers that deliberately declare no certifiable
	// objective (the NP-hard treecut tier): verification skips them by
	// policy. It is distinct from ObjectiveUnknown — the accidental
	// zero value of solvers that simply never declared one.
	ObjectiveNone Objective = -1
	// ObjectiveUnknown is reported for solvers that do not declare an
	// objective; such solvers cannot be certified or cross-checked.
	ObjectiveUnknown Objective = iota
	// ObjectiveBandwidth minimizes the total cut weight (§2.3).
	ObjectiveBandwidth
	// ObjectiveBottleneck minimizes the heaviest cut-edge weight (§2.1).
	ObjectiveBottleneck
	// ObjectiveMinProcs minimizes the number of components (§2.2).
	ObjectiveMinProcs
	// ObjectiveMaxMin maximizes the minimum component weight of an
	// exactly-K-component partition (Frederickson–Zhou, arXiv 1711.00599).
	// Requests carry the part count in K rather than a weight bound.
	ObjectiveMaxMin
	// ObjectiveSumOfMax minimizes the sum over components of the maximum
	// node weight of an exactly-K-component partition (arXiv 2503.11526).
	// Requests carry the part count in K rather than a weight bound.
	ObjectiveSumOfMax
)

// String returns the stable objective label used in listings and logs.
func (o Objective) String() string {
	switch o {
	case ObjectiveNone:
		return "none"
	case ObjectiveBandwidth:
		return "bandwidth"
	case ObjectiveBottleneck:
		return "bottleneck"
	case ObjectiveMinProcs:
		return "minprocs"
	case ObjectiveMaxMin:
		return "maxmin"
	case ObjectiveSumOfMax:
		return "summax"
	default:
		return "unknown"
	}
}

// Objectiver is the optional interface a Solver implements to declare its
// objective. It is optional so third-party Solver implementations predating
// it keep compiling; they report ObjectiveUnknown.
type Objectiver interface {
	Objective() Objective
}

// ObjectiveOf returns the solver's declared objective, or ObjectiveUnknown
// when the solver does not implement Objectiver.
func ObjectiveOf(s Solver) Objective {
	if o, ok := s.(Objectiver); ok {
		return o.Objective()
	}
	return ObjectiveUnknown
}
