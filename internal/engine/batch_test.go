package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestBatchMixedOutcomes runs a batch with a failing request (infeasible K)
// mixed into successes and checks per-index determinism.
func TestBatchMixedOutcomes(t *testing.T) {
	p := testPath(t, 2000)
	tr := testTree(t, 2000)
	kp := 4 * p.MaxNodeWeight()
	kt := 4 * tr.MaxNodeWeight()
	reqs := []Request{
		{Solver: "bandwidth", Path: p, K: kp},
		{Solver: "bandwidth", Path: p, K: 0.5}, // infeasible: fails
		{Solver: "bottleneck", Tree: tr, K: kt},
		{Solver: "no-such-solver", Path: p, K: kp}, // unknown: fails
		{Solver: "minproc", Tree: tr, K: kt},
		{Solver: "bandwidth-deque", Path: p, K: kp},
	}
	b := &Batch{Workers: 3}
	got, err := b.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got.Items) != len(reqs) {
		t.Fatalf("items = %d, want %d", len(got.Items), len(reqs))
	}
	if got.Stats.Solved != 4 || got.Stats.Failed != 2 {
		t.Errorf("stats = %+v, want 4 solved / 2 failed", got.Stats)
	}
	if !errors.Is(got.Items[1].Err, core.ErrInfeasible) {
		t.Errorf("item 1 err = %v, want ErrInfeasible", got.Items[1].Err)
	}
	if !errors.Is(got.Items[3].Err, ErrUnknownSolver) {
		t.Errorf("item 3 err = %v, want ErrUnknownSolver", got.Items[3].Err)
	}
	// Each successful item must match the equivalent sequential solve.
	for _, i := range []int{0, 2, 4, 5} {
		item := got.Items[i]
		if item.Err != nil {
			t.Fatalf("item %d failed: %v", i, item.Err)
		}
		want, err := Solve(context.Background(), reqs[i])
		if err != nil {
			t.Fatalf("sequential solve %d: %v", i, err)
		}
		if item.Result.CutWeight != want.CutWeight || item.Result.NumComponents() != want.NumComponents() {
			t.Errorf("item %d = (w=%v, c=%d), sequential = (w=%v, c=%d)",
				i, item.Result.CutWeight, item.Result.NumComponents(), want.CutWeight, want.NumComponents())
		}
	}
}

// TestBatchBoundedParallelism checks that no more than Workers solves run
// concurrently, via an observer... observers fire after the solve, so
// instead count in-flight solves with a wrapped request set sharing one
// gauge through a custom solver registered for this test.
func TestBatchBoundedParallelism(t *testing.T) {
	var inFlight, peak int64
	var mu sync.Mutex
	probe := &funcSolver{name: "test-probe", kind: KindPath, fn: func(ctx context.Context, req Request) (Result, error) {
		cur := atomic.AddInt64(&inFlight, 1)
		mu.Lock()
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt64(&inFlight, -1)
		return Result{Solver: "test-probe"}, nil
	}}
	Register(probe)
	reqs := make([]Request, 16)
	for i := range reqs {
		reqs[i] = Request{Solver: "test-probe"}
	}
	b := &Batch{Workers: 2}
	if _, err := b.Run(context.Background(), reqs); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if peak > 2 {
		t.Errorf("peak concurrency = %d, want <= 2", peak)
	}
}

// funcSolver is a test-only Solver.
type funcSolver struct {
	name string
	kind Kind
	fn   func(context.Context, Request) (Result, error)
}

func (s *funcSolver) Name() string { return s.name }
func (s *funcSolver) Kind() Kind   { return s.kind }
func (s *funcSolver) Solve(ctx context.Context, req Request) (Result, error) {
	return s.fn(ctx, req)
}

func TestBatchEmpty(t *testing.T) {
	b := &Batch{}
	got, err := b.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got.Items) != 0 || got.Stats.Requests != 0 {
		t.Errorf("empty batch = %+v", got)
	}
}

// TestBatchCancellation cancels the batch context mid-run: every item is
// still populated, the unfinished ones with the context error.
func TestBatchCancellation(t *testing.T) {
	big := testPath(t, 100_000)
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Solver: "bandwidth-naive", Path: big, K: big.TotalNodeWeight() / 2}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	b := &Batch{Workers: 2}
	got, err := b.Run(ctx, reqs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if len(got.Items) != len(reqs) {
		t.Fatalf("items = %d, want %d", len(got.Items), len(reqs))
	}
	for i, item := range got.Items {
		if !errors.Is(item.Err, context.Canceled) {
			t.Errorf("item %d err = %v, want context.Canceled", i, item.Err)
		}
	}
}

// TestBatchPerRequestTimeout: the batch default deadline applies to
// requests without their own.
func TestBatchPerRequestTimeout(t *testing.T) {
	small := testPath(t, 5_000)
	big := testPath(t, 100_000)
	reqs := []Request{
		{Solver: "bandwidth", Path: small, K: 4 * small.MaxNodeWeight()},     // fast, succeeds
		{Solver: "bandwidth-naive", Path: big, K: big.TotalNodeWeight() / 2}, // quadratic, times out
	}
	b := &Batch{Workers: 2, Timeout: 250 * time.Millisecond}
	got, err := b.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Items[0].Err != nil {
		t.Errorf("fast request failed: %v", got.Items[0].Err)
	}
	if !errors.Is(got.Items[1].Err, context.DeadlineExceeded) {
		t.Errorf("slow request err = %v, want DeadlineExceeded", got.Items[1].Err)
	}
}

// TestBatchObserver: the batch observer sees every solve.
func TestBatchObserver(t *testing.T) {
	p := testPath(t, 200)
	k := 4 * p.MaxNodeWeight()
	col := NewCollector()
	reqs := make([]Request, 10)
	for i := range reqs {
		reqs[i] = Request{Solver: "bandwidth", Path: p, K: k}
	}
	b := &Batch{Workers: 4, Observer: col}
	got, err := b.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got.Stats.Solved != 10 {
		t.Fatalf("solved = %d, want 10", got.Stats.Solved)
	}
	agg := col.Snapshot()["bandwidth"]
	if agg.Solves != 10 {
		t.Errorf("observer saw %d solves, want 10", agg.Solves)
	}
	if got.Stats.TotalIterations != agg.TotalIterations {
		t.Errorf("batch iterations %d != observer iterations %d", got.Stats.TotalIterations, agg.TotalIterations)
	}
}

func BenchmarkEngineOverhead(b *testing.B) {
	r := workload.NewRNG(1)
	p := workload.RandomPath(r, 1000, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	k := 4 * p.MaxNodeWeight()
	req := Request{Solver: "bandwidth", Path: p, K: k}
	ctx := context.Background()
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Solve(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Bandwidth(p, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBatch(b *testing.B) {
	r := workload.NewRNG(1)
	const n = 64
	reqs := make([]Request, n)
	for i := range reqs {
		p := workload.RandomPath(r, 5000, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
		reqs[i] = Request{Solver: "bandwidth", Path: p, K: 4 * p.MaxNodeWeight()}
	}
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("reqs=%d/workers=%d", n, workers), func(b *testing.B) {
			batch := &Batch{Workers: workers}
			for i := 0; i < b.N; i++ {
				res, err := batch.Run(context.Background(), reqs)
				if err != nil {
					b.Fatal(err)
				}
				if res.Stats.Failed != 0 {
					b.Fatalf("%d failed", res.Stats.Failed)
				}
			}
		})
	}
}
