package engine

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// TestBatchParentCancelDrainsWorkers cancels the parent context while every
// worker is blocked inside a solve. All outstanding requests must come back
// with the context error — in-flight ones because the solvers poll their
// context, never-started ones because Solve fails fast — and the worker pool
// must wind down without leaking goroutines.
func TestBatchParentCancelDrainsWorkers(t *testing.T) {
	started := make(chan struct{}, 64)
	Register(&funcSolver{name: "test-cancel-blocker", kind: KindPath,
		fn: func(ctx context.Context, req Request) (Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return Result{}, ctx.Err()
		}})

	before := runtime.NumGoroutine()
	reqs := make([]Request, 32)
	for i := range reqs {
		reqs[i] = Request{Solver: "test-cancel-blocker"}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const workers = 4
	done := make(chan struct {
		res *BatchResult
		err error
	}, 1)
	go func() {
		b := &Batch{Workers: workers}
		res, err := b.Run(ctx, reqs)
		done <- struct {
			res *BatchResult
			err error
		}{res, err}
	}()

	// Wait until every worker is provably mid-solve, then pull the rug.
	for i := 0; i < workers; i++ {
		select {
		case <-started:
		case <-time.After(5 * time.Second):
			t.Fatal("workers never started solving")
		}
	}
	cancel()

	var got struct {
		res *BatchResult
		err error
	}
	select {
	case got = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Batch.Run did not return after cancellation")
	}
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", got.err)
	}
	if len(got.res.Items) != len(reqs) {
		t.Fatalf("items = %d, want %d", len(got.res.Items), len(reqs))
	}
	for i, item := range got.res.Items {
		if !errors.Is(item.Err, context.Canceled) {
			t.Errorf("item %d err = %v, want context.Canceled", i, item.Err)
		}
	}
	if got.res.Stats.Failed != len(reqs) {
		t.Errorf("failed = %d, want %d", got.res.Stats.Failed, len(reqs))
	}

	// The pool's goroutines must all have exited. Poll: the runtime needs a
	// moment to reap them, and unrelated test goroutines add slack.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before batch, %d after\n%s",
				before, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
