// Package engine is the unified solver entry point for every partitioner in
// this repository. It wraps the algorithm packages (internal/core,
// internal/hitting) behind one context-aware Solve API:
//
//   - Request names a registered solver, carries the task graph and the
//     execution-time bound K, and sets per-solve options (deadline,
//     component cap, allocation tracking, observer).
//   - Result carries the cut, the component loads, the partition metrics
//     and per-solve Stats (wall time, main-loop iterations, allocations).
//   - Solver is the interface all partitioners are registered under; the
//     registry maps stable names ("bandwidth", "bottleneck", ...) to
//     implementations.
//   - Batch runs many requests concurrently on a bounded worker pool with
//     per-request deadlines and aggregate statistics.
//
// Solvers poll their context inside their main loops, so canceling a context
// aborts a long solve promptly with the context's error. Observers receive
// one Event per completed solve — the hook where a serving layer attaches
// logging, metrics export, or admission control.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Sentinel errors.
var (
	// ErrUnknownSolver is returned by Get and Solve for names that were
	// never registered.
	ErrUnknownSolver = errors.New("engine: unknown solver")
	// ErrBadRequest is returned when a request is structurally invalid for
	// its solver (missing graph, wrong graph kind).
	ErrBadRequest = errors.New("engine: bad request")
)

// Kind says which task-graph shape a solver consumes.
type Kind int

const (
	// KindPath solvers partition linear task graphs.
	KindPath Kind = iota + 1
	// KindTree solvers partition tree task graphs (and accept paths, which
	// are trees).
	KindTree
)

// String returns "path" or "tree".
func (k Kind) String() string {
	switch k {
	case KindPath:
		return "path"
	case KindTree:
		return "tree"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Options are the per-solve knobs of a Request.
type Options struct {
	// MaxComponents caps the number of components for solvers that support
	// it ("bandwidth", "bandwidth-limited"); 0 means unlimited.
	MaxComponents int
	// Timeout bounds the solve's wall time; 0 means no deadline beyond the
	// caller's context.
	Timeout time.Duration
	// TrackAllocs samples runtime allocation counters around the solve and
	// reports the delta in Stats.Allocs. The sample is process-wide, so
	// concurrent solves (Batch) inflate each other's numbers; use it for
	// sequential profiling.
	TrackAllocs bool
	// Observer, when non-nil, receives this solve's Event in addition to
	// the engine-wide observer.
	Observer Observer
}

// Request is one solve: a named solver, a task graph, and the bound K.
// Exactly one of Path or Tree must be set (tree solvers also accept Path).
type Request struct {
	// Solver is the registry name; see Names for the available set.
	Solver string
	// Path is the linear task graph input.
	Path *graph.Path
	// Tree is the tree task graph input.
	Tree *graph.Tree
	// K is the execution-time bound: no component may weigh more than K.
	K float64
	// Options are the per-solve knobs.
	Options Options
}

// Stats is the per-solve work accounting.
type Stats struct {
	// Duration is the solve's wall time.
	Duration time.Duration
	// Iterations counts the solver's main-loop iterations — the
	// size-independent progress measure used for cancellation polling.
	Iterations int64
	// Allocs is the heap-allocation delta over the solve, only when
	// Options.TrackAllocs was set.
	Allocs uint64
}

// Result is a completed solve: the cut, its metrics, and Stats. For path
// solvers PathPartition is set; for tree solvers TreePartition.
type Result struct {
	// Solver is the registry name that produced this result.
	Solver string
	// Cut lists the removed edge indices in increasing order.
	Cut []int
	// CutWeight is the total weight of cut edges (the bandwidth).
	CutWeight float64
	// Bottleneck is the largest single cut-edge weight, 0 for an empty cut.
	Bottleneck float64
	// ComponentWeights are the component loads.
	ComponentWeights []float64
	// K is the execution-time bound the partition satisfies.
	K float64
	// Stats is the per-solve work accounting.
	Stats Stats
	// PathPartition is the typed result for path solvers, nil otherwise.
	PathPartition *core.PathPartition
	// TreePartition is the typed result for tree solvers, nil otherwise.
	TreePartition *core.TreePartition
}

// NumComponents returns the number of connected components.
func (r *Result) NumComponents() int { return len(r.ComponentWeights) }

// Solver is a registered partitioning algorithm.
type Solver interface {
	// Name is the registry name.
	Name() string
	// Kind is the graph shape the solver consumes.
	Kind() Kind
	// Solve runs the algorithm. It honors ctx cancellation and
	// req.Options.Timeout, fills Result.Stats, and notifies observers.
	Solve(ctx context.Context, req Request) (Result, error)
}

// Solve looks up req.Solver in the registry and runs it. It is the
// single entry point the facade, the tools and Batch all share.
func Solve(ctx context.Context, req Request) (Result, error) {
	s, err := Get(req.Solver)
	if err != nil {
		return Result{}, err
	}
	return s.Solve(ctx, req)
}

// instrumented wraps a solve body with the engine's common machinery:
// deadline application, up-front cancellation check, timing, allocation
// sampling, trace span management, and observer notification. When the
// context carries an obs.Trace, the solve runs inside a span named after the
// solver, so the phase spans the algorithms open nest under it; without a
// trace the span machinery is a no-op (one context lookup, zero
// allocations). Errors from the body are returned unwrapped so callers can
// match the algorithm packages' sentinel errors.
func instrumented(ctx context.Context, name string, opt Options, body func(context.Context) (Result, int64, error)) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	var before runtime.MemStats
	if opt.TrackAllocs {
		runtime.ReadMemStats(&before)
	}
	sctx, span := obs.StartSpan(ctx, name)
	start := time.Now()
	res, iters, err := body(sctx)
	span.End()
	res.Stats.Duration = time.Since(start)
	res.Stats.Iterations = iters
	if opt.TrackAllocs {
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		res.Stats.Allocs = after.Mallocs - before.Mallocs
	}
	res.Solver = name
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	notify(opt.Observer, Event{
		Solver:     name,
		Stats:      res.Stats,
		Err:        err,
		RequestID:  obs.RequestIDFrom(ctx),
		JobID:      JobIDFrom(ctx),
		BatchIndex: batchIndexFrom(ctx),
		Trace:      obs.FromContext(ctx),
		Phases:     span.PhaseTotals(),
	})
	if err != nil {
		return Result{Solver: name, Stats: res.Stats}, err
	}
	return res, nil
}
