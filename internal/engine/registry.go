package engine

import (
	"fmt"
	"sort"
	"sync"
)

// The solver registry maps stable names to Solver implementations. All of
// the repository's partitioners register themselves in this package's init
// (solvers.go); external packages may add more with Register.

var (
	regMu    sync.RWMutex
	registry = make(map[string]Solver)
)

// Register adds a solver under its Name. It panics on an empty name or a
// duplicate registration — both are programmer errors caught at init time.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("engine: Register with empty solver name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate solver registration %q", name))
	}
	registry[name] = s
}

// Get returns the solver registered under name, or ErrUnknownSolver.
func Get(name string) (Solver, error) {
	regMu.RLock()
	s, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %v)", ErrUnknownSolver, name, Names())
	}
	return s, nil
}

// MustGet is Get panicking on unknown names, for static call sites.
func MustGet(name string) Solver {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns the registered solver names in sorted order.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}
