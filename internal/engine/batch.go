package engine

import (
	"context"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// batchIndexKey carries a request's index within its Batch.Run call, so the
// engine can attribute the solve's Event to the right batch item.
type batchIndexKey struct{}

// batchIndexFrom returns the batch index carried by ctx, or -1 for a
// standalone solve.
func batchIndexFrom(ctx context.Context) int {
	if v, ok := ctx.Value(batchIndexKey{}).(int); ok {
		return v
	}
	return -1
}

// jobIDKey carries the async job ID a solve runs under, so the engine can
// attribute the solve's Event to the owning job.
type jobIDKey struct{}

// WithJobID returns ctx carrying the job ID; solves run under the returned
// context report it in their Event.JobID.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey{}, id)
}

// JobIDFrom returns the job ID carried by ctx, or "" for a direct solve.
func JobIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey{}).(string)
	return id
}

// Batch runs many solve requests concurrently on a bounded worker pool.
// The zero value is ready to use: GOMAXPROCS workers, no default deadline.
type Batch struct {
	// Workers bounds the number of concurrent solves; <= 0 means
	// GOMAXPROCS.
	Workers int
	// Timeout is the default per-request deadline, applied to requests
	// whose own Options.Timeout is zero; 0 means none.
	Timeout time.Duration
	// Observer, when non-nil, is attached to requests that carry no
	// observer of their own. It must be safe for concurrent use.
	Observer Observer
}

// BatchItem is the outcome of one request: exactly one of Result (Err nil)
// or Err is meaningful.
type BatchItem struct {
	Result Result
	Err    error
}

// BatchStats aggregates a batch run.
type BatchStats struct {
	// Requests is the number of requests submitted.
	Requests int
	// Solved and Failed partition Requests by outcome.
	Solved, Failed int
	// Wall is the batch's end-to-end wall time.
	Wall time.Duration
	// TotalSolveTime sums the per-solve durations; TotalSolveTime/Wall is
	// the effective parallelism.
	TotalSolveTime time.Duration
	// TotalIterations sums solver main-loop iterations.
	TotalIterations int64
}

// BatchResult holds per-request outcomes, index-aligned with the submitted
// requests, plus aggregate stats.
type BatchResult struct {
	Items []BatchItem
	Stats BatchStats
}

// Run solves all requests and returns when every one has finished. Items[i]
// corresponds to reqs[i] regardless of scheduling, so results are
// deterministic per request even though completion order is not. A failing
// request is recorded in its item; it does not stop the batch. Cancelling
// ctx makes remaining solves fail fast with the context's error, which Run
// also returns.
func (b *Batch) Run(ctx context.Context, reqs []Request) (*BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	out := &BatchResult{Items: make([]BatchItem, len(reqs))}
	out.Stats.Requests = len(reqs)
	rid := obs.RequestIDFrom(ctx)
	start := time.Now()
	if workers > 0 {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					req := reqs[i]
					if req.Options.Timeout == 0 && b.Timeout > 0 {
						req.Options.Timeout = b.Timeout
					}
					if req.Options.Observer == nil {
						req.Options.Observer = b.Observer
					}
					// Stamp the item's index (and a derived request ID)
					// into the context so observers can attribute the
					// resulting Event to this batch position.
					ictx := context.WithValue(ctx, batchIndexKey{}, i)
					if rid != "" {
						ictx = obs.WithRequestID(ictx, rid+"#"+strconv.Itoa(i))
					}
					res, err := Solve(ictx, req)
					out.Items[i] = BatchItem{Result: res, Err: err}
				}
			}()
		}
		// Feed every index even once ctx is cancelled: Solve's up-front
		// context check fails the remaining requests immediately, keeping
		// Items fully populated.
		for i := range reqs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	out.Stats.Wall = time.Since(start)
	for _, item := range out.Items {
		if item.Err != nil {
			out.Stats.Failed++
		} else {
			out.Stats.Solved++
		}
		out.Stats.TotalSolveTime += item.Result.Stats.Duration
		out.Stats.TotalIterations += item.Result.Stats.Iterations
	}
	return out, ctx.Err()
}
