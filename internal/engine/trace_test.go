package engine

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/obs"
)

// eventRecorder is a concurrency-safe observer that keeps every event.
type eventRecorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *eventRecorder) Observe(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *eventRecorder) all() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

func TestSolveTracedEvent(t *testing.T) {
	rec := &eventRecorder{}
	tr := obs.New("test-solve")
	ctx := obs.WithRequestID(obs.NewContext(context.Background(), tr), "req-42")
	req := Request{
		Solver:  "bandwidth",
		Path:    testPath(t, 64),
		K:       250,
		Options: Options{Observer: rec},
	}
	if _, err := Solve(ctx, req); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	tr.Finish()
	events := rec.all()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.RequestID != "req-42" {
		t.Errorf("RequestID = %q, want %q", ev.RequestID, "req-42")
	}
	if ev.BatchIndex != -1 {
		t.Errorf("BatchIndex = %d, want -1 for standalone solve", ev.BatchIndex)
	}
	if ev.Trace != tr {
		t.Errorf("Trace = %p, want the attached trace %p", ev.Trace, tr)
	}
	for _, phase := range []string{"prime-extract", "temps-dp", "build-partition"} {
		ps, ok := ev.Phases[phase]
		if !ok {
			t.Errorf("Phases missing %q (got %v)", phase, ev.Phases)
			continue
		}
		if ps.Count < 1 {
			t.Errorf("Phases[%q].Count = %d, want >= 1", phase, ps.Count)
		}
	}
	// The solver span must appear in the finished tree, under the root.
	root := tr.Tree()
	var solverSpan *obs.SpanNode
	for _, c := range root.Children {
		if c.Name == "bandwidth" {
			solverSpan = c
		}
	}
	if solverSpan == nil {
		t.Fatalf("trace tree has no %q span under root (children: %v)", "bandwidth", root.Children)
	}
	if len(solverSpan.Children) == 0 {
		t.Errorf("solver span has no phase children")
	}
}

func TestSolveUntracedEvent(t *testing.T) {
	rec := &eventRecorder{}
	req := Request{
		Solver:  "bandwidth",
		Path:    testPath(t, 64),
		K:       250,
		Options: Options{Observer: rec},
	}
	if _, err := Solve(context.Background(), req); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	events := rec.all()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Trace != nil {
		t.Errorf("Trace = %v, want nil on untraced solve", ev.Trace)
	}
	if ev.Phases != nil {
		t.Errorf("Phases = %v, want nil on untraced solve", ev.Phases)
	}
	if ev.RequestID != "" {
		t.Errorf("RequestID = %q, want empty", ev.RequestID)
	}
	if ev.BatchIndex != -1 {
		t.Errorf("BatchIndex = %d, want -1", ev.BatchIndex)
	}
}

// TestRegisteredSolversEmitPhaseSpans checks every production solver opens at
// least one phase span on a traced solve — the tentpole's coverage guarantee.
// The list is pinned rather than taken from Names() because other test files
// register blocking test-only solvers in the shared registry.
func TestRegisteredSolversEmitPhaseSpans(t *testing.T) {
	solvers := []string{
		"bandwidth", "bandwidth-deque", "bandwidth-heap", "bandwidth-limited",
		"bandwidth-naive", "bottleneck", "bottleneck-greedy", "maxmin-path",
		"maxmin-tree", "minproc", "minproc-path", "partition-tree",
		"summax-tree",
	}
	p := testPath(t, 96)
	tree := testTree(t, 96)
	for _, name := range solvers {
		t.Run(name, func(t *testing.T) {
			s, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			req := Request{Solver: name, K: 300}
			if s.Kind() == KindPath {
				req.Path = p
			} else {
				req.Tree = tree
			}
			if name == "bandwidth-limited" {
				req.Options.MaxComponents = 96
			}
			switch ObjectiveOf(s) {
			case ObjectiveMaxMin, ObjectiveSumOfMax:
				// Part-count solvers read K as the component count.
				req.K = 8
			}
			rec := &eventRecorder{}
			req.Options.Observer = rec
			ctx := obs.NewContext(context.Background(), obs.New("phase-coverage"))
			if _, err := Solve(ctx, req); err != nil {
				t.Fatalf("Solve(%s): %v", name, err)
			}
			events := rec.all()
			if len(events) != 1 {
				t.Fatalf("got %d events, want 1", len(events))
			}
			if len(events[0].Phases) == 0 {
				t.Errorf("solver %q recorded no phase spans", name)
			}
		})
	}
}

func TestBatchEventAttribution(t *testing.T) {
	const n = 8
	rec := &eventRecorder{}
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Solver: "bandwidth", Path: testPath(t, 32), K: 200}
	}
	b := &Batch{Workers: 3, Observer: rec}
	ctx := obs.WithRequestID(context.Background(), "batch-7")
	res, err := b.Run(ctx, reqs)
	if err != nil {
		t.Fatalf("Batch.Run: %v", err)
	}
	if res.Stats.Solved != n {
		t.Fatalf("Solved = %d, want %d", res.Stats.Solved, n)
	}
	events := rec.all()
	if len(events) != n {
		t.Fatalf("got %d events, want %d", len(events), n)
	}
	seen := make(map[int]string, n)
	for _, ev := range events {
		if ev.BatchIndex < 0 || ev.BatchIndex >= n {
			t.Fatalf("BatchIndex = %d out of range [0,%d)", ev.BatchIndex, n)
		}
		if prev, dup := seen[ev.BatchIndex]; dup {
			t.Fatalf("BatchIndex %d seen twice (%q, %q)", ev.BatchIndex, prev, ev.RequestID)
		}
		seen[ev.BatchIndex] = ev.RequestID
	}
	for i := 0; i < n; i++ {
		want := "batch-7#" + strconv.Itoa(i)
		if seen[i] != want {
			t.Errorf("item %d RequestID = %q, want %q", i, seen[i], want)
		}
	}
}

func TestBatchWithoutRequestID(t *testing.T) {
	rec := &eventRecorder{}
	reqs := []Request{{Solver: "bandwidth", Path: testPath(t, 16), K: 150}}
	b := &Batch{Observer: rec}
	if _, err := b.Run(context.Background(), reqs); err != nil {
		t.Fatalf("Batch.Run: %v", err)
	}
	events := rec.all()
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	if events[0].RequestID != "" {
		t.Errorf("RequestID = %q, want empty when batch context carries none", events[0].RequestID)
	}
	if events[0].BatchIndex != 0 {
		t.Errorf("BatchIndex = %d, want 0", events[0].BatchIndex)
	}
}

// TestBatchSharedTrace checks concurrent batch items can grow disjoint
// subtrees under one shared trace without racing.
func TestBatchSharedTrace(t *testing.T) {
	const n = 6
	tr := obs.New("batch")
	ctx := obs.NewContext(context.Background(), tr)
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Solver: "minproc-path", Path: testPath(t, 32), K: 200}
	}
	b := &Batch{Workers: 4}
	if _, err := b.Run(ctx, reqs); err != nil {
		t.Fatalf("Batch.Run: %v", err)
	}
	tr.Finish()
	root := tr.Tree()
	if len(root.Children) != n {
		t.Fatalf("root has %d children, want %d solver spans", len(root.Children), n)
	}
	for _, c := range root.Children {
		if c.Name != "minproc-path" {
			t.Errorf("unexpected child span %q", c.Name)
		}
	}
}

func BenchmarkSolveUntraced(b *testing.B) {
	req := Request{Solver: "bandwidth", Path: testPath(b, 256), K: 400}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveTraced(b *testing.B) {
	req := Request{Solver: "bandwidth", Path: testPath(b, 256), K: 400}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obs.NewContext(context.Background(), obs.New(fmt.Sprintf("bench-%d", i)))
		if _, err := Solve(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}
