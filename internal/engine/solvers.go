package engine

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
)

// This file registers the polynomial-time partitioners of the repository
// (treecut.go registers the NP-hard tree-cut tier). Registry names are part
// of the public surface (the CLI accepts them, README documents them); keep
// them stable.
//
//	bandwidth          — paper §2.3 O(n + p log q) TEMP_S algorithm
//	bandwidth-heap     — O(n log n) lazy-deletion heap baseline
//	bandwidth-deque    — O(n) monotone-deque ablation
//	bandwidth-naive    — O(n·window) naive recurrence evaluation
//	bandwidth-limited  — O(n·m) level-wise DP with a component cap
//	bottleneck         — §2.1 Algorithm 2.1 via binary search
//	bottleneck-greedy  — paper-faithful O(n²) Algorithm 2.1
//	minproc            — §2.2 Algorithm 2.2 on trees
//	minproc-path       — first-fit processor minimization on paths
//	partition-tree     — §2.2 full pipeline (bottleneck→contract→minproc)
//	maxmin-path        — parametric-search max–min partition of a path
//	maxmin-tree        — parametric-search max–min partition of a tree
//	summax-tree        — exact sum-of-max DP partition of a tree
//
// The maxmin-*/summax-* solvers interpret Request.K as the target component
// count (an integer), not a weight bound — their objectives fix the number
// of parts and optimize the component weights instead.

// pathSolver adapts a context-aware core path algorithm to the Solver
// interface.
type pathSolver struct {
	name      string
	objective Objective
	solve     func(ctx context.Context, req Request) (*core.PathPartition, int64, error)
}

func (s *pathSolver) Name() string         { return s.name }
func (s *pathSolver) Kind() Kind           { return KindPath }
func (s *pathSolver) Objective() Objective { return s.objective }

func (s *pathSolver) Solve(ctx context.Context, req Request) (Result, error) {
	if req.Path == nil {
		return Result{Solver: s.name}, fmt.Errorf("solver %q needs a path graph: %w", s.name, ErrBadRequest)
	}
	return instrumented(ctx, s.name, req.Options, func(ctx context.Context) (Result, int64, error) {
		pp, iters, err := s.solve(ctx, req)
		if err != nil {
			return Result{}, iters, err
		}
		return Result{
			Cut:              pp.Cut,
			CutWeight:        pp.CutWeight,
			Bottleneck:       pp.Bottleneck,
			ComponentWeights: pp.ComponentWeights,
			K:                pp.K,
			PathPartition:    pp,
		}, iters, nil
	})
}

// treeSolver adapts a context-aware core tree algorithm. It accepts a Tree
// request, or a Path request by viewing the path as a tree.
type treeSolver struct {
	name      string
	objective Objective
	solve     func(ctx context.Context, t *graph.Tree, k float64) (*core.TreePartition, int64, error)
}

func (s *treeSolver) Name() string         { return s.name }
func (s *treeSolver) Kind() Kind           { return KindTree }
func (s *treeSolver) Objective() Objective { return s.objective }

func (s *treeSolver) Solve(ctx context.Context, req Request) (Result, error) {
	t := req.Tree
	if t == nil && req.Path != nil {
		t = req.Path.AsTree()
	}
	if t == nil {
		return Result{Solver: s.name}, fmt.Errorf("solver %q needs a tree (or path) graph: %w", s.name, ErrBadRequest)
	}
	return instrumented(ctx, s.name, req.Options, func(ctx context.Context) (Result, int64, error) {
		tp, iters, err := s.solve(ctx, t, req.K)
		if err != nil {
			return Result{}, iters, err
		}
		return Result{
			Cut:              tp.Cut,
			CutWeight:        tp.CutWeight,
			Bottleneck:       tp.Bottleneck,
			ComponentWeights: tp.ComponentWeights,
			K:                tp.K,
			TreePartition:    tp,
		}, iters, nil
	})
}

// partsOf validates the request K of a part-count solver: the target
// component count must be integral (it still travels in the float64 K slot
// of every request shape — CLI flag, JSON, PSV1 frame).
func partsOf(name string, k float64) (int, error) {
	if k != math.Trunc(k) || k > math.MaxInt32 || k < math.MinInt32 {
		return 0, fmt.Errorf("solver %q needs an integral part count K (got %v): %w", name, k, ErrBadRequest)
	}
	return int(k), nil
}

// partsTree lifts a (ctx, tree, parts) algorithm into a treeSolver solve
// function with the integral-K validation applied.
func partsTree(name string, f func(context.Context, *graph.Tree, int) (*core.TreePartition, int64, error)) func(context.Context, *graph.Tree, float64) (*core.TreePartition, int64, error) {
	return func(ctx context.Context, t *graph.Tree, k float64) (*core.TreePartition, int64, error) {
		parts, err := partsOf(name, k)
		if err != nil {
			return nil, 0, err
		}
		return f(ctx, t, parts)
	}
}

// plainPath lifts a (ctx, path, k) algorithm into a request solve function.
func plainPath(f func(context.Context, *graph.Path, float64) (*core.PathPartition, int64, error)) func(context.Context, Request) (*core.PathPartition, int64, error) {
	return func(ctx context.Context, req Request) (*core.PathPartition, int64, error) {
		return f(ctx, req.Path, req.K)
	}
}

func init() {
	// "bandwidth" is the paper's algorithm, with the component cap honored
	// when the request sets one — the common case for machine-sized solves.
	Register(&pathSolver{name: "bandwidth", objective: ObjectiveBandwidth, solve: func(ctx context.Context, req Request) (*core.PathPartition, int64, error) {
		if m := req.Options.MaxComponents; m > 0 {
			return core.BandwidthLimitedCtx(ctx, req.Path, req.K, m)
		}
		return core.BandwidthCtx(ctx, req.Path, req.K)
	}})
	Register(&pathSolver{name: "bandwidth-heap", objective: ObjectiveBandwidth, solve: plainPath(core.BandwidthHeapCtx)})
	Register(&pathSolver{name: "bandwidth-deque", objective: ObjectiveBandwidth, solve: plainPath(core.BandwidthDequeCtx)})
	Register(&pathSolver{name: "bandwidth-naive", objective: ObjectiveBandwidth, solve: plainPath(core.BandwidthNaiveCtx)})
	// "bandwidth-limited" passes MaxComponents through verbatim, so the
	// core validation (m must be positive) applies.
	Register(&pathSolver{name: "bandwidth-limited", objective: ObjectiveBandwidth, solve: func(ctx context.Context, req Request) (*core.PathPartition, int64, error) {
		return core.BandwidthLimitedCtx(ctx, req.Path, req.K, req.Options.MaxComponents)
	}})
	Register(&pathSolver{name: "minproc-path", objective: ObjectiveMinProcs, solve: plainPath(core.MinProcessorsPathCtx)})
	Register(&pathSolver{name: "maxmin-path", objective: ObjectiveMaxMin, solve: func(ctx context.Context, req Request) (*core.PathPartition, int64, error) {
		parts, err := partsOf("maxmin-path", req.K)
		if err != nil {
			return nil, 0, err
		}
		return core.MaxMinPathCtx(ctx, req.Path, parts)
	}})

	Register(&treeSolver{name: "bottleneck", objective: ObjectiveBottleneck, solve: core.BottleneckCtx})
	Register(&treeSolver{name: "bottleneck-greedy", objective: ObjectiveBottleneck, solve: core.BottleneckGreedyCtx})
	Register(&treeSolver{name: "minproc", objective: ObjectiveMinProcs, solve: core.MinProcessorsCtx})
	// partition-tree minimizes processors *subject to* the optimal
	// bottleneck; its certified objective is the bottleneck value.
	Register(&treeSolver{name: "partition-tree", objective: ObjectiveBottleneck, solve: core.PartitionTreeCtx})
	Register(&treeSolver{name: "maxmin-tree", objective: ObjectiveMaxMin, solve: partsTree("maxmin-tree", core.MaxMinTreeCtx)})
	Register(&treeSolver{name: "summax-tree", objective: ObjectiveSumOfMax, solve: partsTree("summax-tree", core.SumOfMaxTreeCtx)})
}
