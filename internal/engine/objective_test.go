package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestObjectiveString(t *testing.T) {
	tests := []struct {
		o    Objective
		want string
	}{
		{ObjectiveUnknown, "unknown"},
		{ObjectiveNone, "none"},
		{ObjectiveBandwidth, "bandwidth"},
		{ObjectiveBottleneck, "bottleneck"},
		{ObjectiveMinProcs, "minprocs"},
		{ObjectiveMaxMin, "maxmin"},
		{ObjectiveSumOfMax, "summax"},
		{Objective(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Objective(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

// Every registered production solver must declare its objective; the
// verification subsystem keys its certificate choice on it.
func TestObjectiveOfRegistry(t *testing.T) {
	want := map[string]Objective{
		"bandwidth":         ObjectiveBandwidth,
		"bandwidth-heap":    ObjectiveBandwidth,
		"bandwidth-deque":   ObjectiveBandwidth,
		"bandwidth-naive":   ObjectiveBandwidth,
		"bandwidth-limited": ObjectiveBandwidth,
		"minproc-path":      ObjectiveMinProcs,
		"bottleneck":        ObjectiveBottleneck,
		"bottleneck-greedy": ObjectiveBottleneck,
		"minproc":           ObjectiveMinProcs,
		// partition-tree minimizes processors subject to the optimal
		// bottleneck; the bottleneck value is what is certified.
		"partition-tree": ObjectiveBottleneck,
		"maxmin-path":    ObjectiveMaxMin,
		"maxmin-tree":    ObjectiveMaxMin,
		"summax-tree":    ObjectiveSumOfMax,
		// The NP-hard treecut tier opts out of certification explicitly:
		// ObjectiveNone is a declared policy, not a missing declaration.
		"treecut-exact":  ObjectiveNone,
		"treecut-bb":     ObjectiveNone,
		"treecut-greedy": ObjectiveNone,
	}
	for name, obj := range want {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if got := ObjectiveOf(s); got != obj {
			t.Errorf("ObjectiveOf(%q) = %v, want %v", name, got, obj)
		}
	}
}

// Part-count solvers must reject a fractional K before touching the core
// solver: the part count travels in the float64 K slot of every request
// shape, so the integral check is the engine adapter's job.
func TestPartCountSolversRejectFractionalK(t *testing.T) {
	p := testPath(t, 8)
	tr := testTree(t, 8)
	for _, tt := range []struct {
		solver string
		req    Request
	}{
		{"maxmin-path", Request{Solver: "maxmin-path", Path: p, K: 2.5}},
		{"maxmin-tree", Request{Solver: "maxmin-tree", Tree: tr, K: 2.5}},
		{"summax-tree", Request{Solver: "summax-tree", Tree: tr, K: 2.5}},
	} {
		if _, err := Solve(context.Background(), tt.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s with K=2.5: err = %v, want ErrBadRequest", tt.solver, err)
		}
	}
}

// Regression: every registered solver must take an explicit stance — a
// certifiable objective or the deliberate ObjectiveNone opt-out. A solver
// reporting ObjectiveUnknown slipped into the registry without declaring,
// and the verification harness would skip it by zero-value accident.
func TestRegistryDeclaresAllObjectives(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "test-") {
			// Throwaway solvers registered by other test files.
			continue
		}
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if ObjectiveOf(s) == ObjectiveUnknown {
			t.Errorf("solver %q reports ObjectiveUnknown; declare an objective or ObjectiveNone", name)
		}
	}
}

// noObjectiveSolver predates the Objectiver interface.
type noObjectiveSolver struct{}

func (noObjectiveSolver) Name() string { return "engine-test-no-objective" }
func (noObjectiveSolver) Kind() Kind   { return KindPath }
func (noObjectiveSolver) Solve(ctx context.Context, req Request) (Result, error) {
	return Result{}, nil
}

func TestObjectiveOfDefaultsToUnknown(t *testing.T) {
	if got := ObjectiveOf(noObjectiveSolver{}); got != ObjectiveUnknown {
		t.Errorf("ObjectiveOf(plain solver) = %v, want ObjectiveUnknown", got)
	}
}
