package engine

import (
	"context"
	"testing"
)

func TestObjectiveString(t *testing.T) {
	tests := []struct {
		o    Objective
		want string
	}{
		{ObjectiveUnknown, "unknown"},
		{ObjectiveBandwidth, "bandwidth"},
		{ObjectiveBottleneck, "bottleneck"},
		{ObjectiveMinProcs, "minprocs"},
		{Objective(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Objective(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

// Every registered production solver must declare its objective; the
// verification subsystem keys its certificate choice on it.
func TestObjectiveOfRegistry(t *testing.T) {
	want := map[string]Objective{
		"bandwidth":         ObjectiveBandwidth,
		"bandwidth-heap":    ObjectiveBandwidth,
		"bandwidth-deque":   ObjectiveBandwidth,
		"bandwidth-naive":   ObjectiveBandwidth,
		"bandwidth-limited": ObjectiveBandwidth,
		"minproc-path":      ObjectiveMinProcs,
		"bottleneck":        ObjectiveBottleneck,
		"bottleneck-greedy": ObjectiveBottleneck,
		"minproc":           ObjectiveMinProcs,
		// partition-tree minimizes processors subject to the optimal
		// bottleneck; the bottleneck value is what is certified.
		"partition-tree": ObjectiveBottleneck,
	}
	for name, obj := range want {
		s, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if got := ObjectiveOf(s); got != obj {
			t.Errorf("ObjectiveOf(%q) = %v, want %v", name, got, obj)
		}
	}
}

// noObjectiveSolver predates the Objectiver interface.
type noObjectiveSolver struct{}

func (noObjectiveSolver) Name() string { return "engine-test-no-objective" }
func (noObjectiveSolver) Kind() Kind   { return KindPath }
func (noObjectiveSolver) Solve(ctx context.Context, req Request) (Result, error) {
	return Result{}, nil
}

func TestObjectiveOfDefaultsToUnknown(t *testing.T) {
	if got := ObjectiveOf(noObjectiveSolver{}); got != ObjectiveUnknown {
		t.Errorf("ObjectiveOf(plain solver) = %v, want ObjectiveUnknown", got)
	}
}
