package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func testPath(t testing.TB, n int) *graph.Path {
	t.Helper()
	r := workload.NewRNG(1)
	return workload.RandomPath(r, n, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
}

func testTree(t testing.TB, n int) *graph.Tree {
	t.Helper()
	r := workload.NewRNG(2)
	return workload.RandomTree(r, n, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
}

func TestRegistryLookup(t *testing.T) {
	tests := []struct {
		name    string
		solver  string
		wantErr error
	}{
		{"known bandwidth", "bandwidth", nil},
		{"known tree pipeline", "partition-tree", nil},
		{"unknown", "no-such-solver", ErrUnknownSolver},
		{"empty", "", ErrUnknownSolver},
		{"case sensitive", "Bandwidth", ErrUnknownSolver},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Get(tc.solver)
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("Get(%q) err = %v, want %v", tc.solver, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Get(%q): %v", tc.solver, err)
			}
			if s.Name() != tc.solver {
				t.Errorf("Name() = %q, want %q", s.Name(), tc.solver)
			}
		})
	}
	// Solve must surface the same error for unknown names.
	if _, err := Solve(context.Background(), Request{Solver: "nope"}); !errors.Is(err, ErrUnknownSolver) {
		t.Errorf("Solve(unknown) err = %v, want ErrUnknownSolver", err)
	}
}

func TestNamesContainsAllPaperAlgorithms(t *testing.T) {
	want := []string{
		"bandwidth", "bandwidth-deque", "bandwidth-heap", "bandwidth-limited",
		"bandwidth-naive", "bottleneck", "bottleneck-greedy", "maxmin-path",
		"maxmin-tree", "minproc", "minproc-path", "partition-tree",
		"summax-tree",
	}
	names := Names()
	got := make(map[string]bool, len(names))
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("Names() missing %q (got %v)", w, names)
		}
	}
}

// TestSolveMatchesDirectCalls checks every registered solver returns exactly
// the partition of the underlying core function.
func TestSolveMatchesDirectCalls(t *testing.T) {
	p := testPath(t, 500)
	tr := testTree(t, 500)
	kp := 4 * p.MaxNodeWeight()
	kt := 4 * tr.MaxNodeWeight()

	tests := []struct {
		solver string
		req    Request
		direct func() ([]int, float64, error)
	}{
		{"bandwidth", Request{Path: p, K: kp}, func() ([]int, float64, error) {
			pp, err := core.Bandwidth(p, kp)
			if err != nil {
				return nil, 0, err
			}
			return pp.Cut, pp.CutWeight, nil
		}},
		{"bandwidth-heap", Request{Path: p, K: kp}, func() ([]int, float64, error) {
			pp, err := core.BandwidthHeap(p, kp)
			if err != nil {
				return nil, 0, err
			}
			return pp.Cut, pp.CutWeight, nil
		}},
		{"bandwidth-deque", Request{Path: p, K: kp}, func() ([]int, float64, error) {
			pp, err := core.BandwidthDeque(p, kp)
			if err != nil {
				return nil, 0, err
			}
			return pp.Cut, pp.CutWeight, nil
		}},
		{"bandwidth-naive", Request{Path: p, K: kp}, func() ([]int, float64, error) {
			pp, err := core.BandwidthNaive(p, kp)
			if err != nil {
				return nil, 0, err
			}
			return pp.Cut, pp.CutWeight, nil
		}},
		{"bandwidth-limited", Request{Path: p, K: kp, Options: Options{MaxComponents: 200}}, func() ([]int, float64, error) {
			pp, err := core.BandwidthLimited(p, kp, 200)
			if err != nil {
				return nil, 0, err
			}
			return pp.Cut, pp.CutWeight, nil
		}},
		{"minproc-path", Request{Path: p, K: kp}, func() ([]int, float64, error) {
			pp, err := core.MinProcessorsPath(p, kp)
			if err != nil {
				return nil, 0, err
			}
			return pp.Cut, pp.CutWeight, nil
		}},
		{"bottleneck", Request{Tree: tr, K: kt}, func() ([]int, float64, error) {
			tp, err := core.Bottleneck(tr, kt)
			if err != nil {
				return nil, 0, err
			}
			return tp.Cut, tp.CutWeight, nil
		}},
		{"bottleneck-greedy", Request{Tree: tr, K: kt}, func() ([]int, float64, error) {
			tp, err := core.BottleneckGreedy(tr, kt)
			if err != nil {
				return nil, 0, err
			}
			return tp.Cut, tp.CutWeight, nil
		}},
		{"minproc", Request{Tree: tr, K: kt}, func() ([]int, float64, error) {
			tp, err := core.MinProcessors(tr, kt)
			if err != nil {
				return nil, 0, err
			}
			return tp.Cut, tp.CutWeight, nil
		}},
		{"partition-tree", Request{Tree: tr, K: kt}, func() ([]int, float64, error) {
			tp, err := core.PartitionTree(tr, kt)
			if err != nil {
				return nil, 0, err
			}
			return tp.Cut, tp.CutWeight, nil
		}},
	}
	for _, tc := range tests {
		t.Run(tc.solver, func(t *testing.T) {
			tc.req.Solver = tc.solver
			res, err := Solve(context.Background(), tc.req)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			wantCut, wantW, err := tc.direct()
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			if len(res.Cut) != len(wantCut) {
				t.Fatalf("cut = %v, want %v", res.Cut, wantCut)
			}
			for i := range res.Cut {
				if res.Cut[i] != wantCut[i] {
					t.Fatalf("cut = %v, want %v", res.Cut, wantCut)
				}
			}
			if res.CutWeight != wantW {
				t.Errorf("cut weight = %v, want %v", res.CutWeight, wantW)
			}
			if res.Solver != tc.solver {
				t.Errorf("Result.Solver = %q, want %q", res.Solver, tc.solver)
			}
			if res.Stats.Duration <= 0 {
				t.Errorf("Stats.Duration = %v, want > 0", res.Stats.Duration)
			}
		})
	}
}

func TestBadRequests(t *testing.T) {
	p := testPath(t, 10)
	tests := []struct {
		name string
		req  Request
	}{
		{"path solver without a graph", Request{Solver: "bandwidth", K: 100}},
		{"path solver with only a tree", Request{Solver: "bandwidth", Tree: testTree(t, 10), K: 100}},
		{"tree solver without a graph", Request{Solver: "bottleneck", K: 100}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Solve(context.Background(), tc.req); !errors.Is(err, ErrBadRequest) {
				t.Errorf("err = %v, want ErrBadRequest", err)
			}
		})
	}
	// A tree solver accepts a path input by converting it.
	res, err := Solve(context.Background(), Request{Solver: "minproc", Path: p, K: 4 * p.MaxNodeWeight()})
	if err != nil {
		t.Fatalf("minproc on path: %v", err)
	}
	if res.TreePartition == nil {
		t.Error("minproc on path: TreePartition not set")
	}
}

// TestCancellation covers the acceptance criterion: a cancelled context
// stops a solve on a ≥100k-node path and returns context.Canceled.
func TestCancellation(t *testing.T) {
	big := testPath(t, 100_000)
	bigTree := testTree(t, 100_000)
	solvers := []struct {
		solver string
		req    Request
	}{
		{"bandwidth", Request{Path: big, K: 4 * big.MaxNodeWeight()}},
		{"bandwidth-heap", Request{Path: big, K: 4 * big.MaxNodeWeight()}},
		{"bandwidth-deque", Request{Path: big, K: 4 * big.MaxNodeWeight()}},
		{"bandwidth-naive", Request{Path: big, K: big.TotalNodeWeight() / 2}},
		{"bottleneck", Request{Tree: bigTree, K: 4 * bigTree.MaxNodeWeight()}},
		{"minproc", Request{Tree: bigTree, K: 4 * bigTree.MaxNodeWeight()}},
		{"partition-tree", Request{Tree: bigTree, K: 4 * bigTree.MaxNodeWeight()}},
	}
	for _, tc := range solvers {
		t.Run("pre-cancelled/"+tc.solver, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			tc.req.Solver = tc.solver
			if _, err := Solve(ctx, tc.req); !errors.Is(err, context.Canceled) {
				t.Errorf("err = %v, want context.Canceled", err)
			}
		})
	}
	// Mid-solve cancellation: bandwidth-naive with K = total weight scans a
	// quadratic window (~5·10⁹ prefix probes at n=100k — minutes of work),
	// so a prompt return proves the in-loop poll fired.
	t.Run("mid-solve", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(20 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		_, err := Solve(ctx, Request{Solver: "bandwidth-naive", Path: big, K: big.TotalNodeWeight() / 2})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("solve took %v after cancellation, want prompt abort", elapsed)
		}
	})
	// Options.Timeout is the per-request deadline path.
	t.Run("timeout", func(t *testing.T) {
		req := Request{
			Solver:  "bandwidth-naive",
			Path:    big,
			K:       big.TotalNodeWeight() / 2,
			Options: Options{Timeout: 20 * time.Millisecond},
		}
		if _, err := Solve(context.Background(), req); !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("err = %v, want context.DeadlineExceeded", err)
		}
	})
}

func TestObserverAndStats(t *testing.T) {
	p := testPath(t, 1000)
	k := 4 * p.MaxNodeWeight()
	col := NewCollector()
	res, err := Solve(context.Background(), Request{
		Solver:  "bandwidth-deque",
		Path:    p,
		K:       k,
		Options: Options{Observer: col, TrackAllocs: true},
	})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Stats.Iterations == 0 {
		t.Error("Stats.Iterations = 0, want > 0")
	}
	if res.Stats.Allocs == 0 {
		t.Error("Stats.Allocs = 0 with TrackAllocs, want > 0")
	}
	snap := col.Snapshot()
	agg, ok := snap["bandwidth-deque"]
	if !ok {
		t.Fatalf("collector missing solver entry: %v", snap)
	}
	if agg.Solves != 1 || agg.Errors != 0 {
		t.Errorf("aggregate = %+v, want 1 solve, 0 errors", agg)
	}
	if agg.TotalIterations != res.Stats.Iterations {
		t.Errorf("aggregate iterations %d != result iterations %d", agg.TotalIterations, res.Stats.Iterations)
	}

	// The engine-wide observer sees solves too, including failures.
	var events []Event
	prev := SetObserver(ObserverFunc(func(e Event) { events = append(events, e) }))
	defer SetObserver(prev)
	if _, err := Solve(context.Background(), Request{Solver: "bandwidth", Path: p, K: -1}); err == nil {
		t.Fatal("want error for K = -1")
	}
	if len(events) != 1 || events[0].Err == nil || events[0].Solver != "bandwidth" {
		t.Errorf("global observer events = %+v, want one failed bandwidth event", events)
	}
}

func TestErrorPassThrough(t *testing.T) {
	p := testPath(t, 50)
	// Sentinel errors from core must survive the engine unwrapped.
	if _, err := Solve(context.Background(), Request{Solver: "bandwidth", Path: p, K: 0.5}); !errors.Is(err, core.ErrInfeasible) {
		t.Errorf("err = %v, want core.ErrInfeasible", err)
	}
	if _, err := Solve(context.Background(), Request{Solver: "bandwidth", Path: p, K: -3}); !errors.Is(err, core.ErrBadBound) {
		t.Errorf("err = %v, want core.ErrBadBound", err)
	}
	if _, err := Solve(context.Background(), Request{Solver: "bandwidth-limited", Path: p, K: 100}); !errors.Is(err, core.ErrBadBound) {
		t.Errorf("bandwidth-limited with MaxComponents=0: err = %v, want core.ErrBadBound", err)
	}
}
