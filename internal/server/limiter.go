package server

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull is returned by Limiter.Acquire when both the concurrency
// slots and the wait queue are saturated; the HTTP layer maps it to
// 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("server: admission queue full")

// Limiter is the admission controller: at most MaxConcurrent solves run at
// once, at most MaxQueue more wait for a slot, and anything beyond that is
// shed immediately. Waiters honor their context, so a queued request whose
// deadline expires (or whose client disconnects) leaves the queue without
// ever starting to solve.
type Limiter struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64

	// releaseFn is the one shared release closure; binding l.release at
	// every Acquire would allocate a method value per admission.
	releaseFn func()

	admitted      atomic.Uint64
	shedQueueFull atomic.Uint64
	shedDeadline  atomic.Uint64
}

// NewLimiter builds a limiter admitting maxConcurrent concurrent holders
// with a wait queue of maxQueue. maxConcurrent < 1 is clamped to 1;
// maxQueue < 0 is clamped to 0 (shed immediately when slots are taken).
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	l := &Limiter{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
	l.releaseFn = l.release
	return l
}

// TryAcquire obtains a slot only when one is immediately free, never
// queueing. It lets callers skip building a queue-wait context (deadline
// timer and all) on the uncontended path.
func (l *Limiter) TryAcquire() (release func(), ok bool) {
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFn, true
	default:
		return nil, false
	}
}

// Acquire obtains a slot, waiting in the bounded queue if necessary. It
// returns a release function that must be called exactly once, or
// ErrQueueFull when the queue is saturated, or ctx.Err() when the context
// ends while waiting.
func (l *Limiter) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFn, nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.shedQueueFull.Add(1)
		return nil, ErrQueueFull
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		l.admitted.Add(1)
		return l.releaseFn, nil
	case <-ctx.Done():
		l.shedDeadline.Add(1)
		return nil, ctx.Err()
	}
}

func (l *Limiter) release() { <-l.slots }

// LimiterStats snapshots the admission counters and gauges.
type LimiterStats struct {
	InFlight      int
	Queued        int
	MaxConcurrent int
	MaxQueue      int
	Admitted      uint64
	ShedQueueFull uint64
	ShedDeadline  uint64
}

// Stats snapshots the limiter. Gauges are instantaneous and may be stale by
// the time the caller reads them.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		InFlight:      len(l.slots),
		Queued:        int(l.queued.Load()),
		MaxConcurrent: cap(l.slots),
		MaxQueue:      int(l.maxQueue),
		Admitted:      l.admitted.Load(),
		ShedQueueFull: l.shedQueueFull.Load(),
		ShedDeadline:  l.shedDeadline.Load(),
	}
}
