package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// The cluster-aware solve path. With a cluster configured, every /v1/solve
// cache miss on a graph this node does not own is forwarded to the owning
// peer as a PSV1 binary frame; the owner answers with the PRS1 frame it
// would serve locally (so binary clients get byte-identical results whether
// or not their request crossed a node boundary). Forwarding is best-effort:
// any failure falls back to a local solve, so a dead owner costs dedup and
// cache locality, never availability.
//
// With or without a cluster, misses resolve under a single-flight group. The
// flight value is the canonical PRS1 frame regardless of what the requester
// negotiated — JSON waiters render from the frame (the encoding is lossless:
// floats travel as their exact bits) — so the flight key normalizes the
// response format away and N identical concurrent misses perform exactly one
// engine solve no matter how the callers mix JSON and binary. Forwarded
// internal requests land on the owner with that same normalized key, which is
// what makes the dedup cluster-wide: a thundering herd on one hot graph,
// spread across every node, collapses to a single solve on the owner.

// flightBody is a resolved solve miss as shared through the single-flight
// group: the canonical PRS1 frame, where it came from (for the X-Cluster
// response header), and — for traced requests and remote-parented internal
// solves — the request's own span tree plus its trace ID.
type flightBody struct {
	body    []byte
	via     string        // forwarding peer URL; empty for a local solve
	tree    *obs.SpanNode // non-nil for traced requests and remote-parented solves
	traceID string        // set alongside tree; rendered as the JSON traceId field
}

// httpError carries an HTTP status through the single-flight group, so shed
// decisions (429/503) made by a flight leader reach every joined waiter.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// clusterMetrics attributes cache lookups to the requester tier: "local"
// for external clients of this node, "peer" for forwarded internal requests
// from other cluster nodes (the owner serving its shard).
type clusterMetrics struct {
	localHits, localMisses atomic.Uint64
	peerHits, peerMisses   atomic.Uint64
}

func (m *clusterMetrics) observeLookup(internal, hit bool) {
	switch {
	case internal && hit:
		m.peerHits.Add(1)
	case internal:
		m.peerMisses.Add(1)
	case hit:
		m.localHits.Add(1)
	default:
		m.localMisses.Add(1)
	}
}

// acquireSlotCtx admits one unit of solve work, queueing under QueueTimeout
// bounded also by ctx. Shed outcomes come back as *httpError so they can
// travel through the single-flight group and be written by any waiter.
func (s *Server) acquireSlotCtx(ctx context.Context) (release func(), err error) {
	if release, ok := s.limiter.TryAcquire(); ok {
		return release, nil
	}
	qctx, qcancel := context.WithTimeout(ctx, s.cfg.QueueTimeout)
	release, aerr := s.limiter.Acquire(qctx)
	qcancel()
	if aerr != nil {
		if errors.Is(aerr, ErrQueueFull) {
			return nil, &httpError{status: http.StatusTooManyRequests, msg: "admission queue full"}
		}
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: "timed out waiting for a solve slot"}
	}
	return release, nil
}

// writeSolveError maps a resolve error to its response: explicit HTTP
// statuses pass through, engine/solve errors map via solveStatus.
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		s.writeError(w, he.status, he.msg)
		return
	}
	s.writeError(w, solveStatus(err), err.Error())
}

// solveTimeoutOf resolves the effective engine deadline for a requested
// timeoutMs: the server default when unset, clamped to the server maximum.
func (s *Server) solveTimeoutOf(ms int64) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// resolveMiss computes the canonical PRS1 frame for a cache miss: forwarded
// to the owning peer when a cluster is configured and this node does not own
// the graph, a local engine solve otherwise (and as the fallback for any
// failed forward). Usually runs as a single-flight leader; internal marks
// requests that already crossed a node boundary and must not be forwarded
// again. Rendering into the negotiated response format and the cache fill
// are the caller's job.
//
// Every miss runs under a trace: the phase spans feed the per-phase metrics
// and the flight recorder whether or not the client asked for the tree back.
// Internal requests adopt the caller's propagated trace identity (same trace
// ID cluster-wide, this node's root parented under the caller's forward
// span); their tree travels back in the response trailer so the caller can
// graft it. The "solve " root-name prefix only matters when the tree is
// rendered into a response; skipping the concat keeps the untraced hot path
// one allocation cheaper.
func (s *Server) resolveMiss(ctx context.Context, p *parsedSolve, internal bool) (flightBody, error) {
	name := p.req.Solver
	if p.req.Trace {
		name = "solve " + p.req.Solver
	}
	tr := obs.New(name)
	tr.RequestID = obs.RequestIDFrom(ctx)
	rem, hasRemote := obs.RemoteFromContext(ctx)
	if internal && hasRemote {
		tr.ID = rem.Trace
		tr.Parent = rem.Span
	} else {
		hasRemote = false
	}
	tctx := obs.NewContext(ctx, tr)

	var fb flightBody
	var err error
	forwarded := false
	if s.cluster != nil && !internal && !p.req.NoCache {
		if peer, local := s.cluster.Route(p.fp); !local {
			fb, forwarded = s.forwardSolve(tctx, tr, p, peer)
		}
	}
	if !forwarded {
		fb, err = s.solveLocal(tctx, p, internal)
	}
	tr.Finish()
	if err == nil && (p.req.Trace || hasRemote) {
		fb.tree = tr.Tree()
		fb.traceID = tr.ID.String()
	}
	s.offerTrace(flight.Info{
		Trace:     tr,
		Kind:      "solve",
		Solver:    p.req.Solver,
		Status:    errStatus(err),
		Err:       errMessage(err),
		Forwarded: forwarded,
		Remote:    hasRemote,
		Peer:      fb.via,
	})
	return fb, err
}

// errStatus maps a resolve error to the HTTP status it will be written as.
func errStatus(err error) int {
	if err == nil {
		return http.StatusOK
	}
	var he *httpError
	if errors.As(err, &he) {
		return he.status
	}
	return solveStatus(err)
}

func errMessage(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// forwardSolve encodes the parsed request as a PSV1 frame and asks the
// owning peer to solve it, returning the owner's PRS1 frame. The hop runs
// under a cluster-forward span whose identity travels in the trace header;
// when the owner answers with its span tree in the response trailer, that
// tree is grafted under the span — one request, one tree, cluster-wide.
// Reports ok=false on any failure, leaving the caller to solve locally; the
// cluster transport has already recorded the outcome and marked the peer
// dead when the failure was transport-level.
func (s *Server) forwardSolve(ctx context.Context, tr *obs.Trace, p *parsedSolve, peer string) (flightBody, bool) {
	// Trace and noCache are local concerns and do not cross the hop; the
	// owner always answers the cacheable untraced binary form.
	frame, err := AppendSolveRequest(nil, SolveParams{
		Solver:        p.req.Solver,
		K:             p.req.K,
		MaxComponents: p.req.MaxComponents,
		TimeoutMs:     p.req.TimeoutMs,
		Verify:        p.req.Verify,
	}, p.g)
	if err != nil {
		return flightBody{}, false
	}
	// The forward deadline covers the owner's worst case: its admission
	// queue wait plus the solve deadline we asked for, with margin.
	fwdCtx, cancel := context.WithTimeout(ctx, s.solveTimeoutOf(p.req.TimeoutMs)+s.cfg.QueueTimeout+2*time.Second)
	defer cancel()
	sp := obs.Phase(ctx, "cluster-forward")
	sp.SetAttr("peer", peer)
	hdr := obs.FormatTraceHeader(obs.Remote{Trace: tr.ID, Span: sp.ID, Flags: obs.FlagSampled})
	body, _, spans, err := s.cluster.ForwardSolve(fwdCtx, peer, frame, obs.RequestIDFrom(ctx), hdr)
	defer sp.End()
	if err != nil {
		s.cfg.Logger.Warn("cluster forward failed, solving locally",
			"peer", peer, "solver", p.req.Solver, "err", err)
		return flightBody{}, false
	}
	// Validate the frame before sharing it: waiters of every format render
	// from these bytes, and a corrupt answer must degrade to a local solve,
	// not surface as a 500.
	if _, rest, err := DecodeSolveResult(body); err != nil || len(rest) != 0 {
		s.cfg.Logger.Warn("cluster forward returned a bad frame, solving locally",
			"peer", peer, "err", err)
		return flightBody{}, false
	}
	if len(spans) > 0 {
		var node obs.SpanNode
		if jerr := json.Unmarshal(spans, &node); jerr == nil && node.Name != "" {
			if node.Attrs == nil {
				node.Attrs = make(map[string]any, 2)
			}
			node.Attrs["remote"] = true
			node.Attrs["peer"] = peer
			sp.Graft(&node)
		}
	}
	return flightBody{body: body, via: peer}, true
}

// solveLocal runs the engine for a miss on this node under the trace already
// in ctx: admission, solve, certification, and rendering into the canonical
// PRS1 frame. internal requests (forwarded from a peer) nest the solve under
// a remote-solve span so traces show which solves served the cluster rather
// than this node's own clients.
func (s *Server) solveLocal(ctx context.Context, p *parsedSolve, internal bool) (flightBody, error) {
	release, err := s.acquireSlotCtx(ctx)
	if err != nil {
		return flightBody{}, err
	}
	defer release()
	ser := s.solvem.enter(p.req.Solver)
	defer s.solvem.exit(ser)

	tctx := ctx
	if internal {
		var sp *obs.Span
		tctx, sp = obs.StartSpan(ctx, "remote-solve")
		defer sp.End()
	}
	ereq := s.engineRequest(*p, 0)
	res, err := engine.Solve(tctx, ereq)
	if err != nil {
		return flightBody{}, err
	}
	var cert *verifyInfo
	if p.req.Verify {
		cert = s.certifyResult(ereq, res)
	}
	return flightBody{body: appendSolveResult(nil, p.fp, res, cert)}, nil
}

// renderJSONResult renders the JSON solve response from the canonical PRS1
// frame — the rendering half of the solve path, shared by local solves,
// forwarded results, and single-flight waiters alike. Field-for-field it
// produces the same bytes marshalResult does for the same solve: the frame
// carries every float as its exact bits.
func renderJSONResult(frame []byte, trace *obs.SpanNode, traceID string) ([]byte, error) {
	sr, rest, err := DecodeSolveResult(frame)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errBadFrame
	}
	var body solveResponse
	body.Solver = sr.Solver
	body.K = sr.K
	body.Cut = sr.Cut
	if body.Cut == nil {
		body.Cut = []int{}
	}
	body.CutWeight = sr.CutWeight
	body.Bottleneck = sr.Bottleneck
	body.ComponentWeights = sr.ComponentWeights
	body.NumComponents = len(sr.ComponentWeights)
	body.Fingerprint = fmt.Sprintf("%016x", sr.Fingerprint)
	body.Verify = sr.Verify
	body.Trace = trace
	body.TraceID = traceID
	body.Stats.DurationMs = sr.DurationMs
	body.Stats.Iterations = sr.Iterations
	return json.Marshal(&body)
}

// clusterEnvelope is the cluster summary inside the /v1/solvers envelope.
type clusterEnvelope struct {
	Enabled bool   `json:"enabled"`
	Self    string `json:"self,omitempty"`
	Size    int    `json:"size,omitempty"`
	Alive   int    `json:"alive,omitempty"`
}

// clusterResponse is the body of GET /v1/cluster.
type clusterResponse struct {
	Enabled      bool                 `json:"enabled"`
	Self         string               `json:"self,omitempty"`
	VirtualNodes int                  `json:"virtualNodes,omitempty"`
	Peers        []cluster.PeerStatus `json:"peers,omitempty"`
	Alive        int                  `json:"alive,omitempty"`
	Forwards     cluster.ForwardStats `json:"forwards"`
	Singleflight singleflightInfo     `json:"singleflight"`
}

type singleflightInfo struct {
	Leads  uint64 `json:"leads"`
	Shared uint64 `json:"shared"`
}

// handleCluster is GET /v1/cluster: this node's membership view, forward
// counters, and single-flight stats. Answers on every node — clustered or
// not — so operators can probe any address the same way.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var resp clusterResponse
	leads, shared := s.flight.Stats()
	resp.Singleflight = singleflightInfo{Leads: leads, Shared: shared}
	if s.cluster != nil {
		st := s.cluster.Status()
		resp.Enabled = true
		resp.Self = st.Self
		resp.VirtualNodes = st.VirtualNodes
		resp.Peers = st.Peers
		resp.Alive = st.Alive
		resp.Forwards = st.Forwards
	}
	body, _ := json.Marshal(&resp)
	writeJSON(w, http.StatusOK, body)
}

// writeClusterMetrics renders the cache-tier, single-flight, and cluster
// series. The first two exist on every node; the cluster families only when
// clustering is configured.
func (s *Server) writeClusterMetrics(w io.Writer) {
	m := &s.clusterm
	fmt.Fprintf(w, "# HELP partitiond_cache_requests_total Result cache lookups by requester tier (local clients vs forwarded peer requests) and outcome.\n")
	fmt.Fprintf(w, "# TYPE partitiond_cache_requests_total counter\n")
	fmt.Fprintf(w, "partitiond_cache_requests_total{tier=\"local\",result=\"hit\"} %d\n", m.localHits.Load())
	fmt.Fprintf(w, "partitiond_cache_requests_total{tier=\"local\",result=\"miss\"} %d\n", m.localMisses.Load())
	fmt.Fprintf(w, "partitiond_cache_requests_total{tier=\"peer\",result=\"hit\"} %d\n", m.peerHits.Load())
	fmt.Fprintf(w, "partitiond_cache_requests_total{tier=\"peer\",result=\"miss\"} %d\n", m.peerMisses.Load())

	leads, shared := s.flight.Stats()
	fmt.Fprintf(w, "# HELP partitiond_singleflight_total Solve-miss single-flight outcomes: led executions vs results shared from a concurrent identical miss.\n")
	fmt.Fprintf(w, "# TYPE partitiond_singleflight_total counter\n")
	fmt.Fprintf(w, "partitiond_singleflight_total{result=\"lead\"} %d\n", leads)
	fmt.Fprintf(w, "partitiond_singleflight_total{result=\"shared\"} %d\n", shared)

	if s.cluster == nil {
		return
	}
	st := s.cluster.Status()
	fmt.Fprintf(w, "# HELP partitiond_cluster_forwards_total Solves forwarded to owning peers by outcome (hit/miss = owner's cache answer; error = failed forward, solved locally).\n")
	fmt.Fprintf(w, "# TYPE partitiond_cluster_forwards_total counter\n")
	fmt.Fprintf(w, "partitiond_cluster_forwards_total{outcome=\"hit\"} %d\n", st.Forwards.Hit)
	fmt.Fprintf(w, "partitiond_cluster_forwards_total{outcome=\"miss\"} %d\n", st.Forwards.Miss)
	fmt.Fprintf(w, "partitiond_cluster_forwards_total{outcome=\"error\"} %d\n", st.Forwards.Errors)
	fmt.Fprintf(w, "# HELP partitiond_cluster_peers Cluster peers by health state, from this node's view (self counts as alive).\n")
	fmt.Fprintf(w, "# TYPE partitiond_cluster_peers gauge\n")
	fmt.Fprintf(w, "partitiond_cluster_peers{state=\"alive\"} %d\n", st.Alive)
	fmt.Fprintf(w, "partitiond_cluster_peers{state=\"dead\"} %d\n", len(st.Peers)-st.Alive)
}
