package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterBasicAcquireRelease(t *testing.T) {
	l := NewLimiter(2, 0)
	r1, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	r2, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if st := l.Stats(); st.InFlight != 2 || st.Admitted != 2 {
		t.Errorf("stats = %+v, want 2 in flight / 2 admitted", st)
	}
	// Both slots taken, zero queue: immediate shed.
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Acquire err = %v, want ErrQueueFull", err)
	}
	r1()
	r3, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	r2()
	r3()
	st := l.Stats()
	if st.InFlight != 0 || st.ShedQueueFull != 1 || st.Admitted != 3 {
		t.Errorf("final stats = %+v, want 0 in flight / 1 shed / 3 admitted", st)
	}
}

func TestLimiterQueueAdmitsWhenSlotFrees(t *testing.T) {
	l := NewLimiter(1, 1)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background()) // queues
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait until the waiter is provably queued, then free the slot.
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued Acquire err = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued waiter never admitted")
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := NewLimiter(1, 1)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	waiting := make(chan struct{})
	go func() {
		close(waiting)
		l.Acquire(ctx) // occupies the single queue slot until cancel
	}()
	<-waiting
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Acquire err = %v, want ErrQueueFull", err)
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := NewLimiter(1, 4)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := l.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Acquire err = %v, want DeadlineExceeded", err)
	}
	st := l.Stats()
	if st.ShedDeadline != 1 {
		t.Errorf("shedDeadline = %d, want 1", st.ShedDeadline)
	}
	if st.Queued != 0 {
		t.Errorf("queued = %d after deadline, want 0", st.Queued)
	}
}
