package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// The flight-recorder query API. GET /v1/traces lists retained traces
// (newest first, filterable); GET /v1/traces/{id} returns one trace with its
// span tree, or — with ?format=chrome — as a Chrome trace-event document
// loadable in chrome://tracing and Perfetto. Both answer on every node; in a
// cluster each node serves the traces it retained, and a forwarded solve is
// retained on both sides under the same trace ID.

// offerTrace hands a finished request trace to the flight recorder and, when
// it was retained, links the solver's latency-histogram bucket to it as an
// exemplar. Forwarded traces are skipped for exemplars — the duration was the
// hop, not this node's solver — as are shed requests, which never reached the
// engine. Nil-safe when the recorder is disabled.
func (s *Server) offerTrace(info flight.Info) {
	rec, reason := s.recorder.Offer(info)
	if rec != nil && !info.Forwarded && reason != flight.ReasonShed {
		s.solvem.setExemplar(info.Solver, rec.Duration, rec.TraceID)
	}
}

// traceListResponse is the body of GET /v1/traces.
type traceListResponse struct {
	Enabled bool             `json:"enabled"`
	Total   int              `json:"total"` // retained traces resident in the store
	Traces  []*flight.Record `json:"traces"`
}

// handleTraceList is GET /v1/traces: the retained traces, newest first.
// Query parameters: solver, outcome (ok|error|shed), minDurationMs, since
// (either a look-back duration like "5m" or an RFC3339 timestamp), limit
// (default 100, capped at 1000).
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	resp := traceListResponse{Traces: []*flight.Record{}}
	if s.recorder == nil {
		body, _ := json.Marshal(&resp)
		writeJSON(w, http.StatusOK, body)
		return
	}
	resp.Enabled = true
	q := flight.Query{
		Solver:  r.URL.Query().Get("solver"),
		Outcome: r.URL.Query().Get("outcome"),
		Limit:   100,
	}
	if v := r.URL.Query().Get("minDurationMs"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			s.writeError(w, http.StatusBadRequest, `"minDurationMs" must be a non-negative number`)
			return
		}
		q.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := r.URL.Query().Get("since"); v != "" {
		if d, err := time.ParseDuration(v); err == nil && d > 0 {
			q.Since = time.Now().Add(-d)
		} else if ts, err := time.Parse(time.RFC3339, v); err == nil {
			q.Since = ts
		} else {
			s.writeError(w, http.StatusBadRequest, `"since" must be a look-back duration ("5m") or an RFC3339 timestamp`)
			return
		}
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.writeError(w, http.StatusBadRequest, `"limit" must be a positive integer`)
			return
		}
		q.Limit = n
	}
	if q.Limit > 1000 {
		q.Limit = 1000
	}
	if got := s.recorder.List(q); got != nil {
		resp.Traces = got
	}
	resp.Total = s.recorder.Stats().Traces
	body, _ := json.Marshal(&resp)
	writeJSON(w, http.StatusOK, body)
}

// traceGetResponse is the body of GET /v1/traces/{id}: the record plus its
// span tree.
type traceGetResponse struct {
	*flight.Record
	Tree json.RawMessage `json:"tree,omitempty"`
}

// handleTraceGet is GET /v1/traces/{id}. With ?format=chrome the span tree
// renders as a Chrome trace-event document instead of the JSON record.
func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		s.writeError(w, http.StatusNotFound, "flight recorder is disabled")
		return
	}
	rec, ok := s.recorder.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, "no retained trace with that ID (evicted or never recorded)")
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		var root obs.SpanNode
		if err := json.Unmarshal(rec.Tree, &root); err != nil {
			s.writeError(w, http.StatusInternalServerError, "stored span tree is unreadable: "+err.Error())
			return
		}
		meta := map[string]string{"traceId": rec.TraceID}
		if rec.RequestID != "" {
			meta["requestId"] = rec.RequestID
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		obs.WriteChromeNode(w, &root, meta)
		return
	}
	body, _ := json.Marshal(&traceGetResponse{Record: rec, Tree: rec.Tree})
	writeJSON(w, http.StatusOK, body)
}
