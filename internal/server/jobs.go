package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// The async jobs API. A solve submitted as a job outlives its HTTP request:
// POST /v1/jobs answers 202 immediately with a job ID, the solve runs on the
// job worker pool (sharing admission slots with the synchronous routes), and
// the client follows along over GET /v1/jobs/{id}/events — a Server-Sent
// Events stream of state transitions and live solve-phase spans — or polls
// GET /v1/jobs/{id}. DELETE /v1/jobs/{id} cancels; the engine's context
// plumbing aborts the solver mid-loop. Results are retained for
// Config.JobRetention and flow through the same fingerprint-keyed cache as
// /v1/solve, and a submission identical to a queued or running job
// (fingerprint, solver, K, options) joins it instead of solving twice.

// jobSubmitRequest is the JSON body of POST /v1/jobs: a solve request plus
// queue placement. Binary (PSV1) bodies carry the same solve fields and take
// the priority from the "priority" query parameter.
type jobSubmitRequest struct {
	solveRequest
	// Priority orders the job queue; higher runs first (default 0).
	Priority int `json:"priority,omitempty"`
}

// jobSubmitResponse is the 202 body of POST /v1/jobs.
type jobSubmitResponse struct {
	jobs.Snapshot
	// Joined is true when the submission deduplicated onto an existing
	// queued or running job — Snapshot describes that job.
	Joined bool `json:"joined,omitempty"`
	// EventsURL is the job's SSE stream path.
	EventsURL string `json:"eventsUrl"`
}

// jobStatusResponse is the body of GET /v1/jobs/{id}: the snapshot, plus the
// solve result once the job succeeded.
type jobStatusResponse struct {
	jobs.Snapshot
	// Result is the same JSON object a synchronous /v1/solve would have
	// returned, present only in state "succeeded".
	Result json.RawMessage `json:"result,omitempty"`
	// Cached marks a result served from the result cache without a solve.
	Cached bool `json:"cached,omitempty"`
}

// jobResult is what a job's run closure returns: the rendered solve
// response.
type jobResult struct {
	body   []byte
	cached bool
}

// jobDedupKey identifies a solve for job deduplication: every parameter
// that changes the answer (the response-format flag excluded — job results
// are always rendered as JSON).
func jobDedupKey(p parsedSolve) string {
	return fmt.Sprintf("%016x|%s|%016x|%d|%t|%t",
		p.fp, p.req.Solver, math.Float64bits(p.req.K), p.req.MaxComponents, p.req.Verify, p.req.Trace)
}

// jobAcquire is the manager's admission hook: job workers borrow solve slots
// from the same limiter as the synchronous routes, but only ever take free
// ones — polling TryAcquire instead of joining the bounded HTTP wait queue,
// whose occupancy and shed counters describe interactive traffic.
func (s *Server) jobAcquire(ctx context.Context) (func(), error) {
	if release, ok := s.limiter.TryAcquire(); ok {
		return release, nil
	}
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
			if release, ok := s.limiter.TryAcquire(); ok {
				return release, nil
			}
		}
	}
}

// jobRun builds the closure the worker pool executes for a submitted solve:
// cache lookup, then an engine solve under a fresh trace whose live span
// events feed the job's SSE stream, then cache fill. rid is the submitting
// request's ID, carried into solver logs and engine events for correlation.
func (s *Server) jobRun(p parsedSolve, rid string) jobs.RunFunc {
	key := newCacheKey(p.fp, p.req.Solver, p.req.K, p.req.MaxComponents, p.req.Verify, p.req.Trace, false)
	return func(ctx context.Context, j *jobs.Job) (any, error) {
		if !p.req.NoCache {
			if body, ok := s.cache.Get(key); ok {
				return jobResult{body: body, cached: true}, nil
			}
		}
		tr := obs.New("job " + p.req.Solver)
		tr.RequestID = rid
		tr.OnSpan = j.PublishSpan
		ctx = obs.WithRequestID(ctx, rid)
		ctx = engine.WithJobID(ctx, j.ID)
		ereq := engine.Request{
			Solver: p.req.Solver,
			K:      p.req.K,
			Options: engine.Options{
				MaxComponents: p.req.MaxComponents,
				// No Options.Timeout: the job's own deadline rides ctx.
				Observer: s.observer,
			},
		}
		switch g := p.g.(type) {
		case *graph.Path:
			ereq.Path = g
		case *graph.Tree:
			ereq.Tree = g
		}
		res, err := engine.Solve(obs.NewContext(ctx, tr), ereq)
		tr.Finish()
		s.offerTrace(flight.Info{
			Trace:  tr,
			Kind:   "job",
			Solver: p.req.Solver,
			Status: errStatus(err),
			Err:    errMessage(err),
		})
		if err != nil {
			return nil, err
		}
		var cert *verifyInfo
		if p.req.Verify {
			cert = s.certifyResult(ereq, res)
		}
		var spans *obs.SpanNode
		var traceID string
		if p.req.Trace {
			spans = tr.Tree()
			traceID = tr.ID.String()
		}
		body, err := marshalResult(p.fp, res, cert, spans, traceID)
		if err != nil {
			return nil, err
		}
		if !p.req.NoCache {
			s.cache.Put(key, body)
		}
		return jobResult{body: body}, nil
	}
}

// handleJobSubmit is POST /v1/jobs. The body is the same JSON or PSV1
// binary solve request /v1/solve takes; the response is a 202 with the job
// snapshot. TimeoutMs bounds the job's total lifetime (queue wait included)
// up to Config.MaxJobTimeout, which also serves as the default — jobs exist
// for solves too long for the synchronous deadline.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var (
		p        parsedSolve
		priority int
	)
	if isBinaryMedia(r.Header.Get("Content-Type")) {
		if pv := r.URL.Query().Get("priority"); pv != "" {
			var err error
			priority, err = strconv.Atoi(pv)
			if err != nil {
				s.writeError(w, http.StatusBadRequest, `bad "priority" query parameter: `+err.Error())
				return
			}
		}
		buf, err := s.readBody(r)
		if err != nil {
			s.writeError(w, requestErrStatus(err), "bad request body: "+err.Error())
			return
		}
		var rest []byte
		// Jobs outlive the request, so the graph decodes into plain arrays:
		// the codec pool's recycling discipline is tied to request lifetime.
		p, rest, err = s.parseBinarySolveInto(buf.Bytes(), nil)
		s.bufPool.Put(buf)
		if err != nil {
			s.writeError(w, requestErrStatus(err), err.Error())
			return
		}
		if len(rest) != 0 {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("%d trailing bytes after the solve frame", len(rest)))
			return
		}
	} else {
		var req jobSubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, requestErrStatus(err), "bad request body: "+err.Error())
			return
		}
		priority = req.Priority
		var err error
		p, err = s.parseSolve(req.solveRequest)
		if err != nil {
			s.writeError(w, requestErrStatus(err), err.Error())
			return
		}
	}
	timeout := s.cfg.MaxJobTimeout
	if ms := p.req.TimeoutMs; ms > 0 {
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > s.cfg.MaxJobTimeout {
			timeout = s.cfg.MaxJobTimeout
		}
	}
	j, joined, err := s.jobs.Submit(jobs.Spec{
		Key:      jobDedupKey(p),
		Priority: priority,
		Timeout:  timeout,
		Run:      s.jobRun(p, obs.RequestIDFrom(r.Context())),
	})
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
			s.writeError(w, http.StatusTooManyRequests, "job queue full")
		case errors.Is(err, jobs.ErrShuttingDown):
			s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		default:
			s.writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	body, _ := json.Marshal(jobSubmitResponse{
		Snapshot:  j.Snapshot(),
		Joined:    joined,
		EventsURL: "/v1/jobs/" + j.ID + "/events",
	})
	writeJSON(w, http.StatusAccepted, body)
}

// jobOr404 resolves the {id} path value, answering the 404 itself when the
// job is unknown (never submitted, or already swept by retention).
func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) *jobs.Job {
	j := s.jobs.Get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r)
	if j == nil {
		return
	}
	resp := jobStatusResponse{Snapshot: j.Snapshot()}
	if res, ok := j.Result(); ok {
		if jr, ok := res.(jobResult); ok {
			resp.Result = jr.body
			resp.Cached = jr.cached
		}
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleJobList is GET /v1/jobs: every retained job, newest first.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	type listResponse struct {
		Jobs []jobs.Snapshot `json:"jobs"`
	}
	snaps := s.jobs.List()
	if snaps == nil {
		snaps = []jobs.Snapshot{}
	}
	body, _ := json.Marshal(listResponse{Jobs: snaps})
	writeJSON(w, http.StatusOK, body)
}

// handleJobCancel is DELETE /v1/jobs/{id}: request cancellation and answer
// 202 with the job's snapshot. A queued job is terminal in the response; a
// running one transitions once the solver notices its context.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, found := s.jobs.Cancel(id); !found {
		s.writeError(w, http.StatusNotFound, "unknown job "+id)
		return
	}
	var resp jobStatusResponse
	if j := s.jobs.Get(id); j != nil {
		resp.Snapshot = j.Snapshot()
	}
	body, _ := json.Marshal(resp)
	writeJSON(w, http.StatusAccepted, body)
}

// jobsKeepAlive is the SSE comment-ping cadence; it keeps idle streams from
// tripping proxy and LB idle timeouts between solve phases.
const jobsKeepAlive = 15 * time.Second

// handleJobEvents is GET /v1/jobs/{id}/events: the job's progress as
// Server-Sent Events. Replay is cursor-based — the stream starts after the
// sequence number in Last-Event-ID (or the "after" query parameter), so a
// reconnecting client resumes exactly where it left off, with frames byte-
// identical to their first delivery while they remain in the job's event
// ring. The stream ends after the terminal state event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobOr404(w, r)
	if j == nil {
		return
	}
	after := uint64(0)
	cursor := r.Header.Get("Last-Event-ID")
	if cursor == "" {
		cursor = r.URL.Query().Get("after")
	}
	if cursor != "" {
		v, err := strconv.ParseUint(cursor, 10, 64)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "bad event cursor: "+err.Error())
			return
		}
		after = v
	}
	rc := http.NewResponseController(w)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return // streaming unsupported by the underlying writer
	}
	keepAlive := time.NewTicker(jobsKeepAlive)
	defer keepAlive.Stop()
	for {
		evs, notify, terminal := j.EventsSince(after)
		for _, ev := range evs {
			if err := jobs.WriteEvent(w, ev); err != nil {
				return
			}
			after = ev.Seq
		}
		if len(evs) > 0 {
			if err := rc.Flush(); err != nil {
				return
			}
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		case <-keepAlive.C:
			if _, err := io.WriteString(w, ": keepalive\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
