package server

import (
	"bytes"
	"context"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// Config sizes the serving layer. The zero value is usable: every field has
// a production-lean default applied by New.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheSize is the result cache capacity in entries; 0 picks the
	// default (4096) and a negative value disables caching entirely.
	CacheSize int
	// CacheShards spreads the cache over independently locked shards
	// (default 16).
	CacheShards int
	// MaxConcurrent bounds simultaneously running solves (default
	// GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a solve slot; beyond it
	// requests are shed with 429 (default 4 × MaxConcurrent).
	MaxQueue int
	// QueueTimeout bounds how long an admitted request may wait in the
	// queue before it is shed with 503 (default 2s).
	QueueTimeout time.Duration
	// DefaultTimeout is the per-solve deadline applied when a request
	// does not carry its own (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any client-requested deadline (default 60s).
	MaxTimeout time.Duration
	// RetryAfter is the hint attached to 429/503 responses (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64
	// MaxNodes bounds the node count of any graph in a request (default
	// 4Mi). Binary requests declare their counts up front, so oversized
	// graphs are rejected before any array is allocated; JSON graphs are
	// checked right after decode. Negative disables the limit.
	MaxNodes int
	// BatchWorkers bounds each /v1/batch run's worker pool (default
	// MaxConcurrent). Batch admission takes one limiter slot per batch;
	// the pool parallelism inside that slot is this knob.
	BatchWorkers int
	// MaxBatchRequests bounds the request count of one batch call
	// (default 1024).
	MaxBatchRequests int
	// JobWorkers bounds concurrently running async jobs (default
	// MaxConcurrent). Job workers borrow solve slots from the same
	// admission limiter as the synchronous routes, so total solve
	// concurrency stays bounded by MaxConcurrent either way.
	JobWorkers int
	// JobQueue bounds pending async jobs; beyond it submissions are shed
	// with 429 (default 64).
	JobQueue int
	// JobRetention is how long finished jobs stay fetchable before the
	// janitor reclaims them (default 15m).
	JobRetention time.Duration
	// JobEventBuffer is the per-job event-ring capacity — the SSE replay
	// window for reconnecting clients (default 256).
	JobEventBuffer int
	// MaxJobTimeout caps (and defaults) an async job's total lifetime,
	// queue wait included (default 15m). This is the deadline that lets
	// jobs run solves far past MaxTimeout, the synchronous cap.
	MaxJobTimeout time.Duration
	// Logger receives structured request and lifecycle logs; nil means
	// slog.Default().
	Logger *slog.Logger
	// Observer, when non-nil, is chained after the server's own metrics
	// collector on every solve — the test and embedding hook.
	Observer engine.Observer
	// Cluster, when non-nil, federates this node with its peers: /v1/solve
	// cache misses on graphs another node owns are forwarded there, and
	// forwarded requests from peers are answered from this node's shard.
	// The caller owns the cluster's lifecycle (Start/Close); the server
	// only routes through it. See internal/cluster.
	Cluster *cluster.Cluster
	// TraceSample is the flight recorder's head-sampling rate in [0,1]:
	// the probability an ordinary successful solve is retained beyond the
	// tail-sampling rules (slow, errored, shed, and cluster-forwarded
	// traces are always kept). 0 keeps tail-sampling only; the partitiond
	// binary defaults its -trace-sample flag to 0.01.
	TraceSample float64
	// TraceStore caps retained traces by count; 0 picks the default (512)
	// and a negative value disables the flight recorder entirely —
	// /v1/traces then answers enabled:false.
	TraceStore int
	// TraceStoreBytes caps retained traces by serialized size (default
	// 8 MiB). Oldest traces are evicted first on either cap.
	TraceStoreBytes int64
	// SlowTrace is the absolute duration floor beyond which any solve is
	// retained regardless of sampling (default 500ms). The recorder also
	// keeps solves beyond the per-solver adaptive p99 threshold.
	SlowTrace time.Duration
}

// withDefaults returns cfg with unset fields filled in.
func (cfg Config) withDefaults() Config {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 4096
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 16
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.MaxConcurrent
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 0
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = 2 * time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 4 << 20
	}
	if cfg.MaxNodes < 0 {
		cfg.MaxNodes = 0 // 0 = unlimited downstream
	}
	if cfg.BatchWorkers <= 0 {
		cfg.BatchWorkers = cfg.MaxConcurrent
	}
	if cfg.MaxBatchRequests <= 0 {
		cfg.MaxBatchRequests = 1024
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = cfg.MaxConcurrent
	}
	if cfg.JobQueue <= 0 {
		cfg.JobQueue = 64
	}
	if cfg.JobRetention <= 0 {
		cfg.JobRetention = 15 * time.Minute
	}
	if cfg.JobEventBuffer <= 0 {
		cfg.JobEventBuffer = 256
	}
	if cfg.MaxJobTimeout <= 0 {
		cfg.MaxJobTimeout = 15 * time.Minute
	}
	if cfg.TraceStore == 0 {
		cfg.TraceStore = 512
	}
	if cfg.TraceStoreBytes <= 0 {
		cfg.TraceStoreBytes = 8 << 20
	}
	if cfg.SlowTrace <= 0 {
		cfg.SlowTrace = 500 * time.Millisecond
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	return cfg
}

// Server is the partitiond serving layer: HTTP handlers over the engine
// registry with caching, admission control, and metrics. Construct with New;
// drive with ListenAndServe/Serve; stop with Shutdown, which drains
// in-flight solves.
type Server struct {
	cfg       Config
	cache     *Cache
	limiter   *Limiter
	collector *engine.Collector
	solvem    *solveMetrics    // latency histograms + phase accounting
	observer  engine.Observer  // collector + solvem (+ cfg.Observer), attached to every solve
	jobs      *jobs.Manager    // async job queue + worker pool
	recorder  *flight.Recorder // always-on trace store; nil when disabled
	httpm     *httpMetrics
	handler   http.Handler
	hs        *http.Server
	draining  atomic.Bool
	started   time.Time

	// cluster is the optional multi-node view (nil = single node); flight
	// dedups concurrent identical cache misses into one solve, locally and
	// — because forwarded peer requests share the owner's keys — across the
	// whole cluster; clusterm attributes cache lookups to requester tiers.
	cluster  *cluster.Cluster
	flight   cluster.Group[cacheKey, flightBody]
	clusterm clusterMetrics

	// graphPool recycles the arrays binary-decoded graphs live in; bufPool
	// recycles request-body read buffers. Both keep the binary fast path
	// allocation-free per request at steady state.
	graphPool *codec.Pool
	bufPool   sync.Pool
	// solverNames snapshots the registry at construction so binary request
	// parsing can intern solver names without re-sorting the registry.
	solverNames []string

	// Outcomes of requested certificates, for /metrics.
	verifyCertified   atomic.Uint64
	verifyUncertified atomic.Uint64
}

// New builds a Server from cfg (zero-value fields take defaults).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		limiter:     NewLimiter(cfg.MaxConcurrent, cfg.MaxQueue),
		collector:   engine.NewCollector(),
		solvem:      newSolveMetrics(),
		httpm:       newHTTPMetrics(),
		started:     time.Now(),
		graphPool:   new(codec.Pool),
		bufPool:     sync.Pool{New: func() any { return new(bytes.Buffer) }},
		solverNames: engine.Names(),
		cluster:     cfg.Cluster,
	}
	if cfg.CacheSize > 0 {
		s.cache = NewCache(cfg.CacheSize, cfg.CacheShards)
	}
	if cfg.TraceStore > 0 {
		s.recorder = flight.New(flight.Config{
			SampleRate:    cfg.TraceSample,
			MaxTraces:     cfg.TraceStore,
			MaxBytes:      cfg.TraceStoreBytes,
			SlowFloor:     cfg.SlowTrace,
			SlowThreshold: s.solvem.slowFor,
		})
	}
	s.observer = engine.Observers(s.collector, s.solvem, cfg.Observer)
	s.jobs = jobs.New(jobs.Config{
		Workers:     cfg.JobWorkers,
		QueueCap:    cfg.JobQueue,
		Retention:   cfg.JobRetention,
		EventBuffer: cfg.JobEventBuffer,
		Acquire:     s.jobAcquire,
		Logger:      cfg.Logger,
	})
	s.handler = s.routes()
	s.hs = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the fully middleware-wrapped HTTP handler, for embedding
// the API under another mux or driving it in tests without a listener.
func (s *Server) Handler() http.Handler { return s.handler }

// routes builds the mux. Method-qualified patterns give 405s for free.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/solve", s.instrument("/v1/solve", s.handleSolve))
	mux.Handle("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.Handle("GET /v1/solvers", s.instrument("/v1/solvers", s.handleSolvers))
	mux.Handle("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobSubmit))
	mux.Handle("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	mux.Handle("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobCancel))
	mux.Handle("GET /v1/jobs/{id}/events", s.instrument("/v1/jobs/{id}/events", s.handleJobEvents))
	mux.Handle("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	mux.Handle("GET /v1/traces", s.instrument("/v1/traces", s.handleTraceList))
	mux.Handle("GET /v1/traces/{id}", s.instrument("/v1/traces/{id}", s.handleTraceGet))
	mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return mux
}

// statusWriter captures the response code and size for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// Unwrap exposes the underlying writer to http.ResponseController, so the
// SSE handler can flush through the instrumentation wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// sanitizeRequestID keeps a client-supplied request ID only when it is
// printable ASCII of reasonable length, so IDs are safe to echo in headers
// and log lines. Anything else is discarded and a fresh ID generated.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return ""
		}
	}
	return id
}

// instrument wraps a handler with request-ID propagation, request logging,
// the per-route counters and latency histogram, and the body-size cap. The
// request ID comes from the client's X-Request-ID header when valid, is
// generated otherwise, and is echoed back on the response; downstream it
// rides the context into slog lines, engine events, and trace roots.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if rid == "" {
			rid = obs.NewRequestID()
		}
		r = r.WithContext(obs.WithRequestID(r.Context(), rid))
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set("X-Request-Id", rid)
		r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		s.httpm.addInFlight(1)
		h(sw, r)
		s.httpm.addInFlight(-1)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		elapsed := time.Since(start)
		s.httpm.observe(route, sw.code, elapsed)
		// LogAttrs with typed attrs: slog.Value keeps ints and durations
		// inline, so the log line costs no boxing allocations per request.
		// Exactly five attrs — slog.Record holds that many without growing.
		// The method is implied by the route (every pattern in routes() is
		// method-qualified), and the response size rides the metrics instead.
		s.cfg.Logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("route", route),
			slog.Int("status", sw.code),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
			slog.String("requestID", rid),
		)
	})
}

// ListenAndServe serves on cfg.Addr until Shutdown or a listener error.
func (s *Server) ListenAndServe() error {
	l, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on l until Shutdown or a listener error. Like
// http.Server.Serve it returns http.ErrServerClosed after a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	attrs := []any{"addr", l.Addr().String(),
		"solvers", len(engine.Names()),
		"maxConcurrent", s.cfg.MaxConcurrent, "maxQueue", s.cfg.MaxQueue,
		"cacheSize", s.cfg.CacheSize}
	if s.cluster != nil {
		attrs = append(attrs, "clusterSelf", s.cluster.Self(), "clusterPeers", s.cluster.Size())
	}
	s.cfg.Logger.Info("serving", attrs...)
	return s.hs.Serve(l)
}

// Shutdown drains the server: new work — requests and job submissions — is
// refused with 503, queued jobs become terminal canceled, and running jobs
// get until ctx's deadline to finish before their solve contexts are
// force-canceled with a terminal "canceled" state. Requests already admitted
// run to completion, then the listener closes. The jobs drain runs first on
// purpose: a job's terminal event ends its open SSE streams, which is what
// lets the HTTP drain close those connections. The context bounds the whole
// drain; when it expires, remaining connections are abandoned and its error
// returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cfg.Logger.Info("draining", "inFlight", s.limiter.Stats().InFlight, "jobs", s.jobs.Stats().Running)
	jerr := s.jobs.Shutdown(ctx)
	err := s.hs.Shutdown(ctx)
	if err == nil {
		err = jerr
	}
	s.cfg.Logger.Info("drained", "err", err)
	return err
}

// MetricsSnapshot returns the per-solver aggregates the server's engine
// observer has collected — the programmatic twin of /metrics.
func (s *Server) MetricsSnapshot() map[string]engine.Aggregate {
	return s.collector.Snapshot()
}

// CacheStats snapshots the result cache counters.
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// LimiterStats snapshots the admission counters.
func (s *Server) LimiterStats() LimiterStats { return s.limiter.Stats() }

// JobStats snapshots the async job subsystem's counters and occupancy.
func (s *Server) JobStats() jobs.Stats { return s.jobs.Stats() }
