package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// slowRefreshEvery and slowMinCount pace the cached per-solver p99 slow
// threshold: it refreshes every slowRefreshEvery observations once at least
// slowMinCount have accumulated, so the flight recorder's adaptive "slow"
// rule reads an atomic instead of snapshotting a histogram per request.
const (
	slowRefreshEvery = 256
	slowMinCount     = 64
)

// solveSeries is one solver's metric state: the latency histogram, phase
// totals, the live in-flight gauge, the cached adaptive slow threshold, and
// the per-bucket exemplars linking buckets to retained traces.
type solveSeries struct {
	hist      *obs.Histogram
	phases    map[string]obs.PhaseStat
	inFlight  atomic.Int64
	slowBits  atomic.Uint64  // float64 bits of the cached p99, in seconds
	refreshAt atomic.Uint64  // histogram count that triggers the next refresh
	exemplars []obs.Exemplar // len(bounds)+1, guarded by solveMetrics.mu
}

// solveMetrics is the engine Observer behind the solve-latency histograms and
// the per-phase time accounting on /metrics. It sees every solve the server
// runs — standalone and batch items alike — because it is chained into the
// server's observer. The histograms themselves are lock-free; the mutex only
// guards the map that lazily creates one series per solver, the phase totals,
// and the exemplar slots.
type solveMetrics struct {
	mu     sync.Mutex
	series map[string]*solveSeries
}

func newSolveMetrics() *solveMetrics {
	return &solveMetrics{series: make(map[string]*solveSeries)}
}

// seriesFor returns (creating if needed) the series for a solver.
func (m *solveMetrics) seriesFor(solver string) *solveSeries {
	m.mu.Lock()
	ser := m.series[solver]
	if ser == nil {
		ser = &solveSeries{
			hist:   obs.NewHistogram(obs.LatencyBuckets()),
			phases: make(map[string]obs.PhaseStat),
		}
		ser.refreshAt.Store(slowMinCount)
		m.series[solver] = ser
	}
	m.mu.Unlock()
	return ser
}

// Observe records one solve event.
func (m *solveMetrics) Observe(ev engine.Event) {
	ser := m.seriesFor(ev.Solver)
	if len(ev.Phases) > 0 {
		m.mu.Lock()
		for name, ps := range ev.Phases {
			agg := ser.phases[name]
			agg.Count += ps.Count
			agg.Total += ps.Total
			ser.phases[name] = agg
		}
		m.mu.Unlock()
	}
	ser.hist.ObserveDuration(ev.Stats.Duration)
	// Refresh the cached p99 on a sparse schedule. The CAS makes one racing
	// observer do the snapshot; everyone else keeps the fast path.
	if n := ser.hist.Count(); n >= slowMinCount {
		at := ser.refreshAt.Load()
		if n >= at && ser.refreshAt.CompareAndSwap(at, n+slowRefreshEvery) {
			ser.slowBits.Store(math.Float64bits(ser.hist.Snapshot().Quantile(0.99)))
		}
	}
}

// slowFor is the flight recorder's adaptive threshold hook: the cached p99
// for the solver, 0 until enough observations exist. Alloc-free and cheap —
// it runs on every solve's Offer.
func (m *solveMetrics) slowFor(solver string) time.Duration {
	m.mu.Lock()
	ser := m.series[solver]
	m.mu.Unlock()
	if ser == nil {
		return 0
	}
	sec := math.Float64frombits(ser.slowBits.Load())
	if !(sec > 0) || sec > 1e6 { // unset, or the +Inf overflow bucket
		return 0
	}
	return time.Duration(sec * float64(time.Second))
}

// enter/exit bracket a local engine solve for the in-flight gauges.
func (m *solveMetrics) enter(solver string) *solveSeries {
	ser := m.seriesFor(solver)
	ser.inFlight.Add(1)
	return ser
}

func (m *solveMetrics) exit(ser *solveSeries) { ser.inFlight.Add(-1) }

// setExemplar links the histogram bucket d falls in to a retained trace, so
// /metrics can point straight from a latency bucket to /v1/traces/{id}.
func (m *solveMetrics) setExemplar(solver string, d time.Duration, traceID string) {
	if traceID == "" {
		return
	}
	ser := m.seriesFor(solver)
	idx, n := ser.hist.BucketIndex(d.Seconds())
	m.mu.Lock()
	if ser.exemplars == nil {
		ser.exemplars = make([]obs.Exemplar, n)
	}
	ser.exemplars[idx] = obs.Exemplar{TraceID: traceID, Value: d.Seconds(), Time: time.Now()}
	m.mu.Unlock()
}

// writeTo renders the solve histogram (with exemplars), phase, and in-flight
// series in Prometheus text format, sorted for deterministic output.
func (m *solveMetrics) writeTo(w io.Writer) {
	m.mu.Lock()
	solvers := make([]string, 0, len(m.series))
	for name := range m.series {
		solvers = append(solvers, name)
	}
	sort.Strings(solvers)
	// Copy the exemplar slices under the lock; histograms snapshot lock-free.
	exemplars := make(map[string][]obs.Exemplar, len(solvers))
	for name, ser := range m.series {
		if len(ser.exemplars) > 0 {
			exemplars[name] = append([]obs.Exemplar(nil), ser.exemplars...)
		}
	}
	m.mu.Unlock()

	fmt.Fprint(w, "# HELP partitiond_solve_duration_seconds Solve wall time by solver.\n# TYPE partitiond_solve_duration_seconds histogram\n")
	for _, name := range solvers {
		m.seriesFor(name).hist.Snapshot().WritePrometheusExemplars(
			w, "partitiond_solve_duration_seconds", map[string]string{"solver": name}, exemplars[name])
	}

	fmt.Fprint(w, "# HELP partitiond_solver_in_flight Engine solves currently running, by solver.\n# TYPE partitiond_solver_in_flight gauge\n")
	for _, name := range solvers {
		fmt.Fprintf(w, "partitiond_solver_in_flight{solver=%q} %d\n", name, m.seriesFor(name).inFlight.Load())
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	phased := make([]string, 0, len(m.series))
	for name, ser := range m.series {
		if len(ser.phases) > 0 {
			phased = append(phased, name)
		}
	}
	sort.Strings(phased)
	fmt.Fprint(w, "# HELP partitiond_solve_phase_seconds_total Time spent inside each solver phase span.\n# TYPE partitiond_solve_phase_seconds_total counter\n")
	for _, name := range phased {
		per := m.series[name].phases
		for _, phase := range sortedPhases(per) {
			fmt.Fprintf(w, "partitiond_solve_phase_seconds_total{solver=%q,phase=%q} %g\n",
				name, phase, per[phase].Total.Seconds())
		}
	}
	fmt.Fprint(w, "# HELP partitiond_solve_phase_count_total Phase spans recorded, by solver and phase.\n# TYPE partitiond_solve_phase_count_total counter\n")
	for _, name := range phased {
		per := m.series[name].phases
		for _, phase := range sortedPhases(per) {
			fmt.Fprintf(w, "partitiond_solve_phase_count_total{solver=%q,phase=%q} %d\n",
				name, phase, per[phase].Count)
		}
	}
}

func sortedPhases(per map[string]obs.PhaseStat) []string {
	out := make([]string, 0, len(per))
	for phase := range per {
		out = append(out, phase)
	}
	sort.Strings(out)
	return out
}
