package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
)

// solveMetrics is the engine Observer behind the solve-latency histograms and
// the per-phase time accounting on /metrics. It sees every solve the server
// runs — standalone and batch items alike — because it is chained into the
// server's observer. The histograms themselves are lock-free; the mutex only
// guards the maps that lazily create one series per solver.
type solveMetrics struct {
	mu     sync.Mutex
	hist   map[string]*obs.Histogram           // solver → latency histogram
	phases map[string]map[string]obs.PhaseStat // solver → phase → totals
}

func newSolveMetrics() *solveMetrics {
	return &solveMetrics{
		hist:   make(map[string]*obs.Histogram),
		phases: make(map[string]map[string]obs.PhaseStat),
	}
}

// Observe records one solve event.
func (m *solveMetrics) Observe(ev engine.Event) {
	m.mu.Lock()
	h := m.hist[ev.Solver]
	if h == nil {
		h = obs.NewHistogram(obs.LatencyBuckets())
		m.hist[ev.Solver] = h
	}
	if len(ev.Phases) > 0 {
		per := m.phases[ev.Solver]
		if per == nil {
			per = make(map[string]obs.PhaseStat)
			m.phases[ev.Solver] = per
		}
		for name, ps := range ev.Phases {
			agg := per[name]
			agg.Count += ps.Count
			agg.Total += ps.Total
			per[name] = agg
		}
	}
	m.mu.Unlock()
	h.ObserveDuration(ev.Stats.Duration)
}

// writeTo renders the solve histogram and phase series in Prometheus text
// format, sorted for deterministic output.
func (m *solveMetrics) writeTo(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	solvers := make([]string, 0, len(m.hist))
	for name := range m.hist {
		solvers = append(solvers, name)
	}
	sort.Strings(solvers)

	fmt.Fprint(w, "# HELP partitiond_solve_duration_seconds Solve wall time by solver.\n# TYPE partitiond_solve_duration_seconds histogram\n")
	for _, name := range solvers {
		m.hist[name].Snapshot().WritePrometheus(w, "partitiond_solve_duration_seconds", map[string]string{"solver": name})
	}

	phased := make([]string, 0, len(m.phases))
	for name := range m.phases {
		phased = append(phased, name)
	}
	sort.Strings(phased)
	fmt.Fprint(w, "# HELP partitiond_solve_phase_seconds_total Time spent inside each solver phase span.\n# TYPE partitiond_solve_phase_seconds_total counter\n")
	for _, name := range phased {
		for _, phase := range sortedPhases(m.phases[name]) {
			fmt.Fprintf(w, "partitiond_solve_phase_seconds_total{solver=%q,phase=%q} %g\n",
				name, phase, m.phases[name][phase].Total.Seconds())
		}
	}
	fmt.Fprint(w, "# HELP partitiond_solve_phase_count_total Phase spans recorded, by solver and phase.\n# TYPE partitiond_solve_phase_count_total counter\n")
	for _, name := range phased {
		for _, phase := range sortedPhases(m.phases[name]) {
			fmt.Fprintf(w, "partitiond_solve_phase_count_total{solver=%q,phase=%q} %d\n",
				name, phase, m.phases[name][phase].Count)
		}
	}
}

func sortedPhases(per map[string]obs.PhaseStat) []string {
	out := make([]string, 0, len(per))
	for phase := range per {
		out = append(out, phase)
	}
	sort.Strings(out)
	return out
}
