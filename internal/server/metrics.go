package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/version"
)

// Hand-rolled Prometheus text exposition (format version 0.0.4) — the repo
// is stdlib-only, and the counter surface is small enough that a client
// library buys nothing. Three sources feed /metrics:
//
//   - the engine Observer (per-solver solve/error/latency/iteration counters,
//     via engine.Collector),
//   - the cache and limiter snapshots,
//   - the HTTP layer's own per-route request counters.

// httpMetrics counts requests by (route, status code) and tracks a per-route
// latency histogram, plus an in-flight gauge. Routes are the registered
// patterns, not raw URLs, so cardinality is bounded.
type httpMetrics struct {
	mu        sync.Mutex
	requests  map[string]map[int]uint64 // route → code → count
	durations map[string]*obs.Histogram // route → latency histogram
	inFlight  int64
}

func newHTTPMetrics() *httpMetrics {
	return &httpMetrics{
		requests:  make(map[string]map[int]uint64),
		durations: make(map[string]*obs.Histogram),
	}
}

func (m *httpMetrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	byCode := m.requests[route]
	if byCode == nil {
		byCode = make(map[int]uint64)
		m.requests[route] = byCode
	}
	byCode[code]++
	h := m.durations[route]
	if h == nil {
		h = obs.NewHistogram(obs.LatencyBuckets())
		m.durations[route] = h
	}
	m.mu.Unlock()
	h.ObserveDuration(d)
}

func (m *httpMetrics) addInFlight(d int64) {
	m.mu.Lock()
	m.inFlight += d
	m.mu.Unlock()
}

// snapshot returns a deep copy of the counters and histograms plus the
// in-flight gauge.
func (m *httpMetrics) snapshot() (map[string]map[int]uint64, map[string]obs.HistogramSnapshot, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]map[int]uint64, len(m.requests))
	for route, byCode := range m.requests {
		cp := make(map[int]uint64, len(byCode))
		for code, n := range byCode {
			cp[code] = n
		}
		out[route] = cp
	}
	hists := make(map[string]obs.HistogramSnapshot, len(m.durations))
	for route, h := range m.durations {
		hists[route] = h.Snapshot()
	}
	return out, hists, m.inFlight
}

// metricsSnapshot gathers everything one /metrics render needs, captured
// atomically enough for monitoring purposes.
type metricsSnapshot struct {
	solvers           map[string]engine.Aggregate
	cache             CacheStats
	limiter           LimiterStats
	http              map[string]map[int]uint64
	httpDurations     map[string]obs.HistogramSnapshot
	httpInFlight      int64
	verifyCertified   uint64
	verifyUncertified uint64
	uptime            time.Duration
}

// writeMetrics renders every gauge and counter in Prometheus text format,
// with series sorted for deterministic output (stable diffs, testable).
func writeMetrics(w io.Writer, snap metricsSnapshot) {
	solvers, cs, ls := snap.solvers, snap.cache, snap.limiter
	http, httpInFlight := snap.http, snap.httpInFlight
	verifyCertified, verifyUncertified := snap.verifyCertified, snap.verifyUncertified
	uptime := snap.uptime
	names := make([]string, 0, len(solvers))
	for name := range solvers {
		names = append(names, name)
	}
	sort.Strings(names)

	series := func(metric, typ, help string, emit func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		emit()
	}

	series("partitiond_solver_solves_total", "counter", "Completed solves by solver, including failed ones.", func() {
		for _, n := range names {
			fmt.Fprintf(w, "partitiond_solver_solves_total{solver=%q} %d\n", n, solvers[n].Solves)
		}
	})
	series("partitiond_solver_errors_total", "counter", "Solves that returned an error, by solver.", func() {
		for _, n := range names {
			fmt.Fprintf(w, "partitiond_solver_errors_total{solver=%q} %d\n", n, solvers[n].Errors)
		}
	})
	series("partitiond_solver_latency_seconds_total", "counter", "Total solve wall time by solver.", func() {
		for _, n := range names {
			fmt.Fprintf(w, "partitiond_solver_latency_seconds_total{solver=%q} %g\n", n, solvers[n].TotalDuration.Seconds())
		}
	})
	series("partitiond_solver_latency_seconds_max", "gauge", "Slowest single solve by solver.", func() {
		for _, n := range names {
			fmt.Fprintf(w, "partitiond_solver_latency_seconds_max{solver=%q} %g\n", n, solvers[n].MaxDuration.Seconds())
		}
	})
	series("partitiond_solver_iterations_total", "counter", "Solver main-loop iterations by solver.", func() {
		for _, n := range names {
			fmt.Fprintf(w, "partitiond_solver_iterations_total{solver=%q} %d\n", n, solvers[n].TotalIterations)
		}
	})

	series("partitiond_cache_hits_total", "counter", "Result cache hits.", func() {
		fmt.Fprintf(w, "partitiond_cache_hits_total %d\n", cs.Hits)
	})
	series("partitiond_cache_misses_total", "counter", "Result cache misses.", func() {
		fmt.Fprintf(w, "partitiond_cache_misses_total %d\n", cs.Misses)
	})
	series("partitiond_cache_evictions_total", "counter", "Result cache LRU evictions.", func() {
		fmt.Fprintf(w, "partitiond_cache_evictions_total %d\n", cs.Evictions)
	})
	series("partitiond_cache_entries", "gauge", "Result cache resident entries.", func() {
		fmt.Fprintf(w, "partitiond_cache_entries %d\n", cs.Entries)
	})
	series("partitiond_cache_capacity", "gauge", "Result cache capacity in entries.", func() {
		fmt.Fprintf(w, "partitiond_cache_capacity %d\n", cs.Capacity)
	})

	series("partitiond_admission_in_flight", "gauge", "Solves currently holding an admission slot.", func() {
		fmt.Fprintf(w, "partitiond_admission_in_flight %d\n", ls.InFlight)
	})
	series("partitiond_admission_queued", "gauge", "Requests currently waiting for an admission slot.", func() {
		fmt.Fprintf(w, "partitiond_admission_queued %d\n", ls.Queued)
	})
	series("partitiond_admission_admitted_total", "counter", "Requests granted an admission slot.", func() {
		fmt.Fprintf(w, "partitiond_admission_admitted_total %d\n", ls.Admitted)
	})
	series("partitiond_admission_shed_queue_full_total", "counter", "Requests shed because the admission queue was full (HTTP 429).", func() {
		fmt.Fprintf(w, "partitiond_admission_shed_queue_full_total %d\n", ls.ShedQueueFull)
	})
	series("partitiond_admission_shed_deadline_total", "counter", "Requests that left the admission queue on deadline or disconnect.", func() {
		fmt.Fprintf(w, "partitiond_admission_shed_deadline_total %d\n", ls.ShedDeadline)
	})

	series("partitiond_verify_total", "counter", "Requested optimality certificates by outcome.", func() {
		fmt.Fprintf(w, "partitiond_verify_total{result=\"certified\"} %d\n", verifyCertified)
		fmt.Fprintf(w, "partitiond_verify_total{result=\"uncertified\"} %d\n", verifyUncertified)
	})

	series("partitiond_http_requests_total", "counter", "HTTP requests by route and status code.", func() {
		routes := make([]string, 0, len(http))
		for r := range http {
			routes = append(routes, r)
		}
		sort.Strings(routes)
		for _, r := range routes {
			codes := make([]int, 0, len(http[r]))
			for c := range http[r] {
				codes = append(codes, c)
			}
			sort.Ints(codes)
			for _, c := range codes {
				fmt.Fprintf(w, "partitiond_http_requests_total{route=%q,code=\"%d\"} %d\n", r, c, http[r][c])
			}
		}
	})
	series("partitiond_http_request_duration_seconds", "histogram", "HTTP request duration by route.", func() {
		routes := make([]string, 0, len(snap.httpDurations))
		for r := range snap.httpDurations {
			routes = append(routes, r)
		}
		sort.Strings(routes)
		for _, r := range routes {
			snap.httpDurations[r].WritePrometheus(w, "partitiond_http_request_duration_seconds", map[string]string{"route": r})
		}
	})
	series("partitiond_http_in_flight", "gauge", "HTTP requests currently being served.", func() {
		fmt.Fprintf(w, "partitiond_http_in_flight %d\n", httpInFlight)
	})
	series("partitiond_uptime_seconds", "gauge", "Seconds since the server started.", func() {
		fmt.Fprintf(w, "partitiond_uptime_seconds %g\n", uptime.Seconds())
	})
}

// writeObsMetrics renders the process-level observability families: build
// identity, Go runtime health, pool effectiveness, and the flight recorder's
// retention accounting.
func (s *Server) writeObsMetrics(w io.Writer) {
	series := func(metric, typ, help string, emit func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		emit()
	}

	series("partitiond_build_info", "gauge", "Build identity; the value is always 1.", func() {
		fmt.Fprintf(w, "partitiond_build_info{version=%q,go_version=%q} 1\n",
			version.Version, version.GoVersion())
	})

	rs := obs.ReadRuntimeStats()
	series("partitiond_go_goroutines", "gauge", "Live goroutines.", func() {
		fmt.Fprintf(w, "partitiond_go_goroutines %d\n", rs.Goroutines)
	})
	series("partitiond_go_heap_alloc_bytes", "gauge", "Bytes of allocated heap objects.", func() {
		fmt.Fprintf(w, "partitiond_go_heap_alloc_bytes %d\n", rs.HeapAlloc)
	})
	series("partitiond_go_heap_sys_bytes", "gauge", "Heap memory obtained from the OS.", func() {
		fmt.Fprintf(w, "partitiond_go_heap_sys_bytes %d\n", rs.HeapSys)
	})
	series("partitiond_go_heap_objects", "gauge", "Live heap objects.", func() {
		fmt.Fprintf(w, "partitiond_go_heap_objects %d\n", rs.HeapObjects)
	})
	series("partitiond_go_gc_next_bytes", "gauge", "Heap size that triggers the next GC cycle.", func() {
		fmt.Fprintf(w, "partitiond_go_gc_next_bytes %d\n", rs.NextGC)
	})
	series("partitiond_go_gc_cycles_total", "counter", "Completed GC cycles.", func() {
		fmt.Fprintf(w, "partitiond_go_gc_cycles_total %d\n", rs.GCCycles)
	})
	series("partitiond_go_gc_pause_seconds_total", "counter", "Cumulative GC stop-the-world pause time.", func() {
		fmt.Fprintf(w, "partitiond_go_gc_pause_seconds_total %g\n", rs.GCPauseTotal.Seconds())
	})
	series("partitiond_go_gc_cpu_fraction", "gauge", "Fraction of CPU time spent in GC since process start.", func() {
		fmt.Fprintf(w, "partitiond_go_gc_cpu_fraction %g\n", rs.GCCPUFraction)
	})

	series("partitiond_pool_requests_total", "counter", "Object-pool checkouts by pool and result (hit = recycled, new = allocated).", func() {
		ps := s.graphPool.Stats()
		fmt.Fprintf(w, "partitiond_pool_requests_total{pool=\"codec-graph\",result=\"hit\"} %d\n", ps.Hits)
		fmt.Fprintf(w, "partitiond_pool_requests_total{pool=\"codec-graph\",result=\"new\"} %d\n", ps.News)
		gets, news := core.ScratchPoolStats()
		fmt.Fprintf(w, "partitiond_pool_requests_total{pool=\"solver-scratch\",result=\"hit\"} %d\n", gets-news)
		fmt.Fprintf(w, "partitiond_pool_requests_total{pool=\"solver-scratch\",result=\"new\"} %d\n", news)
	})

	if s.recorder == nil {
		return
	}
	st := s.recorder.Stats()
	series("partitiond_traces_offered_total", "counter", "Finished request traces offered to the flight recorder.", func() {
		fmt.Fprintf(w, "partitiond_traces_offered_total %d\n", st.Offered)
	})
	series("partitiond_traces_retained_total", "counter", "Traces retained by the flight recorder, by retention reason.", func() {
		for _, reason := range flight.Reasons() {
			fmt.Fprintf(w, "partitiond_traces_retained_total{reason=%q} %d\n", reason, st.KeptByReason[reason])
		}
	})
	series("partitiond_traces_dropped_total", "counter", "Traces offered but not retained (no retention rule matched).", func() {
		fmt.Fprintf(w, "partitiond_traces_dropped_total %d\n", st.Dropped)
	})
	series("partitiond_trace_store_evicted_total", "counter", "Retained traces evicted from the store, by cap that forced it.", func() {
		fmt.Fprintf(w, "partitiond_trace_store_evicted_total{cause=\"count\"} %d\n", st.EvictedCount)
		fmt.Fprintf(w, "partitiond_trace_store_evicted_total{cause=\"bytes\"} %d\n", st.EvictedBytes)
	})
	series("partitiond_trace_store_traces", "gauge", "Traces resident in the flight-recorder store.", func() {
		fmt.Fprintf(w, "partitiond_trace_store_traces %d\n", st.Traces)
	})
	series("partitiond_trace_store_bytes", "gauge", "Approximate bytes resident in the flight-recorder store.", func() {
		fmt.Fprintf(w, "partitiond_trace_store_bytes %d\n", st.Bytes)
	})
	series("partitiond_trace_store_capacity", "gauge", "Flight-recorder store caps, by dimension.", func() {
		fmt.Fprintf(w, "partitiond_trace_store_capacity{dimension=\"traces\"} %d\n", st.CapTraces)
		fmt.Fprintf(w, "partitiond_trace_store_capacity{dimension=\"bytes\"} %d\n", st.CapBytes)
	})
}

// writeJobsMetrics renders the async job subsystem's series. The
// partitiond_jobs_total family is labeled by state: the terminal states are
// cumulative counters, while "queued" and "running" are the current
// occupancy (which is why the family is declared a gauge).
func writeJobsMetrics(w io.Writer, st jobs.Stats) {
	series := func(metric, typ, help string, emit func()) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		emit()
	}
	series("partitiond_jobs_total", "gauge", "Async jobs by state: current occupancy for queued/running, cumulative for terminal states.", func() {
		fmt.Fprintf(w, "partitiond_jobs_total{state=\"queued\"} %d\n", st.Queued)
		fmt.Fprintf(w, "partitiond_jobs_total{state=\"running\"} %d\n", st.Running)
		fmt.Fprintf(w, "partitiond_jobs_total{state=\"succeeded\"} %d\n", st.Succeeded)
		fmt.Fprintf(w, "partitiond_jobs_total{state=\"failed\"} %d\n", st.Failed)
		fmt.Fprintf(w, "partitiond_jobs_total{state=\"canceled\"} %d\n", st.Canceled)
	})
	series("partitiond_jobs_submitted_total", "counter", "Accepted job submissions (dedup joins excluded).", func() {
		fmt.Fprintf(w, "partitiond_jobs_submitted_total %d\n", st.Submitted)
	})
	series("partitiond_jobs_dedup_joined_total", "counter", "Job submissions answered by an existing identical job.", func() {
		fmt.Fprintf(w, "partitiond_jobs_dedup_joined_total %d\n", st.DedupJoined)
	})
	series("partitiond_jobs_queue_depth", "gauge", "Jobs waiting for a worker.", func() {
		fmt.Fprintf(w, "partitiond_jobs_queue_depth %d\n", st.Queued)
	})
	series("partitiond_jobs_queue_capacity", "gauge", "Job queue capacity.", func() {
		fmt.Fprintf(w, "partitiond_jobs_queue_capacity %d\n", st.QueueCap)
	})
	series("partitiond_jobs_workers", "gauge", "Job worker pool size.", func() {
		fmt.Fprintf(w, "partitiond_jobs_workers %d\n", st.Workers)
	})
	series("partitiond_jobs_workers_busy", "gauge", "Job workers currently running a solve.", func() {
		fmt.Fprintf(w, "partitiond_jobs_workers_busy %d\n", st.Running)
	})
	series("partitiond_jobs_retained", "gauge", "Jobs currently retained (all states).", func() {
		fmt.Fprintf(w, "partitiond_jobs_retained %d\n", st.Retained)
	})
}
