package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// benchBody marshals one solve request over a random n-node path.
func benchBody(b *testing.B, n int, k float64Factor, solver string, noCache bool) []byte {
	b.Helper()
	r := workload.NewRNG(11)
	p := workload.RandomPath(r, n, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, p); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(solveRequest{
		Solver:  solver,
		K:       k(p),
		Graph:   buf.Bytes(),
		NoCache: noCache,
	})
	if err != nil {
		b.Fatal(err)
	}
	return body
}

// benchBodyBin renders the same request as benchBody in the binary wire
// format (PSV1 frame with an embedded PGB1 graph).
func benchBodyBin(b *testing.B, n int, k float64Factor, solver string, noCache bool) []byte {
	b.Helper()
	r := workload.NewRNG(11)
	p := workload.RandomPath(r, n, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	body, err := AppendSolveRequest(nil, SolveParams{Solver: solver, K: k(p), NoCache: noCache}, p)
	if err != nil {
		b.Fatal(err)
	}
	return body
}

type float64Factor func(p *graph.Path) float64

func benchServer(b *testing.B, cfg Config) *Server {
	b.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	return New(cfg)
}

func post(h http.Handler, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// postBin posts a binary body and asks for a binary response.
func postBin(h http.Handler, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(body))
	req.Header.Set("Content-Type", codec.ContentType)
	req.Header.Set("Accept", codec.ContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// BenchmarkSolveUncached measures the full request path with the cache
// bypassed: decode, fingerprint, admission, engine solve, marshal.
func BenchmarkSolveUncached(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	body := benchBody(b, 5000, func(p *graph.Path) float64 { return 4 * p.MaxNodeWeight() }, "bandwidth", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(s.Handler(), body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkSolveUncachedBinary is BenchmarkSolveUncached over the binary
// wire format in both directions — the ISSUE's headline comparison: the JSON
// run is dominated by decode+marshal, the binary run by the solve itself.
func BenchmarkSolveUncachedBinary(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	body := benchBodyBin(b, 5000, func(p *graph.Path) float64 { return 4 * p.MaxNodeWeight() }, "bandwidth", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := postBin(s.Handler(), body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkSolveCachedBinary is the cached fast path over binary frames.
func BenchmarkSolveCachedBinary(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	body := benchBodyBin(b, 5000, func(p *graph.Path) float64 { return 4 * p.MaxNodeWeight() }, "bandwidth", false)
	if rec := postBin(s.Handler(), body); rec.Code != http.StatusOK { // warm
		b.Fatalf("warm status %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := postBin(s.Handler(), body)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "HIT" {
			b.Fatalf("status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
		}
	}
}

// BenchmarkSolveCached measures the same request answered from the result
// cache — the O(1)-lookup fast path the serving layer exists for.
func BenchmarkSolveCached(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	body := benchBody(b, 5000, func(p *graph.Path) float64 { return 4 * p.MaxNodeWeight() }, "bandwidth", false)
	if rec := post(s.Handler(), body); rec.Code != http.StatusOK { // warm
		b.Fatalf("warm status %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := post(s.Handler(), body)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "HIT" {
			b.Fatalf("status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
		}
	}
}

// BenchmarkSolveUncachedHeavy uses the quadratic bandwidth-naive solver on
// a wide window, where the solve dwarfs request decoding — the workload the
// cache is for.
func BenchmarkSolveUncachedHeavy(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	body := benchBody(b, 10000, func(p *graph.Path) float64 { return p.TotalNodeWeight() / 2 }, "bandwidth-naive", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(s.Handler(), body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkSolveCachedHeavy is the same heavy request answered from cache.
func BenchmarkSolveCachedHeavy(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	body := benchBody(b, 10000, func(p *graph.Path) float64 { return p.TotalNodeWeight() / 2 }, "bandwidth-naive", false)
	if rec := post(s.Handler(), body); rec.Code != http.StatusOK { // warm
		b.Fatalf("warm status %d", rec.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := post(s.Handler(), body)
		if rec.Code != http.StatusOK || rec.Header().Get("X-Cache") != "HIT" {
			b.Fatalf("status %d, X-Cache %q", rec.Code, rec.Header().Get("X-Cache"))
		}
	}
}

// BenchmarkServerAtConcurrencyLimit drives parallel clients against a
// limiter sized to the host, mixing K values so only some requests hit the
// cache — the requests/sec figure for the baseline record. Shed responses
// (429/503) count as completed requests, as they do for a real client.
func BenchmarkServerAtConcurrencyLimit(b *testing.B) {
	s := benchServer(b, Config{
		MaxConcurrent: runtime.GOMAXPROCS(0),
		MaxQueue:      4 * runtime.GOMAXPROCS(0),
	})
	r := workload.NewRNG(12)
	p := workload.RandomPath(r, 2000, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, p); err != nil {
		b.Fatal(err)
	}
	const distinctKs = 16
	bodies := make([][]byte, distinctKs)
	for i := range bodies {
		body, err := json.Marshal(solveRequest{
			Solver: "bandwidth",
			K:      4*p.MaxNodeWeight() + float64(i),
			Graph:  buf.Bytes(),
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	var served, shed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rec := post(s.Handler(), bodies[i%distinctKs])
			i++
			switch rec.Code {
			case http.StatusOK:
				served.Add(1)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
	b.StopTimer()
	total := served.Load() + shed.Load()
	if total > 0 {
		b.ReportMetric(float64(served.Load())/float64(total)*100, "served_%")
	}
	st := s.CacheStats()
	if st.Hits+st.Misses > 0 {
		b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses)*100, "cache_hit_%")
	}
}

// benchShutdownJobs stops the benchmark server's job workers so the next
// benchmark's goroutine counts start clean.
func benchShutdownJobs(b *testing.B, s *Server) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.jobs.Shutdown(ctx); err != nil {
		b.Fatalf("jobs shutdown: %v", err)
	}
}

// BenchmarkDirectSolveBaseline is the comparison point for the jobs
// overhead benchmark: the same uncached solve through the synchronous
// route, one request per iteration.
func BenchmarkDirectSolveBaseline(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	defer benchShutdownJobs(b, s)
	body := benchBody(b, 512, func(p *graph.Path) float64 { return 4 * p.MaxNodeWeight() }, "bandwidth", true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := post(s.Handler(), body); rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkJobSubmitToResult measures the full async round trip for the
// solve in BenchmarkDirectSolveBaseline: POST /v1/jobs, follow the SSE
// stream to the terminal event, GET the result. The delta against the
// baseline is the price of durability — queue hop, worker hand-off, event
// ring, SSE rendering, result fetch.
func BenchmarkJobSubmitToResult(b *testing.B) {
	s := benchServer(b, Config{MaxConcurrent: 1, MaxQueue: 4})
	defer benchShutdownJobs(b, s)
	// The same graph and K the baseline solves, wrapped in a job submission.
	r := workload.NewRNG(11)
	p := workload.RandomPath(r, 512, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	var gbuf bytes.Buffer
	if err := graph.WriteJSON(&gbuf, p); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(jobSubmitRequest{solveRequest: solveRequest{
		Solver:  "bandwidth",
		K:       4 * p.MaxNodeWeight(),
		Graph:   gbuf.Bytes(),
		NoCache: true,
	}})
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/v1/jobs", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			b.Fatalf("submit status %d: %s", rec.Code, rec.Body.String())
		}
		var sub jobSubmitResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil {
			b.Fatal(err)
		}
		// The events handler returns only after the terminal state event, so
		// one synchronous request doubles as the wait.
		erec := httptest.NewRecorder()
		h.ServeHTTP(erec, httptest.NewRequest("GET", "/v1/jobs/"+sub.ID+"/events", nil))
		if erec.Code != http.StatusOK {
			b.Fatalf("events status %d", erec.Code)
		}
		grec := httptest.NewRecorder()
		h.ServeHTTP(grec, httptest.NewRequest("GET", "/v1/jobs/"+sub.ID, nil))
		if grec.Code != http.StatusOK {
			b.Fatalf("get status %d", grec.Code)
		}
		var st jobStatusResponse
		if err := json.Unmarshal(grec.Body.Bytes(), &st); err != nil {
			b.Fatal(err)
		}
		if st.State != jobs.StateSucceeded || st.Result == nil {
			b.Fatalf("job landed as %s (%s)", st.State, st.Error)
		}
	}
}
