package server

import (
	"fmt"
	"sync"
	"testing"
)

func k(fp uint64) cacheKey { return newCacheKey(fp, "bandwidth", 100, 0, false, false, false) }

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(8, 1)
	if _, ok := c.Get(k(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k(1), []byte("one"))
	body, ok := c.Get(k(1))
	if !ok || string(body) != "one" {
		t.Fatalf("Get = %q, %v; want \"one\", true", body, ok)
	}
	// Same fingerprint, different solve parameters: distinct entries.
	for _, key := range []cacheKey{
		newCacheKey(1, "bottleneck", 100, 0, false, false, false),
		newCacheKey(1, "bandwidth", 200, 0, false, false, false),
		newCacheKey(1, "bandwidth", 100, 4, false, false, false),
		newCacheKey(1, "bandwidth", 100, 0, true, false, false), // verified body differs
		newCacheKey(1, "bandwidth", 100, 0, false, true, false), // traced body differs
		newCacheKey(1, "bandwidth", 100, 0, false, false, true), // binary body differs
	} {
		if _, ok := c.Get(key); ok {
			t.Errorf("key %+v unexpectedly hit", key)
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 7 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 7 misses / 1 entry", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(3, 1) // single shard so the LRU order is global
	for i := uint64(0); i < 3; i++ {
		c.Put(k(i), []byte{byte(i)})
	}
	c.Get(k(0)) // 0 is now most recent; 1 is the LRU victim
	c.Put(k(3), []byte{3})
	if _, ok := c.Get(k(1)); ok {
		t.Error("LRU entry 1 survived eviction")
	}
	for _, want := range []uint64{0, 2, 3} {
		if _, ok := c.Get(k(want)); !ok {
			t.Errorf("entry %d missing after eviction", want)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction / 3 entries", st)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(4, 1)
	c.Put(k(1), []byte("a"))
	c.Put(k(1), []byte("b"))
	body, ok := c.Get(k(1))
	if !ok || string(body) != "b" {
		t.Fatalf("Get = %q, %v; want \"b\", true", body, ok)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (refresh must not duplicate)", st.Entries)
	}
}

func TestCacheDisabled(t *testing.T) {
	var c *Cache // nil: the disabled cache
	c.Put(k(1), []byte("x"))
	if _, ok := c.Get(k(1)); ok {
		t.Error("nil cache returned a hit")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v, want zero", st)
	}
	if NewCache(0, 4) != nil || NewCache(-1, 4) != nil {
		t.Error("NewCache(<=0 size) should return nil")
	}
}

func TestCacheShardingCapacity(t *testing.T) {
	c := NewCache(10, 3) // 4+3+3
	total := 0
	for _, s := range c.shards {
		total += s.capacity
		if s.capacity < 1 {
			t.Errorf("shard capacity %d < 1", s.capacity)
		}
	}
	if total != 10 {
		t.Errorf("summed shard capacity = %d, want 10", total)
	}
	// More shards than entries: clamped, no zero-capacity shards.
	c = NewCache(2, 64)
	if got := len(c.shards); got != 2 {
		t.Errorf("shards = %d, want clamped to 2", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(128, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := newCacheKey(uint64(i%64), fmt.Sprintf("solver-%d", g%2), float64(i%8+1), 0, false, false, false)
				if body, ok := c.Get(key); ok && len(body) == 0 {
					t.Error("hit with empty body")
					return
				}
				c.Put(key, []byte("body"))
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*500)
	}
	if st.Entries > st.Capacity {
		t.Errorf("entries %d exceed capacity %d", st.Entries, st.Capacity)
	}
}
