package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// submitJob posts a job submission and decodes the 202 response.
func submitJob(t *testing.T, ts *httptest.Server, body any) jobSubmitResponse {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body = %s", resp.StatusCode, raw)
	}
	var out jobSubmitResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("bad submit response: %v (%s)", err, raw)
	}
	if out.ID == "" || out.EventsURL == "" {
		t.Fatalf("submit response incomplete: %+v", out)
	}
	return out
}

// getJob fetches GET /v1/jobs/{id}.
func getJob(t *testing.T, ts *httptest.Server, id string) jobStatusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get job status = %d, body = %s", resp.StatusCode, raw)
	}
	var out jobStatusResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitJobState polls GET /v1/jobs/{id} until the state matches.
func waitJobState(t *testing.T, ts *httptest.Server, id string, want jobs.State) jobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getJob(t, ts, id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s state = %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// sseFrame is one parsed SSE frame plus its raw bytes.
type sseFrame struct {
	id    string
	event string
	data  string
	raw   string
}

// openSSE connects to a job's event stream; lastEventID "" omits the header.
func openSSE(t *testing.T, ts *httptest.Server, id, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events status = %d, body = %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	return resp
}

// readFrames reads SSE frames until stop returns true or the stream ends.
// Keepalive comments are skipped (they never appear inside a frame's raw
// bytes here: tests run far under the keepalive cadence).
func readFrames(t *testing.T, r *bufio.Reader, stop func(sseFrame) bool) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	var raw strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return frames // disconnect or stream end
		}
		if strings.HasPrefix(line, ":") {
			continue // keepalive comment
		}
		raw.WriteString(line)
		switch {
		case line == "\n":
			cur.raw = raw.String()
			frames = append(frames, cur)
			done := stop(cur)
			cur, raw = sseFrame{}, strings.Builder{}
			if done {
				return frames
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimSuffix(strings.TrimPrefix(line, "id: "), "\n")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimSuffix(strings.TrimPrefix(line, "event: "), "\n")
		case strings.HasPrefix(line, "data: "):
			cur.data += strings.TrimSuffix(strings.TrimPrefix(line, "data: "), "\n")
		}
	}
}

func isTerminalFrame(f sseFrame) bool {
	return f.event == "state" && (strings.Contains(f.data, "succeeded") ||
		strings.Contains(f.data, "failed") || strings.Contains(f.data, "canceled"))
}

// TestJobLifecycle drives submit → SSE stream → result fetch end to end.
func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g := pathGraphJSON(t, 64, 3)

	sub := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "bandwidth", K: 500, Graph: g}})
	if sub.State != jobs.StateQueued {
		t.Errorf("submit state = %s, want queued", sub.State)
	}

	resp := openSSE(t, ts, sub.ID, "")
	defer resp.Body.Close()
	frames := readFrames(t, bufio.NewReader(resp.Body), isTerminalFrame)
	if len(frames) < 3 {
		t.Fatalf("got %d frames, want >= 3 (queued, running, succeeded): %+v", len(frames), frames)
	}
	last := frames[len(frames)-1]
	if last.data != `{"state":"succeeded"}` {
		t.Fatalf("terminal frame = %+v", last)
	}
	// Phase events from the solver's spans ride the same stream.
	var phases int
	for _, f := range frames {
		if f.event == "phase" {
			phases++
		}
	}
	if phases == 0 {
		t.Error("no phase events in the stream")
	}

	st := getJob(t, ts, sub.ID)
	if st.State != jobs.StateSucceeded || st.Result == nil {
		t.Fatalf("final status = %+v", st)
	}
	var res solveResponse
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Solver != "bandwidth" || res.K != 500 || res.NumComponents == 0 {
		t.Errorf("job result = %+v", res)
	}
}

// TestJobSSEDisconnectResume is the replay acceptance test: a client that
// drops mid-stream and reconnects with Last-Event-ID receives the remaining
// frames byte-identical to what an uninterrupted stream delivered.
func TestJobSSEDisconnectResume(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started, release := armGate(t)
	g := pathGraphJSON(t, 32, 4)

	sub := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 100, Graph: g}})
	<-started

	// Connection A: read two frames (queued, running), then drop.
	respA := openSSE(t, ts, sub.ID, "")
	var n int
	framesA := readFrames(t, bufio.NewReader(respA.Body), func(sseFrame) bool { n++; return n == 2 })
	respA.Body.Close()
	if len(framesA) != 2 || framesA[1].data != `{"state":"running"}` {
		t.Fatalf("frames before disconnect: %+v", framesA)
	}

	release()
	waitJobState(t, ts, sub.ID, jobs.StateSucceeded)

	// Connection B resumes from the dropped cursor; connection C replays the
	// whole stream. B's bytes must equal C's minus the frames B skipped.
	respB := openSSE(t, ts, sub.ID, framesA[1].id)
	framesB := readFrames(t, bufio.NewReader(respB.Body), isTerminalFrame)
	respB.Body.Close()
	respC := openSSE(t, ts, sub.ID, "")
	framesC := readFrames(t, bufio.NewReader(respC.Body), isTerminalFrame)
	respC.Body.Close()

	if len(framesC) != len(framesA)+len(framesB) {
		t.Fatalf("frame counts: A=%d B=%d C=%d", len(framesA), len(framesB), len(framesC))
	}
	var gotB, wantB bytes.Buffer
	for _, f := range framesB {
		gotB.WriteString(f.raw)
	}
	for _, f := range framesC[len(framesA):] {
		wantB.WriteString(f.raw)
	}
	if !bytes.Equal(gotB.Bytes(), wantB.Bytes()) {
		t.Errorf("resumed stream not byte-identical:\ngot:\n%s\nwant:\n%s", gotB.String(), wantB.String())
	}
	// And the full replay's head matches what connection A saw live.
	for i, f := range framesA {
		if framesC[i].raw != f.raw {
			t.Errorf("replayed frame %d = %q, want %q", i, framesC[i].raw, f.raw)
		}
	}
}

// TestJobCancelRunning is the cancellation acceptance test: DELETE on a
// running job cancels the solve through the engine's context, the SSE
// stream ends with a terminal canceled state, and no goroutines leak.
func TestJobCancelRunning(t *testing.T) {
	before := runtime.NumGoroutine()
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	started, release := armGate(t)
	defer release()
	g := pathGraphJSON(t, 32, 5)

	sub := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 100, Graph: g}})
	<-started
	resp := openSSE(t, ts, sub.ID, "")

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+sub.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d", dresp.StatusCode)
	}

	frames := readFrames(t, bufio.NewReader(resp.Body), isTerminalFrame)
	resp.Body.Close()
	last := frames[len(frames)-1]
	if !strings.Contains(last.data, `"state":"canceled"`) {
		t.Fatalf("terminal frame after cancel = %+v", last)
	}
	if st := getJob(t, ts, sub.ID); st.State != jobs.StateCanceled {
		t.Errorf("job state = %s, want canceled", st.State)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.jobs.Shutdown(ctx); err != nil {
		t.Fatalf("jobs shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines: %d before, %d after:\n%s", before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestJobDedup is the single-flight acceptance test: two submissions of the
// identical request while the first is in flight perform exactly one solve.
func TestJobDedup(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started, release := armGate(t)
	g := pathGraphJSON(t, 32, 6)

	req := jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 100, Graph: g}}
	first := submitJob(t, ts, req)
	<-started
	second := submitJob(t, ts, req)
	if !second.Joined || second.ID != first.ID {
		t.Fatalf("second submission: joined=%v id=%s, want join of %s", second.Joined, second.ID, first.ID)
	}
	// A different K is a different job.
	other := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 200, Graph: g}})
	if other.Joined || other.ID == first.ID {
		t.Fatalf("different-K submission joined: %+v", other)
	}

	release()
	waitJobState(t, ts, first.ID, jobs.StateSucceeded)
	waitJobState(t, ts, other.ID, jobs.StateSucceeded)
	// The gate solver signals once per solve; first's signal was consumed
	// above, so exactly other's should remain — the join added none.
	if got := len(started); got != 1 {
		t.Errorf("%d gate starts pending, want 1 (one solve per distinct job)", got)
	}
	if st := s.JobStats(); st.DedupJoined != 1 || st.Submitted != 2 {
		t.Errorf("job stats = %+v", st)
	}
}

// TestJobDeadline submits a job with a timeout too small for its solve; the
// job must fail terminally with a deadline message.
func TestJobDeadline(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started, release := armGate(t)
	defer release()
	g := pathGraphJSON(t, 32, 7)

	sub := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{
		Solver: "test-gate", K: 100, Graph: g, TimeoutMs: 30}})
	<-started
	st := waitJobState(t, ts, sub.ID, jobs.StateFailed)
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error = %q, want deadline message", st.Error)
	}
}

// TestJobBinarySubmit submits a PSV1 binary body with a priority query
// parameter and checks the job solves like its JSON twin.
func TestJobBinarySubmit(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	p := testPath(t, 64, 11)
	frame, err := AppendSolveRequest(nil, SolveParams{Solver: "bandwidth", K: 500}, p)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs?priority=3", "application/x-partition-bin", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary submit = %d, body = %s", resp.StatusCode, raw)
	}
	var sub jobSubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Priority != 3 {
		t.Errorf("priority = %d, want 3", sub.Priority)
	}
	st := waitJobState(t, ts, sub.ID, jobs.StateSucceeded)
	var res solveResponse
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Solver != "bandwidth" || res.NumComponents == 0 {
		t.Errorf("result = %+v", res)
	}
}

// TestJobErrors covers the 4xx surface: unknown IDs, bad cursors, bad
// bodies.
func TestJobErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, c := range []struct {
		method, path string
		want         int
	}{
		{"GET", "/v1/jobs/nope", http.StatusNotFound},
		{"DELETE", "/v1/jobs/nope", http.StatusNotFound},
		{"GET", "/v1/jobs/nope/events", http.StatusNotFound},
	} {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}

	// Bad submission: unknown fields are tolerated but a missing solver is a
	// 400 before any job is created.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing solver = %d, want 400", resp.StatusCode)
	}
	if st := s.JobStats(); st.Submitted != 0 {
		t.Errorf("bad submission created a job: %+v", st)
	}

	// Bad resume cursor on a real job.
	g := pathGraphJSON(t, 16, 8)
	sub := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "bandwidth", K: 500, Graph: g}})
	waitJobState(t, ts, sub.ID, jobs.StateSucceeded)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor = %d, want 400", bresp.StatusCode)
	}
}

// TestJobQueueFullShed fills the job queue and checks the 429 + Retry-After
// shed path.
func TestJobQueueFullShed(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, JobQueue: 1, MaxConcurrent: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started, release := armGate(t)
	defer release()
	g := pathGraphJSON(t, 16, 9)

	submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 100, Graph: g}})
	<-started
	submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 101, Graph: g}})
	b, _ := json.Marshal(jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 102, Graph: g}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestJobDrain checks the graceful-drain contract at the server level:
// during Shutdown queued jobs turn terminal canceled, new submissions are
// shed with 503, the running job is force-canceled at the drain deadline,
// and open SSE streams end.
func TestJobDrain(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	started, release := armGate(t)
	defer release()
	g := pathGraphJSON(t, 16, 10)

	running := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 100, Graph: g}})
	<-started
	queued := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 101, Graph: g}})
	stream := openSSE(t, ts, running.ID, "")

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel()
		drainDone <- s.Shutdown(ctx)
	}()

	// The queued job cancels immediately; submissions shed while draining.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := getJob(t, ts, queued.ID); st.State == jobs.StateCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued job not canceled during drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	b, _ := json.Marshal(jobSubmitRequest{solveRequest: solveRequest{Solver: "test-gate", K: 102, Graph: g}})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("submit during drain = %d, want 503", resp.StatusCode)
		}
	}

	// The gate solver ignores the drain window; the deadline force-cancels
	// it, the SSE stream delivers the terminal state and ends.
	frames := readFrames(t, bufio.NewReader(stream.Body), isTerminalFrame)
	stream.Body.Close()
	if len(frames) == 0 || !strings.Contains(frames[len(frames)-1].data, `"state":"canceled"`) {
		t.Fatalf("drain stream frames: %+v", frames)
	}
	if err := <-drainDone; err != context.DeadlineExceeded {
		t.Errorf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	if st := getJob(t, ts, running.ID); st.State != jobs.StateCanceled {
		t.Errorf("running job after forced drain = %s, want canceled", st.State)
	}
}

// TestJobResultCached checks a job for an already-cached solve returns the
// cached bytes without occupying a solver, marked cached in the status.
func TestJobResultCached(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g := pathGraphJSON(t, 64, 12)

	// Prime the cache via the synchronous route.
	rec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 500, Graph: g})
	if rec.Code != http.StatusOK {
		t.Fatalf("prime solve = %d", rec.Code)
	}
	sub := submitJob(t, ts, jobSubmitRequest{solveRequest: solveRequest{Solver: "bandwidth", K: 500, Graph: g}})
	st := waitJobState(t, ts, sub.ID, jobs.StateSucceeded)
	if !st.Cached {
		t.Error("job result not marked cached")
	}
	if !bytes.Equal(bytes.TrimRight(rec.Body.Bytes(), "\n"), []byte(st.Result)) {
		t.Errorf("cached job result differs from the synchronous response:\n%s\nvs\n%s", st.Result, rec.Body.Bytes())
	}
}
