package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/verify"
)

// The wire format. Graphs travel in the graph package's JSON envelope
// ({"kind":"path","nodeWeights":...,"edgeWeights":...}); everything else is
// flat JSON. Durations cross the wire in milliseconds.

// solveRequest is the body of POST /v1/solve and one element of a batch.
type solveRequest struct {
	// Solver is the registry name (see GET /v1/solvers).
	Solver string `json:"solver"`
	// K is the execution-time bound; must be positive and finite.
	K float64 `json:"k"`
	// Graph is the task graph in the graph-JSON envelope.
	Graph json.RawMessage `json:"graph"`
	// MaxComponents caps the component count for solvers that support it.
	MaxComponents int `json:"maxComponents,omitempty"`
	// TimeoutMs overrides the server's default solve deadline, capped at
	// the server's maximum.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoCache bypasses the result cache for this request (both lookup and
	// fill) — the load-testing and debugging escape hatch.
	NoCache bool `json:"noCache,omitempty"`
	// Verify runs the solver-independent optimality certificate on the
	// result (see internal/verify) and reports it in the response.
	Verify bool `json:"verify,omitempty"`
	// Trace returns the solve's phase-span tree in the response. Only
	// honored on /v1/solve; batch items are solved under one shared batch
	// trace and ignore this flag.
	Trace bool `json:"trace,omitempty"`
}

// verifyInfo is the wire form of a verify.Certificate.
type verifyInfo struct {
	Criterion string  `json:"criterion"`
	Certified bool    `json:"certified"`
	Objective float64 `json:"objective"`
	Bound     float64 `json:"bound"`
	Detail    string  `json:"detail,omitempty"`
}

// solveResponse is the body of a successful solve. Cached hits replay these
// exact bytes, so Stats describe the solve that originally produced the
// result; the X-Cache header says which case the caller got.
type solveResponse struct {
	Solver           string    `json:"solver"`
	K                float64   `json:"k"`
	Cut              []int     `json:"cut"`
	CutWeight        float64   `json:"cutWeight"`
	Bottleneck       float64   `json:"bottleneck"`
	ComponentWeights []float64 `json:"componentWeights"`
	NumComponents    int       `json:"numComponents"`
	Fingerprint      string    `json:"fingerprint"`
	// Verify is present only when the request asked for verification; cached
	// hits replay the certificate of the original solve (the cache key
	// includes the verify flag, so unverified entries never satisfy a
	// verified request).
	Verify *verifyInfo `json:"verify,omitempty"`
	// Trace is the solve's span tree, present only when the request set
	// "trace". Like Stats, cached hits replay the tree of the original
	// solve (the trace flag is part of the cache key).
	Trace *obs.SpanNode `json:"trace,omitempty"`
	// TraceID is the distributed trace identifier, present alongside Trace.
	// When the flight recorder retained the trace it is retrievable at
	// /v1/traces/{traceId} after the fact.
	TraceID string `json:"traceId,omitempty"`
	Stats   struct {
		DurationMs float64 `json:"durationMs"`
		Iterations int64   `json:"iterations"`
	} `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// batchRequest is the body of POST /v1/batch.
type batchRequest struct {
	Requests []solveRequest `json:"requests"`
	// TimeoutMs is the default per-item deadline for items without one.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// batchItem mirrors engine.BatchItem: exactly one of Result or Error is set.
// Result carries the same bytes a /v1/solve for that item would return.
type batchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Cached bool            `json:"cached,omitempty"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
	Stats struct {
		Requests  int     `json:"requests"`
		Solved    int     `json:"solved"`
		Failed    int     `json:"failed"`
		CacheHits int     `json:"cacheHits"`
		WallMs    float64 `json:"wallMs"`
	} `json:"stats"`
}

// parsedSolve is a decoded, validated solve item ready for the engine. The
// cache key is filled in by the handler once the response format is known
// (the key includes it). pooled marks a graph decoded into the server's
// codec pool, to be returned via releaseParsed after the response is built.
type parsedSolve struct {
	req    solveRequest
	g      any    // *graph.Path or *graph.Tree
	fp     uint64 // graph fingerprint
	key    cacheKey
	pooled bool
}

// errNodeLimit marks a graph whose node count exceeds Config.MaxNodes; it
// maps to 413 like the body-size and codec limits.
var errNodeLimit = errors.New("node count exceeds the server limit")

// checkSolveParams validates the non-graph solve parameters, shared by the
// JSON and binary request paths. Errors are client errors.
func checkSolveParams(req solveRequest) error {
	if req.Solver == "" {
		return errors.New(`"solver" is required`)
	}
	if !(req.K > 0) || math.IsInf(req.K, 0) {
		return fmt.Errorf(`"k" must be positive and finite (got %v)`, req.K)
	}
	if req.MaxComponents < 0 {
		return fmt.Errorf(`"maxComponents" must be non-negative (got %d)`, req.MaxComponents)
	}
	if req.TimeoutMs < 0 {
		return fmt.Errorf(`"timeoutMs" must be non-negative (got %d)`, req.TimeoutMs)
	}
	return nil
}

// parseSolve validates one JSON solve item. Errors are client errors (400,
// or 413 for limit violations).
func (s *Server) parseSolve(req solveRequest) (parsedSolve, error) {
	if err := checkSolveParams(req); err != nil {
		return parsedSolve{}, err
	}
	if len(req.Graph) == 0 {
		return parsedSolve{}, errors.New(`"graph" is required`)
	}
	g, err := graph.ReadJSON(bytes.NewReader(req.Graph))
	if err != nil {
		return parsedSolve{}, fmt.Errorf("bad graph: %v", err)
	}
	var n int
	switch g := g.(type) {
	case *graph.Path:
		n = g.Len()
	case *graph.Tree:
		n = g.Len()
	default:
		return parsedSolve{}, fmt.Errorf(`graph kind %T is not solvable; send "path" or "tree"`, g)
	}
	// JSON declares no count ahead of its arrays, so unlike the binary path
	// this check runs post-decode; MaxBytesReader has already bounded the
	// allocation to the body cap by then.
	if lim := s.cfg.MaxNodes; lim > 0 && n > lim {
		return parsedSolve{}, fmt.Errorf("graph has %d nodes > limit %d: %w", n, lim, errNodeLimit)
	}
	fp, err := graph.Fingerprint(g)
	if err != nil {
		return parsedSolve{}, err
	}
	return parsedSolve{req: req, g: g, fp: fp}, nil
}

// readBody drains a request body into a pooled buffer. The caller returns
// the buffer via s.bufPool.Put once the bytes are no longer referenced
// (decoded graphs never alias the body — weights are copied out).
func (s *Server) readBody(r *http.Request) (*bytes.Buffer, error) {
	buf := s.bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if _, err := buf.ReadFrom(r.Body); err != nil {
		s.bufPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// engineRequest builds the engine.Request for a parsed item. The solve
// deadline comes from the item, clamped to the server maximum, falling back
// to the server default.
func (s *Server) engineRequest(p parsedSolve, defaultTimeoutMs int64) engine.Request {
	ms := p.req.TimeoutMs
	if ms == 0 {
		ms = defaultTimeoutMs
	}
	req := engine.Request{
		Solver: p.req.Solver,
		K:      p.req.K,
		Options: engine.Options{
			MaxComponents: p.req.MaxComponents,
			Timeout:       s.solveTimeoutOf(ms),
			Observer:      s.observer,
		},
	}
	switch g := p.g.(type) {
	case *graph.Path:
		req.Path = g
	case *graph.Tree:
		req.Tree = g
	}
	return req
}

// marshalResult renders the canonical response bytes for one solve result —
// the bytes that get cached and replayed byte-identically on hits. cert is
// nil unless the request asked for verification; trace is nil unless it asked
// for the span tree.
func marshalResult(fp uint64, res engine.Result, cert *verifyInfo, trace *obs.SpanNode, traceID string) ([]byte, error) {
	var body solveResponse
	body.Solver = res.Solver
	body.K = res.K
	body.Cut = res.Cut
	if body.Cut == nil {
		body.Cut = []int{}
	}
	body.CutWeight = res.CutWeight
	body.Bottleneck = res.Bottleneck
	body.ComponentWeights = res.ComponentWeights
	body.NumComponents = res.NumComponents()
	body.Fingerprint = fmt.Sprintf("%016x", fp)
	body.Verify = cert
	body.Trace = trace
	body.TraceID = traceID
	body.Stats.DurationMs = float64(res.Stats.Duration) / float64(time.Millisecond)
	body.Stats.Iterations = res.Stats.Iterations
	return json.Marshal(&body)
}

// certifyResult runs the optimality certificate for a solved request and
// bumps the server's verify counters. A solver without a registered
// objective is reported as an uncertified response rather than an error —
// the caller asked a question the certificate machinery cannot answer, and
// the Detail field says so.
func (s *Server) certifyResult(req engine.Request, res engine.Result) *verifyInfo {
	cert, err := verify.CertifyResult(req, &res)
	if err != nil {
		s.verifyUncertified.Add(1)
		return &verifyInfo{Certified: false, Detail: err.Error()}
	}
	if cert.Certified {
		s.verifyCertified.Add(1)
	} else {
		s.verifyUncertified.Add(1)
	}
	return &verifyInfo{
		Criterion: cert.Criterion,
		Certified: cert.Certified,
		Objective: cert.Objective,
		Bound:     cert.Bound,
		Detail:    cert.Detail,
	}
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

// writeBody writes a solve/batch response in the negotiated format: the
// binary media type raw, or JSON with a trailing newline.
func writeBody(w http.ResponseWriter, status int, body []byte, bin bool) {
	if bin {
		w.Header().Set("Content-Type", codec.ContentType)
		w.WriteHeader(status)
		w.Write(body)
		return
	}
	writeJSON(w, status, body)
}

// requestErrStatus maps a request-decoding error to its HTTP status: limit
// violations (body cap, declared node count, codec size guard) are 413,
// everything else a plain 400.
func requestErrStatus(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe),
		errors.Is(err, codec.ErrTooLarge),
		errors.Is(err, errNodeLimit):
		return http.StatusRequestEntityTooLarge
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
	}
	body, _ := json.Marshal(errorResponse{Error: msg})
	writeJSON(w, status, body)
}

// acquireSlot admits one unit of solve work: the uncontended fast path takes
// a free slot without building a wait context; otherwise the request queues
// under QueueTimeout, bounded also by the client connection (r.Context()
// ends on disconnect). On failure it writes the shed response and returns
// nil.
func (s *Server) acquireSlot(w http.ResponseWriter, r *http.Request) (release func()) {
	release, err := s.acquireSlotCtx(r.Context())
	if err != nil {
		s.writeSolveError(w, err)
		return nil
	}
	return release
}

// solveStatus maps an engine/solve error to an HTTP status.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrUnknownSolver),
		errors.Is(err, engine.ErrBadRequest),
		errors.Is(err, core.ErrBadBound):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleSolve is POST /v1/solve: decode (JSON, or the binary frame when
// Content-Type says so) → cache lookup → admission → engine.Solve → cache
// fill. The response is binary when the Accept header names the binary type,
// except traced solves, which always answer in JSON.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var p parsedSolve
	if isBinaryMedia(r.Header.Get("Content-Type")) {
		buf, err := s.readBody(r)
		if err != nil {
			s.writeError(w, requestErrStatus(err), "bad request body: "+err.Error())
			return
		}
		var rest []byte
		p, rest, err = s.parseBinarySolve(buf.Bytes())
		s.bufPool.Put(buf)
		if err != nil {
			s.writeError(w, requestErrStatus(err), err.Error())
			return
		}
		if len(rest) != 0 {
			s.releaseParsed(&p)
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("%d trailing bytes after the solve frame", len(rest)))
			return
		}
	} else {
		var req solveRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.writeError(w, requestErrStatus(err), "bad request body: "+err.Error())
			return
		}
		var err error
		p, err = s.parseSolve(req)
		if err != nil {
			s.writeError(w, requestErrStatus(err), err.Error())
			return
		}
	}
	defer s.releaseParsed(&p)
	internal := r.Header.Get(cluster.InternalHeader) != ""
	ctx := r.Context()
	var hasRemote bool
	if internal {
		// Adopt propagated trace context — internal hops only, so external
		// callers cannot inject trace identity. A malformed header is ignored:
		// the solve still runs, just under a fresh local trace.
		if rem, ok := obs.ParseTraceHeader(r.Header.Get(cluster.TraceHeader)); ok {
			ctx = obs.ContextWithRemote(ctx, rem)
			hasRemote = true
		}
	}
	wantBin := acceptsBinary(r.Header.Get("Accept")) && !p.req.Trace
	p.key = newCacheKey(p.fp, p.req.Solver, p.req.K, p.req.MaxComponents, p.req.Verify, p.req.Trace, wantBin)
	// canonKey names the canonical PRS1 frame for this solve — the format-
	// and trace-independent artifact every rendering derives from. Solves
	// fill it alongside the request's own key, and JSON misses fall back to
	// it, so one solve serves every response format without re-running the
	// engine (for untraced binary requests it is p.key itself).
	canonKey := p.key
	canonKey.trace, canonKey.bin = false, true

	if !p.req.NoCache {
		if body, ok := s.cache.Get(p.key); ok {
			s.clusterm.observeLookup(internal, true)
			w.Header().Set("X-Cache", "HIT")
			writeBody(w, http.StatusOK, body, wantBin)
			return
		}
		if !wantBin && !p.req.Trace {
			// Secondary probe via peek: the Get above already counted this
			// request's outcome, and a fallback render still answers it.
			if frame, ok := s.cache.peek(canonKey); ok {
				if body, err := renderJSONResult(frame, nil, ""); err == nil {
					s.clusterm.observeLookup(internal, true)
					s.cache.Put(p.key, body)
					w.Header().Set("X-Cache", "HIT")
					writeBody(w, http.StatusOK, body, wantBin)
					return
				}
			}
		}
		s.clusterm.observeLookup(internal, false)
	}

	// Misses resolve under the single-flight group: concurrent identical
	// requests perform one solve (or one forward) and share its frame. The
	// flight key normalizes the response format away (the value is always
	// the canonical PRS1 frame; JSON renders from it below), so mixed JSON
	// and binary callers — and forwarded internal requests, which arrive
	// binary — all share one solve. Two request shapes bypass the flight:
	// NoCache (the escape hatch from all result sharing) and Trace (a trace
	// describes its own solve and cannot be shared from another caller's).
	var (
		fb     flightBody
		shared bool
		err    error
	)
	if p.req.NoCache || p.req.Trace {
		fb, err = s.resolveMiss(ctx, &p, internal)
	} else {
		fb, shared, err = s.flight.Do(canonKey, func() (flightBody, error) {
			// The solve is detached from this request's cancellation: every
			// waiter that joined depends on it, and the engine deadline
			// bounds it regardless. Context values (request ID, remote trace
			// context) survive.
			return s.resolveMiss(context.WithoutCancel(ctx), &p, internal)
		})
	}
	if err != nil {
		s.writeSolveError(w, err)
		return
	}
	out := fb.body
	if !wantBin {
		// The tree renders into the body only for requests that asked for it:
		// a remote-parented flight leader also carries one (for the trailer),
		// and it must not leak into untraced JSON waiters.
		var tree *obs.SpanNode
		var traceID string
		if p.req.Trace {
			tree, traceID = fb.tree, fb.traceID
		}
		out, err = renderJSONResult(fb.body, tree, traceID)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	}
	if !p.req.NoCache {
		s.cache.Put(p.key, out)
		if p.key != canonKey {
			s.cache.Put(canonKey, fb.body)
		}
	}
	if s.cluster != nil {
		if fb.via != "" {
			w.Header().Set("X-Cluster", "forwarded "+fb.via)
		} else {
			w.Header().Set("X-Cluster", "local")
		}
	}
	if shared {
		w.Header().Set("X-Singleflight", "shared")
	}
	// Remote-parented internal solves return their span tree in a trailer so
	// the caller grafts it under its cluster-forward span. A trailer keeps
	// the PRS1 body byte-identical to an untraced forward; it must be
	// declared before the body and set after.
	var trailerSpans string
	if internal && hasRemote && fb.tree != nil {
		if spans, jerr := json.Marshal(fb.tree); jerr == nil {
			trailerSpans = base64.StdEncoding.EncodeToString(spans)
			w.Header().Set("Trailer", cluster.SpansTrailer)
		}
	}
	w.Header().Set("X-Cache", "MISS")
	writeBody(w, http.StatusOK, out, wantBin)
	if trailerSpans != "" {
		w.Header().Set(cluster.SpansTrailer, trailerSpans)
	}
}

// batchOutcome is one item's fate before rendering: exactly one of body or
// errMsg is set. body is already in the response format (JSON object or
// PRS1 frame).
type batchOutcome struct {
	body   []byte
	errMsg string
	cached bool
}

// handleBatch is POST /v1/batch: per-item cache lookups, then one
// engine.Batch over the misses. The whole batch holds a single admission
// slot — its internal parallelism is cfg.BatchWorkers — so a batch counts as
// one unit of heavy work against the limiter. Like solve, the request may be
// JSON or the PBT1 binary frame, and the response format follows Accept.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	start := time.Now()
	wantBin := acceptsBinary(r.Header.Get("Accept"))
	var (
		parsed    []parsedSolve
		errMsgs   []string
		timeoutMs int64
	)
	if isBinaryMedia(r.Header.Get("Content-Type")) {
		buf, err := s.readBody(r)
		if err != nil {
			s.writeError(w, requestErrStatus(err), "bad request body: "+err.Error())
			return
		}
		parsed, errMsgs, timeoutMs, err = s.parseBinaryBatch(buf.Bytes())
		s.bufPool.Put(buf)
		if err != nil {
			s.writeError(w, requestErrStatus(err), err.Error())
			return
		}
	} else {
		var breq batchRequest
		if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
			s.writeError(w, requestErrStatus(err), "bad request body: "+err.Error())
			return
		}
		if len(breq.Requests) == 0 {
			s.writeError(w, http.StatusBadRequest, `"requests" must be non-empty`)
			return
		}
		if len(breq.Requests) > s.cfg.MaxBatchRequests {
			s.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("batch of %d exceeds the %d-request limit", len(breq.Requests), s.cfg.MaxBatchRequests))
			return
		}
		if breq.TimeoutMs < 0 {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf(`"timeoutMs" must be non-negative (got %d)`, breq.TimeoutMs))
			return
		}
		timeoutMs = breq.TimeoutMs
		parsed = make([]parsedSolve, len(breq.Requests))
		errMsgs = make([]string, len(breq.Requests))
		for i, item := range breq.Requests {
			p, err := s.parseSolve(item)
			if err != nil {
				errMsgs[i] = err.Error()
				continue
			}
			parsed[i] = p
		}
	}
	defer func() {
		for i := range parsed {
			s.releaseParsed(&parsed[i])
		}
	}()

	n := len(parsed)
	outcomes := make([]batchOutcome, n)
	var solved, failed, hits int

	// Cache-check every well-formed item first; only misses go to the pool.
	var missIdx []int
	for i := range parsed {
		if errMsgs[i] != "" {
			outcomes[i].errMsg = errMsgs[i]
			failed++
			continue
		}
		p := &parsed[i]
		// Trace is solve-only: items run under the shared batch trace below,
		// and their cached bodies must stay interchangeable with an untraced
		// /v1/solve for the same request.
		p.req.Trace = false
		p.key = newCacheKey(p.fp, p.req.Solver, p.req.K, p.req.MaxComponents, p.req.Verify, false, wantBin)
		if !p.req.NoCache {
			if body, ok := s.cache.Get(p.key); ok {
				outcomes[i] = batchOutcome{body: body, cached: true}
				solved++
				hits++
				continue
			}
		}
		missIdx = append(missIdx, i)
	}

	if len(missIdx) > 0 {
		release := s.acquireSlot(w, r)
		if release == nil {
			return
		}
		reqs := make([]engine.Request, len(missIdx))
		for j, i := range missIdx {
			reqs[j] = s.engineRequest(parsed[i], timeoutMs)
		}
		// One shared trace for the whole batch: each item's solver span grows
		// a disjoint subtree under the root, and the phase metrics see every
		// item. Item events are attributed via BatchIndex and "rid#i" IDs.
		tr := obs.New("batch")
		tr.RequestID = obs.RequestIDFrom(r.Context())
		b := &engine.Batch{Workers: s.cfg.BatchWorkers}
		out, _ := b.Run(obs.NewContext(r.Context(), tr), reqs) // per-item errors land in Items
		tr.Finish()
		release()
		for j, i := range missIdx {
			item := out.Items[j]
			if item.Err != nil {
				outcomes[i].errMsg = item.Err.Error()
				failed++
				continue
			}
			var cert *verifyInfo
			if parsed[i].req.Verify {
				cert = s.certifyResult(reqs[j], item.Result)
			}
			var body []byte
			if wantBin {
				body = appendSolveResult(nil, parsed[i].fp, item.Result, cert)
			} else {
				var err error
				body, err = marshalResult(parsed[i].fp, item.Result, cert, nil, "")
				if err != nil {
					outcomes[i].errMsg = err.Error()
					failed++
					continue
				}
			}
			if !parsed[i].req.NoCache {
				s.cache.Put(parsed[i].key, body)
			}
			outcomes[i] = batchOutcome{body: body}
			solved++
		}
	}
	wallMs := float64(time.Since(start)) / float64(time.Millisecond)

	if wantBin {
		out := append([]byte(nil), batchRespMagic...)
		out = binary.AppendUvarint(out, uint64(n))
		out = binary.AppendUvarint(out, uint64(solved))
		out = binary.AppendUvarint(out, uint64(failed))
		out = binary.AppendUvarint(out, uint64(hits))
		out = appendF64(out, wallMs)
		out = binary.AppendUvarint(out, uint64(n))
		for i := range outcomes {
			o := &outcomes[i]
			tag := byte(wireItemResult)
			body := o.body
			switch {
			case o.errMsg != "":
				tag, body = wireItemError, []byte(o.errMsg)
			case o.cached:
				tag = wireItemCached
			}
			out = append(out, tag)
			out = binary.AppendUvarint(out, uint64(len(body)))
			out = append(out, body...)
		}
		writeBody(w, http.StatusOK, out, true)
		return
	}

	var resp batchResponse
	resp.Items = make([]batchItem, n)
	resp.Stats.Requests = n
	resp.Stats.Solved = solved
	resp.Stats.Failed = failed
	resp.Stats.CacheHits = hits
	resp.Stats.WallMs = wallMs
	for i := range outcomes {
		o := &outcomes[i]
		if o.errMsg != "" {
			resp.Items[i] = batchItem{Error: o.errMsg}
		} else {
			resp.Items[i] = batchItem{Result: o.body, Cached: o.cached}
		}
	}
	body, err := json.Marshal(&resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// solverInfo is one row of GET /v1/solvers.
type solverInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Objective is the criterion the solver optimizes and the certificate
	// machinery can certify ("bandwidth", "bottleneck", "minprocs"), or
	// "unknown" when the solver declares none.
	Objective string `json:"objective"`
}

// limitsInfo publishes the server's operational limits so clients can size
// requests (and pick the sync vs jobs route) without trial and error.
type limitsInfo struct {
	MaxNodes         int   `json:"maxNodes"`
	MaxBodyBytes     int64 `json:"maxBodyBytes"`
	MaxBatchRequests int   `json:"maxBatchRequests"`
	MaxConcurrent    int   `json:"maxConcurrent"`
	MaxQueue         int   `json:"maxQueue"`
	DefaultTimeoutMs int64 `json:"defaultTimeoutMs"`
	MaxTimeoutMs     int64 `json:"maxTimeoutMs"`
	JobWorkers       int   `json:"jobWorkers"`
	JobQueue         int   `json:"jobQueue"`
	JobRetentionMs   int64 `json:"jobRetentionMs"`
	MaxJobTimeoutMs  int64 `json:"maxJobTimeoutMs"`
}

// solversResponse is the body of GET /v1/solvers: the registry plus the
// server's limits, and — when clustering is configured — a cluster summary
// (full detail lives at GET /v1/cluster).
type solversResponse struct {
	Solvers []solverInfo     `json:"solvers"`
	Limits  limitsInfo       `json:"limits"`
	Cluster *clusterEnvelope `json:"cluster,omitempty"`
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	names := engine.Names()
	out := make([]solverInfo, 0, len(names))
	for _, name := range names {
		sol, err := engine.Get(name)
		if err != nil {
			continue // unregistered between Names and Get; skip
		}
		out = append(out, solverInfo{
			Name:      name,
			Kind:      sol.Kind().String(),
			Objective: engine.ObjectiveOf(sol).String(),
		})
	}
	var env *clusterEnvelope
	if s.cluster != nil {
		st := s.cluster.Status()
		env = &clusterEnvelope{Enabled: true, Self: st.Self, Size: len(st.Peers), Alive: st.Alive}
	}
	body, _ := json.Marshal(solversResponse{
		Solvers: out,
		Cluster: env,
		Limits: limitsInfo{
			MaxNodes:         s.cfg.MaxNodes,
			MaxBodyBytes:     s.cfg.MaxBodyBytes,
			MaxBatchRequests: s.cfg.MaxBatchRequests,
			MaxConcurrent:    s.cfg.MaxConcurrent,
			MaxQueue:         s.cfg.MaxQueue,
			DefaultTimeoutMs: s.cfg.DefaultTimeout.Milliseconds(),
			MaxTimeoutMs:     s.cfg.MaxTimeout.Milliseconds(),
			JobWorkers:       s.cfg.JobWorkers,
			JobQueue:         s.cfg.JobQueue,
			JobRetentionMs:   s.cfg.JobRetention.Milliseconds(),
			MaxJobTimeoutMs:  s.cfg.MaxJobTimeout.Milliseconds(),
		},
	})
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		Solvers       int     `json:"solvers"`
	}
	h := health{Status: "ok", UptimeSeconds: time.Since(s.started).Seconds(), Solvers: len(engine.Names())}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	body, _ := json.Marshal(h)
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	httpSnap, httpDur, inFlight := s.httpm.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, metricsSnapshot{
		solvers:           s.collector.Snapshot(),
		cache:             s.cache.Stats(),
		limiter:           s.limiter.Stats(),
		http:              httpSnap,
		httpDurations:     httpDur,
		httpInFlight:      inFlight,
		verifyCertified:   s.verifyCertified.Load(),
		verifyUncertified: s.verifyUncertified.Load(),
		uptime:            time.Since(s.started),
	})
	writeJobsMetrics(w, s.jobs.Stats())
	s.solvem.writeTo(w)
	s.writeClusterMetrics(w)
	s.writeObsMetrics(w)
}
