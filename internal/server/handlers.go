package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/verify"
)

// The wire format. Graphs travel in the graph package's JSON envelope
// ({"kind":"path","nodeWeights":...,"edgeWeights":...}); everything else is
// flat JSON. Durations cross the wire in milliseconds.

// solveRequest is the body of POST /v1/solve and one element of a batch.
type solveRequest struct {
	// Solver is the registry name (see GET /v1/solvers).
	Solver string `json:"solver"`
	// K is the execution-time bound; must be positive and finite.
	K float64 `json:"k"`
	// Graph is the task graph in the graph-JSON envelope.
	Graph json.RawMessage `json:"graph"`
	// MaxComponents caps the component count for solvers that support it.
	MaxComponents int `json:"maxComponents,omitempty"`
	// TimeoutMs overrides the server's default solve deadline, capped at
	// the server's maximum.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// NoCache bypasses the result cache for this request (both lookup and
	// fill) — the load-testing and debugging escape hatch.
	NoCache bool `json:"noCache,omitempty"`
	// Verify runs the solver-independent optimality certificate on the
	// result (see internal/verify) and reports it in the response.
	Verify bool `json:"verify,omitempty"`
	// Trace returns the solve's phase-span tree in the response. Only
	// honored on /v1/solve; batch items are solved under one shared batch
	// trace and ignore this flag.
	Trace bool `json:"trace,omitempty"`
}

// verifyInfo is the wire form of a verify.Certificate.
type verifyInfo struct {
	Criterion string  `json:"criterion"`
	Certified bool    `json:"certified"`
	Objective float64 `json:"objective"`
	Bound     float64 `json:"bound"`
	Detail    string  `json:"detail,omitempty"`
}

// solveResponse is the body of a successful solve. Cached hits replay these
// exact bytes, so Stats describe the solve that originally produced the
// result; the X-Cache header says which case the caller got.
type solveResponse struct {
	Solver           string    `json:"solver"`
	K                float64   `json:"k"`
	Cut              []int     `json:"cut"`
	CutWeight        float64   `json:"cutWeight"`
	Bottleneck       float64   `json:"bottleneck"`
	ComponentWeights []float64 `json:"componentWeights"`
	NumComponents    int       `json:"numComponents"`
	Fingerprint      string    `json:"fingerprint"`
	// Verify is present only when the request asked for verification; cached
	// hits replay the certificate of the original solve (the cache key
	// includes the verify flag, so unverified entries never satisfy a
	// verified request).
	Verify *verifyInfo `json:"verify,omitempty"`
	// Trace is the solve's span tree, present only when the request set
	// "trace". Like Stats, cached hits replay the tree of the original
	// solve (the trace flag is part of the cache key).
	Trace *obs.SpanNode `json:"trace,omitempty"`
	Stats struct {
		DurationMs float64 `json:"durationMs"`
		Iterations int64   `json:"iterations"`
	} `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// batchRequest is the body of POST /v1/batch.
type batchRequest struct {
	Requests []solveRequest `json:"requests"`
	// TimeoutMs is the default per-item deadline for items without one.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
}

// batchItem mirrors engine.BatchItem: exactly one of Result or Error is set.
// Result carries the same bytes a /v1/solve for that item would return.
type batchItem struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Cached bool            `json:"cached,omitempty"`
}

type batchResponse struct {
	Items []batchItem `json:"items"`
	Stats struct {
		Requests  int     `json:"requests"`
		Solved    int     `json:"solved"`
		Failed    int     `json:"failed"`
		CacheHits int     `json:"cacheHits"`
		WallMs    float64 `json:"wallMs"`
	} `json:"stats"`
}

// parsedSolve is a decoded, validated solve item ready for the engine.
type parsedSolve struct {
	req solveRequest
	g   any    // *graph.Path or *graph.Tree
	fp  uint64 // graph fingerprint
	key cacheKey
}

// parseSolve validates one solve item. Errors are client errors (400).
func (s *Server) parseSolve(req solveRequest) (parsedSolve, error) {
	if req.Solver == "" {
		return parsedSolve{}, errors.New(`"solver" is required`)
	}
	if !(req.K > 0) || math.IsInf(req.K, 0) {
		return parsedSolve{}, fmt.Errorf(`"k" must be positive and finite (got %v)`, req.K)
	}
	if req.MaxComponents < 0 {
		return parsedSolve{}, fmt.Errorf(`"maxComponents" must be non-negative (got %d)`, req.MaxComponents)
	}
	if req.TimeoutMs < 0 {
		return parsedSolve{}, fmt.Errorf(`"timeoutMs" must be non-negative (got %d)`, req.TimeoutMs)
	}
	if len(req.Graph) == 0 {
		return parsedSolve{}, errors.New(`"graph" is required`)
	}
	g, err := graph.ReadJSON(bytes.NewReader(req.Graph))
	if err != nil {
		return parsedSolve{}, fmt.Errorf("bad graph: %v", err)
	}
	switch g.(type) {
	case *graph.Path, *graph.Tree:
	default:
		return parsedSolve{}, fmt.Errorf(`graph kind %T is not solvable; send "path" or "tree"`, g)
	}
	fp, err := graph.Fingerprint(g)
	if err != nil {
		return parsedSolve{}, err
	}
	return parsedSolve{
		req: req,
		g:   g,
		fp:  fp,
		key: newCacheKey(fp, req.Solver, req.K, req.MaxComponents, req.Verify, req.Trace),
	}, nil
}

// engineRequest builds the engine.Request for a parsed item. The solve
// deadline comes from the item, clamped to the server maximum, falling back
// to the server default.
func (s *Server) engineRequest(p parsedSolve, defaultTimeoutMs int64) engine.Request {
	timeout := s.cfg.DefaultTimeout
	if ms := p.req.TimeoutMs; ms == 0 {
		ms = defaultTimeoutMs
		if ms > 0 {
			timeout = time.Duration(ms) * time.Millisecond
		}
	} else {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	req := engine.Request{
		Solver: p.req.Solver,
		K:      p.req.K,
		Options: engine.Options{
			MaxComponents: p.req.MaxComponents,
			Timeout:       timeout,
			Observer:      s.observer,
		},
	}
	switch g := p.g.(type) {
	case *graph.Path:
		req.Path = g
	case *graph.Tree:
		req.Tree = g
	}
	return req
}

// marshalResult renders the canonical response bytes for one solve result —
// the bytes that get cached and replayed byte-identically on hits. cert is
// nil unless the request asked for verification; trace is nil unless it asked
// for the span tree.
func marshalResult(fp uint64, res engine.Result, cert *verifyInfo, trace *obs.SpanNode) ([]byte, error) {
	var body solveResponse
	body.Solver = res.Solver
	body.K = res.K
	body.Cut = res.Cut
	if body.Cut == nil {
		body.Cut = []int{}
	}
	body.CutWeight = res.CutWeight
	body.Bottleneck = res.Bottleneck
	body.ComponentWeights = res.ComponentWeights
	body.NumComponents = res.NumComponents()
	body.Fingerprint = fmt.Sprintf("%016x", fp)
	body.Verify = cert
	body.Trace = trace
	body.Stats.DurationMs = float64(res.Stats.Duration) / float64(time.Millisecond)
	body.Stats.Iterations = res.Stats.Iterations
	return json.Marshal(&body)
}

// certifyResult runs the optimality certificate for a solved request and
// bumps the server's verify counters. A solver without a registered
// objective is reported as an uncertified response rather than an error —
// the caller asked a question the certificate machinery cannot answer, and
// the Detail field says so.
func (s *Server) certifyResult(req engine.Request, res engine.Result) *verifyInfo {
	cert, err := verify.CertifyResult(req, &res)
	if err != nil {
		s.verifyUncertified.Add(1)
		return &verifyInfo{Certified: false, Detail: err.Error()}
	}
	if cert.Certified {
		s.verifyCertified.Add(1)
	} else {
		s.verifyUncertified.Add(1)
	}
	return &verifyInfo{
		Criterion: cert.Criterion,
		Certified: cert.Certified,
		Objective: cert.Objective,
		Bound:     cert.Bound,
		Detail:    cert.Detail,
	}
}

// writeJSON writes a JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte("\n"))
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.RetryAfter.Seconds()))))
	}
	body, _ := json.Marshal(errorResponse{Error: msg})
	writeJSON(w, status, body)
}

// solveStatus maps an engine/solve error to an HTTP status.
func solveStatus(err error) int {
	switch {
	case errors.Is(err, engine.ErrUnknownSolver),
		errors.Is(err, engine.ErrBadRequest),
		errors.Is(err, core.ErrBadBound):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrInfeasible):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line.
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// handleSolve is POST /v1/solve: decode → cache lookup → admission →
// engine.Solve → cache fill.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req solveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	p, err := s.parseSolve(req)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	if !p.req.NoCache {
		if body, ok := s.cache.Get(p.key); ok {
			w.Header().Set("X-Cache", "HIT")
			writeJSON(w, http.StatusOK, body)
			return
		}
	}

	// Admission: wait for a solve slot within QueueTimeout, bounded also by
	// the client connection (r.Context() ends on disconnect).
	qctx, qcancel := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
	release, err := s.limiter.Acquire(qctx)
	qcancel()
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.writeError(w, http.StatusTooManyRequests, "admission queue full")
		default:
			s.writeError(w, http.StatusServiceUnavailable, "timed out waiting for a solve slot")
		}
		return
	}
	defer release()

	// Every solve runs under a trace: the phase spans feed the per-phase
	// metrics whether or not the client asked for the tree back. The root
	// carries the request ID so exported traces correlate with log lines.
	tr := obs.New("solve " + p.req.Solver)
	tr.RequestID = obs.RequestIDFrom(r.Context())
	ereq := s.engineRequest(p, 0)
	res, err := engine.Solve(obs.NewContext(r.Context(), tr), ereq)
	tr.Finish()
	if err != nil {
		s.writeError(w, solveStatus(err), err.Error())
		return
	}
	var cert *verifyInfo
	if p.req.Verify {
		cert = s.certifyResult(ereq, res)
	}
	var spans *obs.SpanNode
	if p.req.Trace {
		spans = tr.Tree()
	}
	body, err := marshalResult(p.fp, res, cert, spans)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !p.req.NoCache {
		s.cache.Put(p.key, body)
	}
	w.Header().Set("X-Cache", "MISS")
	writeJSON(w, http.StatusOK, body)
}

// handleBatch is POST /v1/batch: per-item cache lookups, then one
// engine.Batch over the misses. The whole batch holds a single admission
// slot — its internal parallelism is cfg.BatchWorkers — so a batch counts as
// one unit of heavy work against the limiter.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var breq batchRequest
	if err := json.NewDecoder(r.Body).Decode(&breq); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(breq.Requests) == 0 {
		s.writeError(w, http.StatusBadRequest, `"requests" must be non-empty`)
		return
	}
	if len(breq.Requests) > s.cfg.MaxBatchRequests {
		s.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-request limit", len(breq.Requests), s.cfg.MaxBatchRequests))
		return
	}
	if breq.TimeoutMs < 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf(`"timeoutMs" must be non-negative (got %d)`, breq.TimeoutMs))
		return
	}
	start := time.Now()
	var resp batchResponse
	resp.Items = make([]batchItem, len(breq.Requests))
	resp.Stats.Requests = len(breq.Requests)

	// Decode and cache-check every item first; only misses go to the pool.
	parsed := make([]parsedSolve, len(breq.Requests))
	var missIdx []int
	for i, item := range breq.Requests {
		// Trace is solve-only: items run under the shared batch trace below,
		// and their cached bodies must stay interchangeable with an untraced
		// /v1/solve for the same request.
		item.Trace = false
		p, err := s.parseSolve(item)
		if err != nil {
			resp.Items[i] = batchItem{Error: err.Error()}
			resp.Stats.Failed++
			continue
		}
		parsed[i] = p
		if !p.req.NoCache {
			if body, ok := s.cache.Get(p.key); ok {
				resp.Items[i] = batchItem{Result: body, Cached: true}
				resp.Stats.Solved++
				resp.Stats.CacheHits++
				continue
			}
		}
		missIdx = append(missIdx, i)
	}

	if len(missIdx) > 0 {
		qctx, qcancel := context.WithTimeout(r.Context(), s.cfg.QueueTimeout)
		release, err := s.limiter.Acquire(qctx)
		qcancel()
		if err != nil {
			switch {
			case errors.Is(err, ErrQueueFull):
				s.writeError(w, http.StatusTooManyRequests, "admission queue full")
			default:
				s.writeError(w, http.StatusServiceUnavailable, "timed out waiting for a solve slot")
			}
			return
		}
		reqs := make([]engine.Request, len(missIdx))
		for j, i := range missIdx {
			reqs[j] = s.engineRequest(parsed[i], breq.TimeoutMs)
		}
		// One shared trace for the whole batch: each item's solver span grows
		// a disjoint subtree under the root, and the phase metrics see every
		// item. Item events are attributed via BatchIndex and "rid#i" IDs.
		tr := obs.New("batch")
		tr.RequestID = obs.RequestIDFrom(r.Context())
		b := &engine.Batch{Workers: s.cfg.BatchWorkers}
		out, _ := b.Run(obs.NewContext(r.Context(), tr), reqs) // per-item errors land in Items
		tr.Finish()
		release()
		for j, i := range missIdx {
			item := out.Items[j]
			if item.Err != nil {
				resp.Items[i] = batchItem{Error: item.Err.Error()}
				resp.Stats.Failed++
				continue
			}
			var cert *verifyInfo
			if parsed[i].req.Verify {
				cert = s.certifyResult(reqs[j], item.Result)
			}
			body, err := marshalResult(parsed[i].fp, item.Result, cert, nil)
			if err != nil {
				resp.Items[i] = batchItem{Error: err.Error()}
				resp.Stats.Failed++
				continue
			}
			if !parsed[i].req.NoCache {
				s.cache.Put(parsed[i].key, body)
			}
			resp.Items[i] = batchItem{Result: body}
			resp.Stats.Solved++
		}
	}
	resp.Stats.WallMs = float64(time.Since(start)) / float64(time.Millisecond)
	body, err := json.Marshal(&resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// solverInfo is one row of GET /v1/solvers.
type solverInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Objective is the criterion the solver optimizes and the certificate
	// machinery can certify ("bandwidth", "bottleneck", "minprocs"), or
	// "unknown" when the solver declares none.
	Objective string `json:"objective"`
}

func (s *Server) handleSolvers(w http.ResponseWriter, r *http.Request) {
	names := engine.Names()
	out := make([]solverInfo, 0, len(names))
	for _, name := range names {
		sol, err := engine.Get(name)
		if err != nil {
			continue // unregistered between Names and Get; skip
		}
		out = append(out, solverInfo{
			Name:      name,
			Kind:      sol.Kind().String(),
			Objective: engine.ObjectiveOf(sol).String(),
		})
	}
	body, _ := json.Marshal(out)
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
		Solvers       int     `json:"solvers"`
	}
	h := health{Status: "ok", UptimeSeconds: time.Since(s.started).Seconds(), Solvers: len(engine.Names())}
	status := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	body, _ := json.Marshal(h)
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	httpSnap, httpDur, inFlight := s.httpm.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, metricsSnapshot{
		solvers:           s.collector.Snapshot(),
		cache:             s.cache.Stats(),
		limiter:           s.limiter.Stats(),
		http:              httpSnap,
		httpDurations:     httpDur,
		httpInFlight:      inFlight,
		verifyCertified:   s.verifyCertified.Load(),
		verifyUncertified: s.verifyUncertified.Load(),
		uptime:            time.Since(s.started),
	})
	s.solvem.writeTo(w)
}
