package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
)

// clusterNode is one member of a test cluster: a real server on a loopback
// listener, its cluster view, and a counter of engine solves it performed.
type clusterNode struct {
	srv    *Server
	clu    *cluster.Cluster
	url    string
	solves atomic.Int64
}

// newTestCluster boots n partitiond nodes on loopback listeners, each
// configured with the full peer list. The health sweeper is not started —
// membership changes flow from passive forward-failure detection, keeping
// the tests deterministic.
func newTestCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		urls[i] = "http://" + l.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		node := &clusterNode{url: urls[i]}
		clu, err := cluster.New(cluster.Config{
			Self:           urls[i],
			Peers:          urls,
			HealthInterval: time.Hour,
			Logger:         quietLogger(),
		})
		if err != nil {
			t.Fatal(err)
		}
		node.clu = clu
		node.srv = New(Config{
			Cluster:  clu,
			Logger:   quietLogger(),
			Observer: solveCounter(&node.solves),
		})
		go node.srv.Serve(listeners[i])
		nodes[i] = node
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			node.srv.Shutdown(ctx)
			clu.Close()
		})
	}
	return nodes
}

// fingerprintedPath builds a deterministic path graph plus its fingerprint.
func fingerprintedPath(t *testing.T, n int, seed uint64) (g *graph.Path, fp uint64) {
	t.Helper()
	g = testPath(t, n, seed)
	fp, err := graph.Fingerprint(g)
	if err != nil {
		t.Fatal(err)
	}
	return g, fp
}

// ownerOf maps a fingerprint to the index of its owning node.
func ownerOf(t *testing.T, nodes []*clusterNode, fp uint64) int {
	t.Helper()
	peer, local := nodes[0].clu.Route(fp)
	if local {
		peer = nodes[0].url
	}
	for i, n := range nodes {
		if n.url == peer {
			return i
		}
	}
	t.Fatalf("owner %s is not a cluster node", peer)
	return -1
}

// graphOwnedBy searches seeds until it finds a path graph owned by nodes[want].
func graphOwnedBy(t *testing.T, nodes []*clusterNode, want int) (*graph.Path, uint64) {
	t.Helper()
	for seed := uint64(1); seed < 200; seed++ {
		g, fp := fingerprintedPath(t, 64, seed)
		if ownerOf(t, nodes, fp) == want {
			return g, fp
		}
	}
	t.Fatal("no seed produced a graph owned by the requested node")
	return nil, 0
}

func postBinarySolve(t *testing.T, url string, frame []byte, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", codec.ContentType)
	req.Header.Set("Accept", codec.ContentType)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func postJSONSolve(url string, sreq solveRequest, headers map[string]string) (*http.Response, []byte, error) {
	b, err := json.Marshal(sreq)
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/solve", bytes.NewReader(b))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, body, err
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", url, err)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// graphJSONOf renders a built graph through the canonical writer.
func graphJSONOf(t *testing.T, g *graph.Path) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return json.RawMessage(buf.Bytes())
}

// TestClusterForwardedBinaryByteIdentical is the wire-fidelity acceptance
// check: a binary solve forwarded through a non-owner returns exactly the
// bytes the owner serves locally, and the owner attributes the internal
// lookup to the peer tier.
func TestClusterForwardedBinaryByteIdentical(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, fp := graphOwnedBy(t, nodes, 0)
	nonOwner := nodes[1]

	frame, err := AppendSolveRequest(nil, SolveParams{Solver: "bandwidth", K: 500}, g)
	if err != nil {
		t.Fatal(err)
	}
	resp, viaPeer := postBinarySolve(t, nonOwner.url, frame, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded solve: %d %s", resp.StatusCode, viaPeer)
	}
	if got := resp.Header.Get("X-Cluster"); got != "forwarded "+nodes[0].url {
		t.Errorf("X-Cluster = %q, want %q", got, "forwarded "+nodes[0].url)
	}
	sr, rest, err := DecodeSolveResult(viaPeer)
	if err != nil || len(rest) != 0 {
		t.Fatalf("forwarded response is not one PRS1 frame: %v (%d trailing)", err, len(rest))
	}
	if sr.Fingerprint != fp {
		t.Errorf("fingerprint = %x, want %x", sr.Fingerprint, fp)
	}

	// The owner must now hold the result: same bytes, straight from cache.
	resp2, local := postBinarySolve(t, nodes[0].url, frame, nil)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("owner solve: %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("owner X-Cache = %q, want HIT (forward should have filled its cache)", got)
	}
	if !bytes.Equal(viaPeer, local) {
		t.Error("forwarded and owner-local response bytes differ")
	}

	if got := nodes[0].solves.Load(); got != 1 {
		t.Errorf("owner performed %d solves, want 1", got)
	}
	if got := nonOwner.solves.Load(); got != 0 {
		t.Errorf("non-owner performed %d solves, want 0", got)
	}
	metrics := getText(t, nodes[0].url+"/metrics")
	if !strings.Contains(metrics, `partitiond_cache_requests_total{tier="peer",result="miss"} 1`) {
		t.Error("owner metrics missing the peer-tier miss")
	}
	fwd := getText(t, nonOwner.url+"/metrics")
	if !strings.Contains(fwd, `partitiond_cluster_forwards_total{outcome="miss"} 1`) {
		t.Error("non-owner metrics missing the forward")
	}
}

// TestClusterWideSingleSolve is the thundering-herd acceptance check: M
// concurrent identical requests spread across every node — the owner
// included — perform exactly one engine solve cluster-wide.
func TestClusterWideSingleSolve(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, _ := graphOwnedBy(t, nodes, 2)
	sreq := solveRequest{Solver: "bandwidth", K: 700, Graph: graphJSONOf(t, g)}

	const m = 12
	bodies := make([][]byte, m)
	errs := make([]error, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body, err := postJSONSolve(nodes[i%len(nodes)].url, sreq, nil)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	for i := 1; i < m; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	var total int64
	for i, n := range nodes {
		c := n.solves.Load()
		total += c
		if c != 0 && i != 2 {
			t.Errorf("non-owner node %d performed %d solves", i, c)
		}
	}
	if total != 1 {
		t.Fatalf("cluster performed %d engine solves for %d identical requests, want exactly 1", total, m)
	}
}

// TestClusterOwnerDeathFailover: killing the owner degrades requests on the
// survivors to local solves — no request fails — and the dead peer shows up
// in /v1/cluster.
func TestClusterOwnerDeathFailover(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, _ := graphOwnedBy(t, nodes, 0)
	sreq := solveRequest{Solver: "bandwidth", K: 600, Graph: graphJSONOf(t, g)}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := nodes[0].srv.Shutdown(ctx); err != nil {
		t.Fatalf("owner shutdown: %v", err)
	}

	survivor := nodes[1]
	resp, body, err := postJSONSolve(survivor.url, sreq, nil)
	if err != nil {
		t.Fatalf("solve against survivor: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after owner death: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cluster"); got != "local" {
		t.Errorf("X-Cluster = %q, want local (forward must fall back)", got)
	}
	if got := survivor.solves.Load(); got != 1 {
		t.Errorf("survivor performed %d solves, want 1", got)
	}

	var cs clusterResponse
	getJSON(t, survivor.url+"/v1/cluster", &cs)
	dead := 0
	for _, p := range cs.Peers {
		if p.State == "dead" {
			dead++
			if p.URL != nodes[0].url {
				t.Errorf("dead peer = %s, want %s", p.URL, nodes[0].url)
			}
		}
	}
	if dead != 1 || cs.Alive != 2 {
		t.Errorf("peers = %+v (alive %d), want exactly the owner dead", cs.Peers, cs.Alive)
	}

	// The fallback result was cached locally: the retry is a pure hit.
	resp2, _, err := postJSONSolve(survivor.url, sreq, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("retry X-Cache = %q, want HIT", got)
	}
}

// TestClusterHopGuard: a request already marked internal is never forwarded
// again, even from a non-owner — the loop-prevention invariant.
func TestClusterHopGuard(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, _ := graphOwnedBy(t, nodes, 0)
	sreq := solveRequest{Solver: "bandwidth", K: 800, Graph: graphJSONOf(t, g)}

	nonOwner := nodes[1]
	resp, body, err := postJSONSolve(nonOwner.url, sreq, map[string]string{cluster.InternalHeader: "1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("internal solve: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cluster"); got != "local" {
		t.Errorf("X-Cluster = %q, want local (hop guard must prevent re-forwarding)", got)
	}
	if got := nonOwner.solves.Load(); got != 1 {
		t.Errorf("non-owner performed %d solves, want 1 (locally, without forwarding)", got)
	}
	st := nonOwner.clu.Status()
	if st.Forwards.Hit+st.Forwards.Miss+st.Forwards.Errors != 0 {
		t.Errorf("forwards = %+v, want none", st.Forwards)
	}
	metrics := getText(t, nonOwner.url+"/metrics")
	if !strings.Contains(metrics, `partitiond_cache_requests_total{tier="peer",result="miss"} 1`) {
		t.Error("internal request not attributed to the peer tier")
	}
}

// TestClusterStatusEndpoints: /v1/cluster and the /v1/solvers envelope on
// clustered and standalone servers.
func TestClusterStatusEndpoints(t *testing.T) {
	nodes := newTestCluster(t, 3)
	var cs clusterResponse
	getJSON(t, nodes[1].url+"/v1/cluster", &cs)
	if !cs.Enabled || cs.Self != nodes[1].url || len(cs.Peers) != 3 || cs.Alive != 3 {
		t.Errorf("clusterResponse = %+v", cs)
	}
	selfRows := 0
	for _, p := range cs.Peers {
		if p.Self {
			selfRows++
			if p.URL != nodes[1].url {
				t.Errorf("self row = %s, want %s", p.URL, nodes[1].url)
			}
		}
	}
	if selfRows != 1 {
		t.Errorf("%d self rows, want 1", selfRows)
	}
	var sv solversResponse
	getJSON(t, nodes[0].url+"/v1/solvers", &sv)
	if sv.Cluster == nil || !sv.Cluster.Enabled || sv.Cluster.Size != 3 || sv.Cluster.Alive != 3 {
		t.Errorf("solvers cluster envelope = %+v", sv.Cluster)
	}

	// Standalone: the route answers with enabled=false and no envelope.
	s := newTestServer(t, Config{})
	rec := doJSON(t, s.Handler(), "GET", "/v1/cluster", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("standalone /v1/cluster: %d", rec.Code)
	}
	var standalone clusterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &standalone); err != nil {
		t.Fatal(err)
	}
	if standalone.Enabled || len(standalone.Peers) != 0 {
		t.Errorf("standalone clusterResponse = %+v, want disabled", standalone)
	}
	recS := doJSON(t, s.Handler(), "GET", "/v1/solvers", nil)
	if strings.Contains(recS.Body.String(), `"cluster"`) {
		t.Error("standalone /v1/solvers should omit the cluster envelope")
	}
}

// solveCounter adapts an atomic counter to the engine observer interface.
func solveCounter(n *atomic.Int64) engine.Observer {
	return engine.ObserverFunc(func(engine.Event) { n.Add(1) })
}

// TestSolveSingleFlightLocal: on a single (non-clustered) node, N identical
// concurrent misses perform one engine solve, with every caller served the
// same bytes — the sync-path fix for the duplicated-work gap the jobs
// subsystem already closed for async submissions.
func TestSolveSingleFlightLocal(t *testing.T) {
	s := newTestServer(t, Config{})
	started, release := armGate(t)

	sreq := solveRequest{Solver: "test-gate", K: 42, Graph: pathGraphJSON(t, 50, 7)}
	const n = 8
	recs := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs[i] = doJSONRaw(s.Handler(), "POST", "/v1/solve", sreq)
		}(i)
	}
	<-started // the flight leader is inside the solver
	// Give the other callers time to join the leader's flight before letting
	// the solve finish; latecomers after this point hit the cache instead,
	// so the solve count stays 1 regardless of scheduling.
	time.Sleep(100 * time.Millisecond)
	release()
	wg.Wait()

	// The gate solver signals its channel once per invocation; we consumed
	// the leader's signal, so any leftover signal is a duplicated solve.
	if extra := len(started); extra != 0 {
		t.Fatalf("solver ran %d times for %d identical requests, want 1", 1+extra, n)
	}
	var sharedHdr int
	for i, rec := range recs {
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d %s", i, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(recs[0].Body.Bytes(), rec.Body.Bytes()) {
			t.Errorf("request %d body differs", i)
		}
		if rec.Header().Get("X-Singleflight") == "shared" {
			sharedHdr++
		}
	}
	if sharedHdr == 0 {
		t.Error("no response carried X-Singleflight: shared")
	}
	metrics := doJSON(t, s.Handler(), "GET", "/metrics", nil).Body.String()
	if !strings.Contains(metrics, `partitiond_singleflight_total{result="lead"} 1`) {
		t.Error("metrics missing the flight lead")
	}
	if !strings.Contains(metrics, `partitiond_cache_requests_total{tier="local",result="miss"}`) {
		t.Error("metrics missing the local-tier cache series")
	}
}

// findSpan walks a span tree depth-first for the first node with the name.
func findSpan(n *obs.SpanNode, name string) *obs.SpanNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if got := findSpan(c, name); got != nil {
			return got
		}
	}
	return nil
}

// TestClusterTracePropagation is the distributed-tracing acceptance check: a
// traced solve forwarded through a non-owner comes back as one coherent span
// tree — the owner's remote phases grafted under the caller's cluster-forward
// span — and both sides retain the trace under the same ID, queryable from
// either node's /v1/traces.
func TestClusterTracePropagation(t *testing.T) {
	nodes := newTestCluster(t, 3)
	g, _ := graphOwnedBy(t, nodes, 0)
	owner, caller := nodes[0], nodes[1]

	resp, body, err := postJSONSolve(caller.url, solveRequest{
		Solver: "bandwidth", K: 900, Graph: graphJSONOf(t, g), Trace: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded traced solve: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cluster"); got != "forwarded "+owner.url {
		t.Fatalf("X-Cluster = %q, want forwarded to the owner", got)
	}
	var sres solveResponse
	if err := json.Unmarshal(body, &sres); err != nil {
		t.Fatal(err)
	}
	if sres.Trace == nil || len(sres.TraceID) != 32 {
		t.Fatalf("traced response lacks trace identity: trace=%v traceId=%q", sres.Trace, sres.TraceID)
	}
	fwd := findSpan(sres.Trace, "cluster-forward")
	if fwd == nil {
		t.Fatalf("span tree has no cluster-forward span: %+v", sres.Trace)
	}
	if got := fwd.Attrs["peer"]; got != owner.url {
		t.Errorf("cluster-forward peer = %v, want %v", got, owner.url)
	}
	if len(fwd.Children) == 0 {
		t.Fatal("cluster-forward span has no grafted remote subtree")
	}
	remote := fwd.Children[0]
	if got := remote.Attrs["remote"]; got != true {
		t.Errorf("grafted root attrs = %v, want remote:true", remote.Attrs)
	}
	if findSpan(remote, "remote-solve") == nil {
		t.Errorf("grafted subtree has no remote-solve span: %+v", remote)
	}

	// Both sides retained the trace under the propagated ID.
	var fromCaller, fromOwner traceGetResponse
	getJSON(t, caller.url+"/v1/traces/"+sres.TraceID, &fromCaller)
	if !fromCaller.Forwarded || fromCaller.Peer != owner.url || fromCaller.Reason != "forwarded" {
		t.Errorf("caller record = %+v, want forwarded to the owner", fromCaller.Record)
	}
	getJSON(t, owner.url+"/v1/traces/"+sres.TraceID, &fromOwner)
	if !fromOwner.Remote || fromOwner.Reason != "remote" {
		t.Errorf("owner record = %+v, want remote", fromOwner.Record)
	}
	if fromOwner.ParentSpan == "" {
		t.Error("owner record has no parent span (trace identity was not adopted)")
	}
	if fromCaller.TraceID != fromOwner.TraceID {
		t.Errorf("trace IDs differ across nodes: %s vs %s", fromCaller.TraceID, fromOwner.TraceID)
	}
}

// TestClusterTraceHeaderSanitization: garbage in the internal trace header is
// ignored — the solve still answers 200, no trailer — while a well-formed
// header yields a span-tree trailer and a retained trace under exactly the
// propagated ID. External requests never get to inject trace identity at all.
func TestClusterTraceHeaderSanitization(t *testing.T) {
	nodes := newTestCluster(t, 3)
	node := nodes[0]
	const validTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	valid := validTrace + "-00f067aa0ba902b7-01"

	bad := []string{
		"garbage",
		"4bf92f3577b34da6a3ce929d0e0e4736", // trace ID only
		"4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01",   // uppercase hex
		"zzf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // missing flags
		"00000000000000000000000000000000-0000000000000000-01",   // all-zero IDs
		"4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing field
		strings.Repeat("a", 4096),
	}
	for i, hdr := range bad {
		frame, err := AppendSolveRequest(nil, SolveParams{Solver: "bandwidth", K: float64(1000 + i)}, testPath(t, 48, 9))
		if err != nil {
			t.Fatal(err)
		}
		resp, _ := postBinarySolve(t, node.url, frame, map[string]string{
			cluster.InternalHeader: "1",
			cluster.TraceHeader:    hdr,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d (%.32q): status %d", i, hdr, resp.StatusCode)
		}
		if got := resp.Trailer.Get(cluster.SpansTrailer); got != "" {
			t.Errorf("case %d (%.32q): unexpected span trailer %q", i, hdr, got)
		}
	}

	// A well-formed header on an internal request produces the trailer and a
	// remote-retained trace under the propagated ID.
	frame, err := AppendSolveRequest(nil, SolveParams{Solver: "bandwidth", K: 2000}, testPath(t, 48, 9))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := postBinarySolve(t, node.url, frame, map[string]string{
		cluster.InternalHeader: "1",
		cluster.TraceHeader:    valid,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid header: status %d", resp.StatusCode)
	}
	enc := resp.Trailer.Get(cluster.SpansTrailer)
	if enc == "" {
		t.Fatal("valid header: no span trailer")
	}
	spans, err := base64.StdEncoding.DecodeString(enc)
	if err != nil {
		t.Fatalf("span trailer is not base64: %v", err)
	}
	var node0 obs.SpanNode
	if err := json.Unmarshal(spans, &node0); err != nil {
		t.Fatalf("span trailer is not a span tree: %v", err)
	}
	if node0.Name != "bandwidth" || findSpan(&node0, "remote-solve") == nil {
		t.Errorf("trailer tree = %+v, want the owner's bandwidth solve under remote-solve", node0)
	}
	var got traceGetResponse
	getJSON(t, node.url+"/v1/traces/"+validTrace, &got)
	if !got.Remote || got.ParentSpan != "00f067aa0ba902b7" {
		t.Errorf("retained record = %+v, want remote with the propagated parent span", got.Record)
	}

	// The same well-formed header from an external caller (no internal
	// marker) must not be honored: no trailer, no trace under that ID.
	frame, err = AppendSolveRequest(nil, SolveParams{Solver: "bandwidth", K: 3000}, testPath(t, 48, 9))
	if err != nil {
		t.Fatal(err)
	}
	ext := "aaaa2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	resp, _ = postBinarySolve(t, node.url, frame, map[string]string{cluster.TraceHeader: ext})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("external request: status %d", resp.StatusCode)
	}
	if got := resp.Trailer.Get(cluster.SpansTrailer); got != "" {
		t.Errorf("external request got a span trailer %q", got)
	}
	gr, err := http.Get(node.url + "/v1/traces/" + strings.Split(ext, "-")[0])
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusNotFound {
		t.Errorf("externally injected trace ID was retained: status %d", gr.StatusCode)
	}
}
