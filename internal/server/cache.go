// Package server is the network serving layer over the solver engine: an
// HTTP/JSON API exposing the full solver registry, with a sharded LRU result
// cache keyed by stable graph fingerprints, admission control (bounded
// concurrency + bounded queue + per-request deadlines), and Prometheus-style
// metrics fed by an engine Observer. cmd/partitiond is the binary.
//
// Partitioning workloads are highly repetitive — the same task graph is
// re-solved across K values and solver choices when sizing a deployment — so
// the cache turns repeated solves into O(1) lookups of the serialized
// response, byte-identical to the first answer.
package server

import (
	"container/list"
	"math"
	"sync"
)

// cacheKey identifies one solve: the graph's stable fingerprint plus every
// request parameter that changes the answer. Stats (duration, iterations)
// ride along inside the cached body — they describe the original solve.
type cacheKey struct {
	fingerprint   uint64
	solver        string
	kBits         uint64 // math.Float64bits(K), canonical for float compare
	maxComponents int
	verify        bool // verified responses carry a certificate in the body
	trace         bool // traced responses carry a span tree in the body
	bin           bool // body is the binary (PRS1) rendering, not JSON
}

func newCacheKey(fp uint64, solver string, k float64, maxComponents int, verify, trace, bin bool) cacheKey {
	if k == 0 {
		k = 0 // normalize -0.0, mirroring the fingerprint's weight rule
	}
	return cacheKey{fingerprint: fp, solver: solver, kBits: math.Float64bits(k), maxComponents: maxComponents, verify: verify, trace: trace, bin: bin}
}

// shardIndex spreads keys across shards by re-mixing all key fields; the
// fingerprint alone would put every (solver, K) variant of one hot graph on
// the same shard.
func (k cacheKey) shardIndex(n int) int {
	h := uint64(14695981039346656037)
	mix := func(w uint64) {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= 1099511628211
			w >>= 8
		}
	}
	mix(k.fingerprint)
	mix(k.kBits)
	mix(uint64(k.maxComponents))
	if k.verify {
		mix(1)
	}
	if k.trace {
		mix(2)
	}
	if k.bin {
		mix(4)
	}
	for i := 0; i < len(k.solver); i++ {
		h ^= uint64(k.solver[i])
		h *= 1099511628211
	}
	return int(h % uint64(n))
}

type cacheEntry struct {
	key  cacheKey
	body []byte
}

// cacheShard is one independently locked LRU list + index.
type cacheShard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[cacheKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// Cache is a sharded LRU over serialized solve responses. A nil *Cache is a
// valid always-miss cache, which is how caching is disabled.
type Cache struct {
	shards []*cacheShard
}

// NewCache builds a cache holding at most size entries spread over the given
// shard count. size <= 0 returns nil (caching disabled); shards <= 0 picks a
// default of 16, clamped so every shard holds at least one entry.
func NewCache(size, shards int) *Cache {
	if size <= 0 {
		return nil
	}
	if shards <= 0 {
		shards = 16
	}
	if shards > size {
		shards = size
	}
	c := &Cache{shards: make([]*cacheShard, shards)}
	per := size / shards
	extra := size % shards
	for i := range c.shards {
		cap := per
		if i < extra {
			cap++
		}
		c.shards[i] = &cacheShard{
			capacity: cap,
			ll:       list.New(),
			items:    make(map[cacheKey]*list.Element),
		}
	}
	return c
}

// Get returns the cached response body for key, marking it most recently
// used. The returned slice is shared — callers must not modify it.
func (c *Cache) Get(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shards[key.shardIndex(len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// peek returns the cached body for key like Get but without touching the
// hit/miss counters. The solve path uses it for the secondary canonical-frame
// probe so the legacy cache counters keep counting one outcome per request;
// the per-tier lookup metrics record the logical result separately.
func (c *Cache) peek(key cacheKey) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shards[key.shardIndex(len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting the least recently used entry of the
// key's shard when the shard is full. Storing an existing key refreshes it.
func (c *Cache) Put(key cacheKey, body []byte) {
	if c == nil {
		return
	}
	s := c.shards[key.shardIndex(len(c.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).body = body
		s.ll.MoveToFront(el)
		return
	}
	for s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
		s.evictions++
	}
	s.items[key] = s.ll.PushFront(&cacheEntry{key: key, body: body})
}

// CacheStats aggregates hit/miss/eviction counters across shards.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
	Capacity  int
	Shards    int
}

// Stats snapshots the cache counters. Safe on a nil cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	var st CacheStats
	st.Shards = len(c.shards)
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Entries += s.ll.Len()
		st.Capacity += s.capacity
		s.mu.Unlock()
	}
	return st
}
