package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"repro/internal/jobs"
)

// TestTracesListAndGet drives the flight-recorder query API end to end on a
// standalone node: with head sampling at 1 every solve is retained, listable,
// fetchable by ID, and renderable as a Chrome trace-event document.
func TestTracesListAndGet(t *testing.T) {
	s := newTestServer(t, Config{TraceSample: 1})
	h := s.Handler()

	rec := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 60, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d, body %s", rec.Code, rec.Body.String())
	}

	var list traceListResponse
	lrec := doJSON(t, h, "GET", "/v1/traces", nil)
	if lrec.Code != http.StatusOK {
		t.Fatalf("list status = %d", lrec.Code)
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if !list.Enabled || list.Total != 1 || len(list.Traces) != 1 {
		t.Fatalf("list = %+v, want enabled with exactly one trace", list)
	}
	tr := list.Traces[0]
	if tr.Solver != "bandwidth" || tr.Kind != "solve" || tr.Outcome != "ok" || tr.Reason != "sampled" {
		t.Errorf("record = %+v, want bandwidth/solve/ok/sampled", tr)
	}
	if len(tr.TraceID) != 32 {
		t.Errorf("trace ID = %q, want 32 hex chars", tr.TraceID)
	}
	if tr.Spans < 2 {
		t.Errorf("spans = %d, want the root plus solver phases", tr.Spans)
	}

	grec := doJSON(t, h, "GET", "/v1/traces/"+tr.TraceID, nil)
	if grec.Code != http.StatusOK {
		t.Fatalf("get status = %d", grec.Code)
	}
	var got traceGetResponse
	if err := json.Unmarshal(grec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.TraceID != tr.TraceID || len(got.Tree) == 0 {
		t.Fatalf("get = %+v, want the record with its span tree", got)
	}
	if !strings.Contains(string(got.Tree), `"bandwidth"`) {
		t.Errorf("span tree %s has no solver span", got.Tree)
	}

	crec := doJSON(t, h, "GET", "/v1/traces/"+tr.TraceID+"?format=chrome", nil)
	if crec.Code != http.StatusOK {
		t.Fatalf("chrome render status = %d", crec.Code)
	}
	body := crec.Body.String()
	if !strings.Contains(body, `"traceEvents"`) || !strings.Contains(body, tr.TraceID) {
		t.Errorf("chrome document missing traceEvents or the trace ID: %s", body)
	}

	if miss := doJSON(t, h, "GET", "/v1/traces/ffffffffffffffffffffffffffffffff", nil); miss.Code != http.StatusNotFound {
		t.Errorf("unknown trace status = %d, want 404", miss.Code)
	}
}

// TestTracesListFiltersAndValidation: the solver filter narrows the list and
// malformed query parameters answer 400.
func TestTracesListFiltersAndValidation(t *testing.T) {
	s := newTestServer(t, Config{TraceSample: 1})
	h := s.Handler()
	if rec := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 61, nil)); rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d", rec.Code)
	}

	var matched traceListResponse
	lrec := doJSON(t, h, "GET", "/v1/traces?solver=bandwidth&outcome=ok&limit=5&since=1h", nil)
	if err := json.Unmarshal(lrec.Body.Bytes(), &matched); err != nil {
		t.Fatal(err)
	}
	if len(matched.Traces) != 1 {
		t.Errorf("filtered list has %d traces, want 1", len(matched.Traces))
	}
	var other traceListResponse
	orec := doJSON(t, h, "GET", "/v1/traces?solver=no-such-solver", nil)
	if err := json.Unmarshal(orec.Body.Bytes(), &other); err != nil {
		t.Fatal(err)
	}
	if len(other.Traces) != 0 {
		t.Errorf("list for an unknown solver has %d traces, want 0", len(other.Traces))
	}

	for _, q := range []string{"minDurationMs=abc", "minDurationMs=-1", "since=not-a-time", "limit=0", "limit=x"} {
		if rec := doJSON(t, h, "GET", "/v1/traces?"+q, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("GET /v1/traces?%s status = %d, want 400", q, rec.Code)
		}
	}
}

// TestTracesDisabled: a negative TraceStore turns the recorder off; the query
// API stays up and says so instead of 404ing the route away.
func TestTracesDisabled(t *testing.T) {
	s := newTestServer(t, Config{TraceStore: -1})
	h := s.Handler()
	if rec := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 62, nil)); rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d", rec.Code)
	}
	var list traceListResponse
	lrec := doJSON(t, h, "GET", "/v1/traces", nil)
	if lrec.Code != http.StatusOK {
		t.Fatalf("list status = %d", lrec.Code)
	}
	if err := json.Unmarshal(lrec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Enabled || len(list.Traces) != 0 {
		t.Errorf("disabled list = %+v, want enabled:false and no traces", list)
	}
	if rec := doJSON(t, h, "GET", "/v1/traces/ffffffffffffffffffffffffffffffff", nil); rec.Code != http.StatusNotFound {
		t.Errorf("disabled get status = %d, want 404", rec.Code)
	}
}

var exemplarRE = regexp.MustCompile(`# \{trace_id="([0-9a-f]{32})"\}`)

// TestMetricsExemplar is the exemplar acceptance check: after a solve,
// /metrics carries at least one OpenMetrics exemplar on a latency bucket and
// its trace ID resolves through GET /v1/traces/{id}.
func TestMetricsExemplar(t *testing.T) {
	s := newTestServer(t, Config{TraceSample: 1})
	h := s.Handler()
	if rec := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 63, nil)); rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d", rec.Code)
	}
	mrec := doJSON(t, h, "GET", "/metrics", nil)
	if mrec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", mrec.Code)
	}
	m := exemplarRE.FindStringSubmatch(mrec.Body.String())
	if m == nil {
		t.Fatal("/metrics carries no trace exemplar")
	}
	if !strings.Contains(mrec.Body.String(), `partitiond_solve_duration_seconds_bucket{solver="bandwidth"`) {
		t.Error("exemplar is not on the solve-duration histogram")
	}
	if rec := doJSON(t, h, "GET", "/v1/traces/"+m[1], nil); rec.Code != http.StatusOK {
		t.Errorf("exemplar trace %s is not retrievable: %d", m[1], rec.Code)
	}
}

// TestObsMetricsFamilies: the build-info, runtime, pool, and trace-store
// series all render.
func TestObsMetricsFamilies(t *testing.T) {
	s := newTestServer(t, Config{TraceSample: 1})
	h := s.Handler()
	if rec := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 64, nil)); rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d", rec.Code)
	}
	body := doJSON(t, h, "GET", "/metrics", nil).Body.String()
	for _, want := range []string{
		`partitiond_build_info{version="`,
		"partitiond_go_goroutines ",
		"partitiond_go_heap_alloc_bytes ",
		"partitiond_go_gc_cycles_total ",
		`partitiond_pool_requests_total{pool="codec-graph",result="hit"}`,
		`partitiond_pool_requests_total{pool="solver-scratch",result="new"}`,
		"partitiond_traces_offered_total 1",
		`partitiond_traces_retained_total{reason="sampled"} 1`,
		"partitiond_traces_dropped_total 0",
		`partitiond_trace_store_evicted_total{cause="count"} 0`,
		"partitiond_trace_store_traces 1",
		`partitiond_trace_store_capacity{dimension="traces"} 512`,
		`partitiond_solver_in_flight{solver="bandwidth"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestJobSSETraceCorrelation: a job submitted under an X-Request-ID streams
// phase events carrying the trace and span IDs of the solve's spans, and that
// trace is retrievable from the flight recorder with the same request ID —
// the SSE ↔ trace-store correlation contract.
func TestJobSSETraceCorrelation(t *testing.T) {
	s := newTestServer(t, Config{TraceSample: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const rid = "job-trace-corr-1"
	body, err := json.Marshal(jobSubmitRequest{solveRequest: solveRequest{
		Solver: "bandwidth", K: 500, Graph: pathGraphJSON(t, 64, 65),
	}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sub jobSubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, err %v", resp.StatusCode, err)
	}

	events := openSSE(t, ts, sub.ID, "")
	defer events.Body.Close()
	frames := readFrames(t, bufio.NewReader(events.Body), isTerminalFrame)
	waitJobState(t, ts, sub.ID, jobs.StateSucceeded)

	var traceID string
	for _, f := range frames {
		if f.event != "phase" {
			continue
		}
		var p struct {
			Phase   string `json:"phase"`
			TraceID string `json:"trace_id"`
			SpanID  string `json:"span_id"`
		}
		if err := json.Unmarshal([]byte(f.data), &p); err != nil {
			t.Fatalf("bad phase payload %q: %v", f.data, err)
		}
		if p.TraceID == "" || p.SpanID == "" {
			t.Fatalf("phase event %q without trace identity: %q", p.Phase, f.data)
		}
		if traceID == "" {
			traceID = p.TraceID
		} else if p.TraceID != traceID {
			t.Fatalf("phase events span two traces: %s and %s", traceID, p.TraceID)
		}
	}
	if traceID == "" {
		t.Fatal("stream carried no phase events with a trace ID")
	}

	var got traceGetResponse
	getJSON(t, ts.URL+"/v1/traces/"+traceID, &got)
	if got.Kind != "job" || got.RequestID != rid {
		t.Errorf("retained record = %+v, want kind job with requestId %q", got.Record, rid)
	}
}
