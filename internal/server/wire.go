package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/engine"
	"repro/internal/graph"
)

// Binary wire frames for /v1/solve and /v1/batch, negotiated by media type:
// a request with Content-Type application/x-partition-bin is decoded from the
// frames below, and a response is rendered binary when the Accept header
// names the same type (except traced solves, which fall back to JSON — span
// trees have no binary rendering). JSON stays the default in both directions,
// and error responses are always structured JSON.
//
// Frames (integers little-endian, counts/lengths uvarint, strings uvarint
// length + UTF-8 bytes):
//
//	solve request  "PSV1" | flags u8 (1 noCache, 2 verify, 4 trace)
//	               | k f64 | maxComponents | timeoutMs | solver string
//	               | graph (PGB1 frame, see internal/codec)
//	batch request  "PBT1" | timeoutMs | count | count × solve-request frames
//	solve response "PRS1" | flags u8 (1 verify) | solver string | k f64
//	               | fingerprint u64 | cutWeight f64 | bottleneck f64
//	               | durationMs f64 | iterations | cut count | cut indices
//	               | componentWeights count | weights f64…
//	               | [criterion string | certified u8 | objective f64
//	                  | bound f64 | detail string]
//	batch response "PBR1" | requests | solved | failed | cacheHits
//	               | wallMs f64 | count | count × item
//	item           tag u8 (0 error, 1 result, 2 cached result) | body string
//	               (an error message for tag 0, a PRS1 frame otherwise)
//
// The embedded PGB1 graph declares its node and edge counts up front, so the
// node-count limit (Config.MaxNodes) rejects oversized graphs before any
// array is allocated.

// Request flag bits of the PSV1 frame.
const (
	wireFlagNoCache = 1 << iota
	wireFlagVerify
	wireFlagTrace
)

// Response flag bits of the PRS1 frame.
const wireFlagHasVerify = 1

// Batch item tags of the PBR1 frame.
const (
	wireItemError byte = iota
	wireItemResult
	wireItemCached
)

var (
	solveReqMagic  = []byte("PSV1")
	batchReqMagic  = []byte("PBT1")
	solveRespMagic = []byte("PRS1")
	batchRespMagic = []byte("PBR1")
)

// errBadFrame is the client error for malformed binary request framing.
var errBadFrame = errors.New("malformed binary request frame")

// maxWireString bounds decoded string lengths (solver names).
const maxWireString = 256

// isBinaryMedia reports whether a Content-Type names the binary format.
func isBinaryMedia(ct string) bool {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == codec.ContentType
}

// acceptsBinary reports whether an Accept header asks for the binary format.
// A plain substring match suffices: the type has no wildcard family, and
// clients that do not want it simply never mention it.
func acceptsBinary(accept string) bool {
	return strings.Contains(accept, codec.ContentType)
}

// wireReader is a bounds-checked cursor over a request frame. After any
// failure err is set and every subsequent read returns zero values, so call
// sites check err once at the end of a frame.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = errBadFrame
	}
}

func (r *wireReader) magic(want []byte) {
	if r.err != nil {
		return
	}
	if len(r.b) < len(want) || string(r.b[:len(want)]) != string(want) {
		r.fail()
		return
	}
	r.b = r.b[len(want):]
}

func (r *wireReader) u8() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) f64() float64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v
}

func (r *wireReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxWireString || uint64(len(r.b)) < n {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// internedStr reads a string like str, but when its bytes equal one of the
// candidate strings it returns that string instead of copying — the solver
// name of every well-formed request matches the registry, so the hot path
// never allocates for it. The byte-slice-to-string comparison below compiles
// to an allocation-free compare.
func (r *wireReader) internedStr(candidates []string) string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxWireString || uint64(len(r.b)) < n {
		r.fail()
		return ""
	}
	raw := r.b[:n]
	r.b = r.b[n:]
	for _, c := range candidates {
		if string(raw) == c {
			return c
		}
	}
	return string(raw)
}

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendSolveRequest encodes a PSV1 solve-request frame for the given
// parameters and graph. Exported for clients (cmd/partition, benchmarks,
// load generators); the server only decodes these.
func AppendSolveRequest(dst []byte, req SolveParams, g any) ([]byte, error) {
	dst = append(dst, solveReqMagic...)
	var flags byte
	if req.NoCache {
		flags |= wireFlagNoCache
	}
	if req.Verify {
		flags |= wireFlagVerify
	}
	if req.Trace {
		flags |= wireFlagTrace
	}
	dst = append(dst, flags)
	dst = appendF64(dst, req.K)
	dst = binary.AppendUvarint(dst, uint64(req.MaxComponents))
	dst = binary.AppendUvarint(dst, uint64(req.TimeoutMs))
	dst = appendString(dst, req.Solver)
	return codec.Append(dst, g)
}

// SolveParams are the non-graph fields of a binary solve request — the wire
// twin of the JSON solveRequest body.
type SolveParams struct {
	Solver        string
	K             float64
	MaxComponents int
	TimeoutMs     int64
	NoCache       bool
	Verify        bool
	Trace         bool
}

// AppendBatchRequest encodes a PBT1 batch-request frame from per-item
// parameters and graphs (parallel slices).
func AppendBatchRequest(dst []byte, timeoutMs int64, items []SolveParams, graphs []any) ([]byte, error) {
	if len(items) != len(graphs) {
		return nil, fmt.Errorf("server: %d items but %d graphs", len(items), len(graphs))
	}
	dst = append(dst, batchReqMagic...)
	dst = binary.AppendUvarint(dst, uint64(timeoutMs))
	dst = binary.AppendUvarint(dst, uint64(len(items)))
	for i := range items {
		var err error
		dst, err = AppendSolveRequest(dst, items[i], graphs[i])
		if err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// parseBinarySolve decodes one PSV1 frame from the front of b into a parsed
// solve, returning the remaining bytes. The graph decodes into the server's
// pooled arrays; the caller must release it via releaseParsed once the solve
// is finished (the cache key is the caller's job — it depends on the
// response format). Size-limit violations surface as codec.ErrTooLarge.
//
// On error, the returned rest distinguishes two cases: rest shorter than b
// means the frame itself was structurally sound and decoding can continue at
// the next frame (a per-item error in a batch); rest == b means the framing
// is broken and the item boundary is lost.
func (s *Server) parseBinarySolve(b []byte) (parsedSolve, []byte, error) {
	return s.parseBinarySolveInto(b, s.graphPool)
}

// parseBinarySolveInto is parseBinarySolve with an explicit destination
// pool. The jobs path passes nil: a job outlives its submitting request, so
// its graph must live in plain arrays rather than the request-scoped pool.
func (s *Server) parseBinarySolveInto(b []byte, pool *codec.Pool) (parsedSolve, []byte, error) {
	rd := wireReader{b: b}
	rd.magic(solveReqMagic)
	flags := rd.u8()
	k := rd.f64()
	maxComp := rd.uvarint()
	timeoutMs := rd.uvarint()
	solver := rd.internedStr(s.solverNames)
	if rd.err != nil {
		return parsedSolve{}, b, rd.err
	}
	if maxComp > math.MaxInt32 || timeoutMs > math.MaxInt32 {
		return parsedSolve{}, b, errBadFrame
	}
	g, fp, rest, err := codec.Decode(rd.b, codec.Options{MaxNodes: s.cfg.MaxNodes, Pool: pool})
	if err != nil {
		return parsedSolve{}, b, fmt.Errorf("bad graph: %w", err)
	}
	req := solveRequest{
		Solver:        solver,
		K:             k,
		MaxComponents: int(maxComp),
		TimeoutMs:     int64(timeoutMs),
		NoCache:       flags&wireFlagNoCache != 0,
		Verify:        flags&wireFlagVerify != 0,
		Trace:         flags&wireFlagTrace != 0,
	}
	if err := checkSolveParams(req); err != nil {
		pool.Release(g)
		return parsedSolve{}, rest, err
	}
	switch g.(type) {
	case *graph.Path, *graph.Tree:
	default:
		pool.Release(g)
		return parsedSolve{}, rest, fmt.Errorf(`graph kind %T is not solvable; send "path" or "tree"`, g)
	}
	return parsedSolve{req: req, g: g, fp: fp, pooled: pool != nil}, rest, nil
}

// parseBinaryBatch decodes a PBT1 frame into per-item parsed solves. The
// returned slices are parallel: errMsgs[i] non-empty means item i failed to
// parse (and parsed[i] is zero). A framing-level failure — broken magic,
// corrupt graph frame, trailing bytes — aborts the whole batch with an
// error, releasing any graphs already decoded.
func (s *Server) parseBinaryBatch(b []byte) (parsed []parsedSolve, errMsgs []string, timeoutMs int64, err error) {
	rd := wireReader{b: b}
	rd.magic(batchReqMagic)
	tms := rd.uvarint()
	count := rd.uvarint()
	if rd.err != nil {
		return nil, nil, 0, rd.err
	}
	if tms > math.MaxInt32 {
		return nil, nil, 0, errBadFrame
	}
	if count == 0 {
		return nil, nil, 0, errors.New("batch must contain at least one request")
	}
	if count > uint64(s.cfg.MaxBatchRequests) {
		return nil, nil, 0, fmt.Errorf("batch of %d exceeds the %d-request limit", count, s.cfg.MaxBatchRequests)
	}
	parsed = make([]parsedSolve, count)
	errMsgs = make([]string, count)
	release := func() {
		for i := range parsed {
			s.releaseParsed(&parsed[i])
		}
	}
	rest := rd.b
	for i := range parsed {
		p, next, perr := s.parseBinarySolve(rest)
		if perr != nil {
			if len(next) == len(rest) {
				release()
				return nil, nil, 0, fmt.Errorf("request %d: %w", i, perr)
			}
			errMsgs[i] = perr.Error()
		} else {
			parsed[i] = p
		}
		rest = next
	}
	if len(rest) != 0 {
		release()
		return nil, nil, 0, fmt.Errorf("%d trailing bytes after %d request frames", len(rest), count)
	}
	return parsed, errMsgs, int64(tms), nil
}

// releaseParsed returns a pooled graph's arrays to the server's codec pool.
// Safe to call on zero-value or JSON-decoded items (no-op).
func (s *Server) releaseParsed(p *parsedSolve) {
	if p.pooled {
		s.graphPool.Release(p.g)
		p.g, p.pooled = nil, false
	}
}

// appendSolveResult renders the PRS1 binary twin of marshalResult.
func appendSolveResult(dst []byte, fp uint64, res engine.Result, cert *verifyInfo) []byte {
	if dst == nil {
		// One allocation for the whole frame: fixed fields plus worst-case
		// varints (10 bytes each) and the weight arrays.
		est := len(solveRespMagic) + 1 + 10 + len(res.Solver) + 8*5 + 10*2 +
			10*len(res.Cut) + 10 + 8*len(res.ComponentWeights)
		if cert != nil {
			est += 10 + len(cert.Criterion) + 1 + 16 + 10 + len(cert.Detail)
		}
		dst = make([]byte, 0, est)
	}
	dst = append(dst, solveRespMagic...)
	var flags byte
	if cert != nil {
		flags |= wireFlagHasVerify
	}
	dst = append(dst, flags)
	dst = appendString(dst, res.Solver)
	dst = appendF64(dst, res.K)
	dst = binary.LittleEndian.AppendUint64(dst, fp)
	dst = appendF64(dst, res.CutWeight)
	dst = appendF64(dst, res.Bottleneck)
	dst = appendF64(dst, float64(res.Stats.Duration)/float64(time.Millisecond))
	dst = binary.AppendUvarint(dst, uint64(res.Stats.Iterations))
	dst = binary.AppendUvarint(dst, uint64(len(res.Cut)))
	for _, e := range res.Cut {
		dst = binary.AppendUvarint(dst, uint64(e))
	}
	dst = binary.AppendUvarint(dst, uint64(len(res.ComponentWeights)))
	for _, w := range res.ComponentWeights {
		dst = appendF64(dst, w)
	}
	if cert != nil {
		dst = appendString(dst, cert.Criterion)
		var ok byte
		if cert.Certified {
			ok = 1
		}
		dst = append(dst, ok)
		dst = appendF64(dst, cert.Objective)
		dst = appendF64(dst, cert.Bound)
		dst = appendString(dst, cert.Detail)
	}
	return dst
}

// SolveResult is the decoded PRS1 frame — the client-side view of a binary
// solve response.
type SolveResult struct {
	Solver           string
	K                float64
	Fingerprint      uint64
	CutWeight        float64
	Bottleneck       float64
	DurationMs       float64
	Iterations       int64
	Cut              []int
	ComponentWeights []float64
	Verify           *verifyInfo
}

// DecodeSolveResult decodes one PRS1 frame from the front of b, returning
// the remaining bytes.
func DecodeSolveResult(b []byte) (*SolveResult, []byte, error) {
	rd := wireReader{b: b}
	rd.magic(solveRespMagic)
	flags := rd.u8()
	out := &SolveResult{}
	out.Solver = rd.str()
	out.K = rd.f64()
	if rd.err == nil && len(rd.b) >= 8 {
		out.Fingerprint = binary.LittleEndian.Uint64(rd.b)
		rd.b = rd.b[8:]
	} else {
		rd.fail()
	}
	out.CutWeight = rd.f64()
	out.Bottleneck = rd.f64()
	out.DurationMs = rd.f64()
	out.Iterations = int64(rd.uvarint())
	nCut := rd.uvarint()
	if rd.err != nil || nCut > uint64(len(rd.b)) {
		rd.fail()
		return nil, b, rd.err
	}
	out.Cut = make([]int, nCut)
	for i := range out.Cut {
		out.Cut[i] = int(rd.uvarint())
	}
	nw := rd.uvarint()
	if rd.err != nil || nw > uint64(len(rd.b))/8 {
		rd.fail()
		return nil, b, rd.err
	}
	out.ComponentWeights = make([]float64, nw)
	for i := range out.ComponentWeights {
		out.ComponentWeights[i] = rd.f64()
	}
	if flags&wireFlagHasVerify != 0 {
		v := &verifyInfo{}
		v.Criterion = rd.str()
		v.Certified = rd.u8() != 0
		v.Objective = rd.f64()
		v.Bound = rd.f64()
		v.Detail = rd.str()
		out.Verify = v
	}
	if rd.err != nil {
		return nil, b, rd.err
	}
	return out, rd.b, nil
}

// BatchResult is the decoded PBR1 frame.
type BatchResult struct {
	Requests, Solved, Failed, CacheHits int
	WallMs                              float64
	Items                               []BatchResultItem
}

// BatchResultItem is one batch item: either an error message or a result.
type BatchResultItem struct {
	Result *SolveResult
	Error  string
	Cached bool
}

// DecodeBatchResult decodes a PBR1 frame.
func DecodeBatchResult(b []byte) (*BatchResult, error) {
	rd := wireReader{b: b}
	rd.magic(batchRespMagic)
	out := &BatchResult{}
	out.Requests = int(rd.uvarint())
	out.Solved = int(rd.uvarint())
	out.Failed = int(rd.uvarint())
	out.CacheHits = int(rd.uvarint())
	out.WallMs = rd.f64()
	n := rd.uvarint()
	if rd.err != nil || n > uint64(len(rd.b)) {
		rd.fail()
		return nil, rd.err
	}
	out.Items = make([]BatchResultItem, 0, n)
	for i := uint64(0); i < n; i++ {
		tag := rd.u8()
		ln := rd.uvarint()
		if rd.err != nil || ln > uint64(len(rd.b)) {
			rd.fail()
			return nil, rd.err
		}
		body := rd.b[:ln]
		rd.b = rd.b[ln:]
		switch tag {
		case wireItemError:
			out.Items = append(out.Items, BatchResultItem{Error: string(body)})
		case wireItemResult, wireItemCached:
			res, _, err := DecodeSolveResult(body)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, BatchResultItem{Result: res, Cached: tag == wireItemCached})
		default:
			return nil, errBadFrame
		}
	}
	return out, nil
}
