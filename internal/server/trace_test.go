package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doJSONRawHeaders is doJSONRaw with extra request headers.
func doJSONRawHeaders(h http.Handler, method, path string, body any, headers map[string]string) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		if v != "" {
			req.Header.Set(k, v)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func solveBody(t *testing.T, graphSeed uint64, extra map[string]any) map[string]any {
	t.Helper()
	body := map[string]any{
		"solver": "bandwidth",
		"k":      250,
		"graph":  pathGraphJSON(t, 64, graphSeed),
	}
	for k, v := range extra {
		body[k] = v
	}
	return body
}

func TestRequestIDHeader(t *testing.T) {
	s := newTestServer(t, Config{})
	tests := []struct {
		name   string
		sent   string
		echoed bool
	}{
		{"client id echoed", "client-abc-123", true},
		{"absent generates", "", false},
		{"too long regenerated", strings.Repeat("x", 65), false},
		{"non-printable regenerated", "has space", false},
		{"control regenerated", "tab\tchar", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSONRawHeaders(s.Handler(), "POST", "/v1/solve", solveBody(t, 1, nil),
				map[string]string{"X-Request-ID": tc.sent})
			if rec.Code != http.StatusOK {
				t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
			}
			got := rec.Header().Get("X-Request-ID")
			if tc.echoed {
				if got != tc.sent {
					t.Errorf("X-Request-ID = %q, want echoed %q", got, tc.sent)
				}
				return
			}
			if got == "" || got == tc.sent {
				t.Errorf("X-Request-ID = %q, want a generated id distinct from %q", got, tc.sent)
			}
		})
	}
}

func TestSolveTraceResponse(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSONRawHeaders(s.Handler(), "POST", "/v1/solve",
		solveBody(t, 2, map[string]any{"trace": true}),
		map[string]string{"X-Request-ID": "trace-req-1"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body.String())
	}
	var resp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("response has no trace")
	}
	if resp.Trace.Name != "solve bandwidth" {
		t.Errorf("root span = %q, want %q", resp.Trace.Name, "solve bandwidth")
	}
	var phases []string
	found := false
	for _, c := range resp.Trace.Children {
		if c.Name == "bandwidth" {
			found = true
			for _, p := range c.Children {
				phases = append(phases, p.Name)
			}
		}
	}
	if !found {
		t.Fatalf("trace has no solver span (children of root: %v)", resp.Trace.Children)
	}
	want := map[string]bool{"prime-extract": false, "temps-dp": false, "build-partition": false}
	for _, p := range phases {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("trace missing phase span %q (got %v)", p, phases)
		}
	}
}

func TestUntracedSolveOmitsTrace(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveBody(t, 3, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Errorf("untraced response contains a trace field: %s", rec.Body.String())
	}
}

// TestTraceCacheSeparation checks traced and untraced responses for the same
// solve never satisfy each other from the cache.
func TestTraceCacheSeparation(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	first := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 4, nil))
	if c := first.Header().Get("X-Cache"); c != "MISS" {
		t.Fatalf("first solve X-Cache = %q, want MISS", c)
	}
	traced := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 4, map[string]any{"trace": true}))
	if c := traced.Header().Get("X-Cache"); c != "MISS" {
		t.Errorf("traced solve X-Cache = %q, want MISS (untraced entry must not satisfy it)", c)
	}
	if !strings.Contains(traced.Body.String(), `"trace"`) {
		t.Errorf("traced solve response has no trace")
	}
	replayUntraced := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 4, nil))
	if c := replayUntraced.Header().Get("X-Cache"); c != "HIT" {
		t.Errorf("untraced replay X-Cache = %q, want HIT", c)
	}
	if strings.Contains(replayUntraced.Body.String(), `"trace"`) {
		t.Errorf("untraced replay contains a trace field")
	}
	replayTraced := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 4, map[string]any{"trace": true}))
	if c := replayTraced.Header().Get("X-Cache"); c != "HIT" {
		t.Errorf("traced replay X-Cache = %q, want HIT", c)
	}
	if replayTraced.Body.String() != traced.Body.String() {
		t.Errorf("traced replay is not byte-identical to the original traced response")
	}
}

// TestBatchIgnoresTraceFlag checks batch items are solved untraced: a batch
// item with trace:true fills (and hits) the same cache entry as an untraced
// /v1/solve.
func TestBatchIgnoresTraceFlag(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	item := solveBody(t, 5, map[string]any{"trace": true})
	rec := doJSON(t, h, "POST", "/v1/batch", map[string]any{"requests": []any{item}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d, body %s", rec.Code, rec.Body.String())
	}
	var bresp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Items) != 1 || bresp.Items[0].Error != "" {
		t.Fatalf("batch items = %+v", bresp.Items)
	}
	if strings.Contains(string(bresp.Items[0].Result), `"trace"`) {
		t.Errorf("batch item result contains a trace despite trace being solve-only")
	}
	// The batch-filled entry must satisfy an untraced solve for the same item.
	solo := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 5, nil))
	if c := solo.Header().Get("X-Cache"); c != "HIT" {
		t.Errorf("untraced solve after batch X-Cache = %q, want HIT", c)
	}
}

func TestMetricsHistograms(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()
	if rec := doJSON(t, h, "POST", "/v1/solve", solveBody(t, 6, nil)); rec.Code != http.StatusOK {
		t.Fatalf("solve status = %d", rec.Code)
	}
	rec := doJSON(t, h, "GET", "/metrics", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`partitiond_solve_duration_seconds_bucket{solver="bandwidth",le="+Inf"} 1`,
		`partitiond_solve_duration_seconds_count{solver="bandwidth"} 1`,
		`partitiond_solve_phase_seconds_total{solver="bandwidth",phase="prime-extract"}`,
		`partitiond_solve_phase_count_total{solver="bandwidth",phase="temps-dp"} 1`,
		`partitiond_http_request_duration_seconds_bucket{route="/v1/solve",le="+Inf"} 1`,
		"# TYPE partitiond_solve_duration_seconds histogram",
		"# TYPE partitiond_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
