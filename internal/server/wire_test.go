package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/graph"
	"repro/internal/workload"
)

// testPath builds a deterministic random path for wire tests.
func testPath(t *testing.T, n int, seed uint64) *graph.Path {
	t.Helper()
	r := workload.NewRNG(seed)
	return workload.RandomPath(r, n, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
}

// doBin posts a binary body with the given Accept header.
func doBin(h http.Handler, path string, body []byte, accept string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("POST", path, bytes.NewReader(body))
	req.Header.Set("Content-Type", codec.ContentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func mustSolveFrame(t *testing.T, params SolveParams, g any) []byte {
	t.Helper()
	b, err := AppendSolveRequest(nil, params, g)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBinarySolveRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	p := testPath(t, 64, 7)
	k := 4 * p.MaxNodeWeight()

	// Solve the same graph over JSON first, as the reference answer.
	jrec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{
		Solver: "bandwidth", K: k, Graph: pathGraphJSON(t, 64, 7),
	})
	if jrec.Code != http.StatusOK {
		t.Fatalf("JSON solve = %d: %s", jrec.Code, jrec.Body)
	}
	var jresp solveResponse
	if err := json.Unmarshal(jrec.Body.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}

	frame := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: k}, p)
	rec := doBin(s.Handler(), "/v1/solve", frame, codec.ContentType)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary solve = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != codec.ContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, codec.ContentType)
	}
	res, rest, err := DecodeSolveResult(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeSolveResult: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after response frame", len(rest))
	}
	if res.Solver != jresp.Solver || res.K != jresp.K {
		t.Errorf("binary (%s, %v) != JSON (%s, %v)", res.Solver, res.K, jresp.Solver, jresp.K)
	}
	if res.CutWeight != jresp.CutWeight || res.Bottleneck != jresp.Bottleneck {
		t.Errorf("binary cut %v/%v != JSON %v/%v", res.CutWeight, res.Bottleneck, jresp.CutWeight, jresp.Bottleneck)
	}
	if len(res.Cut) != len(jresp.Cut) {
		t.Fatalf("cut lengths differ: %d vs %d", len(res.Cut), len(jresp.Cut))
	}
	for i := range res.Cut {
		if res.Cut[i] != jresp.Cut[i] {
			t.Errorf("cut[%d] = %d, want %d", i, res.Cut[i], jresp.Cut[i])
		}
	}
	fp, err := graph.Fingerprint(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fingerprint != fp {
		t.Errorf("fingerprint = %x, want %x", res.Fingerprint, fp)
	}
}

func TestBinarySolveVerify(t *testing.T) {
	s := newTestServer(t, Config{})
	p := testPath(t, 32, 3)
	frame := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: 4 * p.MaxNodeWeight(), Verify: true}, p)
	rec := doBin(s.Handler(), "/v1/solve", frame, codec.ContentType)
	if rec.Code != http.StatusOK {
		t.Fatalf("solve = %d: %s", rec.Code, rec.Body)
	}
	res, _, err := DecodeSolveResult(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verify == nil {
		t.Fatal("verify requested but certificate missing from binary response")
	}
	if !res.Verify.Certified {
		t.Errorf("bandwidth certificate not certified: %+v", res.Verify)
	}
}

// Content negotiation: request and response formats are independent, and
// traced solves always answer in JSON.
func TestWireNegotiation(t *testing.T) {
	s := newTestServer(t, Config{})
	p := testPath(t, 16, 5)
	k := 4 * p.MaxNodeWeight()

	// JSON request, binary Accept → binary response.
	jreq, _ := json.Marshal(solveRequest{Solver: "bandwidth", K: k, Graph: pathGraphJSON(t, 16, 5)})
	req := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(jreq))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", codec.ContentType)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("Content-Type") != codec.ContentType {
		t.Fatalf("JSON-in/bin-out: code %d, Content-Type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if _, _, err := DecodeSolveResult(rec.Body.Bytes()); err != nil {
		t.Fatalf("response is not a PRS1 frame: %v", err)
	}

	// Binary request, no Accept → JSON response.
	frame := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: k}, p)
	rec = doBin(s.Handler(), "/v1/solve", frame, "")
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("bin-in/JSON-out: code %d, Content-Type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var jresp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &jresp); err != nil {
		t.Fatalf("response is not JSON: %v", err)
	}

	// Trace + binary Accept → JSON (span trees have no binary rendering).
	frame = mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: k, Trace: true}, p)
	rec = doBin(s.Handler(), "/v1/solve", frame, codec.ContentType)
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("traced solve: code %d, Content-Type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}
	if jresp.Trace == nil {
		t.Error("traced solve returned no span tree")
	}
}

// The cache keys JSON and binary renderings separately, and replays each
// byte-identically.
func TestWireCacheSeparation(t *testing.T) {
	s := newTestServer(t, Config{})
	p := testPath(t, 24, 9)
	k := 4 * p.MaxNodeWeight()
	frame := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: k}, p)

	recBin := doBin(s.Handler(), "/v1/solve", frame, codec.ContentType)
	if got := recBin.Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first binary solve X-Cache = %q, want MISS", got)
	}
	// The binary entry is the canonical frame: a JSON request for the same
	// solve renders from it without re-running the engine.
	recJSON := doBin(s.Handler(), "/v1/solve", frame, "")
	if got := recJSON.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("JSON render after binary solve X-Cache = %q, want HIT (rendered from canonical frame)", got)
	}
	if bytes.Equal(recJSON.Body.Bytes(), recBin.Body.Bytes()) {
		t.Error("JSON render returned the raw binary frame")
	}
	var resp solveResponse
	if err := json.Unmarshal(recJSON.Body.Bytes(), &resp); err != nil {
		t.Fatalf("JSON render is not valid JSON: %v", err)
	}
	// The rendered JSON body is now cached under its own key and replays.
	recJSON2 := doBin(s.Handler(), "/v1/solve", frame, "")
	if got := recJSON2.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat JSON solve X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(recJSON2.Body.Bytes(), recJSON.Body.Bytes()) {
		t.Error("cached JSON replay is not byte-identical")
	}
	rec2 := doBin(s.Handler(), "/v1/solve", frame, codec.ContentType)
	if got := rec2.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("repeat binary solve X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(rec2.Body.Bytes(), recBin.Body.Bytes()) {
		t.Error("cached binary replay is not byte-identical")
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	p1, p2 := testPath(t, 32, 1), testPath(t, 48, 2)
	params := []SolveParams{
		{Solver: "bandwidth", K: 4 * p1.MaxNodeWeight()},
		{Solver: "", K: 1}, // per-item error: missing solver
		{Solver: "bandwidth", K: 4 * p2.MaxNodeWeight()},
	}
	body, err := AppendBatchRequest(nil, 0, params, []any{p1, p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	rec := doBin(s.Handler(), "/v1/batch", body, codec.ContentType)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", rec.Code, rec.Body)
	}
	out, err := DecodeBatchResult(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeBatchResult: %v", err)
	}
	if out.Requests != 3 || out.Solved != 2 || out.Failed != 1 {
		t.Fatalf("stats = %+v, want 3 requests / 2 solved / 1 failed", out)
	}
	if len(out.Items) != 3 {
		t.Fatalf("items = %d, want 3", len(out.Items))
	}
	if out.Items[0].Result == nil || out.Items[2].Result == nil {
		t.Fatal("solvable items missing results")
	}
	if out.Items[1].Error == "" || !strings.Contains(out.Items[1].Error, "solver") {
		t.Errorf("item 1 error = %q, want a solver validation error", out.Items[1].Error)
	}

	// Repeat: both solvable items replay from the cache.
	rec = doBin(s.Handler(), "/v1/batch", body, codec.ContentType)
	out, err = DecodeBatchResult(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHits != 2 || !out.Items[0].Cached || !out.Items[2].Cached {
		t.Errorf("repeat batch: cacheHits = %d, cached flags = %v/%v; want 2 and true/true",
			out.CacheHits, out.Items[0].Cached, out.Items[2].Cached)
	}
}

func TestBinaryMalformedRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	p := testPath(t, 8, 4)
	good := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: 4 * p.MaxNodeWeight()}, p)

	cases := []struct {
		name string
		path string
		body []byte
		want int
	}{
		{"bad magic", "/v1/solve", []byte("XXXX garbage"), http.StatusBadRequest},
		{"empty body", "/v1/solve", nil, http.StatusBadRequest},
		{"truncated frame", "/v1/solve", good[:len(good)-5], http.StatusBadRequest},
		{"trailing bytes", "/v1/solve", append(append([]byte{}, good...), 0xEE), http.StatusBadRequest},
		{"solve frame on batch", "/v1/batch", good, http.StatusBadRequest},
		{"empty batch", "/v1/batch", func() []byte {
			b, _ := AppendBatchRequest(nil, 0, nil, nil)
			return b
		}(), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doBin(s.Handler(), tc.path, tc.body, "")
			if rec.Code != tc.want {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.want, rec.Body)
			}
			var e errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
				t.Fatalf("error response not structured JSON: %q", rec.Body)
			}
		})
	}
}

// Limit violations — the node-count cap in both formats and the body cap —
// answer 413 with a structured error.
func TestRequestLimits413(t *testing.T) {
	s := newTestServer(t, Config{MaxNodes: 16})
	p := testPath(t, 64, 6)
	k := 4 * p.MaxNodeWeight()

	// Binary: declared count rejected before allocation.
	frame := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: k}, p)
	rec := doBin(s.Handler(), "/v1/solve", frame, "")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("binary oversized graph = %d, want 413 (%s)", rec.Code, rec.Body)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("413 body not structured: %q", rec.Body)
	}

	// JSON: checked right after graph decode.
	jrec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{
		Solver: "bandwidth", K: k, Graph: pathGraphJSON(t, 64, 6),
	})
	if jrec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("JSON oversized graph = %d, want 413 (%s)", jrec.Code, jrec.Body)
	}

	// Body cap: MaxBytesReader violations are 413 too.
	small := newTestServer(t, Config{MaxBodyBytes: 64})
	rec = doBin(small.Handler(), "/v1/solve", frame, "")
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413 (%s)", rec.Code, rec.Body)
	}

	// Under the limit everything still works.
	ok := testPath(t, 16, 6)
	frame = mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: 4 * ok.MaxNodeWeight()}, ok)
	if rec = doBin(s.Handler(), "/v1/solve", frame, ""); rec.Code != http.StatusOK {
		t.Fatalf("at-limit graph = %d, want 200 (%s)", rec.Code, rec.Body)
	}
}

// A batch aborts only on broken framing; item-level semantic errors keep
// later frames readable.
func TestBinaryBatchFramingAbort(t *testing.T) {
	s := newTestServer(t, Config{})
	p := testPath(t, 8, 8)
	good := mustSolveFrame(t, SolveParams{Solver: "bandwidth", K: 4 * p.MaxNodeWeight()}, p)

	// Corrupt the second item's graph magic: boundary lost → 400.
	body, err := AppendBatchRequest(nil, 0,
		[]SolveParams{{Solver: "bandwidth", K: 4 * p.MaxNodeWeight()}, {Solver: "bandwidth", K: 4 * p.MaxNodeWeight()}},
		[]any{p, p})
	if err != nil {
		t.Fatal(err)
	}
	// Both items encode identically, so the second PSV1 frame occupies the
	// last len(good) bytes; clobber its magic.
	body[len(body)-len(good)] = 'X'
	rec := doBin(s.Handler(), "/v1/batch", body, "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt framing = %d, want 400 (%s)", rec.Code, rec.Body)
	}
}

func TestWireReaderOverflowGuards(t *testing.T) {
	// maxComponents beyond int32 is rejected, not truncated.
	var frame []byte
	frame = append(frame, solveReqMagic...)
	frame = append(frame, 0)                   // flags
	frame = appendF64(frame, 100)              // k
	frame = binary.AppendUvarint(frame, 1<<40) // maxComponents: absurd
	frame = binary.AppendUvarint(frame, 0)     // timeoutMs
	frame = appendString(frame, "bandwidth")
	s := newTestServer(t, Config{})
	p := testPath(t, 4, 1)
	var err error
	frame, err = codec.Append(frame, p)
	if err != nil {
		t.Fatal(err)
	}
	rec := doBin(s.Handler(), "/v1/solve", frame, "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("overflowing maxComponents = %d, want 400 (%s)", rec.Code, rec.Body)
	}
}
