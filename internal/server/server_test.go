package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/workload"
)

// quietLogger keeps request logs out of test output.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	// New starts the job worker pool; stop it when the test ends so
	// goroutine-leak checks elsewhere see a quiet baseline.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.jobs.Shutdown(ctx)
	})
	return s
}

// pathGraphJSON renders a random n-node path in the graph-JSON envelope,
// through the graph package's own writer to stay honest about the wire
// format.
func pathGraphJSON(t *testing.T, n int, seed uint64) json.RawMessage {
	t.Helper()
	r := workload.NewRNG(seed)
	p := workload.RandomPath(r, n, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	return json.RawMessage(buf.Bytes())
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	return doJSONRaw(h, method, path, body)
}

// doJSONRaw is doJSON without the testing.T, safe inside goroutines (a
// marshal failure of a test-authored struct can only be a test bug).
func doJSONRaw(h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			panic(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// The gate solver blocks until released, letting tests hold solves in
// flight deterministically. One gate is active at a time (tests in this
// package don't run in parallel).
var (
	gateMu      sync.Mutex
	gateStarted chan struct{}
	gateRelease chan struct{}
	gateOnce    sync.Once
)

// armGate resets the gate channels and registers the solver on first use.
func armGate(t *testing.T) (started <-chan struct{}, release func()) {
	t.Helper()
	gateOnce.Do(func() {
		engine.Register(&gateSolver{})
	})
	gateMu.Lock()
	defer gateMu.Unlock()
	gateStarted = make(chan struct{}, 64)
	gateRelease = make(chan struct{})
	rel := gateRelease
	var once sync.Once
	return gateStarted, func() { once.Do(func() { close(rel) }) }
}

type gateSolver struct{}

func (gateSolver) Name() string      { return "test-gate" }
func (gateSolver) Kind() engine.Kind { return engine.KindPath }
func (gateSolver) Solve(ctx context.Context, req engine.Request) (engine.Result, error) {
	gateMu.Lock()
	st, rel := gateStarted, gateRelease
	gateMu.Unlock()
	st <- struct{}{}
	select {
	case <-rel:
		return engine.Result{Solver: "test-gate", K: req.K, ComponentWeights: []float64{req.K}}, nil
	case <-ctx.Done():
		return engine.Result{}, ctx.Err()
	}
}

func TestSolveEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	g := pathGraphJSON(t, 100, 1)
	rec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 500, Graph: g})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get("X-Cache"); got != "MISS" {
		t.Errorf("X-Cache = %q, want MISS", got)
	}
	var resp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response JSON: %v", err)
	}
	if resp.Solver != "bandwidth" || resp.K != 500 {
		t.Errorf("resp = %+v", resp)
	}
	if resp.NumComponents != len(resp.ComponentWeights) || resp.NumComponents == 0 {
		t.Errorf("components inconsistent: %d vs %v", resp.NumComponents, resp.ComponentWeights)
	}
	if len(resp.Fingerprint) != 16 {
		t.Errorf("fingerprint = %q, want 16 hex chars", resp.Fingerprint)
	}
	if resp.Stats.Iterations <= 0 {
		t.Errorf("iterations = %d, want > 0", resp.Stats.Iterations)
	}
}

// TestSolveCacheHitByteIdentical is the tentpole acceptance check: the
// second identical request is answered from the cache byte-for-byte without
// invoking the engine again, asserted through the solve-observer count.
func TestSolveCacheHitByteIdentical(t *testing.T) {
	var observed atomic.Int64
	s := newTestServer(t, Config{
		Observer: engine.ObserverFunc(func(engine.Event) { observed.Add(1) }),
	})
	g := pathGraphJSON(t, 2000, 2)
	req := solveRequest{Solver: "bandwidth", K: 700, Graph: g}

	first := doJSON(t, s.Handler(), "POST", "/v1/solve", req)
	if first.Code != http.StatusOK {
		t.Fatalf("first solve: %d %s", first.Code, first.Body.String())
	}
	second := doJSON(t, s.Handler(), "POST", "/v1/solve", req)
	if second.Code != http.StatusOK {
		t.Fatalf("second solve: %d %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Errorf("cache hit body differs from original:\n%s\nvs\n%s", first.Body, second.Body)
	}
	if n := observed.Load(); n != 1 {
		t.Errorf("engine invoked %d times, want exactly 1", n)
	}
	if agg := s.MetricsSnapshot()["bandwidth"]; agg.Solves != 1 {
		t.Errorf("collector saw %d solves, want 1 (chained observers disagree)", agg.Solves)
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
	// A different K is a different key: must re-solve.
	third := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 800, Graph: g})
	if third.Code != http.StatusOK || third.Header().Get("X-Cache") != "MISS" {
		t.Errorf("different-K request: %d, X-Cache = %q, want 200 MISS", third.Code, third.Header().Get("X-Cache"))
	}
	if n := observed.Load(); n != 2 {
		t.Errorf("engine invoked %d times after K change, want 2", n)
	}
	// noCache bypasses both lookup and fill.
	bypass := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 700, Graph: g, NoCache: true})
	if bypass.Code != http.StatusOK || bypass.Header().Get("X-Cache") != "MISS" {
		t.Errorf("noCache request: %d, X-Cache = %q, want 200 MISS", bypass.Code, bypass.Header().Get("X-Cache"))
	}
	if n := observed.Load(); n != 3 {
		t.Errorf("engine invoked %d times after noCache, want 3", n)
	}
}

func TestSolveValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	g := pathGraphJSON(t, 10, 3)
	cases := []struct {
		name string
		req  solveRequest
		want int
	}{
		{"missing solver", solveRequest{K: 10, Graph: g}, http.StatusBadRequest},
		{"zero K", solveRequest{Solver: "bandwidth", K: 0, Graph: g}, http.StatusBadRequest},
		{"negative K", solveRequest{Solver: "bandwidth", K: -5, Graph: g}, http.StatusBadRequest},
		{"missing graph", solveRequest{Solver: "bandwidth", K: 10}, http.StatusBadRequest},
		{"bad graph json", solveRequest{Solver: "bandwidth", K: 10, Graph: json.RawMessage(`{"kind":"path","nodeWeights":[1,2],"edgeWeights":[]}`)}, http.StatusBadRequest},
		{"unknown solver", solveRequest{Solver: "nope", K: 10, Graph: g}, http.StatusBadRequest},
		{"negative maxComponents", solveRequest{Solver: "bandwidth", K: 10, MaxComponents: -1, Graph: g}, http.StatusBadRequest},
		{"negative timeout", solveRequest{Solver: "bandwidth", K: 10, TimeoutMs: -1, Graph: g}, http.StatusBadRequest},
		{"infeasible K", solveRequest{Solver: "bandwidth", K: 0.5, Graph: g}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doJSON(t, s.Handler(), "POST", "/v1/solve", tc.req)
			if rec.Code != tc.want {
				t.Errorf("status = %d, want %d (body %s)", rec.Code, tc.want, rec.Body.String())
			}
			var er errorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
				t.Errorf("error body missing: %s", rec.Body.String())
			}
		})
	}
	// Malformed JSON body.
	req := httptest.NewRequest("POST", "/v1/solve", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", rec.Code)
	}
	// Wrong method routes to 405 via the method-qualified mux patterns.
	rec = doJSON(t, s.Handler(), "GET", "/v1/solve", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve = %d, want 405", rec.Code)
	}
}

// TestLimiterSheds429 saturates one solve slot and a zero-length queue and
// checks the overflow request is shed with 429 + Retry-After while the
// admitted solve completes fine.
func TestLimiterSheds429(t *testing.T) {
	started, release := armGate(t)
	defer release()
	s := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      -1, // zero queue: overflow sheds immediately
		RetryAfter:    3 * time.Second,
		CacheSize:     -1, // cache off so every request reaches admission
	})
	g := pathGraphJSON(t, 4, 4)

	inFlight := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		inFlight <- doJSONRaw(s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "test-gate", K: 42, Graph: g})
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("gated solve never started")
	}

	shed := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "test-gate", K: 43, Graph: g})
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429 (body %s)", shed.Code, shed.Body.String())
	}
	if got := shed.Header().Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}

	release()
	first := <-inFlight
	if first.Code != http.StatusOK {
		t.Fatalf("admitted solve status = %d (body %s)", first.Code, first.Body.String())
	}
	if st := s.LimiterStats(); st.ShedQueueFull != 1 || st.Admitted != 1 {
		t.Errorf("limiter stats = %+v, want 1 shed / 1 admitted", st)
	}
}

// TestQueueTimeout503: a request that waits longer than QueueTimeout for a
// slot is shed with 503.
func TestQueueTimeout503(t *testing.T) {
	started, release := armGate(t)
	defer release()
	s := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxQueue:      8,
		QueueTimeout:  30 * time.Millisecond,
		CacheSize:     -1,
	})
	g := pathGraphJSON(t, 4, 5)
	go doJSONRaw(s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "test-gate", K: 42, Graph: g})
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("gated solve never started")
	}
	queued := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "test-gate", K: 43, Graph: g})
	if queued.Code != http.StatusServiceUnavailable {
		t.Fatalf("queued status = %d, want 503 (body %s)", queued.Code, queued.Body.String())
	}
	if st := s.LimiterStats(); st.ShedDeadline != 1 {
		t.Errorf("shedDeadline = %d, want 1", st.ShedDeadline)
	}
}

// TestGracefulShutdownDrains starts a real listener, holds a solve in
// flight, initiates Shutdown, and checks the in-flight request completes
// with 200 while post-drain requests are refused.
func TestGracefulShutdownDrains(t *testing.T) {
	started, release := armGate(t)
	defer release()
	s := newTestServer(t, Config{CacheSize: -1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	g := pathGraphJSON(t, 4, 6)
	body, err := json.Marshal(solveRequest{Solver: "test-gate", K: 42, Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		code int
		body []byte
		err  error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			inFlight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		inFlight <- result{code: resp.StatusCode, body: b}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight solve never started")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must wait for the gated solve: it cannot have finished yet.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a solve was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	// While draining, new work is refused at the handler with 503.
	rec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 10, Graph: g})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("solve while draining = %d, want 503", rec.Code)
	}
	health := doJSON(t, s.Handler(), "GET", "/healthz", nil)
	if health.Code != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", health.Code)
	}

	release()
	got := <-inFlight
	if got.err != nil {
		t.Fatalf("in-flight request failed: %v", got.err)
	}
	if got.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d (body %s)", got.code, got.body)
	}
	var resp solveResponse
	if err := json.Unmarshal(got.body, &resp); err != nil || resp.Solver != "test-gate" {
		t.Errorf("in-flight response corrupted by drain: %s", got.body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Errorf("Serve returned %v, want ErrServerClosed", err)
	}
	// The listener is closed: connections are refused outright.
	if _, err := http.Post(base+"/v1/solve", "application/json", bytes.NewReader(body)); err == nil {
		t.Error("post-shutdown request unexpectedly succeeded")
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	g := pathGraphJSON(t, 500, 7)
	warm := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 900, Graph: g})
	if warm.Code != http.StatusOK {
		t.Fatalf("warm solve: %d", warm.Code)
	}
	rec := doJSON(t, s.Handler(), "POST", "/v1/batch", batchRequest{Requests: []solveRequest{
		{Solver: "bandwidth", K: 900, Graph: g},  // cache hit
		{Solver: "bandwidth", K: 1100, Graph: g}, // fresh solve
		{Solver: "bandwidth", K: 0.25, Graph: g}, // infeasible: per-item error
		{Solver: "nope", K: 900, Graph: g},       // unknown solver: per-item error
	}})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status = %d (body %s)", rec.Code, rec.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Requests != 4 || resp.Stats.Solved != 2 || resp.Stats.Failed != 2 || resp.Stats.CacheHits != 1 {
		t.Fatalf("batch stats = %+v", resp.Stats)
	}
	if !resp.Items[0].Cached || resp.Items[0].Error != "" {
		t.Errorf("item 0 = %+v, want cached result", resp.Items[0])
	}
	if !bytes.Equal(resp.Items[0].Result, bytes.TrimSuffix(warm.Body.Bytes(), []byte("\n"))) {
		t.Errorf("cached batch item differs from the /v1/solve bytes")
	}
	if resp.Items[1].Cached || len(resp.Items[1].Result) == 0 {
		t.Errorf("item 1 = %+v, want fresh result", resp.Items[1])
	}
	for i := 2; i <= 3; i++ {
		if resp.Items[i].Error == "" {
			t.Errorf("item %d should carry an error", i)
		}
	}
	// The fresh batch solve must have filled the cache.
	again := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 1100, Graph: g})
	if again.Header().Get("X-Cache") != "HIT" {
		t.Errorf("solve after batch fill: X-Cache = %q, want HIT", again.Header().Get("X-Cache"))
	}
	// Batch-level validation.
	if rec := doJSON(t, s.Handler(), "POST", "/v1/batch", batchRequest{}); rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", rec.Code)
	}
}

func TestSolversHealthzMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	rec := doJSON(t, s.Handler(), "GET", "/v1/solvers", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("solvers status = %d", rec.Code)
	}
	var sresp solversResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sresp); err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	objectives := map[string]string{}
	for _, si := range sresp.Solvers {
		found[si.Name] = si.Kind
		objectives[si.Name] = si.Objective
	}
	if found["bandwidth"] != "path" || found["partition-tree"] != "tree" {
		t.Errorf("solver listing incomplete: %v", found)
	}
	if found["treecut-exact"] != "tree" {
		t.Errorf("treecut solvers missing from listing: %v", found)
	}
	if objectives["bandwidth"] != "bandwidth" || objectives["minproc"] != "minprocs" ||
		objectives["partition-tree"] != "bottleneck" {
		t.Errorf("solver objectives wrong: %v", objectives)
	}
	// The envelope publishes the server's limits.
	lim := sresp.Limits
	if lim.MaxNodes != 4<<20 || lim.MaxBodyBytes != 32<<20 || lim.JobQueue != 64 ||
		lim.JobWorkers <= 0 || lim.MaxTimeoutMs != 60_000 || lim.MaxJobTimeoutMs != 900_000 {
		t.Errorf("limits = %+v", lim)
	}

	health := doJSON(t, s.Handler(), "GET", "/healthz", nil)
	if health.Code != http.StatusOK || !strings.Contains(health.Body.String(), `"status":"ok"`) {
		t.Errorf("healthz = %d %s", health.Code, health.Body.String())
	}

	// Drive one solve + one hit, then check the exposition has the series.
	g := pathGraphJSON(t, 200, 8)
	for i := 0; i < 2; i++ {
		if rec := doJSON(t, s.Handler(), "POST", "/v1/solve", solveRequest{Solver: "bandwidth", K: 600, Graph: g}); rec.Code != http.StatusOK {
			t.Fatalf("solve %d: %d", i, rec.Code)
		}
	}
	met := doJSON(t, s.Handler(), "GET", "/metrics", nil)
	if met.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", met.Code)
	}
	text := met.Body.String()
	for _, want := range []string{
		`partitiond_solver_solves_total{solver="bandwidth"} 1`,
		`partitiond_cache_hits_total 1`,
		`partitiond_cache_misses_total 1`,
		`partitiond_admission_admitted_total 1`,
		`partitiond_http_requests_total{route="/v1/solve",code="200"} 2`,
		"# TYPE partitiond_solver_latency_seconds_total counter",
		"partitiond_http_in_flight 1", // the /metrics request itself
		`partitiond_jobs_total{state="succeeded"} 0`,
		"partitiond_jobs_queue_capacity 64",
		"partitiond_jobs_workers_busy 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestCacheHitSpeedup is the acceptance benchmark in test form: a repeated
// request must be at least 10x faster from the cache than solving. The
// uncached side uses bandwidth-naive on a wide window, so the solve
// dominates JSON decoding by a large margin on any host.
func TestCacheHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	s := newTestServer(t, Config{})
	r := workload.NewRNG(9)
	// 10k nodes at K = W/2: the quadratic solve grows 4x per doubling while
	// the decode on the cached path grows linearly, so the >=10x bar holds
	// with and without the race detector's (solve-heavy) slowdown.
	p := workload.RandomPath(r, 10000, workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
	var buf bytes.Buffer
	if err := graph.WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	req := solveRequest{Solver: "bandwidth-naive", K: p.TotalNodeWeight() / 2, Graph: buf.Bytes()}

	// Pre-marshal both request bodies so the timed region is purely the
	// server: decode, fingerprint, (cache | admission + solve), respond.
	marshal := func(noCache bool) []byte {
		rq := req
		rq.NoCache = noCache
		b, err := json.Marshal(rq)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	bodies := map[bool][]byte{true: marshal(true), false: marshal(false)}
	best := func(noCache bool, rounds int) time.Duration {
		min := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			hr := httptest.NewRequest("POST", "/v1/solve", bytes.NewReader(bodies[noCache]))
			rec := httptest.NewRecorder()
			start := time.Now()
			s.Handler().ServeHTTP(rec, hr)
			d := time.Since(start)
			if rec.Code != http.StatusOK {
				t.Fatalf("solve: %d %s", rec.Code, rec.Body.String())
			}
			if d < min {
				min = d
			}
		}
		return min
	}
	uncached := best(true, 3)
	if rec := doJSON(t, s.Handler(), "POST", "/v1/solve", req); rec.Code != http.StatusOK { // warm the cache
		t.Fatalf("warm: %d", rec.Code)
	}
	cached := best(false, 5)
	if st := s.CacheStats(); st.Hits < 5 {
		t.Fatalf("cache hits = %d, want >= 5 (timing below would be meaningless)", st.Hits)
	}
	t.Logf("uncached best = %v, cached best = %v (%.0fx)", uncached, cached, float64(uncached)/float64(cached))
	if cached*10 > uncached {
		t.Errorf("cache hit speedup < 10x: uncached %v vs cached %v", uncached, cached)
	}
}

func TestConcurrentSolvesUnderLimit(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 4, MaxQueue: 64})
	g := pathGraphJSON(t, 1000, 10)
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doJSON(t, s.Handler(), "POST", "/v1/solve",
				solveRequest{Solver: "bandwidth", K: 500 + float64(i%4), Graph: g})
			switch rec.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
			}
		}(i)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Error("no request succeeded")
	}
	if got := ok.Load() + shed.Load(); got != 32 {
		t.Errorf("accounted responses = %d, want 32", got)
	}
	st := s.LimiterStats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("limiter not drained after test: %+v", st)
	}
}

// TestSolveVerify drives the verification path end to end: a verified solve
// reports a certificate, the certificate rides the cache byte-identically,
// verified and unverified requests occupy distinct cache entries, and the
// outcomes land in /metrics.
func TestSolveVerify(t *testing.T) {
	s := newTestServer(t, Config{})
	g := pathGraphJSON(t, 60, 17)
	req := solveRequest{Solver: "bandwidth", K: 400, Graph: g, Verify: true}

	rec := doJSON(t, s.Handler(), "POST", "/v1/solve", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body = %s", rec.Code, rec.Body.String())
	}
	var resp solveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Verify == nil {
		t.Fatal("verify requested but response has no certificate")
	}
	if !resp.Verify.Certified || resp.Verify.Criterion != "bandwidth" {
		t.Errorf("certificate = %+v, want certified bandwidth", resp.Verify)
	}
	if resp.Verify.Objective != resp.CutWeight {
		t.Errorf("certificate objective %v != cut weight %v", resp.Verify.Objective, resp.CutWeight)
	}

	// The same request without verify must not hit the verified entry and
	// must omit the certificate.
	plain := doJSON(t, s.Handler(), "POST", "/v1/solve",
		solveRequest{Solver: "bandwidth", K: 400, Graph: g})
	if got := plain.Header().Get("X-Cache"); got != "MISS" {
		t.Errorf("unverified request X-Cache = %q, want MISS (distinct cache key)", got)
	}
	var plainResp solveResponse
	if err := json.Unmarshal(plain.Body.Bytes(), &plainResp); err != nil {
		t.Fatal(err)
	}
	if plainResp.Verify != nil {
		t.Errorf("unverified response carries a certificate: %+v", plainResp.Verify)
	}

	// A repeated verified request replays the certificate from the cache.
	hit := doJSON(t, s.Handler(), "POST", "/v1/solve", req)
	if got := hit.Header().Get("X-Cache"); got != "HIT" {
		t.Errorf("repeat verified request X-Cache = %q, want HIT", got)
	}
	if !bytes.Equal(hit.Body.Bytes(), rec.Body.Bytes()) {
		t.Error("cached verified response is not byte-identical")
	}

	// Batch items honor the per-item verify flag too.
	brec := doJSON(t, s.Handler(), "POST", "/v1/batch", batchRequest{Requests: []solveRequest{
		{Solver: "minproc-path", K: 400, Graph: g, Verify: true},
		{Solver: "bandwidth-naive", K: 400, Graph: g},
	}})
	if brec.Code != http.StatusOK {
		t.Fatalf("batch status = %d, body = %s", brec.Code, brec.Body.String())
	}
	var bresp batchResponse
	if err := json.Unmarshal(brec.Body.Bytes(), &bresp); err != nil {
		t.Fatal(err)
	}
	var item0, item1 solveResponse
	if err := json.Unmarshal(bresp.Items[0].Result, &item0); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(bresp.Items[1].Result, &item1); err != nil {
		t.Fatal(err)
	}
	if item0.Verify == nil || !item0.Verify.Certified || item0.Verify.Criterion != "minprocs" {
		t.Errorf("batch item 0 certificate = %+v, want certified minprocs", item0.Verify)
	}
	if item1.Verify != nil {
		t.Errorf("batch item 1 carries an unrequested certificate: %+v", item1.Verify)
	}

	// Two certificates were issued (solve + batch item); the cache hit
	// replayed one without re-verifying.
	met := doJSON(t, s.Handler(), "GET", "/metrics", nil)
	text := met.Body.String()
	if !strings.Contains(text, `partitiond_verify_total{result="certified"} 2`) {
		t.Errorf("metrics missing certified=2:\n%s", text)
	}
	if !strings.Contains(text, `partitiond_verify_total{result="uncertified"} 0`) {
		t.Errorf("metrics missing uncertified=0:\n%s", text)
	}
}
