package hostsat

import (
	"math"
	"testing"

	"repro/internal/workload"
)

// The host-satellite objective (minimize max(host load, offloaded subtree
// costs)) is not expressible as an edge-cut criterion, so the shared
// internal/verify oracles do not apply here; SolveExact remains the
// package-local ground truth. These properties run over explicit seeds so a
// failure message always carries the seed needed to reproduce it.

// Property: the O(n log n) crossing search equals the O(n²) exact scan on
// trees too large for brute force.
func TestSolveEqualsExactProperty(t *testing.T) {
	for seed := uint64(1); seed <= 150; seed++ {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(120)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 50), workload.UniformWeights(0, 30))
		host := r.Intn(n)
		fast, err1 := Solve(tr, host)
		slow, err2 := SolveExact(tr, host)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: Solve err=%v SolveExact err=%v (n=%d host=%d)", r.Seed(), err1, err2, n, host)
		}
		if math.Abs(fast.Bottleneck-slow.Bottleneck) >= 1e-9 {
			t.Errorf("seed %d: Solve bottleneck %v != SolveExact %v (n=%d host=%d)",
				r.Seed(), fast.Bottleneck, slow.Bottleneck, n, host)
		}
	}
}

// Property: offloading can never push the bottleneck above running
// everything on the host, and never below the trivial lower bounds.
func TestSolveBoundsProperty(t *testing.T) {
	for seed := uint64(1); seed <= 150; seed++ {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(100)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 20), workload.UniformWeights(0, 20))
		p, err := Solve(tr, 0)
		if err != nil {
			t.Fatalf("seed %d: Solve: %v (n=%d)", r.Seed(), err, n)
		}
		total := tr.TotalNodeWeight()
		if p.Bottleneck > total+1e-9 {
			t.Errorf("seed %d: bottleneck %v above all-on-host load %v", r.Seed(), p.Bottleneck, total)
		}
		// The host's own task weight is a lower bound, as is any satellite's
		// subtree weight share argument: bottleneck ≥ host vertex weight.
		if p.Bottleneck < tr.NodeW[0]-1e-9 {
			t.Errorf("seed %d: bottleneck %v below host task weight %v", r.Seed(), p.Bottleneck, tr.NodeW[0])
		}
		// Consistency of the reported fields.
		maxSat := 0.0
		for _, c := range p.SatelliteCosts {
			if c > maxSat {
				maxSat = c
			}
		}
		want := math.Max(p.HostLoad, maxSat)
		if math.Abs(p.Bottleneck-want) >= 1e-9 {
			t.Errorf("seed %d: bottleneck %v inconsistent with fields (host %v, max satellite %v)",
				r.Seed(), p.Bottleneck, p.HostLoad, maxSat)
		}
	}
}
