package hostsat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// Property: the O(n log n) crossing search equals the O(n²) exact scan on
// trees too large for brute force.
func TestSolveEqualsExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(120)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 50), workload.UniformWeights(0, 30))
		host := r.Intn(n)
		fast, err1 := Solve(tr, host)
		slow, err2 := SolveExact(tr, host)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(fast.Bottleneck-slow.Bottleneck) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: offloading can never push the bottleneck above running
// everything on the host, and never below the trivial lower bounds.
func TestSolveBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(100)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 20), workload.UniformWeights(0, 20))
		p, err := Solve(tr, 0)
		if err != nil {
			return false
		}
		total := tr.TotalNodeWeight()
		if p.Bottleneck > total+1e-9 {
			return false
		}
		// The host's own task weight is a lower bound, as is any satellite's
		// subtree weight share argument: bottleneck ≥ host vertex weight.
		if p.Bottleneck < tr.NodeW[0]-1e-9 {
			return false
		}
		// Consistency of the reported fields.
		maxSat := 0.0
		for _, c := range p.SatelliteCosts {
			if c > maxSat {
				maxSat = c
			}
		}
		want := math.Max(p.HostLoad, maxSat)
		return math.Abs(p.Bottleneck-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
