package hostsat

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

// bruteSolve enumerates every family of disjoint offload subtrees (n ≤ ~12)
// and returns the minimal bottleneck with at most m satellites (m < 0 means
// unlimited).
func bruteSolve(t *testing.T, tr *graph.Tree, host, m int) float64 {
	t.Helper()
	in, err := prepare(tr, host)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	n := tr.Len()
	best := math.Inf(1)
	// ancestor[v][u]: u is a strict ancestor of v (towards host).
	isAncestor := func(u, v int) bool {
		for x := v; x != -1; x = in.parent[x] {
			if x == u && x != v {
				return true
			}
		}
		return false
	}
	for mask := 0; mask < 1<<n; mask++ {
		if mask&(1<<host) != 0 {
			continue
		}
		var roots []int
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				roots = append(roots, v)
			}
		}
		if m >= 0 && len(roots) > m {
			continue
		}
		ok := true
		for _, u := range roots {
			for _, v := range roots {
				if u != v && isAncestor(u, v) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		p := in.buildPartition(roots)
		if p.Bottleneck < best {
			best = p.Bottleneck
		}
	}
	return best
}

func TestSolveHandCases(t *testing.T) {
	// Star: host 0 with three leaves of weight 10 and cheap edges.
	star, _ := graph.NewTree(
		[]float64{5, 10, 10, 10},
		[]graph.Edge{{U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 1}, {U: 0, V: 3, W: 1}},
	)
	p, err := Solve(star, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Offload two leaves (cost 11 each), keep one: host 15 — or offload all
	// three: host 5, bottleneck 11. The latter is optimal.
	if p.Bottleneck != 11 {
		t.Errorf("Bottleneck = %v (roots %v, host %v), want 11", p.Bottleneck, p.OffloadRoots, p.HostLoad)
	}
	if len(p.OffloadRoots) != 3 {
		t.Errorf("OffloadRoots = %v, want all three leaves", p.OffloadRoots)
	}

	// Expensive communication makes offloading pointless.
	farStar, _ := graph.NewTree(
		[]float64{5, 10, 10},
		[]graph.Edge{{U: 0, V: 1, W: 1000}, {U: 0, V: 2, W: 1000}},
	)
	p, err = Solve(farStar, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if p.Bottleneck != 25 || len(p.OffloadRoots) != 0 {
		t.Errorf("Bottleneck = %v roots %v, want 25 with no offloads", p.Bottleneck, p.OffloadRoots)
	}
}

func TestSolveSingleVertex(t *testing.T) {
	tr, _ := graph.NewTree([]float64{7}, nil)
	p, err := Solve(tr, 0)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if p.Bottleneck != 7 || p.HostLoad != 7 {
		t.Errorf("partition = %+v", p)
	}
}

func TestSolveErrors(t *testing.T) {
	tr, _ := graph.NewTree([]float64{1, 2}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := Solve(tr, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad host: %v", err)
	}
	if _, err := SolveLimited(tr, 0, -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative m: %v", err)
	}
}

func TestSolveMatchesExactMatchesBrute(t *testing.T) {
	r := workload.NewRNG(88)
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(10)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 20), workload.UniformWeights(0, 15))
		host := r.Intn(n)
		want := bruteSolve(t, tr, host, -1)
		fast, err := Solve(tr, host)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		exact, err := SolveExact(tr, host)
		if err != nil {
			t.Fatalf("SolveExact: %v", err)
		}
		if math.Abs(exact.Bottleneck-want) > 1e-9 {
			t.Fatalf("SolveExact %v != brute %v\nnodeW=%v edges=%v host=%d",
				exact.Bottleneck, want, tr.NodeW, tr.Edges, host)
		}
		if math.Abs(fast.Bottleneck-want) > 1e-9 {
			t.Fatalf("Solve %v != brute %v\nnodeW=%v edges=%v host=%d",
				fast.Bottleneck, want, tr.NodeW, tr.Edges, host)
		}
	}
}

func TestSolveLimitedMatchesBrute(t *testing.T) {
	r := workload.NewRNG(99)
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(9)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 20), workload.UniformWeights(0, 15))
		host := r.Intn(n)
		m := r.Intn(4)
		want := bruteSolve(t, tr, host, m)
		got, err := SolveLimited(tr, host, m)
		if err != nil {
			t.Fatalf("SolveLimited: %v", err)
		}
		if len(got.OffloadRoots) > m {
			t.Fatalf("used %d satellites > m=%d", len(got.OffloadRoots), m)
		}
		if math.Abs(got.Bottleneck-want) > 1e-9 {
			t.Fatalf("SolveLimited %v != brute %v\nnodeW=%v edges=%v host=%d m=%d roots=%v",
				got.Bottleneck, want, tr.NodeW, tr.Edges, host, m, got.OffloadRoots)
		}
	}
}

func TestSolveLimitedConvergesToUnlimited(t *testing.T) {
	r := workload.NewRNG(111)
	for trial := 0; trial < 50; trial++ {
		n := 2 + r.Intn(15)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 20), workload.UniformWeights(0, 5))
		unlimited, err := Solve(tr, 0)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		limited, err := SolveLimited(tr, 0, n)
		if err != nil {
			t.Fatalf("SolveLimited: %v", err)
		}
		if math.Abs(limited.Bottleneck-unlimited.Bottleneck) > 1e-9 {
			t.Fatalf("m=n limited %v != unlimited %v", limited.Bottleneck, unlimited.Bottleneck)
		}
		// Monotone in m: more satellites never hurt.
		prev := math.Inf(1)
		for m := 0; m <= 3; m++ {
			p, err := SolveLimited(tr, 0, m)
			if err != nil {
				t.Fatalf("SolveLimited(m=%d): %v", m, err)
			}
			if p.Bottleneck > prev+1e-9 {
				t.Fatalf("bottleneck increased with more satellites: m=%d %v > %v", m, p.Bottleneck, prev)
			}
			prev = p.Bottleneck
		}
	}
}

func TestPartitionInternallyConsistent(t *testing.T) {
	r := workload.NewRNG(123)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(40)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(0, 10))
		p, err := Solve(tr, 0)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		var off float64
		in, _ := prepare(tr, 0)
		for i, v := range p.OffloadRoots {
			off += in.subtreeW[v]
			if math.Abs(p.SatelliteCosts[i]-in.cost(v)) > 1e-9 {
				t.Fatalf("satellite cost mismatch at root %d", v)
			}
		}
		if math.Abs(p.HostLoad-(tr.TotalNodeWeight()-off)) > 1e-9 {
			t.Fatalf("host load %v != total-offloaded %v", p.HostLoad, tr.TotalNodeWeight()-off)
		}
	}
}
