// Package hostsat implements bottleneck partitioning of a tree task graph
// for a single-host, multiple-identical-satellite system — the prior-work
// setting the paper contrasts itself with in §1: "Bokhari's bottleneck
// minimization problem takes polynomial time when the task graph is a tree
// and target architecture is single host multiple (identical) satellite
// system."
//
// Model: the task tree is rooted at the host's resident task. A partition
// offloads a family of vertex-disjoint subtrees, one per satellite; each
// offloaded subtree costs its total vertex weight plus the weight of its
// root edge (the data shipped between host and satellite). The host runs
// everything not offloaded. The bottleneck is
//
//	max( host load, max over satellites of subtree weight + root-edge weight )
//
// and the goal is to minimize it, optionally with at most m satellites.
//
// Solve runs in O(n log n): the optimum equals the best of
// max(host(B), B) over candidate thresholds B (distinct subtree costs),
// where host(B) — the minimal host load using only offloads of cost ≤ B —
// is computed by a linear tree DP; host(B) is non-increasing and B
// increasing, so the minimum sits at their crossing, found by binary
// search. SolveExact scans every candidate in O(n²) and is the test oracle.
// SolveLimited adds the ≤ m satellites constraint with a cardinality
// knapsack DP over the tree, O(n·m²) per candidate.
package hostsat

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Sentinel errors.
var (
	// ErrBadInput is returned for invalid hosts or satellite budgets.
	ErrBadInput = errors.New("hostsat: bad input")
)

// Partition is a host/satellite assignment.
type Partition struct {
	// OffloadRoots lists the root vertex of each offloaded subtree, in
	// increasing order.
	OffloadRoots []int
	// SatelliteCosts[i] is subtree weight + root edge weight for
	// OffloadRoots[i].
	SatelliteCosts []float64
	// HostLoad is the total weight left on the host.
	HostLoad float64
	// Bottleneck is max(HostLoad, max SatelliteCosts).
	Bottleneck float64
}

// tree preprocessing shared by the solvers.
type instance struct {
	t        *graph.Tree
	host     int
	order    []int // BFS order from host
	parent   []int
	parentW  []float64 // root-edge weight per vertex (0 for host)
	subtreeW []float64
	total    float64
}

func prepare(t *graph.Tree, host int) (*instance, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if host < 0 || host >= t.Len() {
		return nil, fmt.Errorf("host %d out of range [0,%d): %w", host, t.Len(), ErrBadInput)
	}
	n := t.Len()
	adj := t.Adjacency()
	in := &instance{
		t:        t,
		host:     host,
		parent:   make([]int, n),
		parentW:  make([]float64, n),
		subtreeW: make([]float64, n),
		total:    t.TotalNodeWeight(),
	}
	for v := range in.parent {
		in.parent[v] = -1
	}
	in.order = append(in.order, host)
	seen := make([]bool, n)
	seen[host] = true
	for qi := 0; qi < len(in.order); qi++ {
		v := in.order[qi]
		for _, a := range adj[v] {
			if !seen[a.To] {
				seen[a.To] = true
				in.parent[a.To] = v
				in.parentW[a.To] = t.Edges[a.Edge].W
				in.order = append(in.order, a.To)
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		v := in.order[i]
		in.subtreeW[v] = t.NodeW[v]
		for _, a := range adj[v] {
			if a.To != in.parent[v] && in.parent[a.To] == v {
				in.subtreeW[v] += in.subtreeW[a.To]
			}
		}
	}
	return in, nil
}

// cost returns the satellite cost of offloading v's subtree.
func (in *instance) cost(v int) float64 {
	return in.subtreeW[v] + in.parentW[v]
}

// bestOffload computes, for threshold b, the maximum total weight that can
// be offloaded using disjoint subtrees of cost ≤ b, and the roots chosen.
// The host vertex itself can never be offloaded. O(n).
func (in *instance) bestOffload(b float64) (float64, []int) {
	n := in.t.Len()
	adj := in.t.Adjacency()
	// gain[v]: max offloadable weight within v's subtree.
	gain := make([]float64, n)
	whole := make([]bool, n) // v's subtree offloaded as one unit on the optimal path
	for i := n - 1; i >= 0; i-- {
		v := in.order[i]
		var childSum float64
		for _, a := range adj[v] {
			if in.parent[a.To] == v {
				childSum += gain[a.To]
			}
		}
		gain[v] = childSum
		if v != in.host && in.cost(v) <= b && in.subtreeW[v] > childSum {
			gain[v] = in.subtreeW[v]
			whole[v] = true
		}
	}
	// Collect chosen roots top-down.
	var roots []int
	var stack []int
	stack = append(stack, in.host)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v != in.host && whole[v] {
			roots = append(roots, v)
			continue
		}
		for _, a := range adj[v] {
			if in.parent[a.To] == v {
				stack = append(stack, a.To)
			}
		}
	}
	sort.Ints(roots)
	return gain[in.host], roots
}

// buildPartition assembles a Partition from chosen roots.
func (in *instance) buildPartition(roots []int) *Partition {
	p := &Partition{OffloadRoots: roots}
	var off float64
	for _, v := range roots {
		c := in.cost(v)
		p.SatelliteCosts = append(p.SatelliteCosts, c)
		off += in.subtreeW[v]
		if c > p.Bottleneck {
			p.Bottleneck = c
		}
	}
	p.HostLoad = in.total - off
	if p.HostLoad > p.Bottleneck {
		p.Bottleneck = p.HostLoad
	}
	return p
}

// candidates returns the distinct offload cost thresholds in ascending
// order, with 0 (no offloading) prepended.
func (in *instance) candidates() []float64 {
	set := map[float64]bool{0: true}
	for v := range in.subtreeW {
		if v != in.host && in.parent[v] != -1 {
			set[in.cost(v)] = true
		}
	}
	out := make([]float64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Float64s(out)
	return out
}

// Solve minimizes the bottleneck with unlimited satellites: O(n log n).
func Solve(t *graph.Tree, host int) (*Partition, error) {
	in, err := prepare(t, host)
	if err != nil {
		return nil, err
	}
	cands := in.candidates()
	// host(B) is non-increasing, B increasing: binary search the first
	// candidate where the threshold is at least the resulting host load,
	// then take the best partition in a window around the crossing (the
	// bound max(host(B), B) is quasi-convex; the window absorbs plateaus).
	cross := sort.Search(len(cands), func(i int) bool {
		gain, _ := in.bestOffload(cands[i])
		return cands[i] >= in.total-gain
	})
	best := math.Inf(1)
	var bestPart *Partition
	lo := cross - 2
	if lo < 0 {
		lo = 0
	}
	hi := cross + 1
	if hi > len(cands)-1 {
		hi = len(cands) - 1
	}
	for i := lo; i <= hi; i++ {
		_, roots := in.bestOffload(cands[i])
		p := in.buildPartition(roots)
		if p.Bottleneck < best {
			best = p.Bottleneck
			bestPart = p
		}
	}
	return bestPart, nil
}

// SolveExact scans every candidate threshold: O(n²). Test oracle for Solve.
func SolveExact(t *graph.Tree, host int) (*Partition, error) {
	in, err := prepare(t, host)
	if err != nil {
		return nil, err
	}
	best := math.Inf(1)
	var bestPart *Partition
	for _, b := range in.candidates() {
		_, roots := in.bestOffload(b)
		p := in.buildPartition(roots)
		if p.Bottleneck < best {
			best = p.Bottleneck
			bestPart = p
		}
	}
	return bestPart, nil
}

// SolveLimited minimizes the bottleneck using at most m satellites:
// O(n·m²) per candidate threshold, O(n²·m²) total. Intended for the
// moderate m of a host-satellite system.
func SolveLimited(t *graph.Tree, host, m int) (*Partition, error) {
	if m < 0 {
		return nil, fmt.Errorf("m = %d: %w", m, ErrBadInput)
	}
	in, err := prepare(t, host)
	if err != nil {
		return nil, err
	}
	best := math.Inf(1)
	var bestPart *Partition
	for _, b := range in.candidates() {
		roots := in.bestOffloadLimited(b, m)
		p := in.buildPartition(roots)
		if p.Bottleneck < best {
			best = p.Bottleneck
			bestPart = p
		}
	}
	return bestPart, nil
}

// bestOffloadLimited maximizes offloaded weight with at most m disjoint
// subtrees of cost ≤ b, returning the chosen roots. Cardinality-constrained
// tree knapsack: dp[v][k] = max weight offloaded within v's subtree using k
// satellites.
func (in *instance) bestOffloadLimited(b float64, m int) []int {
	n := in.t.Len()
	adj := in.t.Adjacency()
	dp := make([][]float64, n)
	// choice[v][k]: per-child satellite allocation on the optimal path, plus
	// whether v is offloaded whole.
	type pick struct {
		whole bool
		alloc []int32 // satellites given to each child, in adjacency order

	}
	choice := make([]map[int]pick, n)
	for i := n - 1; i >= 0; i-- {
		v := in.order[i]
		var children []int
		for _, a := range adj[v] {
			if in.parent[a.To] == v {
				children = append(children, a.To)
			}
		}
		// Combine children with a budget-split DP.
		cur := make([]float64, m+1)
		allocAt := make([][]int32, m+1)
		for k := range allocAt {
			allocAt[k] = make([]int32, 0, len(children))
		}
		for _, c := range children {
			next := make([]float64, m+1)
			nextAlloc := make([][]int32, m+1)
			for k := 0; k <= m; k++ {
				bestW := -1.0
				bestJ := 0
				for j := 0; j <= k; j++ {
					if w := cur[k-j] + dp[c][j]; w > bestW {
						bestW = w
						bestJ = j
					}
				}
				next[k] = bestW
				nextAlloc[k] = append(append([]int32(nil), allocAt[k-bestJ]...), int32(bestJ))
			}
			cur, allocAt = next, nextAlloc
		}
		dp[v] = cur
		choice[v] = make(map[int]pick, m+1)
		for k := 0; k <= m; k++ {
			choice[v][k] = pick{alloc: allocAt[k]}
		}
		if v != in.host && in.cost(v) <= b {
			for k := 1; k <= m; k++ {
				if in.subtreeW[v] > dp[v][k] {
					dp[v][k] = in.subtreeW[v]
					choice[v][k] = pick{whole: true}
				}
			}
		}
	}
	// Reconstruct.
	var roots []int
	type frame struct{ v, k int }
	stack := []frame{{in.host, m}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		pc := choice[fr.v][fr.k]
		if pc.whole {
			roots = append(roots, fr.v)
			continue
		}
		idx := 0
		for _, a := range adj[fr.v] {
			if in.parent[a.To] == fr.v {
				if idx < len(pc.alloc) && pc.alloc[idx] > 0 {
					stack = append(stack, frame{a.To, int(pc.alloc[idx])})
				}
				idx++
			}
		}
	}
	sort.Ints(roots)
	return roots
}
