package jobs

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func ringEvent(seq uint64) Event {
	return Event{Seq: seq, Type: "state", Data: []byte(fmt.Sprintf(`{"n":%d}`, seq))}
}

func seqs(evs []Event) []uint64 {
	out := make([]uint64, len(evs))
	for i, ev := range evs {
		out[i] = ev.Seq
	}
	return out
}

func TestRingSince(t *testing.T) {
	r := newEventRing(4)
	if got := r.since(0); got != nil {
		t.Fatalf("empty ring since(0) = %v", got)
	}
	for s := uint64(1); s <= 3; s++ {
		r.append(ringEvent(s))
	}
	if got := seqs(r.since(0)); fmt.Sprint(got) != "[1 2 3]" {
		t.Errorf("since(0) = %v", got)
	}
	if got := seqs(r.since(2)); fmt.Sprint(got) != "[3]" {
		t.Errorf("since(2) = %v", got)
	}
	if got := r.since(3); got != nil {
		t.Errorf("since(3) = %v, want nil", got)
	}
	if got := r.since(99); got != nil {
		t.Errorf("since(99) = %v, want nil", got)
	}
}

func TestRingEviction(t *testing.T) {
	r := newEventRing(3)
	for s := uint64(1); s <= 5; s++ {
		r.append(ringEvent(s))
	}
	// Events 1-2 evicted; the ring holds 3-5.
	if got := seqs(r.since(0)); fmt.Sprint(got) != "[3 4 5]" {
		t.Errorf("since(0) after eviction = %v", got)
	}
	if got := seqs(r.since(3)); fmt.Sprint(got) != "[4 5]" {
		t.Errorf("since(3) = %v", got)
	}
	if got := r.since(5); got != nil {
		t.Errorf("since(5) = %v", got)
	}
}

func TestWriteEventFraming(t *testing.T) {
	var b strings.Builder
	ev := Event{Seq: 7, Type: "phase", Data: []byte(`{"phase":"dp"}`)}
	if err := WriteEvent(&b, ev); err != nil {
		t.Fatal(err)
	}
	want := "id: 7\nevent: phase\ndata: {\"phase\":\"dp\"}\n\n"
	if b.String() != want {
		t.Errorf("frame = %q, want %q", b.String(), want)
	}
}

func TestWriteEventMultilineData(t *testing.T) {
	var b strings.Builder
	ev := Event{Seq: 1, Type: "state", Data: []byte("a\nb")}
	if err := WriteEvent(&b, ev); err != nil {
		t.Fatal(err)
	}
	want := "id: 1\nevent: state\ndata: a\ndata: b\n\n"
	if b.String() != want {
		t.Errorf("frame = %q, want %q", b.String(), want)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, io.ErrClosedPipe }

func TestWriteEventError(t *testing.T) {
	if err := WriteEvent(failWriter{}, Event{Seq: 1, Type: "state"}); err == nil {
		t.Fatal("want error from failed write")
	}
}

// TestPublishSpan checks the obs bridge emits phase events with durations on
// span end, and that publishing stops at the terminal state.
func TestPublishSpan(t *testing.T) {
	j := &Job{ID: "jtest", ring: newEventRing(8), notifyCh: make(chan struct{}), doneCh: make(chan struct{})}
	j.mu.Lock()
	j.setStateLocked(StateRunning, "")
	j.mu.Unlock()

	j.PublishSpan(obs.SpanEvent{Name: "exact-dp"})
	j.PublishSpan(obs.SpanEvent{Name: "exact-dp", End: true, Duration: 1500 * time.Microsecond})
	evs, _, _ := j.EventsSince(1) // skip the running event
	if len(evs) != 2 {
		t.Fatalf("got %d events", len(evs))
	}
	if string(evs[0].Data) != `{"phase":"exact-dp"}` {
		t.Errorf("start payload = %s", evs[0].Data)
	}
	if string(evs[1].Data) != `{"phase":"exact-dp","end":true,"duration_ms":1.5}` {
		t.Errorf("end payload = %s", evs[1].Data)
	}

	j.mu.Lock()
	j.setStateLocked(StateSucceeded, "")
	j.mu.Unlock()
	j.PublishSpan(obs.SpanEvent{Name: "late"})
	after, _, terminal := j.EventsSince(evs[1].Seq)
	if !terminal {
		t.Error("not terminal after succeeded")
	}
	if len(after) != 1 || after[0].Type != "state" {
		t.Errorf("events after terminal = %+v, want only the terminal state", after)
	}
}
