// Package jobs runs partitioning solves as durable asynchronous jobs. A job
// outlives the HTTP request that submitted it: it sits in a priority- and
// deadline-aware queue, runs on a bounded worker pool layered on the server's
// admission limiter, records its progress in a bounded per-job event ring
// (replayable for SSE resume), and keeps its terminal result until a
// retention janitor reclaims it.
//
// The pieces:
//
//   - Manager owns the queue, the workers, the job table, and the dedup
//     index; Submit/Get/Cancel/List/Shutdown are its surface.
//   - Job is one solve: immutable identity plus mutable state guarded by its
//     own mutex. Subscribers pull events with EventsSince — there are no
//     per-subscriber goroutines, so a slow SSE client can never stall the
//     solver.
//   - Event is one progress record (state change or phase span), serialized
//     at publish time so replays are byte-identical.
//
// Lock order is Manager.mu before Job.mu; Job methods never call back into
// the Manager.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle: queued → running → one of the three terminal states.
// Cancellation can also take a queued job directly to StateCanceled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether no further transitions (or events) can occur.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// States lists every job state, for metrics exporters that pre-register one
// series per state.
func States() []State {
	return []State{StateQueued, StateRunning, StateSucceeded, StateFailed, StateCanceled}
}

// Event is one progress record. Data is serialized once at publish time, so
// a replayed event is byte-for-byte the event that was first delivered.
type Event struct {
	// Seq numbers the job's events from 1, with no gaps; it is the SSE
	// event ID, and EventsSince(after) resumes strictly after it.
	Seq uint64 `json:"seq"`
	// Type is the SSE event name: "state" or "phase".
	Type string `json:"type"`
	// Time is when the event was published.
	Time time.Time `json:"time"`
	// Data is the type-specific JSON payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// statePayload is the Data of "state" events.
type statePayload struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// Snapshot is a point-in-time view of a job, shaped for the HTTP API.
type Snapshot struct {
	ID       string     `json:"id"`
	State    State      `json:"state"`
	Priority int        `json:"priority,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Deadline *time.Time `json:"deadline,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Events is the sequence number of the latest published event.
	Events uint64 `json:"events"`
	// Joined counts submissions deduplicated onto this job beyond the
	// first.
	Joined int `json:"joined,omitempty"`
}

// Job is one asynchronous solve. The exported fields are immutable after
// Submit; everything else is read through Snapshot, EventsSince and Result.
type Job struct {
	// ID is the job's unique identifier ("j" + 16 hex digits).
	ID string
	// Key is the dedup key the job was submitted under ("" for none).
	Key string
	// Priority orders the queue: higher runs first.
	Priority int
	// Created is the submission time.
	Created time.Time

	run       RunFunc
	deadline  time.Time // zero means none; set from Spec.Timeout at submit
	submitSeq uint64
	heapIdx   int // index in the manager's queue, -1 when not queued

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	errMsg   string
	result   any
	canceled bool          // cancel requested (may precede the terminal state)
	cancel   func()        // cancels the running solve's context
	seq      uint64        // last published event sequence number
	ring     *eventRing    // recent events, for replay
	notifyCh chan struct{} // closed and replaced on every publish
	doneCh   chan struct{} // closed when the job reaches a terminal state
	joined   int
}

// RunFunc executes the job's solve. It must honor ctx cancellation (the
// manager cancels it on DELETE, job deadline, and forced shutdown); the
// returned value becomes the job's result on nil error. The *Job is the
// handle to publish progress through (PublishSpan).
type RunFunc func(ctx context.Context, j *Job) (any, error)

// Snapshot returns a consistent view of the job.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:       j.ID,
		State:    j.state,
		Priority: j.Priority,
		Created:  j.Created,
		Error:    j.errMsg,
		Events:   j.seq,
		Joined:   j.joined,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	if !j.deadline.IsZero() {
		t := j.deadline
		s.Deadline = &t
	}
	return s
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the solve's result value; ok is false unless the job
// succeeded.
func (j *Job) Result() (any, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateSucceeded
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// EventsSince returns the buffered events with sequence numbers strictly
// greater than after, a channel that is closed when the next event is
// published, and whether the returned events are the job's last (the job is
// terminal and nothing newer is pending). If after predates the ring's
// oldest retained event the replay has a gap; size the ring (Config
// EventBuffer) for the longest disconnect to be bridged.
func (j *Job) EventsSince(after uint64) ([]Event, <-chan struct{}, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	evs := j.ring.since(after)
	return evs, j.notifyCh, j.state.Terminal()
}

// publish appends one event to the ring and wakes subscribers. Events after
// the terminal state event are dropped: terminal is the stream's end.
func (j *Job) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // payloads are package-local structs; cannot happen
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.publishLocked(typ, data)
}

func (j *Job) publishLocked(typ string, data json.RawMessage) {
	j.seq++
	j.ring.append(Event{Seq: j.seq, Type: typ, Time: time.Now().UTC(), Data: data})
	close(j.notifyCh)
	j.notifyCh = make(chan struct{})
}

// setStateLocked transitions the job and publishes the matching "state"
// event. Callers hold j.mu.
func (j *Job) setStateLocked(s State, errMsg string) {
	j.state = s
	j.errMsg = errMsg
	data, _ := json.Marshal(statePayload{State: s, Error: errMsg})
	j.publishLocked("state", data)
	if s.Terminal() {
		j.finished = time.Now().UTC()
		close(j.doneCh)
	}
}

// requestCancelLocked flags the job canceled and aborts its running solve,
// if any. Callers hold j.mu; terminal jobs are left untouched.
func (j *Job) requestCancelLocked() {
	if j.state.Terminal() {
		return
	}
	j.canceled = true
	if j.cancel != nil {
		j.cancel()
	}
}

// newID returns a fresh job identifier: "j" + 16 hex digits.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("jobs: crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}
