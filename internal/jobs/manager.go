package jobs

import (
	"container/heap"
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"
)

// Sentinel errors.
var (
	// ErrQueueFull is returned by Submit when the pending queue is at
	// capacity.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrShuttingDown is returned by Submit after Shutdown has begun.
	ErrShuttingDown = errors.New("jobs: shutting down")
)

// Config sizes a Manager. The zero value is usable: GOMAXPROCS workers, a
// 64-deep queue, 15-minute retention, 256-event rings.
type Config struct {
	// Workers bounds concurrent solves; <= 0 means GOMAXPROCS.
	Workers int
	// QueueCap bounds the pending queue; <= 0 means 64.
	QueueCap int
	// Retention is how long terminal jobs stay fetchable; <= 0 means 15
	// minutes.
	Retention time.Duration
	// EventBuffer is the per-job event-ring capacity; <= 0 means 256.
	EventBuffer int
	// Acquire, when non-nil, gates each solve on an admission slot shared
	// with the rest of the server. It blocks until a slot is free or ctx is
	// done, and returns the release function. A nil Acquire runs solves
	// unguarded.
	Acquire func(ctx context.Context) (release func(), err error)
	// Logger receives job lifecycle logs; nil discards them.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Retention <= 0 {
		c.Retention = 15 * time.Minute
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(discard{}, nil))
	}
	return c
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Spec describes one job submission.
type Spec struct {
	// Key dedups submissions: while a job with the same Key is queued or
	// running, Submit joins it instead of starting another solve. Empty
	// disables dedup.
	Key string
	// Priority orders the queue; higher runs first.
	Priority int
	// Timeout bounds the job's total lifetime (queue wait included); 0
	// means none. The deadline is fixed at submission.
	Timeout time.Duration
	// Run is the solve; required.
	Run RunFunc
}

// Stats is a point-in-time view of the manager, shaped for metrics export.
type Stats struct {
	// Workers is the configured pool size; QueueCap the queue bound.
	Workers, QueueCap int
	// Queued and Running are current occupancy gauges.
	Queued, Running int
	// Submitted counts accepted submissions (dedup joins excluded);
	// DedupJoined counts submissions answered by an existing job.
	Submitted, DedupJoined uint64
	// Succeeded, Failed and Canceled count terminal outcomes.
	Succeeded, Failed, Canceled uint64
	// Retained is the number of jobs currently in the table (all states).
	Retained int
}

// Manager owns the job table, the pending queue and the worker pool.
type Manager struct {
	cfg Config

	mu          sync.Mutex
	cond        *sync.Cond
	queue       jobQueue
	jobs        map[string]*Job
	byKey       map[string]*Job // queued or running jobs, by dedup key
	submitSeq   uint64
	running     int
	down        bool
	submitted   uint64
	dedupJoined uint64
	succeeded   uint64
	failed      uint64
	canceled    uint64

	wg          sync.WaitGroup
	janitorStop chan struct{}
	stopOnce    sync.Once
}

// New starts a manager with cfg's worker pool and retention janitor.
// Shutdown must be called to release them.
func New(cfg Config) *Manager {
	m := &Manager{
		cfg:         cfg.withDefaults(),
		jobs:        make(map[string]*Job),
		byKey:       make(map[string]*Job),
		janitorStop: make(chan struct{}),
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < m.cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Submit enqueues a job for spec. When spec.Key matches a queued or running
// job, that job is returned with joined == true and no new solve starts.
func (m *Manager) Submit(spec Spec) (j *Job, joined bool, err error) {
	if spec.Run == nil {
		return nil, false, errors.New("jobs: Spec.Run is required")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, false, ErrShuttingDown
	}
	if spec.Key != "" {
		if prev := m.byKey[spec.Key]; prev != nil {
			m.dedupJoined++
			prev.mu.Lock()
			prev.joined++
			prev.mu.Unlock()
			return prev, true, nil
		}
	}
	if len(m.queue) >= m.cfg.QueueCap {
		return nil, false, ErrQueueFull
	}
	m.submitSeq++
	now := time.Now().UTC()
	j = &Job{
		ID:        newID(),
		Key:       spec.Key,
		Priority:  spec.Priority,
		Created:   now,
		run:       spec.Run,
		submitSeq: m.submitSeq,
		heapIdx:   -1,
		ring:      newEventRing(m.cfg.EventBuffer),
		notifyCh:  make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	if spec.Timeout > 0 {
		j.deadline = now.Add(spec.Timeout)
	}
	j.mu.Lock()
	j.setStateLocked(StateQueued, "")
	j.mu.Unlock()
	m.jobs[j.ID] = j
	if spec.Key != "" {
		m.byKey[spec.Key] = j
	}
	heap.Push(&m.queue, j)
	m.submitted++
	m.cfg.Logger.Info("job queued", "job", j.ID, "priority", j.Priority, "queue_depth", len(m.queue))
	m.cond.Signal()
	return j, false, nil
}

// Get returns the job by ID, or nil if unknown (never submitted, or swept
// by the retention janitor).
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// List snapshots every retained job, newest submission first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Snapshot, 0, len(js))
	for _, j := range js {
		out = append(out, j.Snapshot())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Created.After(out[b].Created) })
	return out
}

// Cancel requests cancellation of the job. A queued job becomes terminal
// immediately; a running job's context is canceled and the worker records
// the terminal state when the solver unwinds. The returned state is the
// job's state at the time of the call; found is false for unknown IDs.
func (m *Manager) Cancel(id string) (state State, found bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return "", false
	}
	j.mu.Lock()
	state = j.state
	switch {
	case j.state == StateQueued && j.heapIdx >= 0:
		heap.Remove(&m.queue, j.heapIdx)
		j.mu.Unlock()
		m.finishLocked(j, StateCanceled, "canceled before start", nil)
	default:
		j.requestCancelLocked()
		j.mu.Unlock()
	}
	m.cfg.Logger.Info("job cancel requested", "job", id, "state", string(state))
	return state, true
}

// Stats returns current occupancy and lifetime counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Workers:     m.cfg.Workers,
		QueueCap:    m.cfg.QueueCap,
		Queued:      len(m.queue),
		Running:     m.running,
		Submitted:   m.submitted,
		DedupJoined: m.dedupJoined,
		Succeeded:   m.succeeded,
		Failed:      m.failed,
		Canceled:    m.canceled,
		Retained:    len(m.jobs),
	}
}

// Shutdown drains the manager: new submissions are refused, queued jobs are
// canceled immediately, and running jobs get until ctx's deadline to finish
// before their contexts are force-canceled. It returns nil when every worker
// exited within the deadline, ctx.Err() otherwise (workers are still waited
// for after the forced cancel — solvers poll their context, so that wait is
// prompt).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.down = true
	for len(m.queue) > 0 {
		j := heap.Pop(&m.queue).(*Job)
		m.finishLocked(j, StateCanceled, "server shutting down", nil)
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.stopOnce.Do(func() { close(m.janitorStop) })

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	m.mu.Lock()
	for _, j := range m.jobs {
		j.mu.Lock()
		j.requestCancelLocked()
		j.mu.Unlock()
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

// finishLocked records a job's terminal state: counters, dedup index and the
// job's own transition. Callers hold m.mu but not j.mu.
func (m *Manager) finishLocked(j *Job, s State, errMsg string, result any) {
	if m.byKey[j.Key] == j {
		delete(m.byKey, j.Key)
	}
	switch s {
	case StateSucceeded:
		m.succeeded++
	case StateFailed:
		m.failed++
	case StateCanceled:
		m.canceled++
	}
	j.mu.Lock()
	j.result = result
	j.setStateLocked(s, errMsg)
	j.mu.Unlock()
	m.cfg.Logger.Info("job finished", "job", j.ID, "state", string(s), "error", errMsg)
}

// worker pops and runs jobs until shutdown drains the queue.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.down {
			m.cond.Wait()
		}
		if len(m.queue) == 0 {
			m.mu.Unlock()
			return
		}
		j := heap.Pop(&m.queue).(*Job)

		j.mu.Lock()
		if j.canceled {
			j.mu.Unlock()
			m.finishLocked(j, StateCanceled, "canceled before start", nil)
			m.mu.Unlock()
			continue
		}
		ctx := context.Background()
		var cancel context.CancelFunc
		if !j.deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, j.deadline)
		} else {
			ctx, cancel = context.WithCancel(ctx)
		}
		j.cancel = cancel
		j.started = time.Now().UTC()
		j.setStateLocked(StateRunning, "")
		j.mu.Unlock()
		m.running++
		m.mu.Unlock()

		result, err := m.execute(ctx, j)
		cancel()
		s, msg := finalState(j, err)

		m.mu.Lock()
		m.running--
		m.finishLocked(j, s, msg, result)
		m.mu.Unlock()
	}
}

// execute runs the job body behind the admission gate.
func (m *Manager) execute(ctx context.Context, j *Job) (any, error) {
	if m.cfg.Acquire != nil {
		release, err := m.cfg.Acquire(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	return j.run(ctx, j)
}

// finalState maps a solve outcome to the job's terminal state. A context
// error counts as canceled only when cancellation was actually requested;
// a deadline expiry is a failure.
func finalState(j *Job, err error) (State, string) {
	if err == nil {
		return StateSucceeded, ""
	}
	j.mu.Lock()
	canceled := j.canceled
	j.mu.Unlock()
	if canceled && !errors.Is(err, context.DeadlineExceeded) {
		return StateCanceled, "canceled"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return StateFailed, "job deadline exceeded"
	}
	return StateFailed, err.Error()
}

// janitor periodically drops terminal jobs older than the retention window.
func (m *Manager) janitor() {
	defer m.wg.Done()
	interval := m.cfg.Retention / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.sweep(time.Now().Add(-m.cfg.Retention))
		}
	}
}

// sweep removes terminal jobs finished before cutoff.
func (m *Manager) sweep(cutoff time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, j := range m.jobs {
		j.mu.Lock()
		gone := j.state.Terminal() && j.finished.Before(cutoff)
		j.mu.Unlock()
		if gone {
			delete(m.jobs, id)
		}
	}
}
