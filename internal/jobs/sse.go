package jobs

import (
	"bytes"
	"io"
	"strconv"

	"repro/internal/obs"
)

// phasePayload is the Data of "phase" events: one solve-phase span opening
// (End false) or closing (End true, with its duration). TraceID and SpanID
// carry the span's distributed-trace identity so SSE consumers can correlate
// phase events with the trace retained in the flight recorder (and with the
// X-Request-Id the job was submitted under).
type phasePayload struct {
	Phase      string  `json:"phase"`
	End        bool    `json:"end,omitempty"`
	Root       bool    `json:"root,omitempty"`
	DurationMS float64 `json:"duration_ms,omitempty"`
	TraceID    string  `json:"trace_id,omitempty"`
	SpanID     string  `json:"span_id,omitempty"`
}

// PublishSpan bridges one live trace span notification into the job's event
// stream as a "phase" event. Wire it as the obs.Trace OnSpan hook of the
// trace the solve runs under:
//
//	tr := obs.New("job " + solver)
//	tr.OnSpan = job.PublishSpan
//
// It is safe for concurrent use, as OnSpan requires.
func (j *Job) PublishSpan(ev obs.SpanEvent) {
	p := phasePayload{Phase: ev.Name, End: ev.End, Root: ev.Root}
	if ev.End {
		p.DurationMS = float64(ev.Duration.Microseconds()) / 1e3
	}
	if !ev.TraceID.IsZero() {
		p.TraceID = ev.TraceID.String()
	}
	if !ev.SpanID.IsZero() {
		p.SpanID = ev.SpanID.String()
	}
	j.publish("phase", p)
}

// WriteEvent writes ev as one Server-Sent Events frame:
//
//	id: <seq>
//	event: <type>
//	data: <json>
//	<blank line>
//
// The id line carries the sequence number a client echoes back in
// Last-Event-ID to resume; because Data was serialized at publish time, a
// replayed frame is byte-identical to its first delivery.
func WriteEvent(w io.Writer, ev Event) error {
	var b bytes.Buffer
	b.WriteString("id: ")
	b.WriteString(strconv.FormatUint(ev.Seq, 10))
	b.WriteString("\nevent: ")
	b.WriteString(ev.Type)
	b.WriteByte('\n')
	// JSON marshaling never emits raw newlines, but guard the framing
	// anyway: each line of the payload gets its own data: field per the SSE
	// grammar.
	for _, line := range bytes.Split(ev.Data, []byte{'\n'}) {
		b.WriteString("data: ")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := w.Write(b.Bytes())
	return err
}
