package jobs

import "container/heap"

// jobQueue is the pending-job priority queue: higher Priority first, then
// earlier deadline (jobs without a deadline sort after those with one), then
// submission order. It maintains each job's heapIdx so Cancel can remove a
// queued job in O(log n). Callers synchronize through the Manager's mutex.
type jobQueue []*Job

var _ heap.Interface = (*jobQueue)(nil)

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if !a.deadline.Equal(b.deadline) {
		switch {
		case a.deadline.IsZero():
			return false
		case b.deadline.IsZero():
			return true
		default:
			return a.deadline.Before(b.deadline)
		}
	}
	return a.submitSeq < b.submitSeq
}

func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIdx = i
	q[j].heapIdx = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*q = old[:n-1]
	return j
}
