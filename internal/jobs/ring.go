package jobs

// eventRing is a bounded circular buffer of a job's most recent events.
// Sequence numbers are contiguous, so the ring's contents are always the
// range [lastSeq-n+1, lastSeq] and a resume point addresses it directly.
// Callers synchronize through the owning Job's mutex.
type eventRing struct {
	buf   []Event
	start int // index of the oldest event
	n     int // number of live events
}

func newEventRing(capacity int) *eventRing {
	if capacity < 1 {
		capacity = 1
	}
	return &eventRing{buf: make([]Event, capacity)}
}

// append adds ev, evicting the oldest event when full.
func (r *eventRing) append(ev Event) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
		return
	}
	r.buf[r.start] = ev
	r.start = (r.start + 1) % len(r.buf)
}

// since returns copies of the retained events with Seq > after, oldest
// first. Events evicted before `after` are simply gone: the caller resumes
// from the oldest retained event.
func (r *eventRing) since(after uint64) []Event {
	if r.n == 0 {
		return nil
	}
	last := r.buf[(r.start+r.n-1)%len(r.buf)].Seq
	if after >= last {
		return nil
	}
	oldest := last - uint64(r.n) + 1
	skip := 0
	if after >= oldest {
		skip = int(after - oldest + 1)
	}
	out := make([]Event, 0, r.n-skip)
	for i := skip; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}
