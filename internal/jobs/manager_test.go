package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s state = %s, want %s", j.ID, j.State(), want)
}

// checkNoLeak fails the test if the goroutine count does not return to
// within slack of the starting count. Retried because exiting goroutines
// need a beat to unwind.
func checkNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Fatalf("goroutines: %d before, %d after:\n%s", before, now, buf[:runtime.Stack(buf, true)])
}

func shutdownNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestJobSucceeds(t *testing.T) {
	m := New(Config{Workers: 2})
	defer shutdownNow(t, m)
	j, joined, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		return "answer", nil
	}})
	if err != nil || joined {
		t.Fatalf("Submit: joined=%v err=%v", joined, err)
	}
	<-j.Done()
	if got := j.State(); got != StateSucceeded {
		t.Fatalf("state = %s, want succeeded", got)
	}
	res, ok := j.Result()
	if !ok || res != "answer" {
		t.Fatalf("Result = %v, %v", res, ok)
	}
	snap := j.Snapshot()
	if snap.Started == nil || snap.Finished == nil {
		t.Errorf("snapshot missing timestamps: %+v", snap)
	}
	// Stream: queued, running, succeeded.
	evs, _, terminal := j.EventsSince(0)
	if !terminal {
		t.Error("EventsSince not terminal after Done")
	}
	var states []string
	for _, ev := range evs {
		if ev.Type == "state" {
			states = append(states, string(ev.Data))
		}
	}
	want := []string{`{"state":"queued"}`, `{"state":"running"}`, `{"state":"succeeded"}`}
	if len(states) != len(want) {
		t.Fatalf("state events = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Errorf("state event %d = %s, want %s", i, states[i], want[i])
		}
	}
}

// TestCancelRunning cancels a job mid-solve and checks the worker records a
// terminal canceled state and no goroutine leaks.
func TestCancelRunning(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(Config{Workers: 1})
	started := make(chan struct{})
	j, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	state, found := m.Cancel(j.ID)
	if !found || state != StateRunning {
		t.Fatalf("Cancel = %s, %v; want running, true", state, found)
	}
	waitState(t, j, StateCanceled)
	if s := j.Snapshot(); s.Error != "canceled" {
		t.Errorf("error = %q, want canceled", s.Error)
	}
	shutdownNow(t, m)
	checkNoLeak(t, before)
}

// TestCancelQueued cancels a job that never started: terminal immediately,
// and the worker never runs it.
func TestCancelQueued(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdownNow(t, m)
	gate := make(chan struct{})
	blocker, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		<-gate
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	ran := false
	queued, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		ran = true
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if state, found := m.Cancel(queued.ID); !found || state != StateQueued {
		t.Fatalf("Cancel = %s, %v", state, found)
	}
	if got := queued.State(); got != StateCanceled {
		t.Fatalf("state = %s, want canceled", got)
	}
	close(gate)
	<-blocker.Done()
	if ran {
		t.Error("canceled queued job still ran")
	}
	if st := m.Stats(); st.Canceled != 1 || st.Succeeded != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestDeadlineExpiry gives the job a tiny timeout: the solve's context
// expires and the job fails with a deadline message.
func TestDeadlineExpiry(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdownNow(t, m)
	j, _, err := m.Submit(Spec{Timeout: 20 * time.Millisecond, Run: func(ctx context.Context, j *Job) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if s := j.Snapshot(); !strings.Contains(s.Error, "deadline") {
		t.Errorf("error = %q, want deadline message", s.Error)
	}
}

// TestDedupJoin submits the same key concurrently and checks exactly one
// solve runs, with every submission landing on the same job.
func TestDedupJoin(t *testing.T) {
	m := New(Config{Workers: 2})
	defer shutdownNow(t, m)
	var solves int32
	var mu sync.Mutex
	gate := make(chan struct{})
	run := func(ctx context.Context, j *Job) (any, error) {
		mu.Lock()
		solves++
		mu.Unlock()
		<-gate
		return "shared", nil
	}
	const n = 8
	jobsCh := make(chan *Job, n)
	joinedCh := make(chan bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, joined, err := m.Submit(Spec{Key: "same", Run: run})
			if err != nil {
				t.Error(err)
				return
			}
			jobsCh <- j
			joinedCh <- joined
		}()
	}
	wg.Wait()
	close(jobsCh)
	close(joinedCh)
	ids := map[string]bool{}
	for j := range jobsCh {
		ids[j.ID] = true
	}
	joins := 0
	for joined := range joinedCh {
		if joined {
			joins++
		}
	}
	if len(ids) != 1 {
		t.Fatalf("got %d distinct jobs, want 1", len(ids))
	}
	if joins != n-1 {
		t.Errorf("joined = %d, want %d", joins, n-1)
	}
	close(gate)
	j := m.Get(firstKey(ids))
	<-j.Done()
	mu.Lock()
	defer mu.Unlock()
	if solves != 1 {
		t.Errorf("solves = %d, want 1", solves)
	}
	if st := m.Stats(); st.DedupJoined != n-1 || st.Submitted != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Terminal jobs no longer dedup: a resubmission starts a fresh solve.
	j2, joined, err := m.Submit(Spec{Key: "same", Run: func(ctx context.Context, j *Job) (any, error) { return nil, nil }})
	if err != nil || joined {
		t.Fatalf("resubmit after terminal: joined=%v err=%v", joined, err)
	}
	<-j2.Done()
}

func firstKey(m map[string]bool) string {
	for k := range m {
		return k
	}
	return ""
}

// TestPriorityAndDeadlineOrder floods a one-worker pool and checks the
// execution order: priority first, then earlier deadline, then submission.
func TestPriorityAndDeadlineOrder(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdownNow(t, m)
	gate := make(chan struct{})
	blocker, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		<-gate
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)

	var mu sync.Mutex
	var order []string
	mk := func(name string) RunFunc {
		return func(ctx context.Context, j *Job) (any, error) {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil, nil
		}
	}
	// Submitted in scrambled order; expected execution order:
	// high priority first; equal priority by earlier deadline;
	// no-deadline after deadlines; ties by submission.
	var last *Job
	for _, s := range []struct {
		name     string
		priority int
		timeout  time.Duration
	}{
		{"low-late", 0, time.Hour},
		{"low-none", 0, 0},
		{"high", 5, 0},
		{"low-soon", 0, time.Minute},
	} {
		j, _, err := m.Submit(Spec{Priority: s.priority, Timeout: s.timeout, Run: mk(s.name)})
		if err != nil {
			t.Fatal(err)
		}
		last = j
	}
	close(gate)
	<-last.Done()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(order)
		mu.Unlock()
		if n == 4 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high", "low-soon", "low-late", "low-none"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order = %v, want %v", order, want)
	}
}

// TestQueueFull checks Submit refuses when the queue is at capacity, and
// that capacity frees as jobs drain.
func TestQueueFull(t *testing.T) {
	m := New(Config{Workers: 1, QueueCap: 2})
	defer shutdownNow(t, m)
	gate := make(chan struct{})
	blocker, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		<-gate
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	quick := func(ctx context.Context, j *Job) (any, error) { return nil, nil }
	for i := 0; i < 2; i++ {
		if _, _, err := m.Submit(Spec{Run: quick}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	if _, _, err := m.Submit(Spec{Run: quick}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow err = %v, want ErrQueueFull", err)
	}
	close(gate)
}

// TestShutdownCancelsQueuedAndRefusesNew checks the drain contract: queued
// jobs become terminal canceled, running jobs are waited for, submissions
// fail, and no goroutines remain.
func TestShutdownCancelsQueuedAndRefusesNew(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(Config{Workers: 1})
	gate := make(chan struct{})
	running, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		<-gate
		return "done", nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	waitState(t, queued, StateCanceled)
	if _, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) { return nil, nil }}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit during drain err = %v, want ErrShuttingDown", err)
	}
	close(gate) // let the running job finish inside the drain window
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := running.State(); got != StateSucceeded {
		t.Errorf("running job state = %s, want succeeded (finished within drain)", got)
	}
	checkNoLeak(t, before)
}

// TestShutdownForceCancelsAfterDeadline checks a job that ignores the drain
// window is force-canceled once the shutdown context expires.
func TestShutdownForceCancelsAfterDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New(Config{Workers: 1})
	j, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		<-ctx.Done() // only stops when force-canceled
		return nil, ctx.Err()
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	if got := j.State(); got != StateCanceled {
		t.Errorf("state = %s, want canceled", got)
	}
	checkNoLeak(t, before)
}

// TestRetentionSweep checks the janitor drops only terminal jobs older than
// the cutoff.
func TestRetentionSweep(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdownNow(t, m)
	j, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	m.sweep(time.Now().Add(-time.Hour)) // cutoff in the past: keep
	if m.Get(j.ID) == nil {
		t.Fatal("fresh terminal job swept")
	}
	m.sweep(time.Now().Add(time.Hour)) // cutoff in the future: drop
	if m.Get(j.ID) != nil {
		t.Fatal("terminal job survived sweep")
	}
	if _, found := m.Cancel(j.ID); found {
		t.Error("Cancel found a swept job")
	}
}

// TestEventsSinceResume checks replay: events after a resume point are the
// same records, byte for byte, that a first read returned.
func TestEventsSinceResume(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdownNow(t, m)
	j, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		j.publish("phase", phasePayload{Phase: "alpha"})
		j.publish("phase", phasePayload{Phase: "alpha", End: true, DurationMS: 1.5})
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	all, _, _ := j.EventsSince(0)
	if len(all) != 5 { // queued, running, 2 phases, succeeded
		t.Fatalf("got %d events: %+v", len(all), all)
	}
	for i, ev := range all {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d Seq = %d", i, ev.Seq)
		}
	}
	resumed, _, terminal := j.EventsSince(2)
	if !terminal || len(resumed) != 3 {
		t.Fatalf("resume: terminal=%v n=%d", terminal, len(resumed))
	}
	for i, ev := range resumed {
		orig := all[i+2]
		if ev.Seq != orig.Seq || ev.Type != orig.Type || string(ev.Data) != string(orig.Data) {
			t.Errorf("resumed event %d = %+v, want %+v", i, ev, orig)
		}
	}
}

// TestEventsNotify checks the notification channel closes on publish so a
// subscriber blocked on it wakes for the new event.
func TestEventsNotify(t *testing.T) {
	m := New(Config{Workers: 1})
	defer shutdownNow(t, m)
	release := make(chan struct{})
	j, _, err := m.Submit(Spec{Run: func(ctx context.Context, j *Job) (any, error) {
		<-release
		return nil, nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	evs, notify, terminal := j.EventsSince(0)
	if terminal || len(evs) != 2 {
		t.Fatalf("initial read: terminal=%v n=%d", terminal, len(evs))
	}
	close(release)
	select {
	case <-notify:
	case <-time.After(5 * time.Second):
		t.Fatal("no notification for terminal event")
	}
	more, _, terminal := j.EventsSince(evs[len(evs)-1].Seq)
	if !terminal || len(more) != 1 {
		t.Fatalf("after notify: terminal=%v n=%d", terminal, len(more))
	}
}
