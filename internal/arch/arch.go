// Package arch models the paper's target: a homogeneous shared-memory
// multiprocessor (§1). All processors have the same speed and the
// interconnection network (crossbar, shared bus, or multistage network) has
// uniform latency, so w(l_i) is the same for every link. That uniformity is
// what makes the mapping M of a partition onto the architecture trivial
// (§3): component i simply goes to processor i.
package arch

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
)

// Sentinel errors.
var (
	// ErrBadMachine is returned for non-positive machine parameters.
	ErrBadMachine = errors.New("arch: bad machine description")
	// ErrTooFewProcessors is returned when a partition has more components
	// than the machine has processors.
	ErrTooFewProcessors = errors.New("arch: more components than processors")
)

// Machine describes a homogeneous shared-memory multiprocessor.
type Machine struct {
	// Processors is the number of identical processors.
	Processors int
	// Speed is each processor's processing rate (task weight units per unit
	// time).
	Speed float64
	// BusBandwidth is the shared interconnect's transfer rate (edge weight
	// units per unit time). The network is symmetric and uniform, the
	// defining property of the architecture class (§1).
	BusBandwidth float64
}

// Validate checks machine parameters.
func (m *Machine) Validate() error {
	if m.Processors <= 0 {
		return fmt.Errorf("processors = %d: %w", m.Processors, ErrBadMachine)
	}
	if !(m.Speed > 0) || math.IsInf(m.Speed, 0) || math.IsNaN(m.Speed) {
		return fmt.Errorf("speed = %v: %w", m.Speed, ErrBadMachine)
	}
	if !(m.BusBandwidth > 0) || math.IsInf(m.BusBandwidth, 0) || math.IsNaN(m.BusBandwidth) {
		return fmt.Errorf("bus bandwidth = %v: %w", m.BusBandwidth, ErrBadMachine)
	}
	return nil
}

// Mapping assigns partition components to processors. On a shared-memory
// machine the identity assignment is optimal (§3: "renders a straightforward
// mapping of the optimally partitioned graph onto the available processors").
type Mapping struct {
	// Processor[c] is the processor that runs component c.
	Processor []int
}

// MapComponents produces the trivial identity mapping, failing if the
// machine is too small.
func MapComponents(m *Machine, numComponents int) (*Mapping, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if numComponents > m.Processors {
		return nil, fmt.Errorf("%d components, %d processors: %w",
			numComponents, m.Processors, ErrTooFewProcessors)
	}
	mp := &Mapping{Processor: make([]int, numComponents)}
	for c := range mp.Processor {
		mp.Processor[c] = c
	}
	return mp, nil
}

// Metrics summarizes the static quality of a partition on a machine.
type Metrics struct {
	// ComputeMakespan is the heaviest component's compute time (load/speed):
	// the per-iteration lower bound on execution time, ignoring contention.
	ComputeMakespan float64
	// TotalTraffic is the summed weight of cut edges: the bandwidth demand
	// the partition places on the interconnect per iteration (the quantity
	// bandwidth minimization minimizes).
	TotalTraffic float64
	// BusTime is TotalTraffic / BusBandwidth: serialized transfer time per
	// iteration on the shared bus.
	BusTime float64
	// MaxProcessorTraffic is the largest per-component incident cut weight:
	// the single-processor network demand that bottleneck minimization
	// relates to.
	MaxProcessorTraffic float64
	// Utilization is mean component load divided by max component load, in
	// (0, 1]; 1 is perfect balance.
	Utilization float64
	// Components is the number of processors actually used.
	Components int
}

// EvaluatePath computes Metrics for a path partition.
func EvaluatePath(m *Machine, p *graph.Path, cut []int) (*Metrics, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ws, err := p.ComponentWeights(cut)
	if err != nil {
		return nil, err
	}
	if len(ws) > m.Processors {
		return nil, fmt.Errorf("%d components, %d processors: %w", len(ws), m.Processors, ErrTooFewProcessors)
	}
	// Component of vertex v: count cuts before v.
	comp := make([]int, p.Len())
	ci := 0
	cutSet := make(map[int]bool, len(cut))
	for _, e := range cut {
		cutSet[e] = true
	}
	for v := 0; v < p.Len(); v++ {
		comp[v] = ci
		if v < p.NumEdges() && cutSet[v] {
			ci++
		}
	}
	perProc := make([]float64, len(ws))
	var total float64
	for _, e := range cut {
		w := p.EdgeW[e]
		total += w
		perProc[comp[e]] += w
		perProc[comp[e+1]] += w
	}
	return buildMetrics(m, ws, total, perProc), nil
}

// EvaluateTree computes Metrics for a tree partition.
func EvaluateTree(m *Machine, t *graph.Tree, cut []int) (*Metrics, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	comps, err := t.Components(cut)
	if err != nil {
		return nil, err
	}
	if len(comps) > m.Processors {
		return nil, fmt.Errorf("%d components, %d processors: %w", len(comps), m.Processors, ErrTooFewProcessors)
	}
	comp := make([]int, t.Len())
	ws := make([]float64, len(comps))
	for ci, vs := range comps {
		for _, v := range vs {
			comp[v] = ci
			ws[ci] += t.NodeW[v]
		}
	}
	perProc := make([]float64, len(comps))
	var total float64
	for _, e := range cut {
		edge := t.Edges[e]
		total += edge.W
		perProc[comp[edge.U]] += edge.W
		perProc[comp[edge.V]] += edge.W
	}
	return buildMetrics(m, ws, total, perProc), nil
}

func buildMetrics(m *Machine, loads []float64, totalTraffic float64, perProc []float64) *Metrics {
	maxLoad, sumLoad := 0.0, 0.0
	for _, w := range loads {
		sumLoad += w
		if w > maxLoad {
			maxLoad = w
		}
	}
	maxTraffic := 0.0
	for _, w := range perProc {
		if w > maxTraffic {
			maxTraffic = w
		}
	}
	util := 1.0
	if maxLoad > 0 {
		util = sumLoad / float64(len(loads)) / maxLoad
	}
	return &Metrics{
		ComputeMakespan:     maxLoad / m.Speed,
		TotalTraffic:        totalTraffic,
		BusTime:             totalTraffic / m.BusBandwidth,
		MaxProcessorTraffic: maxTraffic,
		Utilization:         util,
		Components:          len(loads),
	}
}
