package arch

import (
	"fmt"
	"sort"
)

// The paper's general formulation (§1) allows heterogeneous processors —
// w(p_i) is the processing speed of processor p_i — even though its
// algorithms target the homogeneous shared-memory case where the mapping is
// trivial. This file supplies the natural mapping for the heterogeneous
// case: heaviest component to fastest processor, which minimizes the
// makespan over all one-to-one assignments (rearrangement: max_i load_i /
// speed_i is minimized by pairing sorted sequences).

// HeteroMachine is a shared-memory multiprocessor with per-processor speeds
// but a still-uniform interconnect (the defining shared-memory property).
type HeteroMachine struct {
	// Speeds[i] is processor i's processing rate; all must be positive.
	Speeds []float64
	// BusBandwidth is the shared interconnect's transfer rate.
	BusBandwidth float64
}

// Validate checks machine parameters.
func (m *HeteroMachine) Validate() error {
	if len(m.Speeds) == 0 {
		return fmt.Errorf("no processors: %w", ErrBadMachine)
	}
	for i, s := range m.Speeds {
		if !(s > 0) || s != s {
			return fmt.Errorf("speed[%d] = %v: %w", i, s, ErrBadMachine)
		}
	}
	if !(m.BusBandwidth > 0) {
		return fmt.Errorf("bus bandwidth = %v: %w", m.BusBandwidth, ErrBadMachine)
	}
	return nil
}

// MapHeterogeneous assigns component loads to processors, heaviest load to
// fastest processor, and returns the mapping plus the resulting makespan
// max_i load_i / speed(assigned_i). It fails when there are more components
// than processors.
func MapHeterogeneous(m *HeteroMachine, loads []float64) (*Mapping, float64, error) {
	if err := m.Validate(); err != nil {
		return nil, 0, err
	}
	if len(loads) > len(m.Speeds) {
		return nil, 0, fmt.Errorf("%d components, %d processors: %w",
			len(loads), len(m.Speeds), ErrTooFewProcessors)
	}
	byLoad := make([]int, len(loads))
	for i := range byLoad {
		byLoad[i] = i
	}
	sort.SliceStable(byLoad, func(a, b int) bool { return loads[byLoad[a]] > loads[byLoad[b]] })
	bySpeed := make([]int, len(m.Speeds))
	for i := range bySpeed {
		bySpeed[i] = i
	}
	sort.SliceStable(bySpeed, func(a, b int) bool { return m.Speeds[bySpeed[a]] > m.Speeds[bySpeed[b]] })
	mp := &Mapping{Processor: make([]int, len(loads))}
	var makespan float64
	for rank, comp := range byLoad {
		proc := bySpeed[rank]
		mp.Processor[comp] = proc
		if t := loads[comp] / m.Speeds[proc]; t > makespan {
			makespan = t
		}
	}
	return mp, makespan, nil
}
