package arch

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func TestHeteroMachineValidate(t *testing.T) {
	good := &HeteroMachine{Speeds: []float64{1, 2}, BusBandwidth: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid machine rejected: %v", err)
	}
	bad := []HeteroMachine{
		{Speeds: nil, BusBandwidth: 1},
		{Speeds: []float64{1, 0}, BusBandwidth: 1},
		{Speeds: []float64{1, math.NaN()}, BusBandwidth: 1},
		{Speeds: []float64{1}, BusBandwidth: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); !errors.Is(err, ErrBadMachine) {
			t.Errorf("case %d: error = %v, want ErrBadMachine", i, err)
		}
	}
}

func TestMapHeterogeneousHandCase(t *testing.T) {
	m := &HeteroMachine{Speeds: []float64{1, 4, 2}, BusBandwidth: 1}
	loads := []float64{8, 2, 4}
	mp, makespan, err := MapHeterogeneous(m, loads)
	if err != nil {
		t.Fatalf("MapHeterogeneous: %v", err)
	}
	// Heaviest (8) → fastest (speed 4, proc 1); 4 → speed 2 (proc 2);
	// 2 → speed 1 (proc 0). Makespan = max(8/4, 4/2, 2/1) = 2.
	if mp.Processor[0] != 1 || mp.Processor[2] != 2 || mp.Processor[1] != 0 {
		t.Errorf("mapping = %v", mp.Processor)
	}
	if makespan != 2 {
		t.Errorf("makespan = %v, want 2", makespan)
	}
}

func TestMapHeterogeneousTooFew(t *testing.T) {
	m := &HeteroMachine{Speeds: []float64{1}, BusBandwidth: 1}
	if _, _, err := MapHeterogeneous(m, []float64{1, 2}); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("error = %v, want ErrTooFewProcessors", err)
	}
}

// Property: sorted pairing is optimal — no permutation of the assignment
// achieves a smaller makespan (verified exhaustively for small sizes).
func TestMapHeterogeneousOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(6)
		m := &HeteroMachine{Speeds: make([]float64, n), BusBandwidth: 1}
		loads := make([]float64, n)
		for i := 0; i < n; i++ {
			m.Speeds[i] = r.Uniform(1, 10)
			loads[i] = r.Uniform(1, 100)
		}
		_, got, err := MapHeterogeneous(m, loads)
		if err != nil {
			return false
		}
		best := math.Inf(1)
		perm := make([]int, n)
		var rec func(pos int, used uint)
		rec = func(pos int, used uint) {
			if pos == n {
				var mk float64
				for c, p := range perm {
					if t := loads[c] / m.Speeds[p]; t > mk {
						mk = t
					}
				}
				if mk < best {
					best = mk
				}
				return
			}
			for p := 0; p < n; p++ {
				if used&(1<<p) == 0 {
					perm[pos] = p
					rec(pos+1, used|1<<p)
				}
			}
		}
		rec(0, 0)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
