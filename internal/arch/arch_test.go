package arch

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
)

func validMachine() *Machine {
	return &Machine{Processors: 8, Speed: 100, BusBandwidth: 50}
}

func TestMachineValidate(t *testing.T) {
	tests := []struct {
		name string
		m    Machine
		ok   bool
	}{
		{"valid", *validMachine(), true},
		{"zero procs", Machine{Processors: 0, Speed: 1, BusBandwidth: 1}, false},
		{"zero speed", Machine{Processors: 1, Speed: 0, BusBandwidth: 1}, false},
		{"nan speed", Machine{Processors: 1, Speed: math.NaN(), BusBandwidth: 1}, false},
		{"inf bandwidth", Machine{Processors: 1, Speed: 1, BusBandwidth: math.Inf(1)}, false},
		{"negative bandwidth", Machine{Processors: 1, Speed: 1, BusBandwidth: -2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.m.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrBadMachine) {
				t.Errorf("error should wrap ErrBadMachine: %v", err)
			}
		})
	}
}

func TestMapComponents(t *testing.T) {
	m := validMachine()
	mp, err := MapComponents(m, 5)
	if err != nil {
		t.Fatalf("MapComponents: %v", err)
	}
	for c, p := range mp.Processor {
		if p != c {
			t.Errorf("Processor[%d] = %d, want identity", c, p)
		}
	}
	if _, err := MapComponents(m, 9); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("error = %v, want ErrTooFewProcessors", err)
	}
}

func TestEvaluatePath(t *testing.T) {
	m := validMachine()
	p, _ := graph.NewPath([]float64{100, 200, 300}, []float64{10, 20})
	got, err := EvaluatePath(m, p, []int{1})
	if err != nil {
		t.Fatalf("EvaluatePath: %v", err)
	}
	// Components: {100,200}=300 and {300}; cut edge 1 weight 20.
	if got.ComputeMakespan != 3 { // 300/100
		t.Errorf("ComputeMakespan = %v, want 3", got.ComputeMakespan)
	}
	if got.TotalTraffic != 20 {
		t.Errorf("TotalTraffic = %v, want 20", got.TotalTraffic)
	}
	if got.BusTime != 0.4 { // 20/50
		t.Errorf("BusTime = %v, want 0.4", got.BusTime)
	}
	if got.MaxProcessorTraffic != 20 {
		t.Errorf("MaxProcessorTraffic = %v, want 20", got.MaxProcessorTraffic)
	}
	if got.Components != 2 {
		t.Errorf("Components = %d, want 2", got.Components)
	}
	if math.Abs(got.Utilization-1.0) > 1e-9 {
		t.Errorf("Utilization = %v, want 1 (both components 300)", got.Utilization)
	}
}

func TestEvaluatePathPerProcessorTraffic(t *testing.T) {
	m := validMachine()
	// Cut both edges: middle component carries both edge weights.
	p, _ := graph.NewPath([]float64{1, 1, 1}, []float64{10, 30})
	got, err := EvaluatePath(m, p, []int{0, 1})
	if err != nil {
		t.Fatalf("EvaluatePath: %v", err)
	}
	if got.MaxProcessorTraffic != 40 {
		t.Errorf("MaxProcessorTraffic = %v, want 40 (middle sees both)", got.MaxProcessorTraffic)
	}
	if got.TotalTraffic != 40 {
		t.Errorf("TotalTraffic = %v, want 40", got.TotalTraffic)
	}
}

func TestEvaluateTree(t *testing.T) {
	m := validMachine()
	tr, _ := graph.NewTree([]float64{50, 100, 150, 200}, []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7}, {U: 1, V: 3, W: 9},
	})
	got, err := EvaluateTree(m, tr, []int{2})
	if err != nil {
		t.Fatalf("EvaluateTree: %v", err)
	}
	// Components: {0,1,2}=300 and {3}=200; traffic 9.
	if got.ComputeMakespan != 3 || got.TotalTraffic != 9 || got.Components != 2 {
		t.Errorf("metrics = %+v", got)
	}
	wantUtil := (300.0 + 200.0) / 2 / 300.0
	if math.Abs(got.Utilization-wantUtil) > 1e-9 {
		t.Errorf("Utilization = %v, want %v", got.Utilization, wantUtil)
	}
}

func TestEvaluateTooManyComponents(t *testing.T) {
	m := &Machine{Processors: 1, Speed: 1, BusBandwidth: 1}
	p, _ := graph.NewPath([]float64{1, 1}, []float64{1})
	if _, err := EvaluatePath(m, p, []int{0}); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("error = %v, want ErrTooFewProcessors", err)
	}
	tr := p.AsTree()
	if _, err := EvaluateTree(m, tr, []int{0}); !errors.Is(err, ErrTooFewProcessors) {
		t.Errorf("tree error = %v, want ErrTooFewProcessors", err)
	}
}

func TestEvaluateEmptyCut(t *testing.T) {
	m := validMachine()
	p, _ := graph.NewPath([]float64{10, 20}, []float64{5})
	got, err := EvaluatePath(m, p, nil)
	if err != nil {
		t.Fatalf("EvaluatePath: %v", err)
	}
	if got.TotalTraffic != 0 || got.BusTime != 0 || got.Components != 1 {
		t.Errorf("metrics = %+v", got)
	}
}

func TestPathAndTreeMetricsAgree(t *testing.T) {
	m := validMachine()
	p, _ := graph.NewPath([]float64{10, 20, 30, 40}, []float64{1, 2, 3})
	cut := []int{0, 2}
	a, err := EvaluatePath(m, p, cut)
	if err != nil {
		t.Fatalf("EvaluatePath: %v", err)
	}
	b, err := EvaluateTree(m, p.AsTree(), cut)
	if err != nil {
		t.Fatalf("EvaluateTree: %v", err)
	}
	if *a != *b {
		t.Errorf("path metrics %+v != tree metrics %+v", a, b)
	}
}
