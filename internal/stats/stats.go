// Package stats provides the small statistical and tabular-output helpers
// used by the experiment harness: summary statistics, histograms, aligned
// text tables, and CSV output.
package stats

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ErrEmpty is returned by statistics that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}

// Std returns the population standard deviation.
func Std(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs))), nil
}

// MinMax returns the smallest and largest sample.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	return minV, maxV, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by nearest-rank.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("percentile %v out of [0,100]: %w", p, ErrEmpty)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1], nil
}

// Histogram counts samples into equal-width buckets over [lo, hi].
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Under   int
	Over    int
	Samples int
}

// NewHistogram creates a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(hi > lo) || buckets <= 0 {
		return nil, fmt.Errorf("range [%v,%v] buckets %d: %w", lo, hi, buckets, ErrEmpty)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}, nil
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Samples++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Table renders aligned columns of strings.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes headers and rows as comma-separated values; cells
// containing commas or quotes are quoted.
func WriteCSV(w io.Writer, headers []string, rows [][]string) error {
	var b strings.Builder
	writeLine := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeLine(headers)
	for _, r := range rows {
		writeLine(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
