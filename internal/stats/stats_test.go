package stats

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v; want 5", m, err)
	}
	s, err := Std(xs)
	if err != nil || s != 2 {
		t.Errorf("Std = %v, %v; want 2", s, err)
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty mean: %v", err)
	}
	if _, err := Std(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty std: %v", err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 0})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v %v %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tt := range []struct{ p, want float64 }{{50, 5}, {90, 9}, {100, 10}, {0, 1}} {
		got, err := Percentile(xs, tt.p)
		if err != nil || got != tt.want {
			t.Errorf("Percentile(%v) = %v, %v; want %v", tt.p, got, err, tt.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("out of range percentile accepted")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: %v", err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatalf("NewHistogram: %v", err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 || h.Samples != 8 {
		t.Errorf("under/over/samples = %d/%d/%d", h.Under, h.Over, h.Samples)
	}
	wantCounts := []int{2, 1, 1, 0, 1}
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Errorf("bucket %d = %d, want %d (all %v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("degenerate range accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("name", "n", "value")
	tab.AddRow("alpha", 10, 3.14159)
	tab.AddRow("beta-long-name", 2000, 1e6)
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/separator malformed:\n%s", out)
	}
	if !strings.Contains(lines[2], "3.142") {
		t.Errorf("float formatting wrong: %s", lines[2])
	}
	if !strings.Contains(lines[3], "1000000") {
		t.Errorf("integral float formatting wrong: %s", lines[3])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf,
		[]string{"a", "b"},
		[][]string{{"1", "hello, world"}, {"2", `say "hi"`}})
	if err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	want := "a,b\n1,\"hello, world\"\n2,\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(2) != "2" || formatFloat(2.5) != "2.500" || formatFloat(1234.56) != "1234.6" {
		t.Errorf("formatFloat: %q %q %q", formatFloat(2), formatFloat(2.5), formatFloat(1234.56))
	}
	if formatFloat(math.Inf(1)) == "" {
		t.Error("inf should format to something")
	}
}
