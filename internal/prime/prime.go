// Package prime computes the prime critical subpaths of a linear task graph
// and the non-redundant edge compression that the paper's bandwidth
// minimization algorithm (§2.3) is built on.
//
// A critical subpath is a contiguous run of tasks whose total vertex weight
// exceeds the bound K; a feasible cut must contain at least one edge of every
// critical subpath. A critical subpath that contains no other critical
// subpath is prime (the paper's minimal subpaths); only the prime ones
// constrain the solution, and there are at most n−1 of them. Two edges that
// belong to exactly the same set of prime subpaths are interchangeable except
// for weight, so only the lightest of each such run — the non-redundant
// edges — can ever appear in an optimal cut (§2.3: "a list of non-redundant
// edges may be prepared in O(n) time", with at most 2p−1 of them).
package prime

import (
	"errors"
	"fmt"
)

// ErrVertexTooHeavy is returned when a single task exceeds the bound K, in
// which case no edge cut can make every component feasible (the paper assumes
// K > max α_i).
var ErrVertexTooHeavy = errors.New("prime: single vertex weight exceeds K")

// Interval is a prime critical subpath expressed both in vertex and edge
// terms. For a subpath spanning vertices [FirstVertex, LastVertex], the edge
// set is the contiguous edge range [A, B] with A = FirstVertex and
// B = LastVertex−1.
type Interval struct {
	A, B                    int // inclusive edge index range
	FirstVertex, LastVertex int // inclusive vertex range
}

// Find returns the prime critical subpaths of the path with the given vertex
// weights and bound K, in increasing order of both endpoints. It runs in
// O(n) time (two pointers). It returns ErrVertexTooHeavy if some single
// vertex already exceeds K.
func Find(nodeW []float64, k float64) ([]Interval, error) {
	return findInto(nil, nodeW, k)
}

// findInto is Find appending into dst[:0], reusing its capacity.
func findInto(dst []Interval, nodeW []float64, k float64) ([]Interval, error) {
	// First pass: count the prime subpaths so the result is allocated
	// exactly once (the count is the number of distinct minimal right ends).
	count, err := countPrime(nodeW, k)
	if err != nil {
		return nil, err
	}
	if count == 0 {
		return dst[:0], nil
	}
	out := dst[:0]
	if cap(out) < count {
		out = make([]Interval, 0, count)
	}
	n := len(nodeW)
	// Two pointers: for each left vertex l, rv is the minimal exclusive right
	// bound with weight(l .. rv-1) > K.
	rv := 0
	var sum float64
	for l := 0; l < n; l++ {
		if rv < l {
			rv, sum = l, 0
		}
		for rv < n && sum <= k {
			sum += nodeW[rv]
			rv++
		}
		if sum <= k {
			// The whole suffix from l fits; later suffixes are subsets.
			break
		}
		// Window l .. rv-1 is critical and minimal in its right end.
		iv := Interval{A: l, B: rv - 2, FirstVertex: l, LastVertex: rv - 1}
		// Keep only prime (minimal) subpaths: if the previously recorded
		// subpath has the same right end, it strictly contains this one and
		// is dominated.
		if len(out) > 0 && out[len(out)-1].LastVertex == iv.LastVertex {
			out[len(out)-1] = iv
		} else {
			out = append(out, iv)
		}
		sum -= nodeW[l]
	}
	return out, nil
}

// countPrime runs the Find sweep without materializing intervals, returning
// the number of prime subpaths (distinct minimal right ends) or
// ErrVertexTooHeavy.
func countPrime(nodeW []float64, k float64) (int, error) {
	n := len(nodeW)
	rv := 0
	var sum float64
	count := 0
	lastEnd := -1
	for l := 0; l < n; l++ {
		if rv < l {
			rv, sum = l, 0
		}
		for rv < n && sum <= k {
			sum += nodeW[rv]
			rv++
		}
		if sum <= k {
			break
		}
		if rv-1 == l {
			return 0, fmt.Errorf("vertex %d weight %v > K=%v: %w", l, nodeW[l], k, ErrVertexTooHeavy)
		}
		if rv-1 != lastEnd {
			count++
			lastEnd = rv - 1
		}
		sum -= nodeW[l]
	}
	return count, nil
}

// Instance is the compressed bandwidth-minimization instance: the
// non-redundant edges and the prime subpaths re-indexed over them.
type Instance struct {
	// Beta[i] is the weight of the i-th non-redundant edge.
	Beta []float64
	// Orig[i] is the original path edge index of the i-th non-redundant edge.
	Orig []int
	// A[j], B[j] are interval j's inclusive endpoints over compressed edge
	// indices; both strictly increasing in j.
	A, B []int
	// First[i], Last[i] are the first and last interval containing compressed
	// edge i (the paper's c_i and d_i); every compressed edge belongs to the
	// contiguous interval range [First[i], Last[i]].
	First, Last []int
}

// NumIntervals returns p, the number of prime subpaths.
func (in *Instance) NumIntervals() int { return len(in.A) }

// NumEdges returns r, the number of non-redundant edges.
func (in *Instance) NumEdges() int { return len(in.Beta) }

// MeanCoverage returns the paper's q = Σ q_i / r, the mean number of prime
// subpaths a non-redundant edge belongs to, or 0 when there are no edges.
func (in *Instance) MeanCoverage() float64 {
	if len(in.Beta) == 0 {
		return 0
	}
	var sum float64
	for i := range in.Beta {
		sum += float64(in.Last[i] - in.First[i] + 1)
	}
	return sum / float64(len(in.Beta))
}

// MaxCoverage returns max_i q_i, or 0 when there are no edges.
func (in *Instance) MaxCoverage() int {
	m := 0
	for i := range in.Beta {
		if c := in.Last[i] - in.First[i] + 1; c > m {
			m = c
		}
	}
	return m
}

// Compress builds the compressed instance from the original edge weights and
// the prime subpaths returned by Find. Edges covered by no prime subpath are
// dropped; among consecutive edges covered by exactly the same prime
// subpaths, only a lightest one is kept. Runs in O(n + p) time.
func Compress(edgeW []float64, ivs []Interval) *Instance {
	return compressInto(&Instance{}, edgeW, ivs)
}

// compressInto is Compress writing into inst, reusing its arrays' capacity.
func compressInto(inst *Instance, edgeW []float64, ivs []Interval) *Instance {
	p := len(ivs)
	inst.A = growInts(inst.A, p)
	inst.B = growInts(inst.B, p)
	if p == 0 {
		inst.Beta, inst.Orig = inst.Beta[:0], inst.Orig[:0]
		inst.First, inst.Last = inst.First[:0], inst.Last[:0]
		return inst
	}
	// At most min(n-1, 2p-1) non-redundant edges survive (§2.3); allocate
	// once.
	capHint := 2*p - 1
	if m := len(edgeW); capHint > m {
		capHint = m
	}
	inst.Beta = growFloats(inst.Beta, capHint)[:0]
	inst.Orig = growInts(inst.Orig, capHint)[:0]
	inst.First = growInts(inst.First, capHint)[:0]
	inst.Last = growInts(inst.Last, capHint)[:0]
	// For each original edge e, membership is the contiguous interval range
	// [c(e), d(e)] with c = min{j : ivs[j].B >= e} and d = max{j : ivs[j].A <= e}.
	cPtr, dPtr := 0, -1
	prevC, prevD := -1, -1
	for e := 0; e <= ivs[p-1].B; e++ {
		for cPtr < p && ivs[cPtr].B < e {
			cPtr++
		}
		for dPtr+1 < p && ivs[dPtr+1].A <= e {
			dPtr++
		}
		c, d := cPtr, dPtr
		if c > d {
			continue // edge covered by no prime subpath
		}
		if c == prevC && d == prevD {
			// Same membership run: keep the lighter edge.
			last := len(inst.Beta) - 1
			if edgeW[e] < inst.Beta[last] {
				inst.Beta[last] = edgeW[e]
				inst.Orig[last] = e
			}
			continue
		}
		prevC, prevD = c, d
		inst.Beta = append(inst.Beta, edgeW[e])
		inst.Orig = append(inst.Orig, e)
		inst.First = append(inst.First, c)
		inst.Last = append(inst.Last, d)
	}
	// Re-index interval endpoints over compressed edges. First/Last are
	// monotone non-decreasing across groups, so two linear sweeps suffice.
	r := len(inst.Beta)
	g := 0
	for j := 0; j < p; j++ {
		for g < r && inst.Last[g] < j {
			g++
		}
		inst.A[j] = g
	}
	g = r - 1
	for j := p - 1; j >= 0; j-- {
		for g >= 0 && inst.First[g] > j {
			g--
		}
		inst.B[j] = g
	}
	return inst
}

// Analyze runs Find and Compress together, returning the instance, the prime
// subpaths, or an infeasibility error.
func Analyze(nodeW, edgeW []float64, k float64) (*Instance, []Interval, error) {
	var s Scratch
	return s.Analyze(nodeW, edgeW, k)
}

// growInts returns an []int of length n, reusing s's capacity when possible.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// growFloats returns a []float64 of length n, reusing s's capacity.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Scratch holds the working arrays of Analyze so repeated solves reuse them
// instead of reallocating — the bandwidth solver's per-solve scratch
// (internal/core pools one per solve). The Instance and Interval slices
// returned by Scratch.Analyze alias the scratch and are invalidated by the
// next Analyze call on the same Scratch.
type Scratch struct {
	ivs  []Interval
	inst Instance
}

// Analyze is the package-level Analyze writing into s's reusable arrays.
func (s *Scratch) Analyze(nodeW, edgeW []float64, k float64) (*Instance, []Interval, error) {
	ivs, err := findInto(s.ivs, nodeW, k)
	if err != nil {
		return nil, nil, err
	}
	s.ivs = ivs
	return compressInto(&s.inst, edgeW, ivs), ivs, nil
}

// Stats summarizes an instance for the Figure 2 study.
type Stats struct {
	N    int     // tasks in the original path
	P    int     // prime subpaths
	R    int     // non-redundant edges
	Q    float64 // mean prime-subpath coverage per non-redundant edge
	QMax int     // max coverage
}

// Summarize computes the Figure 2 statistics for one instance.
func Summarize(n int, inst *Instance) Stats {
	return Stats{
		N:    n,
		P:    inst.NumIntervals(),
		R:    inst.NumEdges(),
		Q:    inst.MeanCoverage(),
		QMax: inst.MaxCoverage(),
	}
}
