package prime

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// bruteIntervals computes prime critical subpaths by definition: every
// contiguous window with weight > K that contains no smaller such window.
func bruteIntervals(nodeW []float64, k float64) []Interval {
	n := len(nodeW)
	sum := func(a, b int) float64 {
		var s float64
		for i := a; i <= b; i++ {
			s += nodeW[i]
		}
		return s
	}
	var out []Interval
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			if sum(a, b) <= k {
				continue
			}
			// minimal: both one-shorter windows are feasible
			minimal := (b == a || sum(a+1, b) <= k) && (b == a || sum(a, b-1) <= k)
			if b == a {
				minimal = true
			}
			if minimal {
				out = append(out, Interval{A: a, B: b - 1, FirstVertex: a, LastVertex: b})
			}
		}
	}
	return out
}

func TestFindBasic(t *testing.T) {
	tests := []struct {
		name  string
		nodeW []float64
		k     float64
		want  []Interval
	}{
		{
			name:  "no critical windows",
			nodeW: []float64{1, 1, 1},
			k:     10,
			want:  nil,
		},
		{
			name:  "single window",
			nodeW: []float64{3, 3, 3},
			k:     8,
			// whole path weighs 9 > 8; any 2 vertices weigh 6 <= 8
			want: []Interval{{A: 0, B: 1, FirstVertex: 0, LastVertex: 2}},
		},
		{
			name:  "each pair critical",
			nodeW: []float64{3, 3, 3},
			k:     5,
			want: []Interval{
				{A: 0, B: 0, FirstVertex: 0, LastVertex: 1},
				{A: 1, B: 1, FirstVertex: 1, LastVertex: 2},
			},
		},
		{
			name:  "dominated subpath removed",
			nodeW: []float64{1, 5, 5, 1},
			k:     9,
			// windows of weight >9: {0..2}=11 (contains {1..2}=10), {1..2}=10,
			// {1..3}=11 (contains {1..2}), {0..3}=12 ... prime is only {1,2}.
			want: []Interval{{A: 1, B: 1, FirstVertex: 1, LastVertex: 2}},
		},
		{
			name:  "exact K boundary is feasible",
			nodeW: []float64{5, 5},
			k:     10,
			want:  nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Find(tt.nodeW, tt.k)
			if err != nil {
				t.Fatalf("Find: %v", err)
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Find = %+v, want %+v", got, tt.want)
			}
		})
	}
}

func TestFindVertexTooHeavy(t *testing.T) {
	_, err := Find([]float64{1, 12, 1}, 10)
	if !errors.Is(err, ErrVertexTooHeavy) {
		t.Errorf("error = %v, want ErrVertexTooHeavy", err)
	}
	// Heavy vertex at the first position.
	_, err = Find([]float64{12, 1}, 10)
	if !errors.Is(err, ErrVertexTooHeavy) {
		t.Errorf("error = %v, want ErrVertexTooHeavy", err)
	}
	// Heavy vertex at the last position.
	_, err = Find([]float64{1, 1, 12}, 10)
	if !errors.Is(err, ErrVertexTooHeavy) {
		t.Errorf("error = %v, want ErrVertexTooHeavy", err)
	}
	// Weight exactly K is fine.
	if _, err := Find([]float64{10, 1}, 10); err != nil {
		t.Errorf("weight == K should be feasible, got %v", err)
	}
}

func TestFindMatchesBruteForce(t *testing.T) {
	r := workload.NewRNG(99)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(30)
		nodeW := make([]float64, n)
		for i := range nodeW {
			nodeW[i] = float64(1 + r.Intn(9))
		}
		k := float64(9 + r.Intn(30))
		got, err := Find(nodeW, k)
		if err != nil {
			t.Fatalf("Find(%v, %v): %v", nodeW, k, err)
		}
		want := bruteIntervals(nodeW, k)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("nodeW=%v k=%v:\nFind  = %+v\nbrute = %+v", nodeW, k, got, want)
		}
	}
}

func TestFindEndpointsStrictlyIncreasing(t *testing.T) {
	r := workload.NewRNG(5)
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(200)
		nodeW := make([]float64, n)
		for i := range nodeW {
			nodeW[i] = r.Uniform(1, 100)
		}
		k := r.Uniform(100, 500)
		ivs, err := Find(nodeW, k)
		if err != nil {
			t.Fatalf("Find: %v", err)
		}
		for i := 1; i < len(ivs); i++ {
			if ivs[i].A <= ivs[i-1].A || ivs[i].B <= ivs[i-1].B {
				t.Fatalf("endpoints not strictly increasing: %+v then %+v", ivs[i-1], ivs[i])
			}
		}
		for _, iv := range ivs {
			if iv.B < iv.A {
				t.Fatalf("empty edge range in %+v", iv)
			}
		}
	}
}

func TestCompressEmpty(t *testing.T) {
	inst := Compress([]float64{1, 2, 3}, nil)
	if inst.NumIntervals() != 0 || inst.NumEdges() != 0 {
		t.Errorf("empty compress: %+v", inst)
	}
	if inst.MeanCoverage() != 0 || inst.MaxCoverage() != 0 {
		t.Error("empty coverage should be 0")
	}
}

func TestCompressSingleInterval(t *testing.T) {
	// One interval covering edges 1..3; all have identical membership, so a
	// single lightest edge survives.
	ivs := []Interval{{A: 1, B: 3, FirstVertex: 1, LastVertex: 4}}
	inst := Compress([]float64{9, 5, 2, 7, 9}, ivs)
	if inst.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1: %+v", inst.NumEdges(), inst)
	}
	if inst.Beta[0] != 2 || inst.Orig[0] != 2 {
		t.Errorf("kept edge = (%v, orig %d), want (2, orig 2)", inst.Beta[0], inst.Orig[0])
	}
	if inst.A[0] != 0 || inst.B[0] != 0 {
		t.Errorf("interval range = [%d,%d], want [0,0]", inst.A[0], inst.B[0])
	}
}

func TestCompressOverlapping(t *testing.T) {
	// Two intervals: edges 0..2 and 2..4. Membership runs: {0,1}->interval 0
	// only; {2}->both; {3,4}->interval 1 only.
	ivs := []Interval{
		{A: 0, B: 2, FirstVertex: 0, LastVertex: 3},
		{A: 2, B: 4, FirstVertex: 2, LastVertex: 5},
	}
	edgeW := []float64{4, 3, 10, 6, 5}
	inst := Compress(edgeW, ivs)
	if inst.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3: %+v", inst.NumEdges(), inst)
	}
	if !reflect.DeepEqual(inst.Orig, []int{1, 2, 4}) {
		t.Errorf("Orig = %v, want [1 2 4]", inst.Orig)
	}
	if !reflect.DeepEqual(inst.Beta, []float64{3, 10, 5}) {
		t.Errorf("Beta = %v, want [3 10 5]", inst.Beta)
	}
	if !reflect.DeepEqual(inst.A, []int{0, 1}) || !reflect.DeepEqual(inst.B, []int{1, 2}) {
		t.Errorf("A=%v B=%v, want A=[0 1] B=[1 2]", inst.A, inst.B)
	}
	if !reflect.DeepEqual(inst.First, []int{0, 0, 1}) || !reflect.DeepEqual(inst.Last, []int{0, 1, 1}) {
		t.Errorf("First=%v Last=%v", inst.First, inst.Last)
	}
	if got := inst.MeanCoverage(); math.Abs(got-4.0/3.0) > 1e-12 {
		t.Errorf("MeanCoverage = %v, want 4/3", got)
	}
	if inst.MaxCoverage() != 2 {
		t.Errorf("MaxCoverage = %d, want 2", inst.MaxCoverage())
	}
}

func TestCompressDropsUncoveredEdges(t *testing.T) {
	// Interval covers only edges 2..3 of a 6-edge path; edges 0,1,4,5 are
	// uncovered and must be dropped.
	ivs := []Interval{{A: 2, B: 3, FirstVertex: 2, LastVertex: 4}}
	inst := Compress([]float64{1, 1, 8, 9, 1, 1}, ivs)
	if inst.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", inst.NumEdges())
	}
	if inst.Orig[0] != 2 {
		t.Errorf("Orig = %v, want [2]", inst.Orig)
	}
}

// Property: compression invariants hold for random instances.
func TestCompressInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(300)
		nodeW := make([]float64, n)
		for i := range nodeW {
			nodeW[i] = r.Uniform(1, 50)
		}
		edgeW := make([]float64, n-1)
		for i := range edgeW {
			edgeW[i] = r.Uniform(1, 20)
		}
		k := r.Uniform(50, 400)
		inst, ivs, err := Analyze(nodeW, edgeW, k)
		if err != nil {
			return false
		}
		p, rr := inst.NumIntervals(), inst.NumEdges()
		if p != len(ivs) {
			return false
		}
		if p == 0 {
			return rr == 0
		}
		// r <= min(n-1, 2p-1), the paper's bound.
		if rr > n-1 || rr > 2*p-1 {
			return false
		}
		// A and B strictly increasing, ranges valid and within [0, r).
		for j := 0; j < p; j++ {
			if inst.A[j] > inst.B[j] || inst.A[j] < 0 || inst.B[j] >= rr {
				return false
			}
			if j > 0 && (inst.A[j] <= inst.A[j-1] || inst.B[j] <= inst.B[j-1]) {
				return false
			}
		}
		// Membership consistency: edge i covered by intervals [First, Last],
		// and A/B agree with First/Last.
		for i := 0; i < rr; i++ {
			if inst.First[i] > inst.Last[i] {
				return false
			}
			for j := 0; j < p; j++ {
				inRange := inst.A[j] <= i && i <= inst.B[j]
				member := inst.First[i] <= j && j <= inst.Last[i]
				if inRange != member {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	ivs := []Interval{{A: 0, B: 1, FirstVertex: 0, LastVertex: 2}}
	inst := Compress([]float64{2, 3}, ivs)
	s := Summarize(3, inst)
	if s.N != 3 || s.P != 1 || s.R != 1 || s.Q != 1 || s.QMax != 1 {
		t.Errorf("Summarize = %+v", s)
	}
}
