// Package ccp implements chains-on-chains partitioning — the prior-work
// problem family the paper positions itself against (§1): partition a chain
// of n tasks into at most m contiguous blocks, one per processor of a linear
// array, minimizing the bottleneck (the heaviest block).
//
// Bokhari (1988) solved it in O(n³m); Nicol & O'Hallaron (1991) in O(n²m)
// and, under bounded weights, O(mn log n); Hansen & Lih (1992) in O(m²n).
// This package provides three exact solvers spanning those complexity
// classes plus a fast heuristic, all over integer task weights (integrality
// makes exact binary search on the bottleneck value well-defined):
//
//   - SolveDPQuadratic — the textbook O(n²·m) dynamic program (the
//     Bokhari / Nicol–O'Hallaron complexity class).
//   - SolveDPBinary — the same DP with a binary-searched split point,
//     O(n·m·log n) (the bounded-weight Nicol–O'Hallaron class).
//   - SolveProbe — binary search on the bottleneck value with a greedy
//     feasibility probe, O(n·log Σw) (the modern exact method).
//   - GreedyAverage — probe once at the load-balance lower bound and repair;
//     fast, not optimal, used as a contrast heuristic.
package ccp

import (
	"errors"
	"fmt"
	"sort"
)

// Sentinel errors.
var (
	// ErrBadInput is returned for empty chains, non-positive m, or negative
	// weights.
	ErrBadInput = errors.New("ccp: bad input")
)

// Result is a chains-on-chains partition.
type Result struct {
	// Breaks lists the last task index of every block except the final one;
	// block i spans tasks (Breaks[i-1], Breaks[i]].
	Breaks []int
	// Bottleneck is the heaviest block weight.
	Bottleneck int64
	// Blocks is the number of blocks used (≤ m).
	Blocks int
}

func validate(w []int64, m int) error {
	if len(w) == 0 {
		return fmt.Errorf("empty chain: %w", ErrBadInput)
	}
	if m <= 0 {
		return fmt.Errorf("m = %d: %w", m, ErrBadInput)
	}
	for i, x := range w {
		if x < 0 {
			return fmt.Errorf("w[%d] = %d: %w", i, x, ErrBadInput)
		}
	}
	return nil
}

func prefixSums(w []int64) []int64 {
	p := make([]int64, len(w)+1)
	for i, x := range w {
		p[i+1] = p[i] + x
	}
	return p
}

// breaksFromBottleneck greedily fills blocks up to bound b, returning the
// break list; callers guarantee b ≥ max(w).
func breaksFromBottleneck(w []int64, b int64, m int) []int {
	var breaks []int
	var load int64
	for i, x := range w {
		if load+x > b && len(breaks) < m-1 {
			breaks = append(breaks, i-1)
			load = 0
		}
		load += x
	}
	return breaks
}

// finalize computes the actual bottleneck of a break list.
func finalize(w []int64, breaks []int) *Result {
	prefix := prefixSums(w)
	res := &Result{Breaks: breaks, Blocks: len(breaks) + 1}
	start := 0
	for _, b := range breaks {
		if s := prefix[b+1] - prefix[start]; s > res.Bottleneck {
			res.Bottleneck = s
		}
		start = b + 1
	}
	if s := prefix[len(w)] - prefix[start]; s > res.Bottleneck {
		res.Bottleneck = s
	}
	return res
}

// probe returns the minimum number of blocks needed when no block may exceed
// b; returns len(w)+1 when b < max(w) (infeasible).
func probe(w []int64, b int64) int {
	blocks := 1
	var load int64
	for _, x := range w {
		if x > b {
			return len(w) + 1
		}
		if load+x > b {
			blocks++
			load = 0
		}
		load += x
	}
	return blocks
}

// SolveProbe finds the optimal bottleneck by binary search on its value with
// the greedy probe: O(n log Σw).
func SolveProbe(w []int64, m int) (*Result, error) {
	if err := validate(w, m); err != nil {
		return nil, err
	}
	var lo, hi int64
	for _, x := range w {
		if x > lo {
			lo = x
		}
		hi += x
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if probe(w, mid) <= m {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return finalize(w, breaksFromBottleneck(w, lo, m)), nil
}

// SolveDPQuadratic runs the classic dynamic program
//
//	B[j][i] = min over k < i of max(B[j-1][k], S(k+1, i))
//
// in O(n²·m) time, the complexity class of the Bokhari and Nicol–O'Hallaron
// exact algorithms for heterogeneous chains.
func SolveDPQuadratic(w []int64, m int) (*Result, error) {
	return solveDP(w, m, false)
}

// SolveDPBinary runs the same dynamic program but finds each optimal split
// point by binary search over the crossing of the two monotone arguments:
// O(n·m·log n).
func SolveDPBinary(w []int64, m int) (*Result, error) {
	return solveDP(w, m, true)
}

func solveDP(w []int64, m int, binary bool) (*Result, error) {
	if err := validate(w, m); err != nil {
		return nil, err
	}
	n := len(w)
	if m > n {
		m = n
	}
	prefix := prefixSums(w)
	seg := func(a, b int) int64 { return prefix[b+1] - prefix[a] } // tasks a..b
	const inf = int64(1) << 62
	// prev[i] = optimal bottleneck for tasks 0..i with j-1 blocks.
	prev := make([]int64, n)
	cur := make([]int64, n)
	split := make([][]int32, m) // split[j][i] = chosen k for reconstruction
	for i := 0; i < n; i++ {
		prev[i] = seg(0, i)
	}
	for j := 1; j < m; j++ {
		split[j] = make([]int32, n)
		for i := 0; i < n; i++ {
			best, bestK := inf, -1
			eval := func(k int) {
				// Blocks: tasks 0..k in j blocks... prev covers j blocks?
				v := prev[k]
				if s := seg(k+1, i); s > v {
					v = s
				}
				if v < best {
					best, bestK = v, k
				}
			}
			if i == 0 {
				// A single task occupies one block regardless of how many
				// blocks are available.
				cur[0] = seg(0, 0)
				split[j][0] = -1
				continue
			}
			if !binary {
				for k := 0; k < i; k++ {
					eval(k)
				}
			} else {
				// prev[k] is non-decreasing in k, seg(k+1, i) is
				// non-increasing: the max is minimized around their
				// crossing. Find the first k where prev[k] >= seg(k+1, i)
				// and evaluate the two neighbours of the crossing.
				k := sort.Search(i, func(k int) bool { return prev[k] >= seg(k+1, i) })
				if k < i {
					eval(k)
				}
				if k > 0 {
					eval(k - 1)
				}
				if bestK == -1 {
					eval(i - 1)
				}
			}
			cur[i] = best
			split[j][i] = int32(bestK)
		}
		prev, cur = cur, prev
	}
	// Reconstruct the break list.
	var breaks []int
	i := n - 1
	for j := m - 1; j >= 1 && i >= 0; j-- {
		k := int(split[j][i])
		if k < 0 {
			break
		}
		breaks = append(breaks, k)
		i = k
	}
	sort.Ints(breaks)
	return finalize(w, breaks), nil
}

// GreedyAverage probes once at the load-balance lower bound
// max(⌈Σw/m⌉, max w) and, if the probe overflows m blocks, retries at
// increasing bounds (doubling the slack) until it fits. Fast and simple; not
// optimal. Used as the heuristic contrast in benches.
func GreedyAverage(w []int64, m int) (*Result, error) {
	if err := validate(w, m); err != nil {
		return nil, err
	}
	var maxW, total int64
	for _, x := range w {
		if x > maxW {
			maxW = x
		}
		total += x
	}
	b := (total + int64(m) - 1) / int64(m)
	if maxW > b {
		b = maxW
	}
	slack := int64(1)
	for probe(w, b) > m {
		b += slack
		slack *= 2
	}
	return finalize(w, breaksFromBottleneck(w, b, m)), nil
}
