package ccp

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// bruteBottleneck enumerates all ways to place at most m-1 breaks; exact for
// small n.
func bruteBottleneck(w []int64, m int) int64 {
	n := len(w)
	if m > n {
		m = n
	}
	best := int64(1) << 62
	var rec func(start, blocksLeft int, curMax int64)
	rec = func(start, blocksLeft int, curMax int64) {
		if curMax >= best {
			return
		}
		if blocksLeft == 1 {
			var s int64
			for _, x := range w[start:] {
				s += x
			}
			if s > curMax {
				curMax = s
			}
			if curMax < best {
				best = curMax
			}
			return
		}
		var s int64
		for end := start; end < n-(blocksLeft-1); end++ {
			s += w[end]
			m2 := curMax
			if s > m2 {
				m2 = s
			}
			rec(end+1, blocksLeft-1, m2)
		}
	}
	rec(0, m, 0)
	return best
}

func exactSolvers() []struct {
	name string
	f    func([]int64, int) (*Result, error)
} {
	return []struct {
		name string
		f    func([]int64, int) (*Result, error)
	}{
		{"Probe", SolveProbe},
		{"DPQuadratic", SolveDPQuadratic},
		{"DPBinary", SolveDPBinary},
	}
}

func TestCCPHandCases(t *testing.T) {
	tests := []struct {
		name string
		w    []int64
		m    int
		want int64
	}{
		{"single task", []int64{7}, 3, 7},
		{"one block", []int64{1, 2, 3}, 1, 6},
		{"m exceeds n", []int64{4, 5, 6}, 10, 6},
		{"even split", []int64{2, 2, 2, 2}, 2, 4},
		{"classic", []int64{10, 20, 30, 40}, 2, 60},
		{"heavy middle", []int64{1, 1, 100, 1, 1}, 3, 100},
		{"zeros", []int64{0, 0, 5, 0, 0}, 2, 5},
	}
	for _, tt := range tests {
		for _, s := range exactSolvers() {
			t.Run(tt.name+"/"+s.name, func(t *testing.T) {
				got, err := s.f(tt.w, tt.m)
				if err != nil {
					t.Fatalf("%v", err)
				}
				if got.Bottleneck != tt.want {
					t.Errorf("Bottleneck = %d (breaks %v), want %d", got.Bottleneck, got.Breaks, tt.want)
				}
				if got.Blocks > tt.m {
					t.Errorf("used %d blocks, allowed %d", got.Blocks, tt.m)
				}
			})
		}
	}
}

func TestCCPErrors(t *testing.T) {
	for _, s := range exactSolvers() {
		if _, err := s.f(nil, 3); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s empty: %v", s.name, err)
		}
		if _, err := s.f([]int64{1}, 0); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s m=0: %v", s.name, err)
		}
		if _, err := s.f([]int64{-1}, 1); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s negative: %v", s.name, err)
		}
	}
	if _, err := GreedyAverage(nil, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("greedy empty: %v", err)
	}
}

func TestCCPExactSolversMatchBrute(t *testing.T) {
	r := workload.NewRNG(1988) // Bokhari's year
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(12)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(40))
		}
		m := 1 + r.Intn(5)
		want := bruteBottleneck(w, m)
		for _, s := range exactSolvers() {
			got, err := s.f(w, m)
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			if got.Bottleneck != want {
				t.Fatalf("%s bottleneck %d != brute %d (w=%v m=%d breaks=%v)",
					s.name, got.Bottleneck, want, w, m, got.Breaks)
			}
		}
	}
}

func TestCCPLargeAgreement(t *testing.T) {
	r := workload.NewRNG(777)
	for trial := 0; trial < 10; trial++ {
		n := 1000 + r.Intn(2000)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(1 + r.Intn(100))
		}
		m := 2 + r.Intn(30)
		probe, err := SolveProbe(w, m)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		dp, err := SolveDPBinary(w, m)
		if err != nil {
			t.Fatalf("dp: %v", err)
		}
		if probe.Bottleneck != dp.Bottleneck {
			t.Fatalf("probe %d != dp %d (n=%d m=%d)", probe.Bottleneck, dp.Bottleneck, n, m)
		}
	}
}

func TestGreedyAverageNeverBeatsExactAndIsFeasible(t *testing.T) {
	r := workload.NewRNG(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(50)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(30))
		}
		m := 1 + r.Intn(8)
		exact, err := SolveProbe(w, m)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		greedy, err := GreedyAverage(w, m)
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		if greedy.Bottleneck < exact.Bottleneck {
			t.Fatalf("greedy %d beat exact %d — exact solver broken (w=%v m=%d)",
				greedy.Bottleneck, exact.Bottleneck, w, m)
		}
		if greedy.Blocks > m {
			t.Fatalf("greedy used %d blocks > m=%d", greedy.Blocks, m)
		}
	}
}

// Property: the probe solver's bottleneck is sandwiched between the
// load-balance lower bound and the single-block upper bound.
func TestCCPBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(200)
		w := make([]int64, n)
		var total, maxW int64
		for i := range w {
			w[i] = int64(r.Intn(1000))
			total += w[i]
			if w[i] > maxW {
				maxW = w[i]
			}
		}
		m := 1 + r.Intn(10)
		res, err := SolveProbe(w, m)
		if err != nil {
			return false
		}
		lower := (total + int64(m) - 1) / int64(m)
		if maxW > lower {
			lower = maxW
		}
		return res.Bottleneck >= lower && res.Bottleneck <= total && res.Blocks <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
