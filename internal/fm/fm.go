// Package fm implements Fiduccia–Mattheyses-style partition refinement for
// general task graphs — the heuristic state of the art the paper positions
// itself against in §3: "Due to the NP-Completeness of the general problem,
// most current partitioning strategies are based on heuristic solutions
// [6, 3, 2]" (reference [6] is Fiduccia & Mattheyses 1982). The paper's
// point is that for linear/tree (or linearizable) systems its exact
// algorithms replace these heuristics; the experiments use this package as
// that contrast.
//
// Bipartition runs pass-based refinement: starting from a balanced greedy
// assignment, each pass tentatively moves every vertex once in best-gain
// order (respecting the balance bound), then rewinds to the best prefix of
// moves; passes repeat until one fails to improve. The classical
// implementation achieves O(pins) per pass with integer-gain bucket lists;
// task-graph weights here are real-valued, so a lazy max-heap is used
// instead (O(m log n) per pass), which changes the constant, not the
// behaviour.
//
// Partition builds k-way partitions by recursive bisection.
package fm

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/workload"
)

// Sentinel errors.
var (
	// ErrBalance is returned when no balanced assignment exists (a vertex
	// exceeds the side bound, or total weight exceeds twice the bound).
	ErrBalance = errors.New("fm: balance bound unsatisfiable")
	// ErrBadInput is returned for malformed arguments.
	ErrBadInput = errors.New("fm: bad input")
)

// Result is a two-way partition.
type Result struct {
	// Side[v] ∈ {0, 1}.
	Side []int
	// CutWeight is the total weight of edges crossing sides.
	CutWeight float64
	// SideWeights are the vertex-weight totals of sides 0 and 1.
	SideWeights [2]float64
	// Passes is the number of refinement passes executed.
	Passes int
}

type gainItem struct {
	v     int
	gain  float64
	stamp int64
}

type gainHeap []gainItem

func (h gainHeap) Len() int           { return len(h) }
func (h gainHeap) Less(i, j int) bool { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x any)        { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Bipartition partitions g into two sides, each of total vertex weight at
// most maxSide, heuristically minimizing the cut weight. It runs several
// refinement rounds from different deterministic starting assignments
// (derived from seed) and returns the best; runs are deterministic per
// seed. The bound is hard: refinement can only move a vertex while both
// sides stay within it, so a bound with no slack (e.g. exactly half the
// total weight) freezes refinement at the initial assignment — give the
// bound the same slack a real machine's load limit would have.
func Bipartition(g *graph.Graph, maxSide float64, seed uint64) (*Result, error) {
	return BipartitionCaps(g, [2]float64{maxSide, maxSide}, seed)
}

// BipartitionCaps is Bipartition with independent per-side capacities, the
// form recursive bisection needs when the two sides will host different
// numbers of final parts.
func BipartitionCaps(g *graph.Graph, caps [2]float64, seed uint64) (*Result, error) {
	const restarts = 4
	var best *Result
	for i := uint64(0); i < restarts; i++ {
		res, err := bipartitionOnce(g, caps, seed+i*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		if best == nil || res.CutWeight < best.CutWeight {
			best = res
		}
	}
	return best, nil
}

func bipartitionOnce(g *graph.Graph, caps [2]float64, seed uint64) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	for s, c := range caps {
		if !(c > 0) || math.IsNaN(c) || math.IsInf(c, 0) {
			return nil, fmt.Errorf("cap[%d] = %v: %w", s, c, ErrBadInput)
		}
	}
	n := g.Len()
	total := g.TotalNodeWeight()
	if total > caps[0]+caps[1] {
		return nil, fmt.Errorf("total weight %v > %v+%v: %w", total, caps[0], caps[1], ErrBalance)
	}
	maxCap := math.Max(caps[0], caps[1])
	for v, w := range g.NodeW {
		if w > maxCap {
			return nil, fmt.Errorf("vertex %d weight %v > bound %v: %w", v, w, maxCap, ErrBalance)
		}
	}
	merged := g.MergeParallel()
	adj := merged.Adjacency()

	// Initial assignment: vertices in random order, first-fit into side 0
	// until it would overflow, then side 1.
	rng := workload.NewRNG(seed)
	side := make([]int, n)
	var sw [2]float64
	for _, v := range rng.Perm(n) {
		// Place into the side with the larger remaining relative capacity.
		s := 0
		if caps[1]-sw[1] > caps[0]-sw[0] {
			s = 1
		}
		if sw[s]+merged.NodeW[v] > caps[s] {
			s = 1 - s
		}
		side[v] = s
		sw[s] += merged.NodeW[v]
	}
	if sw[0] > caps[0] || sw[1] > caps[1] {
		return nil, fmt.Errorf("first-fit could not balance (sides %v, %v vs caps %v): %w",
			sw[0], sw[1], caps, ErrBalance)
	}

	// gain(v) = external − internal edge weight: the cut reduction if v
	// moves.
	gain := func(v int) float64 {
		var gn float64
		for _, a := range adj[v] {
			if side[a.To] == side[v] {
				gn -= merged.Edges[a.Edge].W
			} else {
				gn += merged.Edges[a.Edge].W
			}
		}
		return gn
	}
	cutWeight := func() float64 {
		var c float64
		for _, e := range merged.Edges {
			if side[e.U] != side[e.V] {
				c += e.W
			}
		}
		return c
	}

	res := &Result{Side: side, SideWeights: sw}
	stamps := make([]int64, n)
	var stampGen int64
	for {
		res.Passes++
		locked := make([]bool, n)
		h := &gainHeap{}
		for v := 0; v < n; v++ {
			stampGen++
			stamps[v] = stampGen
			heap.Push(h, gainItem{v: v, gain: gain(v), stamp: stampGen})
		}
		type move struct {
			v    int
			gain float64
		}
		var moves []move
		bestPrefix, bestDelta := 0, 0.0
		var delta float64
		for h.Len() > 0 {
			it := heap.Pop(h).(gainItem)
			if locked[it.v] || stamps[it.v] != it.stamp {
				continue
			}
			v := it.v
			target := 1 - side[v]
			if sw[target]+merged.NodeW[v] > caps[target] {
				// Cannot move now; re-queue once in case balance frees up.
				// Locking instead keeps passes linear; FM locks too.
				locked[v] = true
				continue
			}
			// Apply the move.
			g := gain(v) // recompute: heap entry may be stale
			sw[side[v]] -= merged.NodeW[v]
			side[v] = target
			sw[target] += merged.NodeW[v]
			locked[v] = true
			delta -= g
			moves = append(moves, move{v: v, gain: g})
			if delta < bestDelta {
				bestDelta = delta
				bestPrefix = len(moves)
			}
			// Neighbours' gains changed; push fresh entries.
			for _, a := range adj[v] {
				if !locked[a.To] {
					stampGen++
					stamps[a.To] = stampGen
					heap.Push(h, gainItem{v: a.To, gain: gain(a.To), stamp: stampGen})
				}
			}
		}
		// Rewind to the best prefix.
		for i := len(moves) - 1; i >= bestPrefix; i-- {
			v := moves[i].v
			sw[side[v]] -= merged.NodeW[v]
			side[v] = 1 - side[v]
			sw[side[v]] += merged.NodeW[v]
		}
		if bestDelta >= -1e-12 {
			break
		}
	}
	res.CutWeight = cutWeight()
	res.SideWeights = sw
	return res, nil
}

// Partition builds a k-way partition by recursive bisection: each recursive
// split receives a proportional share of the part budget. part[v] ∈ [0, k).
// maxPart bounds every final part's weight.
func Partition(g *graph.Graph, k int, maxPart float64, seed uint64) ([]int, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("k = %d: %w", k, ErrBadInput)
	}
	part := make([]int, g.Len())
	var rec func(vs []int, lo, hi int, seed uint64) error
	rec = func(vs []int, lo, hi int, seed uint64) error {
		if len(vs) == 0 {
			return nil
		}
		if hi-lo <= 1 {
			for _, v := range vs {
				part[v] = lo
			}
			return nil
		}
		sub, back := induce(g, vs)
		kl := (hi - lo + 1) / 2
		kr := (hi - lo) - kl
		// Per-side budgets proportional to the part counts each side will
		// host, with the final bound enforced at the leaves.
		caps := [2]float64{float64(kl) * maxPart, float64(kr) * maxPart}
		bp, err := BipartitionCaps(sub, caps, seed)
		if err != nil {
			return err
		}
		var left, right []int
		for i, s := range bp.Side {
			if s == 0 {
				left = append(left, back[i])
			} else {
				right = append(right, back[i])
			}
		}
		if err := rec(left, lo, lo+kl, seed*2+1); err != nil {
			return err
		}
		return rec(right, lo+kl, hi, seed*2+2)
	}
	vs := make([]int, g.Len())
	for i := range vs {
		vs[i] = i
	}
	if err := rec(vs, 0, k, seed); err != nil {
		return nil, err
	}
	// Validate the leaf bound.
	weights := make([]float64, k)
	for v, p := range part {
		weights[p] += g.NodeW[v]
	}
	for p, w := range weights {
		if w > maxPart+1e-9 {
			return nil, fmt.Errorf("part %d weight %v > %v: %w", p, w, maxPart, ErrBalance)
		}
	}
	return part, nil
}

// induce builds the subgraph on vs, returning it and the index-back map.
func induce(g *graph.Graph, vs []int) (*graph.Graph, []int) {
	idx := make(map[int]int, len(vs))
	back := make([]int, len(vs))
	nodeW := make([]float64, len(vs))
	for i, v := range vs {
		idx[v] = i
		back[i] = v
		nodeW[i] = g.NodeW[v]
	}
	var edges []graph.Edge
	for _, e := range g.Edges {
		u, okU := idx[e.U]
		v, okV := idx[e.V]
		if okU && okV {
			edges = append(edges, graph.Edge{U: u, V: v, W: e.W})
		}
	}
	return &graph.Graph{NodeW: nodeW, Edges: edges}, back
}

// CutWeight computes the weight of edges crossing parts for an arbitrary
// assignment.
func CutWeight(g *graph.Graph, part []int) (float64, error) {
	if len(part) != g.Len() {
		return 0, fmt.Errorf("assignment covers %d of %d vertices: %w", len(part), g.Len(), ErrBadInput)
	}
	var c float64
	for _, e := range g.Edges {
		if part[e.U] != part[e.V] {
			c += e.W
		}
	}
	return c, nil
}
