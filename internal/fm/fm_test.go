package fm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/workload"
)

// bruteBipartition finds the optimal balanced two-way cut for tiny graphs.
func bruteBipartition(t *testing.T, g *graph.Graph, maxSide float64) float64 {
	t.Helper()
	n := g.Len()
	if n > 16 {
		t.Fatalf("bruteBipartition: n=%d too large", n)
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		var sw [2]float64
		for v := 0; v < n; v++ {
			sw[mask>>v&1] += g.NodeW[v]
		}
		if sw[0] > maxSide || sw[1] > maxSide {
			continue
		}
		var cut float64
		for _, e := range g.Edges {
			if mask>>e.U&1 != mask>>e.V&1 {
				cut += e.W
			}
		}
		if cut < best {
			best = cut
		}
	}
	return best
}

func TestBipartitionHandCase(t *testing.T) {
	// Two tight clusters joined by one light bridge.
	g, err := graph.NewGraph(
		[]float64{1, 1, 1, 1, 1, 1},
		[]graph.Edge{
			{U: 0, V: 1, W: 10}, {U: 1, V: 2, W: 10}, {U: 0, V: 2, W: 10},
			{U: 3, V: 4, W: 10}, {U: 4, V: 5, W: 10}, {U: 3, V: 5, W: 10},
			{U: 2, V: 3, W: 1}, // the bridge
		},
	)
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	// Bound 4 leaves one unit of slack so refinement can move vertices (a
	// bound of exactly half the total freezes every move; see the doc
	// comment on Bipartition).
	res, err := Bipartition(g, 4, 1)
	if err != nil {
		t.Fatalf("Bipartition: %v", err)
	}
	if res.CutWeight != 1 {
		t.Errorf("CutWeight = %v (sides %v), want 1 (cut the bridge)", res.CutWeight, res.Side)
	}
	if res.SideWeights[0] != 3 || res.SideWeights[1] != 3 {
		t.Errorf("SideWeights = %v, want [3 3]", res.SideWeights)
	}
}

func TestBipartitionErrors(t *testing.T) {
	g, _ := graph.NewGraph([]float64{5, 5}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := Bipartition(g, 4, 1); !errors.Is(err, ErrBalance) {
		t.Errorf("too tight: %v", err)
	}
	heavy, _ := graph.NewGraph([]float64{9, 1}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := Bipartition(heavy, 8, 1); !errors.Is(err, ErrBalance) {
		t.Errorf("heavy vertex: %v", err)
	}
	if _, err := Bipartition(g, math.NaN(), 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("nan bound: %v", err)
	}
}

func TestBipartitionNearOptimalOnSmallGraphs(t *testing.T) {
	r := workload.NewRNG(7)
	worse, total := 0, 0
	for trial := 0; trial < 150; trial++ {
		n := 4 + r.Intn(9)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 5), workload.UniformWeights(1, 20))
		extra := r.Intn(n)
		edges := append([]graph.Edge(nil), tr.Edges...)
		for i := 0; i < extra; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: r.Uniform(1, 20)})
			}
		}
		g, err := graph.NewGraph(tr.NodeW, edges)
		if err != nil {
			t.Fatalf("NewGraph: %v", err)
		}
		g = g.MergeParallel()
		maxSide := g.TotalNodeWeight()*0.65 + 1
		opt := bruteBipartition(t, g, maxSide)
		res, err := Bipartition(g, maxSide, uint64(trial))
		if err != nil {
			t.Fatalf("Bipartition: %v", err)
		}
		if res.CutWeight < opt-1e-9 {
			t.Fatalf("heuristic %v beat brute optimum %v — brute is wrong", res.CutWeight, opt)
		}
		total++
		if res.CutWeight > opt+1e-9 {
			worse++
		}
		// Balance always respected.
		if res.SideWeights[0] > maxSide+1e-9 || res.SideWeights[1] > maxSide+1e-9 {
			t.Fatalf("balance violated: %v > %v", res.SideWeights, maxSide)
		}
	}
	// FM is a heuristic, but on graphs this small it should find the
	// optimum most of the time.
	if worse*3 > total {
		t.Errorf("heuristic missed the optimum on %d/%d instances", worse, total)
	}
	t.Logf("optimal on %d/%d instances", total-worse, total)
}

func TestBipartitionDeterministicPerSeed(t *testing.T) {
	r := workload.NewRNG(11)
	tr := workload.RandomTree(r, 50, workload.UniformWeights(1, 5), workload.UniformWeights(1, 9))
	g, _ := graph.NewGraph(tr.NodeW, tr.Edges)
	a, err := Bipartition(g, g.TotalNodeWeight()*0.6, 42)
	if err != nil {
		t.Fatalf("a: %v", err)
	}
	b, err := Bipartition(g, g.TotalNodeWeight()*0.6, 42)
	if err != nil {
		t.Fatalf("b: %v", err)
	}
	if a.CutWeight != b.CutWeight {
		t.Errorf("same seed, different cuts: %v vs %v", a.CutWeight, b.CutWeight)
	}
}

func TestPartitionKWay(t *testing.T) {
	r := workload.NewRNG(13)
	tr := workload.RandomTree(r, 60, workload.UniformWeights(1, 4), workload.UniformWeights(1, 9))
	g, _ := graph.NewGraph(tr.NodeW, tr.Edges)
	k := 4
	maxPart := g.TotalNodeWeight()/float64(k) + 8
	part, err := Partition(g, k, maxPart, 3)
	if err != nil {
		t.Fatalf("Partition: %v", err)
	}
	weights := make([]float64, k)
	for v, p := range part {
		if p < 0 || p >= k {
			t.Fatalf("part[%d] = %d out of range", v, p)
		}
		weights[p] += g.NodeW[v]
	}
	for p, w := range weights {
		if w > maxPart+1e-9 {
			t.Errorf("part %d weight %v > %v", p, w, maxPart)
		}
	}
	if _, err := CutWeight(g, part); err != nil {
		t.Errorf("CutWeight: %v", err)
	}
	if _, err := Partition(g, 0, 10, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := CutWeight(g, part[:3]); !errors.Is(err, ErrBadInput) {
		t.Errorf("short assignment: %v", err)
	}
}

// TestExactBeatsHeuristicOnLinearizableSystems reproduces the §3 argument:
// when the system is linear (or linearizable), the paper's exact bandwidth
// algorithm never loses to the general-purpose heuristic at the same load
// bound, and the FM cut can be strictly worse.
func TestExactBeatsHeuristicOnLinearizableSystems(t *testing.T) {
	r := workload.NewRNG(1994)
	strictly := 0
	for trial := 0; trial < 40; trial++ {
		n := 30 + r.Intn(60)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 100))
		g, err := graph.NewGraph(p.NodeW, p.AsTree().Edges)
		if err != nil {
			t.Fatalf("NewGraph: %v", err)
		}
		maxSide := p.TotalNodeWeight()*0.6 + p.MaxNodeWeight()
		res, err := Bipartition(g, maxSide, uint64(trial))
		if err != nil {
			t.Fatalf("Bipartition: %v", err)
		}
		// The exact algorithm under the same bound. (Bandwidth allows any
		// number of components; a 2-way split is a restriction, so exact
		// ≤ heuristic must hold.)
		exact := exactBandwidth(t, p, maxSide)
		if exact > res.CutWeight+1e-9 {
			t.Fatalf("exact %v worse than heuristic %v — impossible", exact, res.CutWeight)
		}
		if exact < res.CutWeight-1e-9 {
			strictly++
		}
	}
	t.Logf("exact strictly better on %d/40 instances", strictly)
}

func exactBandwidth(t *testing.T, p *graph.Path, k float64) float64 {
	t.Helper()
	// Avoid an import cycle with core by computing via the DP directly: the
	// linearize package re-exports nothing; use the simple quadratic check.
	n := p.Len()
	prefix := p.PrefixNodeWeights()
	const inf = math.MaxFloat64
	f := make([]float64, n)
	for i := 0; i < n-1; i++ {
		f[i] = inf
		for j := -1; j < i; j++ {
			if prefix[i+1]-prefix[j+1] > k {
				continue
			}
			prev := 0.0
			if j >= 0 {
				prev = f[j]
			}
			if prev < inf && prev+p.EdgeW[i] < f[i] {
				f[i] = prev + p.EdgeW[i]
			}
		}
	}
	best := inf
	if prefix[n] <= k {
		best = 0
	}
	for i := 0; i < n-1; i++ {
		if prefix[n]-prefix[i+1] <= k && f[i] < best {
			best = f[i]
		}
	}
	if best == inf {
		t.Fatal("exactBandwidth: infeasible")
	}
	return best
}

// Property: Bipartition always returns a balanced assignment with the cut
// weight it reports.
func TestBipartitionConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(40)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 6), workload.UniformWeights(1, 9))
		g, err := graph.NewGraph(tr.NodeW, tr.Edges)
		if err != nil {
			return false
		}
		maxSide := g.TotalNodeWeight()*0.7 + 1
		res, err := Bipartition(g, maxSide, seed)
		if err != nil {
			return false
		}
		want, err := CutWeight(g, res.Side)
		if err != nil {
			return false
		}
		if math.Abs(want-res.CutWeight) > 1e-9 {
			return false
		}
		var sw [2]float64
		for v, s := range res.Side {
			if s != 0 && s != 1 {
				return false
			}
			sw[s] += g.NodeW[v]
		}
		return sw[0] <= maxSide+1e-9 && sw[1] <= maxSide+1e-9 &&
			math.Abs(sw[0]-res.SideWeights[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Guard against regressions in linearize interop: banding an FM-partitioned
// graph still conserves weight (the two subsystems are used together in the
// experiments).
func TestFMAndLinearizeInterop(t *testing.T) {
	r := workload.NewRNG(21)
	tr := workload.RandomTree(r, 80, workload.UniformWeights(1, 5), workload.UniformWeights(1, 9))
	g, _ := graph.NewGraph(tr.NodeW, tr.Edges)
	b, err := linearize.BFSBands(g, 0)
	if err != nil {
		t.Fatalf("BFSBands: %v", err)
	}
	if math.Abs(b.Path.TotalNodeWeight()-g.TotalNodeWeight()) > 1e-9 {
		t.Error("banding lost weight")
	}
}
