package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// launchFlight starts n concurrent Do("k", fn) callers where fn blocks until
// release is closed. It returns once every caller goroutine has signalled it
// is about to enter Do and the leader is inside fn; the short settle sleep
// then makes "every other caller has joined the leader's flight" reliable
// (the same handshake golang.org/x/sync's singleflight tests use — sharing is
// guaranteed by Do's map check once a caller is inside, the sleep only covers
// the last few instructions before it).
func launchFlight[V any](t *testing.T, g *Group[string, V], n int, fn func() (V, error), release chan struct{}) (wait func() []flightResult[V]) {
	t.Helper()
	entered := make(chan struct{})
	var once sync.Once
	wrapped := func() (V, error) {
		once.Do(func() { close(entered) })
		<-release
		return fn()
	}
	results := make([]flightResult[V], n)
	var ready, done sync.WaitGroup
	for i := 0; i < n; i++ {
		ready.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			ready.Done()
			v, shared, err := g.Do("k", wrapped)
			results[i] = flightResult[V]{v: v, shared: shared, err: err}
		}(i)
	}
	ready.Wait()
	<-entered
	time.Sleep(100 * time.Millisecond)
	return func() []flightResult[V] {
		done.Wait()
		return results
	}
}

type flightResult[V any] struct {
	v      V
	shared bool
	err    error
}

func TestFlightDedup(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})
	const n = 16
	wait := launchFlight(t, &g, n, func() (int, error) {
		calls.Add(1)
		return 42, nil
	}, release)
	close(release)
	results := wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	var leaders int
	for i, r := range results {
		if r.err != nil {
			t.Errorf("caller %d: %v", i, r.err)
		}
		if r.v != 42 {
			t.Errorf("caller %d got %d, want 42", i, r.v)
		}
		if !r.shared {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers report shared=false, want exactly 1", leaders)
	}
	leads, shared := g.Stats()
	if leads != 1 || shared != n-1 {
		t.Errorf("Stats() = (%d, %d), want (1, %d)", leads, shared, n-1)
	}
}

func TestFlightErrorShared(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	release := make(chan struct{})
	wait := launchFlight(t, &g, 4, func() (int, error) {
		return 0, boom
	}, release)
	close(release)
	for i, r := range wait() {
		if !errors.Is(r.err, boom) {
			t.Errorf("caller %d error = %v, want boom", i, r.err)
		}
	}
}

func TestFlightKeyForgottenAfterCompletion(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	fn := func() (int, error) { calls.Add(1); return int(calls.Load()), nil }
	v1, shared1, _ := g.Do("k", fn)
	v2, shared2, _ := g.Do("k", fn)
	if shared1 || shared2 {
		t.Fatal("sequential calls must not share")
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("got %d, %d; want 1, 2 (fn re-executed)", v1, v2)
	}
}

func TestFlightDistinctKeysConcurrent(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(i%5, func() (int, error) { return i % 5, nil })
			if err != nil {
				t.Errorf("key %d: %v", i%5, err)
			}
			if v != i%5 {
				t.Errorf("key %d got value %d", i%5, v)
			}
		}(i)
	}
	wg.Wait()
}

func TestFlightLeaderPanic(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	entered := make(chan struct{})
	joined := make(chan error, 1)

	// The leader runs in its own goroutine so its panic doesn't unwind the
	// test; the joiner enters after the leader is inside fn.
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("panic did not propagate to the leader")
			}
		}()
		g.Do("k", func() (int, error) {
			close(entered)
			<-release
			panic("leader exploded")
		})
	}()
	<-entered
	go func() {
		_, _, err := g.Do("k", func() (int, error) { return 7, nil })
		joined <- err
	}()
	time.Sleep(100 * time.Millisecond)
	close(release)

	err := <-joined
	// The joiner either joined the panicking flight (errFlightPanic) or, in a
	// rare schedule, entered after the key was dropped and led its own clean
	// flight — both are sound outcomes; hanging forever is the failure this
	// test guards against.
	if err != nil && !errors.Is(err, errFlightPanic) {
		t.Fatalf("joiner error = %v, want nil or errFlightPanic", err)
	}
	// The key must be usable again afterwards.
	v, shared, err := g.Do("k", func() (int, error) { return 9, nil })
	if v != 9 || shared || err != nil {
		t.Fatalf("post-panic Do = (%d, %v, %v), want (9, false, nil)", v, shared, err)
	}
}
