package cluster

import "sort"

// The consistent-hash ring assigns every graph fingerprint an owning peer.
// Each member peer contributes VirtualNodes points, hashed from its
// canonical URL, and a key is owned by the peer of the first point at or
// after the key's (remixed) hash, wrapping around. Two properties carry the
// cluster design:
//
//   - Determinism: the points depend only on the canonical peer URLs and the
//     vnode count, so every node that sees the same membership computes the
//     same owner for every fingerprint — which is what lets the owner's
//     single-flight group collapse a cluster-wide thundering herd into one
//     solve.
//   - Minimal remap: removing a peer removes only that peer's points, so
//     exactly the keys it owned move (≈1/N of the keyspace); adding a peer
//     only steals keys for the new peer. Keys never shuffle between
//     surviving peers, which keeps their caches warm across membership
//     changes.

// ringPoint is one virtual node: a position on the hash circle and the index
// of the peer that owns it.
type ringPoint struct {
	hash uint64
	peer int32
}

// ring is an immutable snapshot of the hash circle; Cluster swaps in a new
// one on every membership change.
type ring struct {
	points []ringPoint
}

// fnv64 is FNV-1a over s — the same family the graph fingerprints use, kept
// dependency-free.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler. Keys pass
// through it so ring placement is independent of any structure in the
// fingerprint (which is itself an FNV hash, a family with weak low bits),
// and vnode indices pass through it so one peer's points spread uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildRing places vnodes points for every member index over the canonical
// peer URLs. members may be any subset of peers (the alive set); the point
// positions of a given peer do not depend on which other peers are members,
// which is what gives the minimal-remap property.
func buildRing(peers []string, members []int, vnodes int) ring {
	pts := make([]ringPoint, 0, len(members)*vnodes)
	for _, pi := range members {
		base := fnv64(peers[pi])
		for v := 0; v < vnodes; v++ {
			h := mix64(base ^ mix64(uint64(v)+0x9e3779b97f4a7c15))
			pts = append(pts, ringPoint{hash: h, peer: int32(pi)})
		}
	}
	// Ties broken by peer index so every node sorts identically even in the
	// (astronomically unlikely) event of a point-hash collision.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].peer < pts[j].peer
	})
	return ring{points: pts}
}

// owner returns the peer index owning fingerprint fp, or -1 on an empty
// ring.
func (r ring) owner(fp uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	kh := mix64(fp)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0
	}
	return int(r.points[i].peer)
}
