// Package cluster federates N partitiond nodes into one logical solve cache.
//
// A consistent-hash ring over graph fingerprints (ring.go) assigns every
// task graph an owning node. A node that misses its local cache on a graph
// it does not own forwards the solve to the owner over the existing PSV1
// binary wire format (transport.go); the owner solves under a single-flight
// group (flight.go), so a thundering herd on one hot graph — hitting any
// subset of nodes — performs exactly one engine solve cluster-wide, and the
// result lands in the owner's cache plus the caches of every node that
// forwarded.
//
// Membership is a static peer list with optional periodic /healthz checking:
// a peer that fails its health check (or a forward) is marked dead and drops
// off the ring until a later check revives it. Ownership then falls to the
// remaining peers with minimal remapping. Forwarding is strictly
// best-effort — any forward failure falls back to solving locally, so a
// dead or draining owner degrades throughput and dedup, never availability.
// Forwarded requests carry the X-Partition-Internal header and are never
// re-forwarded, so transiently divergent membership views cannot form
// forwarding loops.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// InternalHeader marks a request as node-to-node traffic. Receivers treat
// the sender as the "peer" cache tier and never forward again (the hop
// guard: a request crosses at most one node boundary).
const InternalHeader = "X-Partition-Internal"

// TraceHeader carries distributed-trace context on node-to-node forwards,
// traceparent-style: "<32 hex trace-id>-<16 hex span-id>-<2 hex flags>".
// The receiver adopts the trace ID and parents its root span under the
// caller's span so the cluster renders one coherent tree per request. Only
// honored together with InternalHeader — external callers cannot inject
// trace context.
const TraceHeader = "X-Partition-Trace"

// SpansTrailer is the HTTP trailer on forwarded solve responses carrying
// the owner's span tree (base64 of the SpanNode JSON). A trailer — not a
// header — because the tree is only complete after the solve has run, and
// not a body extension because PRS1 frames must stay byte-identical whether
// or not a forward was traced.
const SpansTrailer = "X-Partition-Spans"

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's own advertised address; it must appear in Peers.
	Self string
	// Peers lists every cluster member including Self, as host:port or
	// http(s)://host:port. All nodes must be configured with the same set
	// (order-insensitive) for ownership to agree.
	Peers []string
	// HealthInterval is the period of the background /healthz sweep started
	// by Start (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one peer health probe (default 1s).
	HealthTimeout time.Duration
	// VirtualNodes is the points-per-peer on the hash ring (default 128).
	VirtualNodes int
	// Client issues forwards and health checks; nil gets a pooled default.
	Client *http.Client
	// Logger receives membership transitions; nil means slog.Default().
	Logger *slog.Logger
}

// PeerStatus is one peer's row in Status.
type PeerStatus struct {
	URL   string `json:"url"`
	Self  bool   `json:"self"`
	State string `json:"state"` // "alive" | "dead"
}

// ForwardStats counts forwarded solves by outcome. Hit/Miss report the
// owner's X-Cache answer for successful forwards; Errors counts forwards
// that failed outright (the caller then solved locally).
type ForwardStats struct {
	Hit    uint64 `json:"hit"`
	Miss   uint64 `json:"miss"`
	Errors uint64 `json:"errors"`
}

// Status is a point-in-time snapshot of the cluster from this node's view.
type Status struct {
	Self         string       `json:"self"`
	VirtualNodes int          `json:"virtualNodes"`
	Peers        []PeerStatus `json:"peers"`
	Alive        int          `json:"alive"`
	Forwards     ForwardStats `json:"forwards"`
}

// Cluster is one node's membership view plus the forwarding transport.
// Construct with New; optionally Start the health sweeper; Close releases
// it. All methods are safe for concurrent use.
type Cluster struct {
	peers    []string // canonical URLs, sorted — identical on every node
	self     int      // index of this node in peers
	vnodes   int
	interval time.Duration
	htimeout time.Duration
	client   *http.Client
	logger   *slog.Logger

	mu    sync.RWMutex
	alive []bool
	ring  ring

	fwdHit  atomic.Uint64
	fwdMiss atomic.Uint64
	fwdErr  atomic.Uint64

	done      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// normalizePeer canonicalizes a peer address to scheme://host:port. Bare
// host:port gets http. The canonical form is what gets hashed onto the
// ring, so every node must resolve a given peer to the same string.
func normalizePeer(addr string) (string, error) {
	addr = strings.TrimSpace(addr)
	if addr == "" {
		return "", errors.New("empty peer address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil {
		return "", fmt.Errorf("bad peer address %q: %v", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer address %q: scheme must be http or https", addr)
	}
	if u.Host == "" {
		return "", fmt.Errorf("peer address %q has no host", addr)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("peer address %q must be scheme://host:port with no path", addr)
	}
	return u.Scheme + "://" + u.Host, nil
}

// New validates and canonicalizes the peer set and builds the node's
// cluster view, with every peer initially presumed alive (the optimistic
// start keeps a cold cluster forwarding immediately; the first health sweep
// or failed forward corrects it).
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, errors.New("cluster: no peers configured")
	}
	peers := make([]string, 0, len(cfg.Peers))
	seen := make(map[string]bool, len(cfg.Peers))
	for _, p := range cfg.Peers {
		cp, err := normalizePeer(p)
		if err != nil {
			return nil, fmt.Errorf("cluster: %v", err)
		}
		if seen[cp] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", cp)
		}
		seen[cp] = true
		peers = append(peers, cp)
	}
	sort.Strings(peers)
	self, err := normalizePeer(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %v", err)
	}
	selfIdx := sort.SearchStrings(peers, self)
	if selfIdx == len(peers) || peers[selfIdx] != self {
		return nil, fmt.Errorf("cluster: self %s is not in the peer list %v", self, peers)
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.VirtualNodes <= 0 {
		cfg.VirtualNodes = 128
	}
	if cfg.Client == nil {
		cfg.Client = defaultClient()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	c := &Cluster{
		peers:    peers,
		self:     selfIdx,
		vnodes:   cfg.VirtualNodes,
		interval: cfg.HealthInterval,
		htimeout: cfg.HealthTimeout,
		client:   cfg.Client,
		logger:   cfg.Logger,
		alive:    make([]bool, len(peers)),
		done:     make(chan struct{}),
	}
	for i := range c.alive {
		c.alive[i] = true
	}
	c.rebuildLocked()
	return c, nil
}

// rebuildLocked recomputes the ring over the alive members. Callers hold
// c.mu (or, during New, exclusive access).
func (c *Cluster) rebuildLocked() {
	members := make([]int, 0, len(c.peers))
	for i, ok := range c.alive {
		if ok {
			members = append(members, i)
		}
	}
	c.ring = buildRing(c.peers, members, c.vnodes)
}

// Self returns this node's canonical address.
func (c *Cluster) Self() string { return c.peers[c.self] }

// Size returns the configured peer count, self included.
func (c *Cluster) Size() int { return len(c.peers) }

// Route returns the owning peer for a graph fingerprint under the current
// membership view. local is true when this node owns the fingerprint (or
// when every other peer is dead, in which case ownership degrades to
// solving locally rather than failing).
func (c *Cluster) Route(fp uint64) (peerURL string, local bool) {
	c.mu.RLock()
	owner := c.ring.owner(fp)
	c.mu.RUnlock()
	if owner < 0 || owner == c.self {
		return c.peers[c.self], true
	}
	return c.peers[owner], false
}

// setAlive records one peer's health-state, rebuilding the ring on a
// transition. Self never changes state. Reports whether the state changed.
func (c *Cluster) setAlive(i int, alive bool) bool {
	if i == c.self {
		return false
	}
	c.mu.Lock()
	changed := c.alive[i] != alive
	if changed {
		c.alive[i] = alive
		c.rebuildLocked()
	}
	c.mu.Unlock()
	if changed {
		state := "dead"
		if alive {
			state = "alive"
		}
		c.logger.Info("cluster peer state change", "peer", c.peers[i], "state", state)
	}
	return changed
}

// ReportFailure marks a peer dead after a failed forward — passive failure
// detection that works even when the health sweeper is not running. A later
// successful health check revives the peer.
func (c *Cluster) ReportFailure(peerURL string) {
	i := sort.SearchStrings(c.peers, peerURL)
	if i == len(c.peers) || c.peers[i] != peerURL {
		return
	}
	c.setAlive(i, false)
}

// Sweep health-checks every remote peer once, updating membership. Start
// runs this periodically; tests and callers without the background loop may
// invoke it directly.
func (c *Cluster) Sweep(ctx context.Context) {
	for i, u := range c.peers {
		if i == c.self {
			continue
		}
		c.setAlive(i, c.checkPeer(ctx, u))
	}
}

// Start launches the periodic health sweeper. Idempotent; pair with Close.
func (c *Cluster) Start() {
	c.startOnce.Do(func() {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			t := time.NewTicker(c.interval)
			defer t.Stop()
			// No immediate sweep: peers start optimistically alive, and a
			// probe fired during a simultaneous fleet start would mark
			// still-binding peers dead for a whole interval. The first
			// ticked sweep catches genuinely dead peers soon enough, and
			// passive detection (ReportFailure) covers the gap.
			for {
				select {
				case <-c.done:
					return
				case <-t.C:
					c.Sweep(context.Background())
				}
			}
		}()
	})
}

// Close stops the health sweeper and idle-closes the transport. Idempotent.
func (c *Cluster) Close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.wg.Wait()
		c.client.CloseIdleConnections()
	})
}

// Status snapshots membership and forward counters.
func (c *Cluster) Status() Status {
	st := Status{
		Self:         c.peers[c.self],
		VirtualNodes: c.vnodes,
		Forwards: ForwardStats{
			Hit:    c.fwdHit.Load(),
			Miss:   c.fwdMiss.Load(),
			Errors: c.fwdErr.Load(),
		},
	}
	c.mu.RLock()
	st.Peers = make([]PeerStatus, len(c.peers))
	for i, u := range c.peers {
		state := "dead"
		if c.alive[i] {
			state = "alive"
			st.Alive++
		}
		st.Peers[i] = PeerStatus{URL: u, Self: i == c.self, State: state}
	}
	c.mu.RUnlock()
	return st
}
