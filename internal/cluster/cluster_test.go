package cluster

import (
	"context"
	"encoding/base64"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestNormalizePeer(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"localhost:8080", "http://localhost:8080", true},
		{"http://localhost:8080", "http://localhost:8080", true},
		{"https://node.example:443", "https://node.example:443", true},
		{" 10.0.0.1:9000 ", "http://10.0.0.1:9000", true},
		{"http://localhost:8080/", "http://localhost:8080", true},
		{"", "", false},
		{"ftp://x:21", "", false},
		{"http://", "", false},
		{"http://host:8080/path", "", false},
		{"http://host:8080?q=1", "", false},
	}
	for _, c := range cases {
		got, err := normalizePeer(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("normalizePeer(%q) = (%q, %v), want (%q, nil)", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("normalizePeer(%q) = %q, want error", c.in, got)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Self: "a:1", Peers: nil}); err == nil {
		t.Error("New with no peers: want error")
	}
	if _, err := New(Config{Self: "c:3", Peers: []string{"a:1", "b:2"}}); err == nil {
		t.Error("New with self missing from peers: want error")
	}
	if _, err := New(Config{Self: "a:1", Peers: []string{"a:1", "http://a:1"}}); err == nil {
		t.Error("New with duplicate peers (after normalization): want error")
	}
	c, err := New(Config{Self: "b:2", Peers: []string{"b:2", "a:1"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	if got := c.Self(); got != "http://b:2" {
		t.Errorf("Self() = %q, want %q", got, "http://b:2")
	}
	if c.Size() != 2 {
		t.Errorf("Size() = %d, want 2", c.Size())
	}
}

// TestRouteAgreement: every node, given the same peer list in any order,
// routes every fingerprint to the same owner.
func TestRouteAgreement(t *testing.T) {
	peers := []string{"n1:1", "n2:2", "n3:3"}
	shuffled := []string{"n3:3", "n1:1", "n2:2"}
	a, err := New(Config{Self: "n1:1", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(Config{Self: "n2:2", Peers: shuffled})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for fp := uint64(0); fp < 2000; fp++ {
		pa, la := a.Route(fp * 0x9e3779b97f4a7c15)
		pb, lb := b.Route(fp * 0x9e3779b97f4a7c15)
		ownerA, ownerB := pa, pb
		if la {
			ownerA = a.Self()
		}
		if lb {
			ownerB = b.Self()
		}
		if ownerA != ownerB {
			t.Fatalf("fp %d: node a routes to %s, node b to %s", fp, ownerA, ownerB)
		}
	}
}

func TestReportFailureFailsOverToSurvivors(t *testing.T) {
	peers := []string{"n1:1", "n2:2", "n3:3"}
	c, err := New(Config{Self: "n1:1", Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a fingerprint owned by n2.
	var fp uint64
	for fp = 1; ; fp++ {
		if peer, local := c.Route(fp); !local && peer == "http://n2:2" {
			break
		}
	}
	c.ReportFailure("http://n2:2")
	if peer, local := c.Route(fp); !local && peer == "http://n2:2" {
		t.Fatal("fingerprint still routed to a dead peer")
	}
	st := c.Status()
	if st.Alive != 2 {
		t.Errorf("Alive = %d after one failure, want 2", st.Alive)
	}
	// Unknown peers are ignored.
	c.ReportFailure("http://nope:9")
	if c.Status().Alive != 2 {
		t.Error("ReportFailure of unknown peer changed membership")
	}

	// With every remote peer dead, everything routes locally.
	c.ReportFailure("http://n3:3")
	for probe := uint64(0); probe < 500; probe++ {
		if _, local := c.Route(probe); !local {
			t.Fatal("routing to a dead peer with all remotes down")
		}
	}
}

func TestSweepMarksDeadAndRevives(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("health probe hit %s, want /healthz", r.URL.Path)
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable) // draining
		}
	}))
	defer peer.Close()

	c, err := New(Config{
		Self:          "self:1",
		Peers:         []string{"self:1", peer.URL},
		HealthTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Sweep(context.Background())
	if got := c.Status().Alive; got != 2 {
		t.Fatalf("Alive after healthy sweep = %d, want 2", got)
	}
	healthy.Store(false) // 503s must drop the peer (draining ≠ alive)
	c.Sweep(context.Background())
	if got := c.Status().Alive; got != 1 {
		t.Fatalf("Alive after unhealthy sweep = %d, want 1", got)
	}
	healthy.Store(true)
	c.Sweep(context.Background())
	if got := c.Status().Alive; got != 2 {
		t.Fatalf("Alive after revival sweep = %d, want 2", got)
	}
}

func TestForwardSolve(t *testing.T) {
	const frame = "PSV1-fake-request"
	const reply = "PRS1-fake-response"
	const spanTree = `{"name":"solve bandwidth"}`
	const traceHdr = "0123456789abcdef0123456789abcdef-0123456789abcdef-01"
	var sawInternal, sawRequestID, sawTrace atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/solve" || r.Method != http.MethodPost {
			t.Errorf("forward hit %s %s, want POST /v1/solve", r.Method, r.URL.Path)
		}
		sawInternal.Store(r.Header.Get(InternalHeader) != "")
		sawRequestID.Store(r.Header.Get("X-Request-Id") == "req-123")
		sawTrace.Store(r.Header.Get(TraceHeader) == traceHdr)
		w.Header().Set("X-Cache", "HIT")
		w.Header().Set("Trailer", SpansTrailer)
		w.Write([]byte(reply))
		w.Header().Set(SpansTrailer, base64.StdEncoding.EncodeToString([]byte(spanTree)))
	}))
	defer peer.Close()

	c, err := New(Config{Self: "self:1", Peers: []string{"self:1", peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	body, hit, spans, err := c.ForwardSolve(context.Background(), peer.URL, []byte(frame), "req-123", traceHdr)
	if err != nil {
		t.Fatalf("ForwardSolve: %v", err)
	}
	if string(body) != reply {
		t.Errorf("body = %q, want %q", body, reply)
	}
	if !hit {
		t.Error("cacheHit = false, want true (peer said X-Cache: HIT)")
	}
	if !sawInternal.Load() {
		t.Error("forward did not carry the internal hop-guard header")
	}
	if !sawRequestID.Load() {
		t.Error("forward did not carry the request ID")
	}
	if !sawTrace.Load() {
		t.Error("forward did not carry the trace header")
	}
	if string(spans) != spanTree {
		t.Errorf("trailer spans = %q, want %q", spans, spanTree)
	}
	st := c.Status()
	if st.Forwards.Hit != 1 || st.Forwards.Miss != 0 || st.Forwards.Errors != 0 {
		t.Errorf("forward stats = %+v, want exactly one hit", st.Forwards)
	}
}

func TestForwardSolveStatusErrorKeepsPeerAlive(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "admission queue full", http.StatusTooManyRequests)
	}))
	defer peer.Close()

	c, err := New(Config{Self: "self:1", Peers: []string{"self:1", peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, _, err = c.ForwardSolve(context.Background(), peer.URL, []byte("x"), "", "")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.Code != http.StatusTooManyRequests || !strings.Contains(se.Body, "admission queue full") {
		t.Errorf("StatusError = %+v", se)
	}
	st := c.Status()
	if st.Alive != 2 {
		t.Errorf("peer marked dead on an HTTP-level rejection; Alive = %d, want 2", st.Alive)
	}
	if st.Forwards.Errors != 1 {
		t.Errorf("Forwards.Errors = %d, want 1", st.Forwards.Errors)
	}
}

func TestForwardSolveTransportErrorMarksPeerDead(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	peer.Close() // connection refused from here on

	c, err := New(Config{Self: "self:1", Peers: []string{"self:1", peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, _, err := c.ForwardSolve(context.Background(), peer.URL, []byte("x"), "", ""); err == nil {
		t.Fatal("ForwardSolve to a closed peer: want error")
	}
	st := c.Status()
	if st.Alive != 1 {
		t.Errorf("Alive = %d after transport failure, want 1 (peer dead)", st.Alive)
	}
	if st.Forwards.Errors != 1 {
		t.Errorf("Forwards.Errors = %d, want 1", st.Forwards.Errors)
	}
}

func TestForwardSolveCallerCancelDoesNotMarkDead(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Outlast the caller's 50ms deadline, then answer normally so the
		// test server can close. (Blocking on r.Context() would hang: the
		// server doesn't watch the connection while the body is unread.)
		io.Copy(io.Discard, r.Body)
		time.Sleep(300 * time.Millisecond)
	}))
	defer peer.Close()

	c, err := New(Config{Self: "self:1", Peers: []string{"self:1", peer.URL}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, _, _, err := c.ForwardSolve(ctx, peer.URL, []byte("x"), "", ""); err == nil {
		t.Fatal("want error on canceled forward")
	}
	if got := c.Status().Alive; got != 2 {
		t.Errorf("Alive = %d, want 2 (caller timeout says nothing about the peer)", got)
	}
}

func TestStartStopsOnClose(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer peer.Close()
	c, err := New(Config{
		Self:           "self:1",
		Peers:          []string{"self:1", peer.URL},
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Start() // idempotent
	time.Sleep(30 * time.Millisecond)
	c.Close()
	c.Close() // idempotent
}
