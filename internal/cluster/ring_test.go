package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return peers
}

func allMembers(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// testKeys returns a deterministic spread of fingerprint-like keys. The remix
// in owner() means sequential inputs are fine.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)*0x9e3779b97f4a7c15 + 12345
	}
	return keys
}

func TestRingBalance(t *testing.T) {
	peers := testPeers(3)
	r := buildRing(peers, allMembers(3), 128)
	counts := make([]int, 3)
	keys := testKeys(30000)
	for _, k := range keys {
		counts[r.owner(k)]++
	}
	min, max := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if min == 0 {
		t.Fatalf("a peer owns no keys: %v", counts)
	}
	// 128 vnodes keeps the spread tight; 1.5x max/min is a loose bound that
	// still catches broken hashing (which lands near N:0:0).
	if ratio := float64(max) / float64(min); ratio > 1.5 {
		t.Errorf("load imbalance max/min = %.2f (counts %v), want <= 1.5", ratio, counts)
	}
}

func TestRingMinimalRemapOnLeave(t *testing.T) {
	peers := testPeers(5)
	full := buildRing(peers, allMembers(5), 128)
	const removed = 2
	reduced := buildRing(peers, []int{0, 1, 3, 4}, 128)

	keys := testKeys(20000)
	var moved, owned int
	for _, k := range keys {
		before := full.owner(k)
		after := reduced.owner(k)
		if before == removed {
			owned++
			if after == removed {
				t.Fatalf("key %#x still owned by removed peer", k)
			}
			continue
		}
		// Exactness, not a bound: a key not owned by the removed peer must
		// keep its owner, because no other peer's points moved.
		if before != after {
			moved++
			t.Errorf("key %#x moved %d -> %d though peer %d left", k, before, after, removed)
			if moved > 5 {
				t.Fatal("too many spurious moves; stopping")
			}
		}
	}
	if owned == 0 {
		t.Fatal("removed peer owned no keys; test is vacuous")
	}
	// ~1/5 of keys should have been on the removed peer; allow wide slack.
	if frac := float64(owned) / float64(len(keys)); frac > 0.35 {
		t.Errorf("removed peer owned %.0f%% of keys, want ~20%%", frac*100)
	}
}

func TestRingMinimalRemapOnJoin(t *testing.T) {
	peers := testPeers(4)
	three := buildRing(peers, []int{0, 1, 2}, 128)
	four := buildRing(peers, allMembers(4), 128)

	keys := testKeys(20000)
	var stolen int
	for _, k := range keys {
		before := three.owner(k)
		after := four.owner(k)
		if after == 3 {
			stolen++
			continue
		}
		if before != after {
			t.Fatalf("key %#x moved %d -> %d on join of peer 3", k, before, after)
		}
	}
	if stolen == 0 {
		t.Fatal("joining peer stole no keys")
	}
	if frac := float64(stolen) / float64(len(keys)); frac > 0.40 {
		t.Errorf("joining peer took %.0f%% of keys, want ~25%%", frac*100)
	}
}

func TestRingDeterministic(t *testing.T) {
	peers := testPeers(3)
	a := buildRing(peers, allMembers(3), 128)
	b := buildRing(peers, []int{2, 0, 1}, 128) // member order must not matter
	for _, k := range testKeys(5000) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("owner of %#x differs with member order: %d vs %d", k, a.owner(k), b.owner(k))
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, nil, 128)
	if got := r.owner(42); got != -1 {
		t.Fatalf("owner on empty ring = %d, want -1", got)
	}
}
