package cluster

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errFlightPanic is what waiters observe when the leader's function panics:
// the panic propagates in the leader's goroutine, and everyone who joined
// the flight gets this error instead of hanging forever.
var errFlightPanic = errors.New("cluster: singleflight leader panicked")

// flightCall is one in-flight execution; joiners wait on wg and then read
// val/err, which the leader writes before wg.Done.
type flightCall[V any] struct {
	wg  sync.WaitGroup
	val V
	err error
}

// Group is a duplicate-call suppressor (a "single-flight" group): concurrent
// Do calls with the same key execute fn exactly once and share the one
// result. It is the dedup layer in front of the solve engine — N identical
// cache misses perform one solve — and, because forwarded cluster requests
// land on the owner with the same key as its local misses, the same group
// also collapses a cluster-wide thundering herd once requests are routed by
// fingerprint ownership.
//
// Unlike a cache, a Group holds no completed results: as soon as the leader
// finishes, the key is forgotten and the next Do runs fn again (by then the
// result cache answers). Errors are shared with every waiter of that flight
// and never retained. The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*flightCall[V]

	leads  atomic.Uint64 // executions of fn
	shared atomic.Uint64 // results served from another caller's execution
}

// Do executes fn once per concurrent set of callers with the same key.
// The leader (the first caller in) runs fn on its own goroutine stack;
// everyone else blocks until the leader finishes and receives the same
// value and error, with shared = true.
//
// Joining is deliberate: a waiter is not canceled when its own request
// context ends, because the result is already being computed on the
// leader's budget and will be shared the moment it lands.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*flightCall[V])
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		g.shared.Add(1)
		return c.val, true, c.err
	}
	c := new(flightCall[V])
	c.err = errFlightPanic // overwritten on normal return; seen only on panic
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	g.leads.Add(1)
	defer func() {
		// Runs on normal return and on panic alike: drop the key so later
		// calls start fresh, then release the waiters. A panic propagates in
		// the leader; waiters see errFlightPanic.
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.wg.Done()
	}()
	c.val, c.err = fn()
	return c.val, false, c.err
}

// Stats reports how many flights were led (fn executions) and how many
// callers were served by joining another caller's flight.
func (g *Group[K, V]) Stats() (leads, shared uint64) {
	return g.leads.Load(), g.shared.Load()
}
