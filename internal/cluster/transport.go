package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/codec"
)

// defaultClient builds the node-to-node HTTP client: generous connection
// pooling per peer (forwards are the hot path under load) and a bounded
// dial, with no overall client timeout — each forward carries its own
// context deadline sized to the solve it asks for.
func defaultClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// StatusError is a forward that reached the peer but came back non-200 —
// the peer is alive and answered (overloaded, draining, or rejecting the
// request); it is not marked dead for these.
type StatusError struct {
	Code int
	Body string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("peer returned HTTP %d: %s", e.Code, e.Body)
}

// maxSpansTrailer bounds the decoded size of a peer's span-tree trailer.
// A span tree for one request is a few KiB; anything near this limit is a
// misbehaving peer and the trailer is dropped, never the response.
const maxSpansTrailer = 1 << 20

// ForwardSolve posts a PSV1 solve frame to the owning peer's /v1/solve and
// returns the raw PRS1 response bytes plus whether the owner answered from
// its cache. The request is tagged with InternalHeader so the owner never
// re-forwards, and with the caller's request ID so log lines and traces
// join across the hop. A non-empty traceHeader (see TraceHeader) propagates
// the caller's trace context; when the owner traced its side, the returned
// spans hold its span tree JSON (decoded from the SpansTrailer trailer),
// ready to graft under the caller's cluster-forward span. A malformed
// trailer yields nil spans, never an error — tracing is best-effort,
// results are not.
//
// Transport-level failures (dial, write, read) mark the peer dead via
// ReportFailure — unless the caller's own context ended, which says nothing
// about the peer. HTTP-level failures come back as *StatusError and leave
// membership alone. Either way the caller is expected to fall back to a
// local solve.
func (c *Cluster) ForwardSolve(ctx context.Context, peerURL string, frame []byte, requestID, traceHeader string) (body []byte, cacheHit bool, spans []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peerURL+"/v1/solve", bytes.NewReader(frame))
	if err != nil {
		c.fwdErr.Add(1)
		return nil, false, nil, err
	}
	req.Header.Set("Content-Type", codec.ContentType)
	req.Header.Set("Accept", codec.ContentType)
	req.Header.Set(InternalHeader, "1")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	if traceHeader != "" {
		req.Header.Set(TraceHeader, traceHeader)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		c.fwdErr.Add(1)
		if ctx.Err() == nil {
			c.ReportFailure(peerURL)
		}
		return nil, false, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		c.fwdErr.Add(1)
		return nil, false, nil, &StatusError{Code: resp.StatusCode, Body: strings.TrimSpace(string(msg))}
	}
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		c.fwdErr.Add(1)
		if ctx.Err() == nil {
			c.ReportFailure(peerURL)
		}
		return nil, false, nil, err
	}
	cacheHit = resp.Header.Get("X-Cache") == "HIT"
	if cacheHit {
		c.fwdHit.Add(1)
	} else {
		c.fwdMiss.Add(1)
	}
	// Trailers are only populated after the body has been fully read.
	if enc := resp.Trailer.Get(SpansTrailer); enc != "" && base64.StdEncoding.DecodedLen(len(enc)) <= maxSpansTrailer {
		if dec, derr := base64.StdEncoding.DecodeString(enc); derr == nil {
			spans = dec
		}
	}
	return body, cacheHit, spans, nil
}

// checkPeer probes one peer's /healthz under the health timeout. Only a
// clean 200 counts as alive — a draining node answers 503 and must stop
// receiving forwards before it stops serving.
func (c *Cluster) checkPeer(ctx context.Context, peerURL string) bool {
	hctx, cancel := context.WithTimeout(ctx, c.htimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, peerURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
