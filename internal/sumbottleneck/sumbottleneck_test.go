package sumbottleneck

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/ccp"
	"repro/internal/workload"
)

// brute enumerates all break sets for small chains.
func brute(t *testing.T, w, e []int64, m int) int64 {
	t.Helper()
	in, err := newInstance(w, e, m)
	if err != nil {
		t.Fatalf("newInstance: %v", err)
	}
	n := in.n
	best := inf
	// Breaks are subsets of positions 1..n-1 with ≤ m-1 elements.
	for mask := 0; mask < 1<<(n-1); mask++ {
		var breaks []int
		for p := 1; p < n; p++ {
			if mask&(1<<(p-1)) != 0 {
				breaks = append(breaks, p)
			}
		}
		if len(breaks) > m-1 {
			continue
		}
		if r := in.finalize(breaks); r.Bottleneck < best {
			best = r.Bottleneck
		}
	}
	return best
}

func solvers() []struct {
	name string
	f    func([]int64, []int64, int) (*Result, error)
} {
	return []struct {
		name string
		f    func([]int64, []int64, int) (*Result, error)
	}{
		{"DP", SolveDP},
		{"Probe", SolveProbe},
	}
}

func TestHandCases(t *testing.T) {
	tests := []struct {
		name string
		w    []int64
		e    []int64
		m    int
		want int64
	}{
		{"single module", []int64{7}, nil, 3, 7},
		{"one block", []int64{1, 2, 3}, []int64{10, 10}, 1, 6},
		{
			// Splitting costs boundary edges: {1,2}+{3} = max(1+2+5, 3+5)=8;
			// one block = 6. One block wins despite imbalance.
			"comm discourages splitting",
			[]int64{1, 2, 3}, []int64{9, 5}, 2, 6,
		},
		{
			// Cheap middle edge invites a split: {10}+{10} with edge 1 =
			// max(11, 11) = 11 < 20.
			"cheap edge invites split",
			[]int64{10, 10}, []int64{1}, 2, 11,
		},
		{
			"m larger than n",
			[]int64{4, 4}, []int64{0}, 10, 4,
		},
	}
	for _, tt := range tests {
		for _, s := range solvers() {
			t.Run(tt.name+"/"+s.name, func(t *testing.T) {
				got, err := s.f(tt.w, tt.e, tt.m)
				if err != nil {
					t.Fatalf("%v", err)
				}
				if got.Bottleneck != tt.want {
					t.Errorf("Bottleneck = %d (breaks %v), want %d", got.Bottleneck, got.Breaks, tt.want)
				}
				if got.Blocks > tt.m {
					t.Errorf("blocks %d > m %d", got.Blocks, tt.m)
				}
			})
		}
	}
}

func TestErrors(t *testing.T) {
	for _, s := range solvers() {
		if _, err := s.f(nil, nil, 1); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s empty: %v", s.name, err)
		}
		if _, err := s.f([]int64{1, 2}, []int64{1, 2}, 1); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s edge count: %v", s.name, err)
		}
		if _, err := s.f([]int64{1}, nil, 0); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s m=0: %v", s.name, err)
		}
		if _, err := s.f([]int64{-1}, nil, 1); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s negative: %v", s.name, err)
		}
	}
}

func TestSolversMatchBrute(t *testing.T) {
	r := workload.NewRNG(1988)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(11)
		w := make([]int64, n)
		e := make([]int64, n-1)
		for i := range w {
			w[i] = int64(r.Intn(30))
		}
		for i := range e {
			e[i] = int64(r.Intn(30))
		}
		m := 1 + r.Intn(5)
		want := brute(t, w, e, m)
		for _, s := range solvers() {
			got, err := s.f(w, e, m)
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			if got.Bottleneck != want {
				t.Fatalf("%s = %d, brute = %d\nw=%v e=%v m=%d breaks=%v",
					s.name, got.Bottleneck, want, w, e, m, got.Breaks)
			}
		}
	}
}

func TestZeroEdgesReducesToCCP(t *testing.T) {
	r := workload.NewRNG(55)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(60)
		w := make([]int64, n)
		for i := range w {
			w[i] = int64(r.Intn(50))
		}
		e := make([]int64, n-1)
		m := 1 + r.Intn(8)
		sb, err := SolveProbe(w, e, m)
		if err != nil {
			t.Fatalf("SolveProbe: %v", err)
		}
		cc, err := ccp.SolveProbe(w, m)
		if err != nil {
			t.Fatalf("ccp: %v", err)
		}
		if sb.Bottleneck != cc.Bottleneck {
			t.Fatalf("zero-edge sum-bottleneck %d != ccp %d (w=%v m=%d)",
				sb.Bottleneck, cc.Bottleneck, w, m)
		}
	}
}

func TestLargeAgreement(t *testing.T) {
	r := workload.NewRNG(77)
	for trial := 0; trial < 10; trial++ {
		n := 300 + r.Intn(500)
		w := make([]int64, n)
		e := make([]int64, n-1)
		for i := range w {
			w[i] = int64(1 + r.Intn(100))
		}
		for i := range e {
			e[i] = int64(r.Intn(80))
		}
		m := 2 + r.Intn(20)
		dp, err := SolveDP(w, e, m)
		if err != nil {
			t.Fatalf("dp: %v", err)
		}
		probe, err := SolveProbe(w, e, m)
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		if dp.Bottleneck != probe.Bottleneck {
			t.Fatalf("DP %d != probe %d (n=%d m=%d)", dp.Bottleneck, probe.Bottleneck, n, m)
		}
	}
}

// Property: the reported breaks reproduce the reported bottleneck, and more
// processors never hurt.
func TestResultConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(80)
		w := make([]int64, n)
		e := make([]int64, n-1)
		for i := range w {
			w[i] = int64(r.Intn(40))
		}
		for i := range e {
			e[i] = int64(r.Intn(40))
		}
		in, err := newInstance(w, e, 1)
		if err != nil {
			return false
		}
		prev := inf
		for m := 1; m <= 6; m++ {
			res, err := SolveProbe(w, e, m)
			if err != nil {
				return false
			}
			if in.finalize(res.Breaks).Bottleneck != res.Bottleneck {
				return false
			}
			if res.Bottleneck > prev {
				return false
			}
			prev = res.Bottleneck
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
