// Package sumbottleneck implements Bokhari's sum-bottleneck chain
// partitioning — the concrete prior-work problem behind the complexity
// comparison in §1: partition a chain of modules over the processors of a
// linear array so that the maximum per-processor cost is minimized, where a
// processor's cost is the total weight of its modules PLUS the weight of
// the chain edges it shares with its neighbours (the interprocessor
// communication Bokhari charges to both ends, and that the paper points out
// shared-memory machines pay on the common network instead).
//
// Formally: modules 0..n−1 with weights w, edges e_0..e_{n-2}; a partition
// into at most m contiguous blocks; block [a, b] costs
//
//	Σ_{i=a..b} w_i + E(a) + E(b+1)
//
// with E(j) the weight of the boundary edge at position j (0 at the chain
// ends). Minimize the maximum block cost.
//
// Two exact solvers over integer weights:
//
//   - SolveDP — the layered dynamic program over Bokhari's assignment graph
//     (sum-bottleneck shortest path), O(n²·m). Bokhari's original ran in
//     O(n³·m); the DP formulation here is the standard tightening credited
//     to Nicol & O'Hallaron.
//   - SolveProbe — binary search on the bottleneck value with an
//     O(n log n) feasibility DP per probe: a block [k, i−1] fits under B iff
//     E(k) − prefix(k) ≤ B − E(i) − prefix(i), so the minimum-blocks
//     recurrence is a prefix-minimum query over a key order, served by a
//     min-Fenwick tree. O(n log n · log Σw) total.
//
// With all edge weights zero the problem degenerates to chains-on-chains
// (package ccp); tests exploit that equivalence as a cross-check.
package sumbottleneck

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadInput is returned for empty chains, bad m, or negative weights.
var ErrBadInput = errors.New("sumbottleneck: bad input")

// Result is a partition of the chain.
type Result struct {
	// Breaks lists the boundary positions (a break at position p separates
	// modules p−1 and p), increasing, excluding the chain ends.
	Breaks []int
	// Bottleneck is the maximum block cost.
	Bottleneck int64
	// Blocks is the number of blocks used (≤ m).
	Blocks int
}

type instance struct {
	w, e   []int64
	prefix []int64 // prefix[i] = Σ w[0..i-1]
	n      int
}

func newInstance(w, e []int64, m int) (*instance, error) {
	if len(w) == 0 {
		return nil, fmt.Errorf("empty chain: %w", ErrBadInput)
	}
	if len(e) != len(w)-1 {
		return nil, fmt.Errorf("%d modules need %d edges, have %d: %w", len(w), len(w)-1, len(e), ErrBadInput)
	}
	if m <= 0 {
		return nil, fmt.Errorf("m = %d: %w", m, ErrBadInput)
	}
	for i, x := range w {
		if x < 0 {
			return nil, fmt.Errorf("w[%d] = %d: %w", i, x, ErrBadInput)
		}
	}
	for i, x := range e {
		if x < 0 {
			return nil, fmt.Errorf("e[%d] = %d: %w", i, x, ErrBadInput)
		}
	}
	in := &instance{w: w, e: e, n: len(w), prefix: make([]int64, len(w)+1)}
	for i, x := range w {
		in.prefix[i+1] = in.prefix[i] + x
	}
	return in, nil
}

// boundary returns E(j): the edge weight at boundary position j (between
// modules j−1 and j), 0 at the chain ends.
func (in *instance) boundary(j int) int64 {
	if j <= 0 || j >= in.n {
		return 0
	}
	return in.e[j-1]
}

// blockCost is the cost of the block covering modules a..b inclusive.
func (in *instance) blockCost(a, b int) int64 {
	return in.prefix[b+1] - in.prefix[a] + in.boundary(a) + in.boundary(b+1)
}

// finalize builds a Result from break positions.
func (in *instance) finalize(breaks []int) *Result {
	res := &Result{Breaks: breaks, Blocks: len(breaks) + 1}
	a := 0
	for _, p := range breaks {
		if c := in.blockCost(a, p-1); c > res.Bottleneck {
			res.Bottleneck = c
		}
		a = p
	}
	if c := in.blockCost(a, in.n-1); c > res.Bottleneck {
		res.Bottleneck = c
	}
	return res
}

const inf = int64(1) << 62

// SolveDP runs the layered dynamic program: O(n²·m) time, O(n·m) space for
// reconstruction.
func SolveDP(w, e []int64, m int) (*Result, error) {
	in, err := newInstance(w, e, m)
	if err != nil {
		return nil, err
	}
	n := in.n
	if m > n {
		m = n
	}
	// cur[i] = optimal bottleneck covering modules 0..i-1 (boundary at i)
	// with the current number of blocks.
	prev := make([]int64, n+1)
	cur := make([]int64, n+1)
	split := make([][]int32, m+1)
	for i := 0; i <= n; i++ {
		prev[i] = inf
		if i > 0 {
			prev[i] = in.blockCost(0, i-1)
		}
	}
	prev[0] = 0
	for j := 2; j <= m; j++ {
		split[j] = make([]int32, n+1)
		for i := 0; i <= n; i++ {
			cur[i] = prev[i] // using fewer blocks is always allowed
			split[j][i] = -1
			for k := 1; k < i; k++ {
				if prev[k] == inf {
					continue
				}
				v := prev[k]
				if c := in.blockCost(k, i-1); c > v {
					v = c
				}
				if v < cur[i] {
					cur[i] = v
					split[j][i] = int32(k)
				}
			}
		}
		prev, cur = cur, prev
		// Keep the split rows aligned with the buffer that produced them:
		// prev now holds level j.
	}
	// Reconstruct from level m downwards; split = −1 at a level means the
	// optimum there already used fewer blocks, so only the level drops.
	var breaks []int
	i := n
	for j := m; j >= 2 && i > 0; j-- {
		k := split[j][i]
		if k <= 0 {
			continue
		}
		breaks = append(breaks, int(k))
		i = int(k)
	}
	sort.Ints(breaks)
	return in.finalize(breaks), nil
}

// fenwickMin is a Fenwick tree over prefix minima of (value, argmin) pairs.
type fenwickMin struct {
	val []int64
	arg []int32
}

func newFenwickMin(n int) *fenwickMin {
	f := &fenwickMin{val: make([]int64, n+1), arg: make([]int32, n+1)}
	for i := range f.val {
		f.val[i] = inf
		f.arg[i] = -1
	}
	return f
}

// update lowers the value at 1-based position pos.
func (f *fenwickMin) update(pos int, v int64, arg int32) {
	for ; pos < len(f.val); pos += pos & -pos {
		if v < f.val[pos] {
			f.val[pos] = v
			f.arg[pos] = arg
		}
	}
}

// query returns the minimum (and argmin) over positions 1..pos.
func (f *fenwickMin) query(pos int) (int64, int32) {
	best, arg := inf, int32(-1)
	for ; pos > 0; pos -= pos & -pos {
		if f.val[pos] < best {
			best = f.val[pos]
			arg = f.arg[pos]
		}
	}
	return best, arg
}

// probe computes the minimum number of blocks with every block cost ≤ b,
// returning n+1 when infeasible, plus the parent links for reconstruction.
func (in *instance) probe(b int64, keys []int64, rank []int) (int, []int32) {
	n := in.n
	g := make([]int64, n+1)
	parent := make([]int32, n+1)
	fw := newFenwickMin(n + 1)
	g[0] = 0
	parent[0] = -1
	fw.update(rank[0], 0, 0)
	for i := 1; i <= n; i++ {
		// Feasible predecessors k: key(k) = E(k) − prefix(k) ≤ c.
		c := b - in.boundary(i) - in.prefix[i]
		// Number of keys ≤ c.
		cnt := sort.Search(len(keys), func(x int) bool { return keys[x] > c })
		g[i] = inf
		parent[i] = -1
		if cnt > 0 {
			if v, arg := fw.query(cnt); v < inf {
				g[i] = v + 1
				parent[i] = arg
			}
		}
		if i < n && g[i] < inf {
			fw.update(rank[i], g[i], int32(i))
		}
	}
	if g[n] >= inf {
		// Sentinel strictly above any possible block count (callers clamp
		// m ≤ n).
		return n + 2, parent
	}
	return int(g[n]), parent
}

// SolveProbe runs the binary search on the bottleneck with the Fenwick
// feasibility DP: O(n log n · log Σw).
func SolveProbe(w, e []int64, m int) (*Result, error) {
	in, err := newInstance(w, e, m)
	if err != nil {
		return nil, err
	}
	n := in.n
	if m > n {
		m = n // more blocks than modules can never help
	}
	// key(k) for boundaries k = 0..n−1 (positions a block may start at).
	key := make([]int64, n)
	for k := 0; k < n; k++ {
		key[k] = in.boundary(k) - in.prefix[k]
	}
	sorted := append([]int64(nil), key...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	rank := make([]int, n)
	for k := 0; k < n; k++ {
		rank[k] = sort.Search(len(sorted), func(x int) bool { return sorted[x] >= key[k] }) + 1
	}
	lo, hi := int64(0), in.prefix[n]
	for lo < hi {
		mid := lo + (hi-lo)/2
		if blocks, _ := in.probe(mid, sorted, rank); blocks <= m {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	blocks, parent := in.probe(lo, sorted, rank)
	if blocks > m {
		// Unreachable: a single block of cost prefix[n] is always feasible.
		return nil, fmt.Errorf("no partition found: %w", ErrBadInput)
	}
	var breaks []int
	for i := parent[n]; i > 0; i = parent[i] {
		breaks = append(breaks, int(i))
	}
	sort.Ints(breaks)
	return in.finalize(breaks), nil
}
