package logicsim

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/linearize"
	"repro/internal/workload"
)

func TestArrayMultiplierComputesProducts(t *testing.T) {
	const bits = 6
	m, err := ArrayMultiplier(bits)
	if err != nil {
		t.Fatalf("ArrayMultiplier: %v", err)
	}
	r := workload.NewRNG(9)
	for trial := 0; trial < 60; trial++ {
		a := uint64(r.Intn(1 << bits))
		b := uint64(r.Intn(1 << bits))
		prof, err := Run(m.Circuit, 2, m.OperandStimulus(a, b))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if got := m.ReadProduct(prof); got != a*b {
			t.Fatalf("multiplier(%d, %d) = %d, want %d", a, b, got, a*b)
		}
	}
}

func TestArrayMultiplierErrors(t *testing.T) {
	for _, bits := range []int{0, -1, 25} {
		if _, err := ArrayMultiplier(bits); !errors.Is(err, ErrBadCircuit) {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}

// Property: the multiplier is correct for arbitrary operand pairs.
func TestArrayMultiplierProperty(t *testing.T) {
	m, err := ArrayMultiplier(8)
	if err != nil {
		t.Fatalf("ArrayMultiplier: %v", err)
	}
	f := func(a, b uint8) bool {
		prof, err := Run(m.Circuit, 2, m.OperandStimulus(uint64(a), uint64(b)))
		if err != nil {
			return false
		}
		return m.ReadProduct(prof) == uint64(a)*uint64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestMultiplierProcessGraphLinearizes(t *testing.T) {
	// The §3 flow for a genuinely 2-D circuit: profile → process graph →
	// BFS bands → a valid linear task graph losing no cross-band weight.
	m, err := ArrayMultiplier(8)
	if err != nil {
		t.Fatalf("ArrayMultiplier: %v", err)
	}
	r := workload.NewRNG(10)
	stim := func(cycle, inputIdx int) bool { return r.Float64() < 0.5 }
	prof, err := Run(m.Circuit, 100, stim)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	pg, err := ProcessGraph(m.Circuit, prof)
	if err != nil {
		t.Fatalf("ProcessGraph: %v", err)
	}
	if !pg.IsConnected() {
		t.Fatal("multiplier process graph disconnected")
	}
	banding, err := linearize.BFSBands(pg, m.A[0])
	if err != nil {
		t.Fatalf("BFSBands: %v", err)
	}
	q := banding.Quality(pg)
	if q.SkippedWeight != 0 {
		t.Errorf("BFS banding skipped weight %v, want 0", q.SkippedWeight)
	}
	if banding.Path.Len() < 3 {
		t.Errorf("only %d bands for a 2-D circuit", banding.Path.Len())
	}
	if err := banding.Path.Validate(); err != nil {
		t.Errorf("banded path invalid: %v", err)
	}
}
