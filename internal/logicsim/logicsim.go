// Package logicsim is a gate-level event-driven logic simulator: the §3
// "Distributed Discrete Event Simulation" application substrate. A process
// (gate) changes state upon the occurrence of an event — a value change
// arriving from another process — and the simulation's process graph (gate ↔
// gate wires, weighted by event and message counts) is exactly the task
// graph the paper's partitioning algorithms consume: "a weight is associated
// with each process to indicate its processing requirement, whereas the
// number of messages needed to be passed between two processes is signified
// by a weight associated with the connecting edge."
//
// The simulator profiles a run of a generated circuit (ripple-carry adder
// chain, shift-register ring, LFSR) and derives that process graph, which
// examples and benches then partition with the paper's algorithms and
// replay on the shared-memory bus model of package sched.
package logicsim

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// Sentinel errors.
var (
	// ErrBadCircuit is returned for malformed netlists.
	ErrBadCircuit = errors.New("logicsim: bad circuit")
	// ErrCombinationalCycle is returned when gates form a cycle not broken
	// by a flip-flop.
	ErrCombinationalCycle = errors.New("logicsim: combinational cycle")
)

// GateType enumerates supported gate kinds.
type GateType int

// Gate kinds. GateInput gates take stimulus values; GateDFF is a D
// flip-flop latching its input at each cycle boundary, which is what breaks
// feedback loops into well-defined sequential behaviour.
const (
	GateInput GateType = iota + 1
	GateAnd
	GateOr
	GateNot
	GateXor
	GateNand
	GateDFF
)

// String implements fmt.Stringer.
func (g GateType) String() string {
	switch g {
	case GateInput:
		return "IN"
	case GateAnd:
		return "AND"
	case GateOr:
		return "OR"
	case GateNot:
		return "NOT"
	case GateXor:
		return "XOR"
	case GateNand:
		return "NAND"
	case GateDFF:
		return "DFF"
	default:
		return fmt.Sprintf("GateType(%d)", int(g))
	}
}

// Gate is one netlist element; In lists driver gate indices.
type Gate struct {
	Type GateType
	In   []int
}

// Circuit is a structural netlist. Gate index is identity.
type Circuit struct {
	Gates []Gate

	// derived by Validate
	fanout   [][]int
	topoRank []int
	inputs   []int
}

// Inputs returns the indices of GateInput gates in index order. Validate
// must have succeeded.
func (c *Circuit) Inputs() []int { return c.inputs }

// Validate checks arities and wiring and prepares the combinational
// topological order (flip-flop outputs are sources; flip-flop inputs are
// sinks).
func (c *Circuit) Validate() error {
	n := len(c.Gates)
	if n == 0 {
		return fmt.Errorf("empty netlist: %w", ErrBadCircuit)
	}
	c.fanout = make([][]int, n)
	c.inputs = c.inputs[:0]
	for i, g := range c.Gates {
		switch g.Type {
		case GateInput:
			if len(g.In) != 0 {
				return fmt.Errorf("gate %d: input gate with %d drivers: %w", i, len(g.In), ErrBadCircuit)
			}
			c.inputs = append(c.inputs, i)
		case GateNot, GateDFF:
			if len(g.In) != 1 {
				return fmt.Errorf("gate %d (%v): want 1 driver, have %d: %w", i, g.Type, len(g.In), ErrBadCircuit)
			}
		case GateAnd, GateOr, GateXor, GateNand:
			if len(g.In) < 2 {
				return fmt.Errorf("gate %d (%v): want ≥2 drivers, have %d: %w", i, g.Type, len(g.In), ErrBadCircuit)
			}
		default:
			return fmt.Errorf("gate %d: unknown type %d: %w", i, int(g.Type), ErrBadCircuit)
		}
		for _, d := range g.In {
			if d < 0 || d >= n {
				return fmt.Errorf("gate %d: driver %d out of range: %w", i, d, ErrBadCircuit)
			}
			c.fanout[d] = append(c.fanout[d], i)
		}
	}
	// Kahn's algorithm over combinational dependencies: an edge d→g counts
	// unless g is a DFF (its input is consumed at the cycle boundary).
	indeg := make([]int, n)
	for i, g := range c.Gates {
		if g.Type == GateDFF || g.Type == GateInput {
			continue
		}
		indeg[i] = len(g.In)
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	c.topoRank = make([]int, n)
	rank := 0
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		c.topoRank[g] = rank
		rank++
		for _, f := range c.fanout[g] {
			if c.Gates[f].Type == GateDFF || c.Gates[f].Type == GateInput {
				continue
			}
			indeg[f]--
			if indeg[f] == 0 {
				queue = append(queue, f)
			}
		}
	}
	if rank != n {
		return fmt.Errorf("%d of %d gates unreachable in topological order: %w", n-rank, n, ErrCombinationalCycle)
	}
	return nil
}

func eval(t GateType, in []bool) bool {
	switch t {
	case GateAnd, GateNand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == GateNand {
			return !v
		}
		return v
	case GateOr:
		for _, x := range in {
			if x {
				return true
			}
		}
		return false
	case GateXor:
		v := false
		for _, x := range in {
			v = v != x
		}
		return v
	case GateNot:
		return !in[0]
	default:
		return false
	}
}

// Stimulus supplies the value of input gate inputIdx (position within
// Inputs()) at the given cycle.
type Stimulus func(cycle, inputIdx int) bool

// Profile is the per-run activity profile the §3 process graph is built
// from.
type Profile struct {
	// Evaluations[g] counts how many times gate g was evaluated (its
	// processing requirement).
	Evaluations []int64
	// Messages counts value-change notifications per directed wire
	// {driver, sink}.
	Messages map[[2]int]int64
	// Cycles is the number of simulated clock cycles.
	Cycles int
	// FinalValues is the circuit state after the last cycle.
	FinalValues []bool
}

// Run simulates the circuit for the given number of cycles. A nil stimulus
// holds all inputs at false (useful for self-oscillating circuits such as
// Johnson counters and LFSRs seeded by their reset state).
func Run(c *Circuit, cycles int, stim Stimulus) (*Profile, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if cycles <= 0 {
		return nil, fmt.Errorf("cycles = %d: %w", cycles, ErrBadCircuit)
	}
	n := len(c.Gates)
	val := make([]bool, n)
	dffState := make([]bool, n)
	prof := &Profile{
		Evaluations: make([]int64, n),
		Messages:    make(map[[2]int]int64),
		Cycles:      cycles,
	}
	dirty := make([]bool, n)
	// announce propagates a value change from g to its fanout.
	announce := func(g int) {
		for _, f := range c.fanout[g] {
			prof.Messages[[2]int{g, f}]++
			if c.Gates[f].Type != GateDFF && c.Gates[f].Type != GateInput {
				dirty[f] = true
			}
		}
	}
	// order holds non-source gates sorted by topological rank, computed
	// once.
	order := make([]int, 0, n)
	for g := range c.Gates {
		if c.Gates[g].Type != GateDFF && c.Gates[g].Type != GateInput {
			order = append(order, g)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && c.topoRank[order[j]] < c.topoRank[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	inbuf := make([]bool, 0, 8)
	for cycle := 0; cycle < cycles; cycle++ {
		// Cycle start: inputs take stimulus values, DFFs present their
		// latched state.
		for idx, g := range c.inputs {
			v := false
			if stim != nil {
				v = stim(cycle, idx)
			}
			if v != val[g] || cycle == 0 {
				val[g] = v
				prof.Evaluations[g]++
				announce(g)
			}
		}
		for g, gate := range c.Gates {
			if gate.Type != GateDFF {
				continue
			}
			if dffState[g] != val[g] || cycle == 0 {
				val[g] = dffState[g]
				prof.Evaluations[g]++
				announce(g)
			}
		}
		// Combinational settle: one pass in topological order reaches the
		// fixpoint.
		for _, g := range order {
			if !dirty[g] {
				continue
			}
			dirty[g] = false
			inbuf = inbuf[:0]
			for _, d := range c.Gates[g].In {
				inbuf = append(inbuf, val[d])
			}
			v := eval(c.Gates[g].Type, inbuf)
			prof.Evaluations[g]++
			if v != val[g] {
				val[g] = v
				announce(g)
			}
		}
		// Cycle end: DFFs latch their input; the new state appears next
		// cycle.
		for g, gate := range c.Gates {
			if gate.Type == GateDFF {
				dffState[g] = val[gate.In[0]]
			}
		}
	}
	prof.FinalValues = val
	return prof, nil
}

// ProcessGraph converts a profile into the §3 process graph: vertex weight =
// evaluation count (plus one so that idle gates still carry their fixed
// per-process overhead), undirected edge weight = total messages exchanged
// over the wire in both directions.
func ProcessGraph(c *Circuit, prof *Profile) (*graph.Graph, error) {
	if len(prof.Evaluations) != len(c.Gates) {
		return nil, fmt.Errorf("profile covers %d gates, circuit has %d: %w",
			len(prof.Evaluations), len(c.Gates), ErrBadCircuit)
	}
	nodeW := make([]float64, len(c.Gates))
	for g, e := range prof.Evaluations {
		nodeW[g] = float64(e) + 1
	}
	var edges []graph.Edge
	seen := make(map[[2]int]bool)
	for g, gate := range c.Gates {
		for _, d := range gate.In {
			a, b := d, g
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			w := float64(prof.Messages[[2]int{a, b}] + prof.Messages[[2]int{b, a}])
			edges = append(edges, graph.Edge{U: a, V: b, W: w})
		}
	}
	g, err := graph.NewGraph(nodeW, edges)
	if err != nil {
		return nil, err
	}
	return g.MergeParallel(), nil
}
