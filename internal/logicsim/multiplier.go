package logicsim

import "fmt"

// Multiplier is a combinational array multiplier: n² partial-product AND
// gates reduced by a cascade of ripple-carry adders. Unlike the adder chain
// and the counter rings, its process graph is two-dimensional, which
// exercises the §3 "more general system" path: BFS banding must flatten it
// into a linear super-graph before the paper's algorithms apply.
type Multiplier struct {
	Circuit *Circuit
	// A, B are the operand input gate indices, least-significant bit first.
	A, B []int
	// Product are the 2n product bit gate indices, least-significant first.
	Product []int
}

// ArrayMultiplier builds a bits×bits array multiplier.
func ArrayMultiplier(bits int) (*Multiplier, error) {
	if bits <= 0 || bits > 24 {
		return nil, fmt.Errorf("bits = %d (want 1..24): %w", bits, ErrBadCircuit)
	}
	c := &Circuit{}
	add := func(t GateType, in ...int) int {
		c.Gates = append(c.Gates, Gate{Type: t, In: in})
		return len(c.Gates) - 1
	}
	m := &Multiplier{Circuit: c}
	for i := 0; i < bits; i++ {
		m.A = append(m.A, add(GateInput))
	}
	for i := 0; i < bits; i++ {
		m.B = append(m.B, add(GateInput))
	}
	// A constant-false rail for absent addend positions (an input gate that
	// stimuli leave low).
	zero := add(GateInput)
	// Partial products pp[i][j] = a_i AND b_j.
	pp := make([][]int, bits)
	for i := range pp {
		pp[i] = make([]int, bits)
		for j := range pp[i] {
			pp[i][j] = add(GateAnd, m.A[i], m.B[j])
		}
	}
	width := 2 * bits
	// Running sum starts as row 0 (positions 0..bits-1), zero elsewhere.
	sum := make([]int, width)
	for p := range sum {
		if p < bits {
			sum[p] = pp[0][p]
		} else {
			sum[p] = zero
		}
	}
	// fullAdder returns (sumBit, carryOut).
	fullAdder := func(x, y, cin int) (int, int) {
		xy := add(GateXor, x, y)
		s := add(GateXor, xy, cin)
		c1 := add(GateAnd, x, y)
		c2 := add(GateAnd, xy, cin)
		return s, add(GateOr, c1, c2)
	}
	for i := 1; i < bits; i++ {
		carry := zero
		next := make([]int, width)
		copy(next, sum)
		for p := i; p < width; p++ {
			addend := zero
			if p-i < bits {
				addend = pp[i][p-i]
			}
			next[p], carry = fullAdder(sum[p], addend, carry)
		}
		sum = next
	}
	m.Product = sum
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// OperandStimulus drives the multiplier's inputs with the constant operands
// a and b (least-significant bit first); the zero rail stays low.
func (m *Multiplier) OperandStimulus(a, b uint64) Stimulus {
	pos := make(map[int]int, len(m.Circuit.Inputs()))
	for i, g := range m.Circuit.Inputs() {
		pos[g] = i
	}
	values := make(map[int]bool)
	for bit, g := range m.A {
		values[pos[g]] = a>>bit&1 == 1
	}
	for bit, g := range m.B {
		values[pos[g]] = b>>bit&1 == 1
	}
	return func(cycle, inputIdx int) bool {
		return values[inputIdx]
	}
}

// ReadProduct decodes the product bits from a profile's final values.
func (m *Multiplier) ReadProduct(prof *Profile) uint64 {
	var out uint64
	for bit, g := range m.Product {
		if prof.FinalValues[g] {
			out |= 1 << bit
		}
	}
	return out
}
