package logicsim

import "fmt"

// Netlist builders for the §3 evaluation circuits. All return validated
// circuits.

// Adder is a ripple-carry adder netlist with handles to its ports.
type Adder struct {
	Circuit *Circuit
	// A, B are the operand input gate indices, least-significant bit first.
	A, B []int
	// CarryIn is the carry input gate index.
	CarryIn int
	// Sum are the per-bit sum gate indices; CarryOut is the final carry.
	Sum      []int
	CarryOut int
}

// RippleCarryAdder builds a bits-wide ripple-carry adder. Its process graph
// is the chain-of-full-adders shape the paper's linear algorithms target.
func RippleCarryAdder(bits int) (*Adder, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("bits = %d: %w", bits, ErrBadCircuit)
	}
	c := &Circuit{}
	add := func(t GateType, in ...int) int {
		c.Gates = append(c.Gates, Gate{Type: t, In: in})
		return len(c.Gates) - 1
	}
	ad := &Adder{Circuit: c}
	for i := 0; i < bits; i++ {
		ad.A = append(ad.A, add(GateInput))
		ad.B = append(ad.B, add(GateInput))
	}
	ad.CarryIn = add(GateInput)
	carry := ad.CarryIn
	for i := 0; i < bits; i++ {
		axb := add(GateXor, ad.A[i], ad.B[i])
		sum := add(GateXor, axb, carry)
		and1 := add(GateAnd, ad.A[i], ad.B[i])
		and2 := add(GateAnd, axb, carry)
		carry = add(GateOr, and1, and2)
		ad.Sum = append(ad.Sum, sum)
	}
	ad.CarryOut = carry
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return ad, nil
}

// JohnsonCounter builds an n-stage twisted-ring counter: a ring of D
// flip-flops with the last output inverted into the first input. It
// oscillates with no external stimulus and its process graph is the §3
// "circular type logic circuit".
func JohnsonCounter(n int) (*Circuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("stages = %d: %w", n, ErrBadCircuit)
	}
	c := &Circuit{Gates: make([]Gate, n+1)}
	// Gates 0..n-1 are DFFs; gate n is the inverter feeding DFF 0.
	for i := 0; i < n; i++ {
		in := i - 1
		if i == 0 {
			in = n // inverter
		}
		c.Gates[i] = Gate{Type: GateDFF, In: []int{in}}
	}
	c.Gates[n] = Gate{Type: GateNot, In: []int{n - 1}}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// LFSRCircuit is an n-bit linear feedback shift register with XOR feedback
// from given tap positions. Seeding is by an injected input gate raised on
// cycle 0 to break the all-zeros state.
type LFSRCircuit struct {
	Circuit *Circuit
	// Seed is the input gate index; drive it true on the first cycle.
	Seed int
	// Stages are the DFF indices, stage 0 first.
	Stages []int
}

// LFSR constructs the register.
func LFSR(n int, taps []int) (*LFSRCircuit, error) {
	if n < 2 {
		return nil, fmt.Errorf("stages = %d: %w", n, ErrBadCircuit)
	}
	if len(taps) < 2 {
		return nil, fmt.Errorf("%d taps, want ≥2: %w", len(taps), ErrBadCircuit)
	}
	for _, t := range taps {
		if t < 0 || t >= n {
			return nil, fmt.Errorf("tap %d out of range [0,%d): %w", t, n, ErrBadCircuit)
		}
	}
	c := &Circuit{}
	add := func(t GateType, in ...int) int {
		c.Gates = append(c.Gates, Gate{Type: t, In: in})
		return len(c.Gates) - 1
	}
	seed := add(GateInput)
	// Stage DFFs; wire inputs afterwards since the feedback gate does not
	// exist yet.
	lc := &LFSRCircuit{Seed: seed}
	for i := 0; i < n; i++ {
		lc.Stages = append(lc.Stages, add(GateDFF, 0)) // placeholder driver
	}
	tapIns := make([]int, 0, len(taps)+1)
	for _, t := range taps {
		tapIns = append(tapIns, lc.Stages[t])
	}
	tapIns = append(tapIns, seed)
	feedback := add(GateXor, tapIns...)
	c.Gates[lc.Stages[0]].In[0] = feedback
	for i := 1; i < n; i++ {
		c.Gates[lc.Stages[i]].In[0] = lc.Stages[i-1]
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	lc.Circuit = c
	return lc, nil
}

// SeedStimulus drives the LFSR seed input true on cycle 0 only.
func (l *LFSRCircuit) SeedStimulus() Stimulus {
	return func(cycle, inputIdx int) bool {
		return cycle == 0
	}
}
