package logicsim

import (
	"errors"
	"testing"

	"repro/internal/workload"
)

func TestCircuitValidate(t *testing.T) {
	tests := []struct {
		name string
		c    Circuit
		want error
	}{
		{"empty", Circuit{}, ErrBadCircuit},
		{"input with driver", Circuit{Gates: []Gate{{Type: GateInput, In: []int{0}}}}, ErrBadCircuit},
		{"not with two drivers", Circuit{Gates: []Gate{{Type: GateInput}, {Type: GateNot, In: []int{0, 0}}}}, ErrBadCircuit},
		{"and with one driver", Circuit{Gates: []Gate{{Type: GateInput}, {Type: GateAnd, In: []int{0}}}}, ErrBadCircuit},
		{"driver out of range", Circuit{Gates: []Gate{{Type: GateNot, In: []int{5}}}}, ErrBadCircuit},
		{"unknown type", Circuit{Gates: []Gate{{Type: GateType(99)}}}, ErrBadCircuit},
		{
			"combinational cycle",
			Circuit{Gates: []Gate{{Type: GateNot, In: []int{1}}, {Type: GateNot, In: []int{0}}}},
			ErrCombinationalCycle,
		},
		{
			"dff breaks cycle",
			Circuit{Gates: []Gate{{Type: GateDFF, In: []int{1}}, {Type: GateNot, In: []int{0}}}},
			nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.c.Validate()
			if !errors.Is(err, tt.want) {
				t.Errorf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestGateTypeString(t *testing.T) {
	if GateXor.String() != "XOR" || GateType(42).String() != "GateType(42)" {
		t.Error("GateType.String labels wrong")
	}
}

// addNumbers drives the adder with constants and checks the sum.
func addNumbers(t *testing.T, bits, a, b, cin int) int {
	t.Helper()
	ad, err := RippleCarryAdder(bits)
	if err != nil {
		t.Fatalf("RippleCarryAdder: %v", err)
	}
	// Map input gate index -> stimulus position.
	pos := make(map[int]int)
	for i, g := range ad.Circuit.Inputs() {
		pos[g] = i
	}
	stim := func(cycle, inputIdx int) bool {
		for bit := 0; bit < bits; bit++ {
			if inputIdx == pos[ad.A[bit]] {
				return a>>bit&1 == 1
			}
			if inputIdx == pos[ad.B[bit]] {
				return b>>bit&1 == 1
			}
		}
		if inputIdx == pos[ad.CarryIn] {
			return cin == 1
		}
		return false
	}
	prof, err := Run(ad.Circuit, 2, stim)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sum := 0
	for bit, g := range ad.Sum {
		if prof.FinalValues[g] {
			sum |= 1 << bit
		}
	}
	if prof.FinalValues[ad.CarryOut] {
		sum |= 1 << bits
	}
	return sum
}

func TestRippleCarryAdderComputesCorrectSums(t *testing.T) {
	const bits = 6
	r := workload.NewRNG(12)
	for trial := 0; trial < 100; trial++ {
		a := r.Intn(1 << bits)
		b := r.Intn(1 << bits)
		cin := r.Intn(2)
		got := addNumbers(t, bits, a, b, cin)
		if got != a+b+cin {
			t.Fatalf("adder(%d, %d, %d) = %d, want %d", a, b, cin, got, a+b+cin)
		}
	}
}

func TestJohnsonCounterOscillates(t *testing.T) {
	c, err := JohnsonCounter(4)
	if err != nil {
		t.Fatalf("JohnsonCounter: %v", err)
	}
	prof, err := Run(c, 16, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// A 4-stage Johnson counter has period 8; over 16 cycles every DFF
	// toggles 4 times (2 full periods), so every stage must show activity.
	for g := 0; g < 4; g++ {
		if prof.Evaluations[g] < 2 {
			t.Errorf("DFF %d evaluated only %d times — counter not oscillating", g, prof.Evaluations[g])
		}
	}
	var msgs int64
	for _, m := range prof.Messages {
		msgs += m
	}
	if msgs == 0 {
		t.Error("no messages recorded")
	}
}

func TestLFSRCyclesThroughStates(t *testing.T) {
	l, err := LFSR(5, []int{2, 4})
	if err != nil {
		t.Fatalf("LFSR: %v", err)
	}
	prof, err := Run(l.Circuit, 40, l.SeedStimulus())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	active := 0
	for _, g := range l.Stages {
		if prof.Evaluations[g] > 1 {
			active++
		}
	}
	if active < 4 {
		t.Errorf("only %d of 5 LFSR stages active", active)
	}
}

func TestLFSRErrors(t *testing.T) {
	if _, err := LFSR(1, []int{0, 0}); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("n=1: %v", err)
	}
	if _, err := LFSR(5, []int{0}); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("one tap: %v", err)
	}
	if _, err := LFSR(5, []int{0, 9}); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("tap range: %v", err)
	}
	if _, err := JohnsonCounter(1); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("johnson n=1: %v", err)
	}
	if _, err := RippleCarryAdder(0); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("adder bits=0: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	c, _ := JohnsonCounter(3)
	if _, err := Run(c, 0, nil); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("cycles=0: %v", err)
	}
}

func TestProcessGraphShape(t *testing.T) {
	c, err := JohnsonCounter(6)
	if err != nil {
		t.Fatalf("JohnsonCounter: %v", err)
	}
	prof, err := Run(c, 24, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g, err := ProcessGraph(c, prof)
	if err != nil {
		t.Fatalf("ProcessGraph: %v", err)
	}
	if g.Len() != 7 { // 6 DFFs + inverter
		t.Fatalf("process graph has %d vertices, want 7", g.Len())
	}
	// The Johnson counter's process graph is a ring: 7 vertices, 7 edges,
	// connected.
	if len(g.Edges) != 7 {
		t.Errorf("process graph has %d edges, want 7 (ring)", len(g.Edges))
	}
	if !g.IsConnected() {
		t.Error("process graph disconnected")
	}
	for v, w := range g.NodeW {
		if w < 1 {
			t.Errorf("vertex %d weight %v < 1", v, w)
		}
	}
}

func TestProcessGraphProfileMismatch(t *testing.T) {
	c, _ := JohnsonCounter(3)
	bad := &Profile{Evaluations: make([]int64, 2)}
	if _, err := ProcessGraph(c, bad); !errors.Is(err, ErrBadCircuit) {
		t.Errorf("error = %v, want ErrBadCircuit", err)
	}
}

func TestAdderProcessGraphIsChainLike(t *testing.T) {
	ad, err := RippleCarryAdder(8)
	if err != nil {
		t.Fatalf("RippleCarryAdder: %v", err)
	}
	r := workload.NewRNG(3)
	stim := func(cycle, inputIdx int) bool { return r.Float64() < 0.5 }
	prof, err := Run(ad.Circuit, 50, stim)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	g, err := ProcessGraph(ad.Circuit, prof)
	if err != nil {
		t.Fatalf("ProcessGraph: %v", err)
	}
	if !g.IsConnected() {
		t.Error("adder process graph disconnected")
	}
	// Total evaluations must exceed the gate count (plenty of switching
	// under random stimulus).
	var evals int64
	for _, e := range prof.Evaluations {
		evals += e
	}
	if evals < int64(len(ad.Circuit.Gates)) {
		t.Errorf("only %d evaluations for %d gates", evals, len(ad.Circuit.Gates))
	}
}
