package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGUniformMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Uniform(10, 20)
	}
	mean := sum / n
	if math.Abs(mean-15) > 0.1 {
		t.Errorf("Uniform(10,20) mean = %v, want ≈15", mean)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 5)
	for i := 0; i < 50000; i++ {
		counts[r.Intn(5)]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(5) value %d count = %d, want ≈10000", v, c)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	mean := sum / n
	if math.Abs(mean-4) > 0.05 {
		t.Errorf("Exp(4) mean = %v, want ≈4", mean)
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1, 100, 1.5)
		if v < 1-1e-9 || v > 100+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestWeightsSampleRanges(t *testing.T) {
	r := NewRNG(19)
	dists := []Weights{
		UniformWeights(5, 50),
		{Dist: DistExponential, Lo: 5, Hi: 50},
		{Dist: DistPareto, Lo: 5, Hi: 50},
		{Dist: DistBimodal, Lo: 5, Hi: 50},
		{Dist: DistConstant, Lo: 5, Hi: 50},
	}
	for _, w := range dists {
		t.Run(w.Dist.String(), func(t *testing.T) {
			for i := 0; i < 5000; i++ {
				v := w.Sample(r)
				if v < 5-1e-9 || v > 50+1e-9 {
					t.Fatalf("%s sample %v out of [5,50]", w.Dist, v)
				}
			}
		})
	}
}

func TestDistString(t *testing.T) {
	if DistUniform.String() != "uniform" || Dist(99).String() != "Dist(99)" {
		t.Error("Dist.String labels wrong")
	}
}

func TestRandomPathValid(t *testing.T) {
	r := NewRNG(23)
	for _, n := range []int{1, 2, 5, 1000} {
		p := RandomPath(r, n, UniformWeights(1, 100), UniformWeights(1, 10))
		if err := p.Validate(); err != nil {
			t.Errorf("RandomPath(n=%d): %v", n, err)
		}
		if p.Len() != n {
			t.Errorf("RandomPath(n=%d) has %d nodes", n, p.Len())
		}
	}
	if RandomPath(r, 0, UniformWeights(1, 2), UniformWeights(1, 2)).Len() != 1 {
		t.Error("RandomPath(n=0) should clamp to 1 node")
	}
}

func TestTreeGeneratorsValid(t *testing.T) {
	r := NewRNG(29)
	nodeW, edgeW := UniformWeights(1, 100), UniformWeights(1, 10)
	gens := []struct {
		name string
		gen  func(n int) *graph.Tree
	}{
		{"RandomTree", func(n int) *graph.Tree { return RandomTree(r, n, nodeW, edgeW) }},
		{"Star", func(n int) *graph.Tree { return Star(r, n, nodeW, edgeW) }},
		{"DaryTree2", func(n int) *graph.Tree { return DaryTree(r, n, 2, nodeW, edgeW) }},
		{"DaryTree5", func(n int) *graph.Tree { return DaryTree(r, n, 5, nodeW, edgeW) }},
	}
	for _, g := range gens {
		t.Run(g.name, func(t *testing.T) {
			for _, n := range []int{1, 2, 3, 17, 500} {
				tr := g.gen(n)
				if err := tr.Validate(); err != nil {
					t.Errorf("n=%d: %v", n, err)
				}
				if tr.Len() != n {
					t.Errorf("n=%d: got %d nodes", n, tr.Len())
				}
			}
		})
	}
}

func TestStarShape(t *testing.T) {
	r := NewRNG(31)
	s := Star(r, 10, UniformWeights(1, 2), UniformWeights(1, 2))
	if !s.IsStar() {
		t.Error("Star generator did not produce a star")
	}
}

func TestCaterpillarShape(t *testing.T) {
	r := NewRNG(37)
	c := Caterpillar(r, 4, 3, UniformWeights(1, 2), UniformWeights(1, 2))
	if err := c.Validate(); err != nil {
		t.Fatalf("Caterpillar: %v", err)
	}
	if c.Len() != 16 {
		t.Errorf("Caterpillar(4,3) has %d nodes, want 16", c.Len())
	}
	deg := c.Degrees()
	leaves := 0
	for _, d := range deg {
		if d == 1 {
			leaves++
		}
	}
	// 12 attached leaves, plus the two spine end vertices have degree 1+3=4,
	// so exactly the 12 leaves have degree 1.
	if leaves != 12 {
		t.Errorf("Caterpillar(4,3) has %d degree-1 vertices, want 12", leaves)
	}
}

func TestPDEStripsShape(t *testing.T) {
	r := NewRNG(41)
	p := PDEStrips(r, 32, 1000, 5, 8)
	if err := p.Validate(); err != nil {
		t.Fatalf("PDEStrips: %v", err)
	}
	if p.Len() != 32 {
		t.Errorf("PDEStrips rows = %d, want 32", p.Len())
	}
	for _, w := range p.EdgeW {
		if w != 8000 {
			t.Errorf("halo weight = %v, want 8000", w)
		}
	}
	for _, w := range p.NodeW {
		if w < 4500 || w > 5500 {
			t.Errorf("strip weight %v outside ±10%% of 5000", w)
		}
	}
}

func TestPipelineBoost(t *testing.T) {
	r := NewRNG(43)
	base := Pipeline(r, 1000, UniformWeights(1, 10), Weights{Dist: DistConstant, Lo: 2, Hi: 2}, 0.5, 10)
	boosted, plain := 0, 0
	for _, w := range base.EdgeW {
		switch w {
		case 20:
			boosted++
		case 2:
			plain++
		default:
			t.Fatalf("unexpected edge weight %v", w)
		}
	}
	if boosted < 400 || boosted > 600 {
		t.Errorf("boosted = %d of 999, want ≈500", boosted)
	}
}

// Property: every generated tree is a valid spanning tree for arbitrary sizes.
func TestRandomTreeProperty(t *testing.T) {
	f := func(seed uint64, rawN uint16) bool {
		n := int(rawN)%2000 + 1
		tr := RandomTree(NewRNG(seed), n, UniformWeights(1, 100), UniformWeights(1, 10))
		return tr.Validate() == nil && tr.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRNGSeed(t *testing.T) {
	r := NewRNG(0xdeadbeef)
	if got := r.Seed(); got != 0xdeadbeef {
		t.Fatalf("Seed() = %#x, want 0xdeadbeef", got)
	}
	// Drawing values must not change the reported seed: the whole point is
	// that a failure message printed late in a test still reproduces the run.
	for i := 0; i < 100; i++ {
		r.Uint64()
	}
	if got := r.Seed(); got != 0xdeadbeef {
		t.Fatalf("Seed() after draws = %#x, want 0xdeadbeef", got)
	}
	var zero RNG
	if got := zero.Seed(); got != 0 {
		t.Fatalf("zero-value Seed() = %#x, want 0", got)
	}
}
