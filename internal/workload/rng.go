// Package workload generates the synthetic task graphs used by the paper's
// simulation study (§2.3.2, Figure 2) and by the application examples (§3).
//
// All randomness flows through RNG, a small deterministic splitmix64
// generator, so every experiment in this repository is reproducible
// bit-for-bit from a seed.
package workload

import "math"

// RNG is a deterministic pseudo-random generator (splitmix64). The zero value
// is a valid generator seeded with 0.
type RNG struct {
	state uint64
	seed  uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed, seed: seed}
}

// Seed returns the seed the generator was constructed with, so test failures
// can log it and failing cases reproduce deterministically. The zero value
// reports seed 0, matching its stream.
func (r *RNG) Seed() uint64 {
	return r.seed
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers control n, so this is a programmer error.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi). If hi <= lo it returns lo.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a bounded Pareto-distributed value on [lo, hi] with shape
// alpha > 0. This models heavy-tailed task weights.
func (r *RNG) Pareto(lo, hi, alpha float64) float64 {
	if hi <= lo {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
