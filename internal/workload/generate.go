package workload

import (
	"fmt"

	"repro/internal/graph"
)

// Dist selects a weight distribution for generated task graphs.
type Dist int

// Supported weight distributions. Uniform on [Lo,Hi] is the distribution the
// paper's Figure 2 study assumes ("vertex weights are distributed uniformly
// over the range [w1, w2]", §2.3.2); the others stress the algorithms beyond
// the paper's assumptions.
const (
	DistUniform Dist = iota + 1
	DistExponential
	DistPareto
	DistBimodal
	DistConstant
)

// String implements fmt.Stringer for experiment labels.
func (d Dist) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistExponential:
		return "exponential"
	case DistPareto:
		return "pareto"
	case DistBimodal:
		return "bimodal"
	case DistConstant:
		return "constant"
	default:
		return fmt.Sprintf("Dist(%d)", int(d))
	}
}

// Weights describes a weight distribution: values fall in [Lo, Hi] (for
// DistExponential the mean is (Lo+Hi)/2 and values are clamped to [Lo, Hi]).
type Weights struct {
	Dist   Dist
	Lo, Hi float64
}

// Sample draws one weight.
func (w Weights) Sample(r *RNG) float64 {
	switch w.Dist {
	case DistUniform:
		return r.Uniform(w.Lo, w.Hi)
	case DistExponential:
		v := r.Exp((w.Lo + w.Hi) / 2)
		if v < w.Lo {
			return w.Lo
		}
		if v > w.Hi {
			return w.Hi
		}
		return v
	case DistPareto:
		lo := w.Lo
		if lo <= 0 {
			lo = 1
		}
		return r.Pareto(lo, w.Hi, 1.5)
	case DistBimodal:
		// 90% light tasks near Lo, 10% heavy tasks near Hi.
		if r.Float64() < 0.9 {
			return r.Uniform(w.Lo, w.Lo+(w.Hi-w.Lo)/10)
		}
		return r.Uniform(w.Hi-(w.Hi-w.Lo)/10, w.Hi)
	case DistConstant:
		return w.Lo
	default:
		return r.Uniform(w.Lo, w.Hi)
	}
}

// sampleN draws n weights.
func (w Weights) sampleN(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = w.Sample(r)
	}
	return out
}

// UniformWeights is shorthand for the paper's U[lo,hi] distribution.
func UniformWeights(lo, hi float64) Weights {
	return Weights{Dist: DistUniform, Lo: lo, Hi: hi}
}

// RandomPath generates an n-task linear task graph with node weights from
// nodeW and edge weights from edgeW.
func RandomPath(r *RNG, n int, nodeW, edgeW Weights) *graph.Path {
	if n < 1 {
		n = 1
	}
	return &graph.Path{
		NodeW: nodeW.sampleN(r, n),
		EdgeW: edgeW.sampleN(r, n-1),
	}
}

// RandomTree generates a random recursive tree on n vertices: vertex i
// attaches to a uniformly random earlier vertex. This yields trees with
// logarithmic expected depth and a mix of high- and low-degree nodes.
func RandomTree(r *RNG, n int, nodeW, edgeW Weights) *graph.Tree {
	if n < 1 {
		n = 1
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		u := r.Intn(v)
		edges = append(edges, graph.Edge{U: u, V: v, W: edgeW.Sample(r)})
	}
	return &graph.Tree{NodeW: nodeW.sampleN(r, n), Edges: edges}
}

// Star generates a star task graph with centre 0 and n−1 leaves. Stars are
// the paper's NP-completeness gadget (Theorem 1).
func Star(r *RNG, n int, nodeW, edgeW Weights) *graph.Tree {
	if n < 1 {
		n = 1
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: 0, V: v, W: edgeW.Sample(r)})
	}
	return &graph.Tree{NodeW: nodeW.sampleN(r, n), Edges: edges}
}

// Caterpillar generates a spine of length spine with leavesPer leaves on each
// spine vertex. Caterpillars exercise Algorithm 2.2's leaf-pruning recursion
// directly.
func Caterpillar(r *RNG, spine, leavesPer int, nodeW, edgeW Weights) *graph.Tree {
	if spine < 1 {
		spine = 1
	}
	if leavesPer < 0 {
		leavesPer = 0
	}
	n := spine + spine*leavesPer
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < spine; v++ {
		edges = append(edges, graph.Edge{U: v - 1, V: v, W: edgeW.Sample(r)})
	}
	next := spine
	for s := 0; s < spine; s++ {
		for l := 0; l < leavesPer; l++ {
			edges = append(edges, graph.Edge{U: s, V: next, W: edgeW.Sample(r)})
			next++
		}
	}
	return &graph.Tree{NodeW: nodeW.sampleN(r, n), Edges: edges}
}

// DaryTree generates a balanced d-ary tree with the given number of vertices,
// modelling divide-and-conquer task graphs (§1). Vertex 0 is the root and
// vertex v's parent is (v-1)/d.
func DaryTree(r *RNG, n, d int, nodeW, edgeW Weights) *graph.Tree {
	if n < 1 {
		n = 1
	}
	if d < 2 {
		d = 2
	}
	edges := make([]graph.Edge, 0, n-1)
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{U: (v - 1) / d, V: v, W: edgeW.Sample(r)})
	}
	return &graph.Tree{NodeW: nodeW.sampleN(r, n), Edges: edges}
}

// PDEStrips models the §1 numerical workload: a grid of rows×cols points cut
// into rows strips of simple iterative calculation. Each strip is a task
// whose weight is cols×flopsPerPoint (jittered ±10%), and adjacent strips
// exchange a halo of cols×bytesPerPoint data per iteration.
func PDEStrips(r *RNG, rows, cols int, flopsPerPoint, bytesPerPoint float64) *graph.Path {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	nodeW := make([]float64, rows)
	for i := range nodeW {
		jitter := 0.9 + 0.2*r.Float64()
		nodeW[i] = float64(cols) * flopsPerPoint * jitter
	}
	edgeW := make([]float64, rows-1)
	for i := range edgeW {
		edgeW[i] = float64(cols) * bytesPerPoint
	}
	return &graph.Path{NodeW: nodeW, EdgeW: edgeW}
}

// Pipeline models the §3 real-time workload: stages tasks in a chain, stage
// compute weights from nodeW, inter-stage message volumes from edgeW, with a
// fraction of "sensitive" dependencies whose weight is boosted by the given
// factor (the paper's reliability-weighted edges).
func Pipeline(r *RNG, stages int, nodeW, edgeW Weights, sensitiveFrac, boost float64) *graph.Path {
	p := RandomPath(r, stages, nodeW, edgeW)
	for i := range p.EdgeW {
		if r.Float64() < sensitiveFrac {
			p.EdgeW[i] *= boost
		}
	}
	return p
}
