package hitting

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prime"
	"repro/internal/workload"
)

func TestVariantsMatchOnHandCases(t *testing.T) {
	cases := []Instance{
		{},
		{Beta: []float64{5, 2, 9}, A: []int{0}, B: []int{2}},
		{Beta: []float64{1, 9, 5, 9, 1}, A: []int{0, 2}, B: []int{2, 4}},
		{Beta: []float64{8, 2, 8, 2, 8}, A: []int{0, 1, 2}, B: []int{2, 3, 4}},
		{Beta: []float64{0, 5, 0}, A: []int{0, 1}, B: []int{1, 2}},
	}
	for i, in := range cases {
		base, err := SolveTempS(&in)
		if err != nil {
			t.Fatalf("case %d base: %v", i, err)
		}
		for name, f := range map[string]func(*Instance) (*Solution, error){
			"gallop":    SolveTempSGallop,
			"amortized": SolveTempSAmortized,
		} {
			got, err := f(&in)
			if err != nil {
				t.Fatalf("case %d %s: %v", i, name, err)
			}
			if math.Abs(got.Weight-base.Weight) > 1e-9 {
				t.Errorf("case %d: %s weight %v != base %v", i, name, got.Weight, base.Weight)
			}
			if !got.covers(&in) {
				t.Errorf("case %d: %s solution does not cover", i, name)
			}
		}
	}
}

func TestVariantsMatchOnRandomInstances(t *testing.T) {
	r := workload.NewRNG(4242)
	for trial := 0; trial < 300; trial++ {
		in := randomInstance(r, 200)
		base, err := SolveTempS(in)
		if err != nil {
			t.Fatalf("base: %v", err)
		}
		gallop, err := SolveTempSGallop(in)
		if err != nil {
			t.Fatalf("gallop: %v", err)
		}
		amortized, err := SolveTempSAmortized(in)
		if err != nil {
			t.Fatalf("amortized: %v", err)
		}
		if math.Abs(gallop.Weight-base.Weight) > 1e-9 || math.Abs(amortized.Weight-base.Weight) > 1e-9 {
			t.Fatalf("weights diverge: base %v gallop %v amortized %v on %+v",
				base.Weight, gallop.Weight, amortized.Weight, in)
		}
	}
}

func TestVariantsMatchOnPrimeInstances(t *testing.T) {
	r := workload.NewRNG(777)
	for trial := 0; trial < 100; trial++ {
		n := 50 + r.Intn(500)
		nodeW := make([]float64, n)
		edgeW := make([]float64, n-1)
		for i := range nodeW {
			nodeW[i] = r.Uniform(1, 50)
		}
		for i := range edgeW {
			edgeW[i] = r.Uniform(1, 100)
		}
		k := r.Uniform(60, 600)
		pinst, _, err := prime.Analyze(nodeW, edgeW, k)
		if err != nil {
			trial--
			continue
		}
		in := &Instance{Beta: pinst.Beta, A: pinst.A, B: pinst.B}
		base, err := SolveTempS(in)
		if err != nil {
			t.Fatalf("base: %v", err)
		}
		gallop, err := SolveTempSGallop(in)
		if err != nil {
			t.Fatalf("gallop: %v", err)
		}
		if math.Abs(gallop.Weight-base.Weight) > 1e-9 {
			t.Fatalf("gallop %v != base %v", gallop.Weight, base.Weight)
		}
	}
}

func TestGallopSearchAgainstBinary(t *testing.T) {
	// Direct unit test of the search primitive over a synthetic sorted
	// window.
	rows := make([]row, 12)
	ws := []float64{1, 1, 2, 3, 5, 5, 6, 9, 9, 10, 12, 20}
	for i, w := range ws {
		rows[i].w = w
	}
	for head := 0; head < len(rows); head++ {
		for tail := head - 1; tail < len(rows); tail++ {
			for _, w := range []float64{0, 1, 4, 5, 9.5, 20, 21} {
				want := tail + 1
				for s := head; s <= tail; s++ {
					if rows[s].w >= w {
						want = s
						break
					}
				}
				if got := gallopSearch(rows, head, tail, w); got != want {
					t.Fatalf("gallopSearch(head=%d tail=%d w=%v) = %d, want %d", head, tail, w, got, want)
				}
				if got := popSearch(rows, head, tail, w); got != want {
					t.Fatalf("popSearch(head=%d tail=%d w=%v) = %d, want %d", head, tail, w, got, want)
				}
			}
		}
	}
}

// Property: all three sweep implementations agree for arbitrary seeds.
func TestVariantEquivalenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		in := randomInstance(r, 300)
		a, e1 := SolveTempS(in)
		b, e2 := SolveTempSGallop(in)
		c, e3 := SolveTempSAmortized(in)
		if e1 != nil || e2 != nil || e3 != nil {
			return false
		}
		return math.Abs(a.Weight-b.Weight) < 1e-9 && math.Abs(a.Weight-c.Weight) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
