package hitting

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/prime"
	"repro/internal/workload"
)

func TestInstanceValidate(t *testing.T) {
	tests := []struct {
		name string
		in   Instance
		ok   bool
	}{
		{"empty", Instance{}, true},
		{"single", Instance{Beta: []float64{1}, A: []int{0}, B: []int{0}}, true},
		{"two", Instance{Beta: []float64{1, 2, 3}, A: []int{0, 1}, B: []int{1, 2}}, true},
		{"len mismatch", Instance{Beta: []float64{1}, A: []int{0}, B: nil}, false},
		{"negative beta", Instance{Beta: []float64{-1}, A: []int{0}, B: []int{0}}, false},
		{"nan beta", Instance{Beta: []float64{math.NaN()}, A: []int{0}, B: []int{0}}, false},
		{"out of range", Instance{Beta: []float64{1}, A: []int{0}, B: []int{1}}, false},
		{"empty interval", Instance{Beta: []float64{1, 2}, A: []int{1}, B: []int{0}}, false},
		{"A not increasing", Instance{Beta: []float64{1, 2, 3}, A: []int{0, 0}, B: []int{1, 2}}, false},
		{"B not increasing", Instance{Beta: []float64{1, 2, 3}, A: []int{0, 1}, B: []int{2, 2}}, false},
		{"nested", Instance{Beta: []float64{1, 2, 3}, A: []int{0, 1}, B: []int{2, 1}}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.in.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() = %v, want ok=%v", err, tt.ok)
			}
			if err != nil && !errors.Is(err, ErrBadInstance) {
				t.Errorf("error %v should wrap ErrBadInstance", err)
			}
		})
	}
}

func solverTable() []struct {
	name string
	f    func(*Instance) (*Solution, error)
} {
	return []struct {
		name string
		f    func(*Instance) (*Solution, error)
	}{
		{"TempS", SolveTempS},
		{"NaiveDP", SolveNaiveDP},
		{"Brute", SolveBrute},
	}
}

func TestSolversHandCases(t *testing.T) {
	tests := []struct {
		name       string
		in         Instance
		wantWeight float64
		wantPoints []int // nil means any optimal-weight cut accepted
	}{
		{
			name:       "no intervals",
			in:         Instance{Beta: []float64{5, 5}},
			wantWeight: 0,
			wantPoints: nil,
		},
		{
			name:       "single interval picks min",
			in:         Instance{Beta: []float64{5, 2, 9}, A: []int{0}, B: []int{2}},
			wantWeight: 2,
			wantPoints: []int{1},
		},
		{
			name: "shared point covers both",
			in: Instance{
				Beta: []float64{10, 3, 10},
				A:    []int{0, 1},
				B:    []int{1, 2},
			},
			wantWeight: 3,
			wantPoints: []int{1},
		},
		{
			name: "disjoint intervals need two points",
			in: Instance{
				Beta: []float64{4, 7, 6, 5},
				A:    []int{0, 2},
				B:    []int{1, 3},
			},
			wantWeight: 9,
			wantPoints: []int{0, 3},
		},
		{
			name: "cheap shared point loses to two cheaper dedicated ones",
			in: Instance{
				// intervals [0,2] and [2,4]; point 2 costs 5, but points 0
				// and 4 cost 1+1=2.
				Beta: []float64{1, 9, 5, 9, 1},
				A:    []int{0, 2},
				B:    []int{2, 4},
			},
			wantWeight: 2,
			wantPoints: []int{0, 4},
		},
		{
			name: "chain of three overlapping",
			in: Instance{
				Beta: []float64{8, 2, 8, 2, 8},
				A:    []int{0, 1, 2},
				B:    []int{2, 3, 4},
			},
			// points 1 and 3 hit {0,1} and {1,2}: total 4.
			wantWeight: 4,
			wantPoints: []int{1, 3},
		},
		{
			name: "zero-weight points",
			in: Instance{
				Beta: []float64{0, 5, 0},
				A:    []int{0, 1},
				B:    []int{1, 2},
			},
			wantWeight: 0,
			wantPoints: []int{0, 2},
		},
	}
	for _, tt := range tests {
		for _, s := range solverTable() {
			t.Run(tt.name+"/"+s.name, func(t *testing.T) {
				got, err := s.f(&tt.in)
				if err != nil {
					t.Fatalf("%s: %v", s.name, err)
				}
				if math.Abs(got.Weight-tt.wantWeight) > 1e-9 {
					t.Errorf("weight = %v, want %v (points %v)", got.Weight, tt.wantWeight, got.Points)
				}
				if !got.covers(&tt.in) {
					t.Errorf("solution %v does not cover all intervals", got.Points)
				}
				if tt.wantPoints != nil && !reflect.DeepEqual(got.Points, tt.wantPoints) {
					// Equal-weight ties may legitimately differ; only flag if
					// the weight differs too (already checked) or coverage
					// fails (already checked). Still verify the points sum to
					// the reported weight.
				}
				var sum float64
				for _, p := range got.Points {
					sum += tt.in.Beta[p]
				}
				if math.Abs(sum-got.Weight) > 1e-9 {
					t.Errorf("points %v sum to %v, reported weight %v", got.Points, sum, got.Weight)
				}
			})
		}
	}
}

// randomInstance builds a random valid ordered-interval instance.
func randomInstance(r *workload.RNG, maxPoints int) *Instance {
	n := 1 + r.Intn(maxPoints)
	in := &Instance{Beta: make([]float64, n)}
	for i := range in.Beta {
		in.Beta[i] = float64(r.Intn(50))
	}
	// Random strictly increasing interval endpoints.
	a, b := 0, 0
	for a < n {
		width := 1 + r.Intn(4)
		end := a + width - 1
		if end >= n {
			end = n - 1
		}
		if end < b && len(in.A) > 0 {
			break
		}
		if len(in.A) > 0 && (a <= in.A[len(in.A)-1] || end <= in.B[len(in.B)-1]) {
			a++
			continue
		}
		if r.Float64() < 0.7 {
			in.A = append(in.A, a)
			in.B = append(in.B, end)
			b = end
		}
		a += 1 + r.Intn(3)
	}
	return in
}

func TestSolversAgreeOnRandomInstances(t *testing.T) {
	r := workload.NewRNG(2024)
	for trial := 0; trial < 500; trial++ {
		in := randomInstance(r, 18)
		if err := in.Validate(); err != nil {
			t.Fatalf("generator produced invalid instance: %v (%+v)", err, in)
		}
		brute, err := SolveBrute(in)
		if err != nil {
			t.Fatalf("brute: %v", err)
		}
		temps, err := SolveTempS(in)
		if err != nil {
			t.Fatalf("temps: %v (%+v)", err, in)
		}
		naive, err := SolveNaiveDP(in)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		if math.Abs(temps.Weight-brute.Weight) > 1e-9 {
			t.Fatalf("TempS weight %v != brute %v on %+v", temps.Weight, brute.Weight, in)
		}
		if math.Abs(naive.Weight-brute.Weight) > 1e-9 {
			t.Fatalf("NaiveDP weight %v != brute %v on %+v", naive.Weight, brute.Weight, in)
		}
		if !temps.covers(in) || !naive.covers(in) {
			t.Fatalf("solver returned non-covering solution on %+v", in)
		}
	}
}

func TestSolversAgreeOnPrimeInstances(t *testing.T) {
	// Instances arising from real paths via the prime-subpath pipeline.
	r := workload.NewRNG(555)
	for trial := 0; trial < 300; trial++ {
		n := 2 + r.Intn(60)
		nodeW := make([]float64, n)
		for i := range nodeW {
			nodeW[i] = r.Uniform(1, 30)
		}
		edgeW := make([]float64, n-1)
		for i := range edgeW {
			edgeW[i] = r.Uniform(1, 50)
		}
		k := r.Uniform(30, 150)
		pinst, _, err := prime.Analyze(nodeW, edgeW, k)
		if err != nil {
			trial--
			continue
		}
		in := &Instance{Beta: pinst.Beta, A: pinst.A, B: pinst.B}
		temps, err := SolveTempS(in)
		if err != nil {
			t.Fatalf("temps: %v", err)
		}
		naive, err := SolveNaiveDP(in)
		if err != nil {
			t.Fatalf("naive: %v", err)
		}
		if math.Abs(temps.Weight-naive.Weight) > 1e-9 {
			t.Fatalf("TempS %v != NaiveDP %v (n=%d k=%v)", temps.Weight, naive.Weight, n, k)
		}
		if in.NumPoints() <= 20 {
			brute, err := SolveBrute(in)
			if err != nil {
				t.Fatalf("brute: %v", err)
			}
			if math.Abs(temps.Weight-brute.Weight) > 1e-9 {
				t.Fatalf("TempS %v != brute %v", temps.Weight, brute.Weight)
			}
		}
	}
}

func TestSolveBruteTooLarge(t *testing.T) {
	in := &Instance{Beta: make([]float64, 30), A: []int{0}, B: []int{29}}
	if _, err := SolveBrute(in); !errors.Is(err, ErrTooLarge) {
		t.Errorf("error = %v, want ErrTooLarge", err)
	}
}

func TestTempSInstrumentation(t *testing.T) {
	r := workload.NewRNG(77)
	in := randomInstance(r, 2000)
	sol, tr, err := SolveTempSInstrumented(in)
	if err != nil {
		t.Fatalf("instrumented: %v", err)
	}
	plain, err := SolveTempS(in)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	if sol.Weight != plain.Weight {
		t.Errorf("instrumented weight %v != plain %v", sol.Weight, plain.Weight)
	}
	if len(in.A) > 0 {
		if tr.Steps == 0 {
			t.Error("no steps recorded")
		}
		if tr.MaxQueueLen < 1 {
			t.Error("max queue length < 1 despite intervals present")
		}
		if tr.MeanQueueLen() <= 0 {
			t.Error("mean queue length should be positive")
		}
	}
}

func TestTraceMeanEmptyIsZero(t *testing.T) {
	tr := &Trace{}
	if tr.MeanQueueLen() != 0 {
		t.Error("empty trace mean should be 0")
	}
}

// Property: TempS equals NaiveDP on arbitrary random instances.
func TestTempSEqualsNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		in := randomInstance(r, 400)
		a, err1 := SolveTempS(in)
		b, err2 := SolveNaiveDP(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a.Weight-b.Weight) < 1e-9 && a.covers(in) && b.covers(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGeneralSolvers(t *testing.T) {
	g := &GeneralInstance{
		Sets:   [][]int{{0, 1}, {1, 2}, {2, 3}},
		Weight: []float64{1, 5, 1, 5},
	}
	exact, err := SolveGeneralExact(g)
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if exact.Weight != 2 {
		t.Errorf("exact weight = %v, want 2 (points %v)", exact.Weight, exact.Points)
	}
	greedy, err := SolveGeneralGreedy(g)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if greedy.Weight < exact.Weight-1e-9 {
		t.Errorf("greedy %v beat exact %v", greedy.Weight, exact.Weight)
	}
}

func TestGeneralValidate(t *testing.T) {
	bad := []GeneralInstance{
		{Sets: [][]int{{}}, Weight: []float64{1}},
		{Sets: [][]int{{1}}, Weight: []float64{1}},
		{Sets: [][]int{{0}}, Weight: []float64{-1}},
	}
	for i, g := range bad {
		if err := g.Validate(); !errors.Is(err, ErrBadInstance) {
			t.Errorf("case %d: error = %v, want ErrBadInstance", i, err)
		}
	}
}

func TestGeneralMatchesStructuredOnIntervals(t *testing.T) {
	r := workload.NewRNG(31337)
	for trial := 0; trial < 100; trial++ {
		in := randomInstance(r, 14)
		g := FromIntervals(in)
		structured, err := SolveTempS(in)
		if err != nil {
			t.Fatalf("TempS: %v", err)
		}
		if len(g.Sets) == 0 {
			continue
		}
		general, err := SolveGeneralExact(g)
		if err != nil {
			t.Fatalf("general exact: %v", err)
		}
		if math.Abs(structured.Weight-general.Weight) > 1e-9 {
			t.Fatalf("structured %v != general %v on %+v", structured.Weight, general.Weight, in)
		}
	}
}
