package hitting

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadParts is returned by SumOfMaxPackingBound when the part count does
// not fit the weight vector.
var ErrBadParts = errors.New("hitting: parts must satisfy 1 ≤ parts ≤ len(weights)")

// SumOfMaxPackingBound computes a combinatorial lower bound on the sum-of-max
// objective of any partition of n tasks into exactly parts connected
// components, in the packing style of Träff and Wimmer's bipartition bound
// (arXiv 1410.0462): instead of relaxing the objective, pack a witness task
// into every component.
//
// Each of the parts components pays its heaviest task, and those payments are
// attained by parts distinct tasks. One of them is the component holding the
// globally heaviest task, which pays exactly max(weights); the remaining
// parts−1 payments are weights of parts−1 other distinct tasks, so they sum
// to at least the total of the parts−1 smallest weights. Hence
//
//	OPT ≥ max(weights) + Σ (parts−1 smallest weights)
//
// independent of the tree topology. The bound is tight on stars and on any
// instance where the parts−1 lightest tasks can each be severed alone.
// O(n log n) for the sort; the weight slice is not modified.
func SumOfMaxPackingBound(weights []float64, parts int) (float64, error) {
	n := len(weights)
	if parts < 1 || parts > n {
		return 0, fmt.Errorf("parts = %d, n = %d: %w", parts, n, ErrBadParts)
	}
	sorted := append([]float64(nil), weights...)
	sort.Float64s(sorted)
	bound := sorted[n-1]
	for i := 0; i < parts-1; i++ {
		bound += sorted[i]
	}
	return bound, nil
}
