package hitting

// Variants of the TEMP_S sweep explored by §2.3.2's closing discussion.
//
// The paper observes that W-values "have a tendency to grow towards [the]
// end" of the queue, and suggests that a search exploiting this — they
// propose a k-ary search — "may reduce the search time by a log factor",
// leaving it as future work. SolveTempSGallop implements that idea with an
// exponential (galloping) search from the BOTTOM of the queue: when the new
// W-value is large, the collapse point sits near the bottom and is found in
// O(log distance) instead of O(log queue).
//
// SolveTempSAmortized replaces the binary search + O(1) collapse with a
// plain pop loop from the bottom. Each popped row was pushed exactly once,
// so the total work is O(p) amortized — asymptotically better than the
// paper's per-step bound, at the cost of visiting every collapsed row. Both
// variants return exactly the same optima as SolveTempS; benches compare
// the three.

// SolveTempSGallop runs Algorithm 4.1 with a galloping collapse search from
// the queue bottom (the paper's proposed k-ary-search refinement).
func SolveTempSGallop(in *Instance) (*Solution, error) {
	return solveTempSSearch(in, gallopSearch)
}

// SolveTempSAmortized runs Algorithm 4.1 with an amortized pop-loop
// collapse.
func SolveTempSAmortized(in *Instance) (*Solution, error) {
	return solveTempSSearch(in, popSearch)
}

// searchFunc locates the first row index s in rows[head..tail] with
// rows[s].w >= w, or tail+1 if none.
type searchFunc func(rows []row, head, tail int, w float64) int

// gallopSearch probes tail, tail-1, tail-3, tail-7, … until it passes the
// collapse point, then binary-searches the bracketed range.
func gallopSearch(rows []row, head, tail int, w float64) int {
	if head > tail || rows[tail].w < w {
		return tail + 1
	}
	// Invariant: rows[hi].w >= w. Widen the step until rows[lo].w < w or we
	// hit head.
	step := 1
	hi := tail
	for {
		lo := tail - step
		if lo < head {
			lo = head
			if rows[lo].w >= w {
				return lo
			}
			// collapse point in (lo, hi]
			return binarySearchRows(rows, lo+1, hi, w)
		}
		if rows[lo].w < w {
			return binarySearchRows(rows, lo+1, hi, w)
		}
		hi = lo
		step *= 2
	}
}

// binarySearchRows finds the first index in [lo, hi] with w-value >= w,
// assuming rows[lo-1].w < w (or lo is the left boundary) and
// rows[hi].w >= w.
func binarySearchRows(rows []row, lo, hi int, w float64) int {
	for lo < hi {
		mid := lo + (hi-lo)/2
		if rows[mid].w >= w {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// popSearch scans linearly from the bottom; O(1) amortized because every
// visited row is removed by the caller's collapse.
func popSearch(rows []row, head, tail int, w float64) int {
	s := tail + 1
	for s-1 >= head && rows[s-1].w >= w {
		s--
	}
	return s
}

// solveTempSSearch is solveTempS with a pluggable collapse search. It
// duplicates the sweep rather than threading a function value through the
// hot loop of the production solver.
func solveTempSSearch(in *Instance, search searchFunc) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := in.NumIntervals()
	if p == 0 {
		return &Solution{}, nil
	}
	r := in.NumPoints()
	sw := make([]float64, p)
	scut := make([]*cutNode, p)
	arena := make([]cutNode, 0, r)
	rows := make([]row, p)
	head, tail := 0, -1
	nextStart := 0
	for e := 0; e < r; e++ {
		for head <= tail && in.B[rows[head].lo] < e {
			j := rows[head].lo
			sw[j], scut[j] = rows[head].w, rows[head].cut
			rows[head].lo++
			if rows[head].lo > rows[head].hi {
				head++
			}
		}
		starts := nextStart < p && in.A[nextStart] == e
		var gamma int
		switch {
		case head <= tail:
			gamma = rows[head].lo - 1
		case starts:
			gamma = nextStart - 1
		default:
			continue
		}
		var prevW float64
		var prevCut *cutNode
		if gamma >= 0 {
			prevW, prevCut = sw[gamma], scut[gamma]
		}
		w := in.Beta[e] + prevW
		arena = append(arena, cutNode{point: e, prev: prevCut})
		cut := &arena[len(arena)-1]
		if s := search(rows, head, tail, w); s <= tail {
			rows[s] = row{lo: rows[s].lo, hi: rows[tail].hi, w: w, cut: cut}
			tail = s
		}
		if starts {
			if head <= tail && rows[tail].w == w {
				rows[tail].hi = nextStart
			} else {
				tail++
				rows[tail] = row{lo: nextStart, hi: nextStart, w: w, cut: cut}
			}
			nextStart++
		}
	}
	if nextStart < p {
		return nil, ErrBadInstance
	}
	for head <= tail {
		for j := rows[head].lo; j <= rows[head].hi; j++ {
			sw[j], scut[j] = rows[head].w, rows[head].cut
		}
		head++
	}
	return &Solution{Points: scut[p-1].materialize(), Weight: sw[p-1]}, nil
}
