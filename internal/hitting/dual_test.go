package hitting

import (
	"errors"
	"testing"
)

func TestSumOfMaxPackingBoundHandCases(t *testing.T) {
	tests := []struct {
		name    string
		weights []float64
		parts   int
		want    float64
	}{
		{name: "one part pays only the max", weights: []float64{3, 9, 2}, parts: 1, want: 9},
		{name: "all singletons pay everything", weights: []float64{3, 9, 2}, parts: 3, want: 14},
		{name: "two parts pay max plus lightest", weights: []float64{3, 9, 2}, parts: 2, want: 11},
		{name: "all equal", weights: []float64{4, 4, 4}, parts: 2, want: 8},
		{name: "zeros are free witnesses", weights: []float64{0, 0, 7}, parts: 3, want: 7},
		{name: "single task", weights: []float64{5}, parts: 1, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SumOfMaxPackingBound(tt.weights, tt.parts)
			if err != nil {
				t.Fatalf("SumOfMaxPackingBound: %v", err)
			}
			if got != tt.want {
				t.Errorf("bound = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSumOfMaxPackingBoundRejectsBadParts(t *testing.T) {
	for _, parts := range []int{0, -1, 4} {
		if _, err := SumOfMaxPackingBound([]float64{1, 2, 3}, parts); !errors.Is(err, ErrBadParts) {
			t.Errorf("parts=%d: error = %v, want ErrBadParts", parts, err)
		}
	}
}

func TestSumOfMaxPackingBoundDoesNotMutate(t *testing.T) {
	w := []float64{5, 1, 3}
	if _, err := SumOfMaxPackingBound(w, 2); err != nil {
		t.Fatal(err)
	}
	if w[0] != 5 || w[1] != 1 || w[2] != 3 {
		t.Errorf("weights mutated: %v", w)
	}
}
