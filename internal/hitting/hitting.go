// Package hitting solves the structured weighted hitting-set problem at the
// heart of the paper's bandwidth-minimization algorithm (§2.3): given points
// (non-redundant path edges) with weights and a family of intervals over them
// (the prime critical subpaths), find a minimum-weight set of points hitting
// every interval.
//
// General weighted hitting set is NP-hard even with |A_i| ≤ 2 (Definition
// 2.1), but here the sets are edge sets of subpaths of a path: each interval
// is a contiguous point range and both endpoints are strictly increasing
// across intervals. That structure admits the paper's recurrence
//
//	S_i = min over points e in interval i of  β_e + β(S_{γ(e)})
//
// where γ(e) is the last interval (in left-end order) not containing e.
// SolveTempS implements the paper's Algorithm 4.1: an O(n + p log q) sweep
// that maintains the TEMP_S queue of (interval range, current min W-value,
// cut) rows. SolveNaiveDP is the paper's "naive" O(Σ|P_i|) evaluation, and
// SolveBrute is an exponential reference for tests.
package hitting

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Sentinel errors.
var (
	// ErrBadInstance is returned by Validate for malformed instances.
	ErrBadInstance = errors.New("hitting: bad instance")
	// ErrTooLarge is returned by SolveBrute for instances beyond brute reach.
	ErrTooLarge = errors.New("hitting: instance too large for brute force")
)

// Instance is the ordered-interval hitting instance. Points are indexed
// 0..len(Beta)-1 in path order; interval j covers the contiguous point range
// [A[j], B[j]].
type Instance struct {
	// Beta[i] is the weight of point i.
	Beta []float64
	// A and B are the inclusive interval endpoints; both must be strictly
	// increasing (prime subpaths are mutually non-nested).
	A, B []int
}

// NumPoints returns the number of points.
func (in *Instance) NumPoints() int { return len(in.Beta) }

// NumIntervals returns the number of intervals.
func (in *Instance) NumIntervals() int { return len(in.A) }

// Validate checks the structural requirements of the ordered-interval
// problem: consistent lengths, in-range endpoints, non-empty intervals, and
// strictly increasing A and B.
func (in *Instance) Validate() error {
	if len(in.A) != len(in.B) {
		return fmt.Errorf("len(A)=%d len(B)=%d: %w", len(in.A), len(in.B), ErrBadInstance)
	}
	r := len(in.Beta)
	for i, w := range in.Beta {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("Beta[%d] = %v: %w", i, w, ErrBadInstance)
		}
	}
	for j := range in.A {
		if in.A[j] < 0 || in.B[j] >= r || in.A[j] > in.B[j] {
			return fmt.Errorf("interval %d = [%d,%d] invalid over %d points: %w",
				j, in.A[j], in.B[j], r, ErrBadInstance)
		}
		if j > 0 && (in.A[j] <= in.A[j-1] || in.B[j] <= in.B[j-1]) {
			return fmt.Errorf("interval %d = [%d,%d] does not strictly follow [%d,%d]: %w",
				j, in.A[j], in.B[j], in.A[j-1], in.B[j-1], ErrBadInstance)
		}
	}
	return nil
}

// Solution is a hitting set: the chosen point indices in increasing order and
// their total weight.
type Solution struct {
	Points []int
	Weight float64
}

// covers reports whether the solution hits every interval of in.
func (s *Solution) covers(in *Instance) bool {
	for j := range in.A {
		hit := false
		for _, p := range s.Points {
			if in.A[j] <= p && p <= in.B[j] {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// cutNode is a persistent linked list of chosen points; cuts for different
// intervals share tails, keeping the sweep O(1) per extension.
type cutNode struct {
	point int
	prev  *cutNode
}

func (c *cutNode) materialize() []int {
	count := 0
	for n := c; n != nil; n = n.prev {
		count++
	}
	if count == 0 {
		return nil
	}
	out := make([]int, 0, count)
	for n := c; n != nil; n = n.prev {
		out = append(out, n.point)
	}
	sort.Ints(out)
	return out
}

// Trace records the instrumentation used for the Appendix B / Figure 2(d)
// study of TEMP_S queue behaviour.
type Trace struct {
	// QueueLenSum is the sum of queue lengths observed after processing each
	// covered point; divide by Steps for the mean length.
	QueueLenSum int
	// MaxQueueLen is the largest queue length observed.
	MaxQueueLen int
	// Steps is the number of covered points processed.
	Steps int
	// Collapses counts binary-search collapse operations that removed at
	// least one row.
	Collapses int
}

// MeanQueueLen returns the average TEMP_S queue length per step.
func (t *Trace) MeanQueueLen() float64 {
	if t.Steps == 0 {
		return 0
	}
	return float64(t.QueueLenSum) / float64(t.Steps)
}

// SolveTempS runs the paper's Algorithm 4.1. It requires a valid instance
// (Validate) and returns the minimum-weight hitting set. Empty instances
// (no intervals) yield the empty solution.
func SolveTempS(in *Instance) (*Solution, error) {
	sol, _, err := solveTempS(context.Background(), in, nil)
	return sol, err
}

// SolveTempSCtx is SolveTempS with cancellation: the sweep polls ctx
// periodically and aborts with its error once it is cancelled. The second
// return value is the number of points the sweep processed.
func SolveTempSCtx(ctx context.Context, in *Instance) (*Solution, int64, error) {
	return solveTempS(ctx, in, nil)
}

// SolveTempSInstrumented is SolveTempS with queue-behaviour instrumentation.
func SolveTempSInstrumented(in *Instance) (*Solution, *Trace, error) {
	sol, tr, _, err := SolveTempSInstrumentedCtx(context.Background(), in)
	return sol, tr, err
}

// SolveTempSInstrumentedCtx is SolveTempSCtx with queue-behaviour
// instrumentation.
func SolveTempSInstrumentedCtx(ctx context.Context, in *Instance) (*Solution, *Trace, int64, error) {
	tr := &Trace{}
	sol, iters, err := solveTempS(ctx, in, tr)
	return sol, tr, iters, err
}

// row is one entry of the TEMP_S queue: intervals lo..hi currently share the
// minimum W-value w, achieved by the cut headed at cut.
type row struct {
	lo, hi int
	w      float64
	cut    *cutNode
}

// tempSScratch holds the sweep's working arrays. Nothing in it escapes a
// solve (Solution materializes fresh slices), so solveTempS checks one out of
// a package pool per call and the steady-state sweep allocates nothing but
// the Solution itself.
type tempSScratch struct {
	sw    []float64
	scut  []*cutNode
	arena []cutNode
	rows  []row
}

var tempSPool = sync.Pool{New: func() any { return new(tempSScratch) }}

// grab returns the four arrays sized for p intervals and r points, reusing
// pooled capacity. The arena comes back with length 0 and capacity ≥ r: the
// sweep appends at most one node per point, so the backing array never moves
// and interior *cutNode pointers stay valid.
func (s *tempSScratch) grab(p, r int) (sw []float64, scut []*cutNode, arena []cutNode, rows []row) {
	if cap(s.sw) < p {
		s.sw = make([]float64, p)
	}
	if cap(s.scut) < p {
		s.scut = make([]*cutNode, p)
	}
	if cap(s.rows) < p {
		s.rows = make([]row, p)
	}
	if cap(s.arena) < r {
		s.arena = make([]cutNode, 0, r)
	}
	return s.sw[:p], s.scut[:p], s.arena[:0], s.rows[:p]
}

func solveTempS(ctx context.Context, in *Instance, tr *Trace) (*Solution, int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	var iters int64
	p := in.NumIntervals()
	if p == 0 {
		return &Solution{}, 0, nil
	}
	r := in.NumPoints()
	// Working arrays from the package pool: the finalized per-interval optima
	// (the paper's S_i weight and cut), the cut-node arena (at most one node
	// per covered point, so a single allocation replaces r small ones — this
	// constant factor is what the O(n + p log q) claim is sold on), and the
	// TEMP_S queue rows[head..tail], whose W-values are sorted in increasing
	// order from head to tail (paper §2.3.1: "the third column will always
	// remain sorted in increasing order").
	scratch := tempSPool.Get().(*tempSScratch)
	defer tempSPool.Put(scratch)
	sw, scut, arena, rows := scratch.grab(p, r)
	head, tail := 0, -1
	nextStart := 0
	for e := 0; e < r; e++ {
		// The sweep is the algorithm's main loop; poll for cancellation
		// every 256 points so huge instances stay responsive.
		iters++
		if iters&255 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, iters, err
			}
		}
		// Finalize intervals whose last point precedes e. Their minimum is
		// settled; at most one per step for compressed instances, but the
		// loop is safe for any valid instance.
		for head <= tail && in.B[rows[head].lo] < e {
			j := rows[head].lo
			sw[j], scut[j] = rows[head].w, rows[head].cut
			rows[head].lo++
			if rows[head].lo > rows[head].hi {
				head++
			}
		}
		// Determine gamma(e) = first covering interval − 1. Active queue
		// intervals all contain e; if the queue is empty the point is only
		// covered if a new interval starts exactly here.
		starts := nextStart < p && in.A[nextStart] == e
		var gamma int
		switch {
		case head <= tail:
			gamma = rows[head].lo - 1
		case starts:
			gamma = nextStart - 1
		default:
			continue // point covered by no interval; never useful
		}
		var prevW float64
		var prevCut *cutNode
		if gamma >= 0 {
			prevW, prevCut = sw[gamma], scut[gamma]
		}
		w := in.Beta[e] + prevW
		arena = append(arena, cutNode{point: e, prev: prevCut})
		cut := &arena[len(arena)-1]
		// Collapse: all rows with W-value >= w now share minimum w achieved
		// by e. Binary search for the first such row (paper step 2a), then
		// merge the suffix in O(1) by index arithmetic.
		s := head + sort.Search(tail-head+1, func(i int) bool {
			return rows[head+i].w >= w
		})
		if s <= tail {
			rows[s] = row{lo: rows[s].lo, hi: rows[tail].hi, w: w, cut: cut}
			tail = s
			if tr != nil {
				tr.Collapses++
			}
		}
		// Admit an interval starting at this point. Its only processed point
		// is e, so its current minimum is exactly w.
		if starts {
			if head <= tail && rows[tail].w == w {
				// The bottom row's minimum is already w and its cut contains
				// e (the collapse above just installed it), so the new
				// interval joins that row (paper: "increase the value of R
				// column BOTTOM row by one").
				rows[tail].hi = nextStart
			} else {
				tail++
				rows[tail] = row{lo: nextStart, hi: nextStart, w: w, cut: cut}
			}
			nextStart++
		}
		if tr != nil {
			tr.Steps++
			if l := tail - head + 1; l > 0 {
				tr.QueueLenSum += l
				if l > tr.MaxQueueLen {
					tr.MaxQueueLen = l
				}
			}
		}
	}
	if nextStart < p {
		// Some interval's first point was never visited; impossible for a
		// valid instance, but guard rather than return a wrong answer.
		return nil, iters, fmt.Errorf("interval %d starting at %d never admitted: %w",
			nextStart, in.A[nextStart], ErrBadInstance)
	}
	// Finalize the intervals still in the queue (they end at the last points).
	for head <= tail {
		for j := rows[head].lo; j <= rows[head].hi; j++ {
			sw[j], scut[j] = rows[head].w, rows[head].cut
		}
		head++
	}
	return &Solution{Points: scut[p-1].materialize(), Weight: sw[p-1]}, iters, nil
}

// SolveNaiveDP evaluates the paper's recurrence directly, scanning every
// point of every interval: O(Σ|P_i|) time, up to O(n·p). It is the "naive
// version for ease of understanding" of §2.3 and serves as the primary
// correctness oracle for SolveTempS.
func SolveNaiveDP(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	p := in.NumIntervals()
	if p == 0 {
		return &Solution{}, nil
	}
	r := in.NumPoints()
	// first[e] = first interval containing point e, or -1.
	first := make([]int, r)
	for e := range first {
		first[e] = -1
	}
	for j := p - 1; j >= 0; j-- {
		for e := in.A[j]; e <= in.B[j]; e++ {
			first[e] = j
		}
	}
	sw := make([]float64, p)
	scut := make([]*cutNode, p)
	for j := 0; j < p; j++ {
		best := math.Inf(1)
		var bestCut *cutNode
		for e := in.A[j]; e <= in.B[j]; e++ {
			gamma := first[e] - 1
			var prevW float64
			var prevCut *cutNode
			if gamma >= 0 {
				prevW, prevCut = sw[gamma], scut[gamma]
			}
			if w := in.Beta[e] + prevW; w < best {
				best = w
				bestCut = &cutNode{point: e, prev: prevCut}
			}
		}
		sw[j], scut[j] = best, bestCut
	}
	return &Solution{Points: scut[p-1].materialize(), Weight: sw[p-1]}, nil
}

// SolveBrute enumerates all point subsets; it is exponential and refuses
// instances with more than 22 points. For tests only.
func SolveBrute(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r := in.NumPoints()
	if in.NumIntervals() == 0 {
		return &Solution{}, nil
	}
	if r > 22 {
		return nil, fmt.Errorf("%d points: %w", r, ErrTooLarge)
	}
	best := math.Inf(1)
	var bestMask uint32
	for mask := uint32(0); mask < 1<<r; mask++ {
		var w float64
		for i := 0; i < r; i++ {
			if mask&(1<<i) != 0 {
				w += in.Beta[i]
			}
		}
		if w >= best {
			continue
		}
		ok := true
		for j := range in.A {
			hit := false
			for e := in.A[j]; e <= in.B[j]; e++ {
				if mask&(1<<e) != 0 {
					hit = true
					break
				}
			}
			if !hit {
				ok = false
				break
			}
		}
		if ok {
			best = w
			bestMask = mask
		}
	}
	sol := &Solution{Weight: best}
	for i := 0; i < r; i++ {
		if bestMask&(1<<i) != 0 {
			sol.Points = append(sol.Points, i)
		}
	}
	return sol, nil
}
