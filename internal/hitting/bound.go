package hitting

// PackingBound computes a lower bound on the weight of every hitting set of
// the instance by greedily packing the LP dual: intervals are processed in
// left-end order and each receives δ_j = min residual weight over its points,
// which is then subtracted from every point it covers. Any hitting set must
// pay at least Σ δ_j, because each chosen point can absorb at most its own
// weight across the intervals it hits.
//
// For valid ordered-interval instances (the constraint matrix is an interval
// matrix, hence totally unimodular) the greedy packing is exactly optimal, so
// the bound equals the optimal hitting weight — which makes it an independent
// optimality certificate for SolveTempS/SolveNaiveDP: a claimed solution is
// optimal iff its weight equals PackingBound (up to float tolerance).
func PackingBound(in *Instance) (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	residual := make([]float64, len(in.Beta))
	copy(residual, in.Beta)
	var total float64
	for j := range in.A {
		delta := residual[in.A[j]]
		for e := in.A[j] + 1; e <= in.B[j]; e++ {
			if residual[e] < delta {
				delta = residual[e]
			}
		}
		if delta <= 0 {
			continue
		}
		total += delta
		for e := in.A[j]; e <= in.B[j]; e++ {
			residual[e] -= delta
			if residual[e] < 0 {
				residual[e] = 0
			}
		}
	}
	return total, nil
}
