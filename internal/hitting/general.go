package hitting

import (
	"fmt"
	"math"
)

// This file implements general weighted hitting set (the paper's Definition
// 2.1, generalized with weights) for arbitrary set families. The general
// problem is NP-hard even with |A_i| ≤ 2; these solvers exist to contrast
// the structured path case with the general one in tests and docs, and to
// hit small instances exactly.

// GeneralInstance is an arbitrary weighted hitting-set instance over the
// universe 0..len(Weight)-1.
type GeneralInstance struct {
	// Sets are the subsets A_1..A_r that must each be hit.
	Sets [][]int
	// Weight[i] is the cost of choosing element i.
	Weight []float64
}

// Validate checks element ranges and weights.
func (g *GeneralInstance) Validate() error {
	m := len(g.Weight)
	for i, w := range g.Weight {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("weight[%d] = %v: %w", i, w, ErrBadInstance)
		}
	}
	for si, s := range g.Sets {
		if len(s) == 0 {
			return fmt.Errorf("set %d is empty (unhittable): %w", si, ErrBadInstance)
		}
		for _, e := range s {
			if e < 0 || e >= m {
				return fmt.Errorf("set %d element %d out of range [0,%d): %w", si, e, m, ErrBadInstance)
			}
		}
	}
	return nil
}

// SolveGeneralExact finds a minimum-weight hitting set by branching on the
// elements of the first unhit set, with a running upper bound for pruning.
// Exponential in the worst case; intended for small instances in tests.
func SolveGeneralExact(g *GeneralInstance) (*Solution, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	chosen := make([]bool, len(g.Weight))
	best := math.Inf(1)
	var bestSet []int
	var cur []int
	var curW float64
	var rec func()
	rec = func() {
		if curW >= best {
			return
		}
		// Find the first unhit set.
		var unhit []int
		for _, s := range g.Sets {
			hit := false
			for _, e := range s {
				if chosen[e] {
					hit = true
					break
				}
			}
			if !hit {
				unhit = s
				break
			}
		}
		if unhit == nil {
			best = curW
			bestSet = append([]int(nil), cur...)
			return
		}
		for _, e := range unhit {
			chosen[e] = true
			cur = append(cur, e)
			curW += g.Weight[e]
			rec()
			curW -= g.Weight[e]
			cur = cur[:len(cur)-1]
			chosen[e] = false
		}
	}
	rec()
	if math.IsInf(best, 1) {
		return nil, fmt.Errorf("no hitting set exists: %w", ErrBadInstance)
	}
	sol := &Solution{Points: normalizeInts(bestSet), Weight: best}
	return sol, nil
}

// SolveGeneralGreedy runs the classic cost-effectiveness greedy (pick the
// element covering the most unhit sets per unit weight): an O(log r)
// approximation, used as a heuristic contrast to the exact path algorithms.
func SolveGeneralGreedy(g *GeneralInstance) (*Solution, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	hit := make([]bool, len(g.Sets))
	remaining := len(g.Sets)
	var sol Solution
	chosen := make([]bool, len(g.Weight))
	for remaining > 0 {
		bestE, bestScore := -1, 0.0
		for e := range g.Weight {
			if chosen[e] {
				continue
			}
			covers := 0
			for si, s := range g.Sets {
				if hit[si] {
					continue
				}
				for _, x := range s {
					if x == e {
						covers++
						break
					}
				}
			}
			if covers == 0 {
				continue
			}
			score := float64(covers) / math.Max(g.Weight[e], 1e-300)
			if score > bestScore {
				bestScore, bestE = score, e
			}
		}
		if bestE < 0 {
			return nil, fmt.Errorf("no hitting set exists: %w", ErrBadInstance)
		}
		chosen[bestE] = true
		sol.Points = append(sol.Points, bestE)
		sol.Weight += g.Weight[bestE]
		for si, s := range g.Sets {
			if hit[si] {
				continue
			}
			for _, x := range s {
				if x == bestE {
					hit[si] = true
					remaining--
					break
				}
			}
		}
	}
	sol.Points = normalizeInts(sol.Points)
	return &sol, nil
}

// FromIntervals converts an ordered-interval instance into a general one, for
// cross-checking the structured solvers against the general ones.
func FromIntervals(in *Instance) *GeneralInstance {
	g := &GeneralInstance{Weight: append([]float64(nil), in.Beta...)}
	for j := range in.A {
		s := make([]int, 0, in.B[j]-in.A[j]+1)
		for e := in.A[j]; e <= in.B[j]; e++ {
			s = append(s, e)
		}
		g.Sets = append(g.Sets, s)
	}
	return g
}

func normalizeInts(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
