package hitting

import (
	"errors"
	"math"
	"testing"

	"repro/internal/workload"
)

func TestPackingBoundHandCases(t *testing.T) {
	tests := []struct {
		name string
		in   Instance
		want float64
	}{
		{"no intervals", Instance{Beta: []float64{5, 5}}, 0},
		{
			name: "single interval",
			in:   Instance{Beta: []float64{5, 2, 9}, A: []int{0}, B: []int{2}},
			want: 2,
		},
		{
			name: "shared cheap point",
			in: Instance{
				Beta: []float64{4, 1, 4},
				A:    []int{0, 1},
				B:    []int{1, 2},
			},
			want: 1,
		},
		{
			name: "disjoint intervals add",
			in: Instance{
				Beta: []float64{3, 7, 2, 9},
				A:    []int{0, 2},
				B:    []int{1, 3},
			},
			want: 5,
		},
		{
			name: "zero-weight point",
			in:   Instance{Beta: []float64{0, 8}, A: []int{0}, B: []int{1}},
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := PackingBound(&tt.in)
			if err != nil {
				t.Fatalf("PackingBound: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("PackingBound = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPackingBoundRejectsBadInstance(t *testing.T) {
	in := &Instance{Beta: []float64{1}, A: []int{0}, B: []int{1}}
	if _, err := PackingBound(in); !errors.Is(err, ErrBadInstance) {
		t.Fatalf("PackingBound(bad) = %v, want ErrBadInstance", err)
	}
}

// The ordered-interval constraint matrix is an interval matrix, so the LP
// relaxation is integral and the greedy dual packing is tight: the bound must
// equal the optimal hitting weight exactly, not merely bound it from below.
func TestPackingBoundMatchesOptimum(t *testing.T) {
	r := workload.NewRNG(90210)
	for trial := 0; trial < 400; trial++ {
		in := randomInstance(r, 18)
		sol, err := SolveTempS(in)
		if err != nil {
			t.Fatalf("seed %d trial %d: SolveTempS: %v", r.Seed(), trial, err)
		}
		lb, err := PackingBound(in)
		if err != nil {
			t.Fatalf("seed %d trial %d: PackingBound: %v", r.Seed(), trial, err)
		}
		eps := 1e-9 * math.Max(1, math.Abs(sol.Weight))
		if math.Abs(lb-sol.Weight) > eps {
			t.Fatalf("seed %d trial %d: PackingBound = %v, optimum = %v (instance %+v)",
				r.Seed(), trial, lb, sol.Weight, in)
		}
	}
}
