package treecut

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
)

// This file holds exact and heuristic solvers for the NP-complete general
// problem: minimum-weight edge cut of a tree such that every component
// weighs at most K.
//
//   - TreeBandwidthExact: pseudo-polynomial DP over integer vertex weights,
//     O(n·K²) worst case — exact, the standard antidote to Theorem 1's
//     knapsack hardness when weights are bounded integers.
//   - TreeBandwidthBB: branch and bound over edge subsets for real weights,
//     exact but exponential (n ≤ ~24).
//   - TreeBandwidthGreedy: post-order accumulate-and-cut heuristic with a
//     redundancy-elimination pass; no optimality guarantee (Theorem 1 says
//     none is cheap), evaluated against the exact DP in tests and benches.
//
// Each solver has a Ctx variant that polls the context inside its main loop
// (so a cancelled context aborts a long solve promptly), reports main-loop
// iterations, and opens obs phase spans — the shape the engine registry and
// the async jobs subsystem consume. The plain functions remain as
// context-free wrappers.

// pollEvery is the iteration stride between context checks; a power of two
// so the check compiles to a mask.
const pollEvery = 4096

// rootOrder returns a BFS order from vertex 0 plus parent and parent-edge
// arrays; reversing the order gives a post-order.
func rootOrder(t *graph.Tree) (order, parent, parentEdge []int) {
	n := t.Len()
	adj := t.Adjacency()
	order = make([]int, 0, n)
	parent = make([]int, n)
	parentEdge = make([]int, n)
	for v := range parent {
		parent[v] = -1
		parentEdge[v] = -1
	}
	order = append(order, 0)
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		for _, a := range adj[v] {
			if a.To != parent[v] {
				parent[a.To] = v
				parentEdge[a.To] = a.Edge
				order = append(order, a.To)
			}
		}
	}
	return order, parent, parentEdge
}

// TreeBandwidthExact computes a minimum-weight feasible cut for a tree with
// integral vertex weights and integral bound k. It refuses instances whose
// n·k product would be excessive.
func TreeBandwidthExact(t *graph.Tree, k int) (*CutResult, error) {
	res, _, err := TreeBandwidthExactCtx(context.Background(), t, k)
	return res, err
}

// TreeBandwidthExactCtx is TreeBandwidthExact with context cancellation
// polled inside the DP sweep, iteration accounting, and phase spans
// ("exact-dp", "dp-reconstruct") when the context carries a trace.
func TreeBandwidthExactCtx(ctx context.Context, t *graph.Tree, k int) (*CutResult, int64, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("bound %d: %w", k, ErrBadInput)
	}
	n := t.Len()
	if n*k > 50_000_000 {
		return nil, 0, fmt.Errorf("n*K = %d: %w", n*k, ErrTooLarge)
	}
	var iters int64
	wInt := make([]int, n)
	for v, w := range t.NodeW {
		if w != math.Trunc(w) || w < 0 {
			return nil, 0, fmt.Errorf("vertex %d weight %v not a non-negative integer: %w", v, w, ErrBadInput)
		}
		wInt[v] = int(w)
		if wInt[v] > k {
			return nil, 0, fmt.Errorf("vertex %d weight %d > K=%d: %w", v, wInt[v], k, ErrInfeasible)
		}
	}
	order, parent, parentEdge := rootOrder(t)
	adj := t.Adjacency()
	// dp[v][w] = min cut weight within v's subtree such that the component
	// containing v weighs exactly w; math.Inf(1) if impossible.
	// choice[v] records, per child, whether the child edge was cut and at
	// which component weight, enough to reconstruct the cut.
	dp := make([][]float64, n)
	type childDecision struct {
		child int
		// cutAt[w] reports whether, on the optimal path to component weight
		// w after merging this child, the child edge was cut; childW[w] is
		// the component weight contributed by (or chosen inside) the child.
		cutAt  []bool
		childW []int
	}
	decisions := make([][]childDecision, n)
	// bestW[v] is the component weight achieving min_w dp[v][w]; bestVal[v]
	// the value.
	bestW := make([]int, n)
	bestVal := make([]float64, n)
	sweep := obs.Phase(ctx, "exact-dp")
	sweep.SetAttr("n", n)
	sweep.SetAttr("k", k)
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		cur := make([]float64, k+1)
		for w := range cur {
			cur[w] = math.Inf(1)
		}
		cur[wInt[v]] = 0
		for _, a := range adj[v] {
			if a.To == parent[v] {
				continue
			}
			c := a.To
			cdp := dp[c]
			next := make([]float64, k+1)
			dec := childDecision{child: c, cutAt: make([]bool, k+1), childW: make([]int, k+1)}
			for w := 0; w <= k; w++ {
				// One iteration per DP row keeps the poll cadence
				// size-independent; the row itself is O(w) work.
				if iters++; iters&(pollEvery-1) == 0 {
					select {
					case <-ctx.Done():
						sweep.End()
						return nil, iters, ctx.Err()
					default:
					}
				}
				next[w] = math.Inf(1)
				if !math.IsInf(cur[w], 1) {
					// Cut the child edge: pay edge weight plus the child's
					// best standalone subtree cost.
					if v2 := cur[w] + t.Edges[a.Edge].W + bestVal[c]; v2 < next[w] {
						next[w] = v2
						dec.cutAt[w] = true
						dec.childW[w] = bestW[c]
					}
				}
				// Keep the child edge: combine component weights (wc = 0 is
				// possible when the child subtree has zero-weight vertices).
				for wc := 0; wc <= w; wc++ {
					if math.IsInf(cdp[wc], 1) || math.IsInf(cur[w-wc], 1) {
						continue
					}
					if v2 := cur[w-wc] + cdp[wc]; v2 < next[w] {
						next[w] = v2
						dec.cutAt[w] = false
						dec.childW[w] = wc
					}
				}
			}
			cur = next
			decisions[v] = append(decisions[v], dec)
		}
		dp[v] = cur
		bestVal[v] = math.Inf(1)
		for w := 0; w <= k; w++ {
			if cur[w] < bestVal[v] {
				bestVal[v] = cur[w]
				bestW[v] = w
			}
		}
		if math.IsInf(bestVal[v], 1) {
			sweep.End()
			return nil, iters, ErrInfeasible
		}
	}
	sweep.End()
	// Reconstruct: walk down from the root, tracking each vertex's chosen
	// component weight and unwinding the per-child decisions in reverse.
	rec := obs.Phase(ctx, "dp-reconstruct")
	defer rec.End()
	res := &CutResult{}
	type frame struct {
		v, w int
	}
	stack := []frame{{v: 0, w: bestW[0]}}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		w := fr.w
		// Decisions were appended child by child; undo them last-to-first.
		for di := len(decisions[fr.v]) - 1; di >= 0; di-- {
			dec := decisions[fr.v][di]
			if dec.cutAt[w] {
				res.Cut = append(res.Cut, parentEdge[dec.child])
				stack = append(stack, frame{v: dec.child, w: dec.childW[w]})
				// component weight at v unchanged by a cut child
			} else {
				stack = append(stack, frame{v: dec.child, w: dec.childW[w]})
				w -= dec.childW[w]
			}
		}
	}
	sort.Ints(res.Cut)
	for _, e := range res.Cut {
		res.Weight += t.Edges[e].W
	}
	return res, iters, nil
}

// TreeBandwidthBB computes a minimum-weight feasible cut for real-weighted
// trees by branch and bound over edges in decreasing weight order, pruning
// with the running best. Exact; exponential; refuses more than 24 edges.
func TreeBandwidthBB(t *graph.Tree, k float64) (*CutResult, error) {
	res, _, err := TreeBandwidthBBCtx(context.Background(), t, k)
	return res, err
}

// errCancelled distinguishes a context abort from an exhausted search inside
// the branch-and-bound recursion.
var errCancelled = fmt.Errorf("treecut: cancelled")

// TreeBandwidthBBCtx is TreeBandwidthBB with context cancellation polled at
// every pollEvery-th search node, iteration accounting, and a
// "branch-and-bound" phase span.
func TreeBandwidthBBCtx(ctx context.Context, t *graph.Tree, k float64) (*CutResult, int64, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	if !(k > 0) || math.IsNaN(k) || math.IsInf(k, 0) {
		return nil, 0, fmt.Errorf("bound %v: %w", k, ErrBadInput)
	}
	if t.MaxNodeWeight() > k {
		return nil, 0, fmt.Errorf("max vertex weight %v > K=%v: %w", t.MaxNodeWeight(), k, ErrInfeasible)
	}
	m := t.NumEdges()
	if m > 24 {
		return nil, 0, fmt.Errorf("%d edges: %w", m, ErrTooLarge)
	}
	span := obs.Phase(ctx, "branch-and-bound")
	span.SetAttr("edges", m)
	defer span.End()
	best := math.Inf(1)
	var bestCut []int
	var cur []int
	var iters int64
	feasible := func(cut []int) bool {
		maxW, err := t.MaxComponentWeight(cut)
		return err == nil && maxW <= k
	}
	var rec func(pos int, weight float64) error
	rec = func(pos int, weight float64) error {
		if iters++; iters&(pollEvery-1) == 0 {
			select {
			case <-ctx.Done():
				return errCancelled
			default:
			}
		}
		if weight >= best {
			return nil
		}
		if pos == m {
			if feasible(append([]int(nil), cur...)) {
				best = weight
				bestCut = append(bestCut[:0], cur...)
			}
			return nil
		}
		// Branch: skip edge pos first (prefer cheaper cuts), then cut it.
		if err := rec(pos+1, weight); err != nil {
			return err
		}
		cur = append(cur, pos)
		err := rec(pos+1, weight+t.Edges[pos].W)
		cur = cur[:len(cur)-1]
		return err
	}
	if err := rec(0, 0); err != nil {
		return nil, iters, ctx.Err()
	}
	if math.IsInf(best, 1) {
		return nil, iters, ErrInfeasible
	}
	sort.Ints(bestCut)
	return &CutResult{Cut: bestCut, Weight: best}, iters, nil
}

// TreeBandwidthGreedy computes a feasible cut heuristically: a post-order
// sweep that, whenever the accumulated component around a vertex overflows
// K, cuts absorbed child edges in decreasing weight-per-load order until it
// fits; then a redundancy pass re-admits cut edges (heaviest first) whose
// return keeps the partition feasible.
func TreeBandwidthGreedy(t *graph.Tree, k float64) (*CutResult, error) {
	res, _, err := TreeBandwidthGreedyCtx(context.Background(), t, k)
	return res, err
}

// TreeBandwidthGreedyCtx is TreeBandwidthGreedy with context cancellation
// polled per swept vertex, iteration accounting, and phase spans
// ("greedy-sweep", "redundancy-pass").
func TreeBandwidthGreedyCtx(ctx context.Context, t *graph.Tree, k float64) (*CutResult, int64, error) {
	if err := t.Validate(); err != nil {
		return nil, 0, err
	}
	if !(k > 0) || math.IsNaN(k) || math.IsInf(k, 0) {
		return nil, 0, fmt.Errorf("bound %v: %w", k, ErrBadInput)
	}
	if t.MaxNodeWeight() > k {
		return nil, 0, fmt.Errorf("max vertex weight %v > K=%v: %w", t.MaxNodeWeight(), k, ErrInfeasible)
	}
	var iters int64
	n := t.Len()
	order, parent, _ := rootOrder(t)
	adj := t.Adjacency()
	res := make([]float64, n)
	copy(res, t.NodeW)
	cutSet := make(map[int]bool)
	type cand struct {
		res  float64
		edge int
	}
	sweep := obs.Phase(ctx, "greedy-sweep")
	for i := n - 1; i >= 0; i-- {
		if iters++; iters&(pollEvery-1) == 0 {
			select {
			case <-ctx.Done():
				sweep.End()
				return nil, iters, ctx.Err()
			default:
			}
		}
		v := order[i]
		var children []cand
		total := t.NodeW[v]
		for _, a := range adj[v] {
			if a.To == parent[v] {
				continue
			}
			children = append(children, cand{res: res[a.To], edge: a.Edge})
			total += res[a.To]
		}
		if total <= k {
			res[v] = total
			continue
		}
		// Prefer cutting edges that shed the most load per unit of cut
		// weight.
		sort.Slice(children, func(a, b int) bool {
			ra := children[a].res / math.Max(t.Edges[children[a].edge].W, 1e-12)
			rb := children[b].res / math.Max(t.Edges[children[b].edge].W, 1e-12)
			return ra > rb
		})
		for _, c := range children {
			if total <= k {
				break
			}
			total -= c.res
			cutSet[c.edge] = true
		}
		res[v] = total
	}
	sweep.End()
	// Redundancy elimination: try to restore the heaviest cut edges first.
	redo := obs.Phase(ctx, "redundancy-pass")
	defer redo.End()
	cut := make([]int, 0, len(cutSet))
	for e := range cutSet {
		cut = append(cut, e)
	}
	sort.Slice(cut, func(a, b int) bool { return t.Edges[cut[a]].W > t.Edges[cut[b]].W })
	for _, e := range cut {
		if iters++; iters&(pollEvery-1) == 0 {
			select {
			case <-ctx.Done():
				return nil, iters, ctx.Err()
			default:
			}
		}
		delete(cutSet, e)
		trial := make([]int, 0, len(cutSet))
		for x := range cutSet {
			trial = append(trial, x)
		}
		sort.Ints(trial)
		maxW, err := t.MaxComponentWeight(trial)
		if err != nil || maxW > k {
			cutSet[e] = true
		}
	}
	out := &CutResult{}
	for e := range cutSet {
		out.Cut = append(out.Cut, e)
		out.Weight += t.Edges[e].W
	}
	sort.Ints(out.Cut)
	return out, iters, nil
}
