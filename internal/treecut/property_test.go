package treecut

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// Property: on random integer-weight trees, the exact DP returns a feasible
// cut that the greedy heuristic never beats, and the star special case
// agrees with the generic DP.
func TestTreeBandwidthExactProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(14)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 9), workload.UniformWeights(1, 30))
		for v := range tr.NodeW {
			tr.NodeW[v] = float64(1 + int(tr.NodeW[v])%9)
		}
		for i := range tr.Edges {
			tr.Edges[i].W = float64(int(tr.Edges[i].W))
		}
		k := 9 + r.Intn(25)
		exact, err := TreeBandwidthExact(tr, k)
		if err != nil {
			return true // infeasible instances are skipped
		}
		maxW, err := tr.MaxComponentWeight(exact.Cut)
		if err != nil || maxW > float64(k) {
			return false
		}
		greedy, err := TreeBandwidthGreedy(tr, float64(k))
		if err != nil {
			return false
		}
		return greedy.Weight >= exact.Weight-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: the Theorem 1 mapping is weight-exact for random knapsack
// instances: star-cut optimum + knapsack optimum = total profit.
func TestTheorem1Property(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 1 + r.Intn(10)
		items := make([]KnapsackItem, n)
		var total float64
		maxLeaf := 0
		for i := range items {
			items[i] = KnapsackItem{Weight: 1 + r.Intn(7), Profit: float64(1 + r.Intn(25))}
			total += items[i].Profit
			if items[i].Weight > maxLeaf {
				maxLeaf = items[i].Weight
			}
		}
		capacity := maxLeaf + r.Intn(20) // keep the star feasible
		star, err := KnapsackToStar(items)
		if err != nil {
			return false
		}
		cut, err := SolveStarExact(star, float64(capacity))
		if err != nil {
			return false
		}
		pack, err := KnapsackDP(items, capacity)
		if err != nil {
			return false
		}
		return abs(cut.Weight+pack.Profit-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
