package treecut

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/workload"
)

func TestKnapsackDPHandCases(t *testing.T) {
	tests := []struct {
		name     string
		items    []KnapsackItem
		capacity int
		want     float64
		chosen   []int
	}{
		{"empty", nil, 10, 0, nil},
		{"zero capacity", []KnapsackItem{{Weight: 1, Profit: 5}}, 0, 0, nil},
		{
			"classic",
			[]KnapsackItem{{2, 3}, {3, 4}, {4, 5}, {5, 6}},
			5, 7, []int{0, 1},
		},
		{
			"take all",
			[]KnapsackItem{{1, 1}, {1, 1}},
			5, 2, []int{0, 1},
		},
		{
			"heavy beats light",
			[]KnapsackItem{{5, 10}, {1, 1}, {1, 1}},
			5, 10, []int{0},
		},
		{
			"zero-weight item always taken",
			[]KnapsackItem{{0, 7}, {5, 3}},
			4, 7, []int{0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := KnapsackDP(tt.items, tt.capacity)
			if err != nil {
				t.Fatalf("KnapsackDP: %v", err)
			}
			if got.Profit != tt.want {
				t.Errorf("Profit = %v, want %v (chosen %v)", got.Profit, tt.want, got.Chosen)
			}
			if tt.chosen != nil && !reflect.DeepEqual(got.Chosen, tt.chosen) {
				t.Errorf("Chosen = %v, want %v", got.Chosen, tt.chosen)
			}
			// Verify the chosen set is consistent with the reported profit
			// and capacity.
			var w int
			var p float64
			for _, i := range got.Chosen {
				w += tt.items[i].Weight
				p += tt.items[i].Profit
			}
			if w > tt.capacity || math.Abs(p-got.Profit) > 1e-9 {
				t.Errorf("chosen %v: weight %d, profit %v vs reported %v", got.Chosen, w, p, got.Profit)
			}
		})
	}
}

func TestKnapsackDPErrors(t *testing.T) {
	if _, err := KnapsackDP(nil, -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative capacity: %v", err)
	}
	if _, err := KnapsackDP([]KnapsackItem{{Weight: -1, Profit: 1}}, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative weight: %v", err)
	}
	if _, err := KnapsackBB([]KnapsackItem{{Weight: 1, Profit: math.NaN()}}, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("nan profit: %v", err)
	}
}

func TestKnapsackBBMatchesDP(t *testing.T) {
	r := workload.NewRNG(42)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(14)
		items := make([]KnapsackItem, n)
		for i := range items {
			items[i] = KnapsackItem{Weight: r.Intn(20), Profit: float64(r.Intn(50))}
		}
		capacity := r.Intn(60)
		dp, err := KnapsackDP(items, capacity)
		if err != nil {
			t.Fatalf("dp: %v", err)
		}
		bb, err := KnapsackBB(items, capacity)
		if err != nil {
			t.Fatalf("bb: %v", err)
		}
		if math.Abs(dp.Profit-bb.Profit) > 1e-9 {
			t.Fatalf("DP profit %v != BB profit %v on %+v cap %d", dp.Profit, bb.Profit, items, capacity)
		}
	}
}

func TestKnapsackToStarRoundTrip(t *testing.T) {
	items := []KnapsackItem{{2, 3}, {3, 4}, {4, 5}}
	star, err := KnapsackToStar(items)
	if err != nil {
		t.Fatalf("KnapsackToStar: %v", err)
	}
	if !star.IsStar() {
		t.Fatal("result is not a star")
	}
	back, err := StarToKnapsack(star)
	if err != nil {
		t.Fatalf("StarToKnapsack: %v", err)
	}
	if !reflect.DeepEqual(back, items) {
		t.Errorf("round trip = %+v, want %+v", back, items)
	}
}

func TestStarToKnapsackRejectsNonStar(t *testing.T) {
	path, _ := graph.NewTree([]float64{1, 1, 1, 1}, []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	if _, err := StarToKnapsack(path); !errors.Is(err, ErrBadInput) {
		t.Errorf("error = %v, want ErrBadInput", err)
	}
	frac, _ := graph.NewTree([]float64{0, 1.5}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := StarToKnapsack(frac); !errors.Is(err, ErrBadInput) {
		t.Errorf("fractional leaf: error = %v, want ErrBadInput", err)
	}
}

// TestTheorem1ReductionForward verifies the paper's mapping: a maximum-profit
// packing corresponds to a minimum-weight star cut with
// δ(S) = Σp − profit(I).
func TestTheorem1ReductionForward(t *testing.T) {
	r := workload.NewRNG(1994)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(12)
		items := make([]KnapsackItem, n)
		var totalProfit float64
		for i := range items {
			items[i] = KnapsackItem{Weight: 1 + r.Intn(9), Profit: float64(1 + r.Intn(30))}
			totalProfit += items[i].Profit
		}
		capacity := 1 + r.Intn(30)
		pack, err := KnapsackDP(items, capacity)
		if err != nil {
			t.Fatalf("KnapsackDP: %v", err)
		}
		star, err := KnapsackToStar(items)
		if err != nil {
			t.Fatalf("KnapsackToStar: %v", err)
		}
		// Bound K = capacity (centre weight 0). Solve the star cut exactly
		// two independent ways: via knapsack (SolveStarExact) and via the
		// generic tree DP.
		maxLeaf := 0
		for _, it := range items {
			if it.Weight > maxLeaf {
				maxLeaf = it.Weight
			}
		}
		k := capacity
		if maxLeaf > k {
			k = maxLeaf // keep the instance feasible: pruned leaves stand alone
		}
		cutA, err := SolveStarExact(star, float64(capacity))
		if maxLeaf > capacity {
			// Some leaf alone exceeds the capacity bound: infeasible star.
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("want ErrInfeasible, got %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("SolveStarExact: %v", err)
		}
		wantCutWeight := totalProfit - pack.Profit
		if math.Abs(cutA.Weight-wantCutWeight) > 1e-9 {
			t.Fatalf("star cut weight %v != Σp − OPT = %v (items %+v cap %d)",
				cutA.Weight, wantCutWeight, items, capacity)
		}
		cutB, err := TreeBandwidthExact(star, k)
		if err != nil {
			t.Fatalf("TreeBandwidthExact: %v", err)
		}
		if k == capacity && math.Abs(cutB.Weight-wantCutWeight) > 1e-9 {
			t.Fatalf("tree DP cut weight %v != %v", cutB.Weight, wantCutWeight)
		}
	}
}

// TestTheorem1ReductionBackward verifies the other direction: solving the
// star cut solves the knapsack.
func TestTheorem1ReductionBackward(t *testing.T) {
	r := workload.NewRNG(8128)
	for trial := 0; trial < 100; trial++ {
		n := 1 + r.Intn(10)
		items := make([]KnapsackItem, n)
		var totalProfit float64
		for i := range items {
			items[i] = KnapsackItem{Weight: 1 + r.Intn(6), Profit: float64(1 + r.Intn(20))}
			totalProfit += items[i].Profit
		}
		capacity := n * 3
		star, err := KnapsackToStar(items)
		if err != nil {
			t.Fatalf("KnapsackToStar: %v", err)
		}
		cut, err := SolveStarExact(star, float64(capacity))
		if err != nil {
			if errors.Is(err, ErrInfeasible) {
				continue
			}
			t.Fatalf("SolveStarExact: %v", err)
		}
		// The kept items form a packing of profit Σp − δ(S); it must be
		// optimal.
		inCut := make(map[int]bool, len(cut.Cut))
		for _, e := range cut.Cut {
			inCut[e] = true
		}
		var keptW int
		var keptP float64
		for i, it := range items {
			if !inCut[i] {
				keptW += it.Weight
				keptP += it.Profit
			}
		}
		if keptW > capacity {
			t.Fatalf("kept items overflow the knapsack: %d > %d", keptW, capacity)
		}
		pack, err := KnapsackDP(items, capacity)
		if err != nil {
			t.Fatalf("KnapsackDP: %v", err)
		}
		if math.Abs(keptP-pack.Profit) > 1e-9 {
			t.Fatalf("kept profit %v != optimal %v", keptP, pack.Profit)
		}
	}
}

func TestTreeBandwidthExactMatchesBB(t *testing.T) {
	r := workload.NewRNG(31415)
	for trial := 0; trial < 150; trial++ {
		n := 2 + r.Intn(10)
		tr := workload.RandomTree(r, n,
			workload.Weights{Dist: workload.DistConstant, Lo: 1, Hi: 1}, // placeholder, overwritten below
			workload.UniformWeights(1, 20))
		for v := range tr.NodeW {
			tr.NodeW[v] = float64(1 + r.Intn(8))
		}
		k := 8 + r.Intn(20)
		exact, err1 := TreeBandwidthExact(tr, k)
		bb, err2 := TreeBandwidthBB(tr, float64(k))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("error mismatch: %v vs %v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if math.Abs(exact.Weight-bb.Weight) > 1e-9 {
			t.Fatalf("exact %v != BB %v\nnodeW=%v edges=%v k=%d\nexact cut=%v bb cut=%v",
				exact.Weight, bb.Weight, tr.NodeW, tr.Edges, k, exact.Cut, bb.Cut)
		}
		// The exact cut must be feasible.
		maxW, err := tr.MaxComponentWeight(exact.Cut)
		if err != nil {
			t.Fatalf("MaxComponentWeight: %v", err)
		}
		if maxW > float64(k) {
			t.Fatalf("exact cut infeasible: component %v > %d", maxW, k)
		}
	}
}

func TestTreeBandwidthGreedyFeasibleAndBounded(t *testing.T) {
	r := workload.NewRNG(2020)
	worst := 1.0
	for trial := 0; trial < 100; trial++ {
		n := 2 + r.Intn(10)
		tr := workload.RandomTree(r, n, workload.UniformWeights(1, 8), workload.UniformWeights(1, 20))
		for v := range tr.NodeW {
			tr.NodeW[v] = math.Trunc(tr.NodeW[v])
		}
		k := 8 + r.Intn(20)
		exact, err := TreeBandwidthExact(tr, k)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatalf("exact: %v", err)
		}
		greedy, err := TreeBandwidthGreedy(tr, float64(k))
		if err != nil {
			t.Fatalf("greedy: %v", err)
		}
		maxW, err := tr.MaxComponentWeight(greedy.Cut)
		if err != nil {
			t.Fatalf("MaxComponentWeight: %v", err)
		}
		if maxW > float64(k) {
			t.Fatalf("greedy cut infeasible")
		}
		if greedy.Weight < exact.Weight-1e-9 {
			t.Fatalf("greedy %v beat exact %v — exact solver is wrong", greedy.Weight, exact.Weight)
		}
		if exact.Weight > 0 {
			if ratio := greedy.Weight / exact.Weight; ratio > worst {
				worst = ratio
			}
		}
	}
	t.Logf("worst greedy/exact ratio observed: %.3f", worst)
}

func TestTreeBandwidthExactErrors(t *testing.T) {
	tr, _ := graph.NewTree([]float64{1, 2}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := TreeBandwidthExact(tr, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0: %v", err)
	}
	frac, _ := graph.NewTree([]float64{1.5, 2}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := TreeBandwidthExact(frac, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("fractional: %v", err)
	}
	heavy, _ := graph.NewTree([]float64{10, 2}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := TreeBandwidthExact(heavy, 5); !errors.Is(err, ErrInfeasible) {
		t.Errorf("heavy vertex: %v", err)
	}
	big, _ := graph.NewTree(make([]float64, 2), []graph.Edge{{U: 0, V: 1, W: 1}})
	if _, err := TreeBandwidthExact(big, 100_000_000); !errors.Is(err, ErrTooLarge) {
		t.Errorf("too large: %v", err)
	}
	if _, err := TreeBandwidthBB(tr, math.NaN()); !errors.Is(err, ErrBadInput) {
		t.Errorf("BB nan: %v", err)
	}
	wide := workload.RandomTree(workload.NewRNG(1), 30, workload.UniformWeights(1, 2), workload.UniformWeights(1, 2))
	if _, err := TreeBandwidthBB(wide, 100); !errors.Is(err, ErrTooLarge) {
		t.Errorf("BB too large: %v", err)
	}
}

func TestTreeBandwidthSingleVertex(t *testing.T) {
	tr, _ := graph.NewTree([]float64{3}, nil)
	got, err := TreeBandwidthExact(tr, 3)
	if err != nil {
		t.Fatalf("TreeBandwidthExact: %v", err)
	}
	if len(got.Cut) != 0 || got.Weight != 0 {
		t.Errorf("single vertex cut = %+v, want empty", got)
	}
}
