// Package treecut addresses the NP-complete side of the paper: bandwidth
// minimization on tree task graphs (§2.3, Theorem 1). It provides
//
//   - 0-1 knapsack solvers (the problem Theorem 1 reduces from),
//   - the Theorem 1 reduction in both directions, as executable code,
//   - an exact pseudo-polynomial DP for tree bandwidth minimization with
//     integer vertex weights,
//   - an exact branch-and-bound for small trees with real weights, and
//   - a greedy heuristic with a redundancy-elimination pass for large trees.
package treecut

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Sentinel errors.
var (
	// ErrBadInput is returned for malformed solver inputs.
	ErrBadInput = errors.New("treecut: bad input")
	// ErrTooLarge is returned when an exact solver refuses an instance.
	ErrTooLarge = errors.New("treecut: instance too large for exact solver")
	// ErrInfeasible is returned when no cut satisfies the bound.
	ErrInfeasible = errors.New("treecut: no feasible partition")
)

// KnapsackItem is one 0-1 knapsack item.
type KnapsackItem struct {
	// Weight consumes knapsack capacity; must be a non-negative integer.
	Weight int
	// Profit is the value gained by packing the item.
	Profit float64
}

// KnapsackResult is an optimal packing.
type KnapsackResult struct {
	// Profit is the total profit of the chosen items.
	Profit float64
	// Chosen lists chosen item indices in increasing order.
	Chosen []int
}

// KnapsackDP solves 0-1 knapsack exactly by dynamic programming over
// capacity: O(n·capacity) time, O(n·capacity) space (to reconstruct the
// chosen set).
func KnapsackDP(items []KnapsackItem, capacity int) (*KnapsackResult, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("capacity %d: %w", capacity, ErrBadInput)
	}
	for i, it := range items {
		if it.Weight < 0 || it.Profit < 0 || math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
			return nil, fmt.Errorf("item %d = %+v: %w", i, it, ErrBadInput)
		}
	}
	n := len(items)
	// take[i][c] records whether item i is taken at residual capacity c.
	take := make([][]bool, n)
	prev := make([]float64, capacity+1)
	cur := make([]float64, capacity+1)
	for i, it := range items {
		take[i] = make([]bool, capacity+1)
		for c := 0; c <= capacity; c++ {
			cur[c] = prev[c]
			if it.Weight <= c {
				if v := prev[c-it.Weight] + it.Profit; v > cur[c] {
					cur[c] = v
					take[i][c] = true
				}
			}
		}
		prev, cur = cur, prev
	}
	res := &KnapsackResult{Profit: prev[capacity]}
	c := capacity
	for i := n - 1; i >= 0; i-- {
		if take[i][c] {
			res.Chosen = append(res.Chosen, i)
			c -= items[i].Weight
		}
	}
	sort.Ints(res.Chosen)
	return res, nil
}

// KnapsackBB solves 0-1 knapsack exactly by branch and bound with the
// fractional-relaxation upper bound. Exponential worst case; fine for the
// small instances the reduction tests use.
func KnapsackBB(items []KnapsackItem, capacity int) (*KnapsackResult, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("capacity %d: %w", capacity, ErrBadInput)
	}
	for i, it := range items {
		if it.Weight < 0 || it.Profit < 0 || math.IsNaN(it.Profit) || math.IsInf(it.Profit, 0) {
			return nil, fmt.Errorf("item %d = %+v: %w", i, it, ErrBadInput)
		}
	}
	// Sort by profit density for the fractional bound.
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		wa, wb := math.Max(float64(ia.Weight), 1e-12), math.Max(float64(ib.Weight), 1e-12)
		return ia.Profit/wa > ib.Profit/wb
	})
	bestProfit := -1.0
	var bestChosen []int
	var cur []int
	var rec func(pos, cap int, profit float64)
	bound := func(pos, cap int, profit float64) float64 {
		b := profit
		for _, idx := range order[pos:] {
			it := items[idx]
			if it.Weight <= cap {
				cap -= it.Weight
				b += it.Profit
			} else {
				if it.Weight > 0 {
					b += it.Profit * float64(cap) / float64(it.Weight)
				}
				break
			}
		}
		return b
	}
	rec = func(pos, cap int, profit float64) {
		if profit > bestProfit {
			bestProfit = profit
			bestChosen = append(bestChosen[:0], cur...)
		}
		if pos == len(order) || bound(pos, cap, profit) <= bestProfit+1e-12 {
			return
		}
		it := items[order[pos]]
		if it.Weight <= cap {
			cur = append(cur, order[pos])
			rec(pos+1, cap-it.Weight, profit+it.Profit)
			cur = cur[:len(cur)-1]
		}
		rec(pos+1, cap, profit)
	}
	rec(0, capacity, 0)
	res := &KnapsackResult{Profit: bestProfit, Chosen: append([]int(nil), bestChosen...)}
	sort.Ints(res.Chosen)
	return res, nil
}
