package treecut

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// This file makes Theorem 1 executable. The theorem shows bandwidth
// minimization is NP-complete already for star task graphs by reduction from
// 0-1 knapsack: given items with weights w_i, profits p_i and capacity k₂,
// build a star with centre weight 0, leaf weights ω(v_i) = w_i and edge
// weights δ(e_i) = p_i. A cut S keeps the centre component within k₂ exactly
// when the kept leaves I = {i : e_i ∉ S} fit the knapsack, and
// δ(S) = Σp − profit(I); so minimum-weight cuts correspond to
// maximum-profit packings.

// KnapsackToStar builds the Theorem 1 star task graph from a knapsack
// instance. Leaf i+1 corresponds to item i; edge i connects the centre
// (vertex 0) to leaf i+1.
func KnapsackToStar(items []KnapsackItem) (*graph.Tree, error) {
	nodeW := make([]float64, len(items)+1)
	edges := make([]graph.Edge, len(items))
	for i, it := range items {
		if it.Weight < 0 || it.Profit < 0 {
			return nil, fmt.Errorf("item %d = %+v: %w", i, it, ErrBadInput)
		}
		nodeW[i+1] = float64(it.Weight)
		edges[i] = graph.Edge{U: 0, V: i + 1, W: it.Profit}
	}
	return graph.NewTree(nodeW, edges)
}

// StarToKnapsack extracts the knapsack instance from a Theorem 1 star: item
// i has weight ω(leaf i) and profit δ(edge to leaf i). The star must have
// integral leaf weights; the centre must be vertex 0.
func StarToKnapsack(star *graph.Tree) ([]KnapsackItem, error) {
	if err := star.Validate(); err != nil {
		return nil, err
	}
	if !star.IsStar() {
		return nil, fmt.Errorf("graph is not a star: %w", ErrBadInput)
	}
	items := make([]KnapsackItem, 0, star.NumEdges())
	for i, e := range star.Edges {
		leaf := e.V
		if leaf == 0 {
			leaf = e.U
		}
		w := star.NodeW[leaf]
		if w != math.Trunc(w) {
			return nil, fmt.Errorf("leaf %d weight %v not integral: %w", leaf, w, ErrBadInput)
		}
		if e.U != 0 && e.V != 0 {
			return nil, fmt.Errorf("edge %d does not touch centre 0: %w", i, ErrBadInput)
		}
		items = append(items, KnapsackItem{Weight: int(w), Profit: e.W})
	}
	return items, nil
}

// CutResult is a tree edge cut with its total weight.
type CutResult struct {
	// Cut lists cut edge indices in increasing order.
	Cut []int
	// Weight is the total weight of the cut edges.
	Weight float64
}

// SolveStarExact solves bandwidth minimization on a Theorem 1 star exactly
// by translating to knapsack, solving the knapsack with KnapsackDP, and
// translating the packing back to a cut: the cut contains precisely the
// edges of the items NOT packed. The bound k must satisfy every leaf weight
// and the centre weight individually (otherwise the instance is infeasible).
func SolveStarExact(star *graph.Tree, k float64) (*CutResult, error) {
	if !(k > 0) || math.IsNaN(k) || math.IsInf(k, 0) {
		return nil, fmt.Errorf("bound %v: %w", k, ErrBadInput)
	}
	if star.MaxNodeWeight() > k {
		return nil, fmt.Errorf("max vertex weight %v > K=%v: %w", star.MaxNodeWeight(), k, ErrInfeasible)
	}
	items, err := StarToKnapsack(star)
	if err != nil {
		return nil, err
	}
	centre := star.NodeW[0]
	if centre != math.Trunc(centre) {
		return nil, fmt.Errorf("centre weight %v not integral: %w", centre, ErrBadInput)
	}
	// Kept-leaf weights are integers, so the centre component fits within k
	// exactly when the packed weight is at most ⌊k⌋ − centre.
	capacity := int(math.Floor(k)) - int(centre)
	if capacity < 0 {
		capacity = 0
	}
	pack, err := KnapsackDP(items, capacity)
	if err != nil {
		return nil, err
	}
	packed := make(map[int]bool, len(pack.Chosen))
	for _, i := range pack.Chosen {
		packed[i] = true
	}
	res := &CutResult{}
	for i, it := range items {
		if !packed[i] {
			res.Cut = append(res.Cut, i)
			res.Weight += it.Profit
		}
	}
	return res, nil
}
