package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/ccp"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file regenerates the related-work comparison (DESIGN.md TAB-CMP):
// wall-clock scaling of the paper's bandwidth algorithm against the
// O(n log n) heap baseline, the O(n) deque ablation and the naive DP, plus
// the chains-on-chains prior-work ladder.

// ComplexityConfig parameterizes the bandwidth solver timing sweep.
type ComplexityConfig struct {
	Seed   uint64
	N      []int
	KRatio float64
	Trials int
	// IncludeNaive disables the O(n·window) DP at large n where it would
	// dominate the run time.
	NaiveMaxN int
}

// DefaultComplexityConfig covers 1e3..1e6 tasks.
func DefaultComplexityConfig() ComplexityConfig {
	return ComplexityConfig{
		Seed:      7,
		N:         []int{1000, 10000, 100000, 1000000},
		KRatio:    4,
		Trials:    3,
		NaiveMaxN: 100000,
	}
}

// ComplexityRow is one timing point (mean nanoseconds per solve).
type ComplexityRow struct {
	N                                 int
	TempSNs, DequeNs, HeapNs, NaiveNs float64
	CutWeight                         float64
}

// RunComplexity times the four bandwidth implementations on identical
// instances through the solver engine and asserts they agree. The reported
// times are the engine's per-solve Stats.Duration.
func RunComplexity(cfg ComplexityConfig) ([]ComplexityRow, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	ctx := context.Background()
	rng := workload.NewRNG(cfg.Seed)
	var rows []ComplexityRow
	for _, n := range cfg.N {
		row := ComplexityRow{N: n, NaiveNs: -1}
		naive := n <= cfg.NaiveMaxN
		if naive {
			row.NaiveNs = 0
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			p := workload.RandomPath(rng, n,
				workload.UniformWeights(1, 100), workload.UniformWeights(1, 100))
			k := cfg.KRatio * p.MaxNodeWeight()
			type run struct {
				solver string
				ns     *float64
			}
			runs := []run{
				{"bandwidth", &row.TempSNs},
				{"bandwidth-deque", &row.DequeNs},
				{"bandwidth-heap", &row.HeapNs},
			}
			if naive {
				runs = append(runs, run{"bandwidth-naive", &row.NaiveNs})
			}
			var ref float64
			for i, r := range runs {
				res, err := engine.Solve(ctx, engine.Request{Solver: r.solver, Path: p, K: k})
				if err != nil {
					return nil, fmt.Errorf("n=%d trial=%d solver=%s: %w", n, trial, r.solver, err)
				}
				*r.ns += float64(res.Stats.Duration.Nanoseconds())
				if i == 0 {
					ref = res.CutWeight
					row.CutWeight += res.CutWeight
				} else if diff := res.CutWeight - ref; diff > 1e-6 || diff < -1e-6 {
					return nil, fmt.Errorf("n=%d: solver %s weight %v != TempS %v", n, r.solver, res.CutWeight, ref)
				}
			}
		}
		inv := 1 / float64(cfg.Trials)
		row.TempSNs *= inv
		row.DequeNs *= inv
		row.HeapNs *= inv
		if naive {
			row.NaiveNs *= inv
		}
		row.CutWeight *= inv
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderComplexity writes the bandwidth timing table.
func RenderComplexity(w io.Writer, rows []ComplexityRow) error {
	t := stats.NewTable("n", "TempS(ms)", "Deque(ms)", "Heap(ms)", "NaiveDP(ms)", "Heap/TempS")
	for _, r := range rows {
		naive := "-"
		if r.NaiveNs >= 0 {
			naive = fmt.Sprintf("%.3f", r.NaiveNs/1e6)
		}
		speedup := 0.0
		if r.TempSNs > 0 {
			speedup = r.HeapNs / r.TempSNs
		}
		t.AddRow(r.N, r.TempSNs/1e6, r.DequeNs/1e6, r.HeapNs/1e6, naive, speedup)
	}
	return t.Render(w)
}

// CCPConfig parameterizes the chains-on-chains prior-work ladder.
type CCPConfig struct {
	Seed   uint64
	Points []CCPPoint
	Trials int
}

// CCPPoint is one (n, m) grid point.
type CCPPoint struct{ N, M int }

// DefaultCCPConfig covers the sizes the 1988-1992 papers report.
func DefaultCCPConfig() CCPConfig {
	return CCPConfig{
		Seed: 11,
		Points: []CCPPoint{
			{1000, 8}, {1000, 64}, {10000, 8}, {10000, 64}, {100000, 16},
		},
		Trials: 3,
	}
}

// CCPRow is one timing point for the CCP solver ladder.
type CCPRow struct {
	N, M                       int
	ProbeNs, DPBinNs, DPQuadNs float64
	Bottleneck                 float64
	GreedyExcess               float64 // greedy bottleneck / optimal − 1
}

// RunCCP times the chains-on-chains solvers. The quadratic DP is skipped
// above 10k tasks where it would dominate the run.
func RunCCP(cfg CCPConfig) ([]CCPRow, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	rng := workload.NewRNG(cfg.Seed)
	var rows []CCPRow
	for _, pt := range cfg.Points {
		row := CCPRow{N: pt.N, M: pt.M, DPQuadNs: -1}
		quad := pt.N <= 10000
		if quad {
			row.DPQuadNs = 0
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			w := make([]int64, pt.N)
			for i := range w {
				w[i] = int64(1 + rng.Intn(100))
			}
			start := time.Now()
			probe, err := ccp.SolveProbe(w, pt.M)
			row.ProbeNs += float64(time.Since(start).Nanoseconds())
			if err != nil {
				return nil, err
			}
			start = time.Now()
			dpb, err := ccp.SolveDPBinary(w, pt.M)
			row.DPBinNs += float64(time.Since(start).Nanoseconds())
			if err != nil {
				return nil, err
			}
			if dpb.Bottleneck != probe.Bottleneck {
				return nil, fmt.Errorf("n=%d m=%d: dp %d != probe %d", pt.N, pt.M, dpb.Bottleneck, probe.Bottleneck)
			}
			if quad {
				start = time.Now()
				dpq, err := ccp.SolveDPQuadratic(w, pt.M)
				row.DPQuadNs += float64(time.Since(start).Nanoseconds())
				if err != nil {
					return nil, err
				}
				if dpq.Bottleneck != probe.Bottleneck {
					return nil, fmt.Errorf("n=%d m=%d: quad %d != probe %d", pt.N, pt.M, dpq.Bottleneck, probe.Bottleneck)
				}
			}
			greedy, err := ccp.GreedyAverage(w, pt.M)
			if err != nil {
				return nil, err
			}
			row.Bottleneck += float64(probe.Bottleneck)
			row.GreedyExcess += float64(greedy.Bottleneck)/float64(probe.Bottleneck) - 1
		}
		inv := 1 / float64(cfg.Trials)
		row.ProbeNs *= inv
		row.DPBinNs *= inv
		if quad {
			row.DPQuadNs *= inv
		}
		row.Bottleneck *= inv
		row.GreedyExcess *= inv
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCCP writes the CCP ladder table.
func RenderCCP(w io.Writer, rows []CCPRow) error {
	t := stats.NewTable("n", "m", "Probe(ms)", "DPBinary(ms)", "DPQuad(ms)", "bottleneck", "greedy excess")
	for _, r := range rows {
		quad := "-"
		if r.DPQuadNs >= 0 {
			quad = fmt.Sprintf("%.3f", r.DPQuadNs/1e6)
		}
		t.AddRow(r.N, r.M, r.ProbeNs/1e6, r.DPBinNs/1e6, quad, r.Bottleneck, fmt.Sprintf("%.2f%%", 100*r.GreedyExcess))
	}
	return t.Render(w)
}
