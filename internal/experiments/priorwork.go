package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hostsat"
	"repro/internal/stats"
	"repro/internal/sumbottleneck"
	"repro/internal/workload"
)

// pathFromSlices wraps already-validated weight slices without copying.
func pathFromSlices(nodeW, edgeW []float64) *graph.Path {
	return &graph.Path{NodeW: nodeW, EdgeW: edgeW}
}

// bandwidthForContrast returns the shared-memory optimal cut weight at bound
// k for the same chain.
func bandwidthForContrast(p *graph.Path, k float64) (float64, error) {
	pp, err := core.Bandwidth(p, k)
	if err != nil {
		return 0, err
	}
	return pp.CutWeight, nil
}

// This file regenerates the remaining prior-work comparisons of §1: the
// sum-bottleneck linear-array model (Bokhari 1988; blocks pay their boundary
// communication, unlike the shared-memory model where bandwidth
// minimization pools it on the common network) and the single-host /
// multi-satellite tree case the paper notes is polynomial.

// PriorWorkRow is one sum-bottleneck measurement.
type PriorWorkRow struct {
	N, M          int
	ProbeNs, DPNs float64
	Bottleneck    float64
	// SharedMemCut is the total cut weight the shared-memory bandwidth
	// model would pay for the same chain at K = Σw/m + wmax, for contrast
	// with the linear-array bottleneck.
	SharedMemCut float64
}

// RunSumBottleneck times the sum-bottleneck solvers and contrasts the two
// cost models on the same chains.
func RunSumBottleneck(seed uint64, points []CCPPoint, trials int) ([]PriorWorkRow, error) {
	if trials <= 0 {
		trials = 1
	}
	rng := workload.NewRNG(seed)
	var rows []PriorWorkRow
	for _, pt := range points {
		row := PriorWorkRow{N: pt.N, M: pt.M, DPNs: -1}
		dp := pt.N <= 2000
		if dp {
			row.DPNs = 0
		}
		for trial := 0; trial < trials; trial++ {
			w := make([]int64, pt.N)
			e := make([]int64, pt.N-1)
			nodeW := make([]float64, pt.N)
			edgeW := make([]float64, pt.N-1)
			for i := range w {
				w[i] = int64(1 + rng.Intn(100))
				nodeW[i] = float64(w[i])
			}
			for i := range e {
				e[i] = int64(1 + rng.Intn(80))
				edgeW[i] = float64(e[i])
			}
			start := time.Now()
			probe, err := sumbottleneck.SolveProbe(w, e, pt.M)
			row.ProbeNs += float64(time.Since(start).Nanoseconds())
			if err != nil {
				return nil, err
			}
			if dp {
				start = time.Now()
				res, err := sumbottleneck.SolveDP(w, e, pt.M)
				row.DPNs += float64(time.Since(start).Nanoseconds())
				if err != nil {
					return nil, err
				}
				if res.Bottleneck != probe.Bottleneck {
					return nil, fmt.Errorf("n=%d m=%d: dp %d != probe %d", pt.N, pt.M, res.Bottleneck, probe.Bottleneck)
				}
			}
			row.Bottleneck += float64(probe.Bottleneck)
			// Shared-memory contrast at a comparable load bound.
			var total, maxW float64
			for _, x := range nodeW {
				total += x
				if x > maxW {
					maxW = x
				}
			}
			p := pathFromSlices(nodeW, edgeW)
			pp, err := bandwidthForContrast(p, total/float64(pt.M)+maxW)
			if err != nil {
				return nil, err
			}
			row.SharedMemCut += pp
		}
		inv := 1 / float64(trials)
		row.ProbeNs *= inv
		if dp {
			row.DPNs *= inv
		}
		row.Bottleneck *= inv
		row.SharedMemCut *= inv
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSumBottleneck writes the prior-work table.
func RenderSumBottleneck(w io.Writer, rows []PriorWorkRow) error {
	t := stats.NewTable("n", "m", "Probe(ms)", "DP(ms)", "linear-array bottleneck", "shared-mem cut weight")
	for _, r := range rows {
		dp := "-"
		if r.DPNs >= 0 {
			dp = fmt.Sprintf("%.3f", r.DPNs/1e6)
		}
		t.AddRow(r.N, r.M, r.ProbeNs/1e6, dp, r.Bottleneck, r.SharedMemCut)
	}
	return t.Render(w)
}

// HostSatRow is one host-satellite measurement.
type HostSatRow struct {
	N          int
	SolveNs    float64
	Bottleneck float64
	Satellites float64
	// LimitedBottleneck is the optimum with at most 4 satellites.
	LimitedBottleneck float64
}

// RunHostSat times the host-satellite solver on random trees.
func RunHostSat(seed uint64, sizes []int, trials int) ([]HostSatRow, error) {
	if trials <= 0 {
		trials = 1
	}
	rng := workload.NewRNG(seed)
	var rows []HostSatRow
	for _, n := range sizes {
		row := HostSatRow{N: n}
		for trial := 0; trial < trials; trial++ {
			tr := workload.RandomTree(rng, n,
				workload.UniformWeights(1, 100), workload.UniformWeights(0, 50))
			start := time.Now()
			p, err := hostsat.Solve(tr, 0)
			row.SolveNs += float64(time.Since(start).Nanoseconds())
			if err != nil {
				return nil, err
			}
			row.Bottleneck += p.Bottleneck
			row.Satellites += float64(len(p.OffloadRoots))
			if n <= 2000 {
				lp, err := hostsat.SolveLimited(tr, 0, 4)
				if err != nil {
					return nil, err
				}
				row.LimitedBottleneck += lp.Bottleneck
			}
		}
		inv := 1 / float64(trials)
		row.SolveNs *= inv
		row.Bottleneck *= inv
		row.Satellites *= inv
		row.LimitedBottleneck *= inv
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderHostSat writes the host-satellite table.
func RenderHostSat(w io.Writer, rows []HostSatRow) error {
	t := stats.NewTable("n", "Solve(ms)", "bottleneck", "satellites", "bottleneck(m=4)")
	for _, r := range rows {
		lim := "-"
		if r.LimitedBottleneck > 0 {
			lim = fmt.Sprintf("%.1f", r.LimitedBottleneck)
		}
		t.AddRow(r.N, r.SolveNs/1e6, r.Bottleneck, r.Satellites, lim)
	}
	return t.Render(w)
}
