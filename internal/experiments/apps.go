package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fm"
	"repro/internal/graph"
	"repro/internal/linearize"
	"repro/internal/logicsim"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file regenerates the §3 application studies (DESIGN.md APP-DES and
// APP-RT): distributed discrete-event logic simulation and real-time
// pipelines, comparing the paper's bandwidth-minimal partition against an
// equal-blocks baseline under the shared-bus execution model.

// DESRow is one circuit study result.
type DESRow struct {
	Circuit    string
	Gates      int
	Components int
	// OptTraffic and NaiveTraffic are cross-processor message weights of the
	// bandwidth-minimal vs equal-blocks partitions.
	OptTraffic, NaiveTraffic float64
	// OptMakespan and NaiveMakespan come from the bus-contention simulator.
	OptMakespan, NaiveMakespan float64
	// NaiveFeasible reports whether the equal-blocks cut even satisfies the
	// load bound K; when it does not, its lower traffic is bought by
	// overloading a processor.
	NaiveFeasible bool
	// FMTraffic is the cut weight of a Fiduccia–Mattheyses k-way partition
	// of the ORIGINAL process graph (no linearization) at the same load
	// bound — the §3 "heuristic solutions" baseline. −1 when the heuristic
	// could not balance.
	FMTraffic float64
}

// equalBlocksCut cuts a path into the given number of equal-length blocks.
func equalBlocksCut(p *graph.Path, blocks int) []int {
	var cut []int
	for b := 1; b < blocks; b++ {
		e := b*p.Len()/blocks - 1
		if e >= 0 && e < p.NumEdges() && (len(cut) == 0 || cut[len(cut)-1] < e) {
			cut = append(cut, e)
		}
	}
	return cut
}

// RunDES builds each evaluation circuit, profiles it, derives the process
// graph, linearizes it, partitions it both ways at a bound sized to use
// roughly the given number of processors, and replays both partitions on the
// bus model.
func RunDES(procs, cycles int) ([]DESRow, error) {
	type build struct {
		name string
		make func() (*logicsim.Circuit, logicsim.Stimulus, error)
	}
	rng := workload.NewRNG(5)
	builds := []build{
		{"adder-chain-32b", func() (*logicsim.Circuit, logicsim.Stimulus, error) {
			ad, err := logicsim.RippleCarryAdder(32)
			if err != nil {
				return nil, nil, err
			}
			stim := func(cycle, inputIdx int) bool { return rng.Float64() < 0.5 }
			return ad.Circuit, stim, nil
		}},
		{"johnson-ring-64", func() (*logicsim.Circuit, logicsim.Stimulus, error) {
			c, err := logicsim.JohnsonCounter(64)
			return c, nil, err
		}},
		{"lfsr-48", func() (*logicsim.Circuit, logicsim.Stimulus, error) {
			l, err := logicsim.LFSR(48, []int{47, 46, 20, 19})
			if err != nil {
				return nil, nil, err
			}
			return l.Circuit, l.SeedStimulus(), nil
		}},
	}
	var rows []DESRow
	for _, b := range builds {
		circ, stim, err := b.make()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		prof, err := logicsim.Run(circ, cycles, stim)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		pg, err := logicsim.ProcessGraph(circ, prof)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.name, err)
		}
		// Linearize: rings convert exactly, general graphs via BFS bands.
		var path *graph.Path
		var banding *linearize.Banding
		if p, _, ok := linearize.RingToPath(pg); ok {
			path = p
		} else {
			banding, err = linearize.BFSBands(pg, 0)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", b.name, err)
			}
			path = banding.Path
		}
		// Bound: spread total load over about procs components.
		k := path.TotalNodeWeight()/float64(procs) + path.MaxNodeWeight()
		opt, err := core.Bandwidth(path, k)
		if err != nil {
			return nil, fmt.Errorf("%s: bandwidth: %w", b.name, err)
		}
		blocks := opt.NumComponents()
		naive := equalBlocksCut(path, blocks)
		// The naive cut may violate K; that is part of the point — measure
		// its traffic and makespan anyway. Bandwidth minimization does not
		// bound the component count, so size the simulated machine to the
		// path; procs only sizes the load bound K above.
		machine := &arch.Machine{Processors: path.Len(), Speed: 1000, BusBandwidth: 500}
		optTraffic, _ := path.CutWeight(opt.Cut)
		naiveTraffic, _ := path.CutWeight(naive)
		cfg := sched.Config{Machine: machine, Rounds: 3}
		optRes, err := sched.SimulatePath(cfg, path, opt.Cut)
		if err != nil {
			return nil, fmt.Errorf("%s: simulate opt: %w", b.name, err)
		}
		naiveRes, err := sched.SimulatePath(cfg, path, naive)
		if err != nil {
			return nil, fmt.Errorf("%s: simulate naive: %w", b.name, err)
		}
		// §3 heuristic baseline: FM directly on the process graph, with the
		// conventional 10% imbalance tolerance (recursive bisection cannot
		// generally hit a zero-slack bound).
		fmTraffic := -1.0
		if part, err := fm.Partition(pg, blocks, 1.1*k, 1); err == nil {
			if wgt, err := fm.CutWeight(pg, part); err == nil {
				fmTraffic = wgt
			}
		}
		rows = append(rows, DESRow{
			Circuit:       b.name,
			Gates:         len(circ.Gates),
			Components:    blocks,
			OptTraffic:    optTraffic,
			NaiveTraffic:  naiveTraffic,
			OptMakespan:   optRes.Makespan,
			NaiveMakespan: naiveRes.Makespan,
			NaiveFeasible: core.CheckPathFeasible(path, naive, k) == nil,
			FMTraffic:     fmTraffic,
		})
	}
	return rows, nil
}

// RenderDES writes the circuit study table.
func RenderDES(w io.Writer, rows []DESRow) error {
	t := stats.NewTable("circuit", "gates", "components", "traffic(opt)", "traffic(equal)", "traffic(FM)", "reduction", "makespan(opt)", "makespan(equal)", "equal feasible")
	for _, r := range rows {
		red := "-"
		if r.NaiveTraffic > 0 {
			red = fmt.Sprintf("%.1f%%", 100*(1-r.OptTraffic/r.NaiveTraffic))
		}
		fmCell := "-"
		if r.FMTraffic >= 0 {
			fmCell = fmt.Sprintf("%.0f", r.FMTraffic)
		}
		t.AddRow(r.Circuit, r.Gates, r.Components, r.OptTraffic, r.NaiveTraffic, fmCell, red, r.OptMakespan, r.NaiveMakespan, r.NaiveFeasible)
	}
	return t.Render(w)
}

// RTRow is one real-time pipeline study result.
type RTRow struct {
	Stages      int
	Deadline    float64
	Components  int
	MinprocsRef int
	CutWeight   float64
	StageTime   float64
	Throughput  float64
	Meets       bool
}

// RunRT plans deadline-constrained pipelines of increasing length (the
// Figure 3 flow) and reports partition quality.
func RunRT(seed uint64) ([]RTRow, error) {
	rng := workload.NewRNG(seed)
	machine := &arch.Machine{Processors: 1024, Speed: 100, BusBandwidth: 1000}
	var rows []RTRow
	for _, stages := range []int{16, 64, 256} {
		for _, deadline := range []float64{2, 4, 8} {
			p := workload.Pipeline(rng, stages,
				workload.UniformWeights(20, 120),
				workload.UniformWeights(1, 50), 0.2, 10)
			spec := &pipeline.Spec{Tasks: p, Deadline: deadline}
			plan, err := pipeline.Build(spec, machine)
			if err != nil {
				return nil, fmt.Errorf("stages=%d deadline=%v: %w", stages, deadline, err)
			}
			minProcs, err := pipeline.MinimalProcessors(spec, machine)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RTRow{
				Stages:      stages,
				Deadline:    deadline,
				Components:  plan.Partition.NumComponents(),
				MinprocsRef: minProcs,
				CutWeight:   plan.Partition.CutWeight,
				StageTime:   plan.StageTime,
				Throughput:  plan.Throughput,
				Meets:       plan.MeetsDeadline(spec),
			})
		}
	}
	return rows, nil
}

// RenderRT writes the pipeline study table.
func RenderRT(w io.Writer, rows []RTRow) error {
	t := stats.NewTable("stages", "deadline", "components", "min procs", "cut weight", "stage time", "throughput", "meets deadline")
	for _, r := range rows {
		t.AddRow(r.Stages, r.Deadline, r.Components, r.MinprocsRef, r.CutWeight, r.StageTime, r.Throughput, r.Meets)
	}
	return t.Render(w)
}
