package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSumBottleneck(t *testing.T) {
	rows, err := RunSumBottleneck(5, []CCPPoint{{N: 400, M: 4}, {N: 3000, M: 8}}, 2)
	if err != nil {
		t.Fatalf("RunSumBottleneck: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].DPNs < 0 || rows[1].DPNs >= 0 {
		t.Errorf("DP gating wrong: %+v", rows)
	}
	for _, r := range rows {
		if r.Bottleneck <= 0 {
			t.Errorf("bottleneck %v not positive", r.Bottleneck)
		}
		// The linear-array bottleneck includes compute, so it always
		// exceeds the shared-memory cut weight at this scale — the point of
		// the contrast column.
		if r.SharedMemCut >= r.Bottleneck {
			t.Errorf("shared-mem cut %v >= linear-array bottleneck %v", r.SharedMemCut, r.Bottleneck)
		}
	}
	var buf bytes.Buffer
	if err := RenderSumBottleneck(&buf, rows); err != nil {
		t.Fatalf("RenderSumBottleneck: %v", err)
	}
	if !strings.Contains(buf.String(), "linear-array bottleneck") {
		t.Errorf("table malformed:\n%s", buf.String())
	}
}

func TestRunHostSat(t *testing.T) {
	rows, err := RunHostSat(7, []int{300, 3000}, 2)
	if err != nil {
		t.Fatalf("RunHostSat: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].LimitedBottleneck <= 0 {
		t.Errorf("limited bottleneck missing for small n: %+v", rows[0])
	}
	if rows[1].LimitedBottleneck != 0 {
		t.Errorf("limited bottleneck should be gated off for large n: %+v", rows[1])
	}
	for _, r := range rows {
		if r.Bottleneck <= 0 || r.Satellites <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	// Unlimited satellites can only do at least as well as m=4.
	if rows[0].Bottleneck > rows[0].LimitedBottleneck+1e-9 {
		t.Errorf("unlimited %v worse than m=4 %v", rows[0].Bottleneck, rows[0].LimitedBottleneck)
	}
	var buf bytes.Buffer
	if err := RenderHostSat(&buf, rows); err != nil {
		t.Fatalf("RenderHostSat: %v", err)
	}
}
