package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// smallFig2 keeps test runs fast.
func smallFig2() Fig2Config {
	return Fig2Config{
		Seed:    1,
		N:       []int{500, 2000},
		KRatios: []float64{1.2, 3, 10},
		W1:      1, W2: 100,
		EdgeW1: 1, EdgeW2: 100,
		Trials: 2,
	}
}

func TestRunFig2ShapeAndInvariants(t *testing.T) {
	rows, err := RunFig2(smallFig2())
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.P < 0 || r.R < 0 || r.Q < 0 {
			t.Errorf("negative statistic in %+v", r)
		}
		// Paper bounds: r ≤ n−1 and r ≤ 2p−1 (averaged, still must hold).
		if r.R > float64(r.N-1)+1e-9 || (r.P > 0 && r.R > 2*r.P-1+1e-9) {
			t.Errorf("non-redundant edge bound violated: %+v", r)
		}
		// q ≤ p always.
		if r.Q > r.P+1e-9 {
			t.Errorf("q %v > p %v", r.Q, r.P)
		}
		// Headline claim at every sweep point we generate: p·log q stays
		// below n·log n.
		if r.PLogQ >= r.NLogN {
			t.Errorf("p log q %v >= n log n %v at n=%d ratio=%v", r.PLogQ, r.NLogN, r.N, r.KRatio)
		}
	}
	// Shape: p at the loosest bound (K/wmax=10) must be far below p at the
	// tightest (1.2) for the same n.
	var tight, loose float64
	for _, r := range rows {
		if r.N == 2000 && r.KRatio == 1.2 {
			tight = r.P
		}
		if r.N == 2000 && r.KRatio == 10 {
			loose = r.P
		}
	}
	if loose >= tight {
		t.Errorf("p should fall as K grows: p(1.2)=%v p(10)=%v", tight, loose)
	}
}

func TestFig2Renderers(t *testing.T) {
	rows, err := RunFig2(Fig2Config{
		Seed: 2, N: []int{300}, KRatios: []float64{2},
		W1: 1, W2: 50, EdgeW1: 1, EdgeW2: 10, Trials: 1,
	})
	if err != nil {
		t.Fatalf("RunFig2: %v", err)
	}
	var tab, csv bytes.Buffer
	if err := RenderFig2(&tab, rows); err != nil {
		t.Fatalf("RenderFig2: %v", err)
	}
	if !strings.Contains(tab.String(), "p·log q") {
		t.Errorf("table missing header:\n%s", tab.String())
	}
	if err := Fig2CSV(&csv, rows); err != nil {
		t.Fatalf("Fig2CSV: %v", err)
	}
	if !strings.HasPrefix(csv.String(), "n,k_ratio,") {
		t.Errorf("csv malformed: %s", csv.String())
	}
	if got := strings.Count(csv.String(), "\n"); got != 2 {
		t.Errorf("csv lines = %d, want 2", got)
	}
}

func TestRunComplexitySolversAgree(t *testing.T) {
	rows, err := RunComplexity(ComplexityConfig{
		Seed: 3, N: []int{2000, 8000}, KRatio: 4, Trials: 1, NaiveMaxN: 4000,
	})
	if err != nil {
		t.Fatalf("RunComplexity: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].NaiveNs < 0 || rows[1].NaiveNs >= 0 {
		t.Errorf("naive gating wrong: %+v", rows)
	}
	var buf bytes.Buffer
	if err := RenderComplexity(&buf, rows); err != nil {
		t.Fatalf("RenderComplexity: %v", err)
	}
	if !strings.Contains(buf.String(), "TempS(ms)") {
		t.Errorf("table malformed:\n%s", buf.String())
	}
}

func TestRunCCPAgrees(t *testing.T) {
	rows, err := RunCCP(CCPConfig{
		Seed:   4,
		Points: []CCPPoint{{500, 4}, {20000, 8}},
		Trials: 1,
	})
	if err != nil {
		t.Fatalf("RunCCP: %v", err)
	}
	if rows[0].DPQuadNs < 0 || rows[1].DPQuadNs >= 0 {
		t.Errorf("quadratic gating wrong")
	}
	for _, r := range rows {
		if r.GreedyExcess < -1e-9 {
			t.Errorf("greedy beat optimal: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := RenderCCP(&buf, rows); err != nil {
		t.Fatalf("RenderCCP: %v", err)
	}
}

func TestRunDESBandwidthWins(t *testing.T) {
	rows, err := RunDES(8, 60)
	if err != nil {
		t.Fatalf("RunDES: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Components < 1 || r.Gates < 10 {
			t.Errorf("degenerate row %+v", r)
		}
		// The optimal cut dominates equal blocks only when the naive cut is
		// itself feasible; an infeasible naive cut may buy lower traffic by
		// overloading a processor.
		if r.NaiveFeasible && r.Components > 1 && r.OptTraffic > r.NaiveTraffic+1e-9 {
			t.Errorf("%s: optimal traffic %v exceeds feasible equal-blocks %v",
				r.Circuit, r.OptTraffic, r.NaiveTraffic)
		}
	}
	var buf bytes.Buffer
	if err := RenderDES(&buf, rows); err != nil {
		t.Fatalf("RenderDES: %v", err)
	}
	if !strings.Contains(buf.String(), "adder-chain-32b") {
		t.Errorf("table missing circuit:\n%s", buf.String())
	}
}

func TestRunRTAllMeetDeadlines(t *testing.T) {
	rows, err := RunRT(6)
	if err != nil {
		t.Fatalf("RunRT: %v", err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if !r.Meets {
			t.Errorf("plan misses deadline: %+v", r)
		}
		if r.Components < r.MinprocsRef {
			t.Errorf("bandwidth plan uses fewer processors than the minimum: %+v", r)
		}
		if r.Throughput <= 0 {
			t.Errorf("throughput not positive: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := RenderRT(&buf, rows); err != nil {
		t.Fatalf("RenderRT: %v", err)
	}
}

func TestRunTreeHeuristic(t *testing.T) {
	rows, err := RunTreeHeuristic(5, 40, 20)
	if err != nil {
		t.Fatalf("RunTreeHeuristic: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.MeanRatio < 1-1e-9 {
			t.Errorf("%s: greedy beat exact on average (%v) — exact solver broken", r.Family, r.MeanRatio)
		}
		if r.OptimalRate < 0 || r.OptimalRate > 1 {
			t.Errorf("%s: optimal rate %v out of range", r.Family, r.OptimalRate)
		}
		if r.MaxRatio < r.MeanRatio-1e-9 {
			t.Errorf("%s: max ratio %v below mean %v", r.Family, r.MaxRatio, r.MeanRatio)
		}
	}
	var buf bytes.Buffer
	if err := RenderTreeHeuristic(&buf, rows); err != nil {
		t.Fatalf("RenderTreeHeuristic: %v", err)
	}
	if !strings.Contains(buf.String(), "caterpillar") {
		t.Errorf("table missing family:\n%s", buf.String())
	}
}
