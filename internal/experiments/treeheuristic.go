package experiments

import (
	"io"

	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/treecut"
	"repro/internal/workload"
)

// This file quantifies the practical face of Theorem 1: tree bandwidth
// minimization is NP-complete, so general trees get either the
// pseudo-polynomial exact DP (integer weights) or the greedy heuristic.
// The study measures the heuristic's optimality gap against the exact DP
// across tree families.

// TreeHeuristicRow is one (family, size) measurement.
type TreeHeuristicRow struct {
	Family string
	N      int
	Trials int
	// MeanRatio and MaxRatio are greedy/exact cut-weight ratios (≥ 1);
	// exact-zero instances count as ratio 1 when greedy is also 0.
	MeanRatio, MaxRatio float64
	// OptimalRate is the fraction of instances where greedy matched exact.
	OptimalRate float64
}

// RunTreeHeuristic measures the greedy gap on random, star, and caterpillar
// trees with integer weights.
func RunTreeHeuristic(seed uint64, n, trials int) ([]TreeHeuristicRow, error) {
	rng := workload.NewRNG(seed)
	nodeW := workload.UniformWeights(1, 9)
	edgeW := workload.UniformWeights(1, 50)
	families := []struct {
		name string
		gen  func() *graph.Tree
	}{
		{"random", func() *graph.Tree { return intTree(workload.RandomTree(rng, n, nodeW, edgeW)) }},
		{"star", func() *graph.Tree { return intTree(workload.Star(rng, n, nodeW, edgeW)) }},
		{"caterpillar", func() *graph.Tree {
			return intTree(workload.Caterpillar(rng, n/4, 3, nodeW, edgeW))
		}},
	}
	var rows []TreeHeuristicRow
	for _, fam := range families {
		row := TreeHeuristicRow{Family: fam.name, N: n, Trials: trials, MaxRatio: 1}
		var ratioSum float64
		optimal := 0
		for trial := 0; trial < trials; trial++ {
			inst := fam.gen()
			k := 9 + rng.Intn(30)
			exact, err := treecut.TreeBandwidthExact(inst, k)
			if err != nil {
				trial--
				continue
			}
			greedy, err := treecut.TreeBandwidthGreedy(inst, float64(k))
			if err != nil {
				return nil, err
			}
			ratio := 1.0
			switch {
			case exact.Weight > 0:
				ratio = greedy.Weight / exact.Weight
			case greedy.Weight > 0:
				ratio = 2 // exact is zero, greedy is not: count as a big miss
			}
			ratioSum += ratio
			if ratio <= 1+1e-9 {
				optimal++
			}
			if ratio > row.MaxRatio {
				row.MaxRatio = ratio
			}
		}
		row.MeanRatio = ratioSum / float64(trials)
		row.OptimalRate = float64(optimal) / float64(trials)
		rows = append(rows, row)
	}
	return rows, nil
}

// intTree truncates weights to integers for the exact DP.
func intTree(t *graph.Tree) *graph.Tree {
	for v := range t.NodeW {
		w := float64(int(t.NodeW[v]))
		if w < 1 {
			w = 1
		}
		t.NodeW[v] = w
	}
	for i := range t.Edges {
		t.Edges[i].W = float64(int(t.Edges[i].W))
	}
	return t
}

// RenderTreeHeuristic writes the study table.
func RenderTreeHeuristic(w io.Writer, rows []TreeHeuristicRow) error {
	t := stats.NewTable("family", "n", "trials", "mean greedy/exact", "max", "optimal rate")
	for _, r := range rows {
		t.AddRow(r.Family, r.N, r.Trials, r.MeanRatio, r.MaxRatio, r.OptimalRate)
	}
	return t.Render(w)
}
