// Package experiments regenerates the paper's evaluation artifacts: the
// Figure 2 simulation study of the bandwidth algorithm's instance parameters
// (p, q, p·log q vs n·log n, TEMP_S queue behaviour), the related-work
// complexity comparisons, and the §3 application studies. Each experiment in
// DESIGN.md's index maps to one entry point here; cmd/experiments exposes
// them on the command line and EXPERIMENTS.md records representative output.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/prime"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig2Config parameterizes the Figure 2 sweep. The paper's study draws
// vertex weights uniformly from [W1, W2] and varies K relative to the
// maximum module execution time (§2.3.2).
type Fig2Config struct {
	// Seed makes the sweep reproducible.
	Seed uint64
	// N are the path lengths to sweep.
	N []int
	// KRatios are the K / max-vertex-weight ratios to sweep.
	KRatios []float64
	// W1, W2 bound the uniform vertex weight distribution.
	W1, W2 float64
	// EdgeW1, EdgeW2 bound the uniform edge weight distribution.
	EdgeW1, EdgeW2 float64
	// Trials is the number of random instances averaged per point.
	Trials int
}

// DefaultFig2Config mirrors the study's shape at laptop scale.
func DefaultFig2Config() Fig2Config {
	return Fig2Config{
		Seed:    1994,
		N:       []int{1000, 10000, 100000},
		KRatios: []float64{1.1, 1.5, 2, 3, 5, 8, 12, 20, 35, 50, 100, 200, 400},
		W1:      1, W2: 100,
		EdgeW1: 1, EdgeW2: 100,
		Trials: 5,
	}
}

// Fig2Row is one averaged sweep point.
type Fig2Row struct {
	N      int
	KRatio float64
	K      float64
	// P, R, Q, QMax are the instance statistics of §2.3: prime subpaths,
	// non-redundant edges, mean and max prime-subpath coverage.
	P, R, Q, QMax float64
	// PLogQ and NLogN are the cost proxies the paper compares: our
	// algorithm's O(n + p log q) term vs the prior O(n log n).
	PLogQ, NLogN float64
	// MeanQueueLen and MaxQueueLen instrument the TEMP_S queue (Appendix B
	// predicts mean O(log q)).
	MeanQueueLen, MaxQueueLen float64
	// CutWeight is the mean optimal bandwidth, for reference.
	CutWeight float64
}

// RunFig2 executes the sweep.
func RunFig2(cfg Fig2Config) ([]Fig2Row, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	rng := workload.NewRNG(cfg.Seed)
	var rows []Fig2Row
	for _, n := range cfg.N {
		for _, ratio := range cfg.KRatios {
			row := Fig2Row{N: n, KRatio: ratio}
			for trial := 0; trial < cfg.Trials; trial++ {
				p := workload.RandomPath(rng, n,
					workload.UniformWeights(cfg.W1, cfg.W2),
					workload.UniformWeights(cfg.EdgeW1, cfg.EdgeW2))
				k := ratio * p.MaxNodeWeight()
				inst, _, err := prime.Analyze(p.NodeW, p.EdgeW, k)
				if err != nil {
					return nil, fmt.Errorf("analyze n=%d ratio=%v: %w", n, ratio, err)
				}
				st := prime.Summarize(n, inst)
				pp, trace, err := core.BandwidthInstrumented(p, k)
				if err != nil {
					return nil, fmt.Errorf("bandwidth n=%d ratio=%v: %w", n, ratio, err)
				}
				row.K += k
				row.P += float64(st.P)
				row.R += float64(st.R)
				row.Q += st.Q
				row.QMax += float64(st.QMax)
				row.PLogQ += costPLogQ(st.P, st.Q)
				row.MeanQueueLen += trace.MeanQueueLen()
				row.MaxQueueLen += float64(trace.MaxQueueLen)
				row.CutWeight += pp.CutWeight
			}
			inv := 1 / float64(cfg.Trials)
			row.K *= inv
			row.P *= inv
			row.R *= inv
			row.Q *= inv
			row.QMax *= inv
			row.PLogQ *= inv
			row.MeanQueueLen *= inv
			row.MaxQueueLen *= inv
			row.CutWeight *= inv
			row.NLogN = float64(row.N) * math.Log2(float64(row.N))
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// costPLogQ is the paper's O(p log q) search-cost proxy: p binary searches
// over queues of ~q entries (1+log so that q ≤ 1 still costs p).
func costPLogQ(p int, q float64) float64 {
	return float64(p) * (1 + math.Log2(1+q))
}

// RenderFig2 writes the sweep as an aligned table.
func RenderFig2(w io.Writer, rows []Fig2Row) error {
	t := stats.NewTable("n", "K/wmax", "p", "r", "q", "qmax", "p·log q", "n·log n", "ratio", "queue(mean)", "queue(max)", "cutW")
	for _, r := range rows {
		ratio := 0.0
		if r.NLogN > 0 {
			ratio = r.PLogQ / r.NLogN
		}
		t.AddRow(r.N, r.KRatio, r.P, r.R, r.Q, r.QMax, r.PLogQ, r.NLogN, ratio, r.MeanQueueLen, r.MaxQueueLen, r.CutWeight)
	}
	return t.Render(w)
}

// Fig2CSV writes the sweep as CSV.
func Fig2CSV(w io.Writer, rows []Fig2Row) error {
	headers := []string{"n", "k_ratio", "k", "p", "r", "q", "q_max", "p_log_q", "n_log_n", "queue_mean", "queue_max", "cut_weight"}
	out := make([][]string, len(rows))
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
	for i, r := range rows {
		out[i] = []string{
			strconv.Itoa(r.N), f(r.KRatio), f(r.K), f(r.P), f(r.R), f(r.Q), f(r.QMax),
			f(r.PLogQ), f(r.NLogN), f(r.MeanQueueLen), f(r.MaxQueueLen), f(r.CutWeight),
		}
	}
	return stats.WriteCSV(w, headers, out)
}
