// Package obs is the zero-dependency observability kit shared by the solver
// engine, the CLIs, and partitiond. It provides three request-scoped
// facilities:
//
//   - Traces: a hierarchy of timed Spans carried through context.Context.
//     Solvers open spans at their structural phase boundaries (edge sort,
//     feasibility probes, prime-subpath extraction, the TEMP_S DP sweep, ...)
//     so a finished trace shows the paper's complexity terms as measured wall
//     time. Tracing is strictly opt-in per request: on a context without a
//     trace, StartSpan returns its input context and a nil *Span, and every
//     *Span method is nil-safe, so instrumented hot paths pay one context
//     lookup and zero allocations when tracing is off.
//   - Histograms: log-bucketed latency distributions with lock-free Observe
//     and Prometheus text rendering (histogram.go).
//   - Request IDs: propagation of an X-Request-ID-style correlation token
//     through contexts, so slog records, engine events, and trace roots can
//     all be joined on one ID.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span — a phase's size parameter
// (points, intervals, probes) rather than free-form logging.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation inside a trace. Fields are written by the
// tracing machinery and read after the span has ended; use the Trace
// accessors (Tree, PhaseTotals, WriteText) for concurrency-safe views.
type Span struct {
	// Name identifies the phase, e.g. "prime-extract" or "temps-dp".
	Name string
	// Start is the span's wall-clock start (monotonic-backed).
	Start time.Time
	// Duration is set by End; zero while the span is still open.
	Duration time.Duration
	// Attrs are the span's annotations in insertion order.
	Attrs []Attr

	tr       *Trace
	children []*Span
}

// Trace is one request's span tree. Construct with New, attach to a context
// with NewContext, and close with Finish once the traced operation is done.
// All mutation goes through one per-trace mutex, so concurrent solves (a
// batch) may safely grow disjoint subtrees of a shared trace.
type Trace struct {
	// RequestID tags the trace with the originating request's correlation
	// ID; empty when the caller has none.
	RequestID string

	mu   sync.Mutex
	root *Span
}

// New starts a trace whose root span begins now.
func New(name string) *Trace {
	t := &Trace{}
	t.root = &Span{Name: name, Start: time.Now(), tr: t}
	return t
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. Call it once the traced operation is complete,
// before rendering the trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

type traceKey struct{}
type spanKey struct{}
type requestIDKey struct{}

// NewContext returns ctx carrying t, with t's root as the current span.
// Spans started from the returned context (and its descendants) nest under
// the root.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, traceKey{}, t)
	return context.WithValue(ctx, spanKey{}, t.root)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan opens a child span under the context's current span and returns
// a derived context in which the new span is current. When ctx carries no
// trace it returns ctx unchanged and a nil span — the zero-cost disabled
// path. Callers that want sibling phases rather than nesting discard the
// returned context:
//
//	_, sp := obs.StartSpan(ctx, "edge-sort")
//	... phase work ...
//	sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.child(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// child appends a started span under s.
func (s *Span) child(name string) *Span {
	sp := &Span{Name: name, Start: time.Now(), tr: s.tr}
	s.tr.mu.Lock()
	s.children = append(s.children, sp)
	s.tr.mu.Unlock()
	return sp
}

// End closes the span, recording its duration. Safe on a nil span; a second
// End keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.Start)
	s.tr.mu.Lock()
	if s.Duration == 0 {
		s.Duration = d
	}
	s.tr.mu.Unlock()
}

// SetAttr annotates the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// PhaseStat aggregates the spans of one phase name: how often the phase ran
// and its total wall time.
type PhaseStat struct {
	Count int64
	Total time.Duration
}

// PhaseTotals aggregates every span strictly below s by name — the
// per-phase breakdown metrics exporters consume. Nil-safe (returns nil).
func (s *Span) PhaseTotals() map[string]PhaseStat {
	if s == nil {
		return nil
	}
	out := make(map[string]PhaseStat)
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	var walk func(sp *Span)
	walk = func(sp *Span) {
		for _, c := range sp.children {
			st := out[c.Name]
			st.Count++
			st.Total += c.Duration
			out[c.Name] = st
			walk(c)
		}
	}
	walk(s)
	return out
}

// PhaseTotals aggregates every span below the root by name.
func (t *Trace) PhaseTotals() map[string]PhaseStat { return t.Root().PhaseTotals() }

// WithRequestID returns ctx carrying the request correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ridFallback numbers request IDs when the system randomness source fails.
var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-character correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-" + strconv.FormatUint(ridFallback.Add(1), 16)
	}
	return hex.EncodeToString(b[:])
}
