// Package obs is the zero-dependency observability kit shared by the solver
// engine, the CLIs, and partitiond. It provides three request-scoped
// facilities:
//
//   - Traces: a hierarchy of timed Spans carried through context.Context.
//     Solvers open spans at their structural phase boundaries (edge sort,
//     feasibility probes, prime-subpath extraction, the TEMP_S DP sweep, ...)
//     so a finished trace shows the paper's complexity terms as measured wall
//     time. Tracing is strictly opt-in per request: on a context without a
//     trace, StartSpan returns its input context and a nil *Span, and every
//     *Span method is nil-safe, so instrumented hot paths pay one context
//     lookup and zero allocations when tracing is off.
//   - Histograms: log-bucketed latency distributions with lock-free Observe
//     and Prometheus text rendering (histogram.go).
//   - Request IDs: propagation of an X-Request-ID-style correlation token
//     through contexts, so slog records, engine events, and trace roots can
//     all be joined on one ID.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	mrand "math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a 128-bit trace identifier, shared by every span of one request
// across every node it touches. The zero value means "no ID".
type TraceID [16]byte

// SpanID is a 64-bit span identifier, unique within its trace.
// The zero value means "no ID".
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string {
	var dst [32]byte
	return string(hex.AppendEncode(dst[:0], id[:]))
}

// String renders the ID as 16 lowercase hex characters.
func (id SpanID) String() string {
	var dst [16]byte
	return string(hex.AppendEncode(dst[:0], id[:]))
}

// ParseTraceID parses the 32-hex-character form produced by String. Strict:
// exact length, lowercase hex only, and the zero ID is rejected.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if !parseLowerHex(id[:], s) || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseSpanID parses the 16-hex-character form produced by String. Strict
// like ParseTraceID.
func ParseSpanID(s string) (SpanID, bool) {
	var id SpanID
	if !parseLowerHex(id[:], s) || id.IsZero() {
		return SpanID{}, false
	}
	return id, true
}

// parseLowerHex decodes exactly len(dst)*2 lowercase hex characters into dst.
func parseLowerHex(dst []byte, s string) bool {
	if len(s) != 2*len(dst) {
		return false
	}
	for i := range dst {
		hi, ok1 := hexNibble(s[2*i])
		lo, ok2 := hexNibble(s[2*i+1])
		if !ok1 || !ok2 {
			return false
		}
		dst[i] = hi<<4 | lo
	}
	return true
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// NewTraceID returns a fresh random trace ID. Uses the math/rand/v2 global
// source: trace IDs need uniqueness, not unpredictability, and the cheap
// generator keeps per-solve trace setup allocation-free.
func NewTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		hi, lo := mrand.Uint64(), mrand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(hi >> (8 * i))
			id[8+i] = byte(lo >> (8 * i))
		}
	}
	return id
}

// NewSpanID returns a fresh random span ID.
func NewSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := mrand.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

// Attr is one key/value annotation on a span — a phase's size parameter
// (points, intervals, probes) rather than free-form logging.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation inside a trace. Fields are written by the
// tracing machinery and read after the span has ended; use the Trace
// accessors (Tree, PhaseTotals, WriteText) for concurrency-safe views.
type Span struct {
	// Name identifies the phase, e.g. "prime-extract" or "temps-dp".
	Name string
	// Start is the span's wall-clock start (monotonic-backed).
	Start time.Time
	// Duration is set by End; zero while the span is still open.
	Duration time.Duration
	// Attrs are the span's annotations in insertion order.
	Attrs []Attr
	// ID identifies the span within its trace, for cross-node parenting and
	// event correlation.
	ID SpanID

	tr       *Trace
	children []*Span
	// grafts are remote subtrees attached under this span by Graft — the
	// owner-side span tree a cluster forward brought back. They render as
	// extra children, time-shifted to this span's start.
	grafts []*SpanNode

	// attrBuf and childBuf back the first few Attrs/children without a heap
	// allocation; solver phase spans rarely exceed either.
	attrBuf  [2]Attr
	childBuf [4]*Span
}

// SpanEvent is a live notification that a span started or ended, delivered
// to a Trace's OnSpan hook while the traced operation is still running. It is
// the bridge between phase tracing and streaming progress surfaces (the jobs
// subsystem turns these into Server-Sent Events).
type SpanEvent struct {
	// Name is the span's phase name.
	Name string
	// Start is the span's wall-clock start.
	Start time.Time
	// Duration is the span's wall time; zero in start notifications.
	Duration time.Duration
	// End is false when the span just started, true when it ended.
	End bool
	// Root marks events of the trace's root span (only its end is ever
	// delivered — the root starts before any hook can be installed).
	Root bool
	// TraceID and SpanID identify the span, so streamed events correlate
	// with stored traces.
	TraceID TraceID
	SpanID  SpanID
}

// Trace is one request's span tree. Construct with New, attach to a context
// with NewContext, and close with Finish once the traced operation is done.
// All mutation goes through one per-trace mutex, so concurrent solves (a
// batch) may safely grow disjoint subtrees of a shared trace.
type Trace struct {
	// RequestID tags the trace with the originating request's correlation
	// ID; empty when the caller has none.
	RequestID string

	// ID is the trace's 128-bit identity, assigned by New. Overwrite it
	// (before the trace's context is used) with the propagated ID when the
	// request arrived from another node, so both nodes' records share it.
	ID TraceID
	// Parent is the remote parent span under which this trace's root nests
	// on the calling node; zero for locally originated traces.
	Parent SpanID

	// OnSpan, when non-nil, receives a SpanEvent as each span starts and
	// ends — the live subscription hook progress streams attach to. Set it
	// after New and before the trace's context is used; it is read without
	// synchronization afterwards, from whichever goroutines open spans, so
	// the hook itself must be safe for concurrent calls. The hook runs
	// outside the trace mutex and must not call back into the trace.
	OnSpan func(SpanEvent)

	mu   sync.Mutex
	root *Span

	// arena backs the first spans of the trace, so a whole typical trace —
	// root included — costs the one Trace allocation. Entries are handed out
	// by address, which is safe precisely because the array is part of the
	// Trace and never moves. Overflow spans allocate individually.
	arena [arenaSpans]Span
	used  int
}

// arenaSpans sizes the per-trace span arena; a typical solve opens well
// under this many phase spans.
const arenaSpans = 16

// New starts a trace whose root span begins now.
func New(name string) *Trace {
	t := new(Trace)
	t.used = 1
	t.root = &t.arena[0]
	t.root.Name, t.root.Start, t.root.tr = name, time.Now(), t
	t.ID = NewTraceID()
	t.root.ID = NewSpanID()
	return t
}

// newSpan carves a span from the arena, or allocates on overflow. Callers
// hold t.mu.
func (t *Trace) newSpan() *Span {
	if t.used < len(t.arena) {
		sp := &t.arena[t.used]
		t.used++
		return sp
	}
	return new(Span)
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span. Call it once the traced operation is complete,
// before rendering the trace.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

type spanKey struct{}
type requestIDKey struct{}

// NewContext returns ctx carrying t, with t's root as the current span.
// Spans started from the returned context (and its descendants) nest under
// the root. Only the current span is stored — the trace rides along inside
// it — so attaching a trace costs a single context link.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, t.root)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	if sp == nil {
		return nil
	}
	return sp.tr
}

// StartSpan opens a child span under the context's current span and returns
// a derived context in which the new span is current. When ctx carries no
// trace it returns ctx unchanged and a nil span — the zero-cost disabled
// path. Callers that want sibling phases rather than nesting discard the
// returned context:
//
//	_, sp := obs.StartSpan(ctx, "edge-sort")
//	... phase work ...
//	sp.End()
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.child(name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

// Phase opens a sibling phase span under the context's current span without
// deriving a new context — the allocation-free twin of the
// discard-the-context StartSpan idiom:
//
//	sp := obs.Phase(ctx, "edge-sort")
//	... phase work ...
//	sp.End()
//
// Use it when no further spans will nest under the phase. Nil-safe like
// StartSpan: without a trace it returns nil.
func Phase(ctx context.Context, name string) *Span {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return nil
	}
	return parent.child(name)
}

// child appends a started span under s.
func (s *Span) child(name string) *Span {
	now := time.Now()
	tr := s.tr
	tr.mu.Lock()
	sp := tr.newSpan()
	sp.Name, sp.Start, sp.tr = name, now, tr
	sp.ID = NewSpanID()
	if s.children == nil {
		s.children = s.childBuf[:0]
	}
	s.children = append(s.children, sp)
	tr.mu.Unlock()
	if tr.OnSpan != nil {
		tr.OnSpan(SpanEvent{Name: name, Start: now, TraceID: tr.ID, SpanID: sp.ID})
	}
	return sp
}

// End closes the span, recording its duration. Safe on a nil span; a second
// End keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.Start)
	tr := s.tr
	tr.mu.Lock()
	first := s.Duration == 0
	if first {
		s.Duration = d
	}
	root := s == tr.root
	tr.mu.Unlock()
	if first && tr.OnSpan != nil {
		tr.OnSpan(SpanEvent{Name: s.Name, Start: s.Start, Duration: d, End: true, Root: root,
			TraceID: tr.ID, SpanID: s.ID})
	}
}

// SetAttr annotates the span. Safe on a nil span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.Attrs == nil {
		s.Attrs = s.attrBuf[:0]
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// PhaseStat aggregates the spans of one phase name: how often the phase ran
// and its total wall time.
type PhaseStat struct {
	Count int64
	Total time.Duration
}

// PhaseTotals aggregates every span strictly below s by name — the
// per-phase breakdown metrics exporters consume. Nil-safe (returns nil).
func (s *Span) PhaseTotals() map[string]PhaseStat {
	if s == nil {
		return nil
	}
	out := make(map[string]PhaseStat)
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	// Iterative walk with a stack-resident worklist: no closure, no
	// recursion, no allocation for typical span counts.
	var buf [arenaSpans]*Span
	stack := append(buf[:0], s)
	for len(stack) > 0 {
		sp := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range sp.children {
			st := out[c.Name]
			st.Count++
			st.Total += c.Duration
			out[c.Name] = st
			stack = append(stack, c)
		}
	}
	return out
}

// PhaseTotals aggregates every span below the root by name.
func (t *Trace) PhaseTotals() map[string]PhaseStat { return t.Root().PhaseTotals() }

// WithRequestID returns ctx carrying the request correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the request ID carried by ctx, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// ridFallback numbers request IDs when the system randomness source fails.
var ridFallback atomic.Uint64

// NewRequestID returns a fresh 16-hex-character correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-" + strconv.FormatUint(ridFallback.Add(1), 16)
	}
	var dst [16]byte
	return string(hex.AppendEncode(dst[:0], b[:]))
}

// Remote is trace context propagated across a node boundary: the trace to
// continue and the calling node's span to parent under, plus a flags byte
// (bit 0 = the caller retains this trace).
type Remote struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// FlagSampled is the Remote.Flags bit saying the caller keeps this trace.
const FlagSampled byte = 1

type remoteKey struct{}

// ContextWithRemote returns ctx carrying propagated remote trace context.
func ContextWithRemote(ctx context.Context, rem Remote) context.Context {
	return context.WithValue(ctx, remoteKey{}, rem)
}

// RemoteFromContext returns the remote trace context carried by ctx, if any.
func RemoteFromContext(ctx context.Context) (Remote, bool) {
	rem, ok := ctx.Value(remoteKey{}).(Remote)
	return rem, ok
}

// FormatTraceHeader renders rem as the X-Partition-Trace wire form,
// traceparent-style: 32 hex trace-ID, 16 hex span-ID, 2 hex flags, dash
// separated (e.g. "4bf9…2c1a-00f067aa0ba902b7-01").
func FormatTraceHeader(rem Remote) string {
	var dst [51]byte
	b := hex.AppendEncode(dst[:0], rem.Trace[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, rem.Span[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, []byte{rem.Flags})
	return string(b)
}

// ParseTraceHeader parses the X-Partition-Trace wire form. Strict by design —
// exact field lengths, lowercase hex, non-zero IDs — so a malformed or
// hostile header degrades to "no propagation" rather than poisoning stored
// trace identities.
func ParseTraceHeader(s string) (Remote, bool) {
	// len = 32 + 1 + 16 + 1 + 2.
	if len(s) != 52 || s[32] != '-' || s[49] != '-' {
		return Remote{}, false
	}
	var rem Remote
	tid, ok := ParseTraceID(s[:32])
	if !ok {
		return Remote{}, false
	}
	sid, ok := ParseSpanID(s[33:49])
	if !ok {
		return Remote{}, false
	}
	var fb [1]byte
	if !parseLowerHex(fb[:], s[50:]) {
		return Remote{}, false
	}
	rem.Trace, rem.Span, rem.Flags = tid, sid, fb[0]
	return rem, true
}
