package obs

import (
	"context"
	"strings"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned the zero ID")
	}
	s := id.String()
	if len(s) != 32 || strings.ToLower(s) != s {
		t.Fatalf("String() = %q, want 32 lowercase hex chars", s)
	}
	got, ok := ParseTraceID(s)
	if !ok || got != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, got, ok)
	}
}

func TestSpanIDRoundTrip(t *testing.T) {
	id := NewSpanID()
	if id.IsZero() {
		t.Fatal("NewSpanID returned the zero ID")
	}
	s := id.String()
	if len(s) != 16 {
		t.Fatalf("String() = %q, want 16 hex chars", s)
	}
	got, ok := ParseSpanID(s)
	if !ok || got != id {
		t.Fatalf("ParseSpanID(%q) = %v, %v", s, got, ok)
	}
}

func TestParseIDRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"short",
		strings.Repeat("0", 32), // zero ID
		strings.Repeat("g", 32), // non-hex
		strings.ToUpper(strings.Repeat("ab", 16)), // uppercase
		strings.Repeat("ab", 16) + "0",            // too long
		strings.Repeat("ab", 15) + " b",           // embedded space
	} {
		if _, ok := ParseTraceID(s); ok {
			t.Errorf("ParseTraceID(%q) accepted", s)
		}
	}
	if _, ok := ParseSpanID(strings.Repeat("0", 16)); ok {
		t.Error("ParseSpanID accepted the zero ID")
	}
	if _, ok := ParseSpanID("abcd"); ok {
		t.Error("ParseSpanID accepted a short string")
	}
}

func TestNewTraceAssignsIdentity(t *testing.T) {
	a, b := New("a"), New("b")
	if a.ID.IsZero() || a.Root().ID.IsZero() {
		t.Fatal("New left trace or root span identity unset")
	}
	if a.ID == b.ID {
		t.Error("two traces share a trace ID")
	}
	ctx := NewContext(context.Background(), a)
	sp := Phase(ctx, "child")
	if sp.ID.IsZero() || sp.ID == a.Root().ID {
		t.Errorf("child span ID = %v, want fresh and distinct from the root", sp.ID)
	}
	sp.End()
	a.Finish()
	b.Finish()
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	rem := Remote{Trace: NewTraceID(), Span: NewSpanID(), Flags: FlagSampled}
	hdr := FormatTraceHeader(rem)
	if len(hdr) != 52 {
		t.Fatalf("header %q has length %d, want 52", hdr, len(hdr))
	}
	got, ok := ParseTraceHeader(hdr)
	if !ok || got != rem {
		t.Fatalf("ParseTraceHeader(%q) = %+v, %v, want %+v", hdr, got, ok, rem)
	}
}

func TestParseTraceHeaderRejects(t *testing.T) {
	valid := FormatTraceHeader(Remote{Trace: NewTraceID(), Span: NewSpanID(), Flags: 1})
	for _, s := range []string{
		"",
		"not-a-header",
		valid[:51],             // truncated
		valid + "0",            // extended
		strings.ToUpper(valid), // uppercase
		strings.Replace(valid, "-", "_", 1),
		strings.Repeat("0", 32) + valid[32:], // zero trace ID
		valid[:33] + strings.Repeat("0", 16) + valid[49:], // zero span ID
	} {
		if _, ok := ParseTraceHeader(s); ok {
			t.Errorf("ParseTraceHeader(%q) accepted", s)
		}
	}
}

func FuzzParseTraceHeader(f *testing.F) {
	f.Add(FormatTraceHeader(Remote{Trace: NewTraceID(), Span: NewSpanID(), Flags: 1}))
	f.Add("4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("")
	f.Add(strings.Repeat("-", 52))
	f.Fuzz(func(t *testing.T, s string) {
		rem, ok := ParseTraceHeader(s)
		if !ok {
			return
		}
		if rem.Trace.IsZero() || rem.Span.IsZero() {
			t.Fatalf("accepted header %q with a zero ID", s)
		}
		// Accepted headers must round-trip exactly — the parser admits only
		// the canonical form.
		if got := FormatTraceHeader(rem); got != s {
			t.Fatalf("round trip of %q produced %q", s, got)
		}
	})
}

func TestRemoteContext(t *testing.T) {
	if _, ok := RemoteFromContext(context.Background()); ok {
		t.Fatal("empty context reported remote trace context")
	}
	rem := Remote{Trace: NewTraceID(), Span: NewSpanID(), Flags: FlagSampled}
	ctx := ContextWithRemote(context.Background(), rem)
	got, ok := RemoteFromContext(ctx)
	if !ok || got != rem {
		t.Fatalf("RemoteFromContext = %+v, %v, want %+v", got, ok, rem)
	}
}

// TestGraftShiftsRemoteTree: a grafted subtree renders as an extra child of
// its anchor span with every offset moved onto the local timeline.
func TestGraftShiftsRemoteTree(t *testing.T) {
	tr := New("root")
	ctx := NewContext(context.Background(), tr)
	sp := Phase(ctx, "cluster-forward")
	remote := &SpanNode{
		Name: "remote-root", StartUs: 0, DurationUs: 900,
		Attrs:    map[string]any{"remote": true},
		Children: []*SpanNode{{Name: "remote-phase", StartUs: 100, DurationUs: 700}},
	}
	sp.Graft(remote)
	sp.End()
	tr.Finish()

	node := tr.Tree()
	if len(node.Children) != 1 {
		t.Fatalf("root has %d children, want 1", len(node.Children))
	}
	fwd := node.Children[0]
	if len(fwd.Children) != 1 {
		t.Fatalf("forward span has %d children, want the grafted subtree", len(fwd.Children))
	}
	g := fwd.Children[0]
	if g.Name != "remote-root" || g.Attrs["remote"] != true {
		t.Errorf("grafted node = %+v", g)
	}
	if g.StartUs != fwd.StartUs {
		t.Errorf("grafted root StartUs = %d, want shifted to the forward span's %d", g.StartUs, fwd.StartUs)
	}
	if len(g.Children) != 1 || g.Children[0].StartUs != fwd.StartUs+100 {
		t.Errorf("grafted child = %+v, want StartUs %d", g.Children[0], fwd.StartUs+100)
	}
	if g.Children[0].DurationUs != 700 {
		t.Errorf("grafted child duration = %d, want unchanged 700", g.Children[0].DurationUs)
	}

	// The shift deep-copied: the input tree is untouched.
	if remote.StartUs != 0 || remote.Children[0].StartUs != 100 {
		t.Error("Graft mutated the input subtree offsets")
	}
}

func TestSpanEventsCarryIdentity(t *testing.T) {
	tr := New("root")
	var events []SpanEvent
	tr.OnSpan = func(ev SpanEvent) { events = append(events, ev) }
	ctx := NewContext(context.Background(), tr)
	sp := Phase(ctx, "work")
	sp.End()
	tr.Finish()

	if len(events) != 3 { // start, end, root end
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.TraceID != tr.ID {
			t.Errorf("event %d trace ID = %v, want %v", i, ev.TraceID, tr.ID)
		}
		if ev.SpanID.IsZero() {
			t.Errorf("event %d has a zero span ID", i)
		}
	}
	if events[0].SpanID != events[1].SpanID {
		t.Error("start and end events of one span carry different span IDs")
	}
	if !events[2].Root || events[2].SpanID != tr.Root().ID {
		t.Errorf("final event = %+v, want the root end", events[2])
	}
}
