package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// buildSampleTrace makes a small finished trace with two phases and attrs.
func buildSampleTrace() *Trace {
	tr := New("solve")
	tr.RequestID = "rid42"
	ctx := NewContext(context.Background(), tr)
	sctx, a := StartSpan(ctx, "prime-extract")
	a.SetAttr("intervals", 7)
	a.End()
	_ = sctx
	_, b := StartSpan(ctx, "temps-dp")
	b.End()
	tr.Finish()
	return tr
}

func TestWriteText(t *testing.T) {
	var sb strings.Builder
	if err := buildSampleTrace().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"request-id: rid42", "solve", "  prime-extract", "intervals=7", "  temps-dp"} {
		if !strings.Contains(got, want) {
			t.Errorf("text tree missing %q in:\n%s", want, got)
		}
	}
}

func TestWriteChromeIsValidTraceEventJSON(t *testing.T) {
	var sb strings.Builder
	if err := buildSampleTrace().WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("WriteChrome output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (root + 2 phases)", len(doc.TraceEvents))
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative ts/dur: %d/%d", ev.Name, ev.Ts, ev.Dur)
		}
	}
	for _, want := range []string{"solve", "prime-extract", "temps-dp"} {
		if !names[want] {
			t.Errorf("missing event %q", want)
		}
	}
	if doc.OtherData["requestId"] != "rid42" {
		t.Errorf("otherData requestId = %q", doc.OtherData["requestId"])
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	node := buildSampleTrace().Tree()
	b, err := json.Marshal(node)
	if err != nil {
		t.Fatal(err)
	}
	var back SpanNode
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "solve" || len(back.Children) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
}
