package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	// Prometheus le semantics: v lands in the first bucket with v <= bound.
	h.Observe(0.0005) // bucket 0
	h.Observe(0.001)  // exactly on the bound -> bucket 0
	h.Observe(0.0011) // bucket 1
	h.Observe(0.1)    // bucket 2
	h.Observe(5)      // +Inf overflow
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-(0.0005+0.001+0.0011+0.1+5)) > 1e-12 {
		t.Errorf("sum = %v", s.Sum)
	}
}

func TestLatencyBuckets(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 26 {
		t.Fatalf("len = %d, want 26", len(b))
	}
	if b[0] != 1e-6 {
		t.Errorf("first bound = %v, want 1µs", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bound %d = %v, want 2x previous %v", i, b[i], b[i-1])
		}
	}
	if b[len(b)-1] < 30 {
		t.Errorf("last bound %vs does not cover the 30s+ deadline range", b[len(b)-1])
	}
	// The layout must be accepted by NewHistogram.
	NewHistogram(b).ObserveDuration(time.Millisecond)
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets())
	const goroutines, per = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g%7) * 1e-4)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total = %d, count = %d", total, s.Count)
	}
	wantSum := 0.0
	for g := 0; g < goroutines; g++ {
		wantSum += float64(g%7) * 1e-4 * per
	}
	if math.Abs(s.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramWritePrometheus(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(3)
	var sb strings.Builder
	h.Snapshot().WritePrometheus(&sb, "x_seconds", map[string]string{"solver": "bandwidth"})
	got := sb.String()
	for _, want := range []string{
		`x_seconds_bucket{solver="bandwidth",le="0.001"} 1`,
		`x_seconds_bucket{solver="bandwidth",le="0.01"} 2`, // cumulative
		`x_seconds_bucket{solver="bandwidth",le="+Inf"} 3`,
		`x_seconds_sum{solver="bandwidth"} 3.0055`,
		`x_seconds_count{solver="bandwidth"} 3`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering missing %q in:\n%s", want, got)
		}
	}
}

func TestHistogramWritePrometheusNoLabels(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	var sb strings.Builder
	h.Snapshot().WritePrometheus(&sb, "y_seconds", nil)
	got := sb.String()
	for _, want := range []string{
		`y_seconds_bucket{le="1"} 1`,
		`y_seconds_bucket{le="+Inf"} 1`,
		"y_seconds_sum 0.5",
		"y_seconds_count 1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering missing %q in:\n%s", want, got)
		}
	}
}

func TestNewHistogramRejectsBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}, {math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}
