// Package flight is partitiond's always-on flight recorder: every solve runs
// under a trace (internal/obs) whether or not the client asked for one, and
// once the request finishes the server offers the trace here. The recorder
// applies tail-sampling retention — keep everything that went wrong or slow,
// a probabilistic sliver of the rest — into a bounded in-memory ring that
// GET /v1/traces queries after the fact.
//
// Retention policy, first match wins:
//
//   - shed: the request was load-shed (HTTP 429/503)
//   - error: the solve failed (any other non-2xx status or error message)
//   - slow: duration beyond the absolute SlowFloor, or beyond the adaptive
//     per-solver threshold (histogram-derived p99) when one exists
//   - forwarded / remote: the request crossed a node boundary (either side)
//   - sampled: kept by the head sampler at SampleRate
//
// The decision path allocates nothing for dropped traces — with SampleRate 0
// and an unremarkable fast solve, Offer is a handful of loads and compares —
// so the recorder can stay on in front of the hot path. Only retained traces
// pay for span-tree serialization.
package flight

import (
	"encoding/json"
	mrand "math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config sizes the recorder. The zero value is usable: every field has a
// production-lean default applied by New.
type Config struct {
	// SampleRate is the probability (0..1) an unremarkable trace is kept
	// anyway — the head sampler behind the tail-retention rules. 0 keeps
	// only remarkable traces (and skips the RNG entirely).
	SampleRate float64
	// MaxTraces caps retained traces; the oldest is evicted beyond it
	// (default 512).
	MaxTraces int
	// MaxBytes caps the summed size of retained traces, serialized span
	// trees included (default 8 MiB).
	MaxBytes int64
	// SlowFloor is the absolute duration beyond which every trace is kept
	// (default 500ms).
	SlowFloor time.Duration
	// SlowThreshold, when non-nil, returns the adaptive per-solver slow
	// threshold (the server derives it from latency histogram quantiles);
	// <= 0 means "no adaptive threshold for this solver yet". It is called
	// on the solve path and must be cheap and allocation-free.
	SlowThreshold func(solver string) time.Duration
}

// Retention reasons, in decision order.
const (
	ReasonShed      = "shed"
	ReasonError     = "error"
	ReasonSlow      = "slow"
	ReasonForwarded = "forwarded"
	ReasonRemote    = "remote"
	ReasonSampled   = "sampled"
)

// reasons lists every retention reason, for stable metrics rendering.
var reasons = []string{ReasonShed, ReasonError, ReasonSlow, ReasonForwarded, ReasonRemote, ReasonSampled}

// Reasons returns every retention reason in stable (priority) order, for
// metric renderers that want one series per reason.
func Reasons() []string { return reasons }

// Info describes one finished request being offered for retention. The trace
// must be finished (root ended); identity, request ID, timing, and the span
// tree are all read from it only if the trace is kept.
type Info struct {
	// Trace is the finished trace.
	Trace *obs.Trace
	// Kind is the request shape: "solve" or "job".
	Kind string
	// Solver is the registry solver name.
	Solver string
	// Status is the HTTP status the request resolved to (200 for success).
	Status int
	// Err is the error message for failed solves, empty on success.
	Err string
	// Forwarded marks a solve this node forwarded to the owning peer.
	Forwarded bool
	// Remote marks a solve this node ran on behalf of a forwarding peer.
	Remote bool
	// Peer is the other node of a forwarded/remote solve, when known.
	Peer string
}

// Record is one retained trace: queryable summary fields plus the span tree
// serialized at retention time (so queries never re-render and byte
// accounting is exact). The JSON shape is the /v1/traces list entry; the
// tree rides separately in the {id} response.
type Record struct {
	TraceID    string        `json:"id"`
	ParentSpan string        `json:"parentSpan,omitempty"`
	RequestID  string        `json:"requestId,omitempty"`
	Kind       string        `json:"kind"`
	Solver     string        `json:"solver"`
	Start      time.Time     `json:"start"`
	DurationMs float64       `json:"durationMs"`
	Duration   time.Duration `json:"-"`
	Status     int           `json:"status"`
	Outcome    string        `json:"outcome"` // "ok" | "error" | "shed"
	Reason     string        `json:"reason"`
	Err        string        `json:"error,omitempty"`
	Forwarded  bool          `json:"forwarded,omitempty"`
	Remote     bool          `json:"remote,omitempty"`
	Peer       string        `json:"peer,omitempty"`
	Spans      int           `json:"spans"`

	// Tree is the span tree as JSON, serialized once at retention.
	Tree json.RawMessage `json:"-"`

	bytes int64
}

// Stats is the recorder's counter snapshot for /metrics.
type Stats struct {
	Offered      uint64
	Kept         uint64
	Dropped      uint64
	KeptByReason map[string]uint64
	EvictedCount uint64 // evictions forced by the trace-count cap
	EvictedBytes uint64 // evictions forced by the byte cap
	Traces       int
	Bytes        int64
	CapTraces    int
	CapBytes     int64
}

// Recorder is the bounded tail-sampling trace store. Construct with New; all
// methods are safe for concurrent use.
type Recorder struct {
	cfg Config

	offered atomic.Uint64
	dropped atomic.Uint64
	keptBy  map[string]*atomic.Uint64 // retention reason → kept count
	evCount atomic.Uint64
	evBytes atomic.Uint64

	mu    sync.Mutex
	ring  []*Record // capacity MaxTraces; tail is the oldest entry
	tail  int
	n     int
	bytes int64
	index map[string]*Record
}

// New builds a Recorder from cfg (zero-value fields take defaults).
func New(cfg Config) *Recorder {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 512
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 8 << 20
	}
	if cfg.SlowFloor <= 0 {
		cfg.SlowFloor = 500 * time.Millisecond
	}
	if cfg.SampleRate < 0 {
		cfg.SampleRate = 0
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	r := &Recorder{
		cfg:    cfg,
		ring:   make([]*Record, cfg.MaxTraces),
		index:  make(map[string]*Record),
		keptBy: make(map[string]*atomic.Uint64, len(reasons)),
	}
	for _, reason := range reasons {
		r.keptBy[reason] = new(atomic.Uint64)
	}
	return r
}

// retainReason applies the retention policy. Empty means drop. Runs on every
// request; must not allocate.
func (r *Recorder) retainReason(info *Info, d time.Duration) string {
	switch {
	case info.Status == http.StatusTooManyRequests || info.Status == http.StatusServiceUnavailable:
		return ReasonShed
	case info.Err != "" || info.Status >= 400:
		return ReasonError
	case d >= r.cfg.SlowFloor:
		return ReasonSlow
	}
	if f := r.cfg.SlowThreshold; f != nil {
		if t := f(info.Solver); t > 0 && d >= t {
			return ReasonSlow
		}
	}
	switch {
	case info.Forwarded:
		return ReasonForwarded
	case info.Remote:
		return ReasonRemote
	}
	if r.cfg.SampleRate > 0 && mrand.Float64() < r.cfg.SampleRate {
		return ReasonSampled
	}
	return ""
}

// Offer runs the retention decision for a finished request and stores the
// trace when it is kept, returning the new record and its retention reason.
// Returns (nil, "") for dropped traces — the common case, which allocates
// nothing. Nil-safe on a nil Recorder and a nil trace.
func (r *Recorder) Offer(info Info) (*Record, string) {
	if r == nil || info.Trace == nil {
		return nil, ""
	}
	r.offered.Add(1)
	root := info.Trace.Root()
	d := root.Duration
	reason := r.retainReason(&info, d)
	if reason == "" {
		r.dropped.Add(1)
		return nil, ""
	}
	rec := r.keep(&info, root, d, reason)
	return rec, reason
}

// keep builds and inserts the record — the slow path, run only for retained
// traces.
func (r *Recorder) keep(info *Info, root *obs.Span, d time.Duration, reason string) *Record {
	tr := info.Trace
	node := tr.Tree()
	treeJSON, err := json.Marshal(node)
	if err != nil {
		treeJSON = nil
	}
	outcome := "ok"
	switch reason {
	case ReasonShed:
		outcome = "shed"
	case ReasonError:
		outcome = "error"
	}
	rec := &Record{
		TraceID:    tr.ID.String(),
		RequestID:  tr.RequestID,
		Kind:       info.Kind,
		Solver:     info.Solver,
		Start:      root.Start,
		Duration:   d,
		DurationMs: float64(d) / float64(time.Millisecond),
		Status:     info.Status,
		Outcome:    outcome,
		Reason:     reason,
		Err:        info.Err,
		Forwarded:  info.Forwarded,
		Remote:     info.Remote,
		Peer:       info.Peer,
		Spans:      countNodes(node),
		Tree:       treeJSON,
	}
	if !tr.Parent.IsZero() {
		rec.ParentSpan = tr.Parent.String()
	}
	rec.bytes = int64(len(treeJSON)) + int64(len(rec.TraceID)+len(rec.RequestID)+len(rec.Solver)+len(rec.Err)+len(rec.Peer)) + 256

	r.keptBy[reason].Add(1)

	r.mu.Lock()
	if r.n == len(r.ring) {
		r.evictOldestLocked(&r.evCount)
	}
	r.ring[(r.tail+r.n)%len(r.ring)] = rec
	r.n++
	r.bytes += rec.bytes
	r.index[rec.TraceID] = rec
	for r.bytes > r.cfg.MaxBytes && r.n > 1 {
		r.evictOldestLocked(&r.evBytes)
	}
	r.mu.Unlock()
	return rec
}

// evictOldestLocked drops the ring's oldest record, crediting the eviction
// to counter. Callers hold r.mu and guarantee r.n > 0.
func (r *Recorder) evictOldestLocked(counter *atomic.Uint64) {
	old := r.ring[r.tail]
	r.ring[r.tail] = nil
	r.tail = (r.tail + 1) % len(r.ring)
	r.n--
	r.bytes -= old.bytes
	// A duplicate trace ID (a retried request propagating the same trace)
	// leaves the index pointing at the newest record; only unhook the entry
	// this eviction actually owns.
	if r.index[old.TraceID] == old {
		delete(r.index, old.TraceID)
	}
	counter.Add(1)
}

func countNodes(n *obs.SpanNode) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// Get returns the retained record for a trace ID.
func (r *Recorder) Get(id string) (*Record, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	rec, ok := r.index[id]
	r.mu.Unlock()
	return rec, ok
}

// Query filters List. Zero values mean "any".
type Query struct {
	// Solver keeps records of one solver.
	Solver string
	// MinDuration keeps records at least this slow.
	MinDuration time.Duration
	// Outcome keeps records of one outcome: "ok", "error", or "shed".
	Outcome string
	// Since keeps records that started at or after this instant.
	Since time.Time
	// Limit caps the result count (0 = no cap).
	Limit int
}

// List returns matching records, newest first. Records are immutable after
// retention; callers must not mutate them.
func (r *Recorder) List(q Query) []*Record {
	if r == nil {
		return nil
	}
	var out []*Record
	r.mu.Lock()
	for i := r.n - 1; i >= 0; i-- {
		rec := r.ring[(r.tail+i)%len(r.ring)]
		if q.Solver != "" && rec.Solver != q.Solver {
			continue
		}
		if rec.Duration < q.MinDuration {
			continue
		}
		if q.Outcome != "" && rec.Outcome != q.Outcome {
			continue
		}
		if !q.Since.IsZero() && rec.Start.Before(q.Since) {
			continue
		}
		out = append(out, rec)
		if q.Limit > 0 && len(out) == q.Limit {
			break
		}
	}
	r.mu.Unlock()
	return out
}

// Stats snapshots the recorder's counters and occupancy.
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	st := Stats{
		Offered:      r.offered.Load(),
		Dropped:      r.dropped.Load(),
		EvictedCount: r.evCount.Load(),
		EvictedBytes: r.evBytes.Load(),
		CapTraces:    r.cfg.MaxTraces,
		CapBytes:     r.cfg.MaxBytes,
		KeptByReason: make(map[string]uint64, len(reasons)),
	}
	for _, reason := range reasons {
		n := r.keptBy[reason].Load()
		st.KeptByReason[reason] = n
		st.Kept += n
	}
	r.mu.Lock()
	st.Traces, st.Bytes = r.n, r.bytes
	r.mu.Unlock()
	return st
}
