package flight

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// finishedTrace builds a trace with one child span and a settled duration.
func finishedTrace(t *testing.T, name string) *obs.Trace {
	t.Helper()
	tr := obs.New(name)
	tr.RequestID = "rid-" + name
	ctx := obs.NewContext(t.Context(), tr)
	sp := obs.Phase(ctx, "phase-a")
	sp.End()
	tr.Finish()
	return tr
}

func TestRetentionReasons(t *testing.T) {
	cases := []struct {
		name   string
		info   Info
		reason string
	}{
		{"shed-429", Info{Status: 429}, ReasonShed},
		{"shed-503", Info{Status: 503}, ReasonShed},
		{"error-status", Info{Status: 500, Err: "boom"}, ReasonError},
		{"error-msg", Info{Status: 200, Err: "infeasible"}, ReasonError},
		{"forwarded", Info{Status: 200, Forwarded: true, Peer: "http://peer"}, ReasonForwarded},
		{"remote", Info{Status: 200, Remote: true}, ReasonRemote},
		{"fast-ok", Info{Status: 200}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New(Config{SlowFloor: time.Hour}) // slow never triggers
			tc.info.Trace = finishedTrace(t, tc.name)
			tc.info.Kind, tc.info.Solver = "solve", "bandwidth"
			rec, reason := r.Offer(tc.info)
			if reason != tc.reason {
				t.Fatalf("reason = %q, want %q", reason, tc.reason)
			}
			if (rec != nil) != (tc.reason != "") {
				t.Fatalf("rec = %v with reason %q", rec, reason)
			}
			if rec == nil {
				return
			}
			if rec.Solver != "bandwidth" || rec.Kind != "solve" {
				t.Fatalf("record misattributed: %+v", rec)
			}
			if rec.TraceID != tc.info.Trace.ID.String() {
				t.Fatalf("record trace ID %q != trace %q", rec.TraceID, tc.info.Trace.ID)
			}
			if got, ok := r.Get(rec.TraceID); !ok || got != rec {
				t.Fatalf("Get(%q) = %v, %v", rec.TraceID, got, ok)
			}
			if rec.Spans < 2 {
				t.Fatalf("Spans = %d, want >= 2 (root + phase)", rec.Spans)
			}
			if len(rec.Tree) == 0 || !strings.Contains(string(rec.Tree), "phase-a") {
				t.Fatalf("serialized tree missing the phase span: %s", rec.Tree)
			}
		})
	}
}

func TestSlowRetention(t *testing.T) {
	r := New(Config{SlowFloor: time.Nanosecond}) // everything is "slow"
	rec, reason := r.Offer(Info{Trace: finishedTrace(t, "s"), Kind: "solve", Solver: "x", Status: 200})
	if reason != ReasonSlow || rec == nil {
		t.Fatalf("Offer = %v, %q; want a slow-retained record", rec, reason)
	}
	if rec.Outcome != "ok" {
		t.Fatalf("Outcome = %q, want ok", rec.Outcome)
	}
}

func TestAdaptiveSlowThreshold(t *testing.T) {
	r := New(Config{
		SlowFloor:     time.Hour,
		SlowThreshold: func(solver string) time.Duration { return time.Nanosecond },
	})
	if _, reason := r.Offer(Info{Trace: finishedTrace(t, "a"), Status: 200}); reason != ReasonSlow {
		t.Fatalf("reason = %q, want slow via adaptive threshold", reason)
	}
	// A threshold of 0 means "not established yet" and must not retain.
	r = New(Config{
		SlowFloor:     time.Hour,
		SlowThreshold: func(solver string) time.Duration { return 0 },
	})
	if _, reason := r.Offer(Info{Trace: finishedTrace(t, "b"), Status: 200}); reason != "" {
		t.Fatalf("reason = %q, want drop with zero adaptive threshold", reason)
	}
}

func TestSampling(t *testing.T) {
	always := New(Config{SampleRate: 1, SlowFloor: time.Hour})
	if _, reason := always.Offer(Info{Trace: finishedTrace(t, "a"), Status: 200}); reason != ReasonSampled {
		t.Fatalf("rate-1 reason = %q, want sampled", reason)
	}
	never := New(Config{SampleRate: 0, SlowFloor: time.Hour})
	for i := 0; i < 100; i++ {
		if rec, _ := never.Offer(Info{Trace: finishedTrace(t, "b"), Status: 200}); rec != nil {
			t.Fatalf("rate-0 retained a trace")
		}
	}
	st := never.Stats()
	if st.Offered != 100 || st.Dropped != 100 || st.Kept != 0 {
		t.Fatalf("stats = %+v, want 100 offered and dropped", st)
	}
}

func TestCountCapEviction(t *testing.T) {
	r := New(Config{MaxTraces: 4, SampleRate: 1, SlowFloor: time.Hour})
	ids := make([]string, 8)
	for i := range ids {
		rec, _ := r.Offer(Info{Trace: finishedTrace(t, fmt.Sprintf("t%d", i)), Status: 200})
		ids[i] = rec.TraceID
	}
	st := r.Stats()
	if st.Traces != 4 || st.EvictedCount != 4 {
		t.Fatalf("stats = %+v, want 4 resident / 4 count-evicted", st)
	}
	for _, id := range ids[:4] {
		if _, ok := r.Get(id); ok {
			t.Fatalf("evicted trace %s still resident", id)
		}
	}
	for _, id := range ids[4:] {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("recent trace %s missing", id)
		}
	}
	// Newest first.
	list := r.List(Query{})
	if len(list) != 4 || list[0].TraceID != ids[7] || list[3].TraceID != ids[4] {
		t.Fatalf("List order wrong: %v", list)
	}
}

func TestByteCapEviction(t *testing.T) {
	r := New(Config{MaxTraces: 1024, MaxBytes: 1200, SampleRate: 1, SlowFloor: time.Hour})
	for i := 0; i < 16; i++ {
		r.Offer(Info{Trace: finishedTrace(t, fmt.Sprintf("t%d", i)), Status: 200})
	}
	st := r.Stats()
	if st.Bytes > 1200 {
		t.Fatalf("resident bytes %d exceed the 1200 cap", st.Bytes)
	}
	if st.EvictedBytes == 0 {
		t.Fatalf("no byte-cap evictions recorded: %+v", st)
	}
	if st.Traces == 0 {
		t.Fatalf("byte cap evicted everything")
	}
}

func TestListFilters(t *testing.T) {
	r := New(Config{SampleRate: 1, SlowFloor: time.Hour})
	r.Offer(Info{Trace: finishedTrace(t, "a"), Solver: "fast", Status: 200})
	r.Offer(Info{Trace: finishedTrace(t, "b"), Solver: "slow", Status: 500, Err: "x"})
	r.Offer(Info{Trace: finishedTrace(t, "c"), Solver: "slow", Status: 429})

	if got := r.List(Query{Solver: "slow"}); len(got) != 2 {
		t.Fatalf("solver filter: %d records, want 2", len(got))
	}
	if got := r.List(Query{Outcome: "shed"}); len(got) != 1 || got[0].Status != 429 {
		t.Fatalf("outcome filter: %v", got)
	}
	if got := r.List(Query{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("minDuration filter leaked: %v", got)
	}
	if got := r.List(Query{Since: time.Now().Add(time.Hour)}); len(got) != 0 {
		t.Fatalf("since filter leaked: %v", got)
	}
	if got := r.List(Query{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit: %d records, want 1", len(got))
	}
}

func TestDuplicateTraceIDKeepsNewest(t *testing.T) {
	r := New(Config{MaxTraces: 2, SampleRate: 1, SlowFloor: time.Hour})
	tr := finishedTrace(t, "dup")
	first, _ := r.Offer(Info{Trace: tr, Solver: "one", Status: 200})
	second, _ := r.Offer(Info{Trace: tr, Solver: "two", Status: 200})
	if first.TraceID != second.TraceID {
		t.Fatalf("same trace produced different IDs")
	}
	if got, ok := r.Get(first.TraceID); !ok || got.Solver != "two" {
		t.Fatalf("Get returned %+v, want the newest record", got)
	}
	// Evicting the older duplicate must not unhook the newer one.
	r.Offer(Info{Trace: finishedTrace(t, "x"), Status: 429})
	if _, ok := r.Get(second.TraceID); !ok {
		t.Fatalf("newest duplicate lost after evicting the older one")
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if rec, reason := r.Offer(Info{Trace: finishedTrace(t, "n")}); rec != nil || reason != "" {
		t.Fatalf("nil recorder retained")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatalf("nil recorder Get")
	}
	if got := r.List(Query{}); got != nil {
		t.Fatalf("nil recorder List: %v", got)
	}
	if st := r.Stats(); st.Offered != 0 {
		t.Fatalf("nil recorder Stats: %+v", st)
	}
}

// TestOfferDropAllocFree pins the not-retained path at zero allocations —
// the always-on recorder must not tax the untraced hot path.
func TestOfferDropAllocFree(t *testing.T) {
	r := New(Config{SampleRate: 0, SlowFloor: time.Hour,
		SlowThreshold: func(string) time.Duration { return time.Hour }})
	tr := finishedTrace(t, "hot")
	info := Info{Trace: tr, Kind: "solve", Solver: "bandwidth", Status: 200}
	allocs := testing.AllocsPerRun(1000, func() {
		if rec, _ := r.Offer(info); rec != nil {
			t.Fatal("unexpectedly retained")
		}
	})
	if allocs != 0 {
		t.Fatalf("Offer drop path allocates %v times per call, want 0", allocs)
	}
}
