package flight

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
)

func benchTrace() *obs.Trace {
	tr := obs.New("bench")
	tr.RequestID = "rid-bench"
	ctx := obs.NewContext(context.Background(), tr)
	sp := obs.Phase(ctx, "phase-a")
	sp.End()
	tr.Finish()
	return tr
}

// BenchmarkRecorderOfferDrop measures the always-on cost paid by every
// request that is NOT retained — the number that must stay near zero.
func BenchmarkRecorderOfferDrop(b *testing.B) {
	r := New(Config{SampleRate: 0, SlowFloor: time.Hour,
		SlowThreshold: func(string) time.Duration { return time.Hour }})
	info := Info{Trace: benchTrace(), Kind: "solve", Solver: "bandwidth", Status: 200}
	b.ReportAllocs()
	for b.Loop() {
		r.Offer(info)
	}
}

// BenchmarkRecorderOfferKeep measures the retained path: serialize the span
// tree, insert into the ring, evict as needed.
func BenchmarkRecorderOfferKeep(b *testing.B) {
	r := New(Config{SampleRate: 1, MaxTraces: 256, SlowFloor: time.Hour})
	info := Info{Trace: benchTrace(), Kind: "solve", Solver: "bandwidth", Status: 200}
	b.ReportAllocs()
	for b.Loop() {
		r.Offer(info)
	}
}
