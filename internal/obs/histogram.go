package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram with lock-free Observe:
// per-bucket atomic counters plus an atomic float sum. Bucket semantics are
// Prometheus's — an observation v lands in the first bucket whose upper
// bound satisfies v <= bound, with one implicit +Inf overflow bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; the last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram builds a histogram over the given upper bounds, which must be
// strictly increasing and non-empty; it panics otherwise (bucket layouts are
// build-time configuration, not request data).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: NewHistogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || (i > 0 && b <= bounds[i-1]) {
			panic(fmt.Sprintf("obs: bucket bounds must be strictly increasing, got %v at %d", b, i))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.buckets = make([]atomic.Uint64, len(bounds)+1)
	return h
}

// LatencyBuckets returns the default log-spaced solve-latency layout:
// powers of two from 1µs to ~33.6s (26 buckets), matching the dynamic range
// between a cached microsolve and the server's maximum solve deadline.
func LatencyBuckets() []float64 {
	out := make([]float64, 26)
	b := 1e-6
	for i := range out {
		out[i] = b
		b *= 2
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v, or overflow
	h.buckets[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		want := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, want) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// BucketIndex returns the bucket an observation of v would land in and the
// total bucket count (bounds + the +Inf overflow) — the addressing scheme
// exemplar slots use.
func (h *Histogram) BucketIndex(v float64) (idx, n int) {
	return sort.SearchFloat64s(h.bounds, v), len(h.buckets)
}

// Count returns the number of observations so far — the cheap accessor for
// callers that refresh derived state every N observations without paying for
// a full snapshot.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the final entry is the +Inf bucket.
// Observations racing a snapshot may be split across Count/Sum/Counts — fine
// for a metrics scrape, do not use it for exact accounting.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Snapshot copies the current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile returns the upper bound of the bucket containing the q-quantile
// observation (0 < q <= 1), Prometheus-style: a conservative over-estimate
// with bucket-bound resolution. Returns +Inf when the quantile falls in the
// overflow bucket and 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || !(q > 0) {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		if cum >= target {
			return b
		}
	}
	return math.Inf(1)
}

// Exemplar links one histogram bucket to a recent observation's trace — the
// OpenMetrics "# {trace_id=\"...\"} value timestamp" suffix on a bucket line.
// A zero TraceID means "no exemplar for this bucket".
type Exemplar struct {
	TraceID string
	Value   float64
	Time    time.Time
}

// WritePrometheus renders the snapshot as Prometheus text-format series:
// name_bucket lines with cumulative counts and an le label, then name_sum
// and name_count. Labels are rendered sorted by key; the caller owns the
// # HELP / # TYPE header (several label sets usually share one family).
func (s HistogramSnapshot) WritePrometheus(w io.Writer, name string, labels map[string]string) {
	s.WritePrometheusExemplars(w, name, labels, nil)
}

// WritePrometheusExemplars is WritePrometheus with per-bucket exemplars:
// exemplars[i] annotates bucket i (the entry past the last bound annotates
// the +Inf bucket); entries with an empty TraceID — and a nil or short slice
// — render nothing extra, so the plain text format is unchanged when no
// exemplars exist.
func (s HistogramSnapshot) WritePrometheusExemplars(w io.Writer, name string, labels map[string]string, exemplars []Exemplar) {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	base := ""
	for _, k := range keys {
		base += fmt.Sprintf("%s=%q,", k, labels[k])
	}
	ex := func(i int) string {
		if i >= len(exemplars) || exemplars[i].TraceID == "" {
			return ""
		}
		e := exemplars[i]
		return fmt.Sprintf(" # {trace_id=%q} %s %.3f",
			e.TraceID, strconv.FormatFloat(e.Value, 'g', -1, 64),
			float64(e.Time.UnixMilli())/1e3)
	}
	var cum uint64
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d%s\n", name, base, strconv.FormatFloat(b, 'g', -1, 64), cum, ex(i))
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d%s\n", name, base, cum, ex(len(s.Bounds)))
	trail := ""
	if len(keys) > 0 {
		trail = "{" + base[:len(base)-1] + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, trail, s.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", name, trail, s.Count)
}
