package obs

import (
	"runtime"
	"time"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime's health
// signals — the process-level half of observability next to the per-request
// traces. Collected via ReadRuntimeStats for /metrics rendering.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int
	// HeapAlloc / HeapSys / HeapObjects mirror runtime.MemStats.
	HeapAlloc   uint64
	HeapSys     uint64
	HeapObjects uint64
	// NextGC is the heap size that triggers the next collection.
	NextGC uint64
	// GCCycles counts completed GC cycles.
	GCCycles uint32
	// GCPauseTotal is the cumulative stop-the-world pause time.
	GCPauseTotal time.Duration
	// GCCPUFraction is the fraction of CPU time spent in GC since start.
	GCCPUFraction float64
	// LastGC is when the last collection finished (zero if none ran).
	LastGC time.Time
}

// ReadRuntimeStats collects the runtime snapshot. ReadMemStats stops the
// world briefly; callers are expected to be scrape-rate (not request-rate)
// paths.
func ReadRuntimeStats() RuntimeStats {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := RuntimeStats{
		Goroutines:    runtime.NumGoroutine(),
		HeapAlloc:     ms.HeapAlloc,
		HeapSys:       ms.HeapSys,
		HeapObjects:   ms.HeapObjects,
		NextGC:        ms.NextGC,
		GCCycles:      ms.NumGC,
		GCPauseTotal:  time.Duration(ms.PauseTotalNs),
		GCCPUFraction: ms.GCCPUFraction,
	}
	if ms.LastGC != 0 {
		st.LastGC = time.Unix(0, int64(ms.LastGC))
	}
	return st
}
