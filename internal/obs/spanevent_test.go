package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestOnSpanHook checks the live span-event subscription: every child span
// delivers a start and an end event in order, the root delivers only its end,
// and durations/starts match the recorded spans.
func TestOnSpanHook(t *testing.T) {
	tr := New("root")
	var mu sync.Mutex
	var got []SpanEvent
	tr.OnSpan = func(ev SpanEvent) {
		mu.Lock()
		got = append(got, ev)
		mu.Unlock()
	}
	ctx := NewContext(context.Background(), tr)

	sp := Phase(ctx, "alpha")
	time.Sleep(time.Millisecond)
	sp.End()
	sctx, sp2 := StartSpan(ctx, "beta")
	inner := Phase(sctx, "beta-inner")
	inner.End()
	sp2.End()
	tr.Finish()

	mu.Lock()
	defer mu.Unlock()
	want := []struct {
		name string
		end  bool
		root bool
	}{
		{"alpha", false, false},
		{"alpha", true, false},
		{"beta", false, false},
		{"beta-inner", false, false},
		{"beta-inner", true, false},
		{"beta", true, false},
		{"root", true, true},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(got), len(want), got)
	}
	for i, w := range want {
		ev := got[i]
		if ev.Name != w.name || ev.End != w.end || ev.Root != w.root {
			t.Errorf("event %d = {%s end=%v root=%v}, want {%s end=%v root=%v}",
				i, ev.Name, ev.End, ev.Root, w.name, w.end, w.root)
		}
		if ev.Start.IsZero() {
			t.Errorf("event %d has zero Start", i)
		}
		if ev.End && ev.Duration <= 0 {
			t.Errorf("event %d End with non-positive duration %v", i, ev.Duration)
		}
		if !ev.End && ev.Duration != 0 {
			t.Errorf("event %d start with duration %v, want 0", i, ev.Duration)
		}
	}
	if got[1].Duration < time.Millisecond {
		t.Errorf("alpha duration %v, want >= 1ms", got[1].Duration)
	}
}

// TestOnSpanDoubleEnd checks a second End delivers no duplicate event.
func TestOnSpanDoubleEnd(t *testing.T) {
	tr := New("root")
	var n int
	tr.OnSpan = func(SpanEvent) { n++ }
	ctx := NewContext(context.Background(), tr)
	sp := Phase(ctx, "p")
	sp.End()
	sp.End()
	if n != 2 { // start + one end
		t.Fatalf("events = %d, want 2", n)
	}
}

// TestOnSpanNilSafe checks the hook is optional: traces without one behave
// exactly as before.
func TestOnSpanNilSafe(t *testing.T) {
	tr := New("root")
	ctx := NewContext(context.Background(), tr)
	sp := Phase(ctx, "p")
	sp.End()
	tr.Finish()
	if tot := tr.PhaseTotals(); tot["p"].Count != 1 {
		t.Fatalf("PhaseTotals = %+v", tot)
	}
}
