package obs

import (
	"context"
	"testing"
)

// The disabled path is the one every solver hot loop pays on every solve, so
// it must stay free: one context lookup, no allocations.
func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "phase")
		sp.SetAttr("n", i)
		sp.End()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := New("bench")
	ctx := NewContext(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "phase")
		sp.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.0042)
		}
	})
}
