package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// SpanNode is the exported, render-ready copy of a span: offsets are
// relative to the trace root so a tree serializes compactly, and the JSON
// shape is the one /v1/solve returns for trace:true.
type SpanNode struct {
	Name       string         `json:"name"`
	StartUs    int64          `json:"startUs"`
	DurationUs int64          `json:"durationUs"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanNode    `json:"children,omitempty"`
}

// Tree snapshots the whole trace as a SpanNode tree. Call after Finish so
// durations are settled; open spans render with a zero duration.
func (t *Trace) Tree() *SpanNode {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return buildNode(t.root, t.root.Start)
}

func buildNode(s *Span, base time.Time) *SpanNode {
	n := &SpanNode{
		Name:       s.Name,
		StartUs:    s.Start.Sub(base).Microseconds(),
		DurationUs: s.Duration.Microseconds(),
	}
	if len(s.Attrs) > 0 {
		n.Attrs = make(map[string]any, len(s.Attrs))
		for _, a := range s.Attrs {
			n.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, buildNode(c, base))
	}
	// Grafted remote subtrees nest after the local children. Their offsets
	// are relative to the remote root; shifting them by this span's own
	// offset puts them on the local timeline (clock skew across nodes is the
	// remote tree's problem, not worth a protocol here).
	for _, g := range s.grafts {
		n.Children = append(n.Children, shiftNode(g, n.StartUs))
	}
	return n
}

// shiftNode deep-copies a grafted subtree with every StartUs moved by delta.
func shiftNode(g *SpanNode, delta int64) *SpanNode {
	cp := &SpanNode{
		Name:       g.Name,
		StartUs:    g.StartUs + delta,
		DurationUs: g.DurationUs,
		Attrs:      g.Attrs,
	}
	for _, c := range g.Children {
		cp.Children = append(cp.Children, shiftNode(c, delta))
	}
	return cp
}

// Graft attaches a remote span subtree under s — the cross-node half of
// distributed tracing: the caller's cluster-forward span adopts the owner's
// serialized tree so one request renders as one tree. The node becomes owned
// by the trace and must not be mutated afterwards. Nil-safe on both sides.
func (s *Span) Graft(remote *SpanNode) {
	if s == nil || remote == nil {
		return
	}
	s.tr.mu.Lock()
	s.grafts = append(s.grafts, remote)
	s.tr.mu.Unlock()
}

// WriteText renders the trace as an indented human-readable tree, one span
// per line with its duration and attributes.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	node := t.Tree()
	if t.RequestID != "" {
		if _, err := fmt.Fprintf(w, "request-id: %s\n", t.RequestID); err != nil {
			return err
		}
	}
	return writeTextNode(w, node, 0)
}

func writeTextNode(w io.Writer, n *SpanNode, depth int) error {
	for i := 0; i < depth; i++ {
		if _, err := io.WriteString(w, "  "); err != nil {
			return err
		}
	}
	line := fmt.Sprintf("%s  %v", n.Name, time.Duration(n.DurationUs)*time.Microsecond)
	for _, k := range sortedAttrKeys(n.Attrs) {
		line += fmt.Sprintf("  %s=%v", k, n.Attrs[k])
	}
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := writeTextNode(w, c, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func sortedAttrKeys(attrs map[string]any) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ { // insertion sort; attr sets are tiny
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// chromeEvent is one complete ("ph":"X") event of the Chrome trace-event
// format, loadable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds since trace start
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace-event JSON (the
// {"traceEvents":[...]} object form).
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return nil
	}
	meta := map[string]string{}
	if t.RequestID != "" {
		meta["requestId"] = t.RequestID
	}
	if !t.ID.IsZero() {
		meta["traceId"] = t.ID.String()
	}
	return WriteChromeNode(w, t.Tree(), meta)
}

// WriteChromeNode renders a span tree as Chrome trace-event JSON — the same
// document WriteChrome produces, but from a stored SpanNode (the flight
// recorder serves retained traces through this). meta lands in otherData;
// empty maps are omitted.
func WriteChromeNode(w io.Writer, root *SpanNode, meta map[string]string) error {
	var events []chromeEvent
	var flatten func(n *SpanNode)
	flatten = func(n *SpanNode) {
		events = append(events, chromeEvent{
			Name: n.Name, Ph: "X", Ts: n.StartUs, Dur: n.DurationUs,
			Pid: 1, Tid: 1, Args: n.Attrs,
		})
		for _, c := range n.Children {
			flatten(c)
		}
	}
	if root != nil {
		flatten(root)
	}
	doc := struct {
		TraceEvents     []chromeEvent     `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData,omitempty"`
	}{TraceEvents: events, DisplayTimeUnit: "ms"}
	if len(meta) > 0 {
		doc.OtherData = meta
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}
