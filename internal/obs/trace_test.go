package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeNesting(t *testing.T) {
	tr := New("root")
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the attached trace")
	}

	actx, a := StartSpan(ctx, "phase-a")
	if a == nil {
		t.Fatal("StartSpan returned nil span on a traced context")
	}
	_, a1 := StartSpan(actx, "phase-a-child")
	a1.SetAttr("n", 42)
	a1.End()
	a.End()
	_, b := StartSpan(ctx, "phase-b") // sibling of a: parent ctx reused
	b.End()
	tr.Finish()

	root := tr.Tree()
	if root.Name != "root" {
		t.Fatalf("root name = %q", root.Name)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 (a, b)", len(root.Children))
	}
	if root.Children[0].Name != "phase-a" || root.Children[1].Name != "phase-b" {
		t.Fatalf("children = %q, %q", root.Children[0].Name, root.Children[1].Name)
	}
	sub := root.Children[0].Children
	if len(sub) != 1 || sub[0].Name != "phase-a-child" {
		t.Fatalf("phase-a children = %+v, want one phase-a-child", sub)
	}
	if got := sub[0].Attrs["n"]; got != 42 {
		t.Fatalf("attr n = %v, want 42", got)
	}
	if root.DurationUs < 0 || root.StartUs != 0 {
		t.Fatalf("root offsets: start=%d dur=%d", root.StartUs, root.DurationUs)
	}
}

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	got, sp := StartSpan(ctx, "x")
	if got != ctx {
		t.Error("StartSpan without a trace should return the input context")
	}
	if sp != nil {
		t.Error("StartSpan without a trace should return a nil span")
	}
	// All nil-span methods must be safe.
	sp.End()
	sp.SetAttr("k", "v")
	if sp.PhaseTotals() != nil {
		t.Error("nil span PhaseTotals should be nil")
	}
	var tr *Trace
	tr.Finish()
	if tr.Root() != nil || tr.Tree() != nil || tr.PhaseTotals() != nil {
		t.Error("nil trace accessors should return nil")
	}
	if err := tr.WriteText(nil); err != nil {
		t.Errorf("nil trace WriteText: %v", err)
	}
}

func TestStartSpanDisabledAllocFree(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "hot-phase")
		sp.SetAttr("i", 1)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan/SetAttr/End allocated %.1f times per run, want 0", allocs)
	}
}

func TestPhaseTotals(t *testing.T) {
	tr := New("root")
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "probe")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	pctx, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(pctx, "probe") // nested same-name span still aggregates
	inner.End()
	outer.End()
	tr.Finish()

	totals := tr.PhaseTotals()
	if got := totals["probe"].Count; got != 4 {
		t.Errorf("probe count = %d, want 4", got)
	}
	if totals["probe"].Total <= 0 {
		t.Errorf("probe total = %v, want > 0", totals["probe"].Total)
	}
	if got := totals["outer"].Count; got != 1 {
		t.Errorf("outer count = %d, want 1", got)
	}
	if _, ok := totals["root"]; ok {
		t.Error("the root span itself must not appear in PhaseTotals")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("batch")
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sctx, sp := StartSpan(ctx, "item")
			_, c := StartSpan(sctx, "work")
			c.End()
			sp.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	totals := tr.PhaseTotals()
	if totals["item"].Count != 16 || totals["work"].Count != 16 {
		t.Fatalf("totals = %+v, want 16 items and 16 works", totals)
	}
}

func TestRequestIDHelpers(t *testing.T) {
	ctx := context.Background()
	if got := RequestIDFrom(ctx); got != "" {
		t.Errorf("empty context request ID = %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestIDFrom(ctx); got != "abc123" {
		t.Errorf("request ID = %q, want abc123", got)
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b {
		t.Errorf("NewRequestID returned duplicates: %q", a)
	}
	if len(a) != 16 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Errorf("NewRequestID %q is not 16 hex chars", a)
	}
}

func TestSecondEndKeepsFirstDuration(t *testing.T) {
	tr := New("root")
	ctx := NewContext(context.Background(), tr)
	_, sp := StartSpan(ctx, "p")
	sp.End()
	d := sp.Duration
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if sp.Duration != d {
		t.Errorf("second End overwrote duration: %v -> %v", d, sp.Duration)
	}
}
