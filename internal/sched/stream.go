package sched

import (
	"container/heap"
	"fmt"

	"repro/internal/arch"
	"repro/internal/graph"
)

// This file simulates the pipelined execution pattern of §1/§3: a stream of
// problem instances fed through a partitioned task chain ("a sequence of
// such problems (possibly with different input parameters) can be 'fed' to
// the pipeline and keep all stages busy"). Each component of the partition
// is one pipeline stage on its own processor; an item visits the stages in
// order, paying the component's full compute load at each stage and one
// interconnect transfer per crossed cut edge. The steady-state rate this
// simulator measures is what pipeline.Plan's Throughput field predicts
// analytically; tests tie the two together.

// StreamResult reports a pipelined-stream simulation.
type StreamResult struct {
	// Makespan is when the last item leaves the last stage.
	Makespan float64
	// FirstItemLatency is when item 0 leaves the last stage.
	FirstItemLatency float64
	// Throughput is the measured steady-state rate: (items−1) / (time
	// between the first and last item completing), or items/Makespan for a
	// single item.
	Throughput float64
	// BusBusy is the aggregate transfer time.
	BusBusy float64
	// Messages is the number of transfers performed.
	Messages int
}

// SimulatePipelineStream pushes the given number of items through the
// partitioned chain.
func SimulatePipelineStream(cfg Config, p *graph.Path, cut []int, items int) (*StreamResult, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("nil machine: %w", ErrBadConfig)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if items <= 0 {
		return nil, fmt.Errorf("items = %d: %w", items, ErrBadConfig)
	}
	links := cfg.Links
	if links == 0 {
		links = 1
	}
	if links < 0 {
		return nil, fmt.Errorf("links = %d: %w", cfg.Links, ErrBadConfig)
	}
	ws, err := p.ComponentWeights(cut)
	if err != nil {
		return nil, err
	}
	if _, err := arch.MapComponents(cfg.Machine, len(ws)); err != nil {
		return nil, err
	}
	nc := len(ws)
	// Transfer size out of stage c = weight of cut edge c (stages are in
	// chain order).
	xferSize := make([]float64, nc-1)
	for i, e := range cut {
		xferSize[i] = p.EdgeW[e]
	}
	speed := cfg.Machine.Speed
	bw := cfg.Machine.BusBandwidth

	q := &seventQueue{}
	seq := 0
	push := func(ev sevent) {
		ev.seq = seq
		seq++
		heap.Push(q, ev)
	}
	arrived := make([]int, nc) // items delivered to stage c (stage 0: all)
	arrived[0] = items
	nextItem := make([]int, nc)
	idle := make([]bool, nc)
	for c := range idle {
		idle[c] = true
	}
	var busQueue []transfer
	linksBusy := 0
	res := &StreamResult{}
	var firstDone, lastDone float64
	tryStart := func(c int, now float64) {
		if !idle[c] || nextItem[c] >= items || nextItem[c] >= arrived[c] {
			return
		}
		idle[c] = false
		d := ws[c] / speed
		push(sevent{at: now + d, kind: evStage, stage: c, item: nextItem[c]})
		nextItem[c]++
	}
	startLinks := func(now float64) {
		for linksBusy < links && len(busQueue) > 0 {
			tr := busQueue[0]
			busQueue = busQueue[1:]
			linksBusy++
			d := tr.size / bw
			res.BusBusy += d
			// transfer.channel reused as destination stage here.
			push(sevent{at: now + d, kind: evXfer, stage: tr.channel, size: tr.size})
		}
	}
	tryStart(0, 0)
	for q.Len() > 0 {
		ev := heap.Pop(q).(sevent)
		now := ev.at
		switch ev.kind {
		case evStage:
			c := ev.stage
			idle[c] = true
			if c == nc-1 {
				if ev.item == 0 {
					firstDone = now
					res.FirstItemLatency = now
				}
				if ev.item == items-1 {
					lastDone = now
					res.Makespan = now
				}
			} else {
				busQueue = append(busQueue, transfer{channel: c + 1, size: xferSize[c], posted: now})
				startLinks(now)
			}
			tryStart(c, now)
		case evXfer:
			linksBusy--
			res.Messages++
			arrived[ev.stage]++
			tryStart(ev.stage, now)
			startLinks(now)
		}
	}
	if items > 1 && lastDone > firstDone {
		res.Throughput = float64(items-1) / (lastDone - firstDone)
	} else if res.Makespan > 0 {
		res.Throughput = float64(items) / res.Makespan
	}
	return res, nil
}

// Stream-simulation event kinds.
const (
	evStage = iota
	evXfer
)

// sevent is one stream-simulation event: a stage finishing an item or a
// transfer landing at a stage.
type sevent struct {
	at    float64
	kind  int
	stage int
	item  int
	size  float64
	seq   int
}

type seventQueue []sevent

func (q seventQueue) Len() int { return len(q) }
func (q seventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q seventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *seventQueue) Push(x any)   { *q = append(*q, x.(sevent)) }
func (q *seventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
