package sched

import (
	"bufio"
	"strconv"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestTraceOutput(t *testing.T) {
	p, _ := graph.NewPath([]float64{10, 10}, []float64{4})
	var sb strings.Builder
	res, err := SimulatePath(Config{Machine: machine(2), Rounds: 2, Trace: &sb}, p, []int{0})
	if err != nil {
		t.Fatalf("SimulatePath: %v", err)
	}
	var computes, transfers int
	lastTime := -1.0
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		fields := strings.Split(sc.Text(), "\t")
		if len(fields) != 4 {
			t.Fatalf("malformed trace line %q", sc.Text())
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			t.Fatalf("bad time in %q: %v", sc.Text(), err)
		}
		if at < lastTime {
			t.Fatalf("trace times not monotone: %v after %v", at, lastTime)
		}
		lastTime = at
		switch fields[1] {
		case "compute":
			computes++
		case "transfer":
			transfers++
		default:
			t.Fatalf("unknown event kind %q", fields[1])
		}
	}
	// 2 components × 2 rounds of compute; 2 channels × 2 rounds of
	// transfers.
	if computes != 4 {
		t.Errorf("computes = %d, want 4", computes)
	}
	if transfers != res.Messages || transfers != 4 {
		t.Errorf("transfers = %d, want %d", transfers, res.Messages)
	}
	// Trace must not perturb results.
	plain, err := SimulatePath(Config{Machine: machine(2), Rounds: 2}, p, []int{0})
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	if *plain != *res {
		t.Errorf("trace changed results: %+v vs %+v", res, plain)
	}
}
