package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

// Property: for arbitrary feasible partitions, the simulator respects its
// invariants — message conservation, compute accounting, and the two
// makespan lower bounds (heaviest component × rounds, total bus demand).
func TestSimulateInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 2 + r.Intn(60)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(0, 10))
		k := r.Uniform(10, 60)
		pp, err := core.Bandwidth(p, k)
		if err != nil {
			return true // infeasible instance; nothing to simulate
		}
		rounds := 1 + r.Intn(4)
		m := &arch.Machine{
			Processors:   n,
			Speed:        r.Uniform(0.5, 100),
			BusBandwidth: r.Uniform(0.5, 100),
		}
		res, err := SimulatePath(Config{Machine: m, Rounds: rounds}, p, pp.Cut)
		if err != nil {
			return false
		}
		if res.Messages != 2*len(pp.Cut)*rounds {
			return false
		}
		wantCompute := p.TotalNodeWeight() / m.Speed * float64(rounds)
		if diff := res.ComputeTime - wantCompute; diff > 1e-6 || diff < -1e-6 {
			return false
		}
		met, err := arch.EvaluatePath(m, p, pp.Cut)
		if err != nil {
			return false
		}
		if res.Makespan < met.ComputeMakespan*float64(rounds)-1e-9 {
			return false
		}
		if res.Makespan < res.BusBusy-1e-9 {
			return false
		}
		return res.BusUtilization >= 0 && res.BusUtilization <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: slowing the bus can only increase (or preserve) the makespan.
func TestSimulateBusMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 4 + r.Intn(40)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		k := r.Uniform(15, 60)
		pp, err := core.Bandwidth(p, k)
		if err != nil {
			return true
		}
		fast := &arch.Machine{Processors: n, Speed: 10, BusBandwidth: 100}
		slow := &arch.Machine{Processors: n, Speed: 10, BusBandwidth: 1}
		a, err1 := SimulatePath(Config{Machine: fast, Rounds: 3}, p, pp.Cut)
		b, err2 := SimulatePath(Config{Machine: slow, Rounds: 3}, p, pp.Cut)
		if err1 != nil || err2 != nil {
			return false
		}
		return b.Makespan >= a.Makespan-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
