package sched

import (
	"errors"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func TestStreamErrors(t *testing.T) {
	p, _ := graph.NewPath([]float64{1, 1}, []float64{1})
	cfg := Config{Machine: machine(2), Rounds: 1}
	if _, err := SimulatePipelineStream(cfg, p, []int{0}, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("items=0: %v", err)
	}
	if _, err := SimulatePipelineStream(Config{Machine: nil}, p, nil, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil machine: %v", err)
	}
	one := Config{Machine: machine(1), Rounds: 1}
	if _, err := SimulatePipelineStream(one, p, []int{0}, 1); !errors.Is(err, arch.ErrTooFewProcessors) {
		t.Errorf("too few processors: %v", err)
	}
}

func TestStreamSingleStage(t *testing.T) {
	// One stage of 12 work units at speed 2: each item takes 6; 5 items
	// serialize to 30 with no messages.
	p, _ := graph.NewPath([]float64{4, 8}, []float64{3})
	m := &arch.Machine{Processors: 1, Speed: 2, BusBandwidth: 1}
	res, err := SimulatePipelineStream(Config{Machine: m, Rounds: 1}, p, nil, 5)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.Makespan != 30 || res.Messages != 0 {
		t.Errorf("makespan %v messages %d, want 30/0", res.Makespan, res.Messages)
	}
	if math.Abs(res.Throughput-1.0/6) > 1e-9 {
		t.Errorf("throughput %v, want 1/6", res.Throughput)
	}
}

func TestStreamTwoStagesHandComputed(t *testing.T) {
	// Stages of 10 and 10 at speed 1, boundary message 4, bandwidth 1.
	// Item i: stage0 done at 10(i+1); transfer 4; stage1 busy 10.
	// Steady state interval = 10 (compute dominates): stage1 finishes item
	// 0 at 24, item 1 at 34, item 2 at 44.
	p, _ := graph.NewPath([]float64{10, 10}, []float64{4})
	m := &arch.Machine{Processors: 2, Speed: 1, BusBandwidth: 1}
	res, err := SimulatePipelineStream(Config{Machine: m, Rounds: 1}, p, []int{0}, 3)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if res.FirstItemLatency != 24 {
		t.Errorf("first item latency = %v, want 24", res.FirstItemLatency)
	}
	if res.Makespan != 44 {
		t.Errorf("makespan = %v, want 44", res.Makespan)
	}
	if res.Messages != 3 {
		t.Errorf("messages = %d, want 3", res.Messages)
	}
	if math.Abs(res.Throughput-0.1) > 1e-9 {
		t.Errorf("throughput = %v, want 0.1", res.Throughput)
	}
}

func TestStreamThroughputMatchesPlanPrediction(t *testing.T) {
	// The analytic Throughput of pipeline.Build must match the simulated
	// steady-state rate for long streams.
	r := workload.NewRNG(99)
	for trial := 0; trial < 20; trial++ {
		tasks := workload.Pipeline(r, 24,
			workload.UniformWeights(20, 120),
			workload.UniformWeights(2, 30), 0.2, 5)
		m := &arch.Machine{Processors: 24, Speed: 100, BusBandwidth: 300}
		spec := &pipeline.Spec{Tasks: tasks, Deadline: 2.5}
		plan, err := pipeline.Build(spec, m)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		if plan.Partition.NumComponents() < 2 {
			continue
		}
		res, err := SimulatePipelineStream(Config{Machine: m, Rounds: 1}, tasks, plan.Partition.Cut, 400)
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		rel := math.Abs(res.Throughput-plan.Throughput) / plan.Throughput
		if rel > 0.05 {
			t.Fatalf("simulated throughput %v vs predicted %v (%.1f%% off, %d stages)",
				res.Throughput, plan.Throughput, 100*rel, plan.Partition.NumComponents())
		}
	}
}

func TestStreamMoreLinksNeverSlower(t *testing.T) {
	r := workload.NewRNG(5)
	p := workload.RandomPath(r, 30, workload.UniformWeights(5, 15), workload.UniformWeights(10, 50))
	m := &arch.Machine{Processors: 30, Speed: 10, BusBandwidth: 3}
	cut := []int{4, 9, 14, 19, 24}
	var prev float64 = math.Inf(1)
	for _, links := range []int{1, 2, 8} {
		res, err := SimulatePipelineStream(Config{Machine: m, Rounds: 1, Links: links}, p, cut, 50)
		if err != nil {
			t.Fatalf("links=%d: %v", links, err)
		}
		if res.Makespan > prev+1e-9 {
			t.Fatalf("links=%d makespan %v worse than fewer links %v", links, res.Makespan, prev)
		}
		prev = res.Makespan
	}
}
