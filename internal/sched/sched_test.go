package sched

import (
	"errors"
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func machine(procs int) *arch.Machine {
	return &arch.Machine{Processors: procs, Speed: 1, BusBandwidth: 1}
}

func TestSimulateConfigErrors(t *testing.T) {
	p, _ := graph.NewPath([]float64{1, 1}, []float64{1})
	if _, err := SimulatePath(Config{Machine: nil, Rounds: 1}, p, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil machine: %v", err)
	}
	if _, err := SimulatePath(Config{Machine: machine(2), Rounds: 0}, p, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("rounds=0: %v", err)
	}
	if _, err := SimulatePath(Config{Machine: machine(1), Rounds: 1}, p, []int{0}); !errors.Is(err, arch.ErrTooFewProcessors) {
		t.Errorf("too few processors: %v", err)
	}
}

func TestSimulateSingleComponent(t *testing.T) {
	p, _ := graph.NewPath([]float64{3, 4, 5}, []float64{1, 1})
	res, err := SimulatePath(Config{Machine: machine(1), Rounds: 4}, p, nil)
	if err != nil {
		t.Fatalf("SimulatePath: %v", err)
	}
	// 4 rounds of 12 work units at speed 1, no messages.
	if res.Makespan != 48 {
		t.Errorf("Makespan = %v, want 48", res.Makespan)
	}
	if res.Messages != 0 || res.BusBusy != 0 {
		t.Errorf("expected no traffic: %+v", res)
	}
	if res.ComputeTime != 48 {
		t.Errorf("ComputeTime = %v, want 48", res.ComputeTime)
	}
}

func TestSimulateTwoComponentsHandComputed(t *testing.T) {
	// Components of load 10 and 10, one cut edge of weight 4, speed 1,
	// bandwidth 1, 1 round. Both finish compute at t=10, two transfers of
	// 4 serialize: done at 14 and 18. Round completes for the later receiver
	// at t=18.
	p, _ := graph.NewPath([]float64{10, 10}, []float64{4})
	res, err := SimulatePath(Config{Machine: machine(2), Rounds: 1}, p, []int{0})
	if err != nil {
		t.Fatalf("SimulatePath: %v", err)
	}
	if res.Makespan != 18 {
		t.Errorf("Makespan = %v, want 18", res.Makespan)
	}
	if res.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Messages)
	}
	if res.BusBusy != 8 {
		t.Errorf("BusBusy = %v, want 8", res.BusBusy)
	}
	// Latencies: first transfer 4, second 8 → mean 6.
	if math.Abs(res.MeanMessageLatency-6) > 1e-9 {
		t.Errorf("MeanMessageLatency = %v, want 6", res.MeanMessageLatency)
	}
}

func TestSimulateRoundsScaleLinearly(t *testing.T) {
	p, _ := graph.NewPath([]float64{10, 10}, []float64{4})
	one, err := SimulatePath(Config{Machine: machine(2), Rounds: 1}, p, []int{0})
	if err != nil {
		t.Fatalf("rounds=1: %v", err)
	}
	five, err := SimulatePath(Config{Machine: machine(2), Rounds: 5}, p, []int{0})
	if err != nil {
		t.Fatalf("rounds=5: %v", err)
	}
	if five.Makespan <= one.Makespan*4 {
		t.Errorf("5-round makespan %v should be ~5x 1-round %v", five.Makespan, one.Makespan)
	}
	if five.Messages != 10 {
		t.Errorf("Messages = %d, want 10", five.Messages)
	}
}

func TestSimulateLowerBandwidthCutWins(t *testing.T) {
	// The paper's core premise: among balanced partitions, the one with the
	// lighter cut finishes sooner under bus contention.
	r := workload.NewRNG(7)
	p := workload.RandomPath(r, 64, workload.UniformWeights(8, 12), workload.UniformWeights(1, 100))
	k := 100.0
	m := &arch.Machine{Processors: 32, Speed: 10, BusBandwidth: 2}
	cfg := Config{Machine: m, Rounds: 5}

	opt, err := core.Bandwidth(p, k)
	if err != nil {
		t.Fatalf("Bandwidth: %v", err)
	}
	naiveCut := equalBlocks(p, len(opt.Cut))
	optWeight, _ := p.CutWeight(opt.Cut)
	naiveWeight, _ := p.CutWeight(naiveCut)
	if optWeight >= naiveWeight {
		t.Skipf("random instance degenerate: optimal %v vs naive %v", optWeight, naiveWeight)
	}
	optRes, err := SimulatePath(cfg, p, opt.Cut)
	if err != nil {
		t.Fatalf("simulate optimal: %v", err)
	}
	naiveRes, err := SimulatePath(cfg, p, naiveCut)
	if err != nil {
		t.Fatalf("simulate naive: %v", err)
	}
	if optRes.BusBusy >= naiveRes.BusBusy {
		t.Errorf("optimal cut bus time %v should beat naive %v", optRes.BusBusy, naiveRes.BusBusy)
	}
	if optRes.Makespan > naiveRes.Makespan {
		t.Errorf("optimal cut makespan %v should not exceed naive %v", optRes.Makespan, naiveRes.Makespan)
	}
}

// equalBlocks cuts the path into len(cut)+1 equal-length blocks, ignoring
// weights — the naive partition a non-optimizing system would use.
func equalBlocks(p *graph.Path, cuts int) []int {
	if cuts <= 0 {
		return nil
	}
	blocks := cuts + 1
	var out []int
	for b := 1; b <= cuts; b++ {
		e := b*p.Len()/blocks - 1
		if e >= 0 && e < p.NumEdges() {
			if len(out) == 0 || out[len(out)-1] < e {
				out = append(out, e)
			}
		}
	}
	return out
}

func TestSimulateTreePartition(t *testing.T) {
	r := workload.NewRNG(21)
	tr := workload.RandomTree(r, 40, workload.UniformWeights(5, 15), workload.UniformWeights(1, 50))
	pt, err := core.PartitionTree(tr, 60)
	if err != nil {
		t.Fatalf("PartitionTree: %v", err)
	}
	res, err := SimulateTree(Config{Machine: machine(40), Rounds: 3}, tr, pt.Cut)
	if err != nil {
		t.Fatalf("SimulateTree: %v", err)
	}
	if res.Makespan <= 0 {
		t.Errorf("Makespan = %v, want > 0", res.Makespan)
	}
	if res.Messages != 2*len(pt.Cut)*3 {
		t.Errorf("Messages = %d, want %d", res.Messages, 2*len(pt.Cut)*3)
	}
	if res.BusUtilization < 0 || res.BusUtilization > 1 {
		t.Errorf("BusUtilization = %v out of [0,1]", res.BusUtilization)
	}
}

func TestSimulateMakespanLowerBound(t *testing.T) {
	// Makespan can never beat compute time of the heaviest component times
	// rounds, nor total bus demand.
	r := workload.NewRNG(33)
	for trial := 0; trial < 20; trial++ {
		p := workload.RandomPath(r, 30, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		pp, err := core.Bandwidth(p, 25)
		if err != nil {
			continue
		}
		m := machine(30)
		rounds := 3
		res, err := SimulatePath(Config{Machine: m, Rounds: rounds}, p, pp.Cut)
		if err != nil {
			t.Fatalf("SimulatePath: %v", err)
		}
		met, err := arch.EvaluatePath(m, p, pp.Cut)
		if err != nil {
			t.Fatalf("EvaluatePath: %v", err)
		}
		lb := met.ComputeMakespan * float64(rounds)
		if res.Makespan < lb-1e-9 {
			t.Fatalf("makespan %v below compute lower bound %v", res.Makespan, lb)
		}
		if res.Makespan < res.BusBusy-1e-9 {
			t.Fatalf("makespan %v below bus busy %v", res.Makespan, res.BusBusy)
		}
	}
}

func TestSimulateZeroWeightEdgesAndNodes(t *testing.T) {
	p, _ := graph.NewPath([]float64{0, 5, 0}, []float64{0, 0})
	res, err := SimulatePath(Config{Machine: machine(3), Rounds: 2}, p, []int{0, 1})
	if err != nil {
		t.Fatalf("SimulatePath: %v", err)
	}
	if res.Makespan != 10 {
		t.Errorf("Makespan = %v, want 10 (two rounds of the weight-5 task)", res.Makespan)
	}
}
