package sched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestLinksValidation(t *testing.T) {
	p, _ := graph.NewPath([]float64{1, 1}, []float64{1})
	if _, err := SimulatePath(Config{Machine: machine(2), Rounds: 1, Links: -1}, p, []int{0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative links: %v", err)
	}
	// Links: 0 defaults to 1 (shared bus) and must match Links: 1 exactly.
	a, err := SimulatePath(Config{Machine: machine(2), Rounds: 2}, p, []int{0})
	if err != nil {
		t.Fatalf("default links: %v", err)
	}
	b, err := SimulatePath(Config{Machine: machine(2), Rounds: 2, Links: 1}, p, []int{0})
	if err != nil {
		t.Fatalf("links=1: %v", err)
	}
	if *a != *b {
		t.Errorf("default %+v != links=1 %+v", a, b)
	}
}

func TestCrossbarParallelizesTransfers(t *testing.T) {
	// Two components exchange two messages of size 4 each way. On a single
	// bus they serialize (finish at 10+4+4=18); on a 2-link crossbar both
	// ship concurrently (finish at 14).
	p, _ := graph.NewPath([]float64{10, 10}, []float64{4})
	bus, err := SimulatePath(Config{Machine: machine(2), Rounds: 1, Links: 1}, p, []int{0})
	if err != nil {
		t.Fatalf("bus: %v", err)
	}
	xbar, err := SimulatePath(Config{Machine: machine(2), Rounds: 1, Links: 2}, p, []int{0})
	if err != nil {
		t.Fatalf("crossbar: %v", err)
	}
	if bus.Makespan != 18 {
		t.Errorf("bus makespan = %v, want 18", bus.Makespan)
	}
	if xbar.Makespan != 14 {
		t.Errorf("crossbar makespan = %v, want 14", xbar.Makespan)
	}
	if xbar.BusBusy != bus.BusBusy {
		t.Errorf("aggregate transfer time should not change: %v vs %v", xbar.BusBusy, bus.BusBusy)
	}
	if xbar.BusUtilization > bus.BusUtilization {
		t.Errorf("per-link utilization should drop with more links")
	}
}

// Property: makespan is monotone non-increasing in the number of links, and
// saturates once links cover all simultaneous transfers.
func TestLinksMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := workload.NewRNG(seed)
		n := 4 + r.Intn(30)
		p := workload.RandomPath(r, n, workload.UniformWeights(1, 10), workload.UniformWeights(1, 10))
		pp, err := core.Bandwidth(p, r.Uniform(12, 50))
		if err != nil {
			return true
		}
		m := &arch.Machine{Processors: n, Speed: 10, BusBandwidth: 5}
		prev := math.Inf(1)
		for _, links := range []int{1, 2, 4, 1 << 20} {
			res, err := SimulatePath(Config{Machine: m, Rounds: 3, Links: links}, p, pp.Cut)
			if err != nil {
				return false
			}
			if res.Makespan > prev+1e-9 {
				return false
			}
			prev = res.Makespan
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestContentionFreeLowerBound(t *testing.T) {
	// With unlimited links the makespan equals rounds of (compute + one
	// exchange) on the critical component chain; in particular it is at
	// least compute and at most the bus-serialized makespan.
	r := workload.NewRNG(17)
	p := workload.RandomPath(r, 40, workload.UniformWeights(5, 15), workload.UniformWeights(5, 50))
	pp, err := core.Bandwidth(p, 80)
	if err != nil {
		t.Fatalf("Bandwidth: %v", err)
	}
	m := &arch.Machine{Processors: 40, Speed: 10, BusBandwidth: 2}
	bus, err := SimulatePath(Config{Machine: m, Rounds: 4, Links: 1}, p, pp.Cut)
	if err != nil {
		t.Fatalf("bus: %v", err)
	}
	free, err := SimulatePath(Config{Machine: m, Rounds: 4, Links: 1 << 20}, p, pp.Cut)
	if err != nil {
		t.Fatalf("free: %v", err)
	}
	if free.Makespan > bus.Makespan {
		t.Errorf("contention-free %v slower than bus %v", free.Makespan, bus.Makespan)
	}
	met, err := arch.EvaluatePath(m, p, pp.Cut)
	if err != nil {
		t.Fatalf("EvaluatePath: %v", err)
	}
	if free.Makespan < met.ComputeMakespan*4-1e-9 {
		t.Errorf("contention-free makespan %v below compute bound %v", free.Makespan, met.ComputeMakespan*4)
	}
}
