// Package sched is a discrete-event simulator of partitioned iterative
// execution on the shared-memory machine of package arch. It exists to
// validate the paper's premise end-to-end: partitions with lower cut
// bandwidth place less serialized demand on the shared interconnect and
// therefore finish iterative computations sooner.
//
// Execution model (the iterative/pipelined pattern of §1): the task graph
// has been partitioned into components, one per processor. Computation
// proceeds in rounds. In each round every processor computes for
// (component load / speed) time, then posts one message per incident cut
// edge to the interconnect; transfers are served FIFO by Config.Links
// identical channels (1 = shared bus; many = crossbar / multistage network,
// the other §1 shared-memory interconnects). A processor completes round r —
// and may begin round r+1 — once it has finished computing round r and has
// received round r's message on every incident cut edge. Message rounds are
// tracked per edge direction (channel), so a fast neighbour running ahead
// can never satisfy a wait with a later round's message.
package sched

import (
	"container/heap"
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/graph"
)

// ErrBadConfig is returned for invalid simulation parameters.
var ErrBadConfig = errors.New("sched: bad configuration")

// Config describes one simulation run.
type Config struct {
	// Machine is the target multiprocessor.
	Machine *arch.Machine
	// Rounds is the number of iterations to simulate.
	Rounds int
	// Links is the number of independent interconnect channels, each of
	// Machine.BusBandwidth: 1 (the default when zero) models a shared bus;
	// a large value models a crossbar or multistage network where transfers
	// between distinct pairs never contend (§1 lists all three as
	// shared-memory interconnects).
	Links int
	// Trace, when non-nil, receives one tab-separated line per simulation
	// event: time, kind (compute|transfer), subject, detail. For debugging
	// and teaching; adds I/O cost.
	Trace io.Writer
}

// Result reports the simulation outcome.
type Result struct {
	// Makespan is the completion time of the final round on the last
	// processor (including the final message exchange).
	Makespan float64
	// BusBusy is the aggregate transfer time across all links.
	BusBusy float64
	// BusUtilization is BusBusy / (Makespan × links), in [0, 1].
	BusUtilization float64
	// Messages is the number of point-to-point transfers performed.
	Messages int
	// MeanMessageLatency is the average time from message post to delivery.
	MeanMessageLatency float64
	// ComputeTime is the total processor-seconds spent computing.
	ComputeTime float64
}

const (
	evComputeDone = iota
	evTransferDone
)

type event struct {
	at   float64
	kind int
	comp int      // component that finished computing (evComputeDone)
	tr   transfer // in-flight transfer (evTransferDone)
	seq  int      // tie-break for determinism
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// transfer is one queued bus message on a directed channel.
type transfer struct {
	channel int
	size    float64
	posted  float64
}

// SimulateTree runs the model on a tree task graph with the given cut.
func SimulateTree(cfg Config, t *graph.Tree, cut []int) (*Result, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("nil machine: %w", ErrBadConfig)
	}
	if err := cfg.Machine.Validate(); err != nil {
		return nil, err
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("rounds = %d: %w", cfg.Rounds, ErrBadConfig)
	}
	links := cfg.Links
	if links == 0 {
		links = 1
	}
	if links < 0 {
		return nil, fmt.Errorf("links = %d: %w", cfg.Links, ErrBadConfig)
	}
	comps, err := t.Components(cut)
	if err != nil {
		return nil, err
	}
	if _, err := arch.MapComponents(cfg.Machine, len(comps)); err != nil {
		return nil, err
	}
	nc := len(comps)
	comp := make([]int, t.Len())
	loads := make([]float64, nc)
	for ci, vs := range comps {
		for _, v := range vs {
			comp[v] = ci
			loads[ci] += t.NodeW[v]
		}
	}
	// Directed channels: one per (cut edge, direction). sendChannels[c] are
	// the channels c posts to after computing; recvChannels[c] are the
	// channels c must drain to finish a round.
	type channel struct {
		to   int
		size float64
	}
	var channels []channel
	sendChannels := make([][]int, nc)
	recvChannels := make([][]int, nc)
	for _, e := range cut {
		u, v := comp[t.Edges[e].U], comp[t.Edges[e].V]
		w := t.Edges[e].W
		channels = append(channels, channel{to: v, size: w})
		sendChannels[u] = append(sendChannels[u], len(channels)-1)
		recvChannels[v] = append(recvChannels[v], len(channels)-1)
		channels = append(channels, channel{to: u, size: w})
		sendChannels[v] = append(sendChannels[v], len(channels)-1)
		recvChannels[u] = append(recvChannels[u], len(channels)-1)
	}
	speed := cfg.Machine.Speed
	bw := cfg.Machine.BusBandwidth

	round := make([]int, nc)                // round currently being executed
	computed := make([]bool, nc)            // current round's compute finished
	delivered := make([]int, len(channels)) // messages delivered per channel
	done := make([]bool, nc)

	var q eventQueue
	seq := 0
	push := func(ev event) {
		ev.seq = seq
		heap.Push(&q, ev)
		seq++
	}
	var busQueue []transfer
	// linksBusy counts in-flight transfers; an explicit counter rather than
	// time comparisons so that zero-duration transfers cannot double-start
	// a link.
	linksBusy := 0
	res := &Result{}
	var latencySum float64

	for c := 0; c < nc; c++ {
		d := loads[c] / speed
		res.ComputeTime += d
		push(event{at: d, kind: evComputeDone, comp: c})
	}
	startLinks := func(now float64) {
		for linksBusy < links && len(busQueue) > 0 {
			tr := busQueue[0]
			busQueue = busQueue[1:]
			linksBusy++
			d := tr.size / bw
			res.BusBusy += d
			push(event{at: now + d, kind: evTransferDone, tr: tr})
		}
	}
	// roundComplete reports whether component c has finished computing its
	// current round and received this round's message on every channel.
	roundComplete := func(c int) bool {
		if !computed[c] {
			return false
		}
		need := round[c] + 1
		for _, ch := range recvChannels[c] {
			if delivered[ch] < need {
				return false
			}
		}
		return true
	}
	advance := func(c int, now float64) {
		if done[c] || !roundComplete(c) {
			return
		}
		if round[c]+1 >= cfg.Rounds {
			done[c] = true
			if now > res.Makespan {
				res.Makespan = now
			}
			return
		}
		round[c]++
		computed[c] = false
		d := loads[c] / speed
		res.ComputeTime += d
		push(event{at: now + d, kind: evComputeDone, comp: c})
	}
	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		now := ev.at
		switch ev.kind {
		case evComputeDone:
			c := ev.comp
			if cfg.Trace != nil {
				fmt.Fprintf(cfg.Trace, "%.6f\tcompute\tcomponent=%d\tround=%d\n", now, c, round[c])
			}
			computed[c] = true
			for _, ch := range sendChannels[c] {
				busQueue = append(busQueue, transfer{channel: ch, size: channels[ch].size, posted: now})
			}
			startLinks(now)
			advance(c, now)
		case evTransferDone:
			linksBusy--
			tr := ev.tr
			if cfg.Trace != nil {
				fmt.Fprintf(cfg.Trace, "%.6f\ttransfer\tto=%d\tsize=%g\n", now, channels[tr.channel].to, tr.size)
			}
			res.Messages++
			latencySum += now - tr.posted
			delivered[tr.channel]++
			advance(channels[tr.channel].to, now)
			startLinks(now)
		}
	}
	if res.Messages > 0 {
		res.MeanMessageLatency = latencySum / float64(res.Messages)
	}
	if res.Makespan > 0 {
		res.BusUtilization = res.BusBusy / (res.Makespan * float64(links))
	}
	return res, nil
}

// SimulatePath runs the model on a linear task graph with the given cut.
func SimulatePath(cfg Config, p *graph.Path, cut []int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return SimulateTree(cfg, p.AsTree(), cut)
}
