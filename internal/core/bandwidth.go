package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/hitting"
	"repro/internal/obs"
	"repro/internal/prime"
)

// This file implements bandwidth minimization on linear task graphs (§2.3):
// find a minimum-total-weight edge cut such that every component of P − S
// weighs at most K.
//
// Bandwidth is the paper's O(n + p log q) algorithm: prime critical subpaths
// → non-redundant edge compression → TEMP_S sweep. The other entry points
// are the comparison baselines of the evaluation:
//
//   - BandwidthHeap:  the prior state of the art's O(n log n) shape (Nicol &
//     O'Hallaron 1991), realized as the window-constrained prefix DP with a
//     lazily-deleted min-heap.
//   - BandwidthDeque: the same DP with a monotone deque, O(n). Stronger than
//     anything in the paper; included as an ablation.
//   - BandwidthNaive: the same DP scanning the whole window per edge,
//     O(n · window) — the paper's "naive way" cost profile.
//
// Exhaustive reference solvers live in internal/verify/oracle; tests compare
// against those rather than a package-local brute force.

// Bandwidth solves bandwidth minimization with the paper's algorithm.
func Bandwidth(p *graph.Path, k float64) (*PathPartition, error) {
	pp, _, _, err := bandwidthTempS(context.Background(), p, k, false)
	return pp, err
}

// BandwidthCtx is Bandwidth with cancellation and iteration accounting.
func BandwidthCtx(ctx context.Context, p *graph.Path, k float64) (*PathPartition, int64, error) {
	pp, _, iters, err := bandwidthTempS(ctx, p, k, false)
	return pp, iters, err
}

// BandwidthInstrumented is Bandwidth with the TEMP_S queue instrumentation
// used by the Figure 2(d) / Appendix B study.
func BandwidthInstrumented(p *graph.Path, k float64) (*PathPartition, *hitting.Trace, error) {
	pp, trace, _, err := bandwidthTempS(context.Background(), p, k, true)
	return pp, trace, err
}

func bandwidthTempS(ctx context.Context, p *graph.Path, k float64, instrument bool) (*PathPartition, *hitting.Trace, int64, error) {
	ctx, err := enter(ctx)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := checkBound(k); err != nil {
		return nil, nil, 0, err
	}
	if err := p.Validate(); err != nil {
		return nil, nil, 0, err
	}
	// Phase 1 (§2.3.1): prime critical subpaths + non-redundant edge
	// compression — the O(n) part of the O(n + p log q) bound. The analysis
	// writes into pooled scratch; everything it returns is dead once the cut
	// has been translated back to original edge indices below.
	sc := getScratch()
	defer sc.release()
	sp := obs.Phase(ctx, "prime-extract")
	inst, ivs, err := sc.prime.Analyze(p.NodeW, p.EdgeW, k)
	if err != nil {
		sp.End()
		if errors.Is(err, prime.ErrVertexTooHeavy) {
			return nil, nil, 0, fmt.Errorf("%v: %w", err, ErrInfeasible)
		}
		return nil, nil, 0, err
	}
	sp.SetAttr("primeSubpaths", len(ivs))
	sp.SetAttr("nonRedundantEdges", len(inst.Beta))
	sp.End()
	// The instance lives in pooled scratch: it only needs to outlive the DP
	// sweep below, and keeping it out of the heap saves an allocation per
	// solve (the &Instance literal would escape through the Solve call).
	sc.hin = hitting.Instance{Beta: inst.Beta, A: inst.A, B: inst.B}
	hin := &sc.hin
	// Phase 2 (§2.3.1 Algorithm 4.1): the TEMP_S monotone-queue DP sweep —
	// the O(p log q) part.
	dctx, sp := obs.StartSpan(ctx, "temps-dp")
	var sol *hitting.Solution
	var trace *hitting.Trace
	var iters int64
	if instrument {
		sol, trace, iters, err = hitting.SolveTempSInstrumentedCtx(dctx, hin)
	} else {
		sol, iters, err = hitting.SolveTempSCtx(dctx, hin)
	}
	sp.SetAttr("iterations", iters)
	sp.End()
	if err != nil {
		return nil, nil, iters, err
	}
	sp = obs.Phase(ctx, "build-partition")
	cut := make([]int, len(sol.Points))
	for i, pt := range sol.Points {
		cut[i] = inst.Orig[pt]
	}
	pp, err := newPathPartition(p, cut, k)
	sp.End()
	if err != nil {
		return nil, nil, iters, err
	}
	return pp, trace, iters, nil
}

// dpState holds the shared pieces of the window-constrained prefix DP. For
// edges e_0..e_{n-2}, f[i] is the minimum cut weight of any feasible cut of
// the prefix v_0..v_i whose rightmost cut edge is e_i; parent[i] is the
// preceding cut edge (or -1). A cut at e_i and previous cut at e_j is allowed
// when the enclosed segment v_{j+1}..v_i weighs at most K.
type dpState struct {
	f      []float64
	parent []int
	prefix []float64
}

func (s *dpState) reconstruct(i int) []int {
	var cut []int
	for ; i >= 0; i = s.parent[i] {
		cut = append(cut, i)
	}
	// Reverse into increasing order.
	for l, r := 0, len(cut)-1; l < r; l, r = l+1, r-1 {
		cut[l], cut[r] = cut[r], cut[l]
	}
	return cut
}

// prepDPCheck validates inputs and handles the trivial cases, returning a
// non-nil partition when the answer is already decided (empty cut feasible).
// Callers then size the dpState arrays out of their pooled scratch.
func prepDPCheck(p *graph.Path, k float64) (*PathPartition, error) {
	if err := checkBound(k); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.MaxNodeWeight() > k {
		return nil, fmt.Errorf("max vertex weight %v > K=%v: %w", p.MaxNodeWeight(), k, ErrInfeasible)
	}
	if p.TotalNodeWeight() <= k {
		return newPathPartition(p, nil, k)
	}
	return nil, nil
}

func (s *dpState) finish(p *graph.Path, k float64) (*PathPartition, error) {
	n := p.Len()
	best := math.Inf(1)
	bestI := -1
	total := s.prefix[n]
	for i := n - 2; i >= 0; i-- {
		// Suffix v_{i+1}..v_{n-1} must fit in one component.
		if total-s.prefix[i+1] > k {
			break
		}
		if s.f[i] < best {
			best, bestI = s.f[i], i
		}
	}
	if bestI < 0 || math.IsInf(best, 1) {
		// Unreachable for validated inputs (single-vertex components always
		// fit), but guard against returning a wrong partition.
		return nil, ErrInfeasible
	}
	return newPathPartition(p, s.reconstruct(bestI), k)
}

// BandwidthDeque solves bandwidth minimization with the prefix DP and a
// monotone deque for the sliding-window minimum: O(n) time.
func BandwidthDeque(p *graph.Path, k float64) (*PathPartition, error) {
	pp, _, err := BandwidthDequeCtx(context.Background(), p, k)
	return pp, err
}

// BandwidthDequeCtx is BandwidthDeque with cancellation and iteration
// accounting.
func BandwidthDequeCtx(ctx context.Context, p *graph.Path, k float64) (*PathPartition, int64, error) {
	ctx, err := enter(ctx)
	if err != nil {
		return nil, 0, err
	}
	tk := newTicker(ctx)
	sc := getScratch()
	defer sc.release()
	done, s, err := sc.prepDP(p, k)
	if done != nil || err != nil {
		return done, 0, err
	}
	n := p.Len()
	// Deque of candidate predecessor cut indices with increasing f; -1 is
	// the virtual "no previous cut" candidate with f = 0.
	fval := func(j int) float64 {
		if j < 0 {
			return 0
		}
		return s.f[j]
	}
	// Candidates appear in increasing j and increasing f, so both the window
	// eviction (front) and the dominance eviction (back) are valid.
	sc.deque = growI(sc.deque, n)
	deque := sc.deque[:0]
	deque = append(deque, -1)
	sweep := obs.Phase(ctx, "dp-sweep")
	sweep.SetAttr("edges", n-1)
	for i := 0; i < n-1; i++ {
		if err := tk.tick(); err != nil {
			sweep.End()
			return nil, tk.n, err
		}
		// Evict candidates j whose segment v_{j+1}..v_i exceeds K.
		for len(deque) > 0 && s.prefix[i+1]-s.prefix[deque[0]+1] > k {
			deque = deque[1:]
		}
		if len(deque) == 0 {
			s.f[i] = math.Inf(1)
			s.parent[i] = -2
		} else {
			s.f[i] = p.EdgeW[i] + fval(deque[0])
			s.parent[i] = deque[0]
		}
		// Insert candidate i for subsequent edges.
		if !math.IsInf(s.f[i], 1) {
			for len(deque) > 0 && fval(deque[len(deque)-1]) >= s.f[i] {
				deque = deque[:len(deque)-1]
			}
			deque = append(deque, i)
		}
	}
	sweep.End()
	fin := obs.Phase(ctx, "finish-scan")
	pp, err := s.finish(p, k)
	fin.End()
	return pp, tk.n, err
}

// heapItem pairs a candidate predecessor with its f value.
type heapItem struct {
	j int
	f float64
}

type minHeap []heapItem

func (h minHeap) Len() int             { return len(h) }
func (h minHeap) Less(i, j int) bool   { return h[i].f < h[j].f }
func (h minHeap) Swap(i, j int)        { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)          { *h = append(*h, x.(heapItem)) }
func (h *minHeap) Pop() any            { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h minHeap) peek() heapItem       { return h[0] }
func (h *minHeap) popItem() heapItem   { return heap.Pop(h).(heapItem) }
func (h *minHeap) pushItem(x heapItem) { heap.Push(h, x) }

// BandwidthHeap solves bandwidth minimization with the prefix DP and a
// min-heap with lazy deletion: O(n log n), the asymptotic shape of the best
// previously known algorithm (Nicol & O'Hallaron 1991) that the paper
// compares against.
func BandwidthHeap(p *graph.Path, k float64) (*PathPartition, error) {
	pp, _, err := BandwidthHeapCtx(context.Background(), p, k)
	return pp, err
}

// BandwidthHeapCtx is BandwidthHeap with cancellation and iteration
// accounting.
func BandwidthHeapCtx(ctx context.Context, p *graph.Path, k float64) (*PathPartition, int64, error) {
	ctx, err := enter(ctx)
	if err != nil {
		return nil, 0, err
	}
	tk := newTicker(ctx)
	sc := getScratch()
	defer sc.release()
	done, s, err := sc.prepDP(p, k)
	if done != nil || err != nil {
		return done, 0, err
	}
	n := p.Len()
	// The heap holds at most one candidate per edge plus the virtual root.
	if cap(sc.heapBuf) < n+1 {
		sc.heapBuf = make(minHeap, 0, n+1)
	}
	h := &sc.heapBuf
	*h = append((*h)[:0], heapItem{j: -1, f: 0})
	// winLo tracks the smallest predecessor index still inside the window;
	// heap entries below it are stale and lazily discarded.
	winLo := -1
	sweep := obs.Phase(ctx, "dp-sweep")
	sweep.SetAttr("edges", n-1)
	for i := 0; i < n-1; i++ {
		if err := tk.tick(); err != nil {
			sweep.End()
			return nil, tk.n, err
		}
		for winLo <= i && s.prefix[i+1]-s.prefix[winLo+1] > k {
			winLo++
		}
		for h.Len() > 0 && h.peek().j < winLo {
			h.popItem()
		}
		if h.Len() == 0 {
			s.f[i] = math.Inf(1)
			s.parent[i] = -2
		} else {
			top := h.peek()
			s.f[i] = p.EdgeW[i] + top.f
			s.parent[i] = top.j
		}
		if !math.IsInf(s.f[i], 1) {
			h.pushItem(heapItem{j: i, f: s.f[i]})
		}
	}
	sweep.End()
	fin := obs.Phase(ctx, "finish-scan")
	pp, err := s.finish(p, k)
	fin.End()
	return pp, tk.n, err
}

// BandwidthNaive solves bandwidth minimization with the prefix DP, scanning
// every in-window predecessor for each edge: O(n · window) time, up to
// O(n²). This matches the cost profile the paper ascribes to the naive
// recurrence evaluation.
func BandwidthNaive(p *graph.Path, k float64) (*PathPartition, error) {
	pp, _, err := BandwidthNaiveCtx(context.Background(), p, k)
	return pp, err
}

// BandwidthNaiveCtx is BandwidthNaive with cancellation and iteration
// accounting. The poll sits in the inner window scan, so even a single
// quadratic-width window observes cancellation promptly.
func BandwidthNaiveCtx(ctx context.Context, p *graph.Path, k float64) (*PathPartition, int64, error) {
	ctx, err := enter(ctx)
	if err != nil {
		return nil, 0, err
	}
	tk := newTicker(ctx)
	sc := getScratch()
	defer sc.release()
	done, s, err := sc.prepDP(p, k)
	if done != nil || err != nil {
		return done, 0, err
	}
	n := p.Len()
	sweep := obs.Phase(ctx, "dp-sweep")
	sweep.SetAttr("edges", n-1)
	for i := 0; i < n-1; i++ {
		best := math.Inf(1)
		parent := -2
		for j := i - 1; j >= -1; j-- {
			if err := tk.tick(); err != nil {
				sweep.End()
				return nil, tk.n, err
			}
			if s.prefix[i+1]-s.prefix[j+1] > k {
				break
			}
			fj := 0.0
			if j >= 0 {
				fj = s.f[j]
			}
			if fj < best {
				best, parent = fj, j
			}
		}
		if math.IsInf(best, 1) {
			s.f[i] = best
			s.parent[i] = -2
			continue
		}
		s.f[i] = p.EdgeW[i] + best
		s.parent[i] = parent
	}
	sweep.SetAttr("iterations", tk.n)
	sweep.End()
	fin := obs.Phase(ctx, "finish-scan")
	pp, err := s.finish(p, k)
	fin.End()
	return pp, tk.n, err
}
